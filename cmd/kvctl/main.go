// Command kvctl is the client for the kvnode cluster. Write commands are
// sent to every replica (the PBFT client model: a command is proposed once
// at least one correct replica queues it; duplicates are suppressed by
// request id), then the client polls a replica until the write is applied.
//
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200,127.0.0.1:7201 set color green
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 get color
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 del color
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 loglen
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		nodes   = flag.String("nodes", "127.0.0.1:7200", "comma-separated client addresses")
		timeout = flag.Duration("timeout", 10*time.Second, "overall operation timeout")
	)
	flag.Parse()
	addrs := strings.Split(*nodes, ",")
	args := flag.Args()
	if len(args) == 0 {
		fail("usage: kvctl [-nodes ...] set <k> <v> | del <k> | get <k> | loglen")
	}

	switch strings.ToLower(args[0]) {
	case "get":
		if len(args) != 2 {
			fail("usage: get <key>")
		}
		fmt.Println(request(addrs[0], "GET "+args[1]))
	case "loglen":
		fmt.Println(request(addrs[0], "LOGLEN"))
	case "set":
		if len(args) != 3 {
			fail("usage: set <key> <value>")
		}
		reqID := newReqID()
		broadcast(addrs, fmt.Sprintf("CMD %s SET %s %s", reqID, args[1], args[2]))
		waitUntil(addrs[0], "GET "+args[1], args[2], *timeout)
		fmt.Println("OK")
	case "del":
		if len(args) != 2 {
			fail("usage: del <key>")
		}
		reqID := newReqID()
		broadcast(addrs, fmt.Sprintf("CMD %s DEL %s", reqID, args[1]))
		waitUntil(addrs[0], "GET "+args[1], "NOTFOUND", *timeout)
		fmt.Println("OK")
	default:
		fail("unknown operation " + args[0])
	}
}

func newReqID() string {
	return fmt.Sprintf("req-%d-%d", time.Now().UnixNano(), rand.Intn(1_000_000))
}

// broadcast sends the line to every replica; at least one reply must be
// QUEUED.
func broadcast(addrs []string, line string) {
	queued := 0
	for _, addr := range addrs {
		if resp := request(strings.TrimSpace(addr), line); resp == "QUEUED" {
			queued++
		}
	}
	if queued == 0 {
		fail("no replica accepted the command")
	}
}

// waitUntil polls the read until it matches want or the timeout elapses.
func waitUntil(addr, line, want string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if request(addr, line) == want {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	fail("timed out waiting for the command to apply")
}

func request(addr, line string) string {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return "ERR " + err.Error()
	}
	defer conn.Close()
	fmt.Fprintln(conn, line)
	scanner := bufio.NewScanner(conn)
	if scanner.Scan() {
		return scanner.Text()
	}
	return "ERR no response"
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "kvctl:", msg)
	os.Exit(1)
}
