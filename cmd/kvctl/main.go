// Command kvctl is the client for the kvnode cluster. Write commands are
// sent to every replica (the PBFT client model: a command is proposed once
// at least one correct replica queues it; duplicates are suppressed by
// request id), then the client polls a replica until the write is applied.
//
// mset coalesces many writes client-side: all CMD lines are pipelined over
// a single connection per replica, so the replicas queue them together and
// the SMR layer decides them as one batch (one consensus instance for the
// whole set instead of one per key).
//
// Against an authenticated cluster (kvnode -client-auth) pass -auth: kvctl
// then signs every write at submit time — it derives its client key from
// (-client-seed, -client-id), MACs the canonical command payload, and sends
// ACMD lines carrying (client, seq, mac) so replicas can verify provenance
// before queueing. Sequence numbers continue from the cluster's view of the
// client (the ASEQ protocol verb reports the highest applied seq; kvctl
// takes the maximum over the replicas that answer, tolerating unreachable
// ones, and errors only when fewer than b+1 respond — see -b), so repeated
// invocations never replay and never jump the per-client horizon. Concurrent invocations should
// still use distinct -client-id values: two processes sharing an id race
// the same sequence space and can bounce each other's in-flight writes.
// Durable per-client sequence state is the key-distribution follow-up
// tracked in ROADMAP.md.
//
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200,127.0.0.1:7201 set color green
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200,127.0.0.1:7201 mset color green shape circle size big
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 -auth -client-id 3 set color green
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 get color
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 del color
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 loglen
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"genconsensus/internal/auth"
	"genconsensus/internal/kv"
)

// writer builds protocol lines for write commands: anonymous CMD lines in
// legacy mode, signed ACMD lines in authenticated mode.
type writer struct {
	signer  *auth.ClientSigner // nil = legacy
	seq     uint64
	seqInit func() uint64 // lazy base discovery; runs once, before the first write
}

// line formats one write. value is ignored for DEL.
func (w *writer) line(op, key, value string) string {
	op = strings.ToUpper(op)
	if w.signer == nil {
		reqID := newReqID()
		if op == "DEL" {
			return fmt.Sprintf("CMD %s DEL %s", reqID, key)
		}
		return fmt.Sprintf("CMD %s SET %s %s", reqID, key, value)
	}
	if w.seqInit != nil {
		w.seq = w.seqInit()
		w.seqInit = nil
	}
	w.seq++
	mac := hex.EncodeToString(kv.AuthMAC(w.signer, w.seq, op, key, value))
	if op == "DEL" {
		return fmt.Sprintf("ACMD %d %d %s DEL %s", w.signer.Client(), w.seq, mac, key)
	}
	return fmt.Sprintf("ACMD %d %d %s SET %s %s", w.signer.Client(), w.seq, mac, key, value)
}

func main() {
	var (
		nodes      = flag.String("nodes", "127.0.0.1:7200", "comma-separated client addresses")
		timeout    = flag.Duration("timeout", 10*time.Second, "overall operation timeout")
		authMode   = flag.Bool("auth", false, "sign writes (cluster runs with -client-auth)")
		clientID   = flag.Uint("client-id", 0, "this client's keyring id")
		clientSeed = flag.Int64("client-seed", 42, "client key derivation seed (must match the cluster)")
		seqBase    = flag.Uint64("seq", 0, "first sequence number (0 = continue after the cluster's ASEQ horizon)")
		byzB       = flag.Int("b", 1, "cluster's Byzantine budget: the ASEQ probe needs b+1 replies")
	)
	flag.Parse()
	addrs := strings.Split(*nodes, ",")
	args := flag.Args()
	if len(args) == 0 {
		fail("usage: kvctl [-nodes ...] [-auth] set <k> <v> | mset <k> <v> [<k> <v> ...] | del <k> | get <k> | loglen")
	}
	w := &writer{}
	if *authMode {
		w.signer = auth.NewClientSigner(*clientSeed, uint32(*clientID))
		if *seqBase > 0 {
			w.seq = *seqBase - 1
		} else {
			// Continue after the cluster's highest applied seq for this
			// client (maximum across replicas — a lagging replica must not
			// hand out an already-burned base). An unreachable replica is
			// tolerated, not fatal: the maximum over the replicas that DO
			// answer is correct as long as at least b+1 of them respond
			// (one of b+1 is honest and no honest replica under-reports a
			// horizon another honest replica has applied past... it may lag
			// it, which the maximum absorbs). Fewer than b+1 answers would
			// let a Byzantine minority hand out a stale base, so only then
			// does the submit fail. Lazy: read-only subcommands never pay
			// the probe round-trips.
			w.seqInit = func() uint64 {
				base := uint64(0)
				answered := 0
				for _, addr := range addrs {
					resp := request(strings.TrimSpace(addr), fmt.Sprintf("ASEQ %d", *clientID))
					max, err := strconv.ParseUint(resp, 10, 64)
					if err != nil {
						continue // down, unreachable or not in auth mode
					}
					answered++
					if max > base {
						base = max
					}
				}
				if answered < *byzB+1 {
					fail(fmt.Sprintf("ASEQ probe: only %d replica(s) answered, need b+1 = %d (pass -seq to override)",
						answered, *byzB+1))
				}
				return base
			}
		}
	}

	switch strings.ToLower(args[0]) {
	case "get":
		if len(args) != 2 {
			fail("usage: get <key>")
		}
		fmt.Println(request(addrs[0], "GET "+args[1]))
	case "loglen":
		fmt.Println(request(addrs[0], "LOGLEN"))
	case "set":
		if len(args) != 3 {
			fail("usage: set <key> <value>")
		}
		broadcast(addrs, w.line("SET", args[1], args[2]))
		waitUntil(addrs[0], "GET "+args[1], args[2], *timeout)
		fmt.Println("OK")
	case "mset":
		if len(args) < 3 || len(args)%2 == 0 {
			fail("usage: mset <key> <value> [<key> <value> ...]")
		}
		pairs := args[1:]
		lines := make([]string, 0, len(pairs)/2)
		for i := 0; i < len(pairs); i += 2 {
			lines = append(lines, w.line("SET", pairs[i], pairs[i+1]))
		}
		broadcastMany(addrs, lines)
		// Poll each key for its final value: with a repeated key the later
		// pair in the batch wins, so earlier values never materialize.
		final := make(map[string]string, len(pairs)/2)
		order := make([]string, 0, len(pairs)/2)
		for i := 0; i < len(pairs); i += 2 {
			if _, seen := final[pairs[i]]; !seen {
				order = append(order, pairs[i])
			}
			final[pairs[i]] = pairs[i+1]
		}
		for _, key := range order {
			waitUntil(addrs[0], "GET "+key, final[key], *timeout)
		}
		fmt.Printf("OK %d keys\n", len(final))
	case "del":
		if len(args) != 2 {
			fail("usage: del <key>")
		}
		broadcast(addrs, w.line("DEL", args[1], ""))
		waitUntil(addrs[0], "GET "+args[1], "NOTFOUND", *timeout)
		fmt.Println("OK")
	default:
		fail("unknown operation " + args[0])
	}
}

func newReqID() string {
	return fmt.Sprintf("req-%d-%d", time.Now().UnixNano(), rand.Intn(1_000_000))
}

// broadcast sends the line to every replica; at least one reply must be
// QUEUED.
func broadcast(addrs []string, line string) {
	queued := 0
	for _, addr := range addrs {
		if resp := request(strings.TrimSpace(addr), line); resp == "QUEUED" {
			queued++
		}
	}
	if queued == 0 {
		fail("no replica accepted the command")
	}
}

// broadcastMany coalesces the lines into one pipelined exchange per replica
// (a single connection carrying every request), so a replica queues the
// whole set before its next proposal and the cluster can decide it as one
// batch. At least one replica must queue every line.
func broadcastMany(addrs []string, lines []string) {
	allQueued := 0
	for _, addr := range addrs {
		resps := requestMany(strings.TrimSpace(addr), lines)
		ok := len(resps) == len(lines)
		for _, resp := range resps {
			if resp != "QUEUED" {
				ok = false
			}
		}
		if ok {
			allQueued++
		}
	}
	if allQueued == 0 {
		fail("no replica accepted the batch")
	}
}

// requestMany pipelines all lines over one connection and collects one
// response per line (stopping early on connection errors).
func requestMany(addr string, lines []string) []string {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil
	}
	defer conn.Close()
	if _, err := fmt.Fprint(conn, strings.Join(lines, "\n")+"\n"); err != nil {
		return nil
	}
	scanner := bufio.NewScanner(conn)
	resps := make([]string, 0, len(lines))
	for range lines {
		if !scanner.Scan() {
			break
		}
		resps = append(resps, scanner.Text())
	}
	return resps
}

// waitUntil polls the read until it matches want or the timeout elapses.
func waitUntil(addr, line, want string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if request(addr, line) == want {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	fail("timed out waiting for the command to apply")
}

func request(addr, line string) string {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return "ERR " + err.Error()
	}
	defer conn.Close()
	fmt.Fprintln(conn, line)
	scanner := bufio.NewScanner(conn)
	if scanner.Scan() {
		return scanner.Text()
	}
	return "ERR no response"
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "kvctl:", msg)
	os.Exit(1)
}
