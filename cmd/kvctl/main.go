// Command kvctl is the client for the kvnode cluster. Write commands are
// sent to every replica (the PBFT client model: a command is proposed once
// at least one correct replica queues it; duplicates are suppressed by
// request id), then the client polls a replica until the write is applied.
//
// get is a quorum read: kvctl fans READ <key> to every replica and accepts
// only a value b+1 stamped replies agree on (the Byzantine read
// certificate, see -b and docs/READS.md) — a single replica, forging or
// mid-recovery, can neither serve a fabricated value nor a spurious
// NOTFOUND. -stale restores the old single-replica GET.
//
// mset coalesces many writes client-side: all CMD lines are pipelined over
// a single connection per replica, so the replicas queue them together and
// the SMR layer decides them as one batch (one consensus instance for the
// whole set instead of one per key).
//
// Against an authenticated cluster (kvnode -client-auth) pass -auth: kvctl
// then signs every write at submit time — it derives its client key from
// (-client-seed, -client-id), MACs the canonical command payload, and sends
// ACMD lines carrying (client, seq, mac) so replicas can verify provenance
// before queueing. Sequence numbers continue from the cluster's view of the
// client (the ASEQ protocol verb reports the highest applied seq; kvctl
// takes the maximum over the replicas that answer, tolerating unreachable
// ones, and errors only when fewer than b+1 respond — see -b), so repeated
// invocations never replay and never jump the per-client horizon. Concurrent invocations should
// still use distinct -client-id values: two processes sharing an id race
// the same sequence space and can bounce each other's in-flight writes.
// Durable per-client sequence state is the key-distribution follow-up
// tracked in ROADMAP.md.
//
// -session is the amortized-auth variant of -auth: kvctl authenticates each
// connection once (the SHELLO handshake, deriving a per-connection session
// key) and then sends SCMD writes carrying only a truncated session tag —
// no per-command envelope MAC on the wire. Sequence numbers are shared
// across the replicas (every replica must mint the identical envelope from
// (client, seq, payload)); only the tag differs per connection, under that
// connection's session key.
//
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200,127.0.0.1:7201 set color green
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200,127.0.0.1:7201 mset color green shape circle size big
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 -auth -client-id 3 set color green
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 -session -client-id 3 mset a 1 b 2
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200,127.0.0.1:7201 get color
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 -stale get color
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 del color
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 loglen
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 shards
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 stats
//
// Against a sharded cluster (kvnode -shards S) nothing changes client-side
// for correctness: every replica hosts all S consensus groups and routes
// each write to the group owning its key (the same deterministic hash,
// wire.GroupForKey), so CMD/ACMD/SCMD lines work unchanged and a batch
// whose keys span groups is simply decided by several groups concurrently.
// The `shards` subcommand reports S for clients that want to partition
// their own load; connections pinned with the USE verb receive
// "ERR wrongshard <g>" redirects instead of silent misroutes (docs/SHARD.md).
package main

import (
	"bufio"
	crand "crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"genconsensus/internal/auth"
	"genconsensus/internal/kv"
	"genconsensus/internal/readq"
)

// writer builds protocol lines for write commands: anonymous CMD lines in
// legacy mode, signed ACMD lines in authenticated mode.
type writer struct {
	signer  *auth.ClientSigner // nil = legacy
	seq     uint64
	seqInit func() uint64 // lazy base discovery; runs once, before the first write
}

// nextSeq allocates the next client sequence number, resolving the lazy
// base discovery on first use.
func (w *writer) nextSeq() uint64 {
	if w.seqInit != nil {
		w.seq = w.seqInit()
		w.seqInit = nil
	}
	w.seq++
	return w.seq
}

// line formats one write. value is ignored for DEL.
func (w *writer) line(op, key, value string) string {
	op = strings.ToUpper(op)
	if w.signer == nil {
		reqID := newReqID()
		if op == "DEL" {
			return fmt.Sprintf("CMD %s DEL %s", reqID, key)
		}
		return fmt.Sprintf("CMD %s SET %s %s", reqID, key, value)
	}
	seq := w.nextSeq()
	mac := hex.EncodeToString(kv.AuthMAC(w.signer, seq, op, key, value))
	if op == "DEL" {
		return fmt.Sprintf("ACMD %d %d %s DEL %s", w.signer.Client(), seq, mac, key)
	}
	return fmt.Sprintf("ACMD %d %d %s SET %s %s", w.signer.Client(), seq, mac, key, value)
}

// writeOp is one SET/DEL destined for the cluster, before protocol framing.
type writeOp struct {
	op, key, value string
}

func main() {
	var (
		nodes      = flag.String("nodes", "127.0.0.1:7200", "comma-separated client addresses")
		timeout    = flag.Duration("timeout", 10*time.Second, "overall operation timeout")
		authMode   = flag.Bool("auth", false, "sign writes (cluster runs with -client-auth)")
		sessMode   = flag.Bool("session", false, "authenticate each connection once (SHELLO) and send session-tagged writes")
		clientID   = flag.Uint("client-id", 0, "this client's keyring id")
		clientSeed = flag.Int64("client-seed", 42, "client key derivation seed (must match the cluster)")
		seqBase    = flag.Uint64("seq", 0, "first sequence number (0 = continue after the cluster's ASEQ horizon)")
		byzB       = flag.Int("b", 1, "cluster's Byzantine budget: quorum reads and the ASEQ probe need b+1 matching replies")
		stale      = flag.Bool("stale", false, "get: legacy single-replica GET (stale local read, no certificate)")
	)
	flag.Parse()
	addrs := strings.Split(*nodes, ",")
	args := flag.Args()
	if len(args) == 0 {
		fail("usage: kvctl [-nodes ...] [-auth] set <k> <v> | mset <k> <v> [<k> <v> ...] | del <k> | get <k> | loglen | shards | stats")
	}
	if *authMode && *sessMode {
		fail("-auth and -session are mutually exclusive (a session replaces per-command signing)")
	}
	w := &writer{}
	if *authMode {
		w.signer = auth.NewClientSigner(*clientSeed, uint32(*clientID))
	}
	if *authMode || *sessMode {
		if *seqBase > 0 {
			w.seq = *seqBase - 1
		} else {
			// Continue after the cluster's highest applied seq for this
			// client (maximum across replicas — a lagging replica must not
			// hand out an already-burned base). An unreachable replica is
			// tolerated, not fatal: the maximum over the replicas that DO
			// answer is correct as long as at least b+1 of them respond
			// (one of b+1 is honest and no honest replica under-reports a
			// horizon another honest replica has applied past... it may lag
			// it, which the maximum absorbs). Fewer than b+1 answers would
			// let a Byzantine minority hand out a stale base, so only then
			// does the submit fail. Lazy: read-only subcommands never pay
			// the probe round-trips.
			w.seqInit = func() uint64 {
				base := uint64(0)
				answered := 0
				for _, addr := range addrs {
					resp := request(strings.TrimSpace(addr), fmt.Sprintf("ASEQ %d", *clientID))
					max, err := strconv.ParseUint(resp, 10, 64)
					if err != nil {
						continue // down, unreachable or not in auth mode
					}
					answered++
					if max > base {
						base = max
					}
				}
				if answered < *byzB+1 {
					fail(fmt.Sprintf("ASEQ probe: only %d replica(s) answered, need b+1 = %d (pass -seq to override)",
						answered, *byzB+1))
				}
				return base
			}
		}
	}

	// submit frames and broadcasts the writes in the selected mode: legacy
	// CMD / signed ACMD lines over one-shot pipelined connections, or
	// session-tagged SCMD lines over per-replica SHELLO'd connections.
	submit := func(ops []writeOp) {
		if *sessMode {
			first := w.nextSeq()
			for i := 1; i < len(ops); i++ {
				w.nextSeq()
			}
			sessionBroadcast(addrs, auth.ClientKey(*clientSeed, uint32(*clientID)), uint32(*clientID), first, ops)
			return
		}
		lines := make([]string, len(ops))
		for i, o := range ops {
			lines[i] = w.line(o.op, o.key, o.value)
		}
		if len(lines) == 1 {
			broadcast(addrs, lines[0])
			return
		}
		broadcastMany(addrs, lines)
	}

	switch strings.ToLower(args[0]) {
	case "get":
		if len(args) != 2 {
			fail("usage: get [-stale] <key>")
		}
		if *stale {
			// Legacy single-replica stale read: whatever the first replica's
			// local store holds, no freshness contract, no certificate.
			fmt.Println(request(addrs[0], "GET "+args[1]))
			return
		}
		fmt.Println(quorumGet(addrs, args[1], *byzB+1))
	case "loglen":
		fmt.Println(request(addrs[0], "LOGLEN"))
	case "stats":
		// STATS is a multi-line response terminated by END. It rides a
		// session connection too (-session), like any read verb.
		if *sessMode {
			conn, sc, _, err := dialSessionConn(strings.TrimSpace(addrs[0]),
				auth.ClientKey(*clientSeed, uint32(*clientID)), uint32(*clientID))
			if err != nil {
				fail(err.Error())
			}
			defer conn.Close()
			fmt.Fprintln(conn, "STATS")
			for sc.Scan() && sc.Text() != "END" {
				fmt.Println(sc.Text())
			}
			return
		}
		for _, line := range requestUntil(addrs[0], "STATS", "END") {
			fmt.Println(line)
		}
	case "shards":
		fmt.Println(request(addrs[0], "SHARDS"))
	case "set":
		if len(args) != 3 {
			fail("usage: set <key> <value>")
		}
		submit([]writeOp{{"SET", args[1], args[2]}})
		waitUntil(addrs[0], "GET "+args[1], args[2], *timeout)
		fmt.Println("OK")
	case "mset":
		if len(args) < 3 || len(args)%2 == 0 {
			fail("usage: mset <key> <value> [<key> <value> ...]")
		}
		pairs := args[1:]
		ops := make([]writeOp, 0, len(pairs)/2)
		for i := 0; i < len(pairs); i += 2 {
			ops = append(ops, writeOp{"SET", pairs[i], pairs[i+1]})
		}
		submit(ops)
		// Poll each key for its final value: with a repeated key the later
		// pair in the batch wins, so earlier values never materialize.
		final := make(map[string]string, len(pairs)/2)
		order := make([]string, 0, len(pairs)/2)
		for i := 0; i < len(pairs); i += 2 {
			if _, seen := final[pairs[i]]; !seen {
				order = append(order, pairs[i])
			}
			final[pairs[i]] = pairs[i+1]
		}
		for _, key := range order {
			waitUntil(addrs[0], "GET "+key, final[key], *timeout)
		}
		fmt.Printf("OK %d keys\n", len(final))
	case "del":
		if len(args) != 2 {
			fail("usage: del <key>")
		}
		submit([]writeOp{{"DEL", args[1], ""}})
		waitUntil(addrs[0], "GET "+args[1], "NOTFOUND", *timeout)
		fmt.Println("OK")
	default:
		fail("unknown operation " + args[0])
	}
}

// quorumGet is the Byzantine-safe read: fan READ <key> to every replica
// (the tolerant fan-out shape of the ASEQ probe — unreachable replicas
// are skipped, not fatal) and accept only a value that need = b+1 stamped
// replies agree on; among certified candidates the highest applied
// instance wins. A single forging replica can therefore never serve a
// fabricated value, and a lagging replica's old value loses to the
// certified newer one. Fewer than b+1 matching replies is an error — the
// caller can retry or fall back to -stale, but must not trust one reply.
func quorumGet(addrs []string, key string, need int) string {
	var results []readq.Result
	answered := 0
	for _, addr := range addrs {
		resp := request(strings.TrimSpace(addr), "READ "+key)
		answered++
		res, err := readq.Parse(resp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvctl: %s: %s\n", addr, resp)
			continue
		}
		results = append(results, res)
	}
	got, ok := readq.Certify(results, need, nil)
	if !ok {
		fail(fmt.Sprintf("quorum read: no value certified by %d of %d replies (retry, or -stale for an uncertified local read)",
			need, answered))
	}
	if !got.Found {
		return "NOTFOUND"
	}
	return got.Value
}

// dialSessionConn connects to one replica and completes the SHELLO
// handshake, verifying the server's ack MAC before trusting the session.
func dialSessionConn(addr string, ckey auth.MACKey, client uint32) (net.Conn, *bufio.Scanner, auth.MACKey, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, nil, auth.MACKey{}, err
	}
	var nonce [auth.SessionNonceSize]byte
	if _, err := crand.Read(nonce[:]); err != nil {
		conn.Close()
		return nil, nil, auth.MACKey{}, err
	}
	mac := auth.ClientHelloMAC(ckey, client, nonce[:])
	if _, err := fmt.Fprintf(conn, "SHELLO %d %s %s\n",
		client, hex.EncodeToString(nonce[:]), hex.EncodeToString(mac)); err != nil {
		conn.Close()
		return nil, nil, auth.MACKey{}, err
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		conn.Close()
		return nil, nil, auth.MACKey{}, fmt.Errorf("no SHELLO reply")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 3 || fields[0] != "SESSION" {
		conn.Close()
		return nil, nil, auth.MACKey{}, fmt.Errorf("handshake refused: %s", sc.Text())
	}
	serverNonce, err1 := hex.DecodeString(fields[1])
	ack, err2 := hex.DecodeString(fields[2])
	if err1 != nil || err2 != nil || !auth.CheckClientHelloAckMAC(ckey, client, nonce[:], serverNonce, ack) {
		conn.Close()
		return nil, nil, auth.MACKey{}, fmt.Errorf("server ack rejected")
	}
	return conn, sc, auth.ClientSessionKey(ckey, client, nonce[:], serverNonce), nil
}

// sessionBroadcast opens one session per replica and pipelines the tagged
// writes over it. The (client, seq, payload) triple is identical on every
// replica — each mints the same command envelope — while the tag is
// per-connection, under that session's key. At least one replica must queue
// every line.
func sessionBroadcast(addrs []string, ckey auth.MACKey, client uint32, firstSeq uint64, ops []writeOp) {
	allQueued := 0
	for _, addr := range addrs {
		conn, sc, skey, err := dialSessionConn(strings.TrimSpace(addr), ckey, client)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvctl: %s: %v\n", addr, err)
			continue
		}
		// Midstate-cached tagging: the session key is fixed per connection,
		// so the HMAC key blocks are hashed once for the whole batch.
		macer := auth.NewSessionMACer(skey)
		var b strings.Builder
		for i, o := range ops {
			seq := firstSeq + uint64(i)
			payload := kv.AuthPayload(client, seq, o.op, o.key, o.value)
			tag := macer.Append(nil, seq, []byte(payload))
			fmt.Fprintf(&b, "SCMD %d %s %s %s", seq, hex.EncodeToString(tag), o.op, o.key)
			if o.op == "SET" {
				b.WriteString(" " + o.value)
			}
			b.WriteByte('\n')
		}
		ok := true
		if _, err := fmt.Fprint(conn, b.String()); err != nil {
			ok = false
		}
		for range ops {
			if !ok {
				break
			}
			if !sc.Scan() || sc.Text() != "QUEUED" {
				ok = false
			}
		}
		conn.Close()
		if ok {
			allQueued++
		}
	}
	if allQueued == 0 {
		fail("no replica accepted the session batch")
	}
}

func newReqID() string {
	return fmt.Sprintf("req-%d-%d", time.Now().UnixNano(), rand.Intn(1_000_000))
}

// broadcast sends the line to every replica; at least one reply must be
// QUEUED.
func broadcast(addrs []string, line string) {
	queued := 0
	for _, addr := range addrs {
		if resp := request(strings.TrimSpace(addr), line); resp == "QUEUED" {
			queued++
		}
	}
	if queued == 0 {
		fail("no replica accepted the command")
	}
}

// broadcastMany coalesces the lines into one pipelined exchange per replica
// (a single connection carrying every request), so a replica queues the
// whole set before its next proposal and the cluster can decide it as one
// batch. At least one replica must queue every line.
func broadcastMany(addrs []string, lines []string) {
	allQueued := 0
	for _, addr := range addrs {
		resps := requestMany(strings.TrimSpace(addr), lines)
		ok := len(resps) == len(lines)
		for _, resp := range resps {
			if resp != "QUEUED" {
				ok = false
			}
		}
		if ok {
			allQueued++
		}
	}
	if allQueued == 0 {
		fail("no replica accepted the batch")
	}
}

// requestMany pipelines all lines over one connection and collects one
// response per line (stopping early on connection errors).
func requestMany(addr string, lines []string) []string {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil
	}
	defer conn.Close()
	if _, err := fmt.Fprint(conn, strings.Join(lines, "\n")+"\n"); err != nil {
		return nil
	}
	scanner := bufio.NewScanner(conn)
	resps := make([]string, 0, len(lines))
	for range lines {
		if !scanner.Scan() {
			break
		}
		resps = append(resps, scanner.Text())
	}
	return resps
}

// requestUntil sends one line and collects response lines up to (but not
// including) the terminator — the shape of the STATS verb.
func requestUntil(addr, line, terminator string) []string {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return []string{"ERR " + err.Error()}
	}
	defer conn.Close()
	fmt.Fprintln(conn, line)
	scanner := bufio.NewScanner(conn)
	var lines []string
	for scanner.Scan() && scanner.Text() != terminator {
		lines = append(lines, scanner.Text())
	}
	return lines
}

// waitUntil polls the read until it matches want or the timeout elapses.
func waitUntil(addr, line, want string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if request(addr, line) == want {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	fail("timed out waiting for the command to apply")
}

func request(addr, line string) string {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return "ERR " + err.Error()
	}
	defer conn.Close()
	fmt.Fprintln(conn, line)
	scanner := bufio.NewScanner(conn)
	if scanner.Scan() {
		return scanner.Text()
	}
	return "ERR no response"
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "kvctl:", msg)
	os.Exit(1)
}
