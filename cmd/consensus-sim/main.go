// Command consensus-sim runs one algorithm under a configurable fault and
// network scenario and reports the outcome, per-round trace included.
//
// Examples:
//
//	go run ./cmd/consensus-sim -algo pbft -n 4 -b 1 -byz 3:equivocate
//	go run ./cmd/consensus-sim -algo paxos -n 3 -f 1 -crash 0:1 -good-phase 2
//	go run ./cmd/consensus-sim -algo benor -n 3 -f 1 -rel -seed 9
//	go run ./cmd/consensus-sim -algo mqb -n 9 -b 2 -inits a,b,c -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	consensus "genconsensus"
)

func main() {
	var (
		algo      = flag.String("algo", "pbft", "algorithm: otr|fab|mqb|paxos|ct|pbft|benor|byzbenor|generic1|generic2|generic3")
		n         = flag.Int("n", 4, "number of processes")
		b         = flag.Int("b", 0, "maximum Byzantine processes")
		f         = flag.Int("f", 0, "maximum crash-faulty processes")
		seed      = flag.Int64("seed", 1, "simulation seed")
		initsFlag = flag.String("inits", "a,b", "initial values, assigned round-robin")
		byzFlag   = flag.String("byz", "", "Byzantine processes: pid:strategy[,pid:strategy] (silent|equivocate|junk|forge|mimic)")
		crashFlag = flag.String("crash", "", "crashes: pid:round[,pid:round]")
		goodPhase = flag.Int("good-phase", 1, "first good phase (phases before are adversarial)")
		keepP     = flag.Float64("keep", 0.5, "bad-round delivery probability")
		rel       = flag.Bool("rel", false, "run every round under Prel (randomized algorithms)")
		alwaysBad = flag.Bool("always-bad", false, "never provide a good phase (safety-only run)")
		maxRounds = flag.Int("max-rounds", 600, "round budget")
		verbose   = flag.Bool("v", false, "print the per-round trace")
	)
	flag.Parse()

	spec, err := buildSpec(*algo, *n, *b, *f, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Println("algorithm:", spec)

	vals := strings.Split(*initsFlag, ",")
	initVals := make([]consensus.Value, 0, len(vals))
	for _, v := range vals {
		if v = strings.TrimSpace(v); v != "" {
			initVals = append(initVals, consensus.Value(v))
		}
	}
	if len(initVals) == 0 {
		fail(fmt.Errorf("no initial values"))
	}
	inits := consensus.SplitInits(*n, initVals...)

	opts := []consensus.RunOption{
		consensus.WithSeed(*seed),
		consensus.WithMaxRounds(*maxRounds),
		consensus.WithDropProbability(*keepP),
	}
	switch {
	case *rel:
		opts = append(opts, consensus.WithRel())
	case *alwaysBad:
		opts = append(opts, consensus.WithAlwaysBad())
	default:
		opts = append(opts, consensus.WithGoodFromPhase(consensus.Phase(*goodPhase)))
	}
	if *byzFlag != "" {
		for _, part := range strings.Split(*byzFlag, ",") {
			pid, strat, err := parseByz(part)
			if err != nil {
				fail(err)
			}
			delete(inits, pid)
			opts = append(opts, consensus.WithByzantine(pid, strat))
		}
	}
	if *crashFlag != "" {
		for _, part := range strings.Split(*crashFlag, ",") {
			pid, round, err := parsePair(part)
			if err != nil {
				fail(err)
			}
			opts = append(opts, consensus.WithCrash(consensus.PID(pid), consensus.Round(round)))
		}
	}

	res, err := consensus.Run(spec, inits, opts...)
	if err != nil {
		fail(err)
	}

	if *verbose {
		fmt.Println("\nper-round trace:")
		for _, rec := range res.Records {
			fmt.Printf("  r%-4d φ%-3d %-11s mode=%-5s sent=%-4d delivered=%-4d bytes=%d\n",
				rec.Round, rec.Phase, rec.Kind, rec.Mode, rec.Sent, rec.Delivered, rec.Bytes)
		}
	}

	fmt.Printf("\nrounds executed: %d\n", res.Rounds)
	fmt.Printf("all correct decided: %v\n", res.AllDecided)
	for p := consensus.PID(0); int(p) < *n; p++ {
		if v, ok := res.Decisions[p]; ok {
			fmt.Printf("  process %d → %q (round %d)\n", p, v, res.DecidedAt[p])
		} else {
			fmt.Printf("  process %d → (no decision)\n", p)
		}
	}
	fmt.Printf("traffic: %d msgs sent, %d delivered, %d bytes\n",
		res.Stats.MessagesSent, res.Stats.MessagesDelivered, res.Stats.BytesSent)
	if len(res.Violations) > 0 {
		fmt.Println("SAFETY VIOLATIONS:")
		for _, v := range res.Violations {
			fmt.Println("  -", v)
		}
		os.Exit(2)
	}
	fmt.Println("safety: OK")
}

func buildSpec(algo string, n, b, f int, seed int64) (*consensus.Spec, error) {
	switch strings.ToLower(algo) {
	case "otr", "onethirdrule":
		return consensus.NewOneThirdRule(n, f)
	case "fab", "fabpaxos":
		return consensus.NewFaBPaxos(n, b)
	case "mqb":
		return consensus.NewMQB(n, b)
	case "paxos":
		return consensus.NewPaxos(n, f)
	case "ct", "chandratoueg":
		return consensus.NewChandraToueg(n, f)
	case "pbft":
		return consensus.NewPBFT(n, b)
	case "benor":
		return consensus.NewBenOr(n, f, seed*31+7)
	case "byzbenor":
		return consensus.NewByzantineBenOr(n, b, seed*31+7, false)
	case "generic1":
		return consensus.NewGeneric(consensus.Class1, n, b, f)
	case "generic2":
		return consensus.NewGeneric(consensus.Class2, n, b, f)
	case "generic3":
		return consensus.NewGeneric(consensus.Class3, n, b, f)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func parseByz(part string) (consensus.PID, consensus.Strategy, error) {
	pid, name, err := splitPair(part)
	if err != nil {
		return 0, nil, err
	}
	var strat consensus.Strategy
	switch strings.ToLower(name) {
	case "silent":
		strat = consensus.Silent()
	case "equivocate":
		strat = consensus.Equivocate("a", "b")
	case "junk":
		strat = consensus.RandomJunk("a", "b", "z")
	case "forge":
		strat = consensus.ForgeTimestamp("z")
	case "mimic":
		strat = consensus.Mimic()
	default:
		return 0, nil, fmt.Errorf("unknown strategy %q", name)
	}
	return consensus.PID(pid), strat, nil
}

func parsePair(part string) (int, int, error) {
	pid, v, err := splitPair(part)
	if err != nil {
		return 0, 0, err
	}
	round, err := strconv.Atoi(v)
	if err != nil {
		return 0, 0, fmt.Errorf("bad round in %q: %w", part, err)
	}
	return pid, round, nil
}

func splitPair(part string) (int, string, error) {
	bits := strings.SplitN(strings.TrimSpace(part), ":", 2)
	if len(bits) != 2 {
		return 0, "", fmt.Errorf("expected pid:value, got %q", part)
	}
	pid, err := strconv.Atoi(bits[0])
	if err != nil {
		return 0, "", fmt.Errorf("bad pid in %q: %w", part, err)
	}
	return pid, bits[1], nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "consensus-sim:", err)
	os.Exit(1)
}
