// Command benchgate enforces benchmark floors in CI: it reads a cmd/benchjson
// report and checks that a named benchmark's metric clears a threshold,
// exiting non-zero (with a diagnostic naming the observed and required
// values) when it does not. Gates are positional arguments of the form
//
//	<benchmark-name>:<metric>:<min>
//
// matched against the report by exact name or by unique substring, so CI can
// write "TCPKVLoad/W=4" instead of the full benchmark path. Use -max to gate
// an upper bound instead (e.g. ns/op regressions, ratio metrics).
//
//	go run ./cmd/benchgate -input BENCH_wire.json 'TCPKVLoad/W=4:cmds/sec:16166'
//	go run ./cmd/benchjson < BENCH_wire.txt | go run ./cmd/benchgate 'TCPKVLoad/W=4:cmds/sec:16166'
//
// -ratio gates the quotient of one metric across two benchmarks instead of
// an absolute value — the shape of overhead bounds ("metrics-on throughput
// within 3% of metrics-off"):
//
//	go run ./cmd/benchgate -input BENCH_obs.json -ratio 'SMRObs/metrics=on:SMRObs/metrics=off:cmds/sec:0.97'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark and Report mirror cmd/benchjson's output schema.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		input  = flag.String("input", "", "benchjson report to read (empty = stdin)")
		max    = flag.Bool("max", false, "treat every threshold as an upper bound instead of a floor")
		ratios []string
	)
	flag.Func("ratio", "gate <numerator>:<denominator>:<metric>:<min> on the metric quotient of two benchmarks (repeatable)",
		func(s string) error { ratios = append(ratios, s); return nil })
	flag.Parse()
	if flag.NArg() == 0 && len(ratios) == 0 {
		fail("usage: benchgate [-input report.json] [-max] [-ratio num:den:metric:min] <name>:<metric>:<threshold> ...")
	}

	in := os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fail(err.Error())
		}
		defer f.Close()
		in = f
	}
	var report Report
	if err := json.NewDecoder(in).Decode(&report); err != nil {
		fail("parsing report: " + err.Error())
	}

	failed := 0
	for _, gate := range flag.Args() {
		name, metric, threshold, err := parseGate(gate)
		if err != nil {
			fail(err.Error())
		}
		b, err := findBenchmark(report.Benchmarks, name)
		if err != nil {
			fail(err.Error())
		}
		got, ok := b.Metrics[metric]
		if !ok {
			fail(fmt.Sprintf("%s: no metric %q (have %s)", b.Name, metric, metricNames(b)))
		}
		bad := got < threshold
		op := ">="
		if *max {
			bad = got > threshold
			op = "<="
		}
		if bad {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s %s = %g, need %s %g\n",
				b.Name, metric, got, op, threshold)
			failed++
			continue
		}
		fmt.Printf("benchgate: ok %s %s = %g (%s %g)\n", b.Name, metric, got, op, threshold)
	}
	for _, gate := range ratios {
		numName, denName, metric, min, err := parseRatio(gate)
		if err != nil {
			fail(err.Error())
		}
		num, err := findBenchmark(report.Benchmarks, numName)
		if err != nil {
			fail(err.Error())
		}
		den, err := findBenchmark(report.Benchmarks, denName)
		if err != nil {
			fail(err.Error())
		}
		nv, ok := num.Metrics[metric]
		if !ok {
			fail(fmt.Sprintf("%s: no metric %q (have %s)", num.Name, metric, metricNames(num)))
		}
		dv, ok := den.Metrics[metric]
		if !ok {
			fail(fmt.Sprintf("%s: no metric %q (have %s)", den.Name, metric, metricNames(den)))
		}
		if dv == 0 {
			fail(fmt.Sprintf("%s: %s is zero, ratio undefined", den.Name, metric))
		}
		got := nv / dv
		if got < min {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s / %s %s = %.4f, need >= %g\n",
				num.Name, den.Name, metric, got, min)
			failed++
			continue
		}
		fmt.Printf("benchgate: ok %s / %s %s = %.4f (>= %g)\n", num.Name, den.Name, metric, got, min)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// parseRatio splits "<num>:<den>:<metric>:<min>". Benchmark names and the
// metric may contain "/" but not ":", so splitting on the last three colons
// is exact.
func parseRatio(s string) (num, den, metric string, min float64, err error) {
	bad := func() (string, string, string, float64, error) {
		return "", "", "", 0, fmt.Errorf("ratio gate %q: want <num>:<den>:<metric>:<min>", s)
	}
	last := strings.LastIndex(s, ":")
	if last < 0 {
		return bad()
	}
	min, err = strconv.ParseFloat(s[last+1:], 64)
	if err != nil {
		return "", "", "", 0, fmt.Errorf("ratio gate %q: bad threshold: %v", s, err)
	}
	rest := s[:last]
	mid := strings.LastIndex(rest, ":")
	if mid < 0 {
		return bad()
	}
	metric = rest[mid+1:]
	rest = rest[:mid]
	first := strings.LastIndex(rest, ":")
	if first < 0 {
		return bad()
	}
	return rest[:first], rest[first+1:], metric, min, nil
}

// parseGate splits "<name>:<metric>:<min>". The metric itself may contain
// "/" (cmds/sec) but not ":", so splitting on the last two colons is exact.
func parseGate(s string) (name, metric string, threshold float64, err error) {
	last := strings.LastIndex(s, ":")
	if last < 0 {
		return "", "", 0, fmt.Errorf("gate %q: want <name>:<metric>:<threshold>", s)
	}
	threshold, err = strconv.ParseFloat(s[last+1:], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("gate %q: bad threshold: %v", s, err)
	}
	rest := s[:last]
	mid := strings.LastIndex(rest, ":")
	if mid < 0 {
		return "", "", 0, fmt.Errorf("gate %q: want <name>:<metric>:<threshold>", s)
	}
	return rest[:mid], rest[mid+1:], threshold, nil
}

// findBenchmark resolves a gate name to exactly one benchmark: an exact
// name match wins; otherwise the name must be a substring of exactly one
// benchmark (ambiguity is an error, not a guess).
func findBenchmark(benchmarks []Benchmark, name string) (Benchmark, error) {
	var matches []Benchmark
	for _, b := range benchmarks {
		if b.Name == name {
			return b, nil
		}
		if strings.Contains(b.Name, name) {
			matches = append(matches, b)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return Benchmark{}, fmt.Errorf("no benchmark matches %q", name)
	default:
		names := make([]string, len(matches))
		for i, b := range matches {
			names[i] = b.Name
		}
		return Benchmark{}, fmt.Errorf("%q is ambiguous: %s", name, strings.Join(names, ", "))
	}
}

func metricNames(b Benchmark) string {
	names := make([]string, 0, len(b.Metrics))
	for m := range b.Metrics {
		names = append(names, m)
	}
	return strings.Join(names, ", ")
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "benchgate:", msg)
	os.Exit(1)
}
