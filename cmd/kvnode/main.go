// Command kvnode is one replica of a TCP-replicated key-value store: PBFT
// consensus instances (the class-3 instantiation) decide a shared command
// log over the internal/transport runtime; the kv state machine applies it.
// Each instance decides a whole batch of queued commands (up to -max-batch),
// so pipelined client writes are amortized over one 3-round agreement.
//
// With -pipeline W > 1, up to W consensus instances run concurrently
// (PBFT-style pipelining): in-flight instances propose disjoint slices of
// the pending queue, decisions are buffered and committed strictly in
// instance order, and each committed instance's transport buffers are
// released. -adaptive-batch sizes every proposal from the queue depth and
// an EWMA of observed instance latency, so light load gets small batches
// and low latency while bursts fill batches and the pipeline.
//
// A 4-node local cluster:
//
//	go run ./cmd/kvnode -id 0 -n 4 -listen 127.0.0.1:7100 -client 127.0.0.1:7200 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 &
//	go run ./cmd/kvnode -id 1 -n 4 -listen 127.0.0.1:7101 -client 127.0.0.1:7201 -peers ... &
//	... (ids 2, 3)
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203 set color green
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 get color
//
// Client protocol (one line per request):
//
//	CMD <reqID> SET <key> <value>   → "QUEUED"
//	CMD <reqID> DEL <key>           → "QUEUED"
//	GET <key>                       → value or "NOTFOUND"
//	LOGLEN                          → decided-log length
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
	"genconsensus/internal/smr"
	"genconsensus/internal/transport"
)

func main() {
	var (
		id        = flag.Int("id", 0, "this node's process id")
		n         = flag.Int("n", 4, "cluster size")
		b         = flag.Int("b", 1, "Byzantine fault tolerance (n must exceed 3b)")
		listen    = flag.String("listen", "127.0.0.1:7100", "consensus listen address")
		client    = flag.String("client", "127.0.0.1:7200", "client listen address")
		peersFlag = flag.String("peers", "", "comma-separated consensus addresses, in pid order")
		authSeed  = flag.Int64("auth-seed", 42, "cluster authentication seed (must match on all nodes)")
		maxBatch  = flag.Int("max-batch", smr.MaxBatchSize, "max commands decided per consensus instance")
		pipeline  = flag.Int("pipeline", 4, "max concurrent consensus instances (1 = serial)")
		adaptive  = flag.Bool("adaptive-batch", true, "size batches from queue depth and observed instance latency")
	)
	flag.Parse()

	peerList := strings.Split(*peersFlag, ",")
	if len(peerList) != *n {
		log.Fatalf("kvnode: need %d peer addresses, got %d", *n, len(peerList))
	}
	peers := make(map[model.PID]string, *n)
	for i, addr := range peerList {
		peers[model.PID(i)] = strings.TrimSpace(addr)
	}

	node, err := transport.Listen(transport.Config{
		ID: model.PID(*id), N: *n,
		Peers:         peers,
		ListenAddr:    *listen,
		AuthSeed:      *authSeed,
		BaseTimeout:   50 * time.Millisecond,
		TimeoutGrowth: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("kvnode: %v", err)
	}
	defer node.Close()

	params := core.Params{
		N: *n, B: *b, F: 0, TD: 2**b + 1,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(*n, *b),
		Selector:   selector.NewAll(*n),
		Chooser:    smr.CommandChooser{},
		UseHistory: true,
	}
	if err := params.Validate(); err != nil {
		log.Fatalf("kvnode: %v", err)
	}

	store := kv.NewStore()
	replica := smr.NewReplica(model.PID(*id), store)
	replica.SetMaxBatch(*maxBatch)
	depth := *pipeline
	if depth < 1 {
		depth = 1
	}
	var ctrl *smr.AdaptiveBatch
	if *adaptive {
		ctrl = smr.NewAdaptiveBatch(smr.AdaptiveConfig{
			MaxBatch: *maxBatch,
			MaxDepth: depth,
			// Instance latency is observed in milliseconds; the good case
			// is ~2 rounds under the 50ms base timeout.
			BaseLatency: 100,
		})
		replica.SetBatchSizer(ctrl)
	}

	ln, err := net.Listen("tcp", *client)
	if err != nil {
		log.Fatalf("kvnode: client listen: %v", err)
	}
	defer ln.Close()
	log.Printf("kvnode %d: consensus on %s, clients on %s, pipeline depth %d",
		*id, node.Addr(), ln.Addr(), depth)

	var stopping atomic.Bool
	go serveClients(ln, replica, store, &stopping)
	d := &dispatcher{
		node: node, replica: replica, params: params,
		ctrl: ctrl, depth: depth, next: 1,
	}
	d.commits = smr.NewCommitQueue(replica, 1, func(instance uint64, _ model.Value, resps []string) {
		node.ReleaseInstance(instance)
		log.Printf("kvnode: instance %d decided %d command(s), log length %d",
			instance, len(resps), replica.Log.Len())
	})
	go d.run(&stopping)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	stopping.Store(true)
	log.Printf("kvnode %d: shutting down", *id)
}

// dispatcher drives the pipelined instance schedule: a pool of up to depth
// workers runs concurrent RunProc calls, proposals claim disjoint slices of
// the pending queue, and decisions flow through an smr.CommitQueue so a
// later instance that decides first waits for its predecessors.
type dispatcher struct {
	node    *transport.Node
	replica *smr.Replica
	params  core.Params
	ctrl    *smr.AdaptiveBatch
	depth   int
	commits *smr.CommitQueue

	// next is single-writer state of the run loop; worker goroutines get
	// their instance number by value and never touch it.
	next uint64
}

// run starts instances while there is unclaimed pending work or while peers
// have already begun the next instance (joining keeps a lagging replica in
// lockstep with proposers).
func (d *dispatcher) run(stopping *atomic.Bool) {
	sem := make(chan struct{}, d.depth)
	for !stopping.Load() {
		queue := d.replica.PendingLen()
		join := d.node.HasInstance(d.next)
		if d.commits.Unclaimed() == 0 && !join {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		// Adaptive window: a backlog of one command gets one instance, not
		// depth speculative ones.
		if d.ctrl != nil && !join && len(sem) >= d.ctrl.Depth(queue) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		sem <- struct{}{} // caps in-flight instances at depth
		instance := d.next
		d.next++
		proposal := d.commits.Claim(instance, 0)
		go func(instance uint64, proposal model.Value) {
			defer func() { <-sem }()
			d.decideInstance(instance, proposal, stopping)
		}(instance, proposal)
	}
}

// decideInstance runs one instance to its decision (retrying while peers
// are down or slow) and hands it to the in-order committer. It must always
// deliver a decision eventually: the commit queue cannot advance past a
// missing instance, so giving up would wedge every later commit.
func (d *dispatcher) decideInstance(instance uint64, proposal model.Value, stopping *atomic.Bool) {
	start := time.Now()
	for !stopping.Load() {
		proc, err := core.NewProcess(d.node.ID(), proposal, d.params)
		if err != nil {
			// A rejected proposal (never expected: params are validated and
			// Proposal yields admissible values) must not wedge the commit
			// queue — fall back to NoOp; if even that fails the
			// configuration is broken beyond local repair.
			if proposal != smr.NoOp {
				log.Printf("kvnode: instance %d: building process: %v (retrying as NoOp)", instance, err)
				proposal = smr.NoOp
				continue
			}
			log.Fatalf("kvnode: instance %d: building process: %v", instance, err)
		}
		decided, err := d.node.RunProc(instance, proc, 400, 6)
		if err != nil {
			log.Printf("kvnode: instance %d: %v (retrying)", instance, err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if d.ctrl != nil {
			d.ctrl.Observe(float64(time.Since(start).Milliseconds()))
		}
		d.commits.Deliver(instance, decided)
		return
	}
}

func serveClients(ln net.Listener, replica *smr.Replica, store *kv.Store, stopping *atomic.Bool) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if stopping.Load() {
				return
			}
			continue
		}
		go handleClient(conn, replica, store)
	}
}

func handleClient(conn net.Conn, replica *smr.Replica, store *kv.Store) {
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		var resp string
		switch strings.ToUpper(fields[0]) {
		case "CMD":
			resp = handleCmd(fields[1:], replica)
		case "GET":
			if len(fields) != 2 {
				resp = "ERR usage: GET <key>"
			} else if v, ok := store.Get(fields[1]); ok {
				resp = v
			} else {
				resp = "NOTFOUND"
			}
		case "LOGLEN":
			resp = fmt.Sprintf("%d", replica.Log.Len())
		default:
			resp = "ERR unknown command"
		}
		fmt.Fprintln(conn, resp)
	}
}

func handleCmd(fields []string, replica *smr.Replica) string {
	if len(fields) < 3 {
		return "ERR usage: CMD <reqID> SET|DEL <key> [value]"
	}
	reqID, op := fields[0], strings.ToUpper(fields[1])
	var cmd model.Value
	switch op {
	case "SET":
		if len(fields) != 4 {
			return "ERR usage: CMD <reqID> SET <key> <value>"
		}
		cmd = kv.Command(reqID, "SET", fields[2], fields[3])
	case "DEL":
		if len(fields) != 3 {
			return "ERR usage: CMD <reqID> DEL <key>"
		}
		cmd = kv.Command(reqID, "DEL", fields[2], "")
	default:
		return "ERR unknown op " + op
	}
	if !smr.Admissible(cmd) {
		return "ERR inadmissible command"
	}
	replica.Submit(cmd)
	return "QUEUED"
}
