// Command kvnode is one replica of a TCP-replicated key-value store:
// consensus instances (PBFT, or the class-3 generic algorithm when -f > 0)
// decide a shared command log over the internal/transport runtime; the kv
// state machine applies it. The heavy lifting lives in internal/node — this
// binary only parses flags.
//
// Each instance decides a whole batch of queued commands (up to
// -max-batch); with -pipeline W > 1 up to W instances run concurrently,
// and -adaptive-batch sizes proposals from queue depth and observed
// latency.
//
// With -shards S > 1 the node partitions the keyspace across S independent
// consensus groups on the same replica set — each group its own pipeline,
// commit queue, WAL directory and snapshot chain — and routes every write
// to the group owning its key (see docs/SHARD.md). All replicas and
// sharding-aware clients must agree on S.
//
// With -snapshot-interval K > 0 the node checkpoints its state machine
// every K committed instances, truncates its log below the checkpoint
// (bounded memory), serves the checkpoint to recovering peers over the
// MAC-protected state-transfer exchange, and — on restart — fetches the
// newest checkpoint that b+1 peers agree on and rejoins the pipeline at
// its watermark instead of replaying a history that no longer exists.
// -applied-keep bounds the duplicate-suppression table at each checkpoint.
//
// With -data-dir the node is durable: every decided instance is appended
// to a CRC-framed write-ahead log before it is applied (-fsync/-fsync-batch
// trade flush cost against the power-loss window), checkpoints persist as
// atomic on-disk files (incremental deltas with a periodic full snapshot,
// -full-snapshot-every), and restart recovery runs disk-first — local
// checkpoint, WAL replay, then the peer probe — so even a whole-cluster
// power cycle converges from the data directories alone.
//
// A 4-node local cluster:
//
//	go run ./cmd/kvnode -id 0 -n 4 -listen 127.0.0.1:7100 -client 127.0.0.1:7200 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 &
//	... (ids 1, 2, 3)
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203 set color green
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 get color
//
// With -client-auth the node accepts only signed writes (the authenticated
// command lifecycle): clients MAC each command over (client, seq, payload),
// ingress/chooser/apply all verify provenance, and dedup keys on
// (client, seq). Use kvctl -auth against such a cluster.
//
// Client protocol (one line per request):
//
//	CMD <reqID> SET <key> <value>             → "QUEUED" (legacy mode)
//	ACMD <client> <seq> <mac-hex> SET <k> <v> → "QUEUED" (-client-auth)
//	CMD <reqID> DEL <key>                     → "QUEUED"
//	GET <key>                                 → value or "NOTFOUND"
//	LOGLEN                                    → decided-log length
//	STATS                                     → key=value metric lines, then "END"
//
// Observability (docs/OBSERVABILITY.md): the node keeps a live metrics
// registry (STATS above; -metrics-addr serves it as JSON over HTTP next to
// /debug/pprof) and, with -data-dir, appends structured events to
// <data-dir>/events.log for cmd/loganalyzer to merge into a cluster
// timeline. -nometrics turns the registry off.
package main

import (
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/node"
	"genconsensus/internal/smr"
)

func main() {
	var (
		id         = flag.Int("id", 0, "this node's process id")
		n          = flag.Int("n", 4, "cluster size")
		b          = flag.Int("b", 1, "Byzantine fault tolerance (n must exceed 3b)")
		f          = flag.Int("f", 0, "benign crash tolerance (0 = PBFT, >0 = class-3 generic)")
		td         = flag.Int("td", 0, "decision threshold (0 = 2b+1)")
		listen     = flag.String("listen", "127.0.0.1:7100", "consensus listen address")
		client     = flag.String("client", "127.0.0.1:7200", "client listen address")
		peersFlag  = flag.String("peers", "", "comma-separated consensus addresses, in pid order")
		authSeed   = flag.Int64("auth-seed", 42, "cluster authentication seed (must match on all nodes)")
		maxBatch   = flag.Int("max-batch", smr.MaxBatchSize, "max commands decided per consensus instance")
		pipeline   = flag.Int("pipeline", 4, "max concurrent consensus instances per group (1 = serial)")
		adaptive   = flag.Bool("adaptive-batch", true, "size batches from queue depth and observed instance latency")
		shards     = flag.Int("shards", 1, "independent consensus groups partitioning the keyspace (must match on all nodes)")
		snapEvery  = flag.Uint64("snapshot-interval", 1024, "checkpoint every K committed instances (0 disables snapshots and recovery)")
		keep       = flag.Int("applied-keep", 1<<16, "dedup-table entries kept at each checkpoint (0 = unbounded)")
		dataDir    = flag.String("data-dir", "", "durable storage directory (WAL + checkpoints; empty = memory-only)")
		fsync      = flag.Bool("fsync", true, "fsync WAL appends and checkpoint writes (with -data-dir)")
		fsyncBatch = flag.Int("fsync-batch", 8, "WAL appends per fsync (1 = every append)")
		fullEvery  = flag.Int("full-snapshot-every", 4, "every k-th on-disk checkpoint is full, the rest are deltas")
		clientAuth = flag.Bool("client-auth", false, "require signed client commands (ACMD; provenance checked at every layer)")
		numClients = flag.Int("num-clients", 16, "provisioned client keyring size (with -client-auth)")
		clientSeed = flag.Int64("client-seed", 0, "client key derivation seed (0 = -auth-seed; must match kvctl)")
		clientWin  = flag.Int("client-window", 0, "per-client replay/dedup window (0 = default)")
		metricsAdr = flag.String("metrics-addr", "", "HTTP debug address: /metrics (flat JSON of the live registry) + /debug/pprof (empty = disabled)")
		noMetrics  = flag.Bool("nometrics", false, "disable the metrics registry entirely")
		digest     = flag.Bool("digest-votes", false, "vote with 32-byte batch digests; payloads travel once on the content-addressed payload plane (must match on all nodes)")
		fanout     = flag.Int("gossip-fanout", 0, "with -digest-votes, push each payload to this many random peers instead of all (0 = full mesh); the rest pull by digest")
	)
	flag.Parse()

	peerList := strings.Split(*peersFlag, ",")
	if len(peerList) != *n {
		log.Fatalf("kvnode: need %d peer addresses, got %d", *n, len(peerList))
	}
	peers := make(map[model.PID]string, *n)
	for i, addr := range peerList {
		peers[model.PID(i)] = strings.TrimSpace(addr)
	}

	nd, err := node.New(node.Config{
		ID: model.PID(*id), N: *n, B: *b, F: *f, TD: *td,
		Peers:             peers,
		ListenAddr:        *listen,
		ClientAddr:        *client,
		AuthSeed:          *authSeed,
		MaxBatch:          *maxBatch,
		Pipeline:          *pipeline,
		Adaptive:          *adaptive,
		Shards:            *shards,
		SnapshotInterval:  *snapEvery,
		AppliedKeep:       *keep,
		DataDir:           *dataDir,
		Fsync:             *fsync,
		FsyncBatch:        *fsyncBatch,
		FullSnapshotEvery: *fullEvery,
		ClientAuth:        *clientAuth,
		NumClients:        *numClients,
		ClientSeed:        *clientSeed,
		ClientWindow:      *clientWin,
		DigestVotes:       *digest,
		GossipFanout:      *fanout,
		NoMetrics:         *noMetrics,
		Logf:              log.Printf,
	}, kv.NewStore())
	if err != nil {
		log.Fatalf("kvnode: %v", err)
	}
	if *metricsAdr != "" {
		// pprof handlers register on http.DefaultServeMux via the blank
		// import; /metrics joins them with the registry's flat JSON dump.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if reg := nd.Metrics(); reg != nil {
				_ = reg.WriteJSON(w)
			} else {
				_, _ = w.Write([]byte("{}\n"))
			}
		})
		go func() {
			if err := http.ListenAndServe(*metricsAdr, nil); err != nil {
				log.Printf("kvnode: metrics server: %v", err)
			}
		}()
	}
	log.Printf("kvnode %d: consensus on %s, clients on %s, %d shard(s), pipeline depth %d, snapshot interval %d",
		*id, nd.Addr(), nd.ClientAddr(), *shards, *pipeline, *snapEvery)
	nd.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("kvnode %d: shutting down", *id)
	nd.Stop()
}
