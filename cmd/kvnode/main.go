// Command kvnode is one replica of a TCP-replicated key-value store: PBFT
// consensus instances (the class-3 instantiation) decide a shared command
// log over the internal/transport runtime; the kv state machine applies it.
// Each instance decides a whole batch of queued commands (up to -max-batch),
// so pipelined client writes are amortized over one 3-round agreement.
//
// A 4-node local cluster:
//
//	go run ./cmd/kvnode -id 0 -n 4 -listen 127.0.0.1:7100 -client 127.0.0.1:7200 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 &
//	go run ./cmd/kvnode -id 1 -n 4 -listen 127.0.0.1:7101 -client 127.0.0.1:7201 -peers ... &
//	... (ids 2, 3)
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200,127.0.0.1:7201,127.0.0.1:7202,127.0.0.1:7203 set color green
//	go run ./cmd/kvctl -nodes 127.0.0.1:7200 get color
//
// Client protocol (one line per request):
//
//	CMD <reqID> SET <key> <value>   → "QUEUED"
//	CMD <reqID> DEL <key>           → "QUEUED"
//	GET <key>                       → value or "NOTFOUND"
//	LOGLEN                          → decided-log length
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
	"genconsensus/internal/smr"
	"genconsensus/internal/transport"
)

func main() {
	var (
		id        = flag.Int("id", 0, "this node's process id")
		n         = flag.Int("n", 4, "cluster size")
		b         = flag.Int("b", 1, "Byzantine fault tolerance (n must exceed 3b)")
		listen    = flag.String("listen", "127.0.0.1:7100", "consensus listen address")
		client    = flag.String("client", "127.0.0.1:7200", "client listen address")
		peersFlag = flag.String("peers", "", "comma-separated consensus addresses, in pid order")
		authSeed  = flag.Int64("auth-seed", 42, "cluster authentication seed (must match on all nodes)")
		maxBatch  = flag.Int("max-batch", smr.MaxBatchSize, "max commands decided per consensus instance")
	)
	flag.Parse()

	peerList := strings.Split(*peersFlag, ",")
	if len(peerList) != *n {
		log.Fatalf("kvnode: need %d peer addresses, got %d", *n, len(peerList))
	}
	peers := make(map[model.PID]string, *n)
	for i, addr := range peerList {
		peers[model.PID(i)] = strings.TrimSpace(addr)
	}

	node, err := transport.Listen(transport.Config{
		ID: model.PID(*id), N: *n,
		Peers:         peers,
		ListenAddr:    *listen,
		AuthSeed:      *authSeed,
		BaseTimeout:   50 * time.Millisecond,
		TimeoutGrowth: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("kvnode: %v", err)
	}
	defer node.Close()

	params := core.Params{
		N: *n, B: *b, F: 0, TD: 2**b + 1,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(*n, *b),
		Selector:   selector.NewAll(*n),
		Chooser:    smr.CommandChooser{},
		UseHistory: true,
	}
	if err := params.Validate(); err != nil {
		log.Fatalf("kvnode: %v", err)
	}

	store := kv.NewStore()
	replica := smr.NewReplica(model.PID(*id), store)
	replica.SetMaxBatch(*maxBatch)

	ln, err := net.Listen("tcp", *client)
	if err != nil {
		log.Fatalf("kvnode: client listen: %v", err)
	}
	defer ln.Close()
	log.Printf("kvnode %d: consensus on %s, clients on %s", *id, node.Addr(), ln.Addr())

	var stopping atomic.Bool
	go serveClients(ln, replica, store, &stopping)
	go runInstances(node, replica, params, &stopping)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	stopping.Store(true)
	log.Printf("kvnode %d: shutting down", *id)
}

// runInstances drives consensus instances sequentially: a new instance
// starts when this replica has pending commands or when peers have already
// begun it.
func runInstances(node *transport.Node, replica *smr.Replica, params core.Params, stopping *atomic.Bool) {
	instance := uint64(1)
	for !stopping.Load() {
		if replica.PendingLen() == 0 && !node.HasInstance(instance) {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		proposal := replica.Proposal()
		proc, err := core.NewProcess(node.ID(), proposal, params)
		if err != nil {
			log.Printf("kvnode: building process: %v", err)
			return
		}
		decided, err := node.RunProc(instance, proc, 400, 6)
		if err != nil {
			// Peers may be down or slow: retry the same instance.
			log.Printf("kvnode: instance %d: %v (retrying)", instance, err)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		resps := replica.Commit(decided)
		log.Printf("kvnode: instance %d decided %d command(s), log length %d",
			instance, len(resps), replica.Log.Len())
		instance++
	}
}

func serveClients(ln net.Listener, replica *smr.Replica, store *kv.Store, stopping *atomic.Bool) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if stopping.Load() {
				return
			}
			continue
		}
		go handleClient(conn, replica, store)
	}
}

func handleClient(conn net.Conn, replica *smr.Replica, store *kv.Store) {
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		var resp string
		switch strings.ToUpper(fields[0]) {
		case "CMD":
			resp = handleCmd(fields[1:], replica)
		case "GET":
			if len(fields) != 2 {
				resp = "ERR usage: GET <key>"
			} else if v, ok := store.Get(fields[1]); ok {
				resp = v
			} else {
				resp = "NOTFOUND"
			}
		case "LOGLEN":
			resp = fmt.Sprintf("%d", replica.Log.Len())
		default:
			resp = "ERR unknown command"
		}
		fmt.Fprintln(conn, resp)
	}
}

func handleCmd(fields []string, replica *smr.Replica) string {
	if len(fields) < 3 {
		return "ERR usage: CMD <reqID> SET|DEL <key> [value]"
	}
	reqID, op := fields[0], strings.ToUpper(fields[1])
	var cmd model.Value
	switch op {
	case "SET":
		if len(fields) != 4 {
			return "ERR usage: CMD <reqID> SET <key> <value>"
		}
		cmd = kv.Command(reqID, "SET", fields[2], fields[3])
	case "DEL":
		if len(fields) != 3 {
			return "ERR usage: CMD <reqID> DEL <key>"
		}
		cmd = kv.Command(reqID, "DEL", fields[2], "")
	default:
		return "ERR unknown op " + op
	}
	if !smr.Admissible(cmd) {
		return "ERR inadmissible command"
	}
	replica.Submit(cmd)
	return "QUEUED"
}
