// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON summary (written to stdout). The raw text remains the
// benchstat-compatible artifact; the JSON is for dashboards and CI
// annotations that should not re-parse the text format:
//
//	go test -bench=SMRPipelined -run='^$' . | tee BENCH_pipeline.txt | go run ./cmd/benchjson > BENCH_pipeline.json
//
// Every benchmark result line becomes one record holding the iteration
// count and every reported metric (ns/op, B/op, allocs/op and custom
// b.ReportMetric units like cmds/sec). Header lines (goos, goarch, pkg,
// cpu) become top-level fields.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	report := Report{Benchmarks: []Benchmark{}}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			report.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if b, ok := parseLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine decodes one "BenchmarkX-8  12  34 ns/op  5 B/op ..." line:
// a benchmark name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       trimProcSuffix(fields[0]),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// trimProcSuffix drops the trailing -GOMAXPROCS decoration so names are
// stable across machines ("BenchmarkX/y=1-8" → "BenchmarkX/y=1").
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
