package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"genconsensus/internal/obs"
)

// TestRoundTrip writes three nodes' event logs through the real EventLog
// encoder, merges them through the analyzer entry point, and checks the
// rendered timeline and summary reflect every event — the JSONL encode →
// decode → merge → summarize loop end to end.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for node := 0; node < 3; node++ {
		sub := filepath.Join(dir, "node-"+string(rune('0'+node)))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		l, err := obs.OpenEventLog(filepath.Join(sub, "events.log"), node)
		if err != nil {
			t.Fatal(err)
		}
		l.Emit(-1, "start", "n", 3)
		l.Emit(0, "decide", "instance", uint64(node+1), "cmds", 2)
		if node == 2 {
			l.Emit(0, "recover.local", "instance", uint64(7))
			l.Emit(-1, "start", "n", 3) // restart
			l.Emit(0, "decide", "instance", uint64(9), "cmds", 1)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Wall-clock merge keys need distinct timestamps across nodes.
		time.Sleep(2 * time.Millisecond)
	}

	var out strings.Builder
	if err := run(&out, []string{dir}, true, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()

	for _, want := range []string{
		"node=0", "node=1", "node=2",
		"decide", "recover.local",
		"(2 starts: crashed and recovered)",
		"group 0: decided through instance 9",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// The directory walk found all three logs and the merge kept every
	// event: 3 starts + 3 decides + 1 recover + 1 restart start + 1 decide.
	events := 0
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "node=") {
			events++
		}
	}
	if events != 9 {
		t.Errorf("timeline has %d events, want 9:\n%s", events, got)
	}
}

// TestRoundTripValues checks decoded field values survive the trip exactly.
func TestRoundTripValues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, err := obs.OpenEventLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(2, "decide", "instance", uint64(42), "cmds", 7,
		"why", `quote " and \ back`, "ok", true, "lat", 1500*time.Microsecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEventFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	e := events[0]
	if e.Node != 4 || e.Group != 2 || e.Kind != "decide" {
		t.Errorf("header mismatch: %+v", e)
	}
	if e.Int("instance") != 42 || e.Int("cmds") != 7 || e.Int("lat") != 1500000 {
		t.Errorf("numeric fields mismatch: %+v", e.Fields)
	}
	if e.Field("why") != `quote " and \ back` {
		t.Errorf("escaped string mismatch: %q", e.Field("why"))
	}
	if e.Fields["ok"] != true {
		t.Errorf("bool mismatch: %v", e.Fields["ok"])
	}
}
