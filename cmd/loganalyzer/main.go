// Command loganalyzer merges per-node events.log files (the structured
// JSONL streams written by internal/obs.EventLog) into one wall-clock-
// ordered cluster timeline and reduces it to per-phase summaries: who
// decided what, who crashed and recovered, how long each recovery took,
// which nodes caught up from peers and how often anything stalled.
//
// Usage:
//
//	loganalyzer [-timeline] [-summary] <events.log> [<events.log> ...]
//
// With no flags both views print (timeline first). A directory argument is
// walked for files named events.log, so pointing the analyzer at a test's
// data directory root picks up every node and every group.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"genconsensus/internal/obs"
)

func main() {
	timeline := flag.Bool("timeline", false, "print the merged event timeline")
	summary := flag.Bool("summary", false, "print the per-phase summary")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: loganalyzer [-timeline] [-summary] <events.log|dir> ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if !*timeline && !*summary {
		*timeline, *summary = true, true
	}
	if err := run(os.Stdout, flag.Args(), *timeline, *summary); err != nil {
		fmt.Fprintf(os.Stderr, "loganalyzer: %v\n", err)
		os.Exit(1)
	}
}

// run merges the named logs and writes the requested views to w.
func run(w io.Writer, args []string, timeline, summary bool) error {
	paths, err := expand(args)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no events.log files found")
	}
	perNode := make([][]obs.Event, 0, len(paths))
	for _, p := range paths {
		events, err := obs.ReadEventFile(p)
		if err != nil {
			return fmt.Errorf("reading %s: %w", p, err)
		}
		perNode = append(perNode, events)
	}
	t := obs.MergeTimeline(perNode...)
	if timeline {
		if err := obs.WriteTimeline(w, t); err != nil {
			return err
		}
	}
	if summary {
		if timeline {
			fmt.Fprintln(w)
		}
		if err := obs.WriteSummary(w, obs.Summarize(t)); err != nil {
			return err
		}
	}
	return nil
}

// expand resolves each argument to event-log files: files pass through,
// directories are walked for events.log entries.
func expand(args []string) ([]string, error) {
	var paths []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && d.Name() == "events.log" {
				paths = append(paths, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}
