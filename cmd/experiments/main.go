// Command experiments regenerates every table and figure of the paper plus
// the repository's extension experiments. Each experiment prints a
// self-contained plain-text table; EXPERIMENTS.md records a captured run.
//
// Usage:
//
//	go run ./cmd/experiments               # all experiments
//	go run ./cmd/experiments -exp table1   # one experiment
//	go run ./cmd/experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	consensus "genconsensus"
	"genconsensus/internal/adversary"
	"genconsensus/internal/auth"
	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/model"
	"genconsensus/internal/quorum"
	"genconsensus/internal/round"
	"genconsensus/internal/selector"
	"genconsensus/internal/sim"
	"genconsensus/internal/wic"
)

type experiment struct {
	id   string
	desc string
	run  func()
}

var experiments = []experiment{
	{"table1", "Table 1: the three classes (bounds verified by execution)", runTable1},
	{"figure1", "Figure 1: class-1 FLV quorum counting (n=6, b=1, TD=5)", expFigure1},
	{"figure2", "Figure 2: class-2 FLV timestamps (n=5, b=1, TD=4)", expFigure2},
	{"figure3", "Figure 3: class-3 FLV histories (n=4, b=1, TD=3)", expFigure3},
	{"rounds", "E-RT: rounds/phases to decision per algorithm", expRounds},
	{"messages", "E-MSG: message/byte complexity vs n", expMessages},
	{"tightness", "E-TIGHT: behaviour at and below the class bounds", expTightness},
	{"gst", "E-GST: rounds to decision vs first good phase", expGST},
	{"benor", "E-BENOR: randomized Ben-Or phase counts (incl. n=4b+1 finding)", expBenOr},
	{"wic", "E-WIC: cost of building Pcons from Pgood", expWIC},
	{"diff", "E-DIFF: instantiations vs original algorithms", expDiff},
}

func main() {
	var (
		exp  = flag.String("exp", "", "run a single experiment by id")
		list = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}
	ran := false
	for _, e := range experiments {
		if *exp != "" && e.id != *exp {
			continue
		}
		fmt.Printf("==== %s — %s ====\n\n", e.id, e.desc)
		e.run()
		fmt.Println()
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiment failed:", err)
		os.Exit(1)
	}
}

func mustSpec(s *consensus.Spec, err error) *consensus.Spec {
	check(err)
	return s
}

// ---- Table 1 ---------------------------------------------------------------

func runTable1() {
	fmt.Println("Columns mirror Table 1; n(min) is verified by running the class")
	fmt.Println("representative at that n to decision (fault-free, split inputs).")
	fmt.Println()
	fmt.Printf("%-7s %-5s %-12s %-9s %-8s %-18s %-7s %-22s\n",
		"class", "FLAG", "TD bound", "n bound", "n(min)", "state", "rounds", "examples")
	type rowDef struct {
		class    consensus.Class
		flag     string
		tdBound  string
		nBound   string
		examples string
	}
	rows := []rowDef{
		{consensus.Class1, "*", "> (n+3b+f)/2", "> 5b+3f", "OneThirdRule (b=0), FaB Paxos (f=0)"},
		{consensus.Class2, "φ", "> 3b+f", "> 4b+2f", "Paxos, CT (b=0), MQB (f=0, new)"},
		{consensus.Class3, "φ", "> 2b+f", "> 3b+2f", "(Paxos, CT) (b=0), PBFT (f=0)"},
	}
	b, f := 1, 1
	for _, r := range rows {
		nMin := quorum.MinN(r.class, b, f)
		spec := mustSpec(consensus.NewGeneric(r.class, nMin, b, f))
		inits := consensus.SplitInits(nMin, "b", "a")
		for p := range inits {
			if int(p) >= nMin-b {
				delete(inits, p) // Byzantine slots
			}
		}
		opts := []consensus.RunOption{consensus.WithSeed(5)}
		for i := 0; i < b; i++ {
			opts = append(opts, consensus.WithByzantine(consensus.PID(nMin-1-i), consensus.Silent()))
		}
		res, err := consensus.Run(spec, inits, opts...)
		check(err)
		status := fmt.Sprintf("%d ✓", nMin)
		if !res.AllDecided || len(res.Violations) > 0 {
			status = fmt.Sprintf("%d ✗", nMin)
		}
		fmt.Printf("%-7s %-5s %-12s %-9s %-8s %-18s %-7d %-22s\n",
			r.class, r.flag, r.tdBound, r.nBound, status,
			strings.Join(spec.StateVars(), ","), spec.RoundsPerPhase(), r.examples)
	}
	fmt.Println()
	fmt.Printf("verification fault model: b=%d (silent Byzantine), f=%d (budgeted, not used)\n", b, f)
	fmt.Println()
	fmt.Println("n(min) per class across (b, f) — MinN = bound+1:")
	fmt.Printf("%-8s", "b\\f")
	for f := 0; f <= 3; f++ {
		fmt.Printf("  f=%d:c1/c2/c3", f)
	}
	fmt.Println()
	for b := 0; b <= 3; b++ {
		fmt.Printf("b=%-6d", b)
		for f := 0; f <= 3; f++ {
			fmt.Printf("  %2d/%2d/%2d    ",
				quorum.MinN(consensus.Class1, b, f),
				quorum.MinN(consensus.Class2, b, f),
				quorum.MinN(consensus.Class3, b, f))
		}
		fmt.Println()
	}
}

// ---- Figures ---------------------------------------------------------------

func sel(vote model.Value, ts model.Phase, hist model.History) model.Message {
	return model.Message{Kind: model.SelectionRound, Vote: vote, TS: ts, History: hist}
}

func evalSubsets(f flv.Func, msgs []model.Message, phase model.Phase) (locked, null, any int, badReturns []string) {
	n := len(msgs)
	for mask := 1; mask < 1<<n; mask++ {
		mu := model.Received{}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				mu[model.PID(i)] = msgs[i]
			}
		}
		res := f.Eval(mu, phase)
		switch res.Out {
		case flv.Locked:
			if res.Val == "v1" {
				locked++
			} else {
				badReturns = append(badReturns, fmt.Sprintf("subset %b returned %s", mask, res.Val))
			}
		case flv.None:
			null++
		case flv.Any:
			any++
			badReturns = append(badReturns, fmt.Sprintf("subset %b returned ?", mask))
		}
	}
	return
}

func expFigure1() {
	fmt.Println("Scenario: v1 locked; TD-b = 4 honest v1 votes, 2 v2 votes.")
	fmt.Println("Claim: any µ with more than 2(n-TD+b) = 4 messages yields v1;")
	fmt.Println("smaller µ yields v1 or null; v2 and ? are never returned.")
	fmt.Println()
	msgs := []model.Message{
		sel("v1", 0, nil), sel("v1", 0, nil), sel("v1", 0, nil), sel("v1", 0, nil),
		sel("v2", 0, nil), sel("v2", 0, nil),
	}
	f := flv.NewClass1(6, 5, 1)
	locked, null, _, bad := evalSubsets(f, msgs, 1)
	fmt.Printf("all %d non-empty subsets evaluated: %d → v1, %d → null, %d violations\n",
		(1<<6)-1, locked, null, len(bad))
	for _, s := range bad {
		fmt.Println("  VIOLATION:", s)
	}
	full := model.Received{}
	for i, m := range msgs {
		full[model.PID(i)] = m
	}
	fmt.Printf("full vector → %s (paper: v1)\n", f.Eval(full, 1))
}

func expFigure2() {
	fmt.Println("Scenario: v1 validated at φ1=2 by TD-b = 3 honest processes; one")
	fmt.Println("honest process holds (v2, φ2'<φ1); the Byzantine forges (v2, φ2>φ1).")
	fmt.Println("Claim: the >b multiplicity rule defeats the forged timestamp.")
	fmt.Println()
	msgs := []model.Message{
		sel("v1", 2, nil), sel("v1", 2, nil), sel("v1", 2, nil),
		sel("v2", 1, nil), sel("v2", 5, nil),
	}
	f := flv.NewClass2(5, 4, 1)
	locked, null, _, bad := evalSubsets(f, msgs, 3)
	fmt.Printf("all %d non-empty subsets evaluated: %d → v1, %d → null, %d violations\n",
		(1<<5)-1, locked, null, len(bad))
	for _, s := range bad {
		fmt.Println("  VIOLATION:", s)
	}
	full := model.Received{}
	for i, m := range msgs {
		full[model.PID(i)] = m
	}
	fmt.Printf("full vector → %s (paper: v1)\n", f.Eval(full, 3))
}

func expFigure3() {
	fmt.Println("Scenario: v1 validated at φ1=2 by TD-b = 2 honest processes whose")
	fmt.Println("histories contain (v1, φ1); one honest holds (v2, φ2'<φ1); the")
	fmt.Println("Byzantine forges (v2, φ2>φ1) with a fabricated history. Claim: a")
	fmt.Println("history entry counts only with more than b independent backers.")
	fmt.Println()
	h1 := model.NewHistory("v1").Add("v1", 2)
	h2 := model.NewHistory("v2").Add("v1", 2)
	h3 := model.NewHistory("v2").Add("v2", 1)
	h4 := model.NewHistory("v2").Add("v2", 5)
	msgs := []model.Message{
		sel("v1", 2, h1), sel("v1", 2, h2), sel("v2", 1, h3), sel("v2", 5, h4),
	}
	f := flv.NewClass3(4, 3, 1, false)
	locked, null, _, bad := evalSubsets(f, msgs, 3)
	fmt.Printf("all %d non-empty subsets evaluated: %d → v1, %d → null, %d violations\n",
		(1<<4)-1, locked, null, len(bad))
	for _, s := range bad {
		fmt.Println("  VIOLATION:", s)
	}
	full := model.Received{}
	for i, m := range msgs {
		full[model.PID(i)] = m
	}
	fmt.Printf("full vector → %s (paper: v1)\n", f.Eval(full, 3))
}

// ---- E-RT: rounds per decision ---------------------------------------------

func expRounds() {
	fmt.Println("Fault-free synchronous runs at minimal n, split inputs; the")
	fmt.Println("'rounds' column shows Table 1's rounds-per-phase trade-off live.")
	fmt.Println()
	type algo struct {
		spec *consensus.Spec
		note string
	}
	algos := []algo{
		{mustSpec(consensus.NewOneThirdRule(4, 1)), "merged (1 round/phase)"},
		{mustSpec(consensus.NewFaBPaxos(6, 1)), "2 rounds/phase"},
		{mustSpec(consensus.NewMQB(5, 1)), "3 rounds/phase"},
		{mustSpec(consensus.NewPBFT(4, 1)), "3 rounds/phase"},
		{mustSpec(consensus.NewPaxos(3, 1)), "3 rounds/phase, leader"},
		{mustSpec(consensus.NewChandraToueg(3, 1)), "3 rounds/phase, coordinator"},
	}
	fmt.Printf("%-15s %-8s %-4s %-4s %-8s %-8s %-24s\n",
		"algorithm", "class", "n", "TD", "rounds", "phases", "structure")
	for _, a := range algos {
		res, err := consensus.Run(a.spec, consensus.SplitInits(a.spec.N, "b", "a"),
			consensus.WithSeed(3))
		check(err)
		if !res.AllDecided || len(res.Violations) > 0 {
			check(fmt.Errorf("%s: decided=%v violations=%v", a.spec.Name, res.AllDecided, res.Violations))
		}
		per := a.spec.RoundsPerPhase()
		fmt.Printf("%-15s %-8s %-4d %-4d %-8d %-8d %-24s\n",
			a.spec.Name, a.spec.Class, a.spec.N, a.spec.TD,
			res.Rounds, (res.Rounds+per-1)/per, a.note)
	}
	// Skip-first-selection optimization on PBFT.
	pbft := mustSpec(consensus.NewPBFT(4, 1))
	check(pbft.Apply(consensus.WithSkipFirstSelection()))
	res, err := consensus.Run(pbft, consensus.UnanimousInits(4, "v"), consensus.WithSeed(3))
	check(err)
	fmt.Printf("\nPBFT + skip-first-selection, unanimous inputs: %d rounds (vs 3)\n", res.Rounds)
}

// ---- E-MSG: message complexity ----------------------------------------------

func expMessages() {
	fmt.Println("Messages and bytes to first decision vs n (fault-free, split")
	fmt.Println("inputs). Class-3 selection rounds carry histories: byte costs")
	fmt.Println("grow visibly faster than class 2 at equal n.")
	fmt.Println()
	fmt.Printf("%-15s %-4s %-4s %-10s %-10s %-10s\n", "algorithm", "n", "b/f", "rounds", "messages", "bytes")
	type mk struct {
		name string
		make func(n int) (*consensus.Spec, error)
		ns   []int
		bf   string
	}
	rows := []mk{
		{"FaB Paxos", func(n int) (*consensus.Spec, error) { return consensus.NewFaBPaxos(n, 1) }, []int{6, 8, 10, 12}, "b=1"},
		{"MQB", func(n int) (*consensus.Spec, error) { return consensus.NewMQB(n, 1) }, []int{5, 7, 9, 11}, "b=1"},
		{"PBFT", func(n int) (*consensus.Spec, error) { return consensus.NewPBFT(n, 1) }, []int{4, 6, 8, 10}, "b=1"},
		{"OneThirdRule", func(n int) (*consensus.Spec, error) { return consensus.NewOneThirdRule(n, 1) }, []int{4, 6, 8, 10}, "f=1"},
		{"Paxos", func(n int) (*consensus.Spec, error) { return consensus.NewPaxos(n, 1) }, []int{3, 5, 7, 9}, "f=1"},
	}
	for _, r := range rows {
		for _, n := range r.ns {
			spec, err := r.make(n)
			check(err)
			res, err := consensus.Run(spec, consensus.SplitInits(n, "b", "a"), consensus.WithSeed(3))
			check(err)
			fmt.Printf("%-15s %-4d %-4s %-10d %-10d %-10d\n",
				r.name, n, r.bf, res.Rounds, res.Stats.MessagesSent, res.Stats.BytesSent)
		}
	}
}

// ---- E-TIGHT ---------------------------------------------------------------

func expTightness() {
	fmt.Println("(a) Feasibility frontier: below the class bound no TD satisfies")
	fmt.Println("    both the agreement lower bound and termination TD ≤ n-b-f.")
	fmt.Println()
	fmt.Printf("%-8s %-10s %-12s %-12s %-10s\n", "class", "n", "MinTD", "MaxTD", "feasible")
	for _, class := range []consensus.Class{consensus.Class1, consensus.Class2, consensus.Class3} {
		b, f := 1, 0
		nMin := quorum.MinN(class, b, f)
		for _, n := range []int{nMin - 1, nMin} {
			minTD := quorum.MinTD(class, n, b, f)
			maxTD := quorum.MaxTD(n, b, f)
			fmt.Printf("%-8s %-10d %-12d %-12d %-10v\n", class, n, minTD, maxTD, minTD <= maxTD)
		}
	}

	fmt.Println()
	fmt.Println("(b) FLV-liveness witnesses below the bound (full correct vector,")
	fmt.Println("    FLV still returns null → termination impossible):")
	c2 := flv.NewClass2(4, 3, 1) // MQB at n=4b with the largest usable TD
	mu := model.Received{
		0: sel("v1", 2, nil), 1: sel("v2", 1, nil), 2: sel("v3", 0, nil),
	}
	fmt.Printf("    class 2, n=4=4b, TD=3: Eval(3 correct msgs) = %s (want null)\n", c2.Eval(mu, 3))
	c1 := flv.NewClass1(5, 4, 1) // FaB at n=5b with TD = n-b
	mu = model.Received{
		0: sel("v1", 0, nil), 1: sel("v1", 0, nil), 2: sel("v2", 0, nil), 3: sel("v2", 0, nil),
	}
	fmt.Printf("    class 1, n=5=5b, TD=4: Eval(4 correct msgs) = %s (want null)\n", c1.Eval(mu, 1))

	fmt.Println()
	fmt.Println("(c) At the bound: seeded adversarial runs, zero safety violations:")
	type atBound struct {
		spec  *consensus.Spec
		strat consensus.Strategy
	}
	cases := []atBound{
		{mustSpec(consensus.NewPBFT(4, 1)), consensus.Equivocate("a", "b")},
		{mustSpec(consensus.NewMQB(5, 1)), consensus.ForgeTimestamp("z")},
		{mustSpec(consensus.NewFaBPaxos(6, 1)), consensus.Equivocate("a", "b")},
	}
	const seeds = 300
	for _, c := range cases {
		violations, undecided := 0, 0
		for seed := int64(0); seed < seeds; seed++ {
			inits := consensus.SplitInits(c.spec.N, "b", "a")
			delete(inits, consensus.PID(c.spec.N-1))
			res, err := consensus.Run(c.spec, inits,
				consensus.WithSeed(seed),
				consensus.WithByzantine(consensus.PID(c.spec.N-1), c.strat),
				consensus.WithGoodFromPhase(2),
				consensus.WithDropProbability(0.5))
			check(err)
			if len(res.Violations) > 0 {
				violations++
			}
			if !res.AllDecided {
				undecided++
			}
		}
		fmt.Printf("    %-12s n=%d b=%d: %d runs, %d violations, %d non-terminating\n",
			c.spec.Name, c.spec.N, c.spec.B, seeds, violations, undecided)
	}

	fmt.Println()
	fmt.Println("(d) TD lower bounds are safety bounds: crafted schedules produce")
	fmt.Println("    real agreement violations just below them, and fail at them:")
	fmt.Printf("    FLAG=*, n=6, b=1: TD=3 (≤ (n+b)/2) → %s; TD=4 → %s\n",
		splitStarOutcome(3), splitStarOutcome(4))
	fmt.Printf("    FLAG=φ, n=4, b=1: TD=1 (= b) → %s; TD=2 → %s\n",
		splitPhiOutcome(1), splitPhiOutcome(2))
}

// splitStarOutcome runs the FLAG=* split-decision attack (see
// internal/sim TestAttackSplitDecisionStar) at the given TD.
func splitStarOutcome(td int) string {
	params := core.Params{
		N: 6, B: 1, F: 0, TD: td,
		Flag:     model.FlagStar,
		FLV:      flv.NewClass1(6, td, 1),
		Selector: selector.NewAll(6),
	}
	inits := map[model.PID]model.Value{0: "a", 1: "a", 2: "b", 3: "b", 4: "b"}
	allow := map[model.PID]map[model.PID]bool{
		0: {0: true}, 1: {0: true},
		2: {2: true}, 3: {2: true}, 4: {2: true},
		5: {0: true},
	}
	e, err := sim.New(sim.Config{
		Params:    params,
		Inits:     inits,
		Byzantine: map[model.PID]adversary.Strategy{5: adversary.Equivocate{A: "a", B: "b"}},
		Modes:     sim.AlwaysBad(),
		Drop:      sim.Edges{Allow: allow},
		Seed:      1,
		MaxRounds: 2,
	})
	check(err)
	return describeAttack(e.Run())
}

// splitPhiOutcome runs the FLAG=φ forged-vote attack (see internal/sim
// TestAttackSplitDecisionPhi) at the given TD.
func splitPhiOutcome(td int) string {
	params := core.Params{
		N: 4, B: 1, F: 0, TD: td,
		Flag:       model.FlagPhase,
		FLV:        flv.NewClass3(4, td, 1, false),
		Selector:   selector.NewAll(4),
		UseHistory: true,
	}
	inits := map[model.PID]model.Value{0: "a", 1: "b", 2: "a"}
	allow := map[model.PID]map[model.PID]bool{3: {0: true, 2: true}}
	e, err := sim.New(sim.Config{
		Params:    params,
		Inits:     inits,
		Byzantine: map[model.PID]adversary.Strategy{3: adversary.Equivocate{A: "a", B: "b"}},
		Modes:     sim.AlwaysBad(),
		Drop:      sim.Edges{Allow: allow},
		Seed:      1,
		MaxRounds: 3,
	})
	check(err)
	return describeAttack(e.Run())
}

func describeAttack(res sim.Result) string {
	for _, v := range res.Violations {
		if strings.HasPrefix(v, "agreement") {
			return "AGREEMENT VIOLATED"
		}
	}
	if len(res.Decisions) == 0 {
		return "attack fails (no decision)"
	}
	return "safe decision"
}

// ---- E-GST -----------------------------------------------------------------

func expGST() {
	fmt.Println("Rounds to global decision as a function of the first good phase")
	fmt.Println("φ0 (bad periods drop each message with probability 0.5).")
	fmt.Println()
	specs := []*consensus.Spec{
		mustSpec(consensus.NewOneThirdRule(4, 1)),
		mustSpec(consensus.NewFaBPaxos(6, 1)),
		mustSpec(consensus.NewMQB(5, 1)),
		mustSpec(consensus.NewPBFT(4, 1)),
		mustSpec(consensus.NewPaxos(3, 1)),
	}
	fmt.Printf("%-15s", "algorithm")
	phis := []consensus.Phase{1, 2, 3, 4, 6, 8}
	for _, phi := range phis {
		fmt.Printf(" φ0=%-4d", phi)
	}
	fmt.Println()
	for _, spec := range specs {
		fmt.Printf("%-15s", spec.Name)
		for _, phi := range phis {
			total := 0
			const seeds = 20
			for seed := int64(0); seed < seeds; seed++ {
				res, err := consensus.Run(spec, consensus.SplitInits(spec.N, "b", "a"),
					consensus.WithSeed(seed),
					consensus.WithGoodFromPhase(phi),
					consensus.WithDropProbability(0.5),
					consensus.WithMaxRounds(400))
				check(err)
				if !res.AllDecided {
					total += 400
					continue
				}
				total += res.Rounds
			}
			fmt.Printf(" %-7.1f", float64(total)/seeds)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Shape check: each row grows linearly with φ0 at slope ≈ rounds/phase,")
	fmt.Println("and within a row decisions land within ~1 phase of the first good phase.")
}

// ---- E-BENOR ---------------------------------------------------------------

func expBenOr() {
	fmt.Println("(a) Benign Ben-Or under Prel: mean phases to decision (200 runs).")
	fmt.Println()
	fmt.Printf("%-6s %-10s %-16s %-16s\n", "n", "f", "unanimous", "split")
	for _, nf := range [][2]int{{3, 1}, {5, 2}, {7, 3}, {9, 4}} {
		n, f := nf[0], nf[1]
		mean := func(inits map[consensus.PID]consensus.Value) float64 {
			total := 0
			const runs = 200
			for seed := int64(0); seed < runs; seed++ {
				spec, err := consensus.NewBenOr(n, f, seed*131+17)
				check(err)
				res, err := consensus.Run(spec, inits,
					consensus.WithSeed(seed), consensus.WithRel(), consensus.WithMaxRounds(6000))
				check(err)
				if !res.AllDecided {
					check(fmt.Errorf("ben-or n=%d seed=%d did not terminate", n, seed))
				}
				total += (res.Rounds + 2) / 3
			}
			return float64(total) / runs
		}
		fmt.Printf("%-6d %-10d %-16.2f %-16.2f\n", n, f,
			mean(consensus.UnanimousInits(n, "1")), mean(consensus.SplitInits(n, "0", "1")))
	}

	fmt.Println()
	fmt.Println("(b) Byzantine Ben-Or — reproduction finding. The paper instantiates")
	fmt.Println("    it with TD = 3b+1 and n > 4b (§6). At n = 4b+1 the ⟨v, φ-1⟩")
	fmt.Println("    lock evidence decays under Prel and agreement can be violated;")
	fmt.Println("    at n = 5b+1 (the original Ben-Or bound) no violation occurs.")
	fmt.Println()
	for _, n := range []int{5, 6} {
		violations := 0
		const seeds = 60
		for seed := int64(0); seed < seeds; seed++ {
			spec, err := consensus.NewByzantineBenOr(n, 1, seed*17+3, true)
			check(err)
			inits := consensus.SplitInits(n, "0", "1")
			delete(inits, consensus.PID(n-1))
			res, err := consensus.Run(spec, inits,
				consensus.WithSeed(seed),
				consensus.WithByzantine(consensus.PID(n-1), consensus.Equivocate("0", "1")),
				consensus.WithRel(), consensus.WithMaxRounds(5000))
			check(err)
			if len(res.Violations) > 0 {
				violations++
			}
		}
		tag := "(paper bound n=4b+1)"
		if n == 6 {
			tag = "(original bound n=5b+1)"
		}
		fmt.Printf("    n=%d b=1 %-24s: %d agreement violations in %d runs\n",
			n, tag, violations, seeds)
	}

	fmt.Println()
	fmt.Println("(c) Control: the §6 randomized transform of MQB (full class-2 FLV,")
	fmt.Println("    same n = 4b+1, same adversary, same Prel schedule) — the")
	fmt.Println("    vote-based lock does not decay:")
	violations := 0
	const seeds = 60
	for seed := int64(0); seed < seeds; seed++ {
		spec, err := consensus.NewRandomizedMQB(5, 1, seed*17+3)
		check(err)
		inits := consensus.SplitInits(5, "0", "1")
		delete(inits, 4)
		res, err := consensus.Run(spec, inits,
			consensus.WithSeed(seed),
			consensus.WithByzantine(4, consensus.Equivocate("0", "1")),
			consensus.WithRel(), consensus.WithMaxRounds(5000))
		check(err)
		if len(res.Violations) > 0 {
			violations++
		}
	}
	fmt.Printf("    randomized MQB n=5 b=1: %d agreement violations in %d runs\n", violations, seeds)
	fmt.Println("    ⇒ the decay is specific to Algorithm 9's timestamp-only FLV,")
	fmt.Println("      not to class 2 or to the randomized adaptation itself.")
}

// ---- E-WIC -----------------------------------------------------------------

func expWIC() {
	fmt.Println("Building Pcons from Pgood (§2.2): live PBFT (n=4, b=1) decisions")
	fmt.Println("over a Pgood-only network, comparing the Pcons oracle with the two")
	fmt.Println("WIC constructions (authenticated 2-round relay; signature-free")
	fmt.Println("3-round echo). Costs are to the first global decision.")
	fmt.Println()
	n, b := 4, 1
	params := core.Params{
		N: n, B: b, F: 0, TD: 2*b + 1,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(n, b),
		Selector:   selector.NewAll(n),
		UseHistory: true,
	}
	vals := []model.Value{"b", "a", "c", "a"}
	inits := map[model.PID]model.Value{}
	for i := 0; i < n; i++ {
		inits[model.PID(i)] = vals[i]
	}

	fmt.Printf("%-18s %-14s %-12s %-12s %-14s\n",
		"construction", "micro-rounds", "rounds", "messages", "requires")

	// Oracle baseline: the simulator enforces Pcons directly.
	oracle, err := sim.New(sim.Config{Params: params, Inits: inits, Seed: 3})
	check(err)
	res := oracle.Run()
	if !res.AllDecided || len(res.Violations) > 0 {
		check(fmt.Errorf("oracle run failed: %v", res.Violations))
	}
	fmt.Printf("%-18s %-14s %-12d %-12d %-14s\n", "oracle (none)", "-", res.Rounds, res.Stats.MessagesSent, "-")

	kr, err := auth.NewKeyring(n, 7)
	check(err)
	for _, mode := range []wic.Mode{wic.Relay, wic.Echo} {
		procs := map[model.PID]round.Proc{}
		for i := 0; i < n; i++ {
			p := model.PID(i)
			inner, err := core.NewProcess(p, vals[i], params)
			check(err)
			w, err := wic.Wrap(inner, wic.Config{N: n, B: b, Mode: mode, Keyring: kr}, params.Schedule())
			check(err)
			procs[p] = w
		}
		sched := core.Schedule{Flag: model.FlagPhase}
		e, err := sim.New(sim.Config{
			Params: core.Params{N: n, B: b, F: 0},
			Inits:  inits,
			Procs:  procs,
			Sched:  &sched,
			Modes:  func(model.Round, model.RoundKind) sim.Mode { return sim.ModeGood },
			Seed:   3,
		})
		check(err)
		res := e.Run()
		if !res.AllDecided || len(res.Violations) > 0 {
			check(fmt.Errorf("%s run failed: %v", mode, res.Violations))
		}
		name, req := "relay (auth)", "signatures"
		if mode == wic.Echo {
			name, req = "echo (no sigs)", "n > 3b"
		}
		fmt.Printf("%-18s %-14d %-12d %-12d %-14s\n",
			name, mode.Micros(), res.Rounds, res.Stats.MessagesSent, req)
	}
	fmt.Println()
	fmt.Println("Both constructions deliver identical selection vectors at every")
	fmt.Println("correct process (asserted in internal/wic tests); BenchmarkWIC*")
	fmt.Println("measures wall-clock cost (relay is dominated by ed25519).")
}

// ---- E-DIFF ----------------------------------------------------------------

func expDiff() {
	fmt.Println("Differential runs of instantiations against the verbatim original")
	fmt.Println("algorithms on identical seeded networks (see also the")
	fmt.Println("internal/baseline test suite).")
	fmt.Println()
	fmt.Println("OneThirdRule (§5.1 improvement claim): whenever the original's")
	fmt.Println(">2n/3 guard passes, the class-1 FLV returns non-null — verified")
	fmt.Println("exhaustively over all receive subsets in TestOTRSelectionImprovement.")
	fmt.Println("End-to-end (150 seeds, lossy network): the instantiation decides at")
	fmt.Println("least as often and never later (TestOTRDifferential).")
	fmt.Println()
	fmt.Println("Ben-Or: both the original two-round protocol and the generic")
	fmt.Println("instantiation terminate under Prel with phase counts of the same")
	fmt.Println("order (TestBenOrDifferential).")
}
