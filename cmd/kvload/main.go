// Command kvload is the TCP-level throughput benchmark (the ROADMAP's
// "pipelined view of the wall clock"): for each pipeline depth W it stands
// up a whole loopback kvnode cluster in-process (internal/node — the same
// stack cmd/kvnode runs), drives client commands through the real client
// TCP protocol, and measures wall-clock time until every replica has
// applied everything.
//
// Output is `go test -bench` compatible text, so cmd/benchjson converts it
// to JSON directly:
//
//	go run ./cmd/kvload -depths 1,2,4,8 -cmds 128 > BENCH_tcp.txt
//	go run ./cmd/benchjson < BENCH_tcp.txt > BENCH_tcp.json
//
// Each line reports ns/op (one op = the whole load), cmds/sec, and
// snapshot-bytes (the size of the final checkpoint, a snapshot-growth
// metric CI tracks alongside throughput).
package main

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"genconsensus/internal/auth"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/node"
	"genconsensus/internal/obs"
	"genconsensus/internal/readq"
	"genconsensus/internal/snapshot"
	"genconsensus/internal/wire"
)

func main() {
	var (
		n         = flag.Int("n", 4, "cluster size")
		b         = flag.Int("b", 1, "Byzantine fault tolerance")
		f         = flag.Int("f", 0, "benign crash tolerance (0 = PBFT, >0 = class-3 generic)")
		cmds      = flag.Int("cmds", 128, "commands per run")
		batch     = flag.Int("batch", 16, "max commands per instance")
		depths    = flag.String("depths", "1,2,4,8", "comma-separated pipeline depths to sweep")
		shards    = flag.String("shards", "", "comma-separated shard counts to sweep (e.g. 1,2,4); empty = unsharded depth sweep")
		nsweep    = flag.String("ns", "", "comma-separated cluster sizes to sweep (gossip bench; fixed depth = first -depths entry); empty = depth sweep")
		ratios    = flag.String("read-ratios", "", "comma-separated read percentages to sweep (e.g. 0,50,90,99): mixed READ/write load at fixed depth (first -depths entry) and shard count (first -shards entry)")
		quorum    = flag.Bool("quorum-reads", false, "with -read-ratios, fan every READ to all replicas and require a b+1 certificate (internal/readq)")
		digest    = flag.Bool("digest", false, "vote with batch digests over the content-addressed payload plane")
		fanout    = flag.Int("gossip-fanout", 0, "with -digest, push payloads to this many random peers (0 = full mesh)")
		snapEvery = flag.Uint64("snapshot-interval", 4, "checkpoint interval (0 disables)")
		authMode  = flag.Bool("auth", false, "drive signed client load (authenticated command envelopes)")
		session   = flag.Bool("session", false, "drive session client load (SHELLO handshake + SCMD writes); implies -auth clusters")
		reps      = flag.Int("reps", 1, "runs per depth; the fastest is reported (damps single-run scheduler noise)")
		noMetrics = flag.Bool("nometrics", false, "disable the node metrics registry (overhead comparisons)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-run deadline")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile covering the whole sweep")
		memprof   = flag.String("memprofile", "", "write a heap profile after the sweep")
		blockprof = flag.String("blockprofile", "", "write a goroutine blocking profile after the sweep")
	)
	flag.Parse()
	if *blockprof != "" {
		runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
		defer func() {
			f, err := os.Create(*blockprof)
			if err != nil {
				log.Fatalf("kvload: %v", err)
			}
			defer f.Close()
			if err := pprof.Lookup("block").WriteTo(f, 0); err != nil {
				log.Fatalf("kvload: %v", err)
			}
		}()
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatalf("kvload: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("kvload: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprof == "" {
			return
		}
		f, err := os.Create(*memprof)
		if err != nil {
			log.Fatalf("kvload: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("kvload: %v", err)
		}
	}()

	fmt.Printf("goos: %s\n", runtime.GOOS)
	fmt.Printf("goarch: %s\n", runtime.GOARCH)
	fmt.Printf("pkg: genconsensus/cmd/kvload\n")
	name := "BenchmarkTCPKVLoad"
	switch {
	case *session:
		name = "BenchmarkTCPKVLoadSession"
	case *authMode:
		name = "BenchmarkTCPKVLoadAuth"
	}

	if *nsweep != "" {
		// Cluster-size sweep at a fixed depth: the digest-voting benchmark.
		// Two kvload runs (plain and -digest) concatenate into one report;
		// mode= in the name is what the CI ratio gates key on. vote-bytes/inst
		// is the voting-plane traffic (envelope + session frames, summed over
		// replicas) per consensus instance — the number digest voting shrinks.
		depth, err := strconv.Atoi(strings.TrimSpace(strings.Split(*depths, ",")[0]))
		if err != nil || depth < 1 {
			log.Fatalf("kvload: bad depth %q", *depths)
		}
		mode := "mesh"
		if *digest {
			mode = "digest"
		}
		for _, field := range strings.Split(*nsweep, ",") {
			size, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || size < 2 {
				log.Fatalf("kvload: bad cluster size %q", field)
			}
			var elapsed time.Duration
			var commits []uint64
			var vote gossipStats
			for rep := 0; rep < *reps || rep == 0; rep++ {
				e, _, gc, gs, err := run(size, *b, *f, depth, *batch, 1, *cmds, *snapEvery, *authMode || *session, *session, *noMetrics, *digest, *fanout, *timeout)
				if err != nil {
					log.Fatalf("kvload: N=%d: %v", size, err)
				}
				if rep == 0 || e < elapsed {
					elapsed, commits, vote = e, gc, gs
				}
			}
			perSec := float64(*cmds) / elapsed.Seconds()
			perInst := 0.0
			if vote.decisions > 0 {
				perInst = float64(vote.voteBytes) / float64(vote.decisions)
			}
			fmt.Printf("BenchmarkTCPKVLoadGossip/mode=%s/N=%d \t       1\t%12d ns/op\t%12.1f cmds/sec\t%12.1f vote-bytes/inst\n",
				mode, size, elapsed.Nanoseconds(), perSec, perInst)
			groupSummary(fmt.Sprintf("mode=%s/N=%d", mode, size), commits, elapsed)
		}
		return
	}

	if *ratios != "" {
		// Mixed read/write sweep: read percentage R varied, depth and shard
		// count fixed. R=0 is the write-only floor at the same cluster
		// shape; CI gates R=99 against it (reads ride the read-index local
		// path, so a read-heavy workload must clear the consensus-bound
		// floor by a wide margin). reads/sec and writes/sec report the two
		// sides separately; cmds/sec stays the gate's common currency.
		depth, err := strconv.Atoi(strings.TrimSpace(strings.Split(*depths, ",")[0]))
		if err != nil || depth < 1 {
			log.Fatalf("kvload: bad depth %q", *depths)
		}
		shardCount := 1
		if *shards != "" {
			shardCount, err = strconv.Atoi(strings.TrimSpace(strings.Split(*shards, ",")[0]))
			if err != nil || shardCount < 1 {
				log.Fatalf("kvload: bad shard count %q", *shards)
			}
		}
		name = strings.Replace(name, "BenchmarkTCPKVLoad", "BenchmarkTCPKVLoadMixed", 1)
		for _, field := range strings.Split(*ratios, ",") {
			ratio, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || ratio < 0 || ratio > 100 {
				log.Fatalf("kvload: bad read ratio %q", field)
			}
			var elapsed time.Duration
			var reads, writes int
			var commits []uint64
			for rep := 0; rep < *reps || rep == 0; rep++ {
				e, r, w, gc, err := runMixed(mixedConfig{
					n: *n, b: *b, f: *f, depth: depth, batch: *batch,
					shards: shardCount, cmds: *cmds, ratio: ratio,
					snapEvery: *snapEvery, authMode: *authMode || *session,
					sessionMode: *session, noMetrics: *noMetrics,
					quorumReads: *quorum, timeout: *timeout,
				})
				if err != nil {
					log.Fatalf("kvload: R=%d: %v", ratio, err)
				}
				if rep == 0 || e < elapsed {
					elapsed, reads, writes, commits = e, r, w, gc
				}
			}
			secs := elapsed.Seconds()
			fmt.Printf("%s/R=%d \t       1\t%12d ns/op\t%12.1f cmds/sec\t%12.1f reads/sec\t%12.1f writes/sec\n",
				name, ratio, elapsed.Nanoseconds(), float64(*cmds)/secs, float64(reads)/secs, float64(writes)/secs)
			groupSummary(fmt.Sprintf("R=%d", ratio), commits, elapsed)
		}
		return
	}

	if *shards != "" {
		// Shard sweep: fixed pipeline depth per group (the first -depths
		// entry), shard count S varied. Emits one line per S plus a derived
		// scaling line (max S over S=1) that CI gates on directly.
		depth, err := strconv.Atoi(strings.TrimSpace(strings.Split(*depths, ",")[0]))
		if err != nil || depth < 1 {
			log.Fatalf("kvload: bad depth %q", *depths)
		}
		name = strings.Replace(name, "BenchmarkTCPKVLoad", "BenchmarkTCPKVLoadShard", 1)
		perSec := map[int]float64{}
		var sweep []int
		for _, field := range strings.Split(*shards, ",") {
			s, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || s < 1 {
				log.Fatalf("kvload: bad shard count %q", field)
			}
			var elapsed time.Duration
			var snapBytes int
			var commits []uint64
			for rep := 0; rep < *reps || rep == 0; rep++ {
				e, sb, gc, _, err := run(*n, *b, *f, depth, *batch, s, *cmds, *snapEvery, *authMode || *session, *session, *noMetrics, *digest, *fanout, *timeout)
				if err != nil {
					log.Fatalf("kvload: S=%d: %v", s, err)
				}
				if rep == 0 || e < elapsed {
					elapsed, snapBytes, commits = e, sb, gc
				}
			}
			perSec[s] = float64(*cmds) / elapsed.Seconds()
			sweep = append(sweep, s)
			fmt.Printf("%s/S=%d \t       1\t%12d ns/op\t%12.1f cmds/sec\t%12d snapshot-bytes\n",
				name, s, elapsed.Nanoseconds(), perSec[s], snapBytes)
			groupSummary(fmt.Sprintf("S=%d", s), commits, elapsed)
		}
		maxS := sweep[0]
		for _, s := range sweep {
			if s > maxS {
				maxS = s
			}
		}
		if base, ok := perSec[1]; ok && maxS > 1 {
			fmt.Printf("%sScaling/S=%dv1 \t       1\t%12d ns/op\t%12.2f scale-x\n",
				name, maxS, int64(1), perSec[maxS]/base)
		}
		return
	}

	for _, field := range strings.Split(*depths, ",") {
		depth, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || depth < 1 {
			log.Fatalf("kvload: bad depth %q", field)
		}
		var elapsed time.Duration
		var snapBytes int
		var commits []uint64
		for rep := 0; rep < *reps || rep == 0; rep++ {
			e, sb, gc, _, err := run(*n, *b, *f, depth, *batch, 1, *cmds, *snapEvery, *authMode || *session, *session, *noMetrics, *digest, *fanout, *timeout)
			if err != nil {
				log.Fatalf("kvload: W=%d: %v", depth, err)
			}
			if rep == 0 || e < elapsed {
				elapsed, snapBytes, commits = e, sb, gc
			}
		}
		perSec := float64(*cmds) / elapsed.Seconds()
		fmt.Printf("%s/W=%d \t       1\t%12d ns/op\t%12.1f cmds/sec\t%12d snapshot-bytes\n",
			name, depth, elapsed.Nanoseconds(), perSec, snapBytes)
		groupSummary(fmt.Sprintf("W=%d", depth), commits, elapsed)
	}
}

// groupSummary prints the per-group throughput of the reported run, sourced
// from the node-side smr.commits counters (what the cluster actually
// committed, not what the client sent). It goes to stderr so stdout stays
// `go test -bench` parseable.
func groupSummary(label string, commits []uint64, elapsed time.Duration) {
	if len(commits) == 0 {
		return // -nometrics
	}
	var b strings.Builder
	fmt.Fprintf(&b, "kvload: %s group throughput:", label)
	for g, c := range commits {
		fmt.Fprintf(&b, " g%d=%d commits (%.1f cmds/sec)", g, c, float64(c)/elapsed.Seconds())
	}
	fmt.Fprintln(os.Stderr, b.String())
}

// gossipStats is the voting-plane traffic of one run: bytes received on
// the envelope/session frame families (summed over every replica — the
// consensus chatter, payload frames excluded) and the number of consensus
// instances they decided. Their ratio is the vote-bytes/inst metric the
// digest-voting benchmark gates on.
type gossipStats struct {
	voteBytes uint64
	decisions uint64
}

// run measures one full load against a fresh cluster at the given pipeline
// depth: wall-clock from the first client write until every replica has
// applied every command. In auth mode the client signs every line (the
// kvctl -auth shape), so the measurement covers MAC generation,
// ingress/chooser/apply verification and (client, seq) dedup end to end.
// In session mode the client authenticates each connection once (SHELLO)
// and writes carry only the truncated session tag (the kvctl -session
// shape), measuring the amortized-auth wire path. In digest mode replicas
// vote with 32-byte content addresses and payloads travel once on the
// payload plane (gossip-fanout peers pushed, the rest pull).
func run(n, b, f, depth, batch, shards, cmds int, snapEvery uint64, authMode, sessionMode, noMetrics bool, digestMode bool, fanout int, timeout time.Duration) (time.Duration, int, []uint64, gossipStats, error) {
	nodes, err := startCluster(n, b, f, depth, batch, shards, snapEvery, authMode, noMetrics, digestMode, fanout)
	if err != nil {
		return 0, 0, nil, gossipStats{}, err
	}
	defer stopAll(nodes)

	lines := make([]string, cmds)
	if authMode && !sessionMode {
		signer := auth.NewClientSigner(7, 1)
		for i := range lines {
			seq := uint64(i + 1)
			mac := hex.EncodeToString(kv.AuthMAC(signer, seq, "SET", fmt.Sprintf("lk-%d", i), fmt.Sprintf("lv-%d", i)))
			lines[i] = fmt.Sprintf("ACMD %d %d %s SET lk-%d lv-%d", signer.Client(), seq, mac, i, i)
		}
	} else if !sessionMode {
		for i := range lines {
			lines[i] = fmt.Sprintf("CMD ld-%d SET lk-%d lv-%d", i, i, i)
		}
	}
	payload := strings.Join(lines, "\n") + "\n"

	start := time.Now()
	// One pipelined client connection per replica (the kvctl mset shape).
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, nd := range nodes {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if sessionMode {
				if err := driveSession(conn, cmds); err != nil {
					errs <- fmt.Errorf("session stream to %s: %w", addr, err)
				}
				return
			}
			if _, err := fmt.Fprint(conn, payload); err != nil {
				errs <- err
				return
			}
			sc := bufio.NewScanner(conn)
			for range lines {
				if !sc.Scan() {
					errs <- fmt.Errorf("client stream to %s ended early", addr)
					return
				}
				if sc.Text() != "QUEUED" {
					errs <- fmt.Errorf("client write: %q", sc.Text())
					return
				}
			}
		}(nd.ClientAddr())
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, 0, nil, gossipStats{}, err
	}

	deadline := time.Now().Add(timeout)
	for {
		if allApplied(nodes, cmds) {
			break
		}
		if time.Now().After(deadline) {
			have := 0
			for _, store := range nodes[0].GroupStores() {
				if store != nil {
					have += store.Len()
				}
			}
			return 0, 0, nil, gossipStats{}, fmt.Errorf("timed out: %d/%d keys on node 0", have, cmds)
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)

	snapBytes := 0
	for g := 0; g < nodes[0].Shards(); g++ {
		if mgr := nodes[0].GroupManager(wire.GroupID(g)); mgr != nil {
			if snap, _, ok := mgr.Latest(); ok {
				snapBytes += len(snapshot.Encode(snap))
			}
		}
	}
	var commits []uint64
	var vote gossipStats
	if reg := nodes[0].Metrics(); reg != nil {
		commits = make([]uint64, nodes[0].Shards())
		for g := range commits {
			commits[g] = reg.CounterValue(fmt.Sprintf("g%d.smr.commits", g))
			vote.decisions += reg.CounterValue(fmt.Sprintf("g%d.smr.decisions", g))
		}
	}
	// Voting-plane traffic sums over every replica: envelope frames carry the
	// consensus votes, session frames their authenticated wrapper. Payload
	// frames are deliberately excluded — they're the dissemination plane the
	// digest mode moves the bulk bytes onto.
	for _, nd := range nodes {
		if reg := nd.Metrics(); reg != nil {
			vote.voteBytes += reg.CounterValue("transport.bytes_in.envelope")
			vote.voteBytes += reg.CounterValue("transport.bytes_in.session")
		}
	}
	return elapsed, snapBytes, commits, vote, nil
}

// startCluster stands up one fresh in-process loopback cluster (the same
// stack cmd/kvnode runs), peered and started. The caller owns the nodes
// and stops them via stopAll.
func startCluster(n, b, f, depth, batch, shards int, snapEvery uint64, authMode, noMetrics, digestMode bool, fanout int) ([]*node.Node, error) {
	nodes := make([]*node.Node, n)
	peers := make(map[model.PID]string, n)
	for i := 0; i < n; i++ {
		nd, err := node.New(node.Config{
			ID: model.PID(i), N: n, B: b, F: f,
			ListenAddr:       "127.0.0.1:0",
			ClientAddr:       "127.0.0.1:0",
			AuthSeed:         7,
			MaxBatch:         batch,
			Pipeline:         depth,
			Shards:           shards,
			SnapshotInterval: snapEvery,
			AppliedKeep:      4096,
			ClientAuth:       authMode,
			DigestVotes:      digestMode,
			GossipFanout:     fanout,
			NoMetrics:        noMetrics,
			BaseTimeout:      40 * time.Millisecond,
		}, kv.NewStore())
		if err != nil {
			stopAll(nodes)
			return nil, err
		}
		nodes[i] = nd
		peers[model.PID(i)] = nd.Addr()
	}
	for _, nd := range nodes {
		nd.SetPeers(peers)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	return nodes, nil
}

func stopAll(nodes []*node.Node) {
	for _, nd := range nodes {
		if nd != nil {
			nd.Stop()
		}
	}
}

// mixedConfig parametrizes one mixed read/write run.
type mixedConfig struct {
	n, b, f, depth, batch, shards, cmds, ratio int
	snapEvery                                  uint64
	authMode, sessionMode, noMetrics           bool
	quorumReads                                bool
	timeout                                    time.Duration
}

// mixedOp is one scheduled operation of a mixed load.
type mixedOp struct {
	write bool
	wIdx  int    // write number (key mk-<wIdx>); valid when write
	rIdx  int    // read number (row in the quorum result table); valid when !write
	key   string // target key
}

// mixedSchedule interleaves writes evenly through the op stream at the
// requested read percentage. Every read targets the most recently
// scheduled write's key, so reads chase the freshest data the run has. At
// least one write always remains (reads need a key, and allApplied needs
// something to wait on).
func mixedSchedule(cmds, ratio int) (ops []mixedOp, writes, reads int) {
	writes = cmds * (100 - ratio) / 100
	if writes < 1 {
		writes = 1
	}
	isWrite := make([]bool, cmds)
	for j := 0; j < writes; j++ {
		isWrite[j*cmds/writes] = true
	}
	ops = make([]mixedOp, cmds)
	wIdx, rIdx, lastW := 0, 0, 0
	for i := range ops {
		if isWrite[i] {
			ops[i] = mixedOp{write: true, wIdx: wIdx, key: fmt.Sprintf("mk-%d", wIdx)}
			lastW = wIdx
			wIdx++
		} else {
			ops[i] = mixedOp{rIdx: rIdx, key: fmt.Sprintf("mk-%d", lastW)}
			rIdx++
		}
	}
	return ops, wIdx, rIdx
}

// runMixed measures one mixed load: writes broadcast to every replica (the
// PBFT client model, as in run), reads served by READ — round-robin over
// the replicas, or fanned to all of them under -quorum-reads with a b+1
// certificate assembled per read (internal/readq). Wall-clock runs from
// the first line until every replica applied every write and every read
// got its answer; reads and writes are reported separately against the
// shared clock.
func runMixed(cfg mixedConfig) (time.Duration, int, int, []uint64, error) {
	nodes, err := startCluster(cfg.n, cfg.b, cfg.f, cfg.depth, cfg.batch, cfg.shards, cfg.snapEvery, cfg.authMode, cfg.noMetrics, false, 0)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	defer stopAll(nodes)
	ops, writes, reads := mixedSchedule(cfg.cmds, cfg.ratio)

	// Quorum result table: results[read][replica], each cell written by
	// exactly one connection goroutine, certified after the drain.
	var results [][]readq.Result
	var resultsOK [][]bool
	if cfg.quorumReads {
		results = make([][]readq.Result, reads)
		resultsOK = make([][]bool, reads)
		for i := range results {
			results[i] = make([]readq.Result, cfg.n)
			resultsOK[i] = make([]bool, cfg.n)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.n)
	for ci, nd := range nodes {
		wg.Add(1)
		go func(ci int, addr string) {
			defer wg.Done()
			if err := driveMixed(ci, addr, cfg, ops, results, resultsOK); err != nil {
				errs <- fmt.Errorf("mixed stream to %s: %w", addr, err)
			}
		}(ci, nd.ClientAddr())
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, 0, 0, nil, err
	}
	deadline := time.Now().Add(cfg.timeout)
	for !allApplied(nodes, writes) {
		if time.Now().After(deadline) {
			return 0, 0, 0, nil, fmt.Errorf("timed out waiting for %d writes to apply", writes)
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)

	if cfg.quorumReads {
		var mismatch *obs.Counter
		if reg := nodes[0].Metrics(); reg != nil {
			mismatch = reg.Counter("kv.read_certificate_mismatch")
		}
		for r := range results {
			var rs []readq.Result
			for ci := range results[r] {
				if resultsOK[r][ci] {
					rs = append(rs, results[r][ci])
				}
			}
			if _, ok := readq.Certify(rs, cfg.b+1, mismatch); !ok {
				return 0, 0, 0, nil, fmt.Errorf("read %d: no b+1 certificate from %d replies", r, len(rs))
			}
		}
	}

	var commits []uint64
	if reg := nodes[0].Metrics(); reg != nil {
		commits = make([]uint64, nodes[0].Shards())
		for g := range commits {
			commits[g] = reg.CounterValue(fmt.Sprintf("g%d.smr.commits", g))
		}
	}
	return elapsed, reads, writes, commits, nil
}

// driveMixed streams one replica's share of the mixed load over a single
// connection: every write (broadcast), plus the reads assigned to this
// replica (all of them under -quorum-reads). The stream is fully
// pipelined; a sender goroutine keeps writing while this goroutine drains
// responses, so a large load can never deadlock on full socket buffers.
func driveMixed(ci int, addr string, cfg mixedConfig, ops []mixedOp, results [][]readq.Result, resultsOK [][]bool) error {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	var sc *bufio.Scanner
	var macer *auth.SessionMACer
	const client = uint32(1)
	if cfg.sessionMode {
		if sc, macer, err = sessionHandshake(conn, client); err != nil {
			return err
		}
	} else {
		sc = bufio.NewScanner(conn)
	}
	var signer *auth.ClientSigner
	if cfg.authMode && !cfg.sessionMode {
		signer = auth.NewClientSigner(7, client)
	}

	type expect struct {
		write bool
		rIdx  int
	}
	var buf strings.Builder
	var expects []expect
	for _, op := range ops {
		switch {
		case op.write:
			seq := uint64(op.wIdx + 1)
			value := fmt.Sprintf("mv-%d", op.wIdx)
			switch {
			case cfg.sessionMode:
				payload := kv.AuthPayload(client, seq, "SET", op.key, value)
				tag := macer.Append(nil, seq, []byte(payload))
				fmt.Fprintf(&buf, "SCMD %d %s SET %s %s\n", seq, hex.EncodeToString(tag), op.key, value)
			case cfg.authMode:
				mac := hex.EncodeToString(kv.AuthMAC(signer, seq, "SET", op.key, value))
				fmt.Fprintf(&buf, "ACMD %d %d %s SET %s %s\n", client, seq, mac, op.key, value)
			default:
				fmt.Fprintf(&buf, "CMD md-%d SET %s %s\n", op.wIdx, op.key, value)
			}
			expects = append(expects, expect{write: true})
		case cfg.quorumReads || op.rIdx%cfg.n == ci:
			fmt.Fprintf(&buf, "READ %s\n", op.key)
			expects = append(expects, expect{rIdx: op.rIdx})
		}
	}

	sendErr := make(chan error, 1)
	go func() {
		_, err := io.WriteString(conn, buf.String())
		sendErr <- err
	}()
	for i, e := range expects {
		if !sc.Scan() {
			return fmt.Errorf("stream ended early at %d/%d", i, len(expects))
		}
		resp := sc.Text()
		if e.write {
			// "replayed sequence"/"duplicate identity" are the benign PBFT-
			// client races: the write already committed (or is queued) via
			// another replica's copy of the broadcast.
			if resp != "QUEUED" && resp != "ERR replayed sequence" && resp != "ERR duplicate identity" {
				return fmt.Errorf("write %d: %q", i, resp)
			}
			continue
		}
		res, err := readq.Parse(resp)
		if err != nil {
			return fmt.Errorf("read %d: %v", e.rIdx, err)
		}
		if cfg.quorumReads {
			results[e.rIdx][ci] = res
			resultsOK[e.rIdx][ci] = true
		}
	}
	return <-sendErr
}

// sessionHandshake authenticates one connection via SHELLO and returns the
// connection's scanner plus the midstate-cached session tagger — the
// kvctl -session client shape.
func sessionHandshake(conn net.Conn, client uint32) (*bufio.Scanner, *auth.SessionMACer, error) {
	keyring := auth.NewClientKeyring(7, 16)
	key, _ := keyring.Key(client)
	var nonce [auth.SessionNonceSize]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, nil, err
	}
	mac := auth.ClientHelloMAC(key, client, nonce[:])
	if _, err := fmt.Fprintf(conn, "SHELLO %d %s %s\n", client, hex.EncodeToString(nonce[:]), hex.EncodeToString(mac)); err != nil {
		return nil, nil, err
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("no SHELLO reply")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 3 || fields[0] != "SESSION" {
		return nil, nil, fmt.Errorf("SHELLO reply: %q", sc.Text())
	}
	serverNonce, err := hex.DecodeString(fields[1])
	if err != nil {
		return nil, nil, err
	}
	ack, err := hex.DecodeString(fields[2])
	if err != nil {
		return nil, nil, err
	}
	if !auth.CheckClientHelloAckMAC(key, client, nonce[:], serverNonce, ack) {
		return nil, nil, fmt.Errorf("session ack rejected")
	}
	skey := auth.ClientSessionKey(key, client, nonce[:], serverNonce)
	// Midstate-cached tagging (auth.SessionMACer): the session key is fixed
	// for the connection, so the HMAC key blocks are hashed once, not per
	// line — the same optimization the node applies on its verify side.
	return sc, auth.NewSessionMACer(skey), nil
}

// driveSession authenticates the connection once (SHELLO) and streams the
// whole load as SCMD writes under the session key — the amortized-auth
// client shape. Writes are pipelined: the full batch is sent before the
// responses are drained.
func driveSession(conn net.Conn, cmds int) error {
	const client = uint32(1)
	sc, macer, err := sessionHandshake(conn, client)
	if err != nil {
		return err
	}

	var buf strings.Builder
	for i := 0; i < cmds; i++ {
		seq := uint64(i + 1)
		payload := kv.AuthPayload(client, seq, "SET", fmt.Sprintf("lk-%d", i), fmt.Sprintf("lv-%d", i))
		tag := macer.Append(nil, seq, []byte(payload))
		fmt.Fprintf(&buf, "SCMD %d %s SET lk-%d lv-%d\n", seq, hex.EncodeToString(tag), i, i)
	}
	if _, err := io.WriteString(conn, buf.String()); err != nil {
		return err
	}
	for i := 0; i < cmds; i++ {
		if !sc.Scan() {
			return fmt.Errorf("stream ended early at %d/%d", i, cmds)
		}
		// "replayed sequence" is the benign PBFT-client race: the write
		// already committed via another replica's copy before this one was
		// read, so this replica's committed window bounces the duplicate.
		if resp := sc.Text(); resp != "QUEUED" && resp != "ERR replayed sequence" {
			return fmt.Errorf("write %d: %q", i, resp)
		}
	}
	return nil
}

// allApplied reports whether every replica holds every key, summing over
// the replica's shard stores (keys are unique, so the groups' store sizes
// add up to exactly the command count when the load has fully applied).
func allApplied(nodes []*node.Node, cmds int) bool {
	for _, nd := range nodes {
		total := 0
		for _, store := range nd.GroupStores() {
			if store != nil {
				total += store.Len()
			}
		}
		if total < cmds {
			return false
		}
	}
	return true
}

func init() { log.SetOutput(os.Stderr) }
