// KVStore: a replicated key-value store on the SMR layer (a sequence of
// PBFT consensus instances), exercising the paper's "framework" direction
// (§7). Clients submit SET/DEL commands; every replica applies the decided
// log in the same order; duplicate client retries are suppressed.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
	"genconsensus/internal/smr"
)

func main() {
	n, b := 4, 1
	params := core.Params{
		N: n, B: b, F: 0, TD: 2*b + 1,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(n, b),
		Selector:   selector.NewAll(n),
		UseHistory: true,
	}
	cluster, err := smr.NewCluster(params, func(model.PID) smr.StateMachine {
		return kv.NewStore()
	}, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replicated KV store: %d PBFT replicas, tolerating %d Byzantine\n\n", n, b)

	// A client session: writes, an overwrite, a delete, and a retry.
	cmds := []model.Value{
		kv.Command("req-1", "SET", "name", "genconsensus"),
		kv.Command("req-2", "SET", "paper", "DSN-2010"),
		kv.Command("req-3", "SET", "name", "generic-consensus"),
		kv.Command("req-4", "DEL", "paper", ""),
		kv.Command("req-1", "SET", "name", "genconsensus"), // client retry: deduplicated
	}
	for _, cmd := range cmds {
		cluster.Submit(0, cmd)
	}
	if err := cluster.Drain(60); err != nil {
		log.Fatal(err)
	}
	if err := cluster.CheckConsistency(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("decided log (%d entries):\n", cluster.Replica(0).Log.Len())
	for i := 0; i < cluster.Replica(0).Log.Len(); i++ {
		entry, _ := cluster.Replica(0).Log.Get(i)
		fmt.Printf("  [%d] %s\n", i, entry)
	}

	fmt.Println("\nreplica states (all identical):")
	for i := 0; i < n; i++ {
		store := cluster.Replica(model.PID(i)).SM.(*kv.Store)
		fmt.Printf("  replica %d: %v\n", i, store.Snapshot())
	}
	store := cluster.Replica(0).SM.(*kv.Store)
	if v, ok := store.Get("name"); !ok || v != "generic-consensus" {
		log.Fatalf("unexpected value for name: %q (retry was not deduplicated?)", v)
	}
	if _, ok := store.Get("paper"); ok {
		log.Fatal("paper key survived DEL")
	}
	fmt.Println("\nconsistency check: OK (logs identical, retry applied once)")
}
