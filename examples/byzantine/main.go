// Byzantine: PBFT (n = 3b+1) with an equivocating Byzantine process that
// sends conflicting votes with forged current-phase timestamps to the two
// halves of the cluster, plus a late good period: the honest processes
// still agree.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"

	consensus "genconsensus"
)

func main() {
	spec, err := consensus.NewPBFT(4, 1)
	if err != nil {
		log.Fatalf("building PBFT: %v", err)
	}
	fmt.Println("algorithm:", spec)

	inits := map[consensus.PID]consensus.Value{
		0: "commit", 1: "abort", 2: "commit",
		// process 3 is Byzantine: no initial value needed.
	}

	for seed := int64(0); seed < 3; seed++ {
		res, err := consensus.Run(spec, inits,
			consensus.WithSeed(seed),
			consensus.WithByzantine(3, consensus.Equivocate("commit", "abort")),
			// Bad periods first: the adversary controls deliveries
			// until phase 3.
			consensus.WithGoodFromPhase(3),
			consensus.WithDropProbability(0.5),
		)
		if err != nil {
			log.Fatalf("running: %v", err)
		}
		if len(res.Violations) > 0 {
			log.Fatalf("seed %d: violations: %v", seed, res.Violations)
		}
		fmt.Printf("seed %d: all honest processes decided %q after %d rounds (equivocator defeated)\n",
			seed, res.Decisions[0], res.Rounds)
	}

	// The same adversary, but the network never stabilizes: termination
	// cannot be expected, yet safety still holds (run bounded).
	res, err := consensus.Run(spec, inits,
		consensus.WithSeed(9),
		consensus.WithByzantine(3, consensus.Equivocate("commit", "abort")),
		consensus.WithAlwaysBad(),
		consensus.WithMaxRounds(60),
	)
	if err != nil {
		log.Fatalf("running: %v", err)
	}
	if len(res.Violations) > 0 {
		log.Fatalf("asynchronous run: violations: %v", res.Violations)
	}
	fmt.Printf("perpetual asynchrony: %d/3 honest decided after %d rounds, zero safety violations\n",
		len(res.Decisions), res.Rounds)
}
