// Pconsbuild: the §2.2 unification in action — run PBFT over a network that
// only ever guarantees Pgood, building the Pcons predicate its selection
// rounds need with the two WIC constructions: the 2-round authenticated
// relay and the 3-round signature-free echo broadcast.
//
//	go run ./examples/pconsbuild
package main

import (
	"fmt"
	"log"

	"genconsensus/internal/auth"
	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/model"
	"genconsensus/internal/round"
	"genconsensus/internal/selector"
	"genconsensus/internal/sim"
	"genconsensus/internal/wic"
)

func main() {
	n, b := 4, 1
	params := core.Params{
		N: n, B: b, F: 0, TD: 2*b + 1,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(n, b),
		Selector:   selector.NewAll(n),
		UseHistory: true,
	}
	keyring, err := auth.NewKeyring(n, 7)
	if err != nil {
		log.Fatal(err)
	}
	vals := []model.Value{"b", "a", "c", "a"}

	fmt.Println("PBFT (n=4, b=1) over a Pgood-only network — Pcons is built,")
	fmt.Println("not assumed. The same algorithm, two constructions:")
	fmt.Println()
	for _, mode := range []wic.Mode{wic.Relay, wic.Echo} {
		procs := map[model.PID]round.Proc{}
		inits := map[model.PID]model.Value{}
		for i := 0; i < n; i++ {
			p := model.PID(i)
			inner, err := core.NewProcess(p, vals[i], params)
			if err != nil {
				log.Fatal(err)
			}
			inits[p] = vals[i]
			wrapped, err := wic.Wrap(inner, wic.Config{
				N: n, B: b, Mode: mode, Keyring: keyring,
			}, params.Schedule())
			if err != nil {
				log.Fatal(err)
			}
			procs[p] = wrapped
		}
		sched := core.Schedule{Flag: model.FlagPhase}
		engine, err := sim.New(sim.Config{
			Params: core.Params{N: n, B: b, F: 0},
			Inits:  inits,
			Procs:  procs,
			Sched:  &sched,
			// Pgood only: no round is ever canonicalized by the network.
			Modes: func(model.Round, model.RoundKind) sim.Mode { return sim.ModeGood },
			Seed:  3,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := engine.Run()
		if !res.AllDecided || len(res.Violations) > 0 {
			log.Fatalf("%s: decided=%v violations=%v", mode, res.AllDecided, res.Violations)
		}
		var decision model.Value
		for _, v := range res.Decisions {
			decision = v
			break
		}
		fmt.Printf("  %-10s micro-rounds per selection: %d; outer rounds to decision: %d;\n",
			mode, mode.Micros(), res.Rounds)
		fmt.Printf("  %-10s messages: %d, bytes: %d, decision: %q\n",
			"", res.Stats.MessagesSent, res.Stats.BytesSent, decision)
		fmt.Println()
	}
	fmt.Println("The relay needs signatures (the authenticated Byzantine model);")
	fmt.Println("the echo works with oral messages but costs one more round —")
	fmt.Println("exactly the 2-vs-3 round trade-off of §2.2.")
}
