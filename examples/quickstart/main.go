// Quickstart: run the paper's new MQB algorithm (n > 4b) on five processes,
// one of which proposes a different value, and print who decided what.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	consensus "genconsensus"
)

func main() {
	// MQB tolerates b Byzantine processes with n = 4b+1 — here b=1, n=5.
	spec, err := consensus.NewMQB(5, 1)
	if err != nil {
		log.Fatalf("building MQB: %v", err)
	}
	fmt.Println("algorithm:", spec)
	fmt.Println("state variables:", spec.StateVars())

	// Five honest processes with split proposals; the network is
	// synchronous from phase 1 (the default).
	inits := map[consensus.PID]consensus.Value{
		0: "apply-discount", 1: "reject-order", 2: "apply-discount",
		3: "reject-order", 4: "apply-discount",
	}
	res, err := consensus.Run(spec, inits, consensus.WithSeed(2024))
	if err != nil {
		log.Fatalf("running: %v", err)
	}

	fmt.Printf("decided in %d rounds (%d phases of %d rounds)\n",
		res.Rounds, (res.Rounds+spec.RoundsPerPhase()-1)/spec.RoundsPerPhase(),
		spec.RoundsPerPhase())
	for p := consensus.PID(0); p < 5; p++ {
		fmt.Printf("  process %d decided %q in round %d\n",
			p, res.Decisions[p], res.DecidedAt[p])
	}
	fmt.Printf("traffic: %d messages, %d bytes\n",
		res.Stats.MessagesSent, res.Stats.BytesSent)
	if len(res.Violations) > 0 {
		log.Fatalf("property violations: %v", res.Violations)
	}
	fmt.Println("agreement, validity: OK")
}
