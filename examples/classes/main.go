// Classes: reproduce the shape of Table 1 live — run a representative of
// each of the three classes at its minimal n for b=1 (Byzantine) or f=1
// (benign) and print the resilience/state/rounds trade-off.
//
//	go run ./examples/classes
package main

import (
	"fmt"
	"log"
	"strings"

	consensus "genconsensus"
)

func main() {
	type row struct {
		spec  *consensus.Spec
		inits map[consensus.PID]consensus.Value
		opts  []consensus.RunOption
	}
	mk := func(spec *consensus.Spec, err error) *consensus.Spec {
		if err != nil {
			log.Fatal(err)
		}
		return spec
	}
	fab := mk(consensus.NewFaBPaxos(6, 1))
	mqb := mk(consensus.NewMQB(5, 1))
	pbft := mk(consensus.NewPBFT(4, 1))
	otr := mk(consensus.NewOneThirdRule(4, 1))
	paxos := mk(consensus.NewPaxos(3, 1))

	rows := []row{
		{fab, consensus.SplitInits(6, "b", "a"), nil},
		{mqb, consensus.SplitInits(5, "b", "a"), nil},
		{pbft, consensus.SplitInits(4, "b", "a"), nil},
		{otr, consensus.SplitInits(4, "b", "a"), nil},
		{paxos, consensus.SplitInits(3, "b", "a"), nil},
	}

	fmt.Println("Table 1 live — each algorithm at its minimal n:")
	fmt.Printf("%-14s %-8s %-3s %-3s %-3s %-4s %-6s %-14s %-7s %-9s\n",
		"algorithm", "class", "n", "b", "f", "TD", "FLAG", "state", "rounds", "msgs")
	for _, r := range rows {
		opts := append([]consensus.RunOption{consensus.WithSeed(7)}, r.opts...)
		res, err := consensus.Run(r.spec, r.inits, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if !res.AllDecided || len(res.Violations) > 0 {
			log.Fatalf("%s: decided=%v violations=%v", r.spec.Name, res.AllDecided, res.Violations)
		}
		flag := "φ"
		if r.spec.RoundsPerPhase() <= 2 {
			flag = "*"
		}
		fmt.Printf("%-14s %-8s %-3d %-3d %-3d %-4d %-6s %-14s %-7d %-9d\n",
			r.spec.Name, r.spec.Class, r.spec.N, r.spec.B, r.spec.F, r.spec.TD,
			flag, strings.Join(r.spec.StateVars(), ","), res.Rounds,
			res.Stats.MessagesSent)
	}
	fmt.Println()
	fmt.Println("Reading the table: fewer rounds per phase costs more replicas")
	fmt.Println("(class 1: n>5b), smaller n costs more state (class 3 carries the")
	fmt.Println("unbounded history). MQB sits in between at n>4b with (vote, ts).")
}
