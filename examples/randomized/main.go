// Randomized: Ben-Or binary consensus (§6) under the Prel predicate — no
// good periods ever, termination by coin flipping. Prints the distribution
// of phases-to-decision over many seeded runs, for unanimous and split
// inputs.
//
//	go run ./examples/randomized
package main

import (
	"fmt"
	"log"

	consensus "genconsensus"
)

func run(n, f int, inits map[consensus.PID]consensus.Value, runs int) (mean float64, max int) {
	total := 0
	for seed := int64(0); seed < int64(runs); seed++ {
		spec, err := consensus.NewBenOr(n, f, seed*131+17)
		if err != nil {
			log.Fatal(err)
		}
		res, err := consensus.Run(spec, inits,
			consensus.WithSeed(seed), consensus.WithRel(), consensus.WithMaxRounds(5000))
		if err != nil {
			log.Fatal(err)
		}
		if !res.AllDecided {
			log.Fatalf("seed %d: no termination", seed)
		}
		if len(res.Violations) > 0 {
			log.Fatalf("seed %d: %v", seed, res.Violations)
		}
		phases := (res.Rounds + 2) / 3
		total += phases
		if phases > max {
			max = phases
		}
	}
	return float64(total) / float64(runs), max
}

func main() {
	const runs = 200
	fmt.Printf("Ben-Or (benign, n=3, f=1), %d seeded runs under Prel:\n", runs)

	mean, max := run(3, 1, consensus.UnanimousInits(3, "1"), runs)
	fmt.Printf("  unanimous inputs: mean %.2f phases to decide (max %d)\n", mean, max)

	mean, max = run(3, 1, consensus.SplitInits(3, "0", "1"), runs)
	fmt.Printf("  split inputs:     mean %.2f phases to decide (max %d)\n", mean, max)

	fmt.Println()
	fmt.Println("Byzantine Ben-Or (n=6 > 5b, b=1) with an equivocator:")
	decided0, decided1 := 0, 0
	for seed := int64(0); seed < 50; seed++ {
		spec, err := consensus.NewByzantineBenOr(6, 1, seed*7+1, false)
		if err != nil {
			log.Fatal(err)
		}
		inits := consensus.SplitInits(6, "0", "1")
		delete(inits, 5)
		res, err := consensus.Run(spec, inits,
			consensus.WithSeed(seed),
			consensus.WithByzantine(5, consensus.Equivocate("0", "1")),
			consensus.WithRel(), consensus.WithMaxRounds(5000))
		if err != nil {
			log.Fatal(err)
		}
		if !res.AllDecided || len(res.Violations) > 0 {
			log.Fatalf("seed %d: decided=%v violations=%v", seed, res.AllDecided, res.Violations)
		}
		if res.Decisions[0] == "0" {
			decided0++
		} else {
			decided1++
		}
	}
	fmt.Printf("  50/50 runs terminated; decisions: %d × \"0\", %d × \"1\"\n", decided0, decided1)
	fmt.Println()
	fmt.Println("Note: the paper states n > 4b for Byzantine Ben-Or; this library")
	fmt.Println("requires n > 5b after finding lock-evidence decay at n = 4b+1")
	fmt.Println("(see EXPERIMENTS.md, E-BENOR).")
}
