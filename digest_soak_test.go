package genconsensus

import (
	"fmt"
	"math/rand"
	"testing"

	"genconsensus/internal/auth"
	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
	"genconsensus/internal/smr"
)

// TestSMRDigestSoak is the large-cluster soak of digest voting: a class-3
// n=25, b=4, f=4 (TD=17) cluster under signed client load where the full
// Byzantine budget comes up mid-run — two members voting hostile digests
// (well-formed content addresses of payloads nobody published), one
// fabricating unsigned envelopes, one replaying the committed log — and one
// member crashes. Every wave must preserve log consistency AND provenance,
// no digest vote may ever reach an honest log (resolve-before-weigh prices
// unresolvable references at zero; decided digests resolve before commit),
// and the honest stores must converge to exactly the signed writes. This is
// the throughput-survives-large-n claim exercised at the safety layer: 25
// members agree on 32-byte content addresses while the payload plane (the
// shared DigestTable here, the transport store on TCP) carries the bytes.
func TestSMRDigestSoak(t *testing.T) {
	const (
		n, b, f    = 25, 4, 4
		td         = n - b - f // 17
		clientSeed = int64(2010)
	)
	rng := rand.New(rand.NewSource(2500))
	params := core.Params{
		N: n, B: b, F: f, TD: td,
		Flag:       model.FlagPhase,
		FLV:        flv.NewClass3(n, td, b, false),
		Selector:   selector.NewAll(n),
		UseHistory: true,
	}
	keyring := auth.NewClientKeyring(clientSeed, 4)
	cluster, err := smr.NewCluster(params, func(model.PID) smr.StateMachine {
		store := kv.NewStore()
		store.EnableClientAuth(keyring, 256)
		return store
	}, 2501)
	if err != nil {
		t.Fatal(err)
	}
	cluster.SetBatchSize(4)
	cluster.EnableCommandAuth(smr.NewAuthContext(keyring, 256))
	cluster.EnableDigestVotes()

	signers := []*auth.ClientSigner{
		auth.NewClientSigner(clientSeed, 0),
		auth.NewClientSigner(clientSeed, 1),
		auth.NewClientSigner(clientSeed, 2),
	}
	seqs := make([]uint64, len(signers))
	want := map[string]string{}
	submit := func() {
		c := rng.Intn(len(signers))
		seqs[c]++
		key := fmt.Sprintf("gk-%d-%d", c, seqs[c]%17)
		value := fmt.Sprintf("gv-%d-%d", c, seqs[c])
		cmd, err := kv.SignedCommand(signers[c], seqs[c], "SET", key, value)
		if err != nil {
			t.Fatal(err)
		}
		want[key] = value
		cluster.Submit(0, cmd)
	}

	// Warm-up wave so the replay strategy has a committed log to capture.
	for i := 0; i < 8; i++ {
		submit()
	}
	if err := cluster.Drain(40); err != nil {
		t.Fatal(err)
	}
	committed := cluster.Replica(1).Log.Entries()

	// The fault schedule: the full b=4 Byzantine budget plus one of the f=4
	// crash slots, staged across the waves.
	faulty := map[model.PID]bool{0: true, 21: true, 22: true, 23: true, 24: true}
	for wave := 0; wave < 8; wave++ {
		burst := rng.Intn(10)
		for i := 0; i < burst; i++ {
			submit()
		}
		switch wave {
		case 1:
			if err := cluster.SetByzantine(24, smr.HostileDigests()); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := cluster.SetByzantine(23, smr.FabricateCommands(5000)); err != nil {
				t.Fatal(err)
			}
		case 3:
			if err := cluster.SetByzantine(22, smr.ReplayCommands(committed)); err != nil {
				t.Fatal(err)
			}
		case 4:
			if err := cluster.Crash(0); err != nil {
				t.Fatal(err)
			}
		case 5:
			if err := cluster.SetByzantine(21, smr.HostileDigests()); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := cluster.RunInstance(); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		if err := cluster.CheckConsistency(); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		if err := cluster.CheckProvenance(); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
	}
	if err := cluster.Drain(160); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CheckProvenance(); err != nil {
		t.Fatal(err)
	}

	// The replicated log never stores digests: every honest entry resolved
	// before commit, and no hostile digest ever priced above zero.
	for p := 0; p < n; p++ {
		if faulty[model.PID(p)] {
			continue
		}
		for i, entry := range cluster.Replica(model.PID(p)).Log.Entries() {
			if smr.IsDigestVote(entry) {
				t.Fatalf("replica %d log[%d] is a digest vote: %q", p, i, entry)
			}
		}
	}

	// Honest stores converge to exactly the signed writes.
	ref := cluster.Replica(1).SM.(*kv.Store).Snapshot()
	for k, v := range want {
		if ref[k] != v {
			t.Fatalf("missing signed write %s = %q (got %q)", k, v, ref[k])
		}
	}
	if len(ref) != len(want) {
		t.Fatalf("store holds %d keys, want %d", len(ref), len(want))
	}
	for p := 2; p <= 20; p += 3 {
		got := cluster.Replica(model.PID(p)).SM.(*kv.Store).Snapshot()
		if len(got) != len(ref) {
			t.Fatalf("replica %d: %d keys vs %d", p, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("replica %d: %s = %q, want %q", p, k, got[k], v)
			}
		}
	}
}
