package genconsensus

// Benchmark harness: one benchmark per paper artifact (Table 1, Figures
// 1-3) plus the supporting substrates. Run with:
//
//	go test -bench=. -benchmem
//
// Latency benchmarks measure complete simulated executions (all correct
// processes deciding); figure benchmarks measure single FLV evaluations on
// the exact vectors of the paper's figures.

import (
	"fmt"
	"testing"
	"time"

	"genconsensus/internal/auth"
	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/obs"
	"genconsensus/internal/selector"
	"genconsensus/internal/smr"
	"genconsensus/internal/wire"
)

// runToDecision executes one fault-free simulated run and fails the
// benchmark on any anomaly.
func runToDecision(b *testing.B, spec *Spec, seed int64) {
	b.Helper()
	res, err := Run(spec, SplitInits(spec.N, "b", "a"), WithSeed(seed))
	if err != nil {
		b.Fatal(err)
	}
	if !res.AllDecided || len(res.Violations) > 0 {
		b.Fatalf("run failed: decided=%v violations=%v", res.AllDecided, res.Violations)
	}
}

// --- Table 1: one benchmark per class at its minimal n (b=1 or f=1) --------

func BenchmarkTable1Class1FaB(b *testing.B) {
	spec, err := NewFaBPaxos(6, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runToDecision(b, spec, int64(i))
	}
}

func BenchmarkTable1Class2MQB(b *testing.B) {
	spec, err := NewMQB(5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runToDecision(b, spec, int64(i))
	}
}

func BenchmarkTable1Class3PBFT(b *testing.B) {
	spec, err := NewPBFT(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runToDecision(b, spec, int64(i))
	}
}

// --- Decision latency for every named instantiation ------------------------

func BenchmarkDecisionLatency(b *testing.B) {
	specs := []*Spec{}
	for _, mk := range []func() (*Spec, error){
		func() (*Spec, error) { return NewOneThirdRule(4, 1) },
		func() (*Spec, error) { return NewFaBPaxos(6, 1) },
		func() (*Spec, error) { return NewMQB(5, 1) },
		func() (*Spec, error) { return NewPaxos(3, 1) },
		func() (*Spec, error) { return NewChandraToueg(3, 1) },
		func() (*Spec, error) { return NewPBFT(4, 1) },
	} {
		spec, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, spec)
	}
	for _, spec := range specs {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runToDecision(b, spec, int64(i))
			}
		})
	}
}

// Scaling: PBFT decision latency as n grows at b = ⌊(n-1)/3⌋.
func BenchmarkPBFTScaling(b *testing.B) {
	for _, n := range []int{4, 7, 10, 13} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			spec, err := NewPBFT(n, (n-1)/3)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runToDecision(b, spec, int64(i))
			}
		})
	}
}

// --- Figures 1-3: FLV evaluation on the exact paper vectors ----------------

func figureVector(kind int) (flv.Func, model.Received, model.Phase) {
	sel := func(vote model.Value, ts model.Phase, hist model.History) model.Message {
		return model.Message{Kind: model.SelectionRound, Vote: vote, TS: ts, History: hist}
	}
	switch kind {
	case 1:
		mu := model.Received{
			0: sel("v1", 0, nil), 1: sel("v1", 0, nil), 2: sel("v1", 0, nil),
			3: sel("v1", 0, nil), 4: sel("v2", 0, nil), 5: sel("v2", 0, nil),
		}
		return flv.NewClass1(6, 5, 1), mu, 1
	case 2:
		mu := model.Received{
			0: sel("v1", 2, nil), 1: sel("v1", 2, nil), 2: sel("v1", 2, nil),
			3: sel("v2", 1, nil), 4: sel("v2", 5, nil),
		}
		return flv.NewClass2(5, 4, 1), mu, 3
	default:
		mu := model.Received{
			0: sel("v1", 2, model.NewHistory("v1").Add("v1", 2)),
			1: sel("v1", 2, model.NewHistory("v2").Add("v1", 2)),
			2: sel("v2", 1, model.NewHistory("v2").Add("v2", 1)),
			3: sel("v2", 5, model.NewHistory("v2").Add("v2", 5)),
		}
		return flv.NewClass3(4, 3, 1, false), mu, 3
	}
}

func benchFigure(b *testing.B, kind int) {
	f, mu, phase := figureVector(kind)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := f.Eval(mu, phase); res.Out != flv.Locked || res.Val != "v1" {
			b.Fatalf("unexpected FLV result %v", res)
		}
	}
}

func BenchmarkFigure1FLVClass1(b *testing.B) { benchFigure(b, 1) }
func BenchmarkFigure2FLVClass2(b *testing.B) { benchFigure(b, 2) }
func BenchmarkFigure3FLVClass3(b *testing.B) { benchFigure(b, 3) }

// FLV evaluation at larger scale (n = 3b+1 with b = 10).
func BenchmarkFLVClass3Large(b *testing.B) {
	n, byz := 31, 10
	f := flv.NewClass3(n, 2*byz+1, byz, false)
	mu := model.Received{}
	for i := 0; i < n; i++ {
		v := model.Value("v1")
		if i%3 == 0 {
			v = "v2"
		}
		mu[model.PID(i)] = model.Message{
			Kind: model.SelectionRound, Vote: v, TS: model.Phase(i % 4),
			History: model.NewHistory(v).Add(v, model.Phase(i%4)),
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Eval(mu, 5)
	}
}

// --- Randomized Ben-Or (§6) -------------------------------------------------

func BenchmarkBenOrBenign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec, err := NewBenOr(3, 1, int64(i)*31+7)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(spec, SplitInits(3, "0", "1"),
			WithSeed(int64(i)), WithRel(), WithMaxRounds(4000))
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllDecided {
			b.Fatal("no termination")
		}
	}
}

// --- Substrates --------------------------------------------------------------

func BenchmarkWireEncodeDecode(b *testing.B) {
	env := wire.Envelope{
		Instance: 3, Round: 7, Sender: 2,
		Msg: model.Message{
			Kind: model.SelectionRound, Vote: "value-a", TS: 4,
			History: model.NewHistory("value-a").Add("value-b", 2),
			Sel:     model.AllPIDs(7),
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload := wire.Encode(env)
		if _, err := wire.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSMRInstance(b *testing.B) {
	params := core.Params{
		N: 4, B: 1, F: 0, TD: 3,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(4, 1),
		Selector:   selector.NewAll(4),
		UseHistory: true,
	}
	cluster, err := smr.NewCluster(params, func(model.PID) smr.StateMachine {
		return kv.NewStore()
	}, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cmd := kv.Command(fmt.Sprintf("req-%d", i), "SET", "k", "v")
		cluster.Submit(0, cmd)
		if _, err := cluster.RunInstance(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMRBatched measures log throughput (committed commands per
// second) as the batch bound grows. batch=1 is the unbatched protocol: one
// command per 3-round instance. Larger bounds amortize the same agreement
// cost over many commands; the cmds/sec metric is the comparison axis.
func BenchmarkSMRBatched(b *testing.B) {
	params := core.Params{
		N: 4, B: 1, F: 0, TD: 3,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(4, 1),
		Selector:   selector.NewAll(4),
		UseHistory: true,
	}
	for _, batch := range []int{1, 16, 64} {
		batch := batch
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			cluster, err := smr.NewCluster(params, func(model.PID) smr.StateMachine {
				return kv.NewStore()
			}, 17)
			if err != nil {
				b.Fatal(err)
			}
			cluster.SetBatchSize(batch)
			b.ReportAllocs()
			committed := 0
			for i := 0; i < b.N; i++ {
				// One full load of commands, decided by one instance.
				for j := 0; j < batch; j++ {
					cluster.Submit(0, kv.Command(fmt.Sprintf("req-%d-%d", i, j), "SET", "k", "v"))
				}
				if _, err := cluster.RunInstance(); err != nil {
					b.Fatal(err)
				}
				committed += batch
			}
			if got := cluster.Replica(0).Log.Len(); got != committed {
				b.Fatalf("log length %d, want %d (batch not fully decided)", got, committed)
			}
			b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "cmds/sec")
		})
	}
}

// BenchmarkSMRPipelined measures decided-command throughput as the pipeline
// depth W and batch size sweep. The simulator is single-threaded, so the
// axis pipelining actually improves is simulated time: one tick is one
// network round for every in-flight instance (the latency a real deployment
// pays per round; the TCP runtime's rounds cost tens of milliseconds each).
// cmds/sec is therefore computed against simulated rounds at a nominal 1ms
// round trip; rounds/cmd is the raw, unit-free pipeline efficiency. At the
// same batch size, W=4 overlaps 4 instances per window and sustains ~4x the
// decided-commands/sec of W=1.
// BenchmarkSMRAuthenticated compares the signed command path against the
// legacy raw-bytes path at the throughput sweet spot (batch=64, W=4): same
// cluster, same pipeline, same load — the only difference is that the
// signed variant wraps every command in a MAC'd envelope and verifies
// provenance at ingress, in the chooser and at apply. Signing cost is paid
// client-side per command; verification is amortized by the AuthContext
// cache. The acceptance bar is signed cmds/sec within 15% of legacy.
func BenchmarkSMRAuthenticated(b *testing.B) {
	const (
		roundLatency = time.Millisecond
		batch        = 64
		depth        = 4
		clientSeed   = int64(99)
	)
	params := core.Params{
		N: 4, B: 1, F: 0, TD: 3,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(4, 1),
		Selector:   selector.NewAll(4),
		UseHistory: true,
	}
	for _, signed := range []bool{false, true} {
		name := "legacy"
		if signed {
			name = "signed"
		}
		b.Run(fmt.Sprintf("%s/batch=%d/W=%d", name, batch, depth), func(b *testing.B) {
			keyring := auth.NewClientKeyring(clientSeed, 4)
			authCtx := smr.NewAuthContext(keyring, 1<<16)
			cluster, err := smr.NewCluster(params, func(model.PID) smr.StateMachine {
				store := kv.NewStore()
				if signed {
					// Share the verification cache with the chooser, as
					// node.New does: apply answers from cached verdicts.
					store.EnableClientAuth(authCtx, 1<<16)
				}
				return store
			}, 23)
			if err != nil {
				b.Fatal(err)
			}
			cluster.SetBatchSize(batch)
			if signed {
				cluster.EnableCommandAuth(authCtx)
			}
			pipe := smr.NewPipeline(cluster, depth)
			signer := auth.NewClientSigner(clientSeed, 1)
			seq := uint64(0)
			b.ReportAllocs()
			committed := 0
			for i := 0; i < b.N; i++ {
				load := depth * batch
				for j := 0; j < load; j++ {
					var cmd model.Value
					if signed {
						seq++
						cmd, err = kv.SignedCommand(signer, seq, "SET", "k", fmt.Sprintf("v-%d", seq))
						if err != nil {
							b.Fatal(err)
						}
					} else {
						cmd = kv.Command(fmt.Sprintf("req-%d-%d", i, j), "SET", "k", "v")
					}
					cluster.Submit(0, cmd)
				}
				if err := pipe.Drain(2*load + 2); err != nil {
					b.Fatal(err)
				}
				committed += load
			}
			// The post-run audits below re-verify the WHOLE committed log —
			// O(b.N) work the legacy path never does. Stop the clock first:
			// wall-cmds/sec measures the steady-state commit path, not the
			// end-of-run consistency sweep.
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			stats := pipe.Stats()
			if stats.Committed != committed {
				b.Fatalf("committed %d commands, want %d", stats.Committed, committed)
			}
			if err := cluster.CheckConsistency(); err != nil {
				b.Fatal(err)
			}
			if signed {
				if err := cluster.CheckProvenance(); err != nil {
					b.Fatal(err)
				}
			}
			simSeconds := (time.Duration(stats.Ticks) * roundLatency).Seconds()
			b.ReportMetric(float64(committed)/simSeconds, "cmds/sec")
			b.ReportMetric(float64(stats.Ticks)/float64(committed), "rounds/cmd")
			// Wall-clock throughput exposes the pure CPU cost of signing
			// and verification (the simulated-time metric charges only
			// network rounds, where the signed path costs nothing extra).
			b.ReportMetric(float64(committed)/elapsed, "wall-cmds/sec")
		})
	}
}

func BenchmarkSMRPipelined(b *testing.B) {
	const roundLatency = time.Millisecond // nominal per-round network latency
	params := core.Params{
		N: 4, B: 1, F: 0, TD: 3,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(4, 1),
		Selector:   selector.NewAll(4),
		UseHistory: true,
	}
	for _, batch := range []int{1, 64} {
		for _, w := range []int{1, 2, 4, 8} {
			batch, w := batch, w
			b.Run(fmt.Sprintf("batch=%d/W=%d", batch, w), func(b *testing.B) {
				cluster, err := smr.NewCluster(params, func(model.PID) smr.StateMachine {
					return kv.NewStore()
				}, 19)
				if err != nil {
					b.Fatal(err)
				}
				cluster.SetBatchSize(batch)
				pipe := smr.NewPipeline(cluster, w)
				b.ReportAllocs()
				committed := 0
				for i := 0; i < b.N; i++ {
					// One full window of work per iteration.
					load := w * batch
					for j := 0; j < load; j++ {
						cluster.Submit(0, kv.Command(fmt.Sprintf("req-%d-%d", i, j), "SET", "k", "v"))
					}
					if err := pipe.Drain(2*load + 2); err != nil {
						b.Fatal(err)
					}
					committed += load
				}
				stats := pipe.Stats()
				if stats.Committed != committed {
					b.Fatalf("committed %d commands, want %d", stats.Committed, committed)
				}
				if err := cluster.CheckConsistency(); err != nil {
					b.Fatal(err)
				}
				simSeconds := (time.Duration(stats.Ticks) * roundLatency).Seconds()
				b.ReportMetric(float64(committed)/simSeconds, "cmds/sec")
				b.ReportMetric(float64(stats.Ticks)/float64(committed), "rounds/cmd")
			})
		}
	}
}

// BenchmarkSMRObs measures the metrics registry's hot-path overhead: the
// identical pipelined SMR load with instrumentation on and off. Unlike the
// simulated-time benchmarks above, cmds/sec here is wall-clock — the
// instrument updates (a handful of atomic adds per command) are real CPU
// cost and simulated rounds would hide them. CI gates the on/off quotient
// at 0.97 (metrics cost at most 3%) via benchgate -ratio; see `make
// bench-obs`.
func BenchmarkSMRObs(b *testing.B) {
	const (
		batch = 16
		depth = 4
	)
	params := core.Params{
		N: 4, B: 1, F: 0, TD: 3,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(4, 1),
		Selector:   selector.NewAll(4),
		UseHistory: true,
	}
	for _, metricsOn := range []bool{true, false} {
		name := "metrics=off"
		if metricsOn {
			name = "metrics=on"
		}
		b.Run(name, func(b *testing.B) {
			cluster, err := smr.NewCluster(params, func(model.PID) smr.StateMachine {
				return kv.NewStore()
			}, 19)
			if err != nil {
				b.Fatal(err)
			}
			cluster.SetBatchSize(batch)
			var reg *obs.Registry
			if metricsOn {
				reg = obs.NewRegistry()
			}
			cluster.SetMetrics(reg)
			pipe := smr.NewPipeline(cluster, depth)
			b.ReportAllocs()
			b.ResetTimer()
			committed := 0
			for i := 0; i < b.N; i++ {
				load := depth * batch
				for j := 0; j < load; j++ {
					cluster.Submit(0, kv.Command(fmt.Sprintf("req-%d-%d", i, j), "SET", "k", "v"))
				}
				if err := pipe.Drain(2*load + 2); err != nil {
					b.Fatal(err)
				}
				committed += load
			}
			b.StopTimer()
			if err := cluster.CheckConsistency(); err != nil {
				b.Fatal(err)
			}
			if metricsOn && reg.CounterValue("smr.commits") == 0 {
				// Guards against accidentally benchmarking a disconnected
				// registry.
				b.Fatal("metrics=on run recorded no commits")
			}
			b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "cmds/sec")
		})
	}
}
