package genconsensus

import (
	"errors"
	"strings"
	"testing"
)

func TestConstructorsAtMinimalN(t *testing.T) {
	tests := []struct {
		name   string
		make   func() (*Spec, error)
		class  Class
		rounds int
		state  int
	}{
		{"OneThirdRule n=4 f=1", func() (*Spec, error) { return NewOneThirdRule(4, 1) }, Class1, 1, 1},
		{"FaB n=6 b=1", func() (*Spec, error) { return NewFaBPaxos(6, 1) }, Class1, 2, 1},
		{"MQB n=5 b=1", func() (*Spec, error) { return NewMQB(5, 1) }, Class2, 3, 2},
		{"Paxos n=3 f=1", func() (*Spec, error) { return NewPaxos(3, 1) }, Class3, 3, 2},
		{"CT n=3 f=1", func() (*Spec, error) { return NewChandraToueg(3, 1) }, Class2, 3, 2},
		{"PBFT n=4 b=1", func() (*Spec, error) { return NewPBFT(4, 1) }, Class3, 3, 3},
		{"BenOr n=3 f=1", func() (*Spec, error) { return NewBenOr(3, 1, 7) }, Class2, 3, 2},
		{"ByzBenOr n=6 b=1", func() (*Spec, error) { return NewByzantineBenOr(6, 1, 7, false) }, Class2, 3, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec, err := tt.make()
			if err != nil {
				t.Fatalf("constructor: %v", err)
			}
			if spec.Class != tt.class {
				t.Errorf("class = %v, want %v", spec.Class, tt.class)
			}
			if got := spec.RoundsPerPhase(); got != tt.rounds {
				t.Errorf("rounds/phase = %d, want %d", got, tt.rounds)
			}
			if got := len(spec.StateVars()); got != tt.state {
				t.Errorf("state vars = %v, want %d", spec.StateVars(), tt.state)
			}
			if s := spec.String(); !strings.Contains(s, spec.Name) {
				t.Errorf("String() = %q must contain the name", s)
			}
		})
	}
}

func TestConstructorsRejectBelowBound(t *testing.T) {
	cases := []struct {
		name string
		make func() (*Spec, error)
	}{
		{"OneThirdRule n=3 f=1", func() (*Spec, error) { return NewOneThirdRule(3, 1) }},
		{"FaB n=5 b=1", func() (*Spec, error) { return NewFaBPaxos(5, 1) }},
		{"MQB n=4 b=1", func() (*Spec, error) { return NewMQB(4, 1) }},
		{"Paxos n=2 f=1", func() (*Spec, error) { return NewPaxos(2, 1) }},
		{"CT n=2 f=1", func() (*Spec, error) { return NewChandraToueg(2, 1) }},
		{"PBFT n=3 b=1", func() (*Spec, error) { return NewPBFT(3, 1) }},
		{"BenOr n=2 f=1", func() (*Spec, error) { return NewBenOr(2, 1, 0) }},
		{"generic c1 n=5 b=1", func() (*Spec, error) { return NewGeneric(Class1, 5, 1, 0) }},
		{"generic c2 n=4 b=1", func() (*Spec, error) { return NewGeneric(Class2, 4, 1, 0) }},
		{"generic c3 n=3 b=1", func() (*Spec, error) { return NewGeneric(Class3, 3, 1, 0) }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.make(); !errors.Is(err, ErrBadSize) {
				t.Fatalf("err = %v, want ErrBadSize", err)
			}
		})
	}
}

func TestByzantineBenOrGuardsPaperBound(t *testing.T) {
	if _, err := NewByzantineBenOr(5, 1, 0, false); !errors.Is(err, ErrUnsafeBound) {
		t.Fatalf("err = %v, want ErrUnsafeBound at n=4b+1", err)
	}
	if _, err := NewByzantineBenOr(5, 1, 0, true); err != nil {
		t.Fatalf("allowPaperBound must accept n=4b+1 for reproduction: %v", err)
	}
}

// The full deterministic matrix: every algorithm decides cleanly on a
// fault-free synchronous run with split inputs.
func TestAllAlgorithmsFaultFree(t *testing.T) {
	specs := map[string]*Spec{}
	add := func(name string, s *Spec, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		specs[name] = s
	}
	otr, err := NewOneThirdRule(4, 1)
	add("otr", otr, err)
	fab, err := NewFaBPaxos(6, 1)
	add("fab", fab, err)
	mqb, err := NewMQB(5, 1)
	add("mqb", mqb, err)
	paxos, err := NewPaxos(3, 1)
	add("paxos", paxos, err)
	ct, err := NewChandraToueg(3, 1)
	add("ct", ct, err)
	pbft, err := NewPBFT(4, 1)
	add("pbft", pbft, err)
	g3, err := NewGeneric(Class3, 6, 1, 1)
	add("generic3", g3, err)

	for name, spec := range specs {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			res, err := Run(spec, SplitInits(spec.N, "b", "a"), WithSeed(3))
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDecided {
				t.Fatalf("not all decided in %d rounds", res.Rounds)
			}
			if len(res.Violations) > 0 {
				t.Fatalf("violations: %v", res.Violations)
			}
			if res.Rounds > 2*spec.RoundsPerPhase() {
				t.Errorf("decided in %d rounds; expected within two phases (%d)",
					res.Rounds, 2*spec.RoundsPerPhase())
			}
		})
	}
}

// Byzantine-tolerant algorithms under the full strategy set at minimal n.
func TestByzantineMatrix(t *testing.T) {
	makeSpecs := func() map[string]*Spec {
		fab, _ := NewFaBPaxos(6, 1)
		mqb, _ := NewMQB(5, 1)
		pbft, _ := NewPBFT(4, 1)
		return map[string]*Spec{"fab": fab, "mqb": mqb, "pbft": pbft}
	}
	strategies := map[string]func() Strategy{
		"silent":     Silent,
		"equivocate": func() Strategy { return Equivocate("a", "b") },
		"junk":       func() Strategy { return RandomJunk("a", "b", "z") },
		"forge-ts":   func() Strategy { return ForgeTimestamp("z") },
		"mimic":      Mimic,
	}
	for specName, spec := range makeSpecs() {
		for stratName, mk := range strategies {
			spec, mk := spec, mk
			t.Run(specName+"/"+stratName, func(t *testing.T) {
				byzPID := PID(spec.N - 1)
				inits := SplitInits(spec.N, "b", "a")
				delete(inits, byzPID)
				for seed := int64(0); seed < 8; seed++ {
					res, err := Run(spec, inits,
						WithSeed(seed), WithByzantine(byzPID, mk()))
					if err != nil {
						t.Fatal(err)
					}
					if !res.AllDecided {
						t.Fatalf("seed %d: no termination in %d rounds", seed, res.Rounds)
					}
					if len(res.Violations) > 0 {
						t.Fatalf("seed %d: %v", seed, res.Violations)
					}
				}
			})
		}
	}
}

// Benign algorithms with crash faults, including coordinator crashes.
func TestCrashMatrix(t *testing.T) {
	paxos, err := NewPaxos(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := NewChandraToueg(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	otr, err := NewOneThirdRule(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	type tc struct {
		name string
		spec *Spec
		opts []RunOption
	}
	cases := []tc{
		{"paxos coordinator crash", paxos, []RunOption{WithCrash(0, 1)}},
		{"paxos follower crash", paxos, []RunOption{WithCrash(2, 2)}},
		{"paxos partial crash", paxos, []RunOption{WithCrashPartial(1, 3, 0)}},
		{"ct coordinator crash", ct, []RunOption{WithCrash(0, 2)}},
		{"otr crash", otr, []RunOption{WithCrash(3, 1)}},
	}
	for _, tt := range cases {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				opts := append([]RunOption{WithSeed(seed)}, tt.opts...)
				res, err := Run(tt.spec, SplitInits(tt.spec.N, "b", "a", "c"), opts...)
				if err != nil {
					t.Fatal(err)
				}
				if !res.AllDecided {
					t.Fatalf("seed %d: no termination in %d rounds", seed, res.Rounds)
				}
				if len(res.Violations) > 0 {
					t.Fatalf("seed %d: %v", seed, res.Violations)
				}
			}
		})
	}
}

// GST sweep across algorithms: bad periods first, decisions shortly after
// the first good phase.
func TestGSTSweep(t *testing.T) {
	mqb, err := NewMQB(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	pbft, err := NewPBFT(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []*Spec{mqb, pbft} {
		for _, phi0 := range []Phase{2, 4} {
			res, err := Run(spec, SplitInits(spec.N, "b", "a"),
				WithSeed(11), WithGoodFromPhase(phi0), WithDropProbability(0.4))
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDecided {
				t.Fatalf("%s phi0=%d: no termination in %d rounds", spec.Name, phi0, res.Rounds)
			}
			if len(res.Violations) > 0 {
				t.Fatalf("%s phi0=%d: %v", spec.Name, phi0, res.Violations)
			}
		}
	}
}

// Unanimity: promised instantiations decide the common honest value even
// under Byzantine pressure.
func TestUnanimityPromise(t *testing.T) {
	g3, err := NewGeneric(Class3, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g3.Unanimity {
		t.Fatal("generic class 3 must promise unanimity")
	}
	inits := UnanimousInits(4, "v")
	delete(inits, 3)
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(g3, inits,
			WithSeed(seed),
			WithByzantine(3, ForgeTimestamp("evil")),
			WithUnanimityCheck())
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided {
			t.Fatalf("seed %d: no termination", seed)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
		for p, v := range res.Decisions {
			if v != "v" {
				t.Fatalf("seed %d: process %d decided %q", seed, p, v)
			}
		}
	}
}

// Randomized Ben-Or through the public API.
func TestBenOrPublicAPI(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		spec, err := NewBenOr(3, 1, seed*13+1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(spec, SplitInits(3, "0", "1"),
			WithSeed(seed), WithRel(), WithMaxRounds(4000))
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided {
			t.Fatalf("seed %d: Ben-Or did not terminate", seed)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
	}
}

// Safety-only runs under perpetual asynchrony with adversaries.
func TestSafetyUnderPerpetualBadPeriods(t *testing.T) {
	pbft, err := NewPBFT(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(pbft, SplitInits(3, "b", "a"),
			WithSeed(seed),
			WithByzantine(3, Equivocate("a", "b")),
			WithAlwaysBad(),
			WithMaxRounds(90))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
	}
}

// Spec options.
func TestSpecOptions(t *testing.T) {
	pbft, err := NewPBFT(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pbft.Apply(WithSkipFirstSelection(), WithHistoryBound(4)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !pbft.Params.SkipFirstSelection || pbft.Params.HistoryBound != 4 {
		t.Error("options not applied")
	}
	res, err := Run(pbft, SplitInits(4, "a"), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || len(res.Violations) > 0 {
		t.Fatalf("skip-first PBFT run failed: %+v", res)
	}
	// Skip-first with unanimous inputs must save the selection round:
	// phase 1 is validation+decision = 2 rounds.
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 with skip-first optimization", res.Rounds)
	}

	if err := pbft.Apply(WithHistoryBound(0)); err == nil {
		t.Error("zero history bound accepted")
	}
	paxos, err := NewPaxos(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := paxos.Apply(WithStableLeader(1)); err != nil {
		t.Fatalf("stable leader on benign spec: %v", err)
	}
	if err := pbft.Apply(WithStableLeader(0)); err == nil {
		t.Error("stable leader accepted with b>0")
	}
	mqb, err := NewMQB(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mqb.Apply(WithRotatingSubsetSelector(3)); err != nil {
		t.Fatalf("rotating subset b+1 on MQB: %v", err)
	}
	if err := mqb.Apply(WithRotatingSubsetSelector(2)); err == nil {
		t.Error("subset of size b accepted (violates Selector-validity)")
	}
}

// Run-option validation.
func TestRunOptionValidation(t *testing.T) {
	spec, err := NewPBFT(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	inits := SplitInits(4, "a")
	if _, err := Run(spec, inits, WithMaxRounds(0)); err == nil {
		t.Error("zero max rounds accepted")
	}
	if _, err := Run(spec, inits, WithGoodFromPhase(0)); err == nil {
		t.Error("phase 0 accepted")
	}
	if _, err := Run(spec, inits, WithDropProbability(1.5)); err == nil {
		t.Error("probability out of range accepted")
	}
}

func TestInitHelpers(t *testing.T) {
	split := SplitInits(5, "a", "b")
	if split[0] != "a" || split[1] != "b" || split[4] != "a" {
		t.Errorf("SplitInits = %v", split)
	}
	un := UnanimousInits(3, "v")
	for p, v := range un {
		if v != "v" {
			t.Errorf("UnanimousInits[%d] = %q", p, v)
		}
	}
	if len(un) != 3 {
		t.Errorf("UnanimousInits size = %d", len(un))
	}
}

// Rotating-subset selector end to end: MQB with per-phase b+1-sized
// validator windows still decides (an alternative §4.2 instantiation).
func TestMQBRotatingSubset(t *testing.T) {
	mqb, err := NewMQB(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mqb.Apply(WithRotatingSubsetSelector(3)); err != nil {
		t.Fatal(err)
	}
	res, err := Run(mqb, SplitInits(9, "b", "a"), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || len(res.Violations) > 0 {
		t.Fatalf("rotating-subset MQB failed: rounds=%d violations=%v", res.Rounds, res.Violations)
	}
}
