package genconsensus_test

import (
	"fmt"
	"sort"

	consensus "genconsensus"
)

// Building the paper's new MQB algorithm and running it fault-free.
func ExampleNewMQB() {
	spec, err := consensus.NewMQB(5, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := consensus.Run(spec,
		consensus.SplitInits(5, "b", "a"),
		consensus.WithSeed(1),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	// With proposals b,a,b,a,b the value "b" reaches three copies —
	// above the class-2 FLV support threshold — and is selected.
	fmt.Println(spec.Class, "rounds:", res.Rounds, "decision:", res.Decisions[0])
	// Output: class 2 rounds: 3 decision: b
}

// PBFT with an equivocating Byzantine process: all honest processes agree.
func ExampleNewPBFT() {
	spec, err := consensus.NewPBFT(4, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	inits := map[consensus.PID]consensus.Value{0: "x", 1: "y", 2: "x"}
	res, err := consensus.Run(spec, inits,
		consensus.WithSeed(1),
		consensus.WithByzantine(3, consensus.Equivocate("x", "y")),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	decisions := make([]string, 0, len(res.Decisions))
	for _, v := range res.Decisions {
		decisions = append(decisions, string(v))
	}
	sort.Strings(decisions)
	fmt.Println(decisions, len(res.Violations) == 0)
	// Output: [x x x] true
}

// The generic constructor classifies any (class, n, b, f) configuration.
func ExampleNewGeneric() {
	spec, err := consensus.NewGeneric(consensus.Class3, 6, 1, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(spec.TD, spec.RoundsPerPhase(), spec.StateVars())
	// Output: 4 3 [vote ts history]
}

// Below-bound configurations are rejected with the violated constraint.
func ExampleNewPBFT_belowBound() {
	_, err := consensus.NewPBFT(3, 1) // PBFT needs n > 3b
	fmt.Println(err != nil)
	// Output: true
}
