package genconsensus

import (
	"testing"
)

// Ablation: bounded history (footnote 5 / [3] variant). With a bound at
// least as long as the adversary can stall decisions into the past (here:
// bound ≥ 2 phases), PBFT keeps deciding safely under attack; the test also
// documents the trade-off — the bound caps message growth.
func TestAblationHistoryBound(t *testing.T) {
	for _, bound := range []int{2, 4, 8} {
		bound := bound
		for seed := int64(0); seed < 10; seed++ {
			spec, err := NewPBFT(4, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Apply(WithHistoryBound(bound)); err != nil {
				t.Fatal(err)
			}
			inits := SplitInits(4, "b", "a")
			delete(inits, 3)
			res, err := Run(spec, inits,
				WithSeed(seed),
				WithByzantine(3, ForgeTimestamp("z")),
				WithGoodFromPhase(2),
				WithDropProbability(0.5))
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDecided {
				t.Fatalf("bound=%d seed=%d: no termination in %d rounds", bound, seed, res.Rounds)
			}
			if len(res.Violations) > 0 {
				t.Fatalf("bound=%d seed=%d: %v", bound, seed, res.Violations)
			}
		}
	}
}

// Ablation: byte growth with and without the history bound. Unbounded
// histories grow with the phase count; the bound flattens them.
func TestAblationHistoryBytes(t *testing.T) {
	run := func(bound int) int64 {
		spec, err := NewPBFT(4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if bound > 0 {
			if err := spec.Apply(WithHistoryBound(bound)); err != nil {
				t.Fatal(err)
			}
		}
		// Delay the good phase so several phases of history accumulate.
		res, err := Run(spec, SplitInits(4, "b", "a"),
			WithSeed(3), WithGoodFromPhase(8), WithDropProbability(0.7))
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided || len(res.Violations) > 0 {
			t.Fatalf("bound=%d: decided=%v violations=%v", bound, res.AllDecided, res.Violations)
		}
		return res.Stats.BytesSent
	}
	unbounded := run(0)
	bounded := run(2)
	if bounded >= unbounded {
		t.Errorf("history bound did not reduce traffic: bounded=%d unbounded=%d", bounded, unbounded)
	}
	t.Logf("ablation: bytes to decision with 8 bad phases: unbounded=%d, bound-2=%d", unbounded, bounded)
}

// Ablation: the line-11 chooser. Both deterministic rules are safe; the
// smallest-most-often rule (the original OTR's) can converge in fewer
// phases on skewed splits because it follows the plurality.
func TestAblationChoosers(t *testing.T) {
	type result struct{ rounds int }
	run := func(mostOften bool, seed int64) result {
		spec, err := NewGeneric(Class1, 7, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if mostOften {
			spec.Params.Chooser = nil // default MinChooser
		}
		res, err := Run(spec, SplitInits(7, "b", "b", "b", "b", "a", "a", "a"), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided || len(res.Violations) > 0 {
			t.Fatalf("chooser run failed: %+v", res.Violations)
		}
		return result{res.Rounds}
	}
	for seed := int64(0); seed < 5; seed++ {
		a := run(false, seed)
		b := run(true, seed)
		if a.rounds <= 0 || b.rounds <= 0 {
			t.Fatal("no rounds recorded")
		}
	}
}

// Ablation: selector choice for MQB — whole Π versus the rotating b+1
// subset of §4.2. Both decide; the subset variant sends fewer selection
// messages (selection messages go only to the validators).
func TestAblationSelectors(t *testing.T) {
	full, err := NewMQB(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	subset, err := NewMQB(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := subset.Apply(WithRotatingSubsetSelector(3)); err != nil {
		t.Fatal(err)
	}
	resFull, err := Run(full, SplitInits(9, "b", "a"), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	resSub, err := Run(subset, SplitInits(9, "b", "a"), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]Result{"full": resFull, "subset": resSub} {
		if !res.AllDecided || len(res.Violations) > 0 {
			t.Fatalf("%s selector: decided=%v violations=%v", name, res.AllDecided, res.Violations)
		}
	}
	if resSub.Stats.MessagesSent >= resFull.Stats.MessagesSent {
		t.Errorf("subset selector sent %d messages, full Π sent %d — expected fewer",
			resSub.Stats.MessagesSent, resFull.Stats.MessagesSent)
	}
	t.Logf("ablation: MQB n=9 b=2 messages to decision: Π=%d, rotating-3-subset=%d",
		resFull.Stats.MessagesSent, resSub.Stats.MessagesSent)
}

// Ablation: merged versus unmerged class-1 phases (the §3.2 overlap
// optimization). Merged OTR decides in half the rounds on unanimous inputs.
func TestAblationMergedRounds(t *testing.T) {
	merged, err := NewOneThirdRule(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	unmerged, err := NewGeneric(Class1, 4, 0, 1) // plain 2-round phases
	if err != nil {
		t.Fatal(err)
	}
	resM, err := Run(merged, UnanimousInits(4, "v"), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	resU, err := Run(unmerged, UnanimousInits(4, "v"), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if resM.Rounds != 1 || resU.Rounds != 2 {
		t.Errorf("rounds merged=%d (want 1) unmerged=%d (want 2)", resM.Rounds, resU.Rounds)
	}
}
