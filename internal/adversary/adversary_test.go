package adversary

import (
	"testing"

	"genconsensus/internal/core"
	"genconsensus/internal/model"
)

func newTestProc(t *testing.T, s Strategy) *Proc {
	t.Helper()
	sched := core.Schedule{Flag: model.FlagPhase}
	return NewProc(3, 4, sched, 42, s)
}

func TestSilent(t *testing.T) {
	p := newTestProc(t, Silent{})
	for r := model.Round(1); r <= 6; r++ {
		if out := p.Send(r); out != nil {
			t.Fatalf("silent process sent %v in round %d", out, r)
		}
		p.Transition(r, model.Received{})
	}
	if _, decided := p.Decided(); decided {
		t.Error("Byzantine process must never report a decision")
	}
	if p.ID() != 3 {
		t.Errorf("ID = %d", p.ID())
	}
	if p.StrategyName() != "byz/silent" {
		t.Errorf("StrategyName = %q", p.StrategyName())
	}
}

func TestRandomJunkSendsToAll(t *testing.T) {
	p := newTestProc(t, RandomJunk{Values: []model.Value{"a", "b", "c"}})
	out := p.Send(1)
	if len(out) != 4 {
		t.Fatalf("junk sent to %d dests, want 4", len(out))
	}
	for d, m := range out {
		if m.Vote == model.NoValue {
			t.Errorf("dest %d: empty vote", d)
		}
	}
	// Determinism under the same seed.
	p2 := newTestProc(t, RandomJunk{Values: []model.Value{"a", "b", "c"}})
	out2 := p2.Send(1)
	for d := range out {
		if out[d].Vote != out2[d].Vote || out[d].TS != out2[d].TS {
			t.Fatal("junk strategy is not seed-deterministic")
		}
	}
}

func TestEquivocateSplitsBothHalves(t *testing.T) {
	p := newTestProc(t, Equivocate{A: "a", B: "b"})
	out := p.Send(3) // decision round of phase 1
	if len(out) != 4 {
		t.Fatalf("equivocate sent to %d dests", len(out))
	}
	if out[0].Vote != "a" || out[1].Vote != "a" {
		t.Errorf("low half got %q/%q, want a/a", out[0].Vote, out[1].Vote)
	}
	if out[2].Vote != "b" || out[3].Vote != "b" {
		t.Errorf("high half got %q/%q, want b/b", out[2].Vote, out[3].Vote)
	}
	// The forged timestamp claims current-phase validation.
	if out[0].TS != 1 {
		t.Errorf("equivocate TS = %d, want phase 1", out[0].TS)
	}
}

func TestForgeTimestamp(t *testing.T) {
	p := newTestProc(t, ForgeTimestamp{Target: "evil"})
	// Selection round of phase 2 (round 4): claims validation at phase 1.
	out := p.Send(4)
	m := out[0]
	if m.Vote != "evil" || m.TS != 1 {
		t.Errorf("selection forge = %v, want (evil, ts=1)", m)
	}
	if !m.History.Contains("evil", 1) {
		t.Error("forged history must back the forged timestamp")
	}
	// Decision round of phase 2 (round 6): claims current phase.
	out = p.Send(6)
	if out[0].TS != 2 {
		t.Errorf("decision forge TS = %d, want 2", out[0].TS)
	}
}

func TestMimicFollowsMajorityAndWithholdsValidation(t *testing.T) {
	s := &Mimic{}
	p := newTestProc(t, s)
	mu := model.Received{
		0: {Vote: "x"}, 1: {Vote: "x"}, 2: {Vote: "y"},
	}
	p.Transition(1, mu)
	out := p.Send(3)
	if out[0].Vote != "x" {
		t.Errorf("mimic vote = %q, want observed majority x", out[0].Vote)
	}
	if out := p.Send(2); out != nil { // validation round withheld
		t.Errorf("mimic sent validation messages: %v", out)
	}
	// Before observing anything the mimic sends a default.
	fresh := newTestProc(t, &Mimic{})
	if out := fresh.Send(1); out[0].Vote == model.NoValue {
		t.Error("fresh mimic sent empty vote")
	}
}

func TestFlipFlop(t *testing.T) {
	p := newTestProc(t, FlipFlop{Even: Silent{}, Odd: Equivocate{A: "a", B: "b"}})
	if out := p.Send(2); out != nil {
		t.Errorf("even round must be silent, got %v", out)
	}
	if out := p.Send(3); len(out) == 0 {
		t.Error("odd round must equivocate")
	}
	p.Transition(1, model.Received{}) // Observe must not panic on either leg
	p.Transition(2, model.Received{})
	if (FlipFlop{Even: Silent{}, Odd: Silent{}}).Name() != "byz/flip-flop" {
		t.Error("name")
	}
}

func TestStrategyNames(t *testing.T) {
	strategies := []Strategy{
		Silent{}, RandomJunk{Values: []model.Value{"a"}},
		Equivocate{A: "a", B: "b"}, ForgeTimestamp{Target: "t"}, &Mimic{},
	}
	seen := map[string]bool{}
	for _, s := range strategies {
		name := s.Name()
		if name == "" {
			t.Errorf("%T has empty name", s)
		}
		if seen[name] {
			t.Errorf("duplicate strategy name %q", name)
		}
		seen[name] = true
	}
}
