// Package adversary implements Byzantine process behaviours for testing and
// for the tightness experiments: silence, random garbage, equivocation,
// timestamp forgery, history forgery and coordinated vote splitting.
//
// A Byzantine process is a round.Proc whose Send is controlled by a Strategy.
// Strategies observe everything the process receives (full-information
// adversary) and may send different messages to different destinations;
// they cannot impersonate other processes (§2.1), which the network layer
// enforces by attaching sender identities.
package adversary

import (
	"math/rand"

	"genconsensus/internal/core"
	"genconsensus/internal/model"
	"genconsensus/internal/round"
)

// Ctx gives strategies their execution context.
type Ctx struct {
	Self model.PID
	N    int
	Rng  *rand.Rand
	// Sched maps rounds to (phase, kind) for the honest algorithm under
	// attack, letting strategies target specific round types.
	Sched core.Schedule
}

// Strategy decides what a Byzantine process sends each round.
type Strategy interface {
	// Name identifies the strategy in traces and test output.
	Name() string
	// Messages returns the per-destination messages for round r; nil
	// means silence.
	Messages(ctx *Ctx, r model.Round) map[model.PID]model.Message
	// Observe shows the strategy the vector its process received.
	Observe(ctx *Ctx, r model.Round, mu model.Received)
}

// Proc is a Byzantine process driven by a Strategy. It never decides.
type Proc struct {
	ctx      Ctx
	strategy Strategy
}

var _ round.Proc = (*Proc)(nil)

// NewProc returns a Byzantine process. The seed isolates this process's
// randomness so executions replay deterministically.
func NewProc(self model.PID, n int, sched core.Schedule, seed int64, s Strategy) *Proc {
	return &Proc{
		ctx: Ctx{
			Self:  self,
			N:     n,
			Rng:   rand.New(rand.NewSource(seed)),
			Sched: sched,
		},
		strategy: s,
	}
}

// ID implements round.Proc.
func (p *Proc) ID() model.PID { return p.ctx.Self }

// Send implements round.Proc.
func (p *Proc) Send(r model.Round) map[model.PID]model.Message {
	return p.strategy.Messages(&p.ctx, r)
}

// Transition implements round.Proc.
func (p *Proc) Transition(r model.Round, mu model.Received) {
	p.strategy.Observe(&p.ctx, r, mu)
}

// Decided implements round.Proc: Byzantine processes never report decisions.
func (p *Proc) Decided() (model.Value, bool) { return model.NoValue, false }

// StrategyName exposes the strategy's name for traces.
func (p *Proc) StrategyName() string { return p.strategy.Name() }

// --- Strategies -------------------------------------------------------------

// Silent sends nothing, ever: the weakest Byzantine behaviour (equivalent to
// an initially-crashed process, but counted against b rather than f).
type Silent struct{}

// Name implements Strategy.
func (Silent) Name() string { return "byz/silent" }

// Messages implements Strategy.
func (Silent) Messages(*Ctx, model.Round) map[model.PID]model.Message { return nil }

// Observe implements Strategy.
func (Silent) Observe(*Ctx, model.Round, model.Received) {}

// RandomJunk sends uniformly random votes, timestamps and histories,
// independently to every destination.
type RandomJunk struct {
	// Values is the pool junk votes are drawn from.
	Values []model.Value
}

// Name implements Strategy.
func (s RandomJunk) Name() string { return "byz/random-junk" }

// Observe implements Strategy.
func (s RandomJunk) Observe(*Ctx, model.Round, model.Received) {}

// Messages implements Strategy.
func (s RandomJunk) Messages(ctx *Ctx, r model.Round) map[model.PID]model.Message {
	phase, kind := ctx.Sched.At(r)
	out := make(map[model.PID]model.Message, ctx.N)
	for _, d := range model.AllPIDs(ctx.N) {
		v := s.Values[ctx.Rng.Intn(len(s.Values))]
		ts := model.Phase(ctx.Rng.Intn(int(phase) + 2))
		h := model.NewHistory(v).Add(v, ts)
		out[d] = model.Message{Kind: kind, Vote: v, TS: ts, History: h}
	}
	return out
}

// Equivocate sends value A to the lower half of the process space and B to
// the upper half, in every round, with timestamps claiming current-phase
// validation — the canonical split attack against decision thresholds.
type Equivocate struct {
	A, B model.Value
}

// Name implements Strategy.
func (s Equivocate) Name() string { return "byz/equivocate" }

// Observe implements Strategy.
func (s Equivocate) Observe(*Ctx, model.Round, model.Received) {}

// Messages implements Strategy.
func (s Equivocate) Messages(ctx *Ctx, r model.Round) map[model.PID]model.Message {
	phase, kind := ctx.Sched.At(r)
	out := make(map[model.PID]model.Message, ctx.N)
	for _, d := range model.AllPIDs(ctx.N) {
		v := s.A
		if int(d) >= ctx.N/2 {
			v = s.B
		}
		h := model.NewHistory(v).Add(v, phase)
		out[d] = model.Message{Kind: kind, Vote: v, TS: phase, History: h}
	}
	return out
}

// ForgeTimestamp pushes Target with fabricated past-validation evidence: in
// selection rounds it claims Target was validated in the previous phase
// (with a matching forged history); in decision rounds it votes Target with
// the current phase's timestamp.
type ForgeTimestamp struct {
	Target model.Value
}

// Name implements Strategy.
func (s ForgeTimestamp) Name() string { return "byz/forge-timestamp" }

// Observe implements Strategy.
func (s ForgeTimestamp) Observe(*Ctx, model.Round, model.Received) {}

// Messages implements Strategy.
func (s ForgeTimestamp) Messages(ctx *Ctx, r model.Round) map[model.PID]model.Message {
	phase, kind := ctx.Sched.At(r)
	claim := phase
	if kind == model.SelectionRound && phase > 1 {
		claim = phase - 1
	}
	h := model.NewHistory(s.Target).Add(s.Target, claim)
	msg := model.Message{Kind: kind, Vote: s.Target, TS: claim, History: h}
	return round.Broadcast(msg, model.AllPIDs(ctx.N))
}

// Mimic echoes the majority vote it last observed, making the Byzantine
// process look honest while withholding validation-round participation —
// a liveness attack against small validator sets.
type Mimic struct {
	last model.Value
}

// Name implements Strategy.
func (s *Mimic) Name() string { return "byz/mimic" }

// Observe implements Strategy.
func (s *Mimic) Observe(_ *Ctx, _ model.Round, mu model.Received) {
	if v, ok := mu.SmallestMostOften(); ok {
		s.last = v
	}
}

// Messages implements Strategy.
func (s *Mimic) Messages(ctx *Ctx, r model.Round) map[model.PID]model.Message {
	phase, kind := ctx.Sched.At(r)
	if kind == model.ValidationRound {
		return nil // withhold validation
	}
	v := s.last
	if v == model.NoValue {
		v = "0"
	}
	msg := model.Message{Kind: kind, Vote: v, TS: phase}
	return round.Broadcast(msg, model.AllPIDs(ctx.N))
}

// Fabricate is the injection shell for proposer-content attacks: each round
// it broadcasts an attacker-chosen value (drawn from Next — e.g. a batch of
// forged command envelopes, replayed client commands or signature-stripped
// payloads) wrapped in honest-looking round metadata (current-phase
// timestamp and a matching history), so the value survives structural
// checks and is judged purely on its content. The callback keeps this
// package free of the batch and envelope codecs: internal/smr supplies
// concrete fabricators (FabricateCommands, ReplayCommands,
// StripSignatures).
type Fabricate struct {
	// Label names the concrete attack in traces ("byz/" is prefixed).
	Label string
	// Next produces the round's injected value. It is called once per
	// round; returning NoValue silences the round.
	Next func(ctx *Ctx, r model.Round) model.Value
}

// Name implements Strategy.
func (s Fabricate) Name() string { return "byz/" + s.Label }

// Observe implements Strategy.
func (s Fabricate) Observe(*Ctx, model.Round, model.Received) {}

// Messages implements Strategy.
func (s Fabricate) Messages(ctx *Ctx, r model.Round) map[model.PID]model.Message {
	v := s.Next(ctx, r)
	if v == model.NoValue {
		return nil
	}
	phase, kind := ctx.Sched.At(r)
	h := model.NewHistory(v).Add(v, phase)
	msg := model.Message{Kind: kind, Vote: v, TS: phase, History: h}
	return round.Broadcast(msg, model.AllPIDs(ctx.N))
}

// FlipFlop alternates between two sub-strategies round by round, modelling
// intermittently detectable behaviour.
type FlipFlop struct {
	Even, Odd Strategy
}

// Name implements Strategy.
func (s FlipFlop) Name() string { return "byz/flip-flop" }

// Observe implements Strategy.
func (s FlipFlop) Observe(ctx *Ctx, r model.Round, mu model.Received) {
	s.pick(r).Observe(ctx, r, mu)
}

// Messages implements Strategy.
func (s FlipFlop) Messages(ctx *Ctx, r model.Round) map[model.PID]model.Message {
	return s.pick(r).Messages(ctx, r)
}

func (s FlipFlop) pick(r model.Round) Strategy {
	if r%2 == 0 {
		return s.Even
	}
	return s.Odd
}
