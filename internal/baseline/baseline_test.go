package baseline

import (
	"testing"

	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/model"
	"genconsensus/internal/round"
	"genconsensus/internal/selector"
	"genconsensus/internal/sim"
)

// runCustom drives baseline processes through the shared simulator.
func runCustom(t *testing.T, n, b, f int, sched core.Schedule, procs map[model.PID]round.Proc,
	inits map[model.PID]model.Value, modes sim.ModeFunc, drop sim.Dropper, seed int64, maxRounds int) sim.Result {
	t.Helper()
	e, err := sim.New(sim.Config{
		Params:    core.Params{N: n, B: b, F: f},
		Inits:     inits,
		Procs:     procs,
		Sched:     &sched,
		Modes:     modes,
		Drop:      drop,
		Seed:      seed,
		MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	return e.Run()
}

func TestOTRUnanimousDecidesRoundOne(t *testing.T) {
	n := 4
	procs := map[model.PID]round.Proc{}
	inits := map[model.PID]model.Value{}
	for i := 0; i < n; i++ {
		procs[model.PID(i)] = NewOTR(model.PID(i), n, "v")
		inits[model.PID(i)] = "v"
	}
	sched := core.Schedule{Flag: model.FlagStar, Merged: true}
	res := runCustom(t, n, 0, 1, sched, procs, inits, nil, nil, 1, 0)
	if !res.AllDecided {
		t.Fatalf("OTR did not decide in %d rounds", res.Rounds)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestOTRSplitInputs(t *testing.T) {
	n := 4
	procs := map[model.PID]round.Proc{}
	inits := map[model.PID]model.Value{}
	vals := []model.Value{"a", "a", "b", "b"}
	for i := 0; i < n; i++ {
		procs[model.PID(i)] = NewOTR(model.PID(i), n, vals[i])
		inits[model.PID(i)] = vals[i]
	}
	sched := core.Schedule{Flag: model.FlagStar, Merged: true}
	res := runCustom(t, n, 0, 1, sched, procs, inits, nil, nil, 1, 0)
	if !res.AllDecided || len(res.Violations) > 0 {
		t.Fatalf("res: %+v", res)
	}
	for p, v := range res.Decisions {
		if v != "a" {
			t.Errorf("process %d decided %q, want smallest-most-often a", p, v)
		}
	}
}

// The original guard: below 2n/3 messages the OTR does nothing.
func TestOTRGuard(t *testing.T) {
	p := NewOTR(0, 6, "x")
	mu := model.Received{
		0: {Vote: "y"}, 1: {Vote: "y"}, 2: {Vote: "y"}, 3: {Vote: "y"},
	}
	p.Transition(1, mu) // 4 ≤ 2n/3 = 4: guard fails
	if p.Vote() != "x" {
		t.Errorf("vote changed below the 2n/3 guard: %q", p.Vote())
	}
	mu[4] = model.Message{Vote: "y"}
	p.Transition(2, mu) // 5 > 4: adopt and decide (5 > 4 identical votes)
	if p.Vote() != "y" {
		t.Errorf("vote = %q, want y", p.Vote())
	}
	if v, ok := p.Decided(); !ok || v != "y" {
		t.Errorf("Decided = (%q, %v)", v, ok)
	}
	if p.DecidedAt() != 2 {
		t.Errorf("DecidedAt = %d", p.DecidedAt())
	}
}

func TestBenOrOriginalTerminates(t *testing.T) {
	n, f := 3, 1
	for seed := int64(0); seed < 10; seed++ {
		procs := map[model.PID]round.Proc{}
		inits := map[model.PID]model.Value{}
		vals := []model.Value{"0", "1", "1"}
		for i := 0; i < n; i++ {
			procs[model.PID(i)] = NewBenOr(model.PID(i), n, f, vals[i], seed*100+int64(i))
			inits[model.PID(i)] = vals[i]
		}
		sched := core.Schedule{Flag: model.FlagStar} // 2 rounds per phase
		res := runCustom(t, n, 0, f, sched, procs, inits, sim.AlwaysRel(), nil, seed, 4000)
		if !res.AllDecided {
			t.Fatalf("seed %d: original Ben-Or did not terminate in %d rounds", seed, res.Rounds)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
	}
}

// Unanimous inputs decide in the first phase without coin flips.
func TestBenOrOriginalUnanimous(t *testing.T) {
	n, f := 3, 1
	procs := map[model.PID]round.Proc{}
	inits := map[model.PID]model.Value{}
	for i := 0; i < n; i++ {
		procs[model.PID(i)] = NewBenOr(model.PID(i), n, f, "1", int64(i))
		inits[model.PID(i)] = "1"
	}
	sched := core.Schedule{Flag: model.FlagStar}
	res := runCustom(t, n, 0, f, sched, procs, inits, sim.AlwaysRel(), nil, 3, 0)
	if !res.AllDecided || res.Rounds != 2 {
		t.Fatalf("rounds = %d (decided=%v), want 2", res.Rounds, res.AllDecided)
	}
	for _, v := range res.Decisions {
		if v != "1" {
			t.Errorf("decided %q, want 1", v)
		}
	}
}

// Ben-Or transition unit semantics: proposal formation and adoption.
func TestBenOrTransitions(t *testing.T) {
	p := NewBenOr(0, 3, 1, "0", 7)
	// Report round: majority of "1" forms a proposal.
	p.Transition(1, model.Received{
		0: {Vote: "0"}, 1: {Vote: "1"}, 2: {Vote: "1"},
	})
	if p.proposal != "1" {
		t.Fatalf("proposal = %q, want 1", p.proposal)
	}
	// Proposal round: f+1 = 2 proposals decide.
	p.Transition(2, model.Received{
		1: {Vote: "1", TS: 1}, 2: {Vote: "1", TS: 1},
	})
	if v, ok := p.Decided(); !ok || v != "1" {
		t.Fatalf("Decided = (%q, %v), want (1, true)", v, ok)
	}
	// A single proposal only adopts.
	q := NewBenOr(1, 3, 1, "0", 8)
	q.Transition(1, model.Received{0: {Vote: "0"}, 1: {Vote: "0"}})
	if q.proposal != "0" {
		t.Fatalf("proposal = %q, want 0", q.proposal)
	}
	q.Transition(2, model.Received{0: {Vote: "1", TS: 1}})
	if _, ok := q.Decided(); ok {
		t.Fatal("decided on a single proposal")
	}
	if q.Vote() != "1" {
		t.Errorf("vote = %q, want adopted 1", q.Vote())
	}
	// No proposals at all: coin flip (value stays binary).
	r := NewBenOr(2, 3, 1, "0", 9)
	r.Transition(2, model.Received{0: {Vote: model.NoValue, TS: 1}})
	if v := r.Vote(); v != "0" && v != "1" {
		t.Errorf("coin produced %q", v)
	}
}

// --- E-DIFF: differential runs against the instantiations ------------------

// Selection-level improvement claim (§5.1): whenever the original OTR's
// guard passes (|µ| > 2n/3), the instantiated class-1 FLV returns non-null.
func TestOTRSelectionImprovement(t *testing.T) {
	n := 6
	td := 5 // ⌈(2n+1)/3⌉
	f := flv.NewClass1(n, td, 0)
	vals := []model.Value{"a", "b", "c"}
	for mask := 0; mask < 1<<n; mask++ {
		mu := model.Received{}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				mu[model.PID(i)] = model.Message{Vote: vals[i%3]}
			}
		}
		if 3*len(mu) > 2*n {
			if res := f.Eval(mu, 1); res.Out == flv.None {
				t.Fatalf("FLV null on %d messages (> 2n/3): instantiation must select whenever the original does", len(mu))
			}
		}
	}
}

// End-to-end differential OTR: same seeds, same drop schedule; the
// instantiation decides at least as often, and no later in the vast
// majority of runs (the paper claims a "(small) improvement").
func TestOTRDifferential(t *testing.T) {
	n, f := 4, 1
	const seeds = 150
	origWins, instWins, ties := 0, 0, 0
	origDecided, instDecided := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		vals := []model.Value{"a", "b", "a", "c"}
		// Original.
		procs := map[model.PID]round.Proc{}
		inits := map[model.PID]model.Value{}
		for i := 0; i < n; i++ {
			procs[model.PID(i)] = NewOTR(model.PID(i), n, vals[i])
			inits[model.PID(i)] = vals[i]
		}
		sched := core.Schedule{Flag: model.FlagStar, Merged: true}
		modes := func(model.Round, model.RoundKind) sim.Mode { return sim.ModeBad }
		orig := runCustom(t, n, 0, f, sched, procs, inits, modes, sim.RandomDrop{P: 0.85}, seed, 60)

		// Instantiated (same network schedule and seed).
		params := core.Params{
			N: n, B: 0, F: f, TD: 3,
			Flag:     model.FlagStar,
			FLV:      flv.NewClass1(n, 3, 0),
			Selector: selector.NewAll(n),
			Chooser:  core.MostOftenChooser{},
			Merged:   true,
		}
		e, err := sim.New(sim.Config{
			Params: params, Inits: inits,
			Modes: modes, Drop: sim.RandomDrop{P: 0.85},
			Seed: seed, MaxRounds: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		inst := e.Run()

		if len(orig.Violations) > 0 || len(inst.Violations) > 0 {
			t.Fatalf("seed %d: violations orig=%v inst=%v", seed, orig.Violations, inst.Violations)
		}
		if orig.AllDecided {
			origDecided++
		}
		if inst.AllDecided {
			instDecided++
		}
		switch {
		case orig.AllDecided && inst.AllDecided:
			switch {
			case inst.Rounds < orig.Rounds:
				instWins++
			case inst.Rounds > orig.Rounds:
				origWins++
			default:
				ties++
			}
		case inst.AllDecided && !orig.AllDecided:
			instWins++
		case orig.AllDecided && !inst.AllDecided:
			origWins++
		}
	}
	if instDecided < origDecided {
		t.Errorf("instantiation decided in %d/%d runs, original in %d: improvement claim inverted",
			instDecided, seeds, origDecided)
	}
	if origWins > (instWins+ties)/4 {
		t.Errorf("original won %d runs vs instantiation %d wins + %d ties: not a '(small) improvement' shape",
			origWins, instWins, ties)
	}
	t.Logf("E-DIFF OTR: inst wins %d, ties %d, orig wins %d; decided inst=%d orig=%d of %d",
		instWins, ties, origWins, instDecided, origDecided, seeds)
}

// End-to-end differential Ben-Or: both versions terminate under Prel and
// agree internally; phase counts are on the same order.
func TestBenOrDifferential(t *testing.T) {
	n, f := 3, 1
	const seeds = 30
	sumOrig, sumInst := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		vals := []model.Value{"0", "1", "0"}
		procs := map[model.PID]round.Proc{}
		inits := map[model.PID]model.Value{}
		for i := 0; i < n; i++ {
			procs[model.PID(i)] = NewBenOr(model.PID(i), n, f, vals[i], seed*100+int64(i))
			inits[model.PID(i)] = vals[i]
		}
		sched := core.Schedule{Flag: model.FlagStar}
		orig := runCustom(t, n, 0, f, sched, procs, inits, sim.AlwaysRel(), nil, seed, 4000)

		params := core.Params{
			N: n, B: 0, F: f, TD: 2,
			Flag:     model.FlagPhase,
			FLV:      flv.NewBenOr(0),
			Selector: selector.NewAll(n),
			Chooser:  core.NewCoinChooser(seed*31+11, "0", "1"),
		}
		e, err := sim.New(sim.Config{
			Params: params, Inits: inits,
			Modes: sim.AlwaysRel(), Seed: seed, MaxRounds: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		inst := e.Run()
		if !orig.AllDecided || !inst.AllDecided {
			t.Fatalf("seed %d: termination orig=%v inst=%v", seed, orig.AllDecided, inst.AllDecided)
		}
		if len(orig.Violations) > 0 || len(inst.Violations) > 0 {
			t.Fatalf("seed %d: violations orig=%v inst=%v", seed, orig.Violations, inst.Violations)
		}
		sumOrig += (orig.Rounds + 1) / 2 // phases of 2 rounds
		sumInst += (inst.Rounds + 2) / 3 // phases of 3 rounds
	}
	meanOrig := float64(sumOrig) / seeds
	meanInst := float64(sumInst) / seeds
	if meanInst > 6*meanOrig+3 || meanOrig > 6*meanInst+3 {
		t.Errorf("phase counts diverge: original mean %.1f, instantiated mean %.1f", meanOrig, meanInst)
	}
	t.Logf("E-DIFF Ben-Or: mean phases original=%.2f instantiated=%.2f", meanOrig, meanInst)
}
