// Package baseline provides verbatim implementations of the original
// algorithms the paper instantiates — OneThirdRule exactly as in
// Algorithm 5 (Charron-Bost & Schiper's Heard-Of formulation) and Ben-Or's
// randomized binary consensus (PODC 1983, benign variant) — for
// differential testing against the generic instantiations. The paper claims
// its instantiations are "(small) improvements": they decide whenever the
// originals do, and sometimes earlier. The E-DIFF experiment checks exactly
// that.
package baseline

import (
	"math/rand"

	"genconsensus/internal/model"
	"genconsensus/internal/round"
)

// OTR is the original OneThirdRule algorithm (Algorithm 5 of the paper):
// one round per phase; on receiving more than 2n/3 messages adopt the
// smallest most-often-received value, and decide when more than 2n/3 of the
// received values are equal.
type OTR struct {
	id        model.PID
	n         int
	vote      model.Value
	decided   bool
	decision  model.Value
	decidedAt model.Round
}

var _ round.Proc = (*OTR)(nil)

// NewOTR returns an original-OneThirdRule process.
func NewOTR(id model.PID, n int, init model.Value) *OTR {
	return &OTR{id: id, n: n, vote: init}
}

// ID implements round.Proc.
func (p *OTR) ID() model.PID { return p.id }

// Decided implements round.Proc.
func (p *OTR) Decided() (model.Value, bool) { return p.decision, p.decided }

// DecidedAt returns the decision round (0 if undecided).
func (p *OTR) DecidedAt() model.Round { return p.decidedAt }

// Vote exposes the current estimate.
func (p *OTR) Vote() model.Value { return p.vote }

// Send implements round.Proc: line 5, send ⟨vote⟩ to all.
func (p *OTR) Send(model.Round) map[model.PID]model.Message {
	msg := model.Message{Kind: model.SelectionRound, Vote: p.vote}
	return round.Broadcast(msg, model.AllPIDs(p.n))
}

// Transition implements round.Proc: lines 7-10 of Algorithm 5. Note the
// original's stricter guard: nothing happens unless more than 2n/3 messages
// arrive (the instantiated version may select from fewer).
func (p *OTR) Transition(r model.Round, mu model.Received) {
	if 3*len(mu) <= 2*p.n {
		return
	}
	if v, ok := mu.SmallestMostOften(); ok {
		p.vote = v
	}
	for v, count := range mu.VoteCounts() {
		if 3*count > 2*p.n {
			if !p.decided {
				p.decided = true
				p.decision = v
				p.decidedAt = r
			}
			return
		}
	}
}

// BenOr is Ben-Or's original randomized binary consensus for benign faults
// (n > 2f): each phase has a report round and a proposal round.
//
//	report round:   broadcast (φ, x). If more than n/2 report the same v,
//	                propose v; otherwise propose ⊥.
//	proposal round: broadcast the proposal. On ≥ f+1 proposals for v,
//	                decide v; on ≥ 1 proposal for v, adopt x := v;
//	                otherwise flip a coin.
//
// Proposals are encoded as validation-kind messages with TS=1 ("D" marker);
// ⊥ proposals carry NoValue.
type BenOr struct {
	id        model.PID
	n, f      int
	vote      model.Value
	proposal  model.Value
	rng       *rand.Rand
	zero, one model.Value
	decided   bool
	decision  model.Value
	decidedAt model.Round
}

var _ round.Proc = (*BenOr)(nil)

// NewBenOr returns an original Ben-Or process with a seeded coin.
func NewBenOr(id model.PID, n, f int, init model.Value, seed int64) *BenOr {
	return &BenOr{
		id: id, n: n, f: f, vote: init,
		rng:  rand.New(rand.NewSource(seed)),
		zero: "0", one: "1",
	}
}

// ID implements round.Proc.
func (p *BenOr) ID() model.PID { return p.id }

// Decided implements round.Proc.
func (p *BenOr) Decided() (model.Value, bool) { return p.decision, p.decided }

// DecidedAt returns the decision round (0 if undecided).
func (p *BenOr) DecidedAt() model.Round { return p.decidedAt }

// Vote exposes the current estimate.
func (p *BenOr) Vote() model.Value { return p.vote }

// Send implements round.Proc: odd rounds report, even rounds propose.
func (p *BenOr) Send(r model.Round) map[model.PID]model.Message {
	var msg model.Message
	if r%2 == 1 {
		msg = model.Message{Kind: model.SelectionRound, Vote: p.vote}
	} else {
		msg = model.Message{Kind: model.ValidationRound, Vote: p.proposal, TS: 1}
	}
	return round.Broadcast(msg, model.AllPIDs(p.n))
}

// Transition implements round.Proc.
func (p *BenOr) Transition(r model.Round, mu model.Received) {
	if r%2 == 1 {
		p.proposal = model.NoValue
		for v, count := range mu.VoteCounts() {
			if 2*count > p.n {
				p.proposal = v
				break
			}
		}
		return
	}
	counts := mu.VoteCounts() // ⊥ proposals are excluded by VoteCounts
	decideV, adoptV := model.NoValue, model.NoValue
	for _, v := range []model.Value{p.zero, p.one} {
		if counts[v] >= p.f+1 {
			decideV = v
		}
		if counts[v] >= 1 {
			adoptV = v
		}
	}
	switch {
	case decideV != model.NoValue:
		p.vote = decideV
		if !p.decided {
			p.decided = true
			p.decision = decideV
			p.decidedAt = r
		}
	case adoptV != model.NoValue:
		p.vote = adoptV
	default:
		if p.rng.Intn(2) == 0 {
			p.vote = p.zero
		} else {
			p.vote = p.one
		}
	}
}
