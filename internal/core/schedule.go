package core

import (
	"genconsensus/internal/model"
)

// Schedule maps global round numbers to (phase, round kind) according to the
// FLAG parameter and the §3.1 structural optimizations:
//
//   - FLAG = φ: phases of 3 rounds (selection, validation, decision);
//     phase φ spans rounds 3φ-2 .. 3φ.
//   - FLAG = *: the validation round is suppressed; phases of 2 rounds.
//   - SkipFirstSelection: the selection round of phase 1 is suppressed
//     (select_p is initialized to init_p and validators to a fixed set).
//   - Merged (FLAG = * only): the decision round of phase φ executes
//     concurrently with the selection round of phase φ+1, collapsing each
//     phase to a single round (the OneThirdRule shape).
type Schedule struct {
	Flag      model.Flag
	SkipFirst bool
	Merged    bool
}

// MergedRound is the pseudo-kind for merged selection+decision rounds. It is
// reported as SelectionRound by At (the message content is the selection
// tuple); IsMerged distinguishes it.
func (s Schedule) IsMerged() bool { return s.Merged && s.Flag == model.FlagStar }

// RoundsPerPhase returns the number of rounds a (non-first) phase spans.
func (s Schedule) RoundsPerPhase() int {
	if s.IsMerged() {
		return 1
	}
	if s.Flag == model.FlagStar {
		return 2
	}
	return 3
}

// At returns the phase and round kind of global round r ≥ 1.
func (s Schedule) At(r model.Round) (model.Phase, model.RoundKind) {
	if r < 1 {
		return 0, 0
	}
	if s.IsMerged() {
		return model.Phase(r), model.SelectionRound
	}
	per := s.RoundsPerPhase()
	kinds := []model.RoundKind{model.SelectionRound, model.DecisionRound}
	if s.Flag == model.FlagPhase {
		kinds = []model.RoundKind{model.SelectionRound, model.ValidationRound, model.DecisionRound}
	}
	if !s.SkipFirst {
		idx := (int(r) - 1) % per
		phase := model.Phase((int(r)-1)/per + 1)
		return phase, kinds[idx]
	}
	// Phase 1 lacks its selection round.
	firstLen := per - 1
	if int(r) <= firstLen {
		return 1, kinds[1+int(r)-1]
	}
	rest := int(r) - firstLen
	idx := (rest - 1) % per
	phase := model.Phase((rest-1)/per + 2)
	return phase, kinds[idx]
}

// FirstRoundOf returns the first global round of phase φ.
func (s Schedule) FirstRoundOf(phase model.Phase) model.Round {
	if phase < 1 {
		return 0
	}
	if s.IsMerged() {
		return model.Round(phase)
	}
	per := s.RoundsPerPhase()
	if !s.SkipFirst {
		return model.Round((int(phase)-1)*per + 1)
	}
	if phase == 1 {
		return 1
	}
	return model.Round((per - 1) + (int(phase)-2)*per + 1)
}

// SelectionRounds returns every round in [1, maxRound] whose kind is
// SelectionRound — the rounds in which Pcons must eventually hold.
func (s Schedule) SelectionRounds(maxRound model.Round) []model.Round {
	var out []model.Round
	for r := model.Round(1); r <= maxRound; r++ {
		if _, kind := s.At(r); kind == model.SelectionRound {
			out = append(out, r)
		}
	}
	return out
}
