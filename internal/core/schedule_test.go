package core

import (
	"testing"

	"genconsensus/internal/model"
)

func TestScheduleFlagPhase(t *testing.T) {
	s := Schedule{Flag: model.FlagPhase}
	tests := []struct {
		r     model.Round
		phase model.Phase
		kind  model.RoundKind
	}{
		{1, 1, model.SelectionRound},
		{2, 1, model.ValidationRound},
		{3, 1, model.DecisionRound},
		{4, 2, model.SelectionRound},
		{5, 2, model.ValidationRound},
		{6, 2, model.DecisionRound},
		{7, 3, model.SelectionRound},
	}
	for _, tt := range tests {
		phase, kind := s.At(tt.r)
		if phase != tt.phase || kind != tt.kind {
			t.Errorf("At(%d) = (%d, %v), want (%d, %v)", tt.r, phase, kind, tt.phase, tt.kind)
		}
	}
	if s.RoundsPerPhase() != 3 {
		t.Errorf("RoundsPerPhase = %d, want 3", s.RoundsPerPhase())
	}
}

func TestScheduleFlagStar(t *testing.T) {
	s := Schedule{Flag: model.FlagStar}
	tests := []struct {
		r     model.Round
		phase model.Phase
		kind  model.RoundKind
	}{
		{1, 1, model.SelectionRound},
		{2, 1, model.DecisionRound},
		{3, 2, model.SelectionRound},
		{4, 2, model.DecisionRound},
		{5, 3, model.SelectionRound},
	}
	for _, tt := range tests {
		phase, kind := s.At(tt.r)
		if phase != tt.phase || kind != tt.kind {
			t.Errorf("At(%d) = (%d, %v), want (%d, %v)", tt.r, phase, kind, tt.phase, tt.kind)
		}
	}
	if s.RoundsPerPhase() != 2 {
		t.Errorf("RoundsPerPhase = %d, want 2", s.RoundsPerPhase())
	}
}

func TestScheduleSkipFirstPhi(t *testing.T) {
	s := Schedule{Flag: model.FlagPhase, SkipFirst: true}
	tests := []struct {
		r     model.Round
		phase model.Phase
		kind  model.RoundKind
	}{
		{1, 1, model.ValidationRound},
		{2, 1, model.DecisionRound},
		{3, 2, model.SelectionRound},
		{4, 2, model.ValidationRound},
		{5, 2, model.DecisionRound},
		{6, 3, model.SelectionRound},
	}
	for _, tt := range tests {
		phase, kind := s.At(tt.r)
		if phase != tt.phase || kind != tt.kind {
			t.Errorf("At(%d) = (%d, %v), want (%d, %v)", tt.r, phase, kind, tt.phase, tt.kind)
		}
	}
}

func TestScheduleSkipFirstStar(t *testing.T) {
	s := Schedule{Flag: model.FlagStar, SkipFirst: true}
	tests := []struct {
		r     model.Round
		phase model.Phase
		kind  model.RoundKind
	}{
		{1, 1, model.DecisionRound},
		{2, 2, model.SelectionRound},
		{3, 2, model.DecisionRound},
		{4, 3, model.SelectionRound},
	}
	for _, tt := range tests {
		phase, kind := s.At(tt.r)
		if phase != tt.phase || kind != tt.kind {
			t.Errorf("At(%d) = (%d, %v), want (%d, %v)", tt.r, phase, kind, tt.phase, tt.kind)
		}
	}
}

func TestScheduleMerged(t *testing.T) {
	s := Schedule{Flag: model.FlagStar, Merged: true}
	if !s.IsMerged() {
		t.Fatal("IsMerged must be true")
	}
	if s.RoundsPerPhase() != 1 {
		t.Errorf("RoundsPerPhase = %d, want 1", s.RoundsPerPhase())
	}
	for r := model.Round(1); r <= 5; r++ {
		phase, kind := s.At(r)
		if phase != model.Phase(r) || kind != model.SelectionRound {
			t.Errorf("At(%d) = (%d, %v)", r, phase, kind)
		}
	}
	// Merged requires FLAG=*: a φ schedule ignores the flag.
	phi := Schedule{Flag: model.FlagPhase, Merged: true}
	if phi.IsMerged() {
		t.Error("merged must not apply to FLAG=φ")
	}
}

func TestScheduleFirstRoundOf(t *testing.T) {
	tests := []struct {
		name  string
		s     Schedule
		phase model.Phase
		want  model.Round
	}{
		{"phi p1", Schedule{Flag: model.FlagPhase}, 1, 1},
		{"phi p3", Schedule{Flag: model.FlagPhase}, 3, 7},
		{"star p2", Schedule{Flag: model.FlagStar}, 2, 3},
		{"merged p4", Schedule{Flag: model.FlagStar, Merged: true}, 4, 4},
		{"skip phi p1", Schedule{Flag: model.FlagPhase, SkipFirst: true}, 1, 1},
		{"skip phi p2", Schedule{Flag: model.FlagPhase, SkipFirst: true}, 2, 3},
		{"skip phi p3", Schedule{Flag: model.FlagPhase, SkipFirst: true}, 3, 6},
		{"skip star p2", Schedule{Flag: model.FlagStar, SkipFirst: true}, 2, 2},
		{"invalid phase", Schedule{Flag: model.FlagStar}, 0, 0},
	}
	for _, tt := range tests {
		if got := tt.s.FirstRoundOf(tt.phase); got != tt.want {
			t.Errorf("%s: FirstRoundOf(%d) = %d, want %d", tt.name, tt.phase, got, tt.want)
		}
	}
}

// FirstRoundOf and At must agree on every schedule shape.
func TestScheduleConsistency(t *testing.T) {
	shapes := []Schedule{
		{Flag: model.FlagPhase},
		{Flag: model.FlagStar},
		{Flag: model.FlagPhase, SkipFirst: true},
		{Flag: model.FlagStar, SkipFirst: true},
		{Flag: model.FlagStar, Merged: true},
	}
	for _, s := range shapes {
		for phase := model.Phase(1); phase <= 6; phase++ {
			r := s.FirstRoundOf(phase)
			gotPhase, gotKind := s.At(r)
			if gotPhase != phase {
				t.Errorf("%+v: At(FirstRoundOf(%d)) phase = %d", s, phase, gotPhase)
			}
			wantKind := model.SelectionRound
			if s.SkipFirst && phase == 1 {
				wantKind = model.ValidationRound
				if s.Flag == model.FlagStar {
					wantKind = model.DecisionRound
				}
			}
			if gotKind != wantKind {
				t.Errorf("%+v: At(FirstRoundOf(%d)) kind = %v, want %v", s, phase, gotKind, wantKind)
			}
		}
	}
}

func TestSelectionRounds(t *testing.T) {
	s := Schedule{Flag: model.FlagPhase}
	got := s.SelectionRounds(7)
	want := []model.Round{1, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("SelectionRounds(7) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelectionRounds(7) = %v, want %v", got, want)
		}
	}
}

func TestScheduleInvalidRound(t *testing.T) {
	s := Schedule{Flag: model.FlagPhase}
	phase, kind := s.At(0)
	if phase != 0 || kind != 0 {
		t.Errorf("At(0) = (%d, %v), want zero values", phase, kind)
	}
}
