package core

import (
	"math/rand"

	"genconsensus/internal/model"
)

// Chooser implements line 11 of Algorithm 1: when FLV returns "?", a value is
// chosen among the votes of the received vector. Deterministic choosers
// guarantee that processes with identical vectors (Pcons rounds) choose
// identically; the coin chooser implements the §6 randomized adaptation.
type Chooser interface {
	// Choose picks a value given the selection-round vector. ok is false
	// when no value can be chosen (e.g. no votes received).
	Choose(mu model.Received) (v model.Value, ok bool)
	// Name identifies the rule in traces.
	Name() string
}

// MinChooser picks the smallest vote in the vector: the default
// deterministic rule.
type MinChooser struct{}

// Choose implements Chooser.
func (MinChooser) Choose(mu model.Received) (model.Value, bool) { return mu.MinValue() }

// Name implements Chooser.
func (MinChooser) Name() string { return "choose/min" }

// MostOftenChooser picks the most frequent vote, ties broken by smallest
// value: the rule of the original OneThirdRule algorithm (Algorithm 5,
// line 8: "the smallest most often received value").
type MostOftenChooser struct{}

// Choose implements Chooser.
func (MostOftenChooser) Choose(mu model.Received) (model.Value, bool) {
	return mu.SmallestMostOften()
}

// Name implements Chooser.
func (MostOftenChooser) Name() string { return "choose/smallest-most-often" }

// CoinChooser implements the randomized adaptation of §6 for binary
// consensus: "select_p := 1 or 0 with probability 0.5". Each process owns an
// independent seeded source, making executions replayable.
type CoinChooser struct {
	rng  *rand.Rand
	zero model.Value
	one  model.Value
}

// NewCoinChooser returns a coin chooser over the two given values, seeded
// deterministically.
func NewCoinChooser(seed int64, zero, one model.Value) *CoinChooser {
	return &CoinChooser{rng: rand.New(rand.NewSource(seed)), zero: zero, one: one}
}

// Choose implements Chooser: a fair coin flip, ignoring the vector.
func (c *CoinChooser) Choose(model.Received) (model.Value, bool) {
	if c.rng.Intn(2) == 0 {
		return c.zero, true
	}
	return c.one, true
}

// Name implements Chooser.
func (c *CoinChooser) Name() string { return "choose/coin" }
