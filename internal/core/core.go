// Package core implements the generic consensus algorithm (Algorithm 1 of
// Rütti, Milosevic & Schiper, DSN 2010): a sequence of phases, each composed
// of a selection round, a validation round and a decision round, and
// parameterized by the functions FLV and Selector, the decision threshold TD
// and the flag FLAG.
//
// A core.Process is a pure state machine implementing round.Proc; it contains
// no goroutines and no clocks. Runtimes (internal/sim, internal/transport)
// drive it round by round.
package core

import (
	"errors"
	"fmt"
	"sort"

	"genconsensus/internal/flv"
	"genconsensus/internal/model"
	"genconsensus/internal/quorum"
	"genconsensus/internal/round"
	"genconsensus/internal/selector"
)

// Params are the parameters of the generic algorithm: the boxed items of
// Algorithm 1 plus the structural options of §3.1.
type Params struct {
	// N, B, F describe the system: n processes, at most b Byzantine, at
	// most f benign-faulty.
	N, B, F int
	// TD is the decision threshold (line 31).
	TD int
	// Flag selects which votes count in the decision round (FLAG).
	Flag model.Flag
	// FLV is the "find the locked value" function (line 9).
	FLV flv.Func
	// Selector is the validator-election function (lines 7 and 15).
	Selector selector.Selector
	// Chooser is the deterministic (or randomized, §6) choice of line 11.
	// Defaults to MinChooser.
	Chooser Chooser
	// UseHistory maintains history_p, includes it in selection messages
	// and enables the line-26 revert (class-3 algorithms).
	UseHistory bool
	// SkipFirstSelection suppresses the selection round of phase 1
	// (§3.1 optimization); select_p is initialized to init_p.
	SkipFirstSelection bool
	// Merged collapses each FLAG=* phase to a single round by overlapping
	// the decision round of phase φ with the selection round of phase
	// φ+1 (§3.2 optimization; the OneThirdRule shape).
	Merged bool
	// HistoryBound, when positive, prunes history entries older than
	// HistoryBound phases (the bounded variant of footnote 5 / [3]).
	// Zero keeps the history unbounded as in the paper.
	HistoryBound int
}

// Errors returned by Params.Validate.
var (
	ErrNoFLV          = errors.New("core: FLV function required")
	ErrNoSelector     = errors.New("core: Selector required")
	ErrBadFlag        = errors.New("core: FLAG must be * or φ")
	ErrBadTD          = errors.New("core: TD out of range")
	ErrMergedNeedStar = errors.New("core: merged rounds require FLAG = *")
	ErrHistoryNeedPhi = errors.New("core: history requires FLAG = φ")
	ErrEmptyInit      = errors.New("core: initial value must be non-empty")
	ErrSkipNeedsFixed = errors.New("core: SkipFirstSelection requires a fixed selector")
)

// Validate checks structural well-formedness. Resilience-level validation
// (Table 1 bounds) is the concern of quorum.Config and the public API.
func (p Params) Validate() error {
	if p.N <= 0 || p.B < 0 || p.F < 0 {
		return fmt.Errorf("core: bad system size n=%d b=%d f=%d", p.N, p.B, p.F)
	}
	if p.FLV == nil {
		return ErrNoFLV
	}
	if p.Selector == nil {
		return ErrNoSelector
	}
	if p.Flag != model.FlagStar && p.Flag != model.FlagPhase {
		return ErrBadFlag
	}
	if p.TD < 1 || p.TD > p.N {
		return fmt.Errorf("%w: TD=%d n=%d", ErrBadTD, p.TD, p.N)
	}
	if p.Merged && p.Flag != model.FlagStar {
		return ErrMergedNeedStar
	}
	if p.UseHistory && p.Flag != model.FlagPhase {
		return ErrHistoryNeedPhi
	}
	if p.SkipFirstSelection && !p.Selector.Fixed() {
		return ErrSkipNeedsFixed
	}
	return nil
}

// Schedule returns the round schedule induced by the parameters.
func (p Params) Schedule() Schedule {
	return Schedule{Flag: p.Flag, SkipFirst: p.SkipFirstSelection, Merged: p.Merged}
}

// Process is an honest process executing Algorithm 1.
type Process struct {
	id     model.PID
	params Params
	sched  Schedule

	// Algorithm 1 state (lines 2-4).
	vote    model.Value
	ts      model.Phase
	history model.History

	// Per-phase transients.
	selectVal  model.Value // select_p; NoValue encodes "null"
	validators []model.PID // validators_p

	decided   bool
	decision  model.Value
	decidedAt model.Round
}

var _ round.Proc = (*Process)(nil)

// NewProcess returns an honest process with the given initial value.
func NewProcess(id model.PID, init model.Value, params Params) (*Process, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if init == model.NoValue {
		return nil, ErrEmptyInit
	}
	if params.Chooser == nil {
		params.Chooser = MinChooser{}
	}
	p := &Process{
		id:     id,
		params: params,
		sched:  params.Schedule(),
		vote:   init,
		ts:     0,
	}
	if params.UseHistory {
		p.history = model.NewHistory(init)
	}
	if params.SkipFirstSelection {
		// §3.1: initialize select_p with init_p and validators_p with
		// the (necessarily fixed) selector set of phase 1.
		p.selectVal = init
		p.validators = params.Selector.Select(id, 1)
	}
	return p, nil
}

// ID implements round.Proc.
func (p *Process) ID() model.PID { return p.id }

// Decided implements round.Proc.
func (p *Process) Decided() (model.Value, bool) { return p.decision, p.decided }

// DecidedAt returns the round in which the process decided (0 if undecided).
func (p *Process) DecidedAt() model.Round { return p.decidedAt }

// Vote exposes vote_p for tests and traces.
func (p *Process) Vote() model.Value { return p.vote }

// TS exposes ts_p for tests and traces.
func (p *Process) TS() model.Phase { return p.ts }

// History exposes a copy of history_p for tests and traces.
func (p *Process) History() model.History { return p.history.Clone() }

// Send implements round.Proc (the S_p^r functions of Algorithm 1).
func (p *Process) Send(r model.Round) map[model.PID]model.Message {
	phase, kind := p.sched.At(r)
	switch kind {
	case model.SelectionRound:
		return p.sendSelection(phase)
	case model.ValidationRound:
		return p.sendValidation()
	case model.DecisionRound:
		return p.sendDecision(phase)
	default:
		return nil
	}
}

// sendSelection implements line 7: send ⟨vote, ts, history, S⟩ to S. In
// merged mode the same message also serves as the decision-round vote.
func (p *Process) sendSelection(phase model.Phase) map[model.PID]model.Message {
	dests := p.params.Selector.Select(p.id, phase)
	if p.sched.IsMerged() {
		dests = model.AllPIDs(p.params.N)
	}
	msg := model.Message{Kind: model.SelectionRound, Vote: p.vote}
	if p.params.Flag == model.FlagPhase {
		msg.TS = p.ts
	}
	if p.params.UseHistory {
		msg.History = p.history.Clone()
	}
	if !p.params.Selector.Fixed() {
		msg.Sel = append([]model.PID(nil), dests...)
	}
	return round.Broadcast(msg, dests)
}

// sendValidation implements line 18-19: validators send ⟨select, validators⟩
// to all.
func (p *Process) sendValidation() map[model.PID]model.Message {
	if !model.PIDSetContains(p.validators, p.id) {
		return nil
	}
	msg := model.Message{Kind: model.ValidationRound, Vote: p.selectVal}
	if !p.params.Selector.Fixed() {
		msg.Sel = append([]model.PID(nil), p.validators...)
	}
	return round.Broadcast(msg, model.AllPIDs(p.params.N))
}

// sendDecision implements line 29: send ⟨vote, ts⟩ to all.
func (p *Process) sendDecision(model.Phase) map[model.PID]model.Message {
	msg := model.Message{Kind: model.DecisionRound, Vote: p.vote}
	if p.params.Flag == model.FlagPhase {
		msg.TS = p.ts
	}
	return round.Broadcast(msg, model.AllPIDs(p.params.N))
}

// Transition implements round.Proc (the T_p^r functions of Algorithm 1).
func (p *Process) Transition(r model.Round, mu model.Received) {
	phase, kind := p.sched.At(r)
	switch kind {
	case model.SelectionRound:
		if p.sched.IsMerged() {
			// §3.2 optimization: the decision round of phase φ-1
			// overlaps the selection round of phase φ; both read
			// the same vector.
			p.checkDecision(r, phase, mu)
		}
		p.transitionSelection(phase, mu)
	case model.ValidationRound:
		p.transitionValidation(phase, mu)
	case model.DecisionRound:
		p.checkDecision(r, phase, mu)
	}
}

// transitionSelection implements lines 9-15.
func (p *Process) transitionSelection(phase model.Phase, mu model.Received) {
	res := p.params.FLV.Eval(mu, phase)
	p.selectVal = model.NoValue
	switch res.Out {
	case flv.Locked:
		p.selectVal = res.Val
	case flv.Any:
		if v, ok := p.params.Chooser.Choose(mu); ok {
			p.selectVal = v
		}
	case flv.None:
		// select_p stays null.
	}
	if p.selectVal != model.NoValue {
		p.vote = p.selectVal
		if p.params.UseHistory {
			p.history = p.history.Add(p.selectVal, phase)
			if bound := p.params.HistoryBound; bound > 0 && phase > model.Phase(bound) {
				p.history = p.history.Prune(phase - model.Phase(bound))
			}
		}
	}
	// Line 15: elect the validators for the validation round.
	if p.params.Selector.Fixed() {
		p.validators = p.params.Selector.Select(p.id, phase)
		return
	}
	p.validators = selFromCounts(mu, func(count int) bool {
		return quorum.MoreThanHalf(count, p.params.N+p.params.B)
	})
}

// transitionValidation implements lines 21-26.
func (p *Process) transitionValidation(phase model.Phase, mu model.Received) {
	// Line 21 (suppressed under the fixed-selector optimization of §3.1).
	if p.params.Selector.Fixed() {
		p.validators = p.params.Selector.Select(p.id, phase)
	} else {
		p.validators = selFromCounts(mu, func(count int) bool {
			return count >= p.params.B+1
		})
	}
	// Line 22: a value validated by a strict majority of validators
	// (counting at most b Byzantine among them).
	counts := make(map[model.Value]int)
	for _, q := range p.validators {
		m, ok := mu[q]
		if !ok || m.Vote == model.NoValue {
			continue
		}
		counts[m.Vote]++
	}
	for _, v := range sortedVoteKeys(counts) {
		if quorum.MoreThanHalf(counts[v], len(p.validators)+p.params.B) {
			p.vote = v
			p.ts = phase
			return
		}
	}
	// Line 26: revert vote_p to the value matching ts_p. Requires the
	// history variable (class 3); class-2 algorithms keep the selected
	// vote (footnote 7: the revert is not mandatory).
	if p.params.UseHistory {
		if v, ok := p.history.ValueAt(p.ts); ok {
			p.vote = v
		}
	}
}

// checkDecision implements lines 31-32.
func (p *Process) checkDecision(r model.Round, phase model.Phase, mu model.Received) {
	counts := make(map[model.Value]int)
	for _, m := range mu {
		if m.Vote == model.NoValue {
			continue
		}
		if p.params.Flag == model.FlagPhase && m.TS != phase {
			continue
		}
		counts[m.Vote]++
	}
	for _, v := range sortedVoteKeys(counts) {
		if counts[v] >= p.params.TD {
			if !p.decided {
				p.decided = true
				p.decision = v
				p.decidedAt = r
			}
			return
		}
	}
}

// selFromCounts groups the Sel fields of a vector by canonical key and
// returns the set whose multiplicity satisfies enough, or nil. With at most
// b Byzantine senders the thresholds of lines 15 and 21 admit at most one
// such set (Lemma 3); keys are scanned in sorted order anyway so the result
// is deterministic even on adversarial input.
func selFromCounts(mu model.Received, enough func(int) bool) []model.PID {
	counts := make(map[string]int)
	sets := make(map[string][]model.PID)
	for _, m := range mu {
		if len(m.Sel) == 0 {
			continue
		}
		k := m.SelKey()
		counts[k]++
		if _, ok := sets[k]; !ok {
			sets[k] = append([]model.PID(nil), m.Sel...)
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if enough(counts[k]) {
			return sets[k]
		}
	}
	return nil
}

// sortedVoteKeys returns the map keys in ascending order for deterministic
// iteration.
func sortedVoteKeys(counts map[model.Value]int) []model.Value {
	out := make([]model.Value, 0, len(counts))
	for v := range counts {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
