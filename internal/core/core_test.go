package core

import (
	"errors"
	"testing"

	"genconsensus/internal/flv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
)

const (
	v1 = model.Value("v1")
	v2 = model.Value("v2")
)

// pbftParams returns a minimal PBFT-shaped parameterization: n=4, b=1,
// TD=3, FLAG=φ, class-3 FLV, whole-Π selector, history enabled.
func pbftParams() Params {
	return Params{
		N: 4, B: 1, F: 0, TD: 3,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(4, 1),
		Selector:   selector.NewAll(4),
		UseHistory: true,
	}
}

// otrParams returns a OneThirdRule-shaped parameterization: n=4, f=1,
// TD=3, FLAG=*, class-1 FLV, merged rounds.
func otrParams() Params {
	return Params{
		N: 4, B: 0, F: 1, TD: 3,
		Flag:     model.FlagStar,
		FLV:      flv.NewClass1(4, 3, 0),
		Selector: selector.NewAll(4),
		Chooser:  MostOftenChooser{},
		Merged:   true,
	}
}

func mustProcess(t *testing.T, id model.PID, init model.Value, p Params) *Process {
	t.Helper()
	proc, err := NewProcess(id, init, p)
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	return proc
}

func TestParamsValidate(t *testing.T) {
	valid := pbftParams()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr error
	}{
		{"missing FLV", func(p *Params) { p.FLV = nil }, ErrNoFLV},
		{"missing selector", func(p *Params) { p.Selector = nil }, ErrNoSelector},
		{"bad flag", func(p *Params) { p.Flag = 0 }, ErrBadFlag},
		{"TD zero", func(p *Params) { p.TD = 0 }, ErrBadTD},
		{"TD above n", func(p *Params) { p.TD = 5 }, ErrBadTD},
		{"merged with φ", func(p *Params) { p.Merged = true }, ErrMergedNeedStar},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := pbftParams()
			tt.mutate(&p)
			if err := p.Validate(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
	t.Run("history with *", func(t *testing.T) {
		p := otrParams()
		p.UseHistory = true
		if err := p.Validate(); !errors.Is(err, ErrHistoryNeedPhi) {
			t.Fatalf("Validate = %v, want %v", err, ErrHistoryNeedPhi)
		}
	})
	t.Run("negative n", func(t *testing.T) {
		p := pbftParams()
		p.N = -1
		if err := p.Validate(); err == nil {
			t.Fatal("negative n accepted")
		}
	})
}

func TestNewProcessRejectsEmptyInit(t *testing.T) {
	if _, err := NewProcess(0, model.NoValue, pbftParams()); !errors.Is(err, ErrEmptyInit) {
		t.Fatalf("err = %v, want ErrEmptyInit", err)
	}
}

func TestNewProcessInitialState(t *testing.T) {
	p := mustProcess(t, 2, v1, pbftParams())
	if p.ID() != 2 {
		t.Errorf("ID = %d", p.ID())
	}
	if p.Vote() != v1 {
		t.Errorf("vote = %q, want init", p.Vote())
	}
	if p.TS() != 0 {
		t.Errorf("ts = %d, want 0", p.TS())
	}
	if !p.History().Contains(v1, 0) {
		t.Error("history must start as {(init, 0)}")
	}
	if _, decided := p.Decided(); decided {
		t.Error("fresh process reports decided")
	}
}

func TestSelectionSendShape(t *testing.T) {
	p := mustProcess(t, 0, v1, pbftParams())
	out := p.Send(1) // round 1 = selection of phase 1
	if len(out) != 4 {
		t.Fatalf("selection send to %d dests, want 4 (Π)", len(out))
	}
	msg := out[1]
	if msg.Kind != model.SelectionRound || msg.Vote != v1 || msg.TS != 0 {
		t.Errorf("selection message = %v", msg)
	}
	if !msg.History.Contains(v1, 0) {
		t.Error("selection message must carry history")
	}
	if msg.Sel != nil {
		t.Error("fixed selector: Sel must be omitted (§3.1 optimization)")
	}
}

func TestSelectionSendOmitsTSForStar(t *testing.T) {
	p := mustProcess(t, 0, v1, Params{
		N: 4, B: 0, F: 1, TD: 3,
		Flag: model.FlagStar, FLV: flv.NewClass1(4, 3, 0), Selector: selector.NewAll(4),
	})
	msg := p.Send(1)[0]
	if msg.TS != 0 || msg.History != nil {
		t.Errorf("FLAG=* selection message carries ts/history: %v", msg)
	}
}

// Selection transition: FLV returns ? on a fresh system, the chooser picks
// the minimum, vote and history are updated (lines 10-14).
func TestSelectionTransitionChoosesAndLogs(t *testing.T) {
	p := mustProcess(t, 0, "z", pbftParams())
	mu := model.Received{
		0: {Kind: model.SelectionRound, Vote: "z", TS: 0, History: model.NewHistory("z")},
		1: {Kind: model.SelectionRound, Vote: "a", TS: 0, History: model.NewHistory("a")},
		2: {Kind: model.SelectionRound, Vote: "m", TS: 0, History: model.NewHistory("m")},
		3: {Kind: model.SelectionRound, Vote: "a", TS: 0, History: model.NewHistory("a")},
	}
	p.Transition(1, mu)
	if p.Vote() != "a" {
		t.Errorf("vote = %q, want chooser minimum \"a\"", p.Vote())
	}
	if !p.History().Contains("a", 1) {
		t.Errorf("history %v must log (a, 1)", p.History())
	}
}

// Selection transition with an insufficient vector: FLV returns null, state
// is unchanged (lines 12-14 skipped).
func TestSelectionTransitionNull(t *testing.T) {
	p := mustProcess(t, 0, v1, pbftParams())
	mu := model.Received{
		0: {Kind: model.SelectionRound, Vote: v2, TS: 2},
	}
	p.Transition(1, mu)
	if p.Vote() != v1 {
		t.Errorf("vote = %q, want unchanged init", p.Vote())
	}
	if len(p.History()) != 1 {
		t.Errorf("history grew on null selection: %v", p.History())
	}
}

// Validation round: a majority of validators announcing v sets vote := v and
// ts := φ (lines 22-24).
func TestValidationTransitionValidates(t *testing.T) {
	p := mustProcess(t, 0, v1, pbftParams())
	mu := model.Received{
		0: {Kind: model.ValidationRound, Vote: v2},
		1: {Kind: model.ValidationRound, Vote: v2},
		2: {Kind: model.ValidationRound, Vote: v2},
		3: {Kind: model.ValidationRound, Vote: v1},
	}
	p.Transition(2, mu) // round 2 = validation of phase 1
	if p.Vote() != v2 {
		t.Errorf("vote = %q, want validated v2", p.Vote())
	}
	if p.TS() != 1 {
		t.Errorf("ts = %d, want 1", p.TS())
	}
}

// Validation round without a majority: the vote reverts to the history value
// matching ts (line 26).
func TestValidationTransitionReverts(t *testing.T) {
	p := mustProcess(t, 0, v1, pbftParams())
	// Selection of phase 1 moved the vote to v2.
	mu := model.Received{
		0: {Kind: model.SelectionRound, Vote: v2, TS: 0, History: model.NewHistory(v2)},
		1: {Kind: model.SelectionRound, Vote: v2, TS: 0, History: model.NewHistory(v2)},
		2: {Kind: model.SelectionRound, Vote: v2, TS: 0, History: model.NewHistory(v2)},
		3: {Kind: model.SelectionRound, Vote: v2, TS: 0, History: model.NewHistory(v2)},
	}
	p.Transition(1, mu)
	if p.Vote() != v2 {
		t.Fatalf("selection did not adopt v2 (vote=%q)", p.Vote())
	}
	// Validation: split announcements, no majority.
	p.Transition(2, model.Received{
		0: {Kind: model.ValidationRound, Vote: v2},
		1: {Kind: model.ValidationRound, Vote: v1},
	})
	if p.Vote() != v1 {
		t.Errorf("vote = %q, want revert to v1 (ts=0 history value)", p.Vote())
	}
	if p.TS() != 0 {
		t.Errorf("ts = %d, want unchanged 0", p.TS())
	}
}

// Without history (class 2) the failed validation keeps the selected vote
// (footnote 7: line 26 is optional).
func TestValidationNoRevertWithoutHistory(t *testing.T) {
	params := Params{
		N: 5, B: 1, F: 0, TD: 4,
		Flag:     model.FlagPhase,
		FLV:      flv.NewClass2(5, 4, 1),
		Selector: selector.NewAll(5),
	}
	p := mustProcess(t, 0, v1, params)
	mu := model.Received{}
	for i := 0; i < 5; i++ {
		mu[model.PID(i)] = model.Message{Kind: model.SelectionRound, Vote: v2, TS: 0}
	}
	p.Transition(1, mu)
	if p.Vote() != v2 {
		t.Fatalf("selection did not adopt v2")
	}
	p.Transition(2, model.Received{}) // empty validation round
	if p.Vote() != v2 {
		t.Errorf("vote = %q, want v2 kept (no revert without history)", p.Vote())
	}
}

// Decision round with FLAG=φ: only votes timestamped with the current phase
// count (line 31).
func TestDecisionFlagPhase(t *testing.T) {
	p := mustProcess(t, 0, v1, pbftParams())
	// TD=3 votes for v2 but stale timestamps: no decision.
	stale := model.Received{
		0: {Kind: model.DecisionRound, Vote: v2, TS: 0},
		1: {Kind: model.DecisionRound, Vote: v2, TS: 0},
		2: {Kind: model.DecisionRound, Vote: v2, TS: 0},
	}
	p.Transition(3, stale) // round 3 = decision of phase 1
	if _, decided := p.Decided(); decided {
		t.Fatal("decided on stale timestamps with FLAG=φ")
	}
	// Current-phase timestamps: decide. Phase 2's decision round is 6.
	fresh := model.Received{
		0: {Kind: model.DecisionRound, Vote: v2, TS: 2},
		1: {Kind: model.DecisionRound, Vote: v2, TS: 2},
		2: {Kind: model.DecisionRound, Vote: v2, TS: 2},
	}
	p.Transition(6, fresh)
	v, decided := p.Decided()
	if !decided || v != v2 {
		t.Fatalf("Decided = (%q, %v), want (v2, true)", v, decided)
	}
	if p.DecidedAt() != 6 {
		t.Errorf("DecidedAt = %d, want 6", p.DecidedAt())
	}
}

// Decision round with FLAG=*: all votes count regardless of timestamp.
func TestDecisionFlagStar(t *testing.T) {
	params := Params{
		N: 4, B: 0, F: 1, TD: 3,
		Flag: model.FlagStar, FLV: flv.NewClass1(4, 3, 0), Selector: selector.NewAll(4),
	}
	p := mustProcess(t, 0, v1, params)
	mu := model.Received{
		0: {Kind: model.DecisionRound, Vote: v2, TS: 0},
		1: {Kind: model.DecisionRound, Vote: v2, TS: 0},
		2: {Kind: model.DecisionRound, Vote: v2, TS: 0},
	}
	p.Transition(2, mu) // round 2 = decision of phase 1 under FLAG=*
	v, decided := p.Decided()
	if !decided || v != v2 {
		t.Fatalf("Decided = (%q, %v), want (v2, true)", v, decided)
	}
}

// A second qualifying decision does not overwrite the first.
func TestDecisionIsSticky(t *testing.T) {
	params := Params{
		N: 4, B: 0, F: 1, TD: 3,
		Flag: model.FlagStar, FLV: flv.NewClass1(4, 3, 0), Selector: selector.NewAll(4),
	}
	p := mustProcess(t, 0, v1, params)
	decide := func(v model.Value, r model.Round) {
		mu := model.Received{}
		for i := 0; i < 3; i++ {
			mu[model.PID(i)] = model.Message{Kind: model.DecisionRound, Vote: v}
		}
		p.Transition(r, mu)
	}
	decide(v1, 2)
	decide(v2, 4)
	v, _ := p.Decided()
	if v != v1 {
		t.Errorf("decision overwritten: %q", v)
	}
	if p.DecidedAt() != 2 {
		t.Errorf("DecidedAt = %d, want 2", p.DecidedAt())
	}
}

// Validation-round sender: only members of validators_p send (line 18).
func TestValidationSendOnlyValidators(t *testing.T) {
	params := Params{
		N: 3, B: 0, F: 1, TD: 2,
		Flag:     model.FlagPhase,
		FLV:      flv.NewPaxos(3),
		Selector: selector.NewStableLeader(1),
	}
	follower := mustProcess(t, 0, v1, params)
	leader := mustProcess(t, 1, v1, params)
	// Run the selection transition so validators_p is computed.
	mu := model.Received{
		0: {Kind: model.SelectionRound, Vote: v1, TS: 0},
		1: {Kind: model.SelectionRound, Vote: v2, TS: 0},
		2: {Kind: model.SelectionRound, Vote: v1, TS: 0},
	}
	follower.Transition(1, mu)
	leader.Transition(1, mu)
	if out := follower.Send(2); out != nil {
		t.Errorf("non-validator sent validation messages: %v", out)
	}
	out := leader.Send(2)
	if len(out) != 3 {
		t.Fatalf("leader validation send to %d dests, want all 3", len(out))
	}
	if out[0].Kind != model.ValidationRound {
		t.Errorf("kind = %v", out[0].Kind)
	}
}

// Merged OTR-style execution: a unanimous system decides in a single round.
func TestMergedDecidesInOneRound(t *testing.T) {
	p := mustProcess(t, 0, v1, otrParams())
	mu := model.Received{}
	for i := 0; i < 4; i++ {
		mu[model.PID(i)] = model.Message{Kind: model.SelectionRound, Vote: v1}
	}
	p.Transition(1, mu)
	v, decided := p.Decided()
	if !decided || v != v1 {
		t.Fatalf("Decided = (%q, %v), want (v1, true)", v, decided)
	}
}

// SkipFirstSelection: round 1 is the validation round and select_p is the
// initial value, so a unanimous leader-validated phase-1 decision works.
func TestSkipFirstSelection(t *testing.T) {
	params := pbftParams()
	params.SkipFirstSelection = true
	p := mustProcess(t, 0, v1, params)
	// Round 1 is now validation: all four validators announce init v1.
	mu := model.Received{}
	for i := 0; i < 4; i++ {
		mu[model.PID(i)] = model.Message{Kind: model.ValidationRound, Vote: v1}
	}
	p.Transition(1, mu)
	if p.TS() != 1 || p.Vote() != v1 {
		t.Fatalf("validation failed: vote=%q ts=%d", p.Vote(), p.TS())
	}
	// Round 2 is the decision round of phase 1.
	dec := model.Received{}
	for i := 0; i < 3; i++ {
		dec[model.PID(i)] = model.Message{Kind: model.DecisionRound, Vote: v1, TS: 1}
	}
	p.Transition(2, dec)
	if _, decided := p.Decided(); !decided {
		t.Fatal("no decision after phase 1 with skip-first optimization")
	}
	// A validator must send its init as select_p in round 1.
	p2 := mustProcess(t, 1, v2, params)
	out := p2.Send(1)
	if len(out) == 0 || out[0].Vote != v2 {
		t.Errorf("skip-first validator round-1 send = %v, want init vote", out)
	}
}

// Non-fixed selectors transmit the proposed set and lines 15/21 reconstruct
// validators from counts.
type perProcessSelector struct{ n int }

func (s perProcessSelector) Select(p model.PID, _ model.Phase) []model.PID {
	return model.AllPIDs(s.n)
}
func (s perProcessSelector) Fixed() bool  { return false }
func (s perProcessSelector) Name() string { return "selector/test-nonfixed" }

func TestNonFixedSelectorFlow(t *testing.T) {
	params := Params{
		N: 4, B: 1, F: 0, TD: 3,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(4, 1),
		Selector:   perProcessSelector{n: 4},
		UseHistory: true,
	}
	p := mustProcess(t, 0, v1, params)
	// Selection send must now include the proposed set.
	out := p.Send(1)
	if got := out[0].Sel; model.PIDSetKey(got) != "0,1,2,3" {
		t.Fatalf("selection Sel = %v", got)
	}
	// Line 15: > (n+b)/2 = 2.5 matching proposals elect the validators.
	mu := model.Received{}
	for i := 0; i < 3; i++ {
		mu[model.PID(i)] = model.Message{
			Kind: model.SelectionRound, Vote: v1, Sel: model.AllPIDs(4),
			History: model.NewHistory(v1),
		}
	}
	p.Transition(1, mu)
	if model.PIDSetKey(p.validators) != "0,1,2,3" {
		t.Fatalf("validators after line 15 = %v", p.validators)
	}
	// Line 21: b+1 = 2 validation messages with the set reconstruct it.
	p2 := mustProcess(t, 1, v1, params)
	p2.Transition(2, model.Received{
		0: {Kind: model.ValidationRound, Vote: v1, Sel: model.AllPIDs(4)},
		1: {Kind: model.ValidationRound, Vote: v1, Sel: model.AllPIDs(4)},
	})
	if model.PIDSetKey(p2.validators) != "0,1,2,3" {
		t.Fatalf("validators after line 21 = %v", p2.validators)
	}
	// With fewer than b+1 copies the set is ∅.
	p3 := mustProcess(t, 2, v1, params)
	p3.Transition(2, model.Received{
		0: {Kind: model.ValidationRound, Vote: v1, Sel: model.AllPIDs(4)},
	})
	if len(p3.validators) != 0 {
		t.Fatalf("validators from a single proposal = %v, want empty", p3.validators)
	}
}

// HistoryBound prunes old entries.
func TestHistoryBound(t *testing.T) {
	params := pbftParams()
	params.HistoryBound = 2
	p := mustProcess(t, 0, v1, params)
	for phase := 1; phase <= 5; phase++ {
		mu := model.Received{}
		for i := 0; i < 4; i++ {
			mu[model.PID(i)] = model.Message{
				Kind: model.SelectionRound, Vote: v2, TS: 0,
				History: model.NewHistory(v2),
			}
		}
		p.Transition(model.Round(3*phase-2), mu)
	}
	h := p.History()
	for _, e := range h {
		if e.Phase < 3 {
			t.Errorf("entry (%s,%d) survived pruning with bound 2: %v", e.Val, e.Phase, h)
		}
	}
}

func TestChoosers(t *testing.T) {
	mu := model.Received{
		0: {Vote: "b"}, 1: {Vote: "b"}, 2: {Vote: "a"},
	}
	if v, ok := (MinChooser{}).Choose(mu); !ok || v != "a" {
		t.Errorf("MinChooser = (%q, %v)", v, ok)
	}
	if v, ok := (MostOftenChooser{}).Choose(mu); !ok || v != "b" {
		t.Errorf("MostOftenChooser = (%q, %v)", v, ok)
	}
	coin := NewCoinChooser(42, "0", "1")
	seen := map[model.Value]int{}
	for i := 0; i < 100; i++ {
		v, ok := coin.Choose(nil)
		if !ok {
			t.Fatal("coin chooser must always choose")
		}
		seen[v]++
	}
	if seen["0"] == 0 || seen["1"] == 0 {
		t.Errorf("coin is not fair over 100 flips: %v", seen)
	}
	// Same seed replays the same flips.
	c1, c2 := NewCoinChooser(7, "0", "1"), NewCoinChooser(7, "0", "1")
	for i := 0; i < 50; i++ {
		a, _ := c1.Choose(nil)
		b, _ := c2.Choose(nil)
		if a != b {
			t.Fatal("coin chooser is not seed-deterministic")
		}
	}
	if (MinChooser{}).Name() == "" || (MostOftenChooser{}).Name() == "" || coin.Name() == "" {
		t.Error("chooser names must be non-empty")
	}
}
