package core

import (
	"errors"
	"testing"

	"genconsensus/internal/flv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
)

// Decision-round sends: ⟨vote, ts⟩ to all, with TS omitted under FLAG=*.
func TestDecisionSend(t *testing.T) {
	p := mustProcess(t, 0, v1, pbftParams())
	// Validate v2 in phase 1 so vote/ts are non-trivial.
	mu := model.Received{}
	for i := 0; i < 4; i++ {
		mu[model.PID(i)] = model.Message{Kind: model.ValidationRound, Vote: v2}
	}
	p.Transition(2, mu)
	out := p.Send(3) // decision round of phase 1
	if len(out) != 4 {
		t.Fatalf("decision send to %d dests, want all 4", len(out))
	}
	msg := out[2]
	if msg.Kind != model.DecisionRound || msg.Vote != v2 || msg.TS != 1 {
		t.Fatalf("decision message = %v, want ⟨v2, 1⟩", msg)
	}
	if msg.History != nil || msg.Sel != nil {
		t.Error("decision message must not carry history or selector sets")
	}

	// FLAG=*: the ts field stays zero.
	star := mustProcess(t, 0, v1, Params{
		N: 4, B: 0, F: 1, TD: 3,
		Flag: model.FlagStar, FLV: flv.NewClass1(4, 3, 0), Selector: selector.NewAll(4),
	})
	msg = star.Send(2)[0] // decision round under the 2-round schedule
	if msg.Kind != model.DecisionRound || msg.TS != 0 {
		t.Fatalf("FLAG=* decision message = %v", msg)
	}
}

// A validator whose selection produced null announces ⟨⊥⟩, and receivers do
// not count it toward any value at line 22.
func TestValidationSendNullSelect(t *testing.T) {
	params := pbftParams()
	p := mustProcess(t, 0, v1, params)
	// Empty selection vector: FLV → null; p is still a validator (Π).
	p.Transition(1, model.Received{})
	out := p.Send(2)
	if len(out) != 4 {
		t.Fatalf("validator with null select must still send (got %d dests)", len(out))
	}
	if out[0].Vote != model.NoValue {
		t.Fatalf("announced %q, want ⊥", out[0].Vote)
	}
	// Receiver side: four ⟨⊥⟩ announcements validate nothing.
	q := mustProcess(t, 1, v1, params)
	mu := model.Received{}
	for i := 0; i < 4; i++ {
		mu[model.PID(i)] = model.Message{Kind: model.ValidationRound, Vote: model.NoValue}
	}
	q.Transition(2, mu)
	if q.TS() != 0 {
		t.Fatalf("ts = %d after all-null validation, want 0", q.TS())
	}
	if q.Vote() != v1 {
		t.Fatalf("vote = %q after all-null validation, want unchanged", q.Vote())
	}
}

// Out-of-range rounds produce no sends and no transitions.
func TestSendInvalidRound(t *testing.T) {
	p := mustProcess(t, 0, v1, pbftParams())
	if out := p.Send(0); out != nil {
		t.Errorf("Send(0) = %v, want nil", out)
	}
	p.Transition(0, model.Received{}) // must not panic or mutate
	if p.Vote() != v1 || p.TS() != 0 {
		t.Error("Transition(0) mutated state")
	}
}

// Decision ties: when two values qualify simultaneously (possible only in
// adversarial below-bound configurations), the smallest wins at every
// process — determinism keeps the outcome auditable.
func TestDecisionTieBreak(t *testing.T) {
	params := Params{
		N: 6, B: 0, F: 1, TD: 3, // deliberately low TD: 2·TD ≤ n
		Flag: model.FlagStar, FLV: flv.NewClass1(6, 3, 0), Selector: selector.NewAll(6),
	}
	p := mustProcess(t, 0, v1, params)
	mu := model.Received{
		0: {Vote: "b"}, 1: {Vote: "b"}, 2: {Vote: "b"},
		3: {Vote: "a"}, 4: {Vote: "a"}, 5: {Vote: "a"},
	}
	p.Transition(2, mu)
	v, ok := p.Decided()
	if !ok || v != "a" {
		t.Fatalf("Decided = (%q, %v), want deterministic smallest \"a\"", v, ok)
	}
}

// Validate error cases not covered elsewhere: skip-first with a non-fixed
// selector.
func TestValidateSkipFirstNeedsFixed(t *testing.T) {
	p := pbftParams()
	p.Selector = perProcessSelector{n: 4}
	p.SkipFirstSelection = true
	if err := p.Validate(); !errors.Is(err, ErrSkipNeedsFixed) {
		t.Fatalf("Validate = %v, want ErrSkipNeedsFixed", err)
	}
}

// selFromCounts ignores messages without Sel fields and returns nil when no
// set reaches the threshold.
func TestSelFromCounts(t *testing.T) {
	mu := model.Received{
		0: {Sel: []model.PID{0, 1}},
		1: {Sel: []model.PID{0, 1}},
		2: {}, // no proposal
		3: {Sel: []model.PID{2, 3}},
	}
	got := selFromCounts(mu, func(c int) bool { return c >= 2 })
	if model.PIDSetKey(got) != "0,1" {
		t.Fatalf("selFromCounts = %v, want {0,1}", got)
	}
	if got := selFromCounts(mu, func(c int) bool { return c >= 3 }); got != nil {
		t.Fatalf("selFromCounts = %v, want nil below threshold", got)
	}
	if got := selFromCounts(model.Received{}, func(int) bool { return true }); got != nil {
		t.Fatalf("selFromCounts on empty vector = %v", got)
	}
}

// sortedVoteKeys is deterministic and complete.
func TestSortedVoteKeys(t *testing.T) {
	counts := map[model.Value]int{"c": 1, "a": 2, "b": 3}
	keys := sortedVoteKeys(counts)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("sortedVoteKeys = %v", keys)
	}
	if len(sortedVoteKeys(nil)) != 0 {
		t.Error("nil map must yield empty keys")
	}
}
