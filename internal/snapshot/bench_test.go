package snapshot_test

import (
	"fmt"
	"math/rand"
	"testing"

	"genconsensus/internal/kv"
	"genconsensus/internal/snapshot"
)

// benchStates builds the acceptance workload: a 10k-key store's state
// before and after a 1% mutation wave.
func benchStates(b *testing.B) (base, next *snapshot.Snapshot) {
	b.Helper()
	store := kv.NewStore()
	rng := rand.New(rand.NewSource(5))
	const keys = 10_000
	for i := 0; i < keys; i++ {
		store.Apply(kv.Command(fmt.Sprintf("seed-%d", i), "SET",
			fmt.Sprintf("key-%06d", i), fmt.Sprintf("value-%06d-%d", i, rng.Int63())))
	}
	base = &snapshot.Snapshot{LastInstance: 1, LogIndex: keys, State: store.SnapshotState()}
	for i := 0; i < keys/100; i++ {
		store.Apply(kv.Command(fmt.Sprintf("mut-%d", i), "SET",
			fmt.Sprintf("key-%06d", rng.Intn(keys)), fmt.Sprintf("mutated-%d", rng.Int63())))
	}
	next = &snapshot.Snapshot{LastInstance: 2, LogIndex: keys + keys/100, State: store.SnapshotState()}
	return base, next
}

// BenchmarkIncrementalSnapshot compares checkpoint encodings on the
// 10k-key / 1% mutation workload: "full" re-encodes the whole state every
// interval (the pre-incremental behaviour), "delta" encodes only the
// change against the previous checkpoint. snap-bytes reports the encoded
// checkpoint size each mode writes (and transfers) per interval.
func BenchmarkIncrementalSnapshot(b *testing.B) {
	base, next := benchStates(b)
	b.Run("full", func(b *testing.B) {
		enc := &snapshot.IncrementalEncoder{FullEvery: 1}
		var out int
		for i := 0; i < b.N; i++ {
			ck := enc.Encode(next)
			out = len(snapshot.EncodeCheckpoint(ck))
		}
		b.ReportMetric(float64(out), "snap-bytes")
	})
	b.Run("delta", func(b *testing.B) {
		var out int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			enc := &snapshot.IncrementalEncoder{FullEvery: 1 << 30}
			enc.Encode(base)
			b.StartTimer()
			ck := enc.Encode(next)
			out = len(snapshot.EncodeCheckpoint(ck))
		}
		b.ReportMetric(float64(out), "snap-bytes")
	})
}
