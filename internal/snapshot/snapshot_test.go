package snapshot

import (
	"bytes"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []*Snapshot{
		{LastInstance: 0, LogIndex: 0, State: nil},
		{LastInstance: 7, LogIndex: 42, State: []byte("hello")},
		{LastInstance: 1 << 40, LogIndex: 1 << 33, State: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for i, want := range cases {
		got, err := Decode(Encode(want))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.LastInstance != want.LastInstance || got.LogIndex != want.LogIndex {
			t.Fatalf("case %d: meta %d/%d, want %d/%d",
				i, got.LastInstance, got.LogIndex, want.LastInstance, want.LogIndex)
		}
		if !bytes.Equal(got.State, want.State) {
			t.Fatalf("case %d: state mismatch", i)
		}
	}
}

// TestAppendSnapshotExtendsDst pins the append-codec contract: the prefix
// already in dst is preserved, the appended bytes equal Encode, and a reused
// buffer round-trips.
func TestAppendSnapshotExtendsDst(t *testing.T) {
	s := &Snapshot{LastInstance: 3, LogIndex: 17, State: []byte("payload")}
	prefix := []byte("framing")
	out := AppendSnapshot(append([]byte(nil), prefix...), s)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("dst prefix clobbered")
	}
	if !bytes.Equal(out[len(prefix):], Encode(s)) {
		t.Fatal("appended bytes differ from Encode")
	}
	got, err := Decode(out[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if got.LastInstance != s.LastInstance || !bytes.Equal(got.State, s.State) {
		t.Fatal("round-trip through reused buffer mismatch")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	s := &Snapshot{LastInstance: 9, LogIndex: 100, State: []byte("state")}
	if !bytes.Equal(Encode(s), Encode(s)) {
		t.Fatal("encoding not deterministic")
	}
	if Digest(s) != Digest(&Snapshot{LastInstance: 9, LogIndex: 100, State: []byte("state")}) {
		t.Fatal("digests of identical snapshots differ")
	}
}

func TestDigestDiscriminates(t *testing.T) {
	base := &Snapshot{LastInstance: 9, LogIndex: 100, State: []byte("state")}
	mutants := []*Snapshot{
		{LastInstance: 10, LogIndex: 100, State: []byte("state")},
		{LastInstance: 9, LogIndex: 101, State: []byte("state")},
		{LastInstance: 9, LogIndex: 100, State: []byte("statf")},
	}
	for i, m := range mutants {
		if Digest(m) == Digest(base) {
			t.Fatalf("mutant %d collides with base digest", i)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := Encode(&Snapshot{LastInstance: 1, LogIndex: 2, State: []byte("abc")})
	bad := [][]byte{
		nil,
		good[:10],                                // truncated header
		good[:len(good)-1],                       // truncated state
		append(append([]byte{}, good...), 'x'),   // trailing byte
		append([]byte("XXSNAP1\n"), good[8:]...), // bad magic
	}
	for i, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Fatalf("case %d: decoded malformed input", i)
		}
	}
}
