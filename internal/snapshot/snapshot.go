// Package snapshot defines the durable-checkpoint substrate for SMR log
// compaction and crash recovery: a Snapshot pairs a deterministic encoding
// of the application state with the consensus watermark it covers, so that
// a replica can discard its log prefix (compaction) and a crashed or
// lagging replica can re-enter the pipeline at the watermark instead of
// replaying history that no longer exists (state transfer).
//
// Determinism is the load-bearing property: honest replicas that committed
// the same instance prefix must produce byte-identical snapshots, so that
// snapshot digests can be compared across replicas. The transport layer
// exploits this to defend joiners against forged state: a snapshot is
// installed only when b+1 peers present the same digest, which guarantees
// at least one honest source under the Byzantine budget b.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Snapshotter is implemented by state machines whose state can be
// checkpointed. Both methods must be deterministic: two replicas that
// applied the same command sequence return byte-identical encodings, and
// RestoreState(SnapshotState()) is an identity.
type Snapshotter interface {
	// SnapshotState returns a deterministic encoding of the full
	// application state (including any duplicate-suppression tables).
	SnapshotState() []byte
	// RestoreState replaces the application state with a decoded snapshot.
	RestoreState(data []byte) error
}

// Pruner is optionally implemented by state machines whose
// duplicate-suppression tables can be bounded. The snapshot manager prunes
// at checkpoint boundaries — a deterministic point every replica reaches
// with identical state — so that pruned replicas still produce identical
// snapshots. It returns the number of entries evicted.
type Pruner interface {
	PruneApplied(keep int) int
}

// Snapshot is one durable checkpoint.
type Snapshot struct {
	// LastInstance is the consensus-instance watermark: every instance up
	// to and including it is reflected in State. A recovering replica
	// rejoins the pipeline at LastInstance+1.
	LastInstance uint64
	// LogIndex is the number of log commands State covers: the global log
	// index at which the post-snapshot log resumes.
	LogIndex uint64
	// State is the Snapshotter encoding of the application state.
	State []byte
}

// magic prefixes every encoded snapshot (versioned).
const magic = "GCSNAP1\n"

// MaxStateBytes bounds the state payload a decoder will accept (64 MiB),
// protecting receivers from hostile length prefixes.
const MaxStateBytes = 64 << 20

// Errors returned by the codec.
var (
	ErrMalformed = errors.New("snapshot: malformed encoding")
	ErrTooLarge  = errors.New("snapshot: state exceeds MaxStateBytes")
)

// AppendSnapshot appends the deterministic serialization of s to dst and
// returns the extended slice (the repo-wide append codec convention):
//
//	enc := magic lastInstance(u64) logIndex(u64) stateLen(u32) state
//
// (big endian). Identical snapshots encode identically everywhere.
func AppendSnapshot(dst []byte, s *Snapshot) []byte {
	dst = append(dst, magic...)
	dst = binary.BigEndian.AppendUint64(dst, s.LastInstance)
	dst = binary.BigEndian.AppendUint64(dst, s.LogIndex)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.State)))
	dst = append(dst, s.State...)
	return dst
}

// Encode serializes a snapshot into a fresh buffer.
//
// Deprecated: use AppendSnapshot to reuse a caller-owned buffer.
func Encode(s *Snapshot) []byte {
	return AppendSnapshot(make([]byte, 0, len(magic)+20+len(s.State)), s)
}

// Decode parses an Encode result, rejecting truncated, oversized or
// trailing-byte encodings (a forged snapshot must not be ambiguous).
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+20 {
		return nil, fmt.Errorf("%w: %d bytes", ErrMalformed, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	rest := data[len(magic):]
	s := &Snapshot{
		LastInstance: binary.BigEndian.Uint64(rest[0:8]),
		LogIndex:     binary.BigEndian.Uint64(rest[8:16]),
	}
	stateLen := binary.BigEndian.Uint32(rest[16:20])
	if stateLen > MaxStateBytes {
		return nil, fmt.Errorf("%w: %d state bytes", ErrTooLarge, stateLen)
	}
	rest = rest[20:]
	if len(rest) != int(stateLen) {
		return nil, fmt.Errorf("%w: state length %d, have %d", ErrMalformed, stateLen, len(rest))
	}
	s.State = append([]byte(nil), rest...)
	return s, nil
}

// Digest returns the SHA-256 digest of the snapshot's encoding: the value
// replicas compare to verify a transferred snapshot against b+1 peers.
func Digest(s *Snapshot) [32]byte {
	return sha256.Sum256(Encode(s))
}
