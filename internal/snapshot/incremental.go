package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Incremental checkpoints: a large state machine should not pay a full
// re-encode (and a full disk write, and a full transfer) every interval when
// only a sliver of it changed. A Checkpoint is therefore either a Full state
// encoding or a Delta — a binary diff against the previous checkpoint's
// state — with a periodic full snapshot bounding every recovery chain, and a
// chain digest binding each checkpoint to its whole ancestry so a corrupted
// or substituted link is detected before it can poison a restore.
//
// The delta codec is rsync-shaped: the base state is cut into fixed-size
// blocks indexed by a rolling hash, the target is scanned with the same
// rolling hash, and matches become COPY ops (extended greedily in both
// value and length) while unmatched bytes become literals. Because the
// deterministic state encodings emitted by Snapshotter implementations are
// key-sorted, a small mutation perturbs a few blocks and the rest of the
// state re-synchronizes immediately — a 1% mutation rate costs a few
// percent of the full encoding, not all of it.

// CheckpointKind discriminates full checkpoints from deltas.
type CheckpointKind uint8

// Checkpoint kinds.
const (
	// FullCheckpoint carries the complete state encoding.
	FullCheckpoint CheckpointKind = 1
	// DeltaCheckpoint carries a binary delta against the previous
	// checkpoint's state (identified by BaseInstance).
	DeltaCheckpoint CheckpointKind = 2
)

// Checkpoint is one link of an incremental checkpoint chain.
type Checkpoint struct {
	// Kind says whether Payload is a full state or a delta.
	Kind CheckpointKind
	// LastInstance / LogIndex mirror Snapshot: the consensus watermark and
	// global log index this checkpoint covers.
	LastInstance uint64
	LogIndex     uint64
	// BaseInstance is the LastInstance of the checkpoint the delta was
	// computed against (zero for full checkpoints).
	BaseInstance uint64
	// Chain is the chain digest through this checkpoint:
	// sha256(chainTag ‖ Digest(snapshot)) for a full checkpoint,
	// sha256(prevChain ‖ Digest(snapshot)) for a delta. A decoder that
	// tracks the chain verifies every reconstructed snapshot against it.
	Chain [32]byte
	// Payload is the full state encoding or the delta bytes.
	Payload []byte
}

// ckptMagic prefixes every encoded checkpoint (versioned).
const ckptMagic = "GCCKPT1\n"

// chainTag seeds the chain digest at every full checkpoint, domain-separating
// it from raw snapshot digests.
const chainTag = "genconsensus/chain/full\n"

// MaxDeltaBytes bounds the payload a checkpoint decoder accepts: a delta is
// at worst the whole target as one literal plus framing, so anything past
// MaxStateBytes plus slack is hostile.
const MaxDeltaBytes = MaxStateBytes + 4096

// AppendCheckpoint appends the deterministic serialization of c to dst and
// returns the extended slice (the repo-wide append codec convention):
//
//	enc := magic kind(u8) lastInstance(u64) logIndex(u64) baseInstance(u64)
//	       chain(32) payloadLen(u32) payload
func AppendCheckpoint(dst []byte, c *Checkpoint) []byte {
	dst = append(dst, ckptMagic...)
	dst = append(dst, byte(c.Kind))
	dst = binary.BigEndian.AppendUint64(dst, c.LastInstance)
	dst = binary.BigEndian.AppendUint64(dst, c.LogIndex)
	dst = binary.BigEndian.AppendUint64(dst, c.BaseInstance)
	dst = append(dst, c.Chain[:]...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(c.Payload)))
	dst = append(dst, c.Payload...)
	return dst
}

// EncodeCheckpoint serializes a checkpoint into a fresh buffer.
//
// Deprecated: use AppendCheckpoint to reuse a caller-owned buffer.
func EncodeCheckpoint(c *Checkpoint) []byte {
	return AppendCheckpoint(make([]byte, 0, len(ckptMagic)+61+len(c.Payload)), c)
}

// DecodeCheckpoint parses an EncodeCheckpoint result, rejecting truncated,
// oversized, trailing-byte or unknown-kind encodings.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	header := len(ckptMagic) + 61
	if len(data) < header {
		return nil, fmt.Errorf("%w: %d checkpoint bytes", ErrMalformed, len(data))
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad checkpoint magic", ErrMalformed)
	}
	rest := data[len(ckptMagic):]
	c := &Checkpoint{Kind: CheckpointKind(rest[0])}
	if c.Kind != FullCheckpoint && c.Kind != DeltaCheckpoint {
		return nil, fmt.Errorf("%w: checkpoint kind %d", ErrMalformed, c.Kind)
	}
	c.LastInstance = binary.BigEndian.Uint64(rest[1:9])
	c.LogIndex = binary.BigEndian.Uint64(rest[9:17])
	c.BaseInstance = binary.BigEndian.Uint64(rest[17:25])
	copy(c.Chain[:], rest[25:57])
	payloadLen := binary.BigEndian.Uint32(rest[57:61])
	if payloadLen > MaxDeltaBytes {
		return nil, fmt.Errorf("%w: %d payload bytes", ErrTooLarge, payloadLen)
	}
	rest = rest[61:]
	if len(rest) != int(payloadLen) {
		return nil, fmt.Errorf("%w: payload length %d, have %d", ErrMalformed, payloadLen, len(rest))
	}
	c.Payload = append([]byte(nil), rest...)
	return c, nil
}

// chainAfter computes the chain digest for snap given the previous link
// (zero prev with full=true starts a fresh chain).
func chainAfter(prev [32]byte, snap *Snapshot, full bool) [32]byte {
	d := Digest(snap)
	h := sha256.New()
	if full {
		h.Write([]byte(chainTag))
	} else {
		h.Write(prev[:])
	}
	h.Write(d[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// IncrementalEncoder turns a stream of snapshots into a checkpoint chain:
// every FullEvery-th checkpoint is full, the rest are deltas against their
// immediate predecessor. The zero value (or FullEvery ≤ 1) emits only full
// checkpoints. Not safe for concurrent use.
type IncrementalEncoder struct {
	// FullEvery is the full-snapshot period: 4 means full, delta, delta,
	// delta, full, … Values ≤ 1 disable deltas.
	FullEvery int

	count int
	base  *Snapshot
	chain [32]byte
}

// Reset forgets the chain: the next Encode emits a full checkpoint. Use it
// after the base state is known to be out of sync (e.g. a snapshot was
// installed from a peer rather than produced locally).
func (e *IncrementalEncoder) Reset() {
	e.count = 0
	e.base = nil
	e.chain = [32]byte{}
}

// Encode emits the next link of the chain for snap.
func (e *IncrementalEncoder) Encode(snap *Snapshot) *Checkpoint {
	full := e.base == nil || e.FullEvery <= 1 || e.count%e.FullEvery == 0
	c := &Checkpoint{
		LastInstance: snap.LastInstance,
		LogIndex:     snap.LogIndex,
	}
	if full {
		c.Kind = FullCheckpoint
		c.Payload = append([]byte(nil), snap.State...)
	} else {
		c.Kind = DeltaCheckpoint
		c.BaseInstance = e.base.LastInstance
		c.Payload = EncodeDelta(e.base.State, snap.State)
	}
	e.chain = chainAfter(e.chain, snap, full)
	c.Chain = e.chain
	e.base = &Snapshot{
		LastInstance: snap.LastInstance,
		LogIndex:     snap.LogIndex,
		State:        append([]byte(nil), snap.State...),
	}
	e.count++
	return c
}

// Errors returned by the incremental decoder.
var (
	// ErrChainBroken reports a checkpoint whose chain digest does not match
	// the reconstructed state's ancestry — corruption, truncation or
	// substitution somewhere in the chain.
	ErrChainBroken = fmt.Errorf("snapshot: checkpoint chain digest mismatch")
	// ErrNoBase reports a delta checkpoint applied without its base.
	ErrNoBase = fmt.Errorf("snapshot: delta checkpoint without its base")
)

// IncrementalDecoder replays a checkpoint chain back into snapshots,
// verifying every link's chain digest. Apply a full checkpoint first, then
// each delta in order. Not safe for concurrent use.
type IncrementalDecoder struct {
	snap  *Snapshot
	chain [32]byte
}

// Apply reconstructs the snapshot a checkpoint stands for and advances the
// chain. Full checkpoints restart the chain; deltas require the immediately
// preceding checkpoint to have been applied.
func (d *IncrementalDecoder) Apply(c *Checkpoint) (*Snapshot, error) {
	var state []byte
	switch c.Kind {
	case FullCheckpoint:
		state = append([]byte(nil), c.Payload...)
	case DeltaCheckpoint:
		if d.snap == nil {
			return nil, ErrNoBase
		}
		if d.snap.LastInstance != c.BaseInstance {
			return nil, fmt.Errorf("%w: delta bases on instance %d, have %d",
				ErrNoBase, c.BaseInstance, d.snap.LastInstance)
		}
		var err error
		state, err = ApplyDelta(d.snap.State, c.Payload)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: checkpoint kind %d", ErrMalformed, c.Kind)
	}
	snap := &Snapshot{LastInstance: c.LastInstance, LogIndex: c.LogIndex, State: state}
	want := chainAfter(d.chain, snap, c.Kind == FullCheckpoint)
	if want != c.Chain {
		return nil, fmt.Errorf("%w: instance %d", ErrChainBroken, c.LastInstance)
	}
	d.snap = snap
	d.chain = c.Chain
	return snap, nil
}

// Delta codec: magic, base/target lengths (sanity against applying a delta
// to the wrong base), then COPY/LIT ops.
const (
	deltaMagic = "GCDIFF1\n"
	opCopy     = 0x01
	opLiteral  = 0x02

	// deltaBlock is the rolling-hash block size: small enough that a single
	// mutated value costs at most a few blocks of literals, large enough
	// that the block index and op framing stay cheap.
	deltaBlock = 64
)

// rollPrime drives the polynomial rolling hash.
const rollPrime = 16777619

// rollPow is rollPrime^(deltaBlock-1) mod 2^32, precomputed for rolling out
// the leading byte.
var rollPow = func() uint32 {
	p := uint32(1)
	for i := 0; i < deltaBlock-1; i++ {
		p *= rollPrime
	}
	return p
}()

// rollHash hashes one full block.
func rollHash(b []byte) uint32 {
	var h uint32
	for _, c := range b {
		h = h*rollPrime + uint32(c)
	}
	return h
}

// EncodeDelta computes a binary delta such that
// ApplyDelta(base, EncodeDelta(base, target)) == target. Worst case (nothing
// matches) the delta is the target plus a few bytes of framing.
func EncodeDelta(base, target []byte) []byte {
	buf := make([]byte, 0, len(deltaMagic)+16+len(target)/8)
	buf = append(buf, deltaMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(base)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(target)))

	// Index the base's aligned blocks by weak hash.
	index := make(map[uint32][]int, len(base)/deltaBlock+1)
	for off := 0; off+deltaBlock <= len(base); off += deltaBlock {
		h := rollHash(base[off : off+deltaBlock])
		index[h] = append(index[h], off)
	}

	emitLiteral := func(lit []byte) []byte {
		if len(lit) > 0 {
			buf = append(buf, opLiteral)
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(lit)))
			buf = append(buf, lit...)
		}
		return buf
	}

	litStart := 0
	i := 0
	var h uint32
	hashed := false
	for i+deltaBlock <= len(target) {
		if !hashed {
			h = rollHash(target[i : i+deltaBlock])
			hashed = true
		}
		matched := false
		for _, off := range index[h] {
			if !bytes.Equal(base[off:off+deltaBlock], target[i:i+deltaBlock]) {
				continue
			}
			// Extend the match greedily past the block.
			length := deltaBlock
			for off+length < len(base) && i+length < len(target) &&
				base[off+length] == target[i+length] {
				length++
			}
			buf = emitLiteral(target[litStart:i])
			buf = append(buf, opCopy)
			buf = binary.BigEndian.AppendUint32(buf, uint32(off))
			buf = binary.BigEndian.AppendUint32(buf, uint32(length))
			i += length
			litStart = i
			hashed = false
			matched = true
			break
		}
		if !matched {
			// Roll the hash one byte forward.
			if i+deltaBlock < len(target) {
				h = (h-uint32(target[i])*rollPow)*rollPrime + uint32(target[i+deltaBlock])
			}
			i++
		}
	}
	buf = emitLiteral(target[litStart:])
	return buf
}

// ApplyDelta reconstructs the target from the base and a delta, rejecting
// malformed frames, wrong-base deltas and out-of-bounds copies.
func ApplyDelta(base, delta []byte) ([]byte, error) {
	if len(delta) < len(deltaMagic)+8 || string(delta[:len(deltaMagic)]) != deltaMagic {
		return nil, fmt.Errorf("%w: bad delta frame", ErrMalformed)
	}
	rest := delta[len(deltaMagic):]
	baseLen := binary.BigEndian.Uint32(rest[0:4])
	targetLen := binary.BigEndian.Uint32(rest[4:8])
	if int(baseLen) != len(base) {
		return nil, fmt.Errorf("%w: delta bases on %d bytes, have %d", ErrMalformed, baseLen, len(base))
	}
	if targetLen > MaxStateBytes {
		return nil, fmt.Errorf("%w: %d target bytes", ErrTooLarge, targetLen)
	}
	rest = rest[8:]
	out := make([]byte, 0, targetLen)
	for len(rest) > 0 {
		op := rest[0]
		rest = rest[1:]
		switch op {
		case opCopy:
			if len(rest) < 8 {
				return nil, fmt.Errorf("%w: truncated copy op", ErrMalformed)
			}
			off := binary.BigEndian.Uint32(rest[0:4])
			length := binary.BigEndian.Uint32(rest[4:8])
			rest = rest[8:]
			if uint64(off)+uint64(length) > uint64(len(base)) {
				return nil, fmt.Errorf("%w: copy [%d, %d) past base end %d",
					ErrMalformed, off, off+length, len(base))
			}
			out = append(out, base[off:off+length]...)
		case opLiteral:
			if len(rest) < 4 {
				return nil, fmt.Errorf("%w: truncated literal op", ErrMalformed)
			}
			length := binary.BigEndian.Uint32(rest[0:4])
			rest = rest[4:]
			if uint32(len(rest)) < length {
				return nil, fmt.Errorf("%w: literal of %d bytes, %d left", ErrMalformed, length, len(rest))
			}
			out = append(out, rest[:length]...)
			rest = rest[length:]
		default:
			return nil, fmt.Errorf("%w: delta op %#x", ErrMalformed, op)
		}
		if uint32(len(out)) > targetLen {
			return nil, fmt.Errorf("%w: delta overruns target length %d", ErrMalformed, targetLen)
		}
	}
	if uint32(len(out)) != targetLen {
		return nil, fmt.Errorf("%w: delta yields %d bytes, declared %d", ErrMalformed, len(out), targetLen)
	}
	return out, nil
}
