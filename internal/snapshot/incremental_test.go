package snapshot_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"genconsensus/internal/kv"
	"genconsensus/internal/snapshot"
)

func TestDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	base := randBytes(8192)
	cases := map[string][]byte{
		"identical":     append([]byte(nil), base...),
		"empty target":  {},
		"empty base":    randBytes(300),
		"prefix insert": append(randBytes(100), base...),
		"suffix append": append(append([]byte(nil), base...), randBytes(100)...),
		"unrelated":     randBytes(8192),
		"short base":    randBytes(32),
	}
	// Point mutations sprinkled through a copy.
	mutated := append([]byte(nil), base...)
	for i := 0; i < 40; i++ {
		mutated[rng.Intn(len(mutated))] ^= 0xFF
	}
	cases["point mutations"] = mutated
	// A middle deletion shifts every later offset.
	cases["mid deletion"] = append(append([]byte(nil), base[:3000]...), base[3100:]...)

	for name, target := range cases {
		b := base
		if name == "empty base" || name == "short base" {
			b = nil
		}
		delta := snapshot.EncodeDelta(b, target)
		got, err := snapshot.ApplyDelta(b, delta)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("%s: delta round trip diverged (%d bytes vs %d)", name, len(got), len(target))
		}
	}
}

func TestDeltaRejectsWrongBase(t *testing.T) {
	base := bytes.Repeat([]byte("abcdefgh"), 512)
	target := append([]byte(nil), base...)
	target[100] = 'X'
	delta := snapshot.EncodeDelta(base, target)
	if _, err := snapshot.ApplyDelta(base[:len(base)-1], delta); err == nil {
		t.Fatal("delta applied to a base of the wrong length")
	}
	// Truncated delta frames must fail loudly, not misapply.
	for cut := 1; cut < len(delta); cut += 97 {
		if got, err := snapshot.ApplyDelta(base, delta[:cut]); err == nil && !bytes.Equal(got, target) {
			t.Fatalf("truncated delta (%d bytes) silently misapplied", cut)
		}
	}
}

// chainSnapshots builds a sequence of snapshots where each step mutates a
// handful of keys of a kv-shaped sorted state.
func chainSnapshots(t *testing.T, steps int) []*snapshot.Snapshot {
	t.Helper()
	store := kv.NewStore()
	rng := rand.New(rand.NewSource(99))
	apply := func(i int) {
		k := fmt.Sprintf("key-%05d", rng.Intn(2000))
		store.Apply(kv.Command(fmt.Sprintf("r-%d-%d", i, rng.Int()), "SET", k, fmt.Sprintf("v-%d", rng.Int())))
	}
	for i := 0; i < 2000; i++ {
		apply(-1)
	}
	snaps := make([]*snapshot.Snapshot, 0, steps)
	for s := 0; s < steps; s++ {
		for i := 0; i < 20; i++ {
			apply(s)
		}
		snaps = append(snaps, &snapshot.Snapshot{
			LastInstance: uint64(s + 1),
			LogIndex:     uint64((s + 1) * 20),
			State:        store.SnapshotState(),
		})
	}
	return snaps
}

func TestIncrementalChainRoundTrip(t *testing.T) {
	snaps := chainSnapshots(t, 9)
	enc := &snapshot.IncrementalEncoder{FullEvery: 4}
	var dec snapshot.IncrementalDecoder
	for i, want := range snaps {
		c := enc.Encode(want)
		wantKind := snapshot.DeltaCheckpoint
		if i%4 == 0 {
			wantKind = snapshot.FullCheckpoint
		}
		if c.Kind != wantKind {
			t.Fatalf("checkpoint %d: kind %d, want %d", i, c.Kind, wantKind)
		}
		decoded, err := snapshot.DecodeCheckpoint(snapshot.EncodeCheckpoint(c))
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		got, err := dec.Apply(decoded)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		if got.LastInstance != want.LastInstance || got.LogIndex != want.LogIndex ||
			!bytes.Equal(got.State, want.State) {
			t.Fatalf("checkpoint %d: reconstructed snapshot diverged", i)
		}
		if snapshot.Digest(got) != snapshot.Digest(want) {
			t.Fatalf("checkpoint %d: digest diverged", i)
		}
	}
}

// TestAppendCheckpointExtendsDst pins the append-codec contract for
// checkpoints: the dst prefix survives and the appended bytes match
// EncodeCheckpoint exactly.
func TestAppendCheckpointExtendsDst(t *testing.T) {
	snaps := chainSnapshots(t, 1)
	enc := &snapshot.IncrementalEncoder{FullEvery: 4}
	c := enc.Encode(snaps[0])
	prefix := []byte("hdr")
	out := snapshot.AppendCheckpoint(append([]byte(nil), prefix...), c)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("dst prefix clobbered")
	}
	if !bytes.Equal(out[len(prefix):], snapshot.EncodeCheckpoint(c)) {
		t.Fatal("appended bytes differ from EncodeCheckpoint")
	}
	if _, err := snapshot.DecodeCheckpoint(out[len(prefix):]); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalChainDetectsTampering(t *testing.T) {
	snaps := chainSnapshots(t, 3)
	enc := &snapshot.IncrementalEncoder{FullEvery: 8}
	ckpts := make([]*snapshot.Checkpoint, 0, len(snaps))
	for _, s := range snaps {
		ckpts = append(ckpts, enc.Encode(s))
	}

	// Flipping a payload byte of any link breaks that link's chain digest.
	for i := range ckpts {
		var dec snapshot.IncrementalDecoder
		failed := false
		for j, c := range ckpts {
			use := *c
			if j == i {
				use.Payload = append([]byte(nil), c.Payload...)
				use.Payload[len(use.Payload)/2] ^= 0x01
			}
			if _, err := dec.Apply(&use); err != nil {
				failed = true
				break
			}
		}
		if !failed {
			t.Fatalf("tampered link %d went undetected", i)
		}
	}

	// A delta without its base must be refused, not misapplied.
	var dec snapshot.IncrementalDecoder
	if _, err := dec.Apply(ckpts[1]); err == nil {
		t.Fatal("delta applied without its base")
	}
	// Skipping a link breaks the chain even though the base instance of the
	// later delta does not match.
	if _, err := dec.Apply(ckpts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Apply(ckpts[2]); err == nil {
		t.Fatal("chain with a missing link went undetected")
	}
}

// TestIncrementalRatio is the acceptance bound: on a 10k-key store with a 1%
// mutation rate between checkpoints, the delta encodes in at most 20% of the
// full snapshot's bytes.
func TestIncrementalRatio(t *testing.T) {
	store := kv.NewStore()
	rng := rand.New(rand.NewSource(1))
	const keys = 10_000
	for i := 0; i < keys; i++ {
		store.Apply(kv.Command(fmt.Sprintf("seed-%d", i), "SET",
			fmt.Sprintf("key-%06d", i), fmt.Sprintf("value-%06d-%d", i, rng.Int63())))
	}
	base := &snapshot.Snapshot{LastInstance: 1, LogIndex: keys, State: store.SnapshotState()}

	// 1% of the keys change value.
	for i := 0; i < keys/100; i++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(keys))
		store.Apply(kv.Command(fmt.Sprintf("mut-%d", i), "SET", k, fmt.Sprintf("mutated-%d", rng.Int63())))
	}
	next := &snapshot.Snapshot{LastInstance: 2, LogIndex: keys + keys/100, State: store.SnapshotState()}

	enc := &snapshot.IncrementalEncoder{FullEvery: 1 << 20}
	full := enc.Encode(base)
	delta := enc.Encode(next)
	if delta.Kind != snapshot.DeltaCheckpoint {
		t.Fatalf("second checkpoint kind %d, want delta", delta.Kind)
	}
	fullBytes := len(snapshot.EncodeCheckpoint(full))
	deltaBytes := len(snapshot.EncodeCheckpoint(delta))
	t.Logf("full %d bytes, delta %d bytes (%.1f%%)",
		fullBytes, deltaBytes, 100*float64(deltaBytes)/float64(fullBytes))
	if deltaBytes*5 > fullBytes {
		t.Fatalf("delta %d bytes exceeds 20%% of full %d bytes", deltaBytes, fullBytes)
	}

	var dec snapshot.IncrementalDecoder
	if _, err := dec.Apply(full); err != nil {
		t.Fatal(err)
	}
	got, err := dec.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.State, next.State) {
		t.Fatal("reconstructed mutated state diverged")
	}
}
