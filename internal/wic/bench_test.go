package wic

import (
	"testing"

	"genconsensus/internal/auth"
	"genconsensus/internal/core"
	"genconsensus/internal/model"
	"genconsensus/internal/round"
	"genconsensus/internal/sim"
)

// benchWIC measures a full PBFT decision with Pcons built from Pgood by the
// given construction (E-WIC): relay adds 1 outer round per phase, echo
// adds 2, and both multiply selection-round traffic.
func benchWIC(b *testing.B, mode Mode) {
	n, byz := 4, 1
	params := innerParams(n, byz)
	kr, err := auth.NewKeyring(n, 7)
	if err != nil {
		b.Fatal(err)
	}
	vals := []model.Value{"b", "a", "c", "a"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		procs := map[model.PID]round.Proc{}
		inits := map[model.PID]model.Value{}
		for j := 0; j < n; j++ {
			p := model.PID(j)
			inner, err := core.NewProcess(p, vals[j], params)
			if err != nil {
				b.Fatal(err)
			}
			inits[p] = vals[j]
			w, err := Wrap(inner, Config{N: n, B: byz, Mode: mode, Keyring: kr}, params.Schedule())
			if err != nil {
				b.Fatal(err)
			}
			procs[p] = w
		}
		sched := core.Schedule{Flag: model.FlagPhase}
		e, err := sim.New(sim.Config{
			Params: core.Params{N: n, B: byz, F: 0},
			Inits:  inits,
			Procs:  procs,
			Sched:  &sched,
			Modes:  func(model.Round, model.RoundKind) sim.Mode { return sim.ModeGood },
			Seed:   int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		res := e.Run()
		if !res.AllDecided || len(res.Violations) > 0 {
			b.Fatalf("run failed: %+v", res.Violations)
		}
	}
}

func BenchmarkWICRelay(b *testing.B) { benchWIC(b, Relay) }
func BenchmarkWICEcho(b *testing.B)  { benchWIC(b, Echo) }

// Baseline without WIC: the Pcons-oracle execution the constructions are
// compared against.
func BenchmarkWICOracleBaseline(b *testing.B) {
	n, byz := 4, 1
	params := innerParams(n, byz)
	vals := []model.Value{"b", "a", "c", "a"}
	inits := map[model.PID]model.Value{}
	for j := 0; j < n; j++ {
		inits[model.PID(j)] = vals[j]
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := sim.New(sim.Config{Params: params, Inits: inits, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		res := e.Run()
		if !res.AllDecided || len(res.Violations) > 0 {
			b.Fatalf("run failed: %+v", res.Violations)
		}
	}
}
