// Package wic implements Weak Interactive Consistency: building the Pcons
// communication predicate out of Pgood (§2.2 of the paper, following
// Milosevic, Hutle & Schiper [17] and Borran & Schiper [2]).
//
// Pcons requires every correct process to receive the same vector of
// messages in a round. The package provides two constructions that expand
// each selection round of the generic algorithm into micro-rounds:
//
//   - Relay (authenticated Byzantine model, 2 micro-rounds): processes send
//     signed messages to a coordinator, which relays the batch to everyone.
//     Signatures make the relay trustworthy: the coordinator cannot forge
//     or alter messages, only omit them. Pcons holds in good periods
//     whenever the coordinator is correct; the coordinator rotates, so this
//     happens eventually.
//
//   - Echo (Byzantine model without signatures, 3 micro-rounds): processes
//     broadcast, echo the received vectors, and confirm per-sender values
//     supported by more than (n+b)/2 echoes. In good periods Pcons holds
//     for every consistently-sent message; an equivocating Byzantine sender
//     can deny Pcons for its own entry in a round (no two correct processes
//     accept different values, but one may accept ⊥), which only delays
//     termination — safety of the consensus on top is untouched.
//
// Both constructions are exposed as wrappers around a round.Proc: the
// wrapped process sees logical (inner) rounds while the network executes
// micro-rounds.
package wic

import (
	"fmt"
	"sort"

	"genconsensus/internal/auth"
	"genconsensus/internal/core"
	"genconsensus/internal/model"
	"genconsensus/internal/round"
)

// Mode selects the WIC construction.
type Mode int

const (
	// Relay is the coordinator-based authenticated construction
	// (2 micro-rounds per selection round).
	Relay Mode = iota + 1
	// Echo is the signature-free construction (3 micro-rounds per
	// selection round).
	Echo
)

// Micros returns the number of micro-rounds a selection round expands into.
func (m Mode) Micros() int {
	if m == Relay {
		return 2
	}
	return 3
}

// String names the mode.
func (m Mode) String() string {
	if m == Relay {
		return "wic/relay"
	}
	return "wic/echo"
}

// Schedule maps outer (micro) rounds to inner (logical) rounds: selection
// rounds expand to Micros() rounds, other rounds pass through.
type Schedule struct {
	Inner core.Schedule
	Mode  Mode
}

// At returns the inner round and micro index (1-based) for an outer round.
func (s Schedule) At(outer model.Round) (inner model.Round, micro int) {
	micros := s.Mode.Micros()
	o := int(outer)
	r := model.Round(1)
	for {
		_, kind := s.Inner.At(r)
		span := 1
		if kind == model.SelectionRound {
			span = micros
		}
		if o <= span {
			return r, o
		}
		o -= span
		r++
	}
}

// OuterRounds returns the number of outer rounds needed to execute inner
// rounds 1..innerMax.
func (s Schedule) OuterRounds(innerMax model.Round) int {
	total := 0
	for r := model.Round(1); r <= innerMax; r++ {
		_, kind := s.Inner.At(r)
		if kind == model.SelectionRound {
			total += s.Mode.Micros()
		} else {
			total++
		}
	}
	return total
}

// Config parameterizes a WIC wrapper.
type Config struct {
	N, B int
	Mode Mode
	// Keyring supplies signing keys (Relay mode).
	Keyring *auth.Keyring
	// Coordinator maps an inner round to the relay coordinator
	// (Relay mode); defaults to rotating by inner round number.
	Coordinator func(inner model.Round) model.PID
}

// Proc wraps an inner process, expanding its selection rounds into WIC
// micro-rounds. It implements round.Proc over outer rounds.
type Proc struct {
	cfg   Config
	inner round.Proc
	sched Schedule

	// Per-selection-round state, keyed by inner round.
	pendingSend map[model.PID]model.Message // inner Send output being transported
	collected   []model.Signed              // relay: signed messages gathered by the coordinator
	echoes      model.Received              // echo: micro-1 vector
	candidates  map[model.PID]model.Message // echo: per-sender candidate after micro-2
}

var _ round.Proc = (*Proc)(nil)

// Wrap builds a WIC wrapper around inner. The inner process must use a
// whole-Π selector (all §5 Byzantine algorithms do): WIC transports
// selection messages to every process.
func Wrap(inner round.Proc, cfg Config, sched core.Schedule) (*Proc, error) {
	if cfg.Mode != Relay && cfg.Mode != Echo {
		return nil, fmt.Errorf("wic: unknown mode %d", int(cfg.Mode))
	}
	if cfg.Mode == Relay && cfg.Keyring == nil {
		return nil, fmt.Errorf("wic: relay mode requires a keyring")
	}
	if cfg.Coordinator == nil {
		n := cfg.N
		cfg.Coordinator = func(inner model.Round) model.PID {
			return model.PID(int(inner) % n)
		}
	}
	return &Proc{
		cfg:   cfg,
		inner: inner,
		sched: Schedule{Inner: sched, Mode: cfg.Mode},
	}, nil
}

// ID implements round.Proc.
func (p *Proc) ID() model.PID { return p.inner.ID() }

// Decided implements round.Proc.
func (p *Proc) Decided() (model.Value, bool) { return p.inner.Decided() }

// DecidedAt forwards the inner decision round when available.
func (p *Proc) DecidedAt() model.Round {
	if dp, ok := p.inner.(interface{ DecidedAt() model.Round }); ok {
		return dp.DecidedAt()
	}
	return 0
}

// Schedule exposes the outer schedule for engine drivers.
func (p *Proc) Schedule() Schedule { return p.sched }

// Send implements round.Proc.
func (p *Proc) Send(outer model.Round) map[model.PID]model.Message {
	innerR, micro := p.sched.At(outer)
	_, kind := p.sched.Inner.At(innerR)
	if kind != model.SelectionRound {
		return p.inner.Send(innerR)
	}
	switch {
	case micro == 1:
		p.pendingSend = p.inner.Send(innerR)
		own, ok := p.ownMessage()
		if !ok {
			return nil
		}
		signed := p.sign(own)
		carrier := model.Message{Kind: model.SelectionRound, Relay: []model.Signed{signed}}
		if p.cfg.Mode == Relay {
			coord := p.cfg.Coordinator(innerR)
			return round.Broadcast(carrier, []model.PID{coord})
		}
		return round.Broadcast(carrier, model.AllPIDs(p.cfg.N))
	case p.cfg.Mode == Relay && micro == 2:
		if p.cfg.Coordinator(innerR) != p.ID() || len(p.collected) == 0 {
			return nil
		}
		carrier := model.Message{Kind: model.SelectionRound, Relay: p.collected}
		return round.Broadcast(carrier, model.AllPIDs(p.cfg.N))
	case p.cfg.Mode == Echo && micro == 2:
		batch := make([]model.Signed, 0, len(p.echoes))
		for _, q := range p.echoes.Senders() {
			batch = append(batch, model.Signed{Sender: q, Msg: p.echoes[q]})
		}
		carrier := model.Message{Kind: model.SelectionRound, Relay: batch}
		return round.Broadcast(carrier, model.AllPIDs(p.cfg.N))
	case p.cfg.Mode == Echo && micro == 3:
		batch := make([]model.Signed, 0, len(p.candidates))
		pids := make([]model.PID, 0, len(p.candidates))
		for q := range p.candidates {
			pids = append(pids, q)
		}
		sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
		for _, q := range pids {
			batch = append(batch, model.Signed{Sender: q, Msg: p.candidates[q]})
		}
		carrier := model.Message{Kind: model.SelectionRound, Relay: batch}
		return round.Broadcast(carrier, model.AllPIDs(p.cfg.N))
	}
	return nil
}

// Transition implements round.Proc.
func (p *Proc) Transition(outer model.Round, mu model.Received) {
	innerR, micro := p.sched.At(outer)
	_, kind := p.sched.Inner.At(innerR)
	if kind != model.SelectionRound {
		p.inner.Transition(innerR, mu)
		return
	}
	switch {
	case p.cfg.Mode == Relay && micro == 1:
		p.collected = nil
		if p.cfg.Coordinator(innerR) != p.ID() {
			return
		}
		seen := map[model.PID]bool{}
		for _, q := range mu.Senders() {
			for _, s := range mu[q].Relay {
				// The relayed message must be self-signed by its
				// original sender; the coordinator drops forgeries.
				if s.Sender != q || seen[q] {
					continue
				}
				if p.verify(s) {
					p.collected = append(p.collected, s)
					seen[q] = true
				}
			}
		}
		sort.Slice(p.collected, func(i, j int) bool {
			return p.collected[i].Sender < p.collected[j].Sender
		})
	case p.cfg.Mode == Relay && micro == 2:
		innerMu := model.Received{}
		coord := p.cfg.Coordinator(innerR)
		if m, ok := mu[coord]; ok {
			for _, s := range m.Relay {
				if p.verify(s) {
					innerMu[s.Sender] = s.Msg
				}
			}
		}
		p.inner.Transition(innerR, innerMu)
	case p.cfg.Mode == Echo && micro == 1:
		p.echoes = model.Received{}
		for _, q := range mu.Senders() {
			for _, s := range mu[q].Relay {
				if s.Sender == q {
					p.echoes[q] = s.Msg
					break
				}
			}
		}
	case p.cfg.Mode == Echo && micro == 2:
		p.candidates = p.tally(mu)
	case p.cfg.Mode == Echo && micro == 3:
		accepted := p.tally(mu)
		innerMu := model.Received{}
		for q, m := range accepted {
			innerMu[q] = m
		}
		p.inner.Transition(innerR, innerMu)
	}
}

// tally counts, per original sender, the relayed values and returns those
// supported by more than (n+b)/2 of the relayers.
func (p *Proc) tally(mu model.Received) map[model.PID]model.Message {
	type key struct {
		sender model.PID
		fp     string
	}
	counts := map[key]int{}
	repr := map[key]model.Message{}
	for _, relayer := range mu.Senders() {
		seen := map[model.PID]bool{}
		for _, s := range mu[relayer].Relay {
			if seen[s.Sender] {
				continue // one claim per (relayer, sender)
			}
			seen[s.Sender] = true
			k := key{s.Sender, fingerprint(s.Msg)}
			counts[k]++
			if _, ok := repr[k]; !ok {
				repr[k] = s.Msg
			}
		}
	}
	out := map[model.PID]model.Message{}
	for k, c := range counts {
		if 2*c > p.cfg.N+p.cfg.B {
			out[k.sender] = repr[k]
		}
	}
	return out
}

// ownMessage extracts the message the inner process wants transported. With
// a whole-Π selector the per-destination contents coincide; the wrapper
// takes the copy addressed to the lowest PID.
func (p *Proc) ownMessage() (model.Message, bool) {
	if len(p.pendingSend) == 0 {
		return model.Message{}, false
	}
	best := model.PID(-1)
	for d := range p.pendingSend {
		if best < 0 || d < best {
			best = d
		}
	}
	return p.pendingSend[best], true
}

func (p *Proc) sign(m model.Message) model.Signed {
	s := model.Signed{Sender: p.ID(), Msg: m}
	if p.cfg.Mode == Relay {
		signer, err := p.cfg.Keyring.Signer(p.ID())
		if err == nil {
			s.Sig = signer.Sign(fingerprintBytes(m))
		}
	}
	return s
}

func (p *Proc) verify(s model.Signed) bool {
	if p.cfg.Mode != Relay {
		return true
	}
	return p.cfg.Keyring.Verifier().Verify(s.Sender, fingerprintBytes(s.Msg), s.Sig) == nil
}

// fingerprint serializes a message canonically for counting and signing.
func fingerprint(m model.Message) string { return string(fingerprintBytes(m)) }

func fingerprintBytes(m model.Message) []byte {
	out := make([]byte, 0, 64)
	out = append(out, byte(m.Kind))
	out = append(out, []byte(m.Vote)...)
	out = append(out, 0)
	out = appendUint(out, uint64(m.TS))
	for _, e := range m.History {
		out = append(out, []byte(e.Val)...)
		out = append(out, 1)
		out = appendUint(out, uint64(e.Phase))
	}
	out = append(out, 2)
	for _, p := range m.Sel {
		out = appendUint(out, uint64(p))
	}
	return out
}

func appendUint(b []byte, v uint64) []byte {
	for i := 7; i >= 0; i-- {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}
