package wic

import (
	"reflect"
	"testing"

	"genconsensus/internal/auth"
	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/model"
	"genconsensus/internal/round"
	"genconsensus/internal/selector"
	"genconsensus/internal/sim"
)

func innerParams(n, b int) core.Params {
	return core.Params{
		N: n, B: b, F: 0, TD: 2*b + 1,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(n, b),
		Selector:   selector.NewAll(n),
		UseHistory: true,
	}
}

func TestScheduleMapping(t *testing.T) {
	inner := core.Schedule{Flag: model.FlagPhase}
	relay := Schedule{Inner: inner, Mode: Relay}
	// Inner phase 1: selection (2 micros), validation, decision.
	tests := []struct {
		outer model.Round
		inner model.Round
		micro int
	}{
		{1, 1, 1}, {2, 1, 2}, // selection micros
		{3, 2, 1},            // validation
		{4, 3, 1},            // decision
		{5, 4, 1}, {6, 4, 2}, // next selection
	}
	for _, tt := range tests {
		gotInner, gotMicro := relay.At(tt.outer)
		if gotInner != tt.inner || gotMicro != tt.micro {
			t.Errorf("relay At(%d) = (%d, %d), want (%d, %d)",
				tt.outer, gotInner, gotMicro, tt.inner, tt.micro)
		}
	}
	if got := relay.OuterRounds(3); got != 4 {
		t.Errorf("relay OuterRounds(3) = %d, want 4", got)
	}
	echo := Schedule{Inner: inner, Mode: Echo}
	if got := echo.OuterRounds(3); got != 5 {
		t.Errorf("echo OuterRounds(3) = %d, want 5", got)
	}
	gotInner, gotMicro := echo.At(3)
	if gotInner != 1 || gotMicro != 3 {
		t.Errorf("echo At(3) = (%d, %d), want (1, 3)", gotInner, gotMicro)
	}
}

func TestModeMeta(t *testing.T) {
	if Relay.Micros() != 2 || Echo.Micros() != 3 {
		t.Error("micro counts")
	}
	if Relay.String() != "wic/relay" || Echo.String() != "wic/echo" {
		t.Error("names")
	}
}

func TestWrapValidation(t *testing.T) {
	params := innerParams(4, 1)
	inner, err := core.NewProcess(0, "v", params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wrap(inner, Config{N: 4, B: 1, Mode: Mode(9)}, params.Schedule()); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Wrap(inner, Config{N: 4, B: 1, Mode: Relay}, params.Schedule()); err == nil {
		t.Error("relay without keyring accepted")
	}
}

// recordingProc captures the inner vectors delivered by the WIC layer so
// tests can check the Pcons postcondition.
type recordingProc struct {
	round.Proc
	mus map[model.Round]model.Received
}

func (r *recordingProc) Transition(rd model.Round, mu model.Received) {
	if r.mus == nil {
		r.mus = map[model.Round]model.Received{}
	}
	r.mus[rd] = mu.Clone()
	r.Proc.Transition(rd, mu)
}

// buildCluster wires n WIC-wrapped PBFT processes (indices in byz are
// replaced by the given procs).
func buildCluster(t *testing.T, n, b int, mode Mode, override map[model.PID]round.Proc) (map[model.PID]round.Proc, map[model.PID]*recordingProc, map[model.PID]model.Value) {
	t.Helper()
	params := innerParams(n, b)
	kr, err := auth.NewKeyring(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	procs := map[model.PID]round.Proc{}
	recs := map[model.PID]*recordingProc{}
	inits := map[model.PID]model.Value{}
	vals := []model.Value{"b", "a", "c", "a", "b", "c", "a"}
	for i := 0; i < n; i++ {
		p := model.PID(i)
		if o, ok := override[p]; ok {
			procs[p] = o
			continue
		}
		init := vals[i%len(vals)]
		inner, err := core.NewProcess(p, init, params)
		if err != nil {
			t.Fatal(err)
		}
		inits[p] = init
		rec := &recordingProc{Proc: inner}
		recs[p] = rec
		w, err := Wrap(rec, Config{N: n, B: b, Mode: mode, Keyring: kr}, params.Schedule())
		if err != nil {
			t.Fatal(err)
		}
		procs[p] = w
	}
	return procs, recs, inits
}

func runCluster(t *testing.T, n, b int, procs map[model.PID]round.Proc, inits map[model.PID]model.Value, byz map[model.PID]bool, maxRounds int) sim.Result {
	t.Helper()
	engineSched := core.Schedule{Flag: model.FlagPhase}
	e, err := sim.New(sim.Config{
		Params:    core.Params{N: n, B: b, F: 0},
		Inits:     inits,
		Procs:     procs,
		ProcByz:   byz,
		Sched:     &engineSched,
		Modes:     func(model.Round, model.RoundKind) sim.Mode { return sim.ModeGood },
		Seed:      3,
		MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e.Run()
}

// Relay WIC over Pgood only: the consensus on top decides, agreement holds,
// and the delivered selection vectors are identical at all correct
// processes (Pcons achieved without ever using the simulator's Cons mode).
func TestRelayWICAchievesPcons(t *testing.T) {
	n, b := 4, 1
	procs, recs, inits := buildCluster(t, n, b, Relay, nil)
	res := runCluster(t, n, b, procs, inits, nil, 40)
	if !res.AllDecided {
		t.Fatalf("no decision in %d outer rounds", res.Rounds)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	assertPconsOnSelections(t, recs)
}

// Echo WIC over Pgood only: same postcondition, one more micro-round.
func TestEchoWICAchievesPcons(t *testing.T) {
	n, b := 4, 1
	procs, recs, inits := buildCluster(t, n, b, Echo, nil)
	res := runCluster(t, n, b, procs, inits, nil, 40)
	if !res.AllDecided {
		t.Fatalf("no decision in %d outer rounds", res.Rounds)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	assertPconsOnSelections(t, recs)
}

func assertPconsOnSelections(t *testing.T, recs map[model.PID]*recordingProc) {
	t.Helper()
	sched := core.Schedule{Flag: model.FlagPhase}
	var ref map[model.Round]model.Received
	var refPID model.PID
	for p, rec := range recs {
		if ref == nil {
			ref, refPID = rec.mus, p
			continue
		}
		for r, mu := range rec.mus {
			if _, kind := sched.At(r); kind != model.SelectionRound {
				continue
			}
			refMu, ok := ref[r]
			if !ok {
				continue
			}
			if !reflect.DeepEqual(vectorFingerprint(mu), vectorFingerprint(refMu)) {
				t.Fatalf("Pcons violated in inner round %d: process %d and %d received different vectors\n%v\nvs\n%v",
					r, p, refPID, mu, refMu)
			}
		}
	}
}

func vectorFingerprint(mu model.Received) map[model.PID]string {
	out := map[model.PID]string{}
	for p, m := range mu {
		out[p] = fingerprint(m)
	}
	return out
}

// maliciousRelay is a Byzantine coordinator: in its relay micro-round it
// sends the full batch to even PIDs and a truncated batch to odd PIDs.
// Signatures prevent it from altering content; omission is its only power.
type maliciousRelay struct {
	*Proc
}

func (m *maliciousRelay) Send(outer model.Round) map[model.PID]model.Message {
	innerR, micro := m.Schedule().At(outer)
	out := m.Proc.Send(outer)
	if micro != 2 || m.Proc.cfg.Coordinator(innerR) != m.ID() || out == nil {
		return out
	}
	for d, msg := range out {
		if d%2 == 1 && len(msg.Relay) > 1 {
			msg.Relay = msg.Relay[:1]
			out[d] = msg
		}
	}
	return out
}

// A Byzantine relay coordinator can only delay: once rotation reaches an
// honest coordinator the system decides, and agreement is never violated.
func TestRelayWICMaliciousCoordinator(t *testing.T) {
	n, b := 4, 1
	params := innerParams(n, b)
	kr, err := auth.NewKeyring(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	// PID 1 is the malicious relay (it coordinates inner round 1 with the
	// default rotating coordinator: 1 % 4 = 1).
	evilInner, err := core.NewProcess(1, "z", params)
	if err != nil {
		t.Fatal(err)
	}
	evilWrapped, err := Wrap(evilInner, Config{N: n, B: b, Mode: Relay, Keyring: kr}, params.Schedule())
	if err != nil {
		t.Fatal(err)
	}
	override := map[model.PID]round.Proc{1: &maliciousRelay{Proc: evilWrapped}}
	procs, recs, inits := buildCluster(t, n, b, Relay, override)
	res := runCluster(t, n, b, procs, inits, map[model.PID]bool{1: true}, 80)
	if !res.AllDecided {
		t.Fatalf("no decision in %d outer rounds despite honest rotation", res.Rounds)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Forgery-freedom: across honest recorders, each (round, sender) pair
	// maps to at most one distinct accepted message.
	seen := map[model.Round]map[model.PID]string{}
	for _, rec := range recs {
		for r, mu := range rec.mus {
			if seen[r] == nil {
				seen[r] = map[model.PID]string{}
			}
			for q, m := range mu {
				fp := fingerprint(m)
				if prev, ok := seen[r][q]; ok && prev != fp {
					t.Fatalf("round %d: two different messages accepted for sender %d", r, q)
				}
				seen[r][q] = fp
			}
		}
	}
}

// Echo WIC per-sender consistency against an equivocating micro-1 sender:
// no two correct processes accept different values for the equivocator.
type equivocatingSender struct {
	id model.PID
	n  int
}

func (e *equivocatingSender) ID() model.PID                          { return e.id }
func (e *equivocatingSender) Decided() (model.Value, bool)           { return model.NoValue, false }
func (e *equivocatingSender) Transition(model.Round, model.Received) {}
func (e *equivocatingSender) Send(outer model.Round) map[model.PID]model.Message {
	out := map[model.PID]model.Message{}
	for i := 0; i < e.n; i++ {
		v := model.Value("a")
		if i >= e.n/2 {
			v = "b"
		}
		inner := model.Message{Kind: model.SelectionRound, Vote: v}
		out[model.PID(i)] = model.Message{
			Kind:  model.SelectionRound,
			Relay: []model.Signed{{Sender: e.id, Msg: inner}},
		}
	}
	return out
}

func TestEchoWICEquivocatorConsistency(t *testing.T) {
	n, b := 4, 1
	override := map[model.PID]round.Proc{3: &equivocatingSender{id: 3, n: n}}
	procs, recs, inits := buildCluster(t, n, b, Echo, override)
	res := runCluster(t, n, b, procs, inits, map[model.PID]bool{3: true}, 60)
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Per-sender consistency: across correct processes, at most one
	// distinct accepted value for the Byzantine sender per inner round.
	perRound := map[model.Round]map[string]bool{}
	for _, rec := range recs {
		for r, mu := range rec.mus {
			if m, ok := mu[3]; ok {
				if perRound[r] == nil {
					perRound[r] = map[string]bool{}
				}
				perRound[r][fingerprint(m)] = true
			}
		}
	}
	for r, set := range perRound {
		if len(set) > 1 {
			t.Fatalf("inner round %d: correct processes accepted %d different values from the equivocator",
				r, len(set))
		}
	}
}

// Signature verification drops altered relays (unit).
func TestRelayVerifyRejectsAlteredMessage(t *testing.T) {
	n, b := 4, 1
	params := innerParams(n, b)
	kr, err := auth.NewKeyring(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := core.NewProcess(0, "v", params)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Wrap(inner, Config{N: n, B: b, Mode: Relay, Keyring: kr}, params.Schedule())
	if err != nil {
		t.Fatal(err)
	}
	signer, err := kr.Signer(2)
	if err != nil {
		t.Fatal(err)
	}
	orig := model.Message{Kind: model.SelectionRound, Vote: "x"}
	good := model.Signed{Sender: 2, Msg: orig, Sig: signer.Sign(fingerprintBytes(orig))}
	if !w.verify(good) {
		t.Fatal("valid signature rejected")
	}
	tampered := good
	tampered.Msg.Vote = "y"
	if w.verify(tampered) {
		t.Fatal("altered message accepted")
	}
	impersonated := good
	impersonated.Sender = 3
	if w.verify(impersonated) {
		t.Fatal("impersonated sender accepted")
	}
}

// The tally helper: a value needs more than (n+b)/2 supporting relayers.
func TestTally(t *testing.T) {
	params := innerParams(4, 1)
	kr, _ := auth.NewKeyring(4, 7)
	inner, _ := core.NewProcess(0, "v", params)
	w, err := Wrap(inner, Config{N: 4, B: 1, Mode: Echo, Keyring: kr}, params.Schedule())
	if err != nil {
		t.Fatal(err)
	}
	msgA := model.Message{Kind: model.SelectionRound, Vote: "a"}
	msgB := model.Message{Kind: model.SelectionRound, Vote: "b"}
	claim := func(s model.PID, m model.Message) model.Message {
		return model.Message{Relay: []model.Signed{{Sender: s, Msg: m}}}
	}
	// 3 of 4 relayers claim (5 → a): 3 > (4+1)/2 accepted.
	mu := model.Received{
		0: claim(5, msgA), 1: claim(5, msgA), 2: claim(5, msgA), 3: claim(5, msgB),
	}
	got := w.tally(mu)
	if m, ok := got[5]; !ok || m.Vote != "a" {
		t.Fatalf("tally = %v, want sender 5 → a", got)
	}
	// 2 of 4: not enough.
	mu = model.Received{
		0: claim(5, msgA), 1: claim(5, msgA), 2: claim(5, msgB), 3: claim(5, msgB),
	}
	if got := w.tally(mu); len(got) != 0 {
		t.Fatalf("tally accepted a split: %v", got)
	}
}
