// Package auth provides the authentication substrate for the authenticated
// Byzantine fault model (§2.2): ed25519 signatures ("messages can be signed
// by the sending process, and signatures cannot be forged") and pairwise
// HMAC-SHA256 session MACs for the channel-level integrity the
// signature-free model assumes (the receiver knows the sender's identity).
//
// Keys are generated deterministically from seeds so that test clusters are
// reproducible; production deployments would provision keys externally.
package auth

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"genconsensus/internal/model"
)

// Signer signs messages for one process.
type Signer struct {
	id   model.PID
	priv ed25519.PrivateKey
}

// Verifier verifies signatures from every process in the cluster.
type Verifier struct {
	pubs map[model.PID]ed25519.PublicKey
}

// Errors returned by verification.
var (
	ErrUnknownSigner = errors.New("auth: unknown signer")
	ErrBadSignature  = errors.New("auth: signature verification failed")
)

// Keyring holds a cluster's deterministic key material.
type Keyring struct {
	signers map[model.PID]*Signer
	verify  *Verifier
}

// NewKeyring derives a keyring for n processes from the seed.
func NewKeyring(n int, seed int64) (*Keyring, error) {
	kr := &Keyring{
		signers: make(map[model.PID]*Signer, n),
		verify:  &Verifier{pubs: make(map[model.PID]ed25519.PublicKey, n)},
	}
	for _, p := range model.AllPIDs(n) {
		var material [ed25519.SeedSize]byte
		binary.BigEndian.PutUint64(material[0:8], uint64(seed))
		binary.BigEndian.PutUint64(material[8:16], uint64(p)+1)
		sum := sha256.Sum256(material[:])
		priv := ed25519.NewKeyFromSeed(sum[:])
		kr.signers[p] = &Signer{id: p, priv: priv}
		kr.verify.pubs[p] = priv.Public().(ed25519.PublicKey)
	}
	return kr, nil
}

// Signer returns process p's signer.
func (kr *Keyring) Signer(p model.PID) (*Signer, error) {
	s, ok := kr.signers[p]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSigner, p)
	}
	return s, nil
}

// Verifier returns the cluster-wide verifier.
func (kr *Keyring) Verifier() *Verifier { return kr.verify }

// Sign returns the signature of payload by this signer.
func (s *Signer) Sign(payload []byte) []byte {
	return ed25519.Sign(s.priv, payload)
}

// ID returns the signer's process id.
func (s *Signer) ID() model.PID { return s.id }

// Verify checks that sig is signer's signature over payload.
func (v *Verifier) Verify(signer model.PID, payload, sig []byte) error {
	pub, ok := v.pubs[signer]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSigner, signer)
	}
	if !ed25519.Verify(pub, payload, sig) {
		return fmt.Errorf("%w: signer %d", ErrBadSignature, signer)
	}
	return nil
}

// MACKey is a pairwise symmetric key.
type MACKey [32]byte

// PairKey derives the symmetric key shared by processes a and b from the
// cluster seed. PairKey(a, b) == PairKey(b, a).
func PairKey(seed int64, a, b model.PID) MACKey {
	if b < a {
		a, b = b, a
	}
	var material [24]byte
	binary.BigEndian.PutUint64(material[0:8], uint64(seed))
	binary.BigEndian.PutUint64(material[8:16], uint64(a)+1)
	binary.BigEndian.PutUint64(material[16:24], uint64(b)+1)
	return sha256.Sum256(material[:])
}

// MAC computes the HMAC-SHA256 tag of payload under key.
func MAC(key MACKey, payload []byte) []byte {
	h := hmac.New(sha256.New, key[:])
	h.Write(payload)
	return h.Sum(nil)
}

// CheckMAC verifies tag in constant time.
func CheckMAC(key MACKey, payload, tag []byte) bool {
	return hmac.Equal(MAC(key, payload), tag)
}
