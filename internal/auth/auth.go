// Package auth provides the authentication substrate for the authenticated
// Byzantine fault model (§2.2): ed25519 signatures ("messages can be signed
// by the sending process, and signatures cannot be forged") and pairwise
// HMAC-SHA256 session MACs for the channel-level integrity the
// signature-free model assumes (the receiver knows the sender's identity).
//
// Keys are generated deterministically from seeds so that test clusters are
// reproducible; production deployments would provision keys externally.
package auth

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"genconsensus/internal/model"
)

// Signer signs messages for one process.
type Signer struct {
	id   model.PID
	priv ed25519.PrivateKey
}

// Verifier verifies signatures from every process in the cluster.
type Verifier struct {
	pubs map[model.PID]ed25519.PublicKey
}

// Errors returned by verification.
var (
	ErrUnknownSigner = errors.New("auth: unknown signer")
	ErrBadSignature  = errors.New("auth: signature verification failed")
)

// Keyring holds a cluster's deterministic key material.
type Keyring struct {
	signers map[model.PID]*Signer
	verify  *Verifier
}

// NewKeyring derives a keyring for n processes from the seed.
func NewKeyring(n int, seed int64) (*Keyring, error) {
	kr := &Keyring{
		signers: make(map[model.PID]*Signer, n),
		verify:  &Verifier{pubs: make(map[model.PID]ed25519.PublicKey, n)},
	}
	for _, p := range model.AllPIDs(n) {
		var material [ed25519.SeedSize]byte
		binary.BigEndian.PutUint64(material[0:8], uint64(seed))
		binary.BigEndian.PutUint64(material[8:16], uint64(p)+1)
		sum := sha256.Sum256(material[:])
		priv := ed25519.NewKeyFromSeed(sum[:])
		kr.signers[p] = &Signer{id: p, priv: priv}
		kr.verify.pubs[p] = priv.Public().(ed25519.PublicKey)
	}
	return kr, nil
}

// Signer returns process p's signer.
func (kr *Keyring) Signer(p model.PID) (*Signer, error) {
	s, ok := kr.signers[p]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSigner, p)
	}
	return s, nil
}

// Verifier returns the cluster-wide verifier.
func (kr *Keyring) Verifier() *Verifier { return kr.verify }

// Sign returns the signature of payload by this signer.
func (s *Signer) Sign(payload []byte) []byte {
	return ed25519.Sign(s.priv, payload)
}

// ID returns the signer's process id.
func (s *Signer) ID() model.PID { return s.id }

// Verify checks that sig is signer's signature over payload.
func (v *Verifier) Verify(signer model.PID, payload, sig []byte) error {
	pub, ok := v.pubs[signer]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSigner, signer)
	}
	if !ed25519.Verify(pub, payload, sig) {
		return fmt.Errorf("%w: signer %d", ErrBadSignature, signer)
	}
	return nil
}

// MACKey is a pairwise symmetric key.
type MACKey [32]byte

// PairKey derives the symmetric key shared by processes a and b from the
// cluster seed. PairKey(a, b) == PairKey(b, a).
func PairKey(seed int64, a, b model.PID) MACKey {
	if b < a {
		a, b = b, a
	}
	var material [24]byte
	binary.BigEndian.PutUint64(material[0:8], uint64(seed))
	binary.BigEndian.PutUint64(material[8:16], uint64(a)+1)
	binary.BigEndian.PutUint64(material[16:24], uint64(b)+1)
	return sha256.Sum256(material[:])
}

// MAC computes the HMAC-SHA256 tag of payload under key.
func MAC(key MACKey, payload []byte) []byte {
	h := hmac.New(sha256.New, key[:])
	h.Write(payload)
	return h.Sum(nil)
}

// CheckMAC verifies tag in constant time.
func CheckMAC(key MACKey, payload, tag []byte) bool {
	return hmac.Equal(MAC(key, payload), tag)
}

// --- Client command authentication ------------------------------------------
//
// Clients are first-class principals: each client shares a symmetric key
// with the cluster and MACs every command it issues over (client, seq,
// payload). Replicas verify that MAC at ingress, inside the batch choice
// rule and again at apply time, so a Byzantine proposer can neither
// fabricate commands no client issued nor strip another client's identity.
// Like the process keys above, client keys are seed-derived for
// reproducibility; distributing per-client keys out of band is the
// production follow-up tracked in ROADMAP.md.

// commandTag domain-separates command MACs from the pairwise channel MACs
// (both are HMAC-SHA256; without the tag a captured channel MAC could be
// cross-played as a command authenticator and vice versa).
const commandTag = "gc-client-cmd-v1"

// ClientKey derives client c's symmetric command key from the cluster seed.
func ClientKey(seed int64, client uint32) MACKey {
	var material [28]byte
	copy(material[0:], commandTag[:8])
	binary.BigEndian.PutUint64(material[8:16], uint64(seed))
	binary.BigEndian.PutUint32(material[16:20], client)
	binary.BigEndian.PutUint64(material[20:28], uint64(client)+1)
	return sha256.Sum256(material[:])
}

// commandSigBytes is the exact byte string a command MAC covers: the domain
// tag, the client id, the sequence number and the payload. Signer and
// verifier must agree on it byte for byte.
func commandSigBytes(client uint32, seq uint64, payload []byte) []byte {
	buf := make([]byte, 0, len(commandTag)+12+len(payload))
	buf = append(buf, commandTag...)
	buf = binary.BigEndian.AppendUint32(buf, client)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	return append(buf, payload...)
}

// ClientSigner MACs commands for one client.
type ClientSigner struct {
	client uint32
	key    MACKey
}

// NewClientSigner derives client's signer from the cluster seed.
func NewClientSigner(seed int64, client uint32) *ClientSigner {
	return &ClientSigner{client: client, key: ClientKey(seed, client)}
}

// Client returns the signer's client id.
func (s *ClientSigner) Client() uint32 { return s.client }

// Sign returns the MAC over (client, seq, payload).
func (s *ClientSigner) Sign(seq uint64, payload []byte) []byte {
	return MAC(s.key, commandSigBytes(s.client, seq, payload))
}

// ClientKeyring verifies command MACs for every provisioned client. It is
// safe for concurrent use (keys are materialized at construction and only
// read afterwards).
type ClientKeyring struct {
	keys map[uint32]MACKey
}

// NewClientKeyring derives keys for clients 0..numClients-1 from the seed.
// Commands claiming a client id outside the keyring fail verification:
// the provisioned client space is the authorization boundary.
func NewClientKeyring(seed int64, numClients int) *ClientKeyring {
	kr := &ClientKeyring{keys: make(map[uint32]MACKey, numClients)}
	for c := 0; c < numClients; c++ {
		kr.keys[uint32(c)] = ClientKey(seed, uint32(c))
	}
	return kr
}

// NumClients reports the provisioned client count.
func (kr *ClientKeyring) NumClients() int { return len(kr.keys) }

// VerifyCommand checks mac over (client, seq, payload) in constant time.
// Unknown clients verify as false, never as an error: to a replica a forged
// client id and a forged MAC are the same attack.
func (kr *ClientKeyring) VerifyCommand(client uint32, seq uint64, payload, mac []byte) bool {
	key, ok := kr.keys[client]
	if !ok {
		return false
	}
	return CheckMAC(key, commandSigBytes(client, seq, payload), mac)
}
