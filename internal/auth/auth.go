// Package auth provides the authentication substrate for the authenticated
// Byzantine fault model (§2.2): ed25519 signatures ("messages can be signed
// by the sending process, and signatures cannot be forged") and pairwise
// HMAC-SHA256 session MACs for the channel-level integrity the
// signature-free model assumes (the receiver knows the sender's identity).
//
// Keys are generated deterministically from seeds so that test clusters are
// reproducible; production deployments would provision keys externally.
package auth

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"genconsensus/internal/model"
)

// Signer signs messages for one process.
type Signer struct {
	id   model.PID
	priv ed25519.PrivateKey
}

// Verifier verifies signatures from every process in the cluster.
type Verifier struct {
	pubs map[model.PID]ed25519.PublicKey
}

// Errors returned by verification.
var (
	ErrUnknownSigner = errors.New("auth: unknown signer")
	ErrBadSignature  = errors.New("auth: signature verification failed")
)

// Keyring holds a cluster's deterministic key material.
type Keyring struct {
	signers map[model.PID]*Signer
	verify  *Verifier
}

// NewKeyring derives a keyring for n processes from the seed.
func NewKeyring(n int, seed int64) (*Keyring, error) {
	kr := &Keyring{
		signers: make(map[model.PID]*Signer, n),
		verify:  &Verifier{pubs: make(map[model.PID]ed25519.PublicKey, n)},
	}
	for _, p := range model.AllPIDs(n) {
		var material [ed25519.SeedSize]byte
		binary.BigEndian.PutUint64(material[0:8], uint64(seed))
		binary.BigEndian.PutUint64(material[8:16], uint64(p)+1)
		sum := sha256.Sum256(material[:])
		priv := ed25519.NewKeyFromSeed(sum[:])
		kr.signers[p] = &Signer{id: p, priv: priv}
		kr.verify.pubs[p] = priv.Public().(ed25519.PublicKey)
	}
	return kr, nil
}

// Signer returns process p's signer.
func (kr *Keyring) Signer(p model.PID) (*Signer, error) {
	s, ok := kr.signers[p]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSigner, p)
	}
	return s, nil
}

// Verifier returns the cluster-wide verifier.
func (kr *Keyring) Verifier() *Verifier { return kr.verify }

// Sign returns the signature of payload by this signer.
func (s *Signer) Sign(payload []byte) []byte {
	return ed25519.Sign(s.priv, payload)
}

// ID returns the signer's process id.
func (s *Signer) ID() model.PID { return s.id }

// Verify checks that sig is signer's signature over payload.
func (v *Verifier) Verify(signer model.PID, payload, sig []byte) error {
	pub, ok := v.pubs[signer]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSigner, signer)
	}
	if !ed25519.Verify(pub, payload, sig) {
		return fmt.Errorf("%w: signer %d", ErrBadSignature, signer)
	}
	return nil
}

// MACKey is a pairwise symmetric key.
type MACKey [32]byte

// PairKey derives the symmetric key shared by processes a and b from the
// cluster seed. PairKey(a, b) == PairKey(b, a).
func PairKey(seed int64, a, b model.PID) MACKey {
	if b < a {
		a, b = b, a
	}
	var material [24]byte
	binary.BigEndian.PutUint64(material[0:8], uint64(seed))
	binary.BigEndian.PutUint64(material[8:16], uint64(a)+1)
	binary.BigEndian.PutUint64(material[16:24], uint64(b)+1)
	return sha256.Sum256(material[:])
}

// macBufPool recycles the contiguous ipad/opad scratch buffers macSum
// concatenates into, keeping the MAC hot path allocation-free (frame seals,
// session MACs and command authenticators all run through it).
var macBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// macSum is HMAC-SHA256 with a 32-byte key, computed with sha256.Sum256
// over pooled scratch buffers instead of crypto/hmac's heap-allocated
// hash states: H(k⊕opad ‖ H(k⊕ipad ‖ m)) with the key zero-padded to the
// 64-byte block size. The output is bit-identical to crypto/hmac
// (TestMACMatchesCryptoHMAC pins that).
func macSum(key MACKey, parts ...[]byte) [sha256.Size]byte {
	bufp := macBufPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	for i := range key {
		buf = append(buf, key[i]^0x36)
	}
	for i := 0; i < 32; i++ {
		buf = append(buf, 0x36)
	}
	for _, p := range parts {
		buf = append(buf, p...)
	}
	inner := sha256.Sum256(buf)
	buf = buf[:0]
	for i := range key {
		buf = append(buf, key[i]^0x5c)
	}
	for i := 0; i < 32; i++ {
		buf = append(buf, 0x5c)
	}
	buf = append(buf, inner[:]...)
	outer := sha256.Sum256(buf)
	*bufp = buf
	macBufPool.Put(bufp)
	return outer
}

// MAC computes the HMAC-SHA256 tag of payload under key.
func MAC(key MACKey, payload []byte) []byte {
	sum := macSum(key, payload)
	return sum[:]
}

// AppendMAC appends the HMAC-SHA256 tag of payload under key to dst —
// the allocation-free form for callers assembling frames into pooled
// buffers.
func AppendMAC(dst []byte, key MACKey, payload []byte) []byte {
	sum := macSum(key, payload)
	return append(dst, sum[:]...)
}

// CheckMAC verifies tag in constant time.
func CheckMAC(key MACKey, payload, tag []byte) bool {
	sum := macSum(key, payload)
	return hmac.Equal(sum[:], tag)
}

// --- Client command authentication ------------------------------------------
//
// Clients are first-class principals: each client shares a symmetric key
// with the cluster and MACs every command it issues over (client, seq,
// payload). Replicas verify that MAC at ingress, inside the batch choice
// rule and again at apply time, so a Byzantine proposer can neither
// fabricate commands no client issued nor strip another client's identity.
// Like the process keys above, client keys are seed-derived for
// reproducibility; distributing per-client keys out of band is the
// production follow-up tracked in ROADMAP.md.

// commandTag domain-separates command MACs from the pairwise channel MACs
// (both are HMAC-SHA256; without the tag a captured channel MAC could be
// cross-played as a command authenticator and vice versa).
const commandTag = "gc-client-cmd-v1"

// ClientKey derives client c's symmetric command key from the cluster seed.
func ClientKey(seed int64, client uint32) MACKey {
	var material [28]byte
	copy(material[0:], commandTag[:8])
	binary.BigEndian.PutUint64(material[8:16], uint64(seed))
	binary.BigEndian.PutUint32(material[16:20], client)
	binary.BigEndian.PutUint64(material[20:28], uint64(client)+1)
	return sha256.Sum256(material[:])
}

// commandSum is the command authenticator: HMAC over the domain tag, the
// client id, the sequence number and the payload. Signer and verifier must
// agree on the covered bytes exactly. Generic over the payload so string
// payloads verify without a copy.
func commandSum[P ~string | ~[]byte](key MACKey, client uint32, seq uint64, payload P) [sha256.Size]byte {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], client)
	binary.BigEndian.PutUint64(hdr[4:12], seq)
	bufp := macBufPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	for i := range key {
		buf = append(buf, key[i]^0x36)
	}
	for i := 0; i < 32; i++ {
		buf = append(buf, 0x36)
	}
	buf = append(buf, commandTag...)
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	inner := sha256.Sum256(buf)
	buf = buf[:0]
	for i := range key {
		buf = append(buf, key[i]^0x5c)
	}
	for i := 0; i < 32; i++ {
		buf = append(buf, 0x5c)
	}
	buf = append(buf, inner[:]...)
	outer := sha256.Sum256(buf)
	*bufp = buf
	macBufPool.Put(bufp)
	return outer
}

// ClientSigner MACs commands for one client.
type ClientSigner struct {
	client uint32
	key    MACKey
}

// NewClientSigner derives client's signer from the cluster seed.
func NewClientSigner(seed int64, client uint32) *ClientSigner {
	return &ClientSigner{client: client, key: ClientKey(seed, client)}
}

// Client returns the signer's client id.
func (s *ClientSigner) Client() uint32 { return s.client }

// Sign returns the MAC over (client, seq, payload).
func (s *ClientSigner) Sign(seq uint64, payload []byte) []byte {
	sum := commandSum(s.key, s.client, seq, payload)
	return sum[:]
}

// ClientKeyring verifies command MACs for every provisioned client. It is
// safe for concurrent use (keys are materialized at construction and only
// read afterwards).
type ClientKeyring struct {
	keys map[uint32]MACKey
}

// NewClientKeyring derives keys for clients 0..numClients-1 from the seed.
// Commands claiming a client id outside the keyring fail verification:
// the provisioned client space is the authorization boundary.
func NewClientKeyring(seed int64, numClients int) *ClientKeyring {
	kr := &ClientKeyring{keys: make(map[uint32]MACKey, numClients)}
	for c := 0; c < numClients; c++ {
		kr.keys[uint32(c)] = ClientKey(seed, uint32(c))
	}
	return kr
}

// NumClients reports the provisioned client count.
func (kr *ClientKeyring) NumClients() int { return len(kr.keys) }

// VerifyCommand checks mac over (client, seq, payload) in constant time.
// Unknown clients verify as false, never as an error: to a replica a forged
// client id and a forged MAC are the same attack.
func (kr *ClientKeyring) VerifyCommand(client uint32, seq uint64, payload, mac []byte) bool {
	key, ok := kr.keys[client]
	if !ok {
		return false
	}
	sum := commandSum(key, client, seq, payload)
	return hmac.Equal(sum[:], mac)
}

// VerifyCommandStr is VerifyCommand over string payload and MAC: the
// verdict-cache miss path holds both as substrings of the envelope value
// and must not copy them per verification.
func (kr *ClientKeyring) VerifyCommandStr(client uint32, seq uint64, payload, mac string) bool {
	key, ok := kr.keys[client]
	if !ok {
		return false
	}
	sum := commandSum(key, client, seq, payload)
	return hmac.Equal(sum[:], []byte(mac))
}

// Key returns the client's symmetric key (false for unprovisioned ids).
// Session handshakes need the raw key to verify HELLOs and derive session
// keys; within the symmetric-key model every replica holds it anyway.
func (kr *ClientKeyring) Key(client uint32) (MACKey, bool) {
	key, ok := kr.keys[client]
	return key, ok
}

// --- Connection sessions ------------------------------------------------------
//
// Peers and clients authenticate once per connection: a HELLO exchange
// under the long-lived key (the pairwise key for peers, the client key for
// clients) binds two fresh nonces, and both ends derive a per-connection
// session key from them. Every subsequent frame on the connection carries a
// truncated session MAC plus a strictly monotonic sequence number instead
// of a full per-frame, per-destination seal — authenticity is anchored in
// the handshake, per-frame cost drops to one short HMAC with a pre-derived
// key, and a replayed or reordered frame fails the sequence check.

const (
	// SessionNonceSize is the handshake nonce length.
	SessionNonceSize = 16
	// SessionMACSize is the truncated per-frame session tag length. 128
	// bits of HMAC-SHA256 output: forgery still needs 2^128 work, half the
	// per-frame authenticator bytes.
	SessionMACSize = 16
)

// Domain tags for the session key schedule. Each derived value gets its
// own tag so a transcript captured in one role can never be replayed in
// another.
const (
	peerSessionTag   = "gc-peer-session-v1"
	helloTag         = "gc-hello-v1"
	helloAckTag      = "gc-hello-ack-v1"
	clientHelloTag   = "gc-client-hello-v1"
	clientAckTag     = "gc-client-hello-ack-v1"
	clientSessionTag = "gc-client-session-v1"
)

// HelloMAC authenticates a peer HELLO: the dialer proves it holds the
// pairwise key and binds its fresh nonce.
func HelloMAC(pair MACKey, dialer model.PID, nonce []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(dialer))
	sum := macSum(pair, []byte(helloTag), hdr[:], nonce)
	return sum[:]
}

// CheckHelloMAC verifies a peer HELLO tag in constant time.
func CheckHelloMAC(pair MACKey, dialer model.PID, nonce, tag []byte) bool {
	return hmac.Equal(HelloMAC(pair, dialer, nonce), tag)
}

// HelloAckMAC authenticates the acceptor's reply, binding both nonces (so
// neither end can be replayed into a stale handshake).
func HelloAckMAC(pair MACKey, dialer model.PID, dialerNonce, acceptorNonce []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(dialer))
	sum := macSum(pair, []byte(helloAckTag), hdr[:], dialerNonce, acceptorNonce)
	return sum[:]
}

// CheckHelloAckMAC verifies a HELLO acknowledgement in constant time.
func CheckHelloAckMAC(pair MACKey, dialer model.PID, dialerNonce, acceptorNonce, tag []byte) bool {
	return hmac.Equal(HelloAckMAC(pair, dialer, dialerNonce, acceptorNonce), tag)
}

// SessionKey derives the per-connection peer session key from the pairwise
// key and both handshake nonces. The dialer id is mixed in so the two
// directions of a pair never share a key schedule.
func SessionKey(pair MACKey, dialer model.PID, dialerNonce, acceptorNonce []byte) MACKey {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(dialer))
	return MACKey(macSum(pair, []byte(peerSessionTag), hdr[:], dialerNonce, acceptorNonce))
}

// SessionMAC computes the truncated per-frame tag over (seq, payload)
// under a session key, appending it to dst.
func SessionMAC(dst []byte, key MACKey, seq uint64, payload []byte) []byte {
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], seq)
	sum := macSum(key, seqb[:], payload)
	return append(dst, sum[:SessionMACSize]...)
}

// CheckSessionMAC verifies a truncated session tag in constant time.
func CheckSessionMAC(key MACKey, seq uint64, payload, tag []byte) bool {
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], seq)
	sum := macSum(key, seqb[:], payload)
	return hmac.Equal(sum[:SessionMACSize], tag)
}

// ClientHelloMAC authenticates a client's session HELLO under its command
// key.
func ClientHelloMAC(key MACKey, client uint32, nonce []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], client)
	sum := macSum(key, []byte(clientHelloTag), hdr[:], nonce)
	return sum[:]
}

// CheckClientHelloMAC verifies a client HELLO tag in constant time.
func CheckClientHelloMAC(key MACKey, client uint32, nonce, tag []byte) bool {
	return hmac.Equal(ClientHelloMAC(key, client, nonce), tag)
}

// ClientHelloAckMAC authenticates the replica's reply to a client HELLO,
// binding both nonces — the client learns it is talking to a keyholder,
// not a spoofed endpoint.
func ClientHelloAckMAC(key MACKey, client uint32, clientNonce, serverNonce []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], client)
	sum := macSum(key, []byte(clientAckTag), hdr[:], clientNonce, serverNonce)
	return sum[:]
}

// CheckClientHelloAckMAC verifies a client HELLO acknowledgement.
func CheckClientHelloAckMAC(key MACKey, client uint32, clientNonce, serverNonce, tag []byte) bool {
	return hmac.Equal(ClientHelloAckMAC(key, client, clientNonce, serverNonce), tag)
}

// ClientSessionKey derives the per-connection client session key.
func ClientSessionKey(key MACKey, client uint32, clientNonce, serverNonce []byte) MACKey {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], client)
	return MACKey(macSum(key, []byte(clientSessionTag), hdr[:], clientNonce, serverNonce))
}
