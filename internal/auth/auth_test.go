package auth

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"testing"
)

func TestSignVerify(t *testing.T) {
	kr, err := NewKeyring(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := kr.Signer(2)
	if err != nil {
		t.Fatal(err)
	}
	if signer.ID() != 2 {
		t.Errorf("signer ID = %d", signer.ID())
	}
	payload := []byte("selection round message")
	sig := signer.Sign(payload)
	if err := kr.Verifier().Verify(2, payload, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsForgery(t *testing.T) {
	kr, _ := NewKeyring(4, 42)
	signer, _ := kr.Signer(1)
	payload := []byte("msg")
	sig := signer.Sign(payload)

	// Wrong claimed signer.
	if err := kr.Verifier().Verify(2, payload, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("impersonation accepted: %v", err)
	}
	// Tampered payload.
	if err := kr.Verifier().Verify(1, []byte("msG"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered payload accepted: %v", err)
	}
	// Tampered signature.
	bad := append([]byte(nil), sig...)
	bad[0] ^= 0xff
	if err := kr.Verifier().Verify(1, payload, bad); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered signature accepted: %v", err)
	}
	// Unknown signer.
	if err := kr.Verifier().Verify(9, payload, sig); !errors.Is(err, ErrUnknownSigner) {
		t.Errorf("unknown signer: %v", err)
	}
	if _, err := kr.Signer(9); !errors.Is(err, ErrUnknownSigner) {
		t.Errorf("Signer(9): %v", err)
	}
}

func TestKeyringDeterminism(t *testing.T) {
	kr1, _ := NewKeyring(3, 7)
	kr2, _ := NewKeyring(3, 7)
	s1, _ := kr1.Signer(0)
	s2, _ := kr2.Signer(0)
	payload := []byte("x")
	if string(s1.Sign(payload)) != string(s2.Sign(payload)) {
		t.Error("same seed must derive identical keys")
	}
	kr3, _ := NewKeyring(3, 8)
	s3, _ := kr3.Signer(0)
	if string(s1.Sign(payload)) == string(s3.Sign(payload)) {
		t.Error("different seeds must derive different keys")
	}
}

func TestPairKeySymmetry(t *testing.T) {
	if PairKey(1, 0, 3) != PairKey(1, 3, 0) {
		t.Error("PairKey must be symmetric")
	}
	if PairKey(1, 0, 3) == PairKey(1, 0, 2) {
		t.Error("distinct pairs must get distinct keys")
	}
	if PairKey(1, 0, 3) == PairKey(2, 0, 3) {
		t.Error("distinct seeds must get distinct keys")
	}
}

func TestMAC(t *testing.T) {
	key := PairKey(5, 0, 1)
	payload := []byte("round 3 vote")
	tag := MAC(key, payload)
	if !CheckMAC(key, payload, tag) {
		t.Fatal("valid MAC rejected")
	}
	if CheckMAC(key, []byte("round 3 votE"), tag) {
		t.Error("tampered payload accepted")
	}
	other := PairKey(5, 0, 2)
	if CheckMAC(other, payload, tag) {
		t.Error("MAC verified under the wrong key")
	}
}

func TestClientSignerVerify(t *testing.T) {
	kr := NewClientKeyring(9, 4)
	if kr.NumClients() != 4 {
		t.Fatalf("NumClients = %d", kr.NumClients())
	}
	signer := NewClientSigner(9, 2)
	payload := []byte("c2.7|SET|color|green")
	mac := signer.Sign(7, payload)
	if !kr.VerifyCommand(2, 7, payload, mac) {
		t.Fatal("valid client MAC rejected")
	}
	if kr.VerifyCommand(2, 8, payload, mac) {
		t.Error("MAC verified under the wrong seq")
	}
	if kr.VerifyCommand(1, 7, payload, mac) {
		t.Error("MAC verified under the wrong client")
	}
	if kr.VerifyCommand(2, 7, []byte("c2.7|SET|color|red"), mac) {
		t.Error("MAC verified over a tampered payload")
	}
	// Unknown client ids (outside the provisioned keyring) never verify.
	if kr.VerifyCommand(99, 7, payload, NewClientSigner(9, 99).Sign(7, payload)) {
		t.Error("command from an unprovisioned client verified")
	}
	// A different cluster seed yields disjoint keys.
	if kr.VerifyCommand(2, 7, payload, NewClientSigner(10, 2).Sign(7, payload)) {
		t.Error("MAC from a foreign seed verified")
	}
}

func TestClientKeyDomainSeparation(t *testing.T) {
	if ClientKey(3, 0) == ClientKey(3, 1) {
		t.Error("distinct clients must get distinct keys")
	}
	if ClientKey(3, 0) == ClientKey(4, 0) {
		t.Error("distinct seeds must get distinct keys")
	}
	// Client keys must not collide with the pairwise channel keyspace: a
	// captured channel MAC must never verify as a command MAC.
	if ClientKey(3, 1) == PairKey(3, 0, 1) {
		t.Error("client key collides with a pairwise channel key")
	}
}

// TestMACMatchesCryptoHMAC pins the pooled-buffer HMAC implementation to
// crypto/hmac bit for bit: every frame seal, session tag and command
// authenticator in the system depends on this equivalence.
func TestMACMatchesCryptoHMAC(t *testing.T) {
	key := PairKey(99, 0, 1)
	for _, payload := range [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("a longer payload spanning more than one sha256 block ---------------------------------"),
		bytes.Repeat([]byte{0xa5}, 4096),
	} {
		ref := hmac.New(sha256.New, key[:])
		ref.Write(payload)
		want := ref.Sum(nil)
		if got := MAC(key, payload); !bytes.Equal(got, want) {
			t.Fatalf("MAC mismatch for %d-byte payload:\n got %x\nwant %x", len(payload), got, want)
		}
		if !CheckMAC(key, payload, want) {
			t.Fatalf("CheckMAC rejected the crypto/hmac reference tag")
		}
		if got := AppendMAC([]byte("prefix"), key, payload); !bytes.Equal(got[6:], want) {
			t.Fatalf("AppendMAC mismatch")
		}
	}
}

func TestSessionKeySchedule(t *testing.T) {
	pair := PairKey(7, 0, 1)
	nd := []byte("dialer-nonce-16b")
	na := []byte("accept-nonce-16b")
	k1 := SessionKey(pair, 0, nd, na)
	// Deterministic for both ends.
	if k2 := SessionKey(pair, 0, nd, na); k1 != k2 {
		t.Fatal("session key not deterministic")
	}
	// Direction, nonces and pair key all separate the schedule.
	if k1 == SessionKey(pair, 1, nd, na) {
		t.Error("dialer direction must change the session key")
	}
	if k1 == SessionKey(pair, 0, na, nd) {
		t.Error("nonce order must change the session key")
	}
	if k1 == SessionKey(PairKey(7, 0, 2), 0, nd, na) {
		t.Error("pair key must change the session key")
	}
	if k1 == pair {
		t.Error("session key must not equal the pairwise key")
	}
}

func TestSessionMACRoundTrip(t *testing.T) {
	key := SessionKey(PairKey(7, 0, 1), 0, []byte("dialer-nonce-16b"), []byte("accept-nonce-16b"))
	payload := []byte("frame payload")
	tag := SessionMAC(nil, key, 42, payload)
	if len(tag) != SessionMACSize {
		t.Fatalf("session tag length %d, want %d", len(tag), SessionMACSize)
	}
	if !CheckSessionMAC(key, 42, payload, tag) {
		t.Fatal("genuine session MAC rejected")
	}
	if CheckSessionMAC(key, 43, payload, tag) {
		t.Error("session MAC verified under the wrong sequence")
	}
	if CheckSessionMAC(key, 42, []byte("other payload"), tag) {
		t.Error("session MAC verified over different bytes")
	}
	other := SessionKey(PairKey(7, 0, 1), 1, []byte("dialer-nonce-16b"), []byte("accept-nonce-16b"))
	if CheckSessionMAC(other, 42, payload, tag) {
		t.Error("session MAC verified under a different session key")
	}
}

func TestHelloMACs(t *testing.T) {
	pair := PairKey(7, 2, 3)
	nonce := []byte("dialer-nonce-16b")
	tag := HelloMAC(pair, 2, nonce)
	if !CheckHelloMAC(pair, 2, nonce, tag) {
		t.Fatal("genuine HELLO tag rejected")
	}
	if CheckHelloMAC(pair, 3, nonce, tag) {
		t.Error("HELLO tag verified for the wrong dialer")
	}
	ack := HelloAckMAC(pair, 2, nonce, []byte("accept-nonce-16b"))
	if !CheckHelloAckMAC(pair, 2, nonce, []byte("accept-nonce-16b"), ack) {
		t.Fatal("genuine HELLO-ACK tag rejected")
	}
	if CheckHelloAckMAC(pair, 2, nonce, []byte("accept-nonce-16X"), ack) {
		t.Error("HELLO-ACK verified with a different acceptor nonce")
	}
	// HELLO and ACK tags are domain-separated even over identical fields.
	if bytes.Equal(tag, HelloAckMAC(pair, 2, nonce, nil)) {
		t.Error("HELLO and HELLO-ACK share a tag")
	}
}

func TestClientSessionSchedule(t *testing.T) {
	key := ClientKey(11, 5)
	cn := []byte("client-nonce-16b")
	sn := []byte("server-nonce-16b")
	tag := ClientHelloMAC(key, 5, cn)
	if !CheckClientHelloMAC(key, 5, cn, tag) {
		t.Fatal("genuine client HELLO rejected")
	}
	if CheckClientHelloMAC(key, 6, cn, tag) {
		t.Error("client HELLO verified for the wrong client id")
	}
	ack := ClientHelloAckMAC(key, 5, cn, sn)
	if !CheckClientHelloAckMAC(key, 5, cn, sn, ack) {
		t.Fatal("genuine client HELLO-ACK rejected")
	}
	sk := ClientSessionKey(key, 5, cn, sn)
	if sk == key {
		t.Error("client session key must not equal the client key")
	}
	if sk != ClientSessionKey(key, 5, cn, sn) {
		t.Error("client session key not deterministic")
	}
	if sk == ClientSessionKey(key, 5, sn, cn) {
		t.Error("client session key ignores nonce order")
	}
}
