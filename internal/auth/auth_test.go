package auth

import (
	"errors"
	"testing"
)

func TestSignVerify(t *testing.T) {
	kr, err := NewKeyring(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := kr.Signer(2)
	if err != nil {
		t.Fatal(err)
	}
	if signer.ID() != 2 {
		t.Errorf("signer ID = %d", signer.ID())
	}
	payload := []byte("selection round message")
	sig := signer.Sign(payload)
	if err := kr.Verifier().Verify(2, payload, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsForgery(t *testing.T) {
	kr, _ := NewKeyring(4, 42)
	signer, _ := kr.Signer(1)
	payload := []byte("msg")
	sig := signer.Sign(payload)

	// Wrong claimed signer.
	if err := kr.Verifier().Verify(2, payload, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("impersonation accepted: %v", err)
	}
	// Tampered payload.
	if err := kr.Verifier().Verify(1, []byte("msG"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered payload accepted: %v", err)
	}
	// Tampered signature.
	bad := append([]byte(nil), sig...)
	bad[0] ^= 0xff
	if err := kr.Verifier().Verify(1, payload, bad); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered signature accepted: %v", err)
	}
	// Unknown signer.
	if err := kr.Verifier().Verify(9, payload, sig); !errors.Is(err, ErrUnknownSigner) {
		t.Errorf("unknown signer: %v", err)
	}
	if _, err := kr.Signer(9); !errors.Is(err, ErrUnknownSigner) {
		t.Errorf("Signer(9): %v", err)
	}
}

func TestKeyringDeterminism(t *testing.T) {
	kr1, _ := NewKeyring(3, 7)
	kr2, _ := NewKeyring(3, 7)
	s1, _ := kr1.Signer(0)
	s2, _ := kr2.Signer(0)
	payload := []byte("x")
	if string(s1.Sign(payload)) != string(s2.Sign(payload)) {
		t.Error("same seed must derive identical keys")
	}
	kr3, _ := NewKeyring(3, 8)
	s3, _ := kr3.Signer(0)
	if string(s1.Sign(payload)) == string(s3.Sign(payload)) {
		t.Error("different seeds must derive different keys")
	}
}

func TestPairKeySymmetry(t *testing.T) {
	if PairKey(1, 0, 3) != PairKey(1, 3, 0) {
		t.Error("PairKey must be symmetric")
	}
	if PairKey(1, 0, 3) == PairKey(1, 0, 2) {
		t.Error("distinct pairs must get distinct keys")
	}
	if PairKey(1, 0, 3) == PairKey(2, 0, 3) {
		t.Error("distinct seeds must get distinct keys")
	}
}

func TestMAC(t *testing.T) {
	key := PairKey(5, 0, 1)
	payload := []byte("round 3 vote")
	tag := MAC(key, payload)
	if !CheckMAC(key, payload, tag) {
		t.Fatal("valid MAC rejected")
	}
	if CheckMAC(key, []byte("round 3 votE"), tag) {
		t.Error("tampered payload accepted")
	}
	other := PairKey(5, 0, 2)
	if CheckMAC(other, payload, tag) {
		t.Error("MAC verified under the wrong key")
	}
}

func TestClientSignerVerify(t *testing.T) {
	kr := NewClientKeyring(9, 4)
	if kr.NumClients() != 4 {
		t.Fatalf("NumClients = %d", kr.NumClients())
	}
	signer := NewClientSigner(9, 2)
	payload := []byte("c2.7|SET|color|green")
	mac := signer.Sign(7, payload)
	if !kr.VerifyCommand(2, 7, payload, mac) {
		t.Fatal("valid client MAC rejected")
	}
	if kr.VerifyCommand(2, 8, payload, mac) {
		t.Error("MAC verified under the wrong seq")
	}
	if kr.VerifyCommand(1, 7, payload, mac) {
		t.Error("MAC verified under the wrong client")
	}
	if kr.VerifyCommand(2, 7, []byte("c2.7|SET|color|red"), mac) {
		t.Error("MAC verified over a tampered payload")
	}
	// Unknown client ids (outside the provisioned keyring) never verify.
	if kr.VerifyCommand(99, 7, payload, NewClientSigner(9, 99).Sign(7, payload)) {
		t.Error("command from an unprovisioned client verified")
	}
	// A different cluster seed yields disjoint keys.
	if kr.VerifyCommand(2, 7, payload, NewClientSigner(10, 2).Sign(7, payload)) {
		t.Error("MAC from a foreign seed verified")
	}
}

func TestClientKeyDomainSeparation(t *testing.T) {
	if ClientKey(3, 0) == ClientKey(3, 1) {
		t.Error("distinct clients must get distinct keys")
	}
	if ClientKey(3, 0) == ClientKey(4, 0) {
		t.Error("distinct seeds must get distinct keys")
	}
	// Client keys must not collide with the pairwise channel keyspace: a
	// captured channel MAC must never verify as a command MAC.
	if ClientKey(3, 1) == PairKey(3, 0, 1) {
		t.Error("client key collides with a pairwise channel key")
	}
}
