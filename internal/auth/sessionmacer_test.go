package auth

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSessionMACerMatchesSessionMAC(t *testing.T) {
	key := ClientSessionKey(ClientKey(7, 3), 3, []byte("client-nonce-16b"), []byte("server-nonce-16b"))
	m := NewSessionMACer(key)
	payloads := [][]byte{
		nil,
		[]byte(""),
		[]byte("x"),
		[]byte("3 17 SET user:123 some-value"),
		bytes.Repeat([]byte("block-boundary.."), 4),   // exactly 64 bytes
		bytes.Repeat([]byte("spanning-blocks!"), 100), // multi-block
	}
	for _, payload := range payloads {
		for _, seq := range []uint64{0, 1, 42, 1 << 40} {
			want := SessionMAC(nil, key, seq, payload)
			got := m.Append(nil, seq, payload)
			if !bytes.Equal(got, want) {
				t.Fatalf("seq %d payload %d bytes: macer %x, SessionMAC %x", seq, len(payload), got, want)
			}
			if !m.Check(seq, payload, want) {
				t.Fatalf("seq %d: macer rejects SessionMAC tag", seq)
			}
			if !CheckSessionMAC(key, seq, payload, got) {
				t.Fatalf("seq %d: CheckSessionMAC rejects macer tag", seq)
			}
			bad := append([]byte(nil), want...)
			bad[0] ^= 1
			if m.Check(seq, payload, bad) {
				t.Fatalf("seq %d: macer accepts corrupted tag", seq)
			}
		}
	}
	// Reuse across many tags must not leak state between calls.
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf("SCMD %d SET k-%d v-%d", i, i, i))
		if !bytes.Equal(m.Append(nil, uint64(i), payload), SessionMAC(nil, key, uint64(i), payload)) {
			t.Fatalf("iteration %d diverged", i)
		}
	}
}

func BenchmarkSessionMAC(b *testing.B) {
	key := ClientKey(7, 1)
	payload := []byte("1 12345 SET user:12345 value-12345")
	b.Run("plain", func(b *testing.B) {
		var dst []byte
		for i := 0; i < b.N; i++ {
			dst = SessionMAC(dst[:0], key, uint64(i), payload)
		}
	})
	b.Run("midstate", func(b *testing.B) {
		m := NewSessionMACer(key)
		var dst []byte
		for i := 0; i < b.N; i++ {
			dst = m.Append(dst[:0], uint64(i), payload)
		}
	})
}
