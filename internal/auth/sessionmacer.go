package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"hash"
)

// SessionMACer computes session tags for one fixed key with the HMAC key
// blocks pre-hashed. Plain HMAC pays two fixed SHA-256 compressions per
// tag — H(k⊕ipad‖…) and H(k⊕opad‖…) each start by compressing a key
// block that never changes for the life of the session. A SessionMACer
// hashes those blocks once at construction and captures the SHA-256
// midstates (via the hash's BinaryMarshaler), so each tag costs only the
// message and finalization compressions — roughly half the hashing for
// the short payloads session frames carry. The output is bit-identical to
// SessionMAC/CheckSessionMAC (TestSessionMACerMatchesSessionMAC pins it).
//
// A SessionMACer is NOT safe for concurrent use: it reuses one scratch
// hash state. Sessions are single-reader and writers serialize under the
// connection lock, so each endpoint of a connection owns its own.
type SessionMACer struct {
	h          hash.Hash
	innerState []byte // SHA-256 midstate after the k⊕ipad block
	outerState []byte // SHA-256 midstate after the k⊕opad block
	sum        [sha256.Size]byte
}

// NewSessionMACer precomputes the midstates for key.
func NewSessionMACer(key MACKey) *SessionMACer {
	m := &SessionMACer{h: sha256.New()}
	var block [64]byte
	for i := range key {
		block[i] = key[i] ^ 0x36
	}
	for i := len(key); i < len(block); i++ {
		block[i] = 0x36
	}
	m.h.Write(block[:])
	m.innerState = mustMarshal(m.h)
	m.h.Reset()
	for i := range key {
		block[i] = key[i] ^ 0x5c
	}
	for i := len(key); i < len(block); i++ {
		block[i] = 0x5c
	}
	m.h.Write(block[:])
	m.outerState = mustMarshal(m.h)
	return m
}

func mustMarshal(h hash.Hash) []byte {
	state, err := h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		// sha256's marshaler cannot fail; this guards a swapped-out hash.
		panic("auth: sha256 state marshal: " + err.Error())
	}
	return state
}

func (m *SessionMACer) restore(state []byte) {
	if err := m.h.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
		panic("auth: sha256 state unmarshal: " + err.Error())
	}
}

// macSum computes the full HMAC-SHA256 of (seq, payload) from the cached
// midstates.
func (m *SessionMACer) macSum(seq uint64, payload []byte) {
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], seq)
	m.restore(m.innerState)
	m.h.Write(seqb[:])
	m.h.Write(payload)
	inner := m.h.Sum(m.sum[:0])
	m.restore(m.outerState)
	m.h.Write(inner)
	m.h.Sum(m.sum[:0])
}

// Append appends the truncated session tag for (seq, payload) to dst —
// the midstate-cached equivalent of SessionMAC(dst, key, seq, payload).
func (m *SessionMACer) Append(dst []byte, seq uint64, payload []byte) []byte {
	m.macSum(seq, payload)
	return append(dst, m.sum[:SessionMACSize]...)
}

// Check verifies a truncated session tag in constant time — the
// midstate-cached equivalent of CheckSessionMAC.
func (m *SessionMACer) Check(seq uint64, payload, tag []byte) bool {
	m.macSum(seq, payload)
	return hmac.Equal(m.sum[:SessionMACSize], tag)
}
