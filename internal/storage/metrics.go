package storage

import "genconsensus/internal/obs"

// diskMetrics is a Disk backend's resolved instrument set. The zero value
// (nil instruments) is the disabled mode: every update is a predicted
// no-op branch, so un-instrumented backends pay nothing on the append
// path.
type diskMetrics struct {
	walAppends *obs.Counter
	walBytes   *obs.Counter
	// walFsyncNS observes the latency of each WAL fsync in nanoseconds —
	// the durability cost the FsyncBatch knob amortizes.
	walFsyncNS  *obs.Histogram
	compactions *obs.Counter
	// Checkpoint bytes split by chain-link kind: the full-vs-delta ratio
	// is what the incremental encoder exists to improve.
	ckptFullBytes  *obs.Counter
	ckptDeltaBytes *obs.Counter
}

// resolveDiskMetrics builds the instrument set from reg under the given
// name prefix (e.g. "g0."). A nil reg yields the disabled zero set.
func resolveDiskMetrics(reg *obs.Registry, prefix string) diskMetrics {
	var m diskMetrics
	if reg == nil {
		return m
	}
	m.walAppends = reg.Counter(prefix + "storage.wal.appends")
	m.walBytes = reg.Counter(prefix + "storage.wal.append_bytes")
	m.walFsyncNS = reg.Histogram(prefix + "storage.wal.fsync_ns")
	m.compactions = reg.Counter(prefix + "storage.wal.compactions")
	m.ckptFullBytes = reg.Counter(prefix + "storage.ckpt.full_bytes")
	m.ckptDeltaBytes = reg.Counter(prefix + "storage.ckpt.delta_bytes")
	return m
}
