package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genconsensus/internal/model"
	"genconsensus/internal/snapshot"
)

// backends runs a subtest against both Backend implementations. reopen
// simulates a power cycle: the process memory is gone, the medium persists.
func backends(t *testing.T, run func(t *testing.T, open func() Backend)) {
	t.Run("memory", func(t *testing.T) {
		mem := NewMemory()
		run(t, func() Backend {
			mem.Reopen()
			return mem
		})
	})
	t.Run("disk", func(t *testing.T) {
		dir := t.TempDir()
		run(t, func() Backend {
			d, err := OpenDisk(DiskConfig{Dir: dir, Fsync: true, Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			return d
		})
	})
}

func replayAll(t *testing.T, b Backend) []memRecord {
	t.Helper()
	var out []memRecord
	if err := b.ReplayWAL(func(instance uint64, value model.Value) error {
		out = append(out, memRecord{instance, value})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBackendWALRoundTrip(t *testing.T) {
	backends(t, func(t *testing.T, open func() Backend) {
		b := open()
		// Out-of-order appends (pipelined decisions) and a duplicate.
		appends := []memRecord{
			{1, "one"}, {3, "three"}, {2, "two"}, {3, "three-again"}, {4, "four"},
		}
		for _, r := range appends {
			if err := b.AppendWAL(r.instance, r.value); err != nil {
				t.Fatal(err)
			}
		}
		want := []memRecord{{1, "one"}, {3, "three"}, {2, "two"}, {4, "four"}}
		check := func(got []memRecord) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d: %v", len(got), len(want), got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		}
		check(replayAll(t, b))
		// Power cycle: the records survive reopen, in append order.
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		b = open()
		check(replayAll(t, b))
		// The duplicate filter survives reopen too.
		if err := b.AppendWAL(2, "two-again"); err != nil {
			t.Fatal(err)
		}
		check(replayAll(t, b))
	})
}

func TestBackendWALTruncate(t *testing.T) {
	backends(t, func(t *testing.T, open func() Backend) {
		b := open()
		for i := uint64(1); i <= 10; i++ {
			if err := b.AppendWAL(i, model.Value(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.TruncateWAL(7); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, b)
		if len(got) != 3 || got[0].instance != 8 || got[2].instance != 10 {
			t.Fatalf("post-truncate replay: %v", got)
		}
		// A truncated instance may legitimately be re-appended only if it
		// is re-decided; the idempotence filter forgets truncated records.
		if err := b.AppendWAL(5, "re-decided"); err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, b); len(got) != 4 {
			t.Fatalf("re-append after truncate: %v", got)
		}
		b.Close()
		b = open()
		if got := replayAll(t, b); len(got) != 4 {
			t.Fatalf("truncate did not survive reopen: %v", got)
		}
	})
}

func TestBackendSnapshotRoundTrip(t *testing.T) {
	backends(t, func(t *testing.T, open func() Backend) {
		b := open()
		if _, ok, err := b.LoadSnapshot(); err != nil || ok {
			t.Fatalf("empty store: ok=%v err=%v", ok, err)
		}
		for i := uint64(1); i <= 9; i++ {
			snap := &snapshot.Snapshot{
				LastInstance: i * 10,
				LogIndex:     i * 100,
				State:        []byte(strings.Repeat(fmt.Sprintf("state-%d|", i), 50)),
			}
			if err := b.SaveSnapshot(snap); err != nil {
				t.Fatal(err)
			}
		}
		// Stale saves are dropped.
		if err := b.SaveSnapshot(&snapshot.Snapshot{LastInstance: 5, State: []byte("stale")}); err != nil {
			t.Fatal(err)
		}
		check := func(b Backend) {
			t.Helper()
			snap, ok, err := b.LoadSnapshot()
			if err != nil || !ok {
				t.Fatalf("load: ok=%v err=%v", ok, err)
			}
			if snap.LastInstance != 90 || snap.LogIndex != 900 {
				t.Fatalf("loaded snapshot at %d/%d, want 90/900", snap.LastInstance, snap.LogIndex)
			}
			if !strings.Contains(string(snap.State), "state-9|") {
				t.Fatal("loaded snapshot carries the wrong state")
			}
		}
		check(b)
		b.Close()
		b = open()
		check(b)
	})
}

func TestDiskSnapshotIncrementalAndPruned(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(DiskConfig{Dir: dir, FullSnapshotEvery: 3, KeepChains: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := strings.Repeat("0123456789abcdef", 512) // 8 KiB
	for i := uint64(1); i <= 9; i++ {
		state := []byte(base + fmt.Sprintf("tail-%d", i)) // tiny change per checkpoint
		if err := d.SaveSnapshot(&snapshot.Snapshot{LastInstance: i, LogIndex: i, State: state}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fulls, deltas := 0, 0
	var deltaBytes, fullBytes int64
	for _, e := range entries {
		info, _ := e.Info()
		switch {
		case strings.HasSuffix(e.Name(), ckptFullSufx):
			fulls++
			fullBytes = info.Size()
		case strings.HasSuffix(e.Name(), ckptDeltaSufx):
			deltas++
			deltaBytes = info.Size()
		}
	}
	// Checkpoints 1..9 at FullEvery=3: fulls at 1,4,7 — KeepChains=2 keeps
	// the chains of 4 and 7, pruning everything below 4.
	if fulls != 2 || deltas != 4 {
		t.Fatalf("have %d full / %d delta checkpoints, want 2/4", fulls, deltas)
	}
	if deltaBytes >= fullBytes/4 {
		t.Fatalf("delta file %d bytes vs full %d: not incremental", deltaBytes, fullBytes)
	}
	snap, ok, err := d.LoadSnapshot()
	if err != nil || !ok || snap.LastInstance != 9 {
		t.Fatalf("load: snap=%+v ok=%v err=%v", snap, ok, err)
	}
	if got := string(snap.State); !strings.HasSuffix(got, "tail-9") {
		t.Fatalf("reconstructed state ends %q", got[len(got)-16:])
	}
	d.Close()

	// A rotted newest chain falls back to the older one.
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), "-delta") && strings.Contains(e.Name(), "00000009") {
			path := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(path)
			data[len(data)/2] ^= 0x40
			os.WriteFile(path, data, 0o644)
		}
	}
	d, err = OpenDisk(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	snap, ok, err = d.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("load after rot: ok=%v err=%v", ok, err)
	}
	if snap.LastInstance != 8 {
		t.Fatalf("load after rot picked instance %d, want 8 (the last clean link)", snap.LastInstance)
	}
}

// TestDiskWALCorruptionCorpus is the torn/corrupt-tail satellite: replay
// must stop cleanly at the first bad record — truncating it and everything
// after — and keep the clean prefix, for each corruption shape.
func TestDiskWALCorruptionCorpus(t *testing.T) {
	const records = 8
	build := func(t *testing.T) (string, int64) {
		dir := t.TempDir()
		d, err := OpenDisk(DiskConfig{Dir: dir, Fsync: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= records; i++ {
			if err := d.AppendWAL(i, model.Value(fmt.Sprintf("value-%d-%s", i, strings.Repeat("x", 100)))); err != nil {
				t.Fatal(err)
			}
		}
		d.Close()
		info, err := os.Stat(filepath.Join(dir, walName))
		if err != nil {
			t.Fatal(err)
		}
		return dir, info.Size()
	}

	// Each corruption returns the minimum number of records that must
	// survive (the prefix before the damage).
	recordSize := func(size int64) int64 { return (size - int64(len(walHeader))) / records }
	corpus := map[string]func(t *testing.T, dir string, size int64) int{
		"bit flip in final record": func(t *testing.T, dir string, size int64) int {
			flipAt(t, filepath.Join(dir, walName), size-10)
			return records - 1
		},
		"bit flip mid-log": func(t *testing.T, dir string, size int64) int {
			// Damage inside record 4: records 1-3 survive, 4.. are gone
			// (replay cannot resynchronize past an untrusted frame).
			flipAt(t, filepath.Join(dir, walName), int64(len(walHeader))+3*recordSize(size)+20)
			return 3
		},
		"short read (torn tail)": func(t *testing.T, dir string, size int64) int {
			if err := os.Truncate(filepath.Join(dir, walName), size-25); err != nil {
				t.Fatal(err)
			}
			return records - 1
		},
		"torn frame header": func(t *testing.T, dir string, size int64) int {
			if err := os.Truncate(filepath.Join(dir, walName), int64(len(walHeader))+(records-1)*recordSize(size)+5); err != nil {
				t.Fatal(err)
			}
			return records - 1
		},
		"garbage length prefix": func(t *testing.T, dir string, size int64) int {
			f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, int64(len(walHeader))+7*recordSize(size)); err != nil {
				t.Fatal(err)
			}
			return records - 1
		},
		"duplicate instance id": func(t *testing.T, dir string, size int64) int {
			// A duplicate appended behind the idempotence filter's back
			// (e.g. a crash between two truncate attempts): replay surfaces
			// both, the consumer keeps the first.
			src, err := os.ReadFile(filepath.Join(dir, walName))
			if err != nil {
				t.Fatal(err)
			}
			rec := src[int64(len(walHeader)) : int64(len(walHeader))+recordSize(size)]
			f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write(rec); err != nil {
				t.Fatal(err)
			}
			return records // all survive; the duplicate is extra
		},
	}

	for name, corrupt := range corpus {
		t.Run(name, func(t *testing.T) {
			dir, size := build(t)
			minSurvive := corrupt(t, dir, size)
			d, err := OpenDisk(DiskConfig{Dir: dir, Fsync: true, Logf: t.Logf})
			if err != nil {
				t.Fatalf("open after corruption: %v", err)
			}
			defer d.Close()
			seen := make(map[uint64]model.Value)
			if err := d.ReplayWAL(func(instance uint64, value model.Value) error {
				if prev, dup := seen[instance]; dup {
					if prev != value {
						t.Fatalf("instance %d replayed twice with different values", instance)
					}
					return nil
				}
				seen[instance] = value
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(seen) < minSurvive {
				t.Fatalf("%d records survived, want at least %d", len(seen), minSurvive)
			}
			// The surviving prefix is intact: instances 1..minSurvive with
			// their original payloads.
			for i := uint64(1); i <= uint64(minSurvive); i++ {
				want := model.Value(fmt.Sprintf("value-%d-%s", i, strings.Repeat("x", 100)))
				if seen[i] != want {
					t.Fatalf("instance %d payload corrupted after recovery", i)
				}
			}
			// The log accepts appends again after recovery, and they
			// survive another cycle.
			if err := d.AppendWAL(100, "after-recovery"); err != nil {
				t.Fatal(err)
			}
			d.Close()
			d2, err := OpenDisk(DiskConfig{Dir: dir, Fsync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			found := false
			if err := d2.ReplayWAL(func(instance uint64, value model.Value) error {
				if instance == 100 && value == "after-recovery" {
					found = true
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatal("post-recovery append lost")
			}
		})
	}
}

func flipAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func TestDiskFsyncBatch(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(DiskConfig{Dir: dir, Fsync: true, FsyncBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		if err := d.AppendWAL(i, "batched"); err != nil {
			t.Fatal(err)
		}
	}
	// Sync flushes the unsynced remainder (100 % 64) without error.
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d, err = OpenDisk(DiskConfig{Dir: dir, Fsync: true, FsyncBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if n := d.WALInstances(); n != 100 {
		t.Fatalf("recovered %d instances, want 100", n)
	}
}

func TestClosedBackendErrors(t *testing.T) {
	backends(t, func(t *testing.T, open func() Backend) {
		b := open()
		b.Close()
		if err := b.AppendWAL(1, "x"); err != ErrClosed {
			t.Fatalf("append on closed backend: %v", err)
		}
		if _, _, err := b.LoadSnapshot(); err != ErrClosed {
			t.Fatalf("load on closed backend: %v", err)
		}
	})
}
