package storage

import (
	"fmt"
	"strings"
	"testing"

	"genconsensus/internal/model"
)

// BenchmarkDiskWAL measures the write-ahead append across the durability
// matrix: fsync on/off × fsync batch 1/64. With fsync off the append is a
// page-cache write (process-crash durable); with fsync on every batch'th
// append pays a flush (power-loss durable, the last batch-1 records at
// risk). The value is a realistic decided batch of ~4 small commands.
func BenchmarkDiskWAL(b *testing.B) {
	value := model.Value(strings.Repeat("req-00000|SET|key-000|value-000000;", 4))
	for _, fsync := range []bool{true, false} {
		for _, batch := range []int{1, 64} {
			mode := "off"
			if fsync {
				mode = "on"
			}
			b.Run(fmt.Sprintf("fsync=%s/batch=%d", mode, batch), func(b *testing.B) {
				d, err := OpenDisk(DiskConfig{Dir: b.TempDir(), Fsync: fsync, FsyncBatch: batch})
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				b.SetBytes(int64(len(value) + 16))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := d.AppendWAL(uint64(i+1), value); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if err := d.Sync(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
