package storage

import (
	"fmt"
	"testing"
	"time"

	"genconsensus/internal/model"
)

// TestDiskCompactionStallNeverBlocksAppend pins the satellite guarantee of
// the background compactor: a WAL rewrite that takes arbitrarily long must
// not block the commit path (AppendWAL) or the logical view of the log.
func TestDiskCompactionStallNeverBlocksAppend(t *testing.T) {
	d, err := OpenDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Stall every rewrite until released; entered signals the compactor is
	// inside the stalled (unlocked) phase.
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	d.mu.Lock()
	d.compactHook = func() {
		entered <- struct{}{}
		<-release
	}
	d.mu.Unlock()

	for i := uint64(1); i <= 10; i++ {
		if err := d.AppendWAL(i, model.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate returns immediately even though the rewrite cannot proceed.
	start := time.Now()
	if err := d.TruncateWAL(5); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("TruncateWAL blocked %v on a stalled compactor", waited)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("compactor never started")
	}

	// With the compactor wedged mid-rewrite, appends must still land
	// promptly — this is the LogDecision path of every commit.
	appendDone := make(chan error, 1)
	go func() {
		for i := uint64(11); i <= 200; i++ {
			if err := d.AppendWAL(i, model.Value(fmt.Sprintf("v%d", i))); err != nil {
				appendDone <- err
				return
			}
		}
		appendDone <- nil
	}()
	select {
	case err := <-appendDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AppendWAL blocked behind a stalled compaction")
	}

	// The logical view reflects the truncation even before the rewrite.
	if got := records(t, d); len(got) != 195 || got[0].instance != 6 {
		t.Fatalf("replay during stalled compaction: %d records, first %+v", len(got), got[0])
	}

	// Release the compactor and wait it out: the physical log now matches
	// the logical view and survives a reopen.
	close(release)
	d.CompactWait()
	d.mu.Lock()
	d.compactHook = nil
	d.mu.Unlock()
	if got := records(t, d); len(got) != 195 || got[0].instance != 6 || got[194].instance != 200 {
		t.Fatalf("replay after compaction: %d records", len(got))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = OpenDisk(DiskConfig{Dir: d.cfg.Dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := records(t, d); len(got) != 195 || got[0].instance != 6 {
		t.Fatalf("replay after reopen: %d records", len(got))
	}
}

// TestDiskCompactionCoalesces checks that watermarks enqueued while a
// rewrite is stalled merge: the eventual rewrite applies the newest one,
// and re-decided instances appended after their truncation survive.
func TestDiskCompactionCoalesces(t *testing.T) {
	d, err := OpenDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	d.mu.Lock()
	d.compactHook = func() {
		entered <- struct{}{}
		<-release
	}
	d.mu.Unlock()

	for i := uint64(1); i <= 20; i++ {
		if err := d.AppendWAL(i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.TruncateWAL(5); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := d.TruncateWAL(12); err != nil {
		t.Fatal(err)
	}
	// A truncated instance re-decided after the newest watermark survives.
	if err := d.AppendWAL(3, "re-decided"); err != nil {
		t.Fatal(err)
	}
	close(release)
	d.CompactWait()
	d.mu.Lock()
	d.compactHook = nil
	d.mu.Unlock()

	got := records(t, d)
	want := []uint64{13, 14, 15, 16, 17, 18, 19, 20, 3}
	if len(got) != len(want) {
		t.Fatalf("replay after coalesced compaction: %+v", got)
	}
	for i, inst := range want {
		if got[i].instance != inst {
			t.Fatalf("record %d = %+v, want instance %d", i, got[i], inst)
		}
	}
}

func records(t *testing.T, b Backend) []memRecord {
	t.Helper()
	var got []memRecord
	if err := b.ReplayWAL(func(instance uint64, value model.Value) error {
		got = append(got, memRecord{instance, value})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}
