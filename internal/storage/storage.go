// Package storage is the durability substrate of the SMR stack: a
// write-ahead log of decided consensus instances plus a snapshot store,
// behind one Backend interface with two implementations — Memory (the
// default: everything dies with the process, exactly the pre-durability
// behaviour, and the simulator's stand-in for a disk image that survives a
// power cycle) and Disk (a CRC-framed, fsync-batched WAL plus atomic,
// digest-verified, incrementally-encoded checkpoint files).
//
// The division of labour with the layers above:
//
//   - Decisions are appended write-ahead: the SMR layer calls AppendWAL the
//     moment an instance's decision is known — before the decided batch is
//     applied to the state machine — so a replica that loses power
//     mid-apply replays the decision instead of forgetting it. Appends are
//     idempotent per instance (decisions are final; re-delivery and replay
//     re-appends are dropped) and may arrive out of instance order
//     (pipelined instances decide out of order); replay preserves append
//     order and leaves reordering to the commit queue.
//
//   - Checkpoints truncate: when a snapshot manager checkpoints at instance
//     k it calls SaveSnapshot then TruncateWAL(k), so the WAL only ever
//     holds the window between the newest durable checkpoint and the head.
//     Recovery is LoadSnapshot + ReplayWAL, in that order.
//
//   - Verification is local: LoadSnapshot returns only digest-verified
//     checkpoints and ReplayWAL only CRC-clean records. Cross-replica
//     verification (b+1 matching digests against forged state) remains the
//     transfer layer's job — a replica's own disk is trusted the way its
//     own memory is, but bit rot and torn writes are not.
package storage

import (
	"errors"
	"sync"

	"genconsensus/internal/model"
	"genconsensus/internal/snapshot"
)

// Backend is one replica's durable storage: the write-ahead decision log
// and the checkpoint store. Implementations are safe for concurrent use.
type Backend interface {
	// AppendWAL durably records instance's decided value. Idempotent per
	// retained instance: re-appends of an instance still in the log are
	// dropped without error. Instances already truncated beneath a
	// checkpoint are forgotten — keeping them out of the WAL is the
	// caller's job (the commit-queue watermark never delivers below the
	// installed checkpoint).
	AppendWAL(instance uint64, value model.Value) error
	// ReplayWAL visits every retained record in append order (which may
	// not be instance order — see the package comment). A non-nil error
	// from fn aborts the replay and is returned.
	ReplayWAL(fn func(instance uint64, value model.Value) error) error
	// TruncateWAL drops every record with instance ≤ through — the records
	// a checkpoint at `through` covers. The drop is immediate in every
	// observable way (ReplayWAL, the append dedup filter) but the physical
	// reclamation may happen asynchronously: Disk rewrites the log on a
	// background compactor so the commit path never waits, and a crash
	// before the rewrite merely replays records the recovery path filters
	// against the checkpoint anyway.
	TruncateWAL(through uint64) error
	// SaveSnapshot durably records a checkpoint. Snapshots at or below the
	// newest stored checkpoint are dropped without error.
	SaveSnapshot(snap *snapshot.Snapshot) error
	// LoadSnapshot returns the newest verified checkpoint, or ok=false
	// when none is stored (or none survives verification).
	LoadSnapshot() (snap *snapshot.Snapshot, ok bool, err error)
	// Sync flushes any batched writes to stable storage.
	Sync() error
	// Close syncs and releases the backend. The backend is unusable after.
	Close() error
}

// ErrClosed reports an operation on a closed backend.
var ErrClosed = errors.New("storage: backend closed")

// Memory is the in-memory Backend: nothing is durable across a process
// exit, but the value survives as long as the Memory itself does — the
// simulator hands the same Memory to a replica rebuilt after a simulated
// power cycle, making it the sim's disk image.
type Memory struct {
	mu      sync.Mutex
	records []memRecord
	have    map[uint64]struct{}
	snap    *snapshot.Snapshot
	closed  bool
}

type memRecord struct {
	instance uint64
	value    model.Value
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{have: make(map[uint64]struct{})}
}

// AppendWAL implements Backend.
func (m *Memory) AppendWAL(instance uint64, value model.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, dup := m.have[instance]; dup {
		return nil
	}
	m.have[instance] = struct{}{}
	m.records = append(m.records, memRecord{instance, value})
	return nil
}

// ReplayWAL implements Backend.
func (m *Memory) ReplayWAL(fn func(instance uint64, value model.Value) error) error {
	m.mu.Lock()
	records := append([]memRecord(nil), m.records...)
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	for _, r := range records {
		if err := fn(r.instance, r.value); err != nil {
			return err
		}
	}
	return nil
}

// TruncateWAL implements Backend.
func (m *Memory) TruncateWAL(through uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	kept := m.records[:0]
	for _, r := range m.records {
		if r.instance > through {
			kept = append(kept, r)
		} else {
			delete(m.have, r.instance)
		}
	}
	// Fresh backing array so dropped values are actually released.
	m.records = append([]memRecord(nil), kept...)
	return nil
}

// SaveSnapshot implements Backend.
func (m *Memory) SaveSnapshot(snap *snapshot.Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.snap != nil && snap.LastInstance <= m.snap.LastInstance {
		return nil
	}
	m.snap = &snapshot.Snapshot{
		LastInstance: snap.LastInstance,
		LogIndex:     snap.LogIndex,
		State:        append([]byte(nil), snap.State...),
	}
	return nil
}

// LoadSnapshot implements Backend.
func (m *Memory) LoadSnapshot() (*snapshot.Snapshot, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	if m.snap == nil {
		return nil, false, nil
	}
	return &snapshot.Snapshot{
		LastInstance: m.snap.LastInstance,
		LogIndex:     m.snap.LogIndex,
		State:        append([]byte(nil), m.snap.State...),
	}, true, nil
}

// Sync implements Backend (a no-op in memory).
func (m *Memory) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Backend. A Memory is reusable as a disk image after
// Close only through Reopen (the simulated power cycle).
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Reopen revives a closed Memory with its contents intact: the simulator's
// power cycle closes every replica's backend with the replica and reopens
// the same object for the restarted one, like a disk remounted at boot.
func (m *Memory) Reopen() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = false
}

// WALLen reports how many records the WAL retains (tests and metrics).
func (m *Memory) WALLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}
