package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"genconsensus/internal/model"
)

// The WAL is one append-only file of CRC-framed records:
//
//	file   := header record*
//	header := "GCWAL1\n\x00"                     (8 bytes)
//	record := bodyLen(u32) crc32(u32) body       (crc32 = IEEE over body)
//	body   := instance(u64) value
//
// A record is trusted only if its frame is complete AND its CRC matches: a
// torn final write (power loss mid-append) fails one of the two and marks
// the end of the usable log. Open truncates the file back to the last good
// record, so the tear never propagates — everything before it replays,
// everything after it is gone, and the next append continues cleanly.
const (
	walHeader = "GCWAL1\n\x00"
	walName   = "wal.log"

	// maxWALBody bounds one record's body (16 MiB): decided values are at
	// most a batch (32 KiB today), so anything bigger is corruption — a
	// garbage length prefix must not drive a giant allocation.
	maxWALBody = 16 << 20
)

// wal is the disk write-ahead decision log. Callers serialize access (the
// Disk backend holds its mutex across every call).
type wal struct {
	path  string
	f     *os.File
	fsync bool
	batch int         // fsync every batch appends (1 = every append)
	m     diskMetrics // set by OpenDisk; zero value = disabled

	unsynced int
	have     map[uint64]struct{}
	// Pending logical truncation, applied physically by the background
	// compactor. truncateEnqueue removes the instances from `have` and
	// records (watermark, end-of-log offset) here; until the rewrite runs,
	// replay drops any record with instance ≤ pendThrough that sits below
	// pendOffset — exactly the records a synchronous truncate would have
	// removed — so callers observe truncation immediately while the commit
	// path never waits for the rewrite.
	pendSet     bool
	pendThrough uint64
	pendOffset  int64
	// size is the offset of the end of the last good record: appends that
	// fail partway are rolled back to it so a torn frame can never orphan
	// the appends after it.
	size int64
	// broken latches a failed rollback: the file may end in a torn frame
	// that would silently swallow later appends, so every further append
	// must error rather than claim durability.
	broken bool
	// tornBytes reports how many trailing bytes the last open discarded
	// (observability for recovery logs and tests).
	tornBytes int64
}

// encodeRecord frames one record: bodyLen, crc32 over the body, then the
// body (instance + value). The single encoder keeps append and truncate
// byte-identical.
func encodeRecord(instance uint64, value model.Value) []byte {
	body := make([]byte, 8, 8+len(value))
	binary.BigEndian.PutUint64(body, instance)
	body = append(body, value...)
	rec := make([]byte, 8, 8+len(body))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(body))
	return append(rec, body...)
}

// openWAL opens (or creates) the WAL in dir, scanning it to rebuild the
// instance set and truncating any torn tail.
func openWAL(dir string, fsync bool, batch int) (*wal, error) {
	if batch < 1 {
		batch = 1
	}
	w := &wal{
		path:  filepath.Join(dir, walName),
		fsync: fsync,
		batch: batch,
		have:  make(map[uint64]struct{}),
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening wal: %w", err)
	}
	w.f = f
	if err := w.recover(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return w, nil
}

// recover validates the header, scans every record into the instance set
// and truncates the file after the last good record.
func (w *wal) recover() error {
	info, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("storage: wal stat: %w", err)
	}
	size := info.Size()
	if size < int64(len(walHeader)) {
		// Empty or torn header: nothing recorded yet, start fresh.
		w.tornBytes = size
		return w.reset()
	}
	header := make([]byte, len(walHeader))
	if _, err := w.f.ReadAt(header, 0); err != nil {
		return fmt.Errorf("storage: wal header: %w", err)
	}
	if string(header) != walHeader {
		return fmt.Errorf("storage: %s is not a WAL (bad header)", w.path)
	}
	good, err := w.scan(func(instance uint64, _ model.Value) error {
		w.have[instance] = struct{}{}
		return nil
	})
	if err != nil {
		return err
	}
	if good < size {
		w.tornBytes = size - good
		if err := w.f.Truncate(good); err != nil {
			return fmt.Errorf("storage: truncating torn wal tail: %w", err)
		}
		if err := w.syncFile(); err != nil {
			return err
		}
	}
	w.size = good
	if _, err := w.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("storage: wal seek: %w", err)
	}
	return nil
}

// reset truncates the WAL to a fresh header.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: resetting wal: %w", err)
	}
	if _, err := w.f.WriteAt([]byte(walHeader), 0); err != nil {
		return fmt.Errorf("storage: writing wal header: %w", err)
	}
	w.size = int64(len(walHeader))
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return fmt.Errorf("storage: wal seek: %w", err)
	}
	return w.syncFile()
}

// scan walks the record stream from the start, calling fn for every
// CRC-clean record with the offset its frame starts at, and returns the
// offset just past the last good record. Corruption (bad length, CRC
// mismatch, short read) ends the scan without error: the tear boundary is
// data, not failure. Reading goes through a SectionReader (pread), so a
// scan over a bounded prefix is safe concurrently with appends at the end
// of the file — the property the background compactor relies on.
func scanRecords(f *os.File, limit int64, fn func(off int64, instance uint64, value model.Value) error) (int64, error) {
	r := io.NewSectionReader(f, 0, limit)
	if _, err := r.Seek(int64(len(walHeader)), io.SeekStart); err != nil {
		return 0, err
	}
	good := int64(len(walHeader))
	frame := make([]byte, 8)
	var body []byte
	for {
		if _, err := io.ReadFull(r, frame); err != nil {
			return good, nil // clean EOF or torn frame: stop here
		}
		bodyLen := binary.BigEndian.Uint32(frame[0:4])
		sum := binary.BigEndian.Uint32(frame[4:8])
		if bodyLen < 8 || bodyLen > maxWALBody {
			return good, nil // garbage length: torn or corrupt
		}
		if cap(body) < int(bodyLen) {
			body = make([]byte, bodyLen)
		}
		body = body[:bodyLen]
		if _, err := io.ReadFull(r, body); err != nil {
			return good, nil // short read: torn final record
		}
		if crc32.ChecksumIEEE(body) != sum {
			return good, nil // bit rot or tear inside the record
		}
		instance := binary.BigEndian.Uint64(body[0:8])
		if err := fn(good, instance, model.Value(body[8:])); err != nil {
			return good, err
		}
		good += int64(8 + len(body))
	}
}

func (w *wal) scan(fn func(instance uint64, value model.Value) error) (int64, error) {
	return scanRecords(w.f, 1<<62, func(_ int64, instance uint64, value model.Value) error {
		return fn(instance, value)
	})
}

// replay is scan minus the logically truncated records: anything a pending
// (not yet physically compacted) truncation covers is skipped, so callers
// see the same stream a synchronous truncate would have left.
func (w *wal) replay(fn func(instance uint64, value model.Value) error) error {
	_, err := scanRecords(w.f, 1<<62, func(off int64, instance uint64, value model.Value) error {
		if w.truncated(off, instance) {
			return nil
		}
		return fn(instance, value)
	})
	return err
}

// truncated reports whether a record at the given offset is covered by the
// pending truncation: at or below the watermark AND written before the
// truncate was enqueued. The offset bound keeps a legitimately re-decided
// instance (re-appended after the truncate) alive.
func (w *wal) truncated(off int64, instance uint64) bool {
	return w.pendSet && instance <= w.pendThrough && off < w.pendOffset
}

// append writes one record (write-ahead of the apply), honouring the fsync
// batch. Duplicate instances are dropped: decisions are final. A failed
// write is rolled back to the last good record so a torn frame cannot sit
// mid-file and silently orphan every later append (scan stops at the first
// bad frame); if even the rollback fails, the log latches broken and every
// further append errors instead of claiming durability it cannot deliver.
func (w *wal) append(instance uint64, value model.Value) error {
	if w.broken {
		return fmt.Errorf("storage: wal %s: unrecovered partial write, appends disabled", w.path)
	}
	if _, dup := w.have[instance]; dup {
		return nil
	}
	rec := encodeRecord(instance, value)
	if _, err := w.f.Write(rec); err != nil {
		if terr := w.f.Truncate(w.size); terr != nil {
			w.broken = true
			return fmt.Errorf("storage: wal append: %w (rollback failed: %v)", err, terr)
		}
		if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
			w.broken = true
			return fmt.Errorf("storage: wal append: %w (reseek failed: %v)", err, serr)
		}
		return fmt.Errorf("storage: wal append: %w", err)
	}
	w.size += int64(len(rec))
	w.have[instance] = struct{}{}
	w.m.walAppends.Inc()
	w.m.walBytes.Add(uint64(len(rec)))
	w.unsynced++
	if w.fsync && w.unsynced >= w.batch {
		return w.sync()
	}
	return nil
}

// sync flushes batched appends to stable storage.
func (w *wal) sync() error {
	if w.unsynced == 0 {
		return nil
	}
	if err := w.syncFile(); err != nil {
		return err
	}
	w.unsynced = 0
	return nil
}

func (w *wal) syncFile() error {
	if !w.fsync {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: wal fsync: %w", err)
	}
	w.m.walFsyncNS.ObserveSince(start)
	return nil
}

// truncateEnqueue applies a truncation logically — instances at or below
// the watermark leave the dedup set immediately, and replay starts
// filtering them — and records the (watermark, end-of-log offset) pair for
// the background compactor. It reports whether there is anything for the
// compactor to do. When nothing falls below the boundary — every boot-time
// re-Install of the already-persisted newest checkpoint lands here — it is
// a no-op.
func (w *wal) truncateEnqueue(through uint64) bool {
	drop := false
	for instance := range w.have {
		if instance <= through {
			delete(w.have, instance)
			drop = true
		}
	}
	if !drop {
		return false
	}
	// Merging with an earlier pending truncation keeps the larger
	// watermark and advances the offset bound to now — exactly the records
	// a synchronous truncate at `through` would remove at this moment.
	if !w.pendSet || through >= w.pendThrough {
		w.pendThrough = through
		w.pendOffset = w.size
		w.pendSet = true
	}
	return true
}

// compactScan is the unlocked phase of a WAL rewrite: it copies every
// surviving record (instance > through) from the frozen prefix [0, limit)
// of f into a fresh temp file. It reads via pread only, so appends landing
// past `limit` concurrently are unaffected; the locked compactFinish phase
// copies them over verbatim afterwards. Only the compactor calls this.
func compactScan(path string, f *os.File, through uint64, limit int64) (*os.File, int64, error) {
	tmpPath := path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: wal compact: %w", err)
	}
	if _, err := tmp.Write([]byte(walHeader)); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpPath)
		return nil, 0, fmt.Errorf("storage: wal compact: %w", err)
	}
	size := int64(len(walHeader))
	if _, err := scanRecords(f, limit, func(_ int64, instance uint64, value model.Value) error {
		if instance <= through {
			return nil
		}
		rec := encodeRecord(instance, value)
		if _, err := tmp.Write(rec); err != nil {
			return err
		}
		size += int64(len(rec))
		return nil
	}); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpPath)
		return nil, 0, fmt.Errorf("storage: wal compact: %w", err)
	}
	return tmp, size, nil
}

// compactFinish is the locked phase of a WAL rewrite (the caller holds the
// Disk mutex): it appends the tail the log grew past `limit` during the
// unlocked scan to the temp file verbatim, makes the temp file durable,
// atomically replaces the log with it, and swaps the handle. The tail copy
// is bounded by how much the log grew during the scan, so the lock is held
// for a short, bounded time — the commit path never waits out a full
// rewrite.
func (w *wal) compactFinish(tmp *os.File, tmpSize, limit int64, through uint64) error {
	tmpPath := w.path + ".tmp"
	scanSize := tmpSize // end of the rewritten prefix, before the tail copy
	fail := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmpPath)
		return err
	}
	buf := make([]byte, 64<<10)
	for off := limit; off < w.size; {
		n := w.size - off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if _, err := w.f.ReadAt(buf[:n], off); err != nil {
			return fail(fmt.Errorf("storage: wal compact tail read: %w", err))
		}
		if _, err := tmp.Write(buf[:n]); err != nil {
			return fail(fmt.Errorf("storage: wal compact tail write: %w", err))
		}
		off += n
		tmpSize += n
	}
	if w.fsync {
		if err := tmp.Sync(); err != nil {
			return fail(fmt.Errorf("storage: wal compact fsync: %w", err))
		}
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("storage: wal compact: %w", err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("storage: wal compact rename: %w", err)
	}
	_ = w.f.Close()
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: reopening wal: %w", err)
	}
	if _, err := f.Seek(tmpSize, io.SeekStart); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: wal seek: %w", err)
	}
	w.f = f
	w.size = tmpSize
	w.unsynced = 0
	w.broken = false
	// The pending truncation we captured is done; a newer watermark merged
	// in mid-rewrite keeps filtering replay, with its offset bound
	// translated into the new file: bytes past `limit` were copied
	// verbatim to `scanSize`, so old offset o ≥ limit lands at
	// scanSize + (o - limit). The translation is exact — a record
	// appended after the newer truncate stays past its bound and
	// survives, just as it would under a synchronous truncate.
	if w.pendSet {
		if w.pendThrough <= through && w.pendOffset <= limit {
			w.pendSet = false
		} else if w.pendOffset >= limit {
			w.pendOffset = scanSize + (w.pendOffset - limit)
		}
	}
	return syncDir(filepath.Dir(w.path), w.fsync)
}

// close syncs and releases the file.
func (w *wal) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string, fsync bool) error {
	if !fsync {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: opening dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: dir fsync: %w", err)
	}
	return nil
}
