package storage

import (
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"genconsensus/internal/snapshot"
)

// The snapshot store keeps one incremental checkpoint chain per directory:
//
//	ckpt-<instance>-full    every FullEvery-th checkpoint: the whole state
//	ckpt-<instance>-delta   the rest: a delta against the previous link
//
// Each file is EncodeCheckpoint bytes followed by a sha256 footer over
// them, written to a temp name and renamed into place — a crash mid-write
// leaves a temp file the next open ignores, never a half checkpoint under
// a real name. Load walks the newest chain (newest full checkpoint plus
// every delta after it) through the chain-digest verifier; if any link
// fails, the next-older chain is tried, so one rotted file costs one
// checkpoint interval, not the whole store. Pruning keeps the last
// KeepChains chains.
const (
	ckptPrefix    = "ckpt-"
	ckptFullSufx  = "-full"
	ckptDeltaSufx = "-delta"
	ckptTmpSufx   = ".tmp"
)

// snapStore is the disk checkpoint store. Callers serialize access.
type snapStore struct {
	dir        string
	fsync      bool
	keepChains int
	enc        snapshot.IncrementalEncoder
	newest     uint64      // newest stored checkpoint instance (0 = none)
	m          diskMetrics // set by OpenDisk; zero value = disabled
}

// openSnapStore scans dir for existing checkpoints, clears stale temp
// files and positions the encoder (a reopened store re-keys with a full
// checkpoint; deltas resume after it).
func openSnapStore(dir string, fsync bool, fullEvery, keepChains int) (*snapStore, error) {
	if fullEvery < 1 {
		fullEvery = 1
	}
	if keepChains < 1 {
		keepChains = 1
	}
	s := &snapStore{dir: dir, fsync: fsync, keepChains: keepChains}
	s.enc.FullEvery = fullEvery
	files, err := s.list()
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		if f.instance > s.newest {
			s.newest = f.instance
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: scanning snapshots: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ckptTmpSufx) {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return s, nil
}

// ckptFile is one parsed checkpoint filename.
type ckptFile struct {
	name     string
	instance uint64
	full     bool
}

// list returns every checkpoint file sorted by instance ascending.
func (s *snapStore) list() ([]ckptFile, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: scanning snapshots: %w", err)
	}
	files := make([]ckptFile, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) {
			continue
		}
		rest := strings.TrimPrefix(name, ckptPrefix)
		full := strings.HasSuffix(rest, ckptFullSufx)
		delta := strings.HasSuffix(rest, ckptDeltaSufx)
		if !full && !delta {
			continue
		}
		rest = strings.TrimSuffix(strings.TrimSuffix(rest, ckptFullSufx), ckptDeltaSufx)
		var instance uint64
		if _, err := fmt.Sscanf(rest, "%020d", &instance); err != nil {
			continue
		}
		files = append(files, ckptFile{name: name, instance: instance, full: full})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].instance < files[j].instance })
	return files, nil
}

// save encodes the next chain link for snap and writes it atomically.
// Snapshots at or below the newest stored checkpoint are dropped. A failed
// write resets the encoder: Encode already advanced the chain past a link
// that never reached the disk, and a later delta based on the missing link
// would verify nowhere — re-keying with a full checkpoint on the next save
// keeps every on-disk chain walkable.
func (s *snapStore) save(snap *snapshot.Snapshot) error {
	if s.newest != 0 && snap.LastInstance <= s.newest {
		return nil
	}
	c := s.enc.Encode(snap)
	if err := s.write(snap.LastInstance, c); err != nil {
		s.enc.Reset()
		return err
	}
	s.newest = snap.LastInstance
	return s.prune()
}

// write puts one encoded checkpoint link on disk, atomically.
func (s *snapStore) write(instance uint64, c *snapshot.Checkpoint) error {
	enc := snapshot.EncodeCheckpoint(c)
	sum := sha256.Sum256(enc)
	suffix := ckptDeltaSufx
	if c.Kind == snapshot.FullCheckpoint {
		suffix = ckptFullSufx
	}
	name := fmt.Sprintf("%s%020d%s", ckptPrefix, instance, suffix)
	path := filepath.Join(s.dir, name)
	tmpPath := path + ckptTmpSufx
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: writing checkpoint: %w", err)
	}
	defer func() {
		if tmp != nil {
			_ = tmp.Close()
			_ = os.Remove(tmpPath)
		}
	}()
	if _, err := tmp.Write(enc); err != nil {
		return fmt.Errorf("storage: writing checkpoint: %w", err)
	}
	if _, err := tmp.Write(sum[:]); err != nil {
		return fmt.Errorf("storage: writing checkpoint: %w", err)
	}
	if s.fsync {
		if err := tmp.Sync(); err != nil {
			return fmt.Errorf("storage: checkpoint fsync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: writing checkpoint: %w", err)
	}
	tmp = nil
	if err := os.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("storage: checkpoint rename: %w", err)
	}
	if c.Kind == snapshot.FullCheckpoint {
		s.m.ckptFullBytes.Add(uint64(len(enc)))
	} else {
		s.m.ckptDeltaBytes.Add(uint64(len(enc)))
	}
	return syncDir(s.dir, s.fsync)
}

// prune deletes checkpoints older than the KeepChains-th newest full
// checkpoint (a delta is useless without its chain, so chains are the
// retention unit).
func (s *snapStore) prune() error {
	files, err := s.list()
	if err != nil {
		return err
	}
	fulls := 0
	for _, f := range files {
		if f.full {
			fulls++
		}
	}
	if fulls <= s.keepChains {
		return nil
	}
	drop := fulls - s.keepChains
	var cutoff uint64
	seen := 0
	for _, f := range files {
		if !f.full {
			continue
		}
		seen++
		if seen == drop+1 {
			cutoff = f.instance
			break
		}
	}
	for _, f := range files {
		if f.instance < cutoff {
			_ = os.Remove(filepath.Join(s.dir, f.name))
		}
	}
	return nil
}

// readCheckpoint loads and verifies one checkpoint file.
func (s *snapStore) readCheckpoint(name string) (*snapshot.Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("storage: reading checkpoint %s: %w", name, err)
	}
	if len(data) < sha256.Size {
		return nil, fmt.Errorf("storage: checkpoint %s truncated", name)
	}
	enc, footer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(enc)
	if subtle.ConstantTimeCompare(sum[:], footer) != 1 {
		return nil, fmt.Errorf("storage: checkpoint %s digest mismatch", name)
	}
	return snapshot.DecodeCheckpoint(enc)
}

// load reconstructs the newest verifiable snapshot: walk chains newest
// first, applying full + deltas through the chain-digest verifier, and
// return the deepest link that verifies.
func (s *snapStore) load() (*snapshot.Snapshot, bool, error) {
	files, err := s.list()
	if err != nil {
		return nil, false, err
	}
	// Chain start indices (full checkpoints), newest first.
	starts := make([]int, 0, 4)
	for i, f := range files {
		if f.full {
			starts = append(starts, i)
		}
	}
	for chain := len(starts) - 1; chain >= 0; chain-- {
		start := starts[chain]
		var dec snapshot.IncrementalDecoder
		var best *snapshot.Snapshot
		for i := start; i < len(files); i++ {
			if i > start && files[i].full {
				break // the next chain starts here; its links verified already
			}
			c, err := s.readCheckpoint(files[i].name)
			if err != nil {
				break // rotted link: the chain ends at the previous one
			}
			snap, err := dec.Apply(c)
			if err != nil {
				break
			}
			best = snap
		}
		if best != nil {
			return best, true, nil
		}
	}
	return nil, false, nil
}
