package storage

import (
	"fmt"
	"os"
	"sync"

	"genconsensus/internal/model"
	"genconsensus/internal/snapshot"
)

// DiskConfig parameterizes a Disk backend.
type DiskConfig struct {
	// Dir is this replica's data directory (created if missing). One
	// replica per directory.
	Dir string
	// Fsync makes appends and checkpoint writes durable against power
	// loss. Off, writes still reach the files (and survive a process
	// restart) but ride the OS page cache.
	Fsync bool
	// FsyncBatch amortizes fsync over that many WAL appends (default 1:
	// every append). Larger batches trade the last FsyncBatch-1 decisions
	// under power loss for an order of magnitude of append throughput.
	FsyncBatch int
	// FullSnapshotEvery makes every k-th checkpoint full, the rest deltas
	// against their predecessor (default 4; 1 disables deltas).
	FullSnapshotEvery int
	// KeepChains bounds the checkpoint history to the last k full-snapshot
	// chains (default 2).
	KeepChains int
	// Logf receives recovery notices, e.g. torn-tail truncations (nil =
	// silent).
	Logf func(format string, args ...any)
}

// Disk is the durable Backend: a WAL file plus a checkpoint directory.
type Disk struct {
	cfg DiskConfig

	mu     sync.Mutex
	wal    *wal
	snaps  *snapStore
	closed bool
}

// OpenDisk opens (or initializes) a replica's data directory, recovering
// the WAL — validating every record's CRC and truncating a torn tail — and
// indexing the stored checkpoints.
func OpenDisk(cfg DiskConfig) (*Disk, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("storage: DiskConfig.Dir is required")
	}
	if cfg.FsyncBatch < 1 {
		cfg.FsyncBatch = 1
	}
	if cfg.FullSnapshotEvery < 1 {
		cfg.FullSnapshotEvery = 4
	}
	if cfg.KeepChains < 1 {
		cfg.KeepChains = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating data dir: %w", err)
	}
	w, err := openWAL(cfg.Dir, cfg.Fsync, cfg.FsyncBatch)
	if err != nil {
		return nil, err
	}
	if w.tornBytes > 0 {
		cfg.Logf("storage: %s: discarded %d torn trailing bytes", cfg.Dir, w.tornBytes)
	}
	s, err := openSnapStore(cfg.Dir, cfg.Fsync, cfg.FullSnapshotEvery, cfg.KeepChains)
	if err != nil {
		_ = w.close()
		return nil, err
	}
	return &Disk{cfg: cfg, wal: w, snaps: s}, nil
}

// AppendWAL implements Backend.
func (d *Disk) AppendWAL(instance uint64, value model.Value) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.wal.append(instance, value)
}

// ReplayWAL implements Backend.
func (d *Disk) ReplayWAL(fn func(instance uint64, value model.Value) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	_, err := d.wal.scan(fn)
	return err
}

// TruncateWAL implements Backend.
func (d *Disk) TruncateWAL(through uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.wal.truncate(through)
}

// SaveSnapshot implements Backend.
func (d *Disk) SaveSnapshot(snap *snapshot.Snapshot) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.snaps.save(snap)
}

// LoadSnapshot implements Backend.
func (d *Disk) LoadSnapshot() (*snapshot.Snapshot, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false, ErrClosed
	}
	return d.snaps.load()
}

// Sync implements Backend.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.wal.sync()
}

// Close implements Backend.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.wal.close()
}

// WALInstances reports how many instances the WAL retains (tests, metrics).
func (d *Disk) WALInstances() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.wal.have)
}
