package storage

import (
	"fmt"
	"os"
	"sync"

	"genconsensus/internal/model"
	"genconsensus/internal/obs"
	"genconsensus/internal/snapshot"
)

// DiskConfig parameterizes a Disk backend.
type DiskConfig struct {
	// Dir is this replica's data directory (created if missing). One
	// replica per directory.
	Dir string
	// Fsync makes appends and checkpoint writes durable against power
	// loss. Off, writes still reach the files (and survive a process
	// restart) but ride the OS page cache.
	Fsync bool
	// FsyncBatch amortizes fsync over that many WAL appends (default 1:
	// every append). Larger batches trade the last FsyncBatch-1 decisions
	// under power loss for an order of magnitude of append throughput.
	FsyncBatch int
	// FullSnapshotEvery makes every k-th checkpoint full, the rest deltas
	// against their predecessor (default 4; 1 disables deltas).
	FullSnapshotEvery int
	// KeepChains bounds the checkpoint history to the last k full-snapshot
	// chains (default 2).
	KeepChains int
	// Logf receives recovery notices, e.g. torn-tail truncations (nil =
	// silent).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the backend's instrument set (WAL
	// appends and bytes, fsync latency, compaction runs, checkpoint bytes
	// full-vs-delta), named under MetricsPrefix. Nil disables metrics.
	Metrics *obs.Registry
	// MetricsPrefix namespaces this backend's metrics (e.g. "g2." for a
	// per-group backend). Empty is fine for a single-backend process.
	MetricsPrefix string
}

// Disk is the durable Backend: a WAL file plus a checkpoint directory.
//
// WAL truncation is asynchronous: TruncateWAL applies the watermark
// logically (replay and the dedup filter observe it immediately) and a
// background compactor goroutine performs the physical rewrite, so the
// commit path never waits out a log rewrite. Close drains the compactor
// before releasing the files.
type Disk struct {
	cfg DiskConfig
	m   diskMetrics // resolved at OpenDisk; zero value = disabled

	mu     sync.Mutex
	wal    *wal
	snaps  *snapStore
	closed bool

	compacting  bool       // a rewrite is in flight
	compactErr  error      // last rewrite failure (pending watermark kept)
	compactIdle *sync.Cond // broadcast when the compactor goes idle
	compactHook func()     // test hook, called unlocked before each rewrite

	compactKick chan struct{}
	compactStop chan struct{}
	compactDone chan struct{}
	stopOnce    sync.Once
}

// OpenDisk opens (or initializes) a replica's data directory, recovering
// the WAL — validating every record's CRC and truncating a torn tail — and
// indexing the stored checkpoints.
func OpenDisk(cfg DiskConfig) (*Disk, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("storage: DiskConfig.Dir is required")
	}
	if cfg.FsyncBatch < 1 {
		cfg.FsyncBatch = 1
	}
	if cfg.FullSnapshotEvery < 1 {
		cfg.FullSnapshotEvery = 4
	}
	if cfg.KeepChains < 1 {
		cfg.KeepChains = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating data dir: %w", err)
	}
	m := resolveDiskMetrics(cfg.Metrics, cfg.MetricsPrefix)
	w, err := openWAL(cfg.Dir, cfg.Fsync, cfg.FsyncBatch)
	if err != nil {
		return nil, err
	}
	w.m = m
	if w.tornBytes > 0 {
		cfg.Logf("storage: %s: discarded %d torn trailing bytes", cfg.Dir, w.tornBytes)
	}
	s, err := openSnapStore(cfg.Dir, cfg.Fsync, cfg.FullSnapshotEvery, cfg.KeepChains)
	if err != nil {
		_ = w.close()
		return nil, err
	}
	s.m = m
	d := &Disk{
		cfg:         cfg,
		m:           m,
		wal:         w,
		snaps:       s,
		compactKick: make(chan struct{}, 1),
		compactStop: make(chan struct{}),
		compactDone: make(chan struct{}),
	}
	d.compactIdle = sync.NewCond(&d.mu)
	go d.compactLoop()
	return d, nil
}

// compactLoop is the background WAL compactor: it wakes on every enqueued
// truncation, rewrites the log, and drains any remaining work before
// exiting at Close.
func (d *Disk) compactLoop() {
	defer close(d.compactDone)
	for {
		select {
		case <-d.compactKick:
			d.drainCompaction()
		case <-d.compactStop:
			d.drainCompaction()
			return
		}
	}
}

// drainCompaction rewrites the WAL until no truncation is pending. Each
// rewrite scans the frozen log prefix without the Disk lock (appends
// proceed concurrently) and takes the lock only for the bounded tail-copy
// and file swap. A rewrite failure is logged and leaves the pending
// watermark in place — replay stays logically truncated — without
// retrying until the next checkpoint enqueues a fresh watermark.
func (d *Disk) drainCompaction() {
	for {
		d.mu.Lock()
		if d.closed || !d.wal.pendSet {
			d.compacting = false
			d.compactIdle.Broadcast()
			d.mu.Unlock()
			return
		}
		through, limit := d.wal.pendThrough, d.wal.pendOffset
		f := d.wal.f
		hook := d.compactHook
		d.compacting = true
		d.mu.Unlock()

		if hook != nil {
			hook()
		}
		tmp, tmpSize, err := compactScan(d.wal.path, f, through, limit)

		d.mu.Lock()
		if err == nil {
			err = d.wal.compactFinish(tmp, tmpSize, limit, through)
		}
		if err == nil {
			d.m.compactions.Inc()
		}
		d.compactErr = err
		if err != nil {
			d.cfg.Logf("storage: %s: wal compaction: %v", d.cfg.Dir, err)
			d.compacting = false
			d.compactIdle.Broadcast()
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
	}
}

// CompactWait blocks until no WAL compaction is pending or in flight (or
// until one fails) — the fence tests and metrics use to observe the
// physical log.
func (d *Disk) CompactWait() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.compacting || (d.wal.pendSet && d.compactErr == nil && !d.closed) {
		d.compactIdle.Wait()
	}
}

// AppendWAL implements Backend.
func (d *Disk) AppendWAL(instance uint64, value model.Value) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.wal.append(instance, value)
}

// ReplayWAL implements Backend. Records covered by a pending (not yet
// physically compacted) truncation are filtered out, so callers observe
// truncation immediately.
func (d *Disk) ReplayWAL(fn func(instance uint64, value model.Value) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.wal.replay(fn)
}

// TruncateWAL implements Backend. The truncation is applied logically and
// returns immediately; the physical rewrite runs on the compactor
// goroutine, so checkpointing never stalls the commit path behind a log
// rewrite.
func (d *Disk) TruncateWAL(through uint64) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	queued := d.wal.truncateEnqueue(through)
	d.mu.Unlock()
	if queued {
		select {
		case d.compactKick <- struct{}{}:
		default: // a wake-up is already pending; the drain loop coalesces
		}
	}
	return nil
}

// SaveSnapshot implements Backend.
func (d *Disk) SaveSnapshot(snap *snapshot.Snapshot) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.snaps.save(snap)
}

// LoadSnapshot implements Backend.
func (d *Disk) LoadSnapshot() (*snapshot.Snapshot, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false, ErrClosed
	}
	return d.snaps.load()
}

// Sync implements Backend.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.wal.sync()
}

// Close implements Backend. It drains the compactor first, so any pending
// truncation is physically applied before the files are released and a
// reopen never resurrects logically truncated records.
func (d *Disk) Close() error {
	d.stopOnce.Do(func() { close(d.compactStop) })
	<-d.compactDone
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.wal.close()
}

// WALInstances reports how many instances the WAL retains (tests, metrics).
func (d *Disk) WALInstances() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.wal.have)
}
