package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// EventLog is a structured JSONL event stream: one self-describing object
// per line carrying a per-process monotonic timestamp (ns since the log
// opened), a wall-clock timestamp (ns since the epoch, what the analyzer
// merges on), the node id, a group id, an event kind and free-form
// key/value fields. Events record state changes — recovery phases,
// decisions, handshakes, rejections — not per-command traffic, so the
// volume is hundreds of lines per second at most and every line is written
// (and thus crash-visible) immediately.
//
// A nil *EventLog drops events, so un-instrumented paths and metrics-off
// runs thread nil and pay one branch.
type EventLog struct {
	mu    sync.Mutex
	w     io.Writer
	c     io.Closer // nil when the log does not own the writer
	node  int
	start time.Time
	buf   []byte // line staging, reused under mu
}

// OpenEventLog appends to the JSONL file at path (creating it), tagging
// every event with the given node id.
func OpenEventLog(path string, node int) (*EventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening event log: %w", err)
	}
	l := NewEventLog(f, node)
	l.c = f
	return l, nil
}

// NewEventLog writes events to w (tests, in-memory sinks). The writer must
// tolerate concurrent Write calls only through this log — EventLog
// serializes them itself.
func NewEventLog(w io.Writer, node int) *EventLog {
	return &EventLog{w: w, node: node, start: time.Now()}
}

// Emit writes one event. kvs are alternating key, value pairs; values may
// be strings, integers, booleans, durations (recorded in nanoseconds),
// errors or anything fmt can render. Emit never fails the caller: an
// unwritable log swallows the event (observability must not wedge the
// observed system).
func (l *EventLog) Emit(group int, kind string, kvs ...any) {
	if l == nil {
		return
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, int64(now.Sub(l.start)), 10)
	b = append(b, `,"wall":`...)
	b = strconv.AppendInt(b, now.UnixNano(), 10)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(l.node), 10)
	b = append(b, `,"group":`...)
	b = strconv.AppendInt(b, int64(group), 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, kind)
	for i := 0; i+1 < len(kvs); i += 2 {
		key, ok := kvs[i].(string)
		if !ok {
			key = fmt.Sprint(kvs[i])
		}
		b = append(b, ',')
		b = appendJSONString(b, key)
		b = append(b, ':')
		b = appendJSONValue(b, kvs[i+1])
	}
	b = append(b, '}', '\n')
	l.buf = b
	_, _ = l.w.Write(b)
}

// Close flushes and closes the underlying file, if the log owns one.
func (l *EventLog) Close() error {
	if l == nil || l.c == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Close()
}

// appendJSONString appends s as a JSON string. Event kinds and keys are
// plain ASCII identifiers; the escape path handles the rest correctly if
// slowly.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			enc, _ := json.Marshal(s)
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONValue appends one field value.
func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendJSONString(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case uint32:
		return strconv.AppendUint(b, uint64(x), 10)
	case uint16:
		return strconv.AppendUint(b, uint64(x), 10)
	case bool:
		return strconv.AppendBool(b, x)
	case time.Duration:
		return strconv.AppendInt(b, int64(x), 10)
	case float64:
		return strconv.AppendFloat(b, x, 'f', -1, 64)
	case error:
		return appendJSONString(b, x.Error())
	default:
		return appendJSONString(b, fmt.Sprint(x))
	}
}

// Event is one decoded event-log line.
type Event struct {
	TS     int64          // monotonic ns since that node's log opened
	Wall   int64          // wall-clock ns since the epoch (merge key)
	Node   int            // emitting node id
	Group  int            // consensus group (-1 for node-wide events)
	Kind   string         // event kind, e.g. "decide", "recover.local"
	Fields map[string]any // remaining key/value fields
}

// Field returns a field as a string ("" when absent).
func (e Event) Field(key string) string {
	v, ok := e.Fields[key]
	if !ok {
		return ""
	}
	if s, isStr := v.(string); isStr {
		return s
	}
	return fmt.Sprint(v)
}

// Int returns a numeric field as int64 (0 when absent or non-numeric).
func (e Event) Int(key string) int64 {
	if f, ok := e.Fields[key].(float64); ok {
		return int64(f)
	}
	return 0
}

// ReadEvents decodes a JSONL event stream, skipping blank lines. A
// malformed line (a torn final write from a crashed node) ends the stream
// without error — everything before it is returned.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var events []Event
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal(line, &raw); err != nil {
			break
		}
		e := Event{Fields: raw}
		if f, ok := raw["ts"].(float64); ok {
			e.TS = int64(f)
		}
		if f, ok := raw["wall"].(float64); ok {
			e.Wall = int64(f)
		}
		if f, ok := raw["node"].(float64); ok {
			e.Node = int(f)
		}
		if f, ok := raw["group"].(float64); ok {
			e.Group = int(f)
		}
		if s, ok := raw["kind"].(string); ok {
			e.Kind = s
		}
		for _, k := range []string{"ts", "wall", "node", "group", "kind"} {
			delete(raw, k)
		}
		events = append(events, e)
	}
	return events, sc.Err()
}

// ReadEventFile reads one node's events.log.
func ReadEventFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEvents(f)
}

// FieldKeys returns an event's field names sorted, for deterministic
// rendering.
func (e Event) FieldKeys() []string {
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
