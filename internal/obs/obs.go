// Package obs is the cluster's zero-dependency observability layer: a
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms, allocation-free on the hot path) plus a structured JSONL
// event log with a merge/summarize analyzer (see event.go, analyze.go and
// cmd/loganalyzer).
//
// Everything is nil-safe end to end: a nil *Registry hands out nil
// instruments, and every instrument method is a no-op on its nil receiver.
// Metrics-off mode is therefore literally "thread a nil registry" — the
// hot path pays one predicted branch, nothing else — which is what
// BENCH_obs compares against the metrics-on path.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil Counter ignores updates and loads as zero.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (queue depths, in-flight counts). The zero
// value is ready to use; a nil Gauge ignores updates and loads as zero.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the value by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations whose
// value has bit length i (i.e. v in [2^(i-1), 2^i)), so the full uint64
// range is covered with no per-observation allocation and no configuration.
// At nanosecond resolution bucket boundaries run from 1ns past 290 years.
const histBuckets = 64 + 1

// Histogram is a fixed-bucket log2 histogram. Observe is allocation-free
// and lock-free; quantiles are approximated from bucket boundaries at read
// time (within a factor of 2, which is plenty for latency triage). The
// zero value is ready to use; a nil Histogram ignores observations.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(uint64(time.Since(start)))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile approximates the q-th quantile (0 < q <= 1) as the upper bound
// of the bucket containing it. Concurrent updates may skew a racing read by
// a bucket; the histogram is for triage, not billing.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	seen := uint64(0)
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1 // upper bound of values with bit length i
		}
	}
	return 1<<63 - 1
}

// Registry is a process-wide named-instrument store. Instruments are
// created on first use and live forever; hot paths resolve their
// instruments once at startup and update them lock-free from then on. A
// nil *Registry is the disabled registry: every getter returns nil and the
// nil instruments ignore updates.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a live gauge read at snapshot time (queue lengths,
// in-flight counts — values something else already tracks). The function
// must be safe for concurrent use.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Stat is one flattened metric sample. Histograms expand into .count,
// .sum, .mean, .p50 and .p99 stats.
type Stat struct {
	Name  string
	Value float64
}

// Snapshot flattens every instrument into sorted (name, value) pairs.
func (r *Registry) Snapshot() []Stat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	stats := make([]Stat, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+5*len(r.hists))
	for name, c := range r.counters {
		stats = append(stats, Stat{name, float64(c.Load())})
	}
	for name, g := range r.gauges {
		stats = append(stats, Stat{name, float64(g.Load())})
	}
	for name, fn := range r.funcs {
		stats = append(stats, Stat{name, float64(fn())})
	}
	for name, h := range r.hists {
		stats = append(stats,
			Stat{name + ".count", float64(h.Count())},
			Stat{name + ".sum", float64(h.Sum())},
			Stat{name + ".mean", h.Mean()},
			Stat{name + ".p50", float64(h.Quantile(0.50))},
			Stat{name + ".p99", float64(h.Quantile(0.99))},
		)
	}
	r.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	return stats
}

// CounterValue reads one counter by name without creating it (tests,
// drivers summing per-group stats).
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Load()
}

// Aggregate appends "total.<suffix>" sums for every stat group-prefixed as
// "g<k>.<suffix>" — the per-group/aggregate split the STATS verb serves.
// Quantile and mean stats are not summable and are skipped.
func Aggregate(stats []Stat) []Stat {
	totals := make(map[string]float64)
	order := []string{}
	for _, s := range stats {
		if !strings.HasPrefix(s.Name, "g") {
			continue
		}
		dot := strings.IndexByte(s.Name, '.')
		if dot <= 1 {
			continue
		}
		if _, err := strconv.Atoi(s.Name[1:dot]); err != nil {
			continue
		}
		suffix := s.Name[dot+1:]
		if strings.HasSuffix(suffix, ".mean") || strings.HasSuffix(suffix, ".p50") ||
			strings.HasSuffix(suffix, ".p99") {
			continue
		}
		if _, ok := totals[suffix]; !ok {
			order = append(order, suffix)
		}
		totals[suffix] += s.Value
	}
	sort.Strings(order)
	for _, suffix := range order {
		stats = append(stats, Stat{"total." + suffix, totals[suffix]})
	}
	return stats
}

// formatValue renders a stat value without float noise: integral values
// print as integers.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// WriteText writes the snapshot (plus group aggregates) as key=value
// lines — the STATS verb's wire format.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range Aggregate(r.Snapshot()) {
		if _, err := fmt.Fprintf(w, "%s=%s\n", s.Name, formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshot (plus group aggregates) as one flat JSON
// object — the expvar-style HTTP endpoint's format.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range Aggregate(r.Snapshot()) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(s.Name))
		b.WriteByte(':')
		b.WriteString(formatValue(s.Value))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
