package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentInstruments hammers one counter, gauge and histogram from
// many goroutines — the -race run is the point — and checks the totals.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(i))
				// Resolving concurrently with updates must also be safe.
				if i%100 == 0 {
					reg.Counter("c").Add(0)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Load(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	wantSum := uint64(workers * per * (per - 1) / 2)
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
}

// TestNilSafety exercises the disabled mode: nil registry, nil
// instruments, nil event log — every call must be a no-op, not a panic.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x")
	reg.GaugeFunc("x", func() int64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(5)
	g.Add(1)
	h.Observe(9)
	h.ObserveSince(time.Now())
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 ||
		h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments must load as zero")
	}
	if reg.Snapshot() != nil || reg.CounterValue("x") != 0 {
		t.Error("nil registry must snapshot empty")
	}
	var l *EventLog
	l.Emit(0, "kind", "k", "v")
	if err := l.Close(); err != nil {
		t.Errorf("nil event log close: %v", err)
	}
}

// TestHistogramQuantiles checks the log2 bucket approximation: quantiles
// come back as the upper bound of the bucket holding the rank.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket 7: [64, 128)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000) // bucket 17: [65536, 131072)
	}
	if got := h.Quantile(0.50); got != 127 {
		t.Errorf("p50 = %d, want 127", got)
	}
	if got := h.Quantile(0.99); got != 131071 {
		t.Errorf("p99 = %d, want 131071", got)
	}
	if mean := h.Mean(); mean < 10000 || mean > 11000 {
		t.Errorf("mean = %f, want ~10090", mean)
	}
	if h.Quantile(1.0) != 131071 {
		t.Errorf("p100 = %d, want 131071", h.Quantile(1.0))
	}
}

// TestSnapshotAndAggregate checks the flattened snapshot, the g<k>. →
// total. aggregation and both render formats.
func TestSnapshotAndAggregate(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("g0.smr.commits").Add(10)
	reg.Counter("g1.smr.commits").Add(32)
	reg.Counter("transport.frames_out").Add(5)
	reg.Gauge("g0.node.inflight").Set(2)
	reg.GaugeFunc("live", func() int64 { return 77 })
	reg.Histogram("g0.node.commit_ns").Observe(1000)

	stats := Aggregate(reg.Snapshot())
	byName := make(map[string]float64, len(stats))
	for _, s := range stats {
		byName[s.Name] = s.Value
	}
	if byName["total.smr.commits"] != 42 {
		t.Errorf("total.smr.commits = %v, want 42", byName["total.smr.commits"])
	}
	if byName["live"] != 77 {
		t.Errorf("live gauge func = %v, want 77", byName["live"])
	}
	if byName["g0.node.commit_ns.count"] != 1 {
		t.Errorf("histogram .count missing: %v", byName)
	}
	if _, ok := byName["total.node.commit_ns.mean"]; ok {
		t.Error("means must not be aggregated")
	}
	if _, ok := byName["total.frames_out"]; ok {
		t.Error("non-group stats must not be aggregated")
	}

	var text bytes.Buffer
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "total.smr.commits=42\n") {
		t.Errorf("WriteText missing aggregate:\n%s", text.String())
	}
	var js bytes.Buffer
	if err := reg.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"total.smr.commits":42`) {
		t.Errorf("WriteJSON missing aggregate:\n%s", js.String())
	}
}

// TestEventLogConcurrent emits from several goroutines into one log and
// checks every line decodes (the per-log mutex keeps lines untorn).
func TestEventLogConcurrent(t *testing.T) {
	var buf syncBuffer
	l := NewEventLog(&buf, 3)
	const workers, per = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Emit(w, "tick", "i", i)
			}
		}(w)
	}
	wg.Wait()
	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*per {
		t.Fatalf("decoded %d events, want %d", len(events), workers*per)
	}
	for _, e := range events {
		if e.Node != 3 || e.Kind != "tick" {
			t.Fatalf("bad event: %+v", e)
		}
	}
}

// TestReadEventsTornTail checks a torn final line (crash mid-write) ends
// the stream without error and without losing the records before it.
func TestReadEventsTornTail(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, 1)
	l.Emit(0, "decide", "instance", 1)
	l.Emit(0, "decide", "instance", 2)
	data := buf.Bytes()
	torn := append(append([]byte{}, data...), `{"ts":1,"wall":2,"nod`...)
	events, err := ReadEvents(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events, want 2 (torn tail dropped)", len(events))
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer. EventLog serializes its own
// writes, but the test reads Bytes() after the fact, so belt and braces.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte{}, b.buf.Bytes()...)
}
