package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Timeline analysis: merge per-node event logs into one causal timeline
// and reduce it to per-phase summaries — the log→timeline loop behind
// cmd/loganalyzer and the e2e assertions. Events are ordered by wall-clock
// timestamp; within the clock's resolution that order is causal enough for
// triage (each node's own events are already monotonic, and cross-node
// effects — a recovery observing a peer's checkpoint — sit well apart from
// their causes on any realistic clock skew).

// Timeline is a wall-clock-ordered merge of per-node event streams.
type Timeline struct {
	Events []Event
}

// MergeTimeline interleaves per-node event slices into one timeline,
// ordered by wall timestamp; ties break by node id then by each node's
// monotonic timestamp (preserving intra-node order).
func MergeTimeline(perNode ...[]Event) Timeline {
	total := 0
	for _, evs := range perNode {
		total += len(evs)
	}
	merged := make([]Event, 0, total)
	for _, evs := range perNode {
		merged = append(merged, evs...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.Wall != b.Wall {
			return a.Wall < b.Wall
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.TS < b.TS
	})
	return Timeline{Events: merged}
}

// RecoveryWindow is one node's recovery episode: from its first recovery
// event after (re)start to the moment it resumed deciding.
type RecoveryWindow struct {
	Node     int
	Start    int64 // wall ns of the first recovery event
	End      int64 // wall ns of the node's next decide (0 = never resumed)
	Kinds    []string
	Instance uint64 // highest instance restored during the window
}

// Duration returns the window's length (0 when the node never resumed).
func (w RecoveryWindow) Duration() time.Duration {
	if w.End == 0 {
		return 0
	}
	return time.Duration(w.End - w.Start)
}

// Summary condenses one timeline.
type Summary struct {
	Nodes       map[int]int    // node id → event count
	Groups      map[int]int    // group id → event count (node-wide events excluded)
	Kinds       map[string]int // event kind → count
	Span        time.Duration  // wall-clock span first→last event
	Decided     map[int]uint64 // group id → highest decided instance seen
	DecideEvts  map[int]int    // group id → decide event count
	Recoveries  []RecoveryWindow
	Starts      map[int]int // node id → "start" events (restarts show as >1)
	AuthRejects int
	CatchUps    int
	Stalls      int
}

// recoveryKinds marks the event kinds that open or extend a recovery
// window.
func recoveryKind(kind string) bool {
	switch kind {
	case "recover.local", "recover.peer", "recover.none", "wal.replay",
		"catchup.snapshot":
		return true
	}
	return false
}

// Summarize reduces a merged timeline to its per-phase summary.
func Summarize(t Timeline) Summary {
	s := Summary{
		Nodes:      make(map[int]int),
		Groups:     make(map[int]int),
		Kinds:      make(map[string]int),
		Decided:    make(map[int]uint64),
		DecideEvts: make(map[int]int),
		Starts:     make(map[int]int),
	}
	if len(t.Events) == 0 {
		return s
	}
	s.Span = time.Duration(t.Events[len(t.Events)-1].Wall - t.Events[0].Wall)
	open := make(map[int]*RecoveryWindow) // node → window awaiting its End
	for _, e := range t.Events {
		s.Nodes[e.Node]++
		s.Kinds[e.Kind]++
		if e.Group >= 0 {
			s.Groups[e.Group]++
		}
		switch {
		case e.Kind == "decide":
			s.DecideEvts[e.Group]++
			if inst := uint64(e.Int("instance")); inst > s.Decided[e.Group] {
				s.Decided[e.Group] = inst
			}
			if w, ok := open[e.Node]; ok {
				w.End = e.Wall
				s.Recoveries = append(s.Recoveries, *w)
				delete(open, e.Node)
			}
		case e.Kind == "start":
			s.Starts[e.Node]++
		case e.Kind == "auth.reject":
			s.AuthRejects++
		case e.Kind == "catchup.decision" || e.Kind == "catchup.snapshot":
			s.CatchUps++
		case e.Kind == "stall":
			s.Stalls++
		}
		if recoveryKind(e.Kind) {
			w, ok := open[e.Node]
			if !ok {
				w = &RecoveryWindow{Node: e.Node, Start: e.Wall}
				open[e.Node] = w
			}
			w.Kinds = append(w.Kinds, e.Kind)
			if inst := uint64(e.Int("instance")); inst > w.Instance {
				w.Instance = inst
			}
		}
	}
	for _, w := range open {
		s.Recoveries = append(s.Recoveries, *w) // never resumed: End stays 0
	}
	sort.Slice(s.Recoveries, func(i, j int) bool {
		if s.Recoveries[i].Start != s.Recoveries[j].Start {
			return s.Recoveries[i].Start < s.Recoveries[j].Start
		}
		return s.Recoveries[i].Node < s.Recoveries[j].Node
	})
	return s
}

// WriteTimeline renders the merged timeline, one event per line, with
// timestamps relative to the first event.
func WriteTimeline(w io.Writer, t Timeline) error {
	if len(t.Events) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	base := t.Events[0].Wall
	for _, e := range t.Events {
		rel := time.Duration(e.Wall - base)
		line := fmt.Sprintf("%12.6fs node=%d", rel.Seconds(), e.Node)
		if e.Group >= 0 {
			line += fmt.Sprintf(" g=%d", e.Group)
		}
		line += " " + e.Kind
		for _, k := range e.FieldKeys() {
			line += fmt.Sprintf(" %s=%v", k, e.Fields[k])
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary renders the per-phase summary.
func WriteSummary(w io.Writer, s Summary) error {
	nodes := make([]int, 0, len(s.Nodes))
	for n := range s.Nodes {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	groups := make([]int, 0, len(s.Groups))
	for g := range s.Groups {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	fmt.Fprintf(w, "nodes: %d, span: %.3fs\n", len(nodes), s.Span.Seconds())
	for _, n := range nodes {
		restarts := ""
		if s.Starts[n] > 1 {
			restarts = fmt.Sprintf(" (%d starts: crashed and recovered)", s.Starts[n])
		}
		fmt.Fprintf(w, "  node %d: %d events%s\n", n, s.Nodes[n], restarts)
	}
	for _, g := range groups {
		fmt.Fprintf(w, "group %d: decided through instance %d (%d decide events)\n",
			g, s.Decided[g], s.DecideEvts[g])
	}
	fmt.Fprintf(w, "auth rejections: %d, catch-ups: %d, stalls: %d\n",
		s.AuthRejects, s.CatchUps, s.Stalls)
	for _, r := range s.Recoveries {
		if r.End != 0 {
			fmt.Fprintf(w, "recovery: node %d in %.3fs (%v, through instance %d)\n",
				r.Node, r.Duration().Seconds(), r.Kinds, r.Instance)
		} else {
			fmt.Fprintf(w, "recovery: node %d did not resume deciding (%v)\n", r.Node, r.Kinds)
		}
	}
	kinds := make([]string, 0, len(s.Kinds))
	for k := range s.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-20s %d\n", k, s.Kinds[k])
	}
	return nil
}
