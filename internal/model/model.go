// Package model defines the shared vocabulary of the generic consensus
// algorithm of Rütti, Milosevic and Schiper (DSN 2010): process identifiers,
// proposal values, phases, rounds, the per-round message tuple and the
// history variable. It has no dependencies on other packages of this module.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// PID identifies a process. Processes are numbered 0..n-1.
type PID int

// Value is a consensus proposal value.
//
// The empty string is reserved as NoValue, the "null"/absent value used by
// the algorithm internally (e.g. the select_p variable before a value has
// been selected). Applications must propose non-empty values; constructors in
// the public API enforce this.
type Value string

// NoValue is the reserved absent value ("null" in the paper's pseudocode).
const NoValue Value = ""

// Phase numbers the phases of the generic algorithm, starting at 1.
// Timestamps (ts_p) are phases; the initial timestamp is 0.
type Phase int

// Round numbers the communication rounds of an execution, starting at 1.
// In the unoptimized algorithm phase φ spans rounds 3φ-2, 3φ-1 and 3φ.
type Round int

// RoundKind distinguishes the three round types of a phase.
type RoundKind int

const (
	// SelectionRound is round 3φ-2: validators are elected and a value is
	// selected with FLV. Pcons must (eventually) hold in this round.
	SelectionRound RoundKind = iota + 1
	// ValidationRound is round 3φ-1: validators announce the selected
	// value; processes validate it. Suppressed when FLAG = *.
	ValidationRound
	// DecisionRound is round 3φ: processes exchange ⟨vote, ts⟩ and decide
	// on TD matching votes.
	DecisionRound
)

// String returns the round kind name used in traces.
func (k RoundKind) String() string {
	switch k {
	case SelectionRound:
		return "selection"
	case ValidationRound:
		return "validation"
	case DecisionRound:
		return "decision"
	default:
		return fmt.Sprintf("RoundKind(%d)", int(k))
	}
}

// Flag is the FLAG parameter of the generic algorithm: which votes are taken
// into account in the decision round.
type Flag int

const (
	// FlagStar (FLAG = *) counts every vote regardless of its timestamp.
	// The validation round is suppressed and ts/history are not needed.
	FlagStar Flag = iota + 1
	// FlagPhase (FLAG = φ) counts only votes validated in the current
	// phase (ts = φ).
	FlagPhase
)

// String returns "*" or "φ".
func (f Flag) String() string {
	switch f {
	case FlagStar:
		return "*"
	case FlagPhase:
		return "φ"
	default:
		return fmt.Sprintf("Flag(%d)", int(f))
	}
}

// HistEntry records that vote_p was set to Val in the selection round of
// phase Phase.
type HistEntry struct {
	Val   Value
	Phase Phase
}

// History is the history_p variable: the list of (value, phase) pairs logged
// at line 14 of Algorithm 1. The zero value is an empty history; honest
// processes initialize it to {(init_p, 0)}.
type History []HistEntry

// NewHistory returns the initial history {(init, 0)} of an honest process.
func NewHistory(init Value) History {
	return History{{Val: init, Phase: 0}}
}

// Contains reports whether (v, φ) is in the history.
func (h History) Contains(v Value, phase Phase) bool {
	for _, e := range h {
		if e.Val == v && e.Phase == phase {
			return true
		}
	}
	return false
}

// ValueAt returns the value paired with timestamp phase, if any. It is used
// by line 26 of Algorithm 1 to revert vote_p to the value matching ts_p.
// Honest histories pair at most one value with any given phase.
func (h History) ValueAt(phase Phase) (Value, bool) {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Phase == phase {
			return h[i].Val, true
		}
	}
	return NoValue, false
}

// Add appends (v, φ) unless the exact pair is already present (the paper
// uses set union at line 14) and returns the updated history.
func (h History) Add(v Value, phase Phase) History {
	if h.Contains(v, phase) {
		return h
	}
	return append(h, HistEntry{Val: v, Phase: phase})
}

// Clone returns an independent copy. Messages must not alias the sender's
// mutable history (slices are copied at ownership boundaries).
func (h History) Clone() History {
	if h == nil {
		return nil
	}
	out := make(History, len(h))
	copy(out, h)
	return out
}

// Prune drops all entries with phase < keepFrom except the highest-phase
// entry per value mentioned, bounding history growth. This implements the
// bounded-history variant referenced by footnote 5 of the paper.
func (h History) Prune(keepFrom Phase) History {
	out := h[:0:0]
	for _, e := range h {
		if e.Phase >= keepFrom {
			out = append(out, e)
		}
	}
	return out
}

// String renders the history as {(v,φ), ...} for traces and test failures.
func (h History) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range h {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%s,%d)", e.Val, e.Phase)
	}
	b.WriteByte('}')
	return b.String()
}

// Message is the single message tuple of Algorithm 1. Depending on the round
// kind only a subset of the fields is meaningful:
//
//	selection round (line 7):  ⟨Vote, TS, History, Sel⟩
//	validation round (line 19): ⟨Vote (= select_p), Sel (= validators_p)⟩
//	decision round (line 29):  ⟨Vote, TS⟩
//
// Byzantine processes may populate any field arbitrarily and may send
// different contents to different destinations; honest processes cannot be
// impersonated (sender identity is attached by the network layer).
type Message struct {
	Kind    RoundKind
	Vote    Value
	TS      Phase
	History History
	Sel     []PID
	// Relay carries a batch of (possibly signed) inner messages for the
	// WIC sub-protocols that build Pcons out of Pgood (§2.2): the
	// coordinator relay and the echo broadcast forward entire received
	// vectors.
	Relay []Signed
}

// Signed is a relayed inner message attributed to its original sender, with
// an optional signature (authenticated Byzantine model) over the inner
// payload.
type Signed struct {
	Sender PID
	Msg    Message
	Sig    []byte
}

// SelKey returns a canonical string key for the Sel field so that message
// sets can be grouped by proposed validator set (lines 15 and 21). The key
// is the sorted PID list; nil and empty sets share the key "".
func (m Message) SelKey() string {
	return PIDSetKey(m.Sel)
}

// Clone returns a deep copy of the message.
func (m Message) Clone() Message {
	out := m
	out.History = m.History.Clone()
	if m.Sel != nil {
		out.Sel = append([]PID(nil), m.Sel...)
	}
	if m.Relay != nil {
		out.Relay = make([]Signed, len(m.Relay))
		for i, s := range m.Relay {
			out.Relay[i] = Signed{
				Sender: s.Sender,
				Msg:    s.Msg.Clone(),
				Sig:    append([]byte(nil), s.Sig...),
			}
		}
	}
	return out
}

// String renders the message for traces.
func (m Message) String() string {
	switch m.Kind {
	case ValidationRound:
		return fmt.Sprintf("⟨%s, %s⟩", voteStr(m.Vote), PIDSetKey(m.Sel))
	case DecisionRound:
		return fmt.Sprintf("⟨%s, %d⟩", voteStr(m.Vote), m.TS)
	default:
		return fmt.Sprintf("⟨%s, %d, %s, %s⟩", voteStr(m.Vote), m.TS, m.History, PIDSetKey(m.Sel))
	}
}

func voteStr(v Value) string {
	if v == NoValue {
		return "⊥"
	}
	return string(v)
}

// Received is the vector µ_p^r of messages received by a process in a round,
// indexed by sender. Absent senders (⊥ in the paper) are simply missing keys.
type Received map[PID]Message

// Senders returns the sender set in ascending PID order. Deterministic
// iteration matters: the deterministic choice at line 11 must produce the
// same result at every process that received the same vector.
func (mu Received) Senders() []PID {
	out := make([]PID, 0, len(mu))
	for p := range mu {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Votes returns the multiset of vote fields in ascending sender order,
// excluding NoValue.
func (mu Received) Votes() []Value {
	out := make([]Value, 0, len(mu))
	for _, p := range mu.Senders() {
		if v := mu[p].Vote; v != NoValue {
			out = append(out, v)
		}
	}
	return out
}

// VoteCounts returns, for each distinct non-null vote value, the number of
// messages carrying it.
func (mu Received) VoteCounts() map[Value]int {
	out := make(map[Value]int, len(mu))
	for _, m := range mu {
		if m.Vote != NoValue {
			out[m.Vote]++
		}
	}
	return out
}

// Clone deep-copies the vector.
func (mu Received) Clone() Received {
	out := make(Received, len(mu))
	for p, m := range mu {
		out[p] = m.Clone()
	}
	return out
}

// MinValue returns the smallest non-null vote in the vector, the default
// deterministic choice for line 11 of Algorithm 1. ok is false when the
// vector carries no votes.
func (mu Received) MinValue() (Value, bool) {
	best := NoValue
	for _, m := range mu {
		if m.Vote == NoValue {
			continue
		}
		if best == NoValue || m.Vote < best {
			best = m.Vote
		}
	}
	return best, best != NoValue
}

// SmallestMostOften returns the most frequent vote, breaking frequency ties
// by smallest value — the choice rule of the original OneThirdRule algorithm
// (line 8 of Algorithm 5). ok is false when the vector carries no votes.
func (mu Received) SmallestMostOften() (Value, bool) {
	counts := mu.VoteCounts()
	best := NoValue
	bestN := 0
	for v, n := range counts {
		if n > bestN || (n == bestN && (best == NoValue || v < best)) {
			best, bestN = v, n
		}
	}
	return best, best != NoValue
}

// PIDSetKey returns the canonical key of a PID set: sorted, comma-separated.
func PIDSetKey(pids []PID) string {
	if len(pids) == 0 {
		return ""
	}
	sorted := append([]PID(nil), pids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	for i, p := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int(p))
	}
	return b.String()
}

// PIDSetContains reports whether p is in the set.
func PIDSetContains(pids []PID, p PID) bool {
	for _, q := range pids {
		if q == p {
			return true
		}
	}
	return false
}

// AllPIDs returns {0, ..., n-1}, the process set Π.
func AllPIDs(n int) []PID {
	out := make([]PID, n)
	for i := range out {
		out[i] = PID(i)
	}
	return out
}
