package model

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestRoundKindString(t *testing.T) {
	tests := []struct {
		kind RoundKind
		want string
	}{
		{SelectionRound, "selection"},
		{ValidationRound, "validation"},
		{DecisionRound, "decision"},
		{RoundKind(42), "RoundKind(42)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("RoundKind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestFlagString(t *testing.T) {
	if FlagStar.String() != "*" {
		t.Errorf("FlagStar.String() = %q, want *", FlagStar.String())
	}
	if FlagPhase.String() != "φ" {
		t.Errorf("FlagPhase.String() = %q, want φ", FlagPhase.String())
	}
	if Flag(9).String() != "Flag(9)" {
		t.Errorf("Flag(9).String() = %q", Flag(9).String())
	}
}

func TestNewHistory(t *testing.T) {
	h := NewHistory("v0")
	if len(h) != 1 {
		t.Fatalf("initial history length = %d, want 1", len(h))
	}
	if !h.Contains("v0", 0) {
		t.Error("initial history must contain (init, 0)")
	}
	if h.Contains("v0", 1) {
		t.Error("initial history must not contain (init, 1)")
	}
	if h.Contains("v1", 0) {
		t.Error("initial history must not contain (other, 0)")
	}
}

func TestHistoryAdd(t *testing.T) {
	h := NewHistory("a")
	h = h.Add("b", 1)
	h = h.Add("c", 2)
	if len(h) != 3 {
		t.Fatalf("history length = %d, want 3", len(h))
	}
	// Set semantics: re-adding the same pair does not grow the history.
	h = h.Add("b", 1)
	if len(h) != 3 {
		t.Errorf("duplicate Add grew history to %d entries", len(h))
	}
	// Same value at a new phase is a new entry.
	h = h.Add("b", 3)
	if len(h) != 4 {
		t.Errorf("Add of same value at new phase: length = %d, want 4", len(h))
	}
}

func TestHistoryValueAt(t *testing.T) {
	h := NewHistory("a").Add("b", 1).Add("c", 4)
	tests := []struct {
		phase  Phase
		want   Value
		wantOK bool
	}{
		{0, "a", true},
		{1, "b", true},
		{4, "c", true},
		{2, NoValue, false},
	}
	for _, tt := range tests {
		got, ok := h.ValueAt(tt.phase)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("ValueAt(%d) = (%q, %v), want (%q, %v)", tt.phase, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestHistoryClone(t *testing.T) {
	h := NewHistory("a").Add("b", 1)
	c := h.Clone()
	if !reflect.DeepEqual(h, c) {
		t.Fatalf("clone differs: %v vs %v", h, c)
	}
	c[0].Val = "mutated"
	if h[0].Val != "a" {
		t.Error("mutating the clone affected the original")
	}
	var nilH History
	if nilH.Clone() != nil {
		t.Error("Clone of nil history must be nil")
	}
}

func TestHistoryPrune(t *testing.T) {
	h := NewHistory("a").Add("b", 1).Add("c", 2).Add("d", 3)
	p := h.Prune(2)
	if len(p) != 2 {
		t.Fatalf("pruned length = %d, want 2", len(p))
	}
	if !p.Contains("c", 2) || !p.Contains("d", 3) {
		t.Errorf("prune kept wrong entries: %v", p)
	}
}

func TestHistoryString(t *testing.T) {
	h := NewHistory("a").Add("b", 2)
	want := "{(a,0), (b,2)}"
	if got := h.String(); got != want {
		t.Errorf("History.String() = %q, want %q", got, want)
	}
}

func TestMessageSelKey(t *testing.T) {
	m := Message{Sel: []PID{3, 1, 2}}
	if got := m.SelKey(); got != "1,2,3" {
		t.Errorf("SelKey = %q, want 1,2,3", got)
	}
	empty := Message{}
	if got := empty.SelKey(); got != "" {
		t.Errorf("empty SelKey = %q, want \"\"", got)
	}
}

func TestMessageClone(t *testing.T) {
	m := Message{
		Kind:    SelectionRound,
		Vote:    "v",
		TS:      3,
		History: NewHistory("v"),
		Sel:     []PID{0, 1},
	}
	c := m.Clone()
	c.History[0].Val = "x"
	c.Sel[0] = 9
	if m.History[0].Val != "v" || m.Sel[0] != 0 {
		t.Error("Clone shares backing arrays with the original")
	}
}

func TestMessageString(t *testing.T) {
	sel := Message{Kind: SelectionRound, Vote: "v", TS: 1, History: NewHistory("v"), Sel: []PID{0}}
	if sel.String() == "" {
		t.Error("selection message renders empty")
	}
	val := Message{Kind: ValidationRound, Vote: NoValue, Sel: []PID{1, 0}}
	if got := val.String(); got != "⟨⊥, 0,1⟩" {
		t.Errorf("validation message = %q", got)
	}
	dec := Message{Kind: DecisionRound, Vote: "v", TS: 2}
	if got := dec.String(); got != "⟨v, 2⟩" {
		t.Errorf("decision message = %q", got)
	}
}

func TestReceivedSenders(t *testing.T) {
	mu := Received{3: {}, 0: {}, 7: {}}
	got := mu.Senders()
	want := []PID{0, 3, 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Senders() = %v, want %v", got, want)
	}
}

func TestReceivedVotes(t *testing.T) {
	mu := Received{
		0: {Vote: "b"},
		1: {Vote: "a"},
		2: {Vote: NoValue},
	}
	got := mu.Votes()
	// In ascending sender order, null votes excluded.
	want := []Value{"b", "a"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Votes() = %v, want %v", got, want)
	}
}

func TestReceivedVoteCounts(t *testing.T) {
	mu := Received{
		0: {Vote: "a"}, 1: {Vote: "a"}, 2: {Vote: "b"}, 3: {Vote: NoValue},
	}
	got := mu.VoteCounts()
	if got["a"] != 2 || got["b"] != 1 || len(got) != 2 {
		t.Errorf("VoteCounts() = %v", got)
	}
}

func TestReceivedMinValue(t *testing.T) {
	mu := Received{0: {Vote: "z"}, 1: {Vote: "m"}, 2: {Vote: "q"}}
	v, ok := mu.MinValue()
	if !ok || v != "m" {
		t.Errorf("MinValue() = (%q, %v), want (m, true)", v, ok)
	}
	empty := Received{0: {Vote: NoValue}}
	if _, ok := empty.MinValue(); ok {
		t.Error("MinValue on voteless vector reported ok")
	}
}

func TestReceivedSmallestMostOften(t *testing.T) {
	tests := []struct {
		name string
		mu   Received
		want Value
	}{
		{
			name: "clear majority",
			mu:   Received{0: {Vote: "b"}, 1: {Vote: "b"}, 2: {Vote: "a"}},
			want: "b",
		},
		{
			name: "tie broken by smaller value",
			mu:   Received{0: {Vote: "b"}, 1: {Vote: "a"}},
			want: "a",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.mu.SmallestMostOften()
			if !ok || got != tt.want {
				t.Errorf("SmallestMostOften() = (%q, %v), want %q", got, ok, tt.want)
			}
		})
	}
	empty := Received{}
	if _, ok := empty.SmallestMostOften(); ok {
		t.Error("SmallestMostOften on empty vector reported ok")
	}
}

func TestReceivedClone(t *testing.T) {
	mu := Received{0: {Vote: "v", History: NewHistory("v")}}
	c := mu.Clone()
	m := c[0]
	m.History[0].Val = "x"
	if mu[0].History[0].Val != "v" {
		t.Error("Received.Clone shares history backing arrays")
	}
}

func TestAllPIDs(t *testing.T) {
	got := AllPIDs(4)
	want := []PID{0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AllPIDs(4) = %v, want %v", got, want)
	}
	if len(AllPIDs(0)) != 0 {
		t.Error("AllPIDs(0) must be empty")
	}
}

func TestPIDSetContains(t *testing.T) {
	set := []PID{1, 5, 9}
	if !PIDSetContains(set, 5) {
		t.Error("PIDSetContains missed member")
	}
	if PIDSetContains(set, 2) {
		t.Error("PIDSetContains reported non-member")
	}
	if PIDSetContains(nil, 0) {
		t.Error("PIDSetContains on nil must be false")
	}
}

// Property: Add is idempotent per (value, phase) pair and Contains reflects
// exactly the added pairs.
func TestHistoryAddContainsProperty(t *testing.T) {
	f := func(vals []uint8, phases []uint8) bool {
		n := len(vals)
		if len(phases) < n {
			n = len(phases)
		}
		h := History{}
		type pair struct {
			v Value
			p Phase
		}
		seen := map[pair]bool{}
		for i := 0; i < n; i++ {
			v := Value([]string{"a", "b", "c", "d"}[vals[i]%4])
			p := Phase(phases[i] % 8)
			h = h.Add(v, p)
			seen[pair{v, p}] = true
		}
		if len(h) != len(seen) {
			return false
		}
		for k := range seen {
			if !h.Contains(k.v, k.p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Senders is always sorted and complete.
func TestSendersSortedProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		mu := Received{}
		for _, id := range ids {
			mu[PID(id%32)] = Message{}
		}
		s := mu.Senders()
		if len(s) != len(mu) {
			return false
		}
		return sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
