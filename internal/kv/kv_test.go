package kv

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"genconsensus/internal/auth"
	"genconsensus/internal/model"
	"genconsensus/internal/wire"
)

func TestCommandFormat(t *testing.T) {
	if got := Command("r1", "SET", "k", "v"); got != "r1|SET|k|v" {
		t.Errorf("Command = %q", got)
	}
	if got := Command("r2", "del", "k", "ignored"); got != "r2|DEL|k" {
		t.Errorf("DEL Command = %q", got)
	}
}

func TestApplySetGetDel(t *testing.T) {
	s := NewStore()
	if resp := s.Apply(Command("1", "SET", "a", "x")); resp != "OK" {
		t.Errorf("SET resp = %q", resp)
	}
	if v, ok := s.Get("a"); !ok || v != "x" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if resp := s.Apply(Command("2", "DEL", "a", "")); resp != "OK" {
		t.Errorf("DEL resp = %q", resp)
	}
	if _, ok := s.Get("a"); ok {
		t.Error("key survived DEL")
	}
	if resp := s.Apply(Command("3", "DEL", "missing", "")); resp != "NOTFOUND" {
		t.Errorf("DEL missing resp = %q", resp)
	}
}

func TestApplyDeduplicates(t *testing.T) {
	s := NewStore()
	cmd := Command("same-req", "SET", "k", "first")
	if resp := s.Apply(cmd); resp != "OK" {
		t.Fatalf("first apply = %q", resp)
	}
	s.data["k"] = "changed-out-of-band"
	// A retry with the same reqID returns the recorded response and does
	// not re-execute.
	if resp := s.Apply(cmd); resp != "OK" {
		t.Errorf("retry apply = %q", resp)
	}
	if v, _ := s.Get("k"); v != "changed-out-of-band" {
		t.Error("duplicate was re-executed")
	}
}

func TestApplyMalformed(t *testing.T) {
	s := NewStore()
	bad := []string{
		"",
		"only",
		"a|b",
		"r|SET|k",       // missing value
		"r|DEL|k|extra", // extra value
		"r|UNKNOWN|k|v", // unknown op
		"|SET|k|v",      // empty reqID
		"r|SET||v",      // empty key
	}
	for _, cmd := range bad {
		resp := s.Apply(model.Value(cmd))
		if !strings.HasPrefix(resp, "ERR") {
			t.Errorf("Apply(%q) = %q, want ERR*", cmd, resp)
		}
	}
	if s.Len() != 0 {
		t.Error("malformed commands mutated the store")
	}
}

func TestParse(t *testing.T) {
	req, op, key, val, err := Parse("r9|set|color|blue")
	if err != nil {
		t.Fatal(err)
	}
	if req != "r9" || op != "SET" || key != "color" || val != "blue" {
		t.Errorf("Parse = %q %q %q %q", req, op, key, val)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	s.Apply(Command("1", "SET", "a", "1"))
	snap := s.Snapshot()
	snap["a"] = "mutated"
	if v, _ := s.Get("a"); v != "1" {
		t.Error("Snapshot aliases store data")
	}
}

func TestSnapshotStateRoundTrip(t *testing.T) {
	s := NewStore()
	s.Apply(Command("r1", "SET", "color", "green"))
	s.Apply(Command("r2", "SET", "shape", "circle"))
	s.Apply(Command("r3", "DEL", "color", ""))
	s.Apply(Command("r4", "SET", "size", "big"))

	restored := NewStore()
	if err := restored.RestoreState(s.SnapshotState()); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored %d keys, want %d", restored.Len(), s.Len())
	}
	for k, v := range s.Snapshot() {
		if got, ok := restored.Get(k); !ok || got != v {
			t.Errorf("restored[%s] = %q, %v; want %q", k, got, ok, v)
		}
	}
	// Round-trip is an identity: re-encoding yields identical bytes.
	if string(restored.SnapshotState()) != string(s.SnapshotState()) {
		t.Error("SnapshotState not stable across restore")
	}
	// The dedup table travels with the state: a retry of an old request
	// against the restored store must be suppressed.
	restored.data["size"] = "out-of-band"
	if resp := restored.Apply(Command("r4", "SET", "size", "big")); resp != "OK" {
		t.Errorf("retry after restore = %q", resp)
	}
	if v, _ := restored.Get("size"); v != "out-of-band" {
		t.Error("retry re-executed after restore")
	}
}

func TestSnapshotStateDeterministic(t *testing.T) {
	// Two stores built by the same command sequence (regardless of map
	// iteration order) encode identically.
	a, b := NewStore(), NewStore()
	for i := 0; i < 50; i++ {
		cmd := Command(
			"req-"+strings.Repeat("x", i%7)+string(rune('a'+i%26)),
			"SET", string(rune('a'+i%26)), strings.Repeat("v", i))
		a.Apply(cmd)
		b.Apply(cmd)
	}
	if string(a.SnapshotState()) != string(b.SnapshotState()) {
		t.Error("identical histories encode differently")
	}
}

func TestRestoreStateRejectsMalformed(t *testing.T) {
	good := func() []byte {
		s := NewStore()
		s.Apply(Command("r", "SET", "k", "v"))
		return s.SnapshotState()
	}()
	bad := [][]byte{
		nil,
		[]byte("not a snapshot"),
		good[:len(good)-1],
		append(append([]byte{}, good...), 0),
	}
	for i, b := range bad {
		if err := NewStore().RestoreState(b); err == nil {
			t.Errorf("case %d: restored malformed state", i)
		}
	}
}

// TestAppliedTableBounded is the memory-regression test for the dedup
// table: across 10k duplicate-free commands a bounded store retains only
// the configured window while an unbounded one grows linearly.
func TestAppliedTableBounded(t *testing.T) {
	const limit = 128
	const commands = 10_000
	bounded, unbounded := NewStore(), NewStore()
	bounded.SetAppliedLimit(limit)
	for i := 0; i < commands; i++ {
		cmd := Command(fmt.Sprintf("req-%d", i), "SET", fmt.Sprintf("k-%d", i%31), "v")
		bounded.Apply(cmd)
		unbounded.Apply(cmd)
	}
	if got := bounded.AppliedLen(); got != limit {
		t.Errorf("bounded AppliedLen = %d, want %d", got, limit)
	}
	if got := len(bounded.appliedOrder); got != limit {
		t.Errorf("bounded order length = %d, want %d", got, limit)
	}
	if got := cap(bounded.appliedOrder); got > 4*limit+16 {
		t.Errorf("bounded order capacity = %d, not O(limit)", got)
	}
	if got := unbounded.AppliedLen(); got != commands {
		t.Errorf("unbounded AppliedLen = %d, want %d", got, commands)
	}
	// Recent requests still dedup; evicted ones no longer do.
	if resp := bounded.Apply(Command(fmt.Sprintf("req-%d", commands-1), "SET", "k-0", "v")); resp != "OK" {
		t.Errorf("recent retry = %q", resp)
	}
	if bounded.AppliedLen() != limit {
		t.Error("recent retry grew the table")
	}
}

func TestPruneApplied(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.Apply(Command(fmt.Sprintf("r-%d", i), "SET", "k", fmt.Sprintf("%d", i)))
	}
	if evicted := s.PruneApplied(10); evicted != 90 {
		t.Errorf("evicted %d, want 90", evicted)
	}
	if got := s.AppliedLen(); got != 10 {
		t.Errorf("AppliedLen = %d, want 10", got)
	}
	// The survivors are the most recent 10.
	s.mu.RLock()
	_, oldGone := s.applied["r-0"]
	_, newKept := s.applied["r-99"]
	s.mu.RUnlock()
	if oldGone || !newKept {
		t.Errorf("wrong survivors: r-0 present=%v, r-99 present=%v", oldGone, newKept)
	}
	if evicted := s.PruneApplied(50); evicted != 0 {
		t.Errorf("pruning below size evicted %d", evicted)
	}
}

// Property: SET then GET round-trips arbitrary printable keys and values
// without separator collisions (keys/values free of '|').
func TestSetGetProperty(t *testing.T) {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '|' || r < ' ' {
				return 'x'
			}
			return r
		}, s)
	}
	prop := func(rawK, rawV string) bool {
		k := clean(rawK)
		v := clean(rawV)
		if k == "" {
			k = "k"
		}
		s := NewStore()
		s.Apply(Command("r", "SET", k, v))
		got, ok := s.Get(k)
		return ok && got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- Authenticated mode ------------------------------------------------------

func authStore(window int) (*Store, *auth.ClientSigner) {
	kr := auth.NewClientKeyring(11, 4)
	s := NewStore()
	s.EnableClientAuth(kr, window)
	return s, auth.NewClientSigner(11, 1)
}

func mustSigned(t *testing.T, signer *auth.ClientSigner, seq uint64, op, key, value string) model.Value {
	t.Helper()
	cmd, err := SignedCommand(signer, seq, op, key, value)
	if err != nil {
		t.Fatal(err)
	}
	return cmd
}

func TestAuthApplyAndDedup(t *testing.T) {
	s, signer := authStore(16)
	cmd := mustSigned(t, signer, 1, "SET", "color", "green")
	if resp := s.Apply(cmd); resp != "OK" {
		t.Fatalf("Apply = %q", resp)
	}
	if v, ok := s.Get("color"); !ok || v != "green" {
		t.Fatalf("color = %q (%v)", v, ok)
	}
	// Retry of the same (client, seq): cached response, no re-execution.
	if resp := s.Apply(cmd); resp != "OK" {
		t.Fatalf("retry = %q", resp)
	}
	del := mustSigned(t, signer, 2, "DEL", "color", "")
	if resp := s.Apply(del); resp != "OK" {
		t.Fatalf("DEL = %q", resp)
	}
	if resp := s.Apply(del); resp != "OK" {
		t.Fatalf("DEL retry = %q (must replay the cached response, not NOTFOUND)", resp)
	}
	// Legacy raw commands are refused outright in authenticated mode.
	if resp := s.Apply(Command("req-9", "SET", "x", "y")); resp != RespUnauthenticated {
		t.Fatalf("raw command = %q", resp)
	}
	// Tampered MAC is refused and consumes nothing.
	env, err := wire.DecodeCommand(string(mustSigned(t, signer, 3, "SET", "a", "b")))
	if err != nil {
		t.Fatal(err)
	}
	env.MAC[3] ^= 1
	bad, err := wire.EncodeCommand(env)
	if err != nil {
		t.Fatal(err)
	}
	if resp := s.Apply(model.Value(bad)); resp != RespUnauthenticated {
		t.Fatalf("tampered = %q", resp)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("tampered command mutated state")
	}
	// The untampered original still applies: its seq was not burned.
	if resp := s.Apply(mustSigned(t, signer, 3, "SET", "a", "b")); resp != "OK" {
		t.Fatalf("original after tamper = %q", resp)
	}
}

// TestAuthWindowBounded is the hostile-client memory bound: a client
// churning unique sequence numbers keeps exactly one window of cached
// responses, evicted oldest-first and deterministically, and sequences
// below the horizon answer RespStale instead of re-executing.
func TestAuthWindowBounded(t *testing.T) {
	const window = 32
	s, signer := authStore(window)
	for seq := uint64(1); seq <= 10*window; seq++ {
		key := fmt.Sprintf("wk-%d", seq)
		if resp := s.Apply(mustSigned(t, signer, seq, "SET", key, "v")); resp != "OK" {
			t.Fatalf("seq %d: %q", seq, resp)
		}
	}
	if n := s.ClientSeqLen(1); n > window+1 {
		t.Fatalf("client window holds %d responses, want <= %d", n, window+1)
	}
	if max := s.ClientMaxSeq(1); max != 10*window {
		t.Fatalf("max seq %d, want %d", max, 10*window)
	}
	// A below-horizon replay must not re-execute (the key was deleted in
	// the meantime — re-execution would resurrect it).
	victim := mustSigned(t, signer, 1, "SET", "wk-1", "v")
	if resp := s.Apply(mustSigned(t, signer, 10*window+1, "DEL", "wk-1", "")); resp != "OK" {
		t.Fatalf("DEL: %q", resp)
	}
	if resp := s.Apply(victim); resp != RespStale {
		t.Fatalf("below-horizon replay = %q, want %q", resp, RespStale)
	}
	if _, ok := s.Get("wk-1"); ok {
		t.Fatal("below-horizon replay resurrected a deleted key")
	}
}

// TestAuthSnapshotRoundTrip: the v2 (envelope-aware) state encoding carries
// the per-client windows, round-trips exactly, and keeps at-most-once
// across a restore; two stores applying the same sequence stay
// byte-identical (digest comparability).
func TestAuthSnapshotRoundTrip(t *testing.T) {
	s1, signer := authStore(16)
	s2, _ := authStore(16)
	other := auth.NewClientSigner(11, 3)
	var cmds []model.Value
	for seq := uint64(1); seq <= 40; seq++ {
		cmds = append(cmds, mustSigned(t, signer, seq, "SET", fmt.Sprintf("k-%d", seq%7), fmt.Sprintf("v-%d", seq)))
		cmds = append(cmds, mustSigned(t, other, seq, "SET", fmt.Sprintf("o-%d", seq%5), "x"))
	}
	for _, cmd := range cmds {
		s1.Apply(cmd)
		s2.Apply(cmd)
	}
	enc1, enc2 := s1.SnapshotState(), s2.SnapshotState()
	if string(enc1) != string(enc2) {
		t.Fatal("identical apply sequences encoded differently")
	}
	restored, _ := authStore(16)
	if err := restored.RestoreState(enc1); err != nil {
		t.Fatal(err)
	}
	if string(restored.SnapshotState()) != string(enc1) {
		t.Fatal("restore is not the identity")
	}
	// At-most-once survives the restore: a replay of an applied command is
	// answered from the restored window without re-execution.
	if resp := restored.Apply(cmds[len(cmds)-2]); resp != "OK" {
		t.Fatalf("replay after restore = %q", resp)
	}
	if restored.ClientMaxSeq(1) != 40 || restored.ClientMaxSeq(3) != 40 {
		t.Fatal("client windows lost in restore")
	}
	// Truncated v2 encodings are rejected.
	if err := restored.RestoreState(enc1[:len(enc1)-3]); err == nil {
		t.Fatal("truncated v2 state accepted")
	}
}

// TestLegacySnapshotStillV1: stores without client auth keep the v1 magic
// byte-for-byte, so mixed-version clusters in legacy mode stay
// digest-comparable with pre-envelope snapshots.
func TestLegacySnapshotStillV1(t *testing.T) {
	s := NewStore()
	s.Apply(Command("r1", "SET", "k", "v"))
	enc := s.SnapshotState()
	if string(enc[:8]) != "kvstate1" {
		t.Fatalf("legacy magic = %q", enc[:8])
	}
	s2 := NewStore()
	if err := s2.RestoreState(enc); err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get("k"); !ok || v != "v" {
		t.Fatal("legacy restore lost data")
	}
}

// GetMany answers a whole batch under one read lock; results align with
// the request order, missing keys report Found=false, and the batch sees
// the same snapshot a per-key Get would.
func TestGetMany(t *testing.T) {
	s := NewStore()
	s.Apply(Command("r1", "SET", "a", "1"))
	s.Apply(Command("r2", "SET", "b", "2"))
	s.Apply(Command("r3", "SET", "c", "3"))
	got := s.GetMany([]string{"b", "missing", "a", "b"})
	want := []ReadResult{
		{Value: "2", Found: true},
		{Found: false},
		{Value: "1", Found: true},
		{Value: "2", Found: true},
	}
	if len(got) != len(want) {
		t.Fatalf("GetMany returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GetMany[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if out := s.GetMany(nil); len(out) != 0 {
		t.Fatalf("GetMany(nil) returned %d results", len(out))
	}
}

// SeqApplied is the read-your-writes probe: false before the write
// applies, true once its response is in the dedup window, and still true
// after the window slides past it (below-horizon means applied long ago).
func TestSeqApplied(t *testing.T) {
	s, signer := authStore(4)
	if s.SeqApplied(1, 1) {
		t.Fatal("SeqApplied true for an unapplied seq")
	}
	s.Apply(mustSigned(t, signer, 1, "SET", "k", "v1"))
	if !s.SeqApplied(1, 1) {
		t.Fatal("SeqApplied false for an applied seq")
	}
	if s.SeqApplied(2, 1) {
		t.Fatal("SeqApplied leaked across clients")
	}
	if s.SeqApplied(1, 2) {
		t.Fatal("SeqApplied true for a future seq")
	}
	// Slide the window far past seq 1: it falls below the horizon but
	// stays applied.
	for seq := uint64(2); seq <= 12; seq++ {
		s.Apply(mustSigned(t, signer, seq, "SET", "k", "v"))
	}
	if !s.SeqApplied(1, 1) {
		t.Fatal("SeqApplied false for a below-horizon seq")
	}
}
