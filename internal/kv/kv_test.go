package kv

import (
	"strings"
	"testing"
	"testing/quick"

	"genconsensus/internal/model"
)

func TestCommandFormat(t *testing.T) {
	if got := Command("r1", "SET", "k", "v"); got != "r1|SET|k|v" {
		t.Errorf("Command = %q", got)
	}
	if got := Command("r2", "del", "k", "ignored"); got != "r2|DEL|k" {
		t.Errorf("DEL Command = %q", got)
	}
}

func TestApplySetGetDel(t *testing.T) {
	s := NewStore()
	if resp := s.Apply(Command("1", "SET", "a", "x")); resp != "OK" {
		t.Errorf("SET resp = %q", resp)
	}
	if v, ok := s.Get("a"); !ok || v != "x" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if resp := s.Apply(Command("2", "DEL", "a", "")); resp != "OK" {
		t.Errorf("DEL resp = %q", resp)
	}
	if _, ok := s.Get("a"); ok {
		t.Error("key survived DEL")
	}
	if resp := s.Apply(Command("3", "DEL", "missing", "")); resp != "NOTFOUND" {
		t.Errorf("DEL missing resp = %q", resp)
	}
}

func TestApplyDeduplicates(t *testing.T) {
	s := NewStore()
	cmd := Command("same-req", "SET", "k", "first")
	if resp := s.Apply(cmd); resp != "OK" {
		t.Fatalf("first apply = %q", resp)
	}
	s.data["k"] = "changed-out-of-band"
	// A retry with the same reqID returns the recorded response and does
	// not re-execute.
	if resp := s.Apply(cmd); resp != "OK" {
		t.Errorf("retry apply = %q", resp)
	}
	if v, _ := s.Get("k"); v != "changed-out-of-band" {
		t.Error("duplicate was re-executed")
	}
}

func TestApplyMalformed(t *testing.T) {
	s := NewStore()
	bad := []string{
		"",
		"only",
		"a|b",
		"r|SET|k",       // missing value
		"r|DEL|k|extra", // extra value
		"r|UNKNOWN|k|v", // unknown op
		"|SET|k|v",      // empty reqID
		"r|SET||v",      // empty key
	}
	for _, cmd := range bad {
		resp := s.Apply(model.Value(cmd))
		if !strings.HasPrefix(resp, "ERR") {
			t.Errorf("Apply(%q) = %q, want ERR*", cmd, resp)
		}
	}
	if s.Len() != 0 {
		t.Error("malformed commands mutated the store")
	}
}

func TestParse(t *testing.T) {
	req, op, key, val, err := Parse("r9|set|color|blue")
	if err != nil {
		t.Fatal(err)
	}
	if req != "r9" || op != "SET" || key != "color" || val != "blue" {
		t.Errorf("Parse = %q %q %q %q", req, op, key, val)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	s.Apply(Command("1", "SET", "a", "1"))
	snap := s.Snapshot()
	snap["a"] = "mutated"
	if v, _ := s.Get("a"); v != "1" {
		t.Error("Snapshot aliases store data")
	}
}

// Property: SET then GET round-trips arbitrary printable keys and values
// without separator collisions (keys/values free of '|').
func TestSetGetProperty(t *testing.T) {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '|' || r < ' ' {
				return 'x'
			}
			return r
		}, s)
	}
	prop := func(rawK, rawV string) bool {
		k := clean(rawK)
		v := clean(rawV)
		if k == "" {
			k = "k"
		}
		s := NewStore()
		s.Apply(Command("r", "SET", k, v))
		got, ok := s.Get(k)
		return ok && got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
