// Package kv is a replicated key-value store: the application layer of the
// SMR examples. Commands are strings "reqID|OP|key[|value]" with OP in
// {SET, DEL}; reads are served locally. Request IDs deduplicate client
// retries (at-most-once semantics).
//
// The store implements snapshot.Snapshotter — its full state (data map plus
// the duplicate-suppression table, in deterministic order) round-trips
// through SnapshotState/RestoreState — so SMR deployments can checkpoint
// it, compact their logs and transfer it to recovering replicas. The dedup
// table is boundable (SetAppliedLimit, PruneApplied): without a bound it
// grows one entry per unique request forever.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"genconsensus/internal/model"
)

// Store is the deterministic state machine: a string map plus the
// duplicate-suppression table. The table is kept in apply order
// (appliedOrder) so that eviction and snapshot encoding are deterministic
// across replicas.
type Store struct {
	mu           sync.RWMutex
	data         map[string]string
	applied      map[string]string // reqID → response
	appliedOrder []string          // reqIDs, oldest first
	appliedLimit int               // 0 = unbounded
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		data:    make(map[string]string),
		applied: make(map[string]string),
	}
}

// Command formats an SMR command. value is ignored for DEL.
func Command(reqID, op, key, value string) model.Value {
	if strings.EqualFold(op, "DEL") {
		return model.Value(fmt.Sprintf("%s|DEL|%s", reqID, key))
	}
	return model.Value(fmt.Sprintf("%s|SET|%s|%s", reqID, key, value))
}

// Apply implements smr.StateMachine.
func (s *Store) Apply(cmd model.Value) string {
	reqID, op, key, value, err := Parse(cmd)
	if err != nil {
		return "ERR " + err.Error()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if resp, done := s.applied[reqID]; done {
		return resp // duplicate client retry
	}
	var resp string
	switch op {
	case "SET":
		s.data[key] = value
		resp = "OK"
	case "DEL":
		if _, ok := s.data[key]; ok {
			delete(s.data, key)
			resp = "OK"
		} else {
			resp = "NOTFOUND"
		}
	}
	s.applied[reqID] = resp
	s.appliedOrder = append(s.appliedOrder, reqID)
	if s.appliedLimit > 0 && len(s.appliedOrder) > s.appliedLimit {
		s.pruneLocked(s.appliedLimit)
	}
	return resp
}

// SetAppliedLimit bounds the dedup table to the n most recent requests
// (oldest evicted first, deterministically — eviction follows apply order,
// which is the log order on every replica). n ≤ 0 removes the bound.
// Evicting a request re-opens the at-most-once window for retries older
// than the n most recent commands; pick n larger than any client's
// plausible retry horizon.
func (s *Store) SetAppliedLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appliedLimit = n
	if n > 0 {
		s.pruneLocked(n)
	}
}

// PruneApplied drops all but the `keep` most recent dedup entries and
// returns the number evicted. It implements snapshot.Pruner: snapshot
// managers call it at checkpoint boundaries, a deterministic point where
// every replica holds identical tables.
func (s *Store) PruneApplied(keep int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pruneLocked(keep)
}

// pruneLocked evicts oldest-first down to `keep` entries. Callers hold s.mu.
func (s *Store) pruneLocked(keep int) int {
	if keep < 0 {
		keep = 0
	}
	evict := len(s.appliedOrder) - keep
	if evict <= 0 {
		return 0
	}
	for _, reqID := range s.appliedOrder[:evict] {
		delete(s.applied, reqID)
	}
	s.appliedOrder = s.appliedOrder[evict:]
	// A re-slice keeps evicted strings reachable through the backing
	// array's dead prefix. Bulk evictions copy immediately; the apply-path
	// single eviction relies on append's next reallocation (len == cap
	// within at most `keep` applies) to drop the prefix, keeping eviction
	// amortized O(1) and the footprint O(keep).
	if evict > 1 {
		rest := make([]string, len(s.appliedOrder))
		copy(rest, s.appliedOrder)
		s.appliedOrder = rest
	}
	return evict
}

// AppliedLen reports the dedup-table size (memory-bound tests and metrics).
func (s *Store) AppliedLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.applied)
}

// Parse splits a command into its fields.
func Parse(cmd model.Value) (reqID, op, key, value string, err error) {
	parts := strings.Split(string(cmd), "|")
	if len(parts) < 3 {
		return "", "", "", "", fmt.Errorf("kv: malformed command %q", cmd)
	}
	reqID, op, key = parts[0], strings.ToUpper(parts[1]), parts[2]
	switch op {
	case "SET":
		if len(parts) != 4 {
			return "", "", "", "", fmt.Errorf("kv: SET needs a value: %q", cmd)
		}
		value = parts[3]
	case "DEL":
		if len(parts) != 3 {
			return "", "", "", "", fmt.Errorf("kv: DEL takes no value: %q", cmd)
		}
	default:
		return "", "", "", "", fmt.Errorf("kv: unknown op %q", op)
	}
	if reqID == "" || key == "" {
		return "", "", "", "", fmt.Errorf("kv: empty reqID or key: %q", cmd)
	}
	return reqID, op, key, value, nil
}

// Get serves a local read.
func (s *Store) Get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Snapshot copies the live data.
func (s *Store) Snapshot() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// stateMagic versions the SnapshotState encoding.
const stateMagic = "kvstate1"

// ErrBadState rejects malformed or foreign state encodings.
var ErrBadState = errors.New("kv: malformed state encoding")

// SnapshotState implements snapshot.Snapshotter: a deterministic encoding
// of the data map (sorted by key) and the dedup table (in apply order, the
// same on every replica). Replicas with identical applied prefixes encode
// byte-identical states, so snapshot digests are comparable across the
// cluster.
func (s *Store) SnapshotState() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 0, 64)
	buf = append(buf, stateMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, s.data[k])
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.appliedOrder)))
	for _, reqID := range s.appliedOrder {
		buf = appendString(buf, reqID)
		buf = appendString(buf, s.applied[reqID])
	}
	return buf
}

// RestoreState implements snapshot.Snapshotter, replacing the store's
// entire state with a decoded SnapshotState encoding. The configured
// applied limit survives the restore and is re-enforced on the restored
// table.
func (s *Store) RestoreState(data []byte) error {
	if len(data) < len(stateMagic)+8 || string(data[:len(stateMagic)]) != stateMagic {
		return ErrBadState
	}
	r := data[len(stateMagic):]
	var ok bool
	var nData uint32
	nData, r, ok = readUint32(r)
	if !ok {
		return ErrBadState
	}
	newData := make(map[string]string, nData)
	for i := uint32(0); i < nData; i++ {
		var k, v string
		if k, r, ok = readString(r); !ok {
			return ErrBadState
		}
		if v, r, ok = readString(r); !ok {
			return ErrBadState
		}
		newData[k] = v
	}
	var nApplied uint32
	nApplied, r, ok = readUint32(r)
	if !ok {
		return ErrBadState
	}
	newApplied := make(map[string]string, nApplied)
	newOrder := make([]string, 0, nApplied)
	for i := uint32(0); i < nApplied; i++ {
		var reqID, resp string
		if reqID, r, ok = readString(r); !ok {
			return ErrBadState
		}
		if resp, r, ok = readString(r); !ok {
			return ErrBadState
		}
		if _, dup := newApplied[reqID]; dup {
			return ErrBadState
		}
		newApplied[reqID] = resp
		newOrder = append(newOrder, reqID)
	}
	if len(r) != 0 {
		return ErrBadState
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = newData
	s.applied = newApplied
	s.appliedOrder = newOrder
	if s.appliedLimit > 0 {
		s.pruneLocked(s.appliedLimit)
	}
	return nil
}

func appendString(buf []byte, v string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
	return append(buf, v...)
}

func readUint32(b []byte) (uint32, []byte, bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	return binary.BigEndian.Uint32(b), b[4:], true
}

func readString(b []byte) (string, []byte, bool) {
	n, rest, ok := readUint32(b)
	if !ok || len(rest) < int(n) {
		return "", nil, false
	}
	return string(rest[:n]), rest[n:], true
}
