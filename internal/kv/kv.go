// Package kv is a replicated key-value store: the application layer of the
// SMR examples. Commands are strings "reqID|OP|key[|value]" with OP in
// {SET, DEL}; reads are served locally. Request IDs deduplicate client
// retries (at-most-once semantics).
//
// In authenticated mode (EnableClientAuth) the store instead receives
// wire.CommandEnvelope values: it re-verifies each envelope's client MAC —
// the last line of defence should a fabricated value ever be decided — and
// deduplicates on (client, seq) through bounded per-client sequence windows
// rather than an ever-growing request-id table. Window eviction follows the
// applied sequence, so it is deterministic across replicas, and the windows
// are part of the snapshot state: at-most-once survives checkpoint,
// transfer and restore.
//
// The store implements snapshot.Snapshotter — its full state (data map plus
// the duplicate-suppression state, in deterministic order) round-trips
// through SnapshotState/RestoreState — so SMR deployments can checkpoint
// it, compact their logs and transfer it to recovering replicas. The legacy
// dedup table is boundable (SetAppliedLimit, PruneApplied): without a bound
// it grows one entry per unique request forever.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"genconsensus/internal/auth"
	"genconsensus/internal/model"
	"genconsensus/internal/wire"
)

// CommandVerifier checks client command MACs. auth.ClientKeyring implements
// it; the local interface keeps kv free of a crypto dependency.
type CommandVerifier interface {
	VerifyCommand(client uint32, seq uint64, payload, mac []byte) bool
}

// ValueVerifier is an optional CommandVerifier extension judging a whole
// encoded envelope value at once. smr.AuthContext implements it with a
// verdict cache keyed by the value bytes — the same bytes were already
// judged at ingress and in every chooser evaluation — so an apply that
// receives a ValueVerifier skips the per-replica HMAC recompute entirely
// on the hot path. Verification semantics are identical; only the work is
// shared.
type ValueVerifier interface {
	VerifyValue(v model.Value) bool
}

// DefaultSeqWindow is the per-client dedup horizon in authenticated mode:
// how many sequence numbers below a client's highest applied seq keep exact
// responses. Sequences at or below the horizon answer RespStale without
// re-executing. Aliased from wire so the apply-side horizon and the SMR
// replay filter (smr.DefaultSeqWindow) cannot drift apart.
const DefaultSeqWindow = wire.DefaultSeqWindow

// Canonical responses of the authenticated apply path.
const (
	// RespUnauthenticated rejects values that are not valid envelopes
	// under the verifier (fabricated, stripped or malformed commands).
	RespUnauthenticated = "ERR unauthenticated command"
	// RespStale answers sequences below the dedup horizon: the command
	// was (assumed) applied long ago and its cached response is gone.
	RespStale = "ERR stale sequence"
)

// Store is the deterministic state machine: a string map plus
// duplicate-suppression state — the legacy request-id table, or per-client
// sequence windows (wire.SeqTracker carrying cached responses) in
// authenticated mode. Both are maintained in apply order so that eviction
// and snapshot encoding are deterministic across replicas.
type Store struct {
	mu           sync.RWMutex
	data         map[string]string
	applied      map[string]string // reqID → response
	appliedOrder []string          // reqIDs, oldest first
	appliedLimit int               // 0 = unbounded

	verify    CommandVerifier                     // nil = legacy raw-bytes mode
	seqWindow uint64                              // per-client horizon (auth mode)
	clients   map[uint32]*wire.SeqTracker[string] // client → applied seq → response

	// Sorted-key cache for SnapshotState: checkpoints re-encode the whole
	// store every interval, and re-sorting every key each time dominated
	// the commit path's CPU under load. sortedKeys holds the keys already
	// in order, newKeys the ones inserted since the last snapshot (merged
	// in at the next one), and keysResort forces a full rebuild after a
	// delete or a state restore.
	sortedKeys []string
	newKeys    []string
	keysResort bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		data:    make(map[string]string),
		applied: make(map[string]string),
		clients: make(map[uint32]*wire.SeqTracker[string]),
	}
}

// EnableClientAuth switches the store to authenticated mode: Apply accepts
// only envelopes verified by v and deduplicates on (client, seq) within a
// window of the given size per client (<= 0 picks DefaultSeqWindow). Call
// before commands are applied.
func (s *Store) EnableClientAuth(v CommandVerifier, window int) {
	if window <= 0 {
		window = DefaultSeqWindow
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.verify = v
	s.seqWindow = uint64(window)
}

// Command formats an SMR command. value is ignored for DEL.
func Command(reqID, op, key, value string) model.Value {
	if strings.EqualFold(op, "DEL") {
		b := make([]byte, 0, len(reqID)+len(key)+5)
		b = append(b, reqID...)
		b = append(b, "|DEL|"...)
		b = append(b, key...)
		return model.Value(b)
	}
	b := make([]byte, 0, len(reqID)+len(key)+len(value)+6)
	b = append(b, reqID...)
	b = append(b, "|SET|"...)
	b = append(b, key...)
	b = append(b, '|')
	b = append(b, value...)
	return model.Value(b)
}

// AuthPayload formats the canonical application payload of an authenticated
// command: the request id is derived from (client, seq), so the signer and
// every verifying replica reconstruct the identical byte string from the
// envelope fields alone.
func AuthPayload(client uint32, seq uint64, op, key, value string) model.Value {
	return model.Value(appendAuthPayload(nil, client, seq, op, key, value))
}

// appendAuthPayload builds the canonical payload into one buffer:
// "c<client>.<seq>|OP|key[|value]".
func appendAuthPayload(dst []byte, client uint32, seq uint64, op, key, value string) []byte {
	dst = append(dst, 'c')
	dst = strconv.AppendUint(dst, uint64(client), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, seq, 10)
	if strings.EqualFold(op, "DEL") {
		dst = append(dst, "|DEL|"...)
		return append(dst, key...)
	}
	dst = append(dst, "|SET|"...)
	dst = append(dst, key...)
	dst = append(dst, '|')
	return append(dst, value...)
}

// AuthMAC signs the canonical payload for (signer, seq): the tag a client
// sends alongside its command fields (e.g. kvctl's ACMD line), and the tag
// SignedCommand embeds.
func AuthMAC(signer *auth.ClientSigner, seq uint64, op, key, value string) []byte {
	payload := AuthPayload(signer.Client(), seq, op, key, value)
	return signer.Sign(seq, []byte(payload))
}

// SignedCommand builds the complete encoded command envelope for one
// operation: canonical payload, client MAC, wire encoding. It is what
// in-process clients (tests, benchmarks, cmd/kvload) submit in
// authenticated mode.
func SignedCommand(signer *auth.ClientSigner, seq uint64, op, key, value string) (model.Value, error) {
	client := signer.Client()
	pb := appendAuthPayload(make([]byte, 0, 24+len(op)+len(key)+len(value)), client, seq, op, key, value)
	mac := signer.Sign(seq, pb)
	buf := make([]byte, 0, wire.EncodedCommandSize(client, seq, len(pb)))
	buf, err := wire.AppendCommandBytes(buf, client, seq, pb, mac)
	if err != nil {
		return model.NoValue, fmt.Errorf("kv: encoding signed command: %w", err)
	}
	return model.Value(buf), nil
}

// Apply implements smr.StateMachine.
func (s *Store) Apply(cmd model.Value) string {
	s.mu.RLock()
	verify := s.verify
	s.mu.RUnlock()
	if verify != nil {
		// Decode and MAC-check before taking the write lock: verification
		// is a pure function of the command bytes, and holding every
		// concurrent reader behind an HMAC per batched command would make
		// the apply path a read stall. A ValueVerifier answers from its
		// shared verdict cache; otherwise the MAC is recomputed here.
		client, seq, payload, macStr, err := wire.DecodeCommandParts(string(cmd))
		if err != nil {
			return RespUnauthenticated
		}
		if vv, ok := verify.(ValueVerifier); ok {
			if !vv.VerifyValue(cmd) {
				return RespUnauthenticated
			}
		} else if !verify.VerifyCommand(client, seq, []byte(payload), []byte(macStr)) {
			return RespUnauthenticated
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.applyAuthLocked(client, seq, payload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	reqID, op, key, value, err := Parse(cmd)
	if err != nil {
		return "ERR " + err.Error()
	}
	if resp, done := s.applied[reqID]; done {
		return resp // duplicate client retry
	}
	resp := s.execLocked(op, key, value)
	s.applied[reqID] = resp
	s.appliedOrder = append(s.appliedOrder, reqID)
	if s.appliedLimit > 0 && len(s.appliedOrder) > s.appliedLimit {
		s.pruneLocked(s.appliedLimit)
	}
	return resp
}

// execLocked executes one parsed operation. Callers hold s.mu.
func (s *Store) execLocked(op, key, value string) string {
	switch op {
	case "SET":
		if _, ok := s.data[key]; !ok {
			s.newKeys = append(s.newKeys, key)
		}
		s.data[key] = value
		return "OK"
	case "DEL":
		if _, ok := s.data[key]; ok {
			delete(s.data, key)
			s.keysResort = true
			return "OK"
		}
		return "NOTFOUND"
	default:
		return "ERR unknown op " + op
	}
}

// orderedKeysLocked returns every data key in sorted order, maintaining
// the snapshot key cache: new keys since the last call are sorted and
// merged in O(n); only a delete or restore forces a full re-sort. Callers
// hold s.mu (write).
func (s *Store) orderedKeysLocked() []string {
	if s.keysResort {
		s.sortedKeys = s.sortedKeys[:0]
		for k := range s.data {
			s.sortedKeys = append(s.sortedKeys, k)
		}
		sort.Strings(s.sortedKeys)
		s.newKeys = s.newKeys[:0]
		s.keysResort = false
		return s.sortedKeys
	}
	if len(s.newKeys) == 0 {
		return s.sortedKeys
	}
	sort.Strings(s.newKeys)
	merged := make([]string, 0, len(s.sortedKeys)+len(s.newKeys))
	i, j := 0, 0
	for i < len(s.sortedKeys) && j < len(s.newKeys) {
		if s.sortedKeys[i] <= s.newKeys[j] {
			merged = append(merged, s.sortedKeys[i])
			i++
		} else {
			merged = append(merged, s.newKeys[j])
			j++
		}
	}
	merged = append(merged, s.sortedKeys[i:]...)
	merged = append(merged, s.newKeys[j:]...)
	s.sortedKeys = merged
	s.newKeys = s.newKeys[:0]
	return s.sortedKeys
}

// applyAuthLocked is the authenticated apply path for an already-verified
// envelope: (client, seq) dedup through the per-client window, then
// execution. Everything signed is recorded — even a payload that fails to
// parse consumes its sequence number, so a garbage command cannot be
// retried into a different outcome. Callers hold s.mu and have verified
// the envelope's MAC.
func (s *Store) applyAuthLocked(client uint32, seq uint64, payload string) string {
	st, ok := s.clients[client]
	if !ok {
		st = wire.NewSeqTracker[string]()
		s.clients[client] = st
	}
	if st.BelowHorizon(seq, s.seqWindow) {
		return RespStale // below the horizon: applied long ago
	}
	if resp, done := st.Entries[seq]; done {
		return resp // duplicate client retry (or a replayed proposal)
	}
	var resp string
	if _, op, key, value, perr := Parse(model.Value(payload)); perr != nil {
		resp = "ERR " + perr.Error()
	} else {
		resp = s.execLocked(op, key, value)
	}
	st.Record(seq, resp, s.seqWindow)
	return resp
}

// ClientSeqLen reports how many responses are cached for the client
// (bounded-memory tests and metrics).
func (s *Store) ClientSeqLen(client uint32) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.clients[client]
	if !ok {
		return 0
	}
	return len(st.Entries)
}

// ClientMaxSeq reports the client's highest applied sequence number.
func (s *Store) ClientMaxSeq(client uint32) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.clients[client]
	if !ok {
		return 0
	}
	return st.Max
}

// SeqApplied reports whether the client's sequence number seq has been
// applied here: either its response is still in the dedup window, or it
// fell below the exact-tracking horizon (applied long ago). Read-your-
// writes sessions poll it — a session READ must not serve until the
// session's last write has applied on this replica.
func (s *Store) SeqApplied(client uint32, seq uint64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.clients[client]
	if !ok {
		return false
	}
	if st.BelowHorizon(seq, s.seqWindow) {
		return true
	}
	_, done := st.Entries[seq]
	return done
}

// EachAppliedSeq visits every (client, seq) the dedup windows currently
// track, plus each client's horizon maximum. Recovery uses it to seed the
// SMR replay window from a restored snapshot — without the reseed, a
// recovered node would accept replays of commands committed before its
// checkpoint. fn runs under the store's read lock and must not call back
// into the store.
func (s *Store) EachAppliedSeq(fn func(client uint32, seq uint64)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for client, st := range s.clients {
		fn(client, st.Max)
		for seq := range st.Entries {
			fn(client, seq)
		}
	}
}

// SetAppliedLimit bounds the dedup table to the n most recent requests
// (oldest evicted first, deterministically — eviction follows apply order,
// which is the log order on every replica). n ≤ 0 removes the bound.
// Evicting a request re-opens the at-most-once window for retries older
// than the n most recent commands; pick n larger than any client's
// plausible retry horizon.
func (s *Store) SetAppliedLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appliedLimit = n
	if n > 0 {
		s.pruneLocked(n)
	}
}

// PruneApplied drops all but the `keep` most recent dedup entries and
// returns the number evicted. It implements snapshot.Pruner: snapshot
// managers call it at checkpoint boundaries, a deterministic point where
// every replica holds identical tables.
func (s *Store) PruneApplied(keep int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pruneLocked(keep)
}

// pruneLocked evicts oldest-first down to `keep` entries. Callers hold s.mu.
func (s *Store) pruneLocked(keep int) int {
	if keep < 0 {
		keep = 0
	}
	evict := len(s.appliedOrder) - keep
	if evict <= 0 {
		return 0
	}
	for _, reqID := range s.appliedOrder[:evict] {
		delete(s.applied, reqID)
	}
	s.appliedOrder = s.appliedOrder[evict:]
	// A re-slice keeps evicted strings reachable through the backing
	// array's dead prefix. Bulk evictions copy immediately; the apply-path
	// single eviction relies on append's next reallocation (len == cap
	// within at most `keep` applies) to drop the prefix, keeping eviction
	// amortized O(1) and the footprint O(keep).
	if evict > 1 {
		rest := make([]string, len(s.appliedOrder))
		copy(rest, s.appliedOrder)
		s.appliedOrder = rest
	}
	return evict
}

// AppliedLen reports the dedup-table size (memory-bound tests and metrics).
func (s *Store) AppliedLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.applied)
}

// Parse splits a command into its fields.
func Parse(cmd model.Value) (reqID, op, key, value string, err error) {
	parts := strings.Split(string(cmd), "|")
	if len(parts) < 3 {
		return "", "", "", "", fmt.Errorf("kv: malformed command %q", cmd)
	}
	reqID, op, key = parts[0], strings.ToUpper(parts[1]), parts[2]
	switch op {
	case "SET":
		if len(parts) != 4 {
			return "", "", "", "", fmt.Errorf("kv: SET needs a value: %q", cmd)
		}
		value = parts[3]
	case "DEL":
		if len(parts) != 3 {
			return "", "", "", "", fmt.Errorf("kv: DEL takes no value: %q", cmd)
		}
	default:
		return "", "", "", "", fmt.Errorf("kv: unknown op %q", op)
	}
	if reqID == "" || key == "" {
		return "", "", "", "", fmt.Errorf("kv: empty reqID or key: %q", cmd)
	}
	return reqID, op, key, value, nil
}

// Get serves a local read.
func (s *Store) Get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// ReadResult is one key's answer from a batched read.
type ReadResult struct {
	Value string
	Found bool
}

// GetMany answers a batch of keys under a single read-lock acquisition —
// the MREAD fast path: one watermark capture, one lock, many keys. Results
// align with keys by index.
func (s *Store) GetMany(keys []string) []ReadResult {
	out := make([]ReadResult, len(keys))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, k := range keys {
		v, ok := s.data[k]
		out[i] = ReadResult{Value: v, Found: ok}
	}
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Snapshot copies the live data.
func (s *Store) Snapshot() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// stateMagic versions the SnapshotState encoding. stateMagicV2 is the
// envelope-aware encoding carrying the per-client sequence windows of
// authenticated mode; legacy stores keep emitting v1 byte-identically.
const (
	stateMagic   = "kvstate1"
	stateMagicV2 = "kvstate2"
)

// ErrBadState rejects malformed or foreign state encodings.
var ErrBadState = errors.New("kv: malformed state encoding")

// SnapshotState implements snapshot.Snapshotter: a deterministic encoding
// of the data map (sorted by key) and the dedup state — the legacy
// request-id table in apply order, plus, in authenticated mode, the
// per-client sequence windows (clients sorted by id, seqs ascending).
// Replicas with identical applied prefixes encode byte-identical states,
// so snapshot digests are comparable across the cluster.
func (s *Store) SnapshotState() []byte {
	// Write lock, not read: encoding refreshes the sorted-key cache.
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := s.orderedKeysLocked()
	buf := make([]byte, 0, 64)
	magic := stateMagic
	if s.verify != nil {
		magic = stateMagicV2
	}
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, s.data[k])
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.appliedOrder)))
	for _, reqID := range s.appliedOrder {
		buf = appendString(buf, reqID)
		buf = appendString(buf, s.applied[reqID])
	}
	if s.verify == nil {
		return buf
	}
	clients := make([]uint32, 0, len(s.clients))
	for c := range s.clients {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(clients)))
	for _, c := range clients {
		st := s.clients[c]
		buf = binary.BigEndian.AppendUint32(buf, c)
		buf = binary.BigEndian.AppendUint64(buf, st.Max)
		seqs := make([]uint64, 0, len(st.Entries))
		for seq := range st.Entries {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(seqs)))
		for _, seq := range seqs {
			buf = binary.BigEndian.AppendUint64(buf, seq)
			buf = appendString(buf, st.Entries[seq])
		}
	}
	return buf
}

// RestoreState implements snapshot.Snapshotter, replacing the store's
// entire state with a decoded SnapshotState encoding (either version: v1
// restores empty client windows). The configured applied limit and
// authentication mode survive the restore; the limit is re-enforced on the
// restored table.
func (s *Store) RestoreState(data []byte) error {
	if len(data) < len(stateMagic)+8 {
		return ErrBadState
	}
	v2 := false
	switch string(data[:len(stateMagic)]) {
	case stateMagic:
	case stateMagicV2:
		v2 = true
	default:
		return ErrBadState
	}
	r := data[len(stateMagic):]
	var ok bool
	var nData uint32
	nData, r, ok = readUint32(r)
	if !ok {
		return ErrBadState
	}
	newData := make(map[string]string, nData)
	for i := uint32(0); i < nData; i++ {
		var k, v string
		if k, r, ok = readString(r); !ok {
			return ErrBadState
		}
		if v, r, ok = readString(r); !ok {
			return ErrBadState
		}
		newData[k] = v
	}
	var nApplied uint32
	nApplied, r, ok = readUint32(r)
	if !ok {
		return ErrBadState
	}
	newApplied := make(map[string]string, nApplied)
	newOrder := make([]string, 0, nApplied)
	for i := uint32(0); i < nApplied; i++ {
		var reqID, resp string
		if reqID, r, ok = readString(r); !ok {
			return ErrBadState
		}
		if resp, r, ok = readString(r); !ok {
			return ErrBadState
		}
		if _, dup := newApplied[reqID]; dup {
			return ErrBadState
		}
		newApplied[reqID] = resp
		newOrder = append(newOrder, reqID)
	}
	newClients := make(map[uint32]*wire.SeqTracker[string])
	if v2 {
		var nClients uint32
		nClients, r, ok = readUint32(r)
		if !ok {
			return ErrBadState
		}
		for i := uint32(0); i < nClients; i++ {
			var client, nSeqs uint32
			var max uint64
			if client, r, ok = readUint32(r); !ok {
				return ErrBadState
			}
			if max, r, ok = readUint64(r); !ok {
				return ErrBadState
			}
			if _, dup := newClients[client]; dup {
				return ErrBadState
			}
			if nSeqs, r, ok = readUint32(r); !ok {
				return ErrBadState
			}
			st := &wire.SeqTracker[string]{Max: max, Entries: make(map[uint64]string, nSeqs)}
			for j := uint32(0); j < nSeqs; j++ {
				var seq uint64
				var resp string
				if seq, r, ok = readUint64(r); !ok {
					return ErrBadState
				}
				if resp, r, ok = readString(r); !ok {
					return ErrBadState
				}
				if seq > max {
					return ErrBadState
				}
				if _, dup := st.Entries[seq]; dup {
					return ErrBadState
				}
				st.Entries[seq] = resp
			}
			newClients[client] = st
		}
	}
	if len(r) != 0 {
		return ErrBadState
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = newData
	s.applied = newApplied
	s.appliedOrder = newOrder
	s.clients = newClients
	s.keysResort = true // the key cache describes the replaced state
	if s.appliedLimit > 0 {
		s.pruneLocked(s.appliedLimit)
	}
	return nil
}

func appendString(buf []byte, v string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
	return append(buf, v...)
}

func readUint32(b []byte) (uint32, []byte, bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	return binary.BigEndian.Uint32(b), b[4:], true
}

func readUint64(b []byte) (uint64, []byte, bool) {
	if len(b) < 8 {
		return 0, nil, false
	}
	return binary.BigEndian.Uint64(b), b[8:], true
}

func readString(b []byte) (string, []byte, bool) {
	n, rest, ok := readUint32(b)
	if !ok || len(rest) < int(n) {
		return "", nil, false
	}
	return string(rest[:n]), rest[n:], true
}
