// Package kv is a replicated key-value store: the application layer of the
// SMR examples. Commands are strings "reqID|OP|key[|value]" with OP in
// {SET, DEL}; reads are served locally. Request IDs deduplicate client
// retries (at-most-once semantics).
package kv

import (
	"fmt"
	"strings"
	"sync"

	"genconsensus/internal/model"
)

// Store is the deterministic state machine: a string map plus the
// duplicate-suppression table.
type Store struct {
	mu      sync.RWMutex
	data    map[string]string
	applied map[string]string // reqID → response
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		data:    make(map[string]string),
		applied: make(map[string]string),
	}
}

// Command formats an SMR command. value is ignored for DEL.
func Command(reqID, op, key, value string) model.Value {
	if strings.EqualFold(op, "DEL") {
		return model.Value(fmt.Sprintf("%s|DEL|%s", reqID, key))
	}
	return model.Value(fmt.Sprintf("%s|SET|%s|%s", reqID, key, value))
}

// Apply implements smr.StateMachine.
func (s *Store) Apply(cmd model.Value) string {
	reqID, op, key, value, err := Parse(cmd)
	if err != nil {
		return "ERR " + err.Error()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if resp, done := s.applied[reqID]; done {
		return resp // duplicate client retry
	}
	var resp string
	switch op {
	case "SET":
		s.data[key] = value
		resp = "OK"
	case "DEL":
		if _, ok := s.data[key]; ok {
			delete(s.data, key)
			resp = "OK"
		} else {
			resp = "NOTFOUND"
		}
	}
	s.applied[reqID] = resp
	return resp
}

// Parse splits a command into its fields.
func Parse(cmd model.Value) (reqID, op, key, value string, err error) {
	parts := strings.Split(string(cmd), "|")
	if len(parts) < 3 {
		return "", "", "", "", fmt.Errorf("kv: malformed command %q", cmd)
	}
	reqID, op, key = parts[0], strings.ToUpper(parts[1]), parts[2]
	switch op {
	case "SET":
		if len(parts) != 4 {
			return "", "", "", "", fmt.Errorf("kv: SET needs a value: %q", cmd)
		}
		value = parts[3]
	case "DEL":
		if len(parts) != 3 {
			return "", "", "", "", fmt.Errorf("kv: DEL takes no value: %q", cmd)
		}
	default:
		return "", "", "", "", fmt.Errorf("kv: unknown op %q", op)
	}
	if reqID == "" || key == "" {
		return "", "", "", "", fmt.Errorf("kv: empty reqID or key: %q", cmd)
	}
	return reqID, op, key, value, nil
}

// Get serves a local read.
func (s *Store) Get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Snapshot copies the live data.
func (s *Store) Snapshot() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}
