// Package flv implements the FLV ("Find the Locked Value") functions of the
// generic consensus algorithm: the class-1/2/3 instantiations (Algorithms 2,
// 3 and 4 of the paper), the specialized variants used by the §5
// instantiations (FaB Paxos, Paxos, PBFT) and the Ben-Or variant of §6.
//
// An FLV function examines the vector µ of selection-round messages and
// returns either a specific value (when a value may be locked), "?" (any
// value may be selected), or "null" (not enough information). Every
// instantiation must satisfy three abstract properties:
//
//   - FLV-validity: a returned value v ∉ {?, null} appears as a vote in µ.
//   - FLV-agreement: if v is locked, only v or null can be returned.
//   - FLV-liveness: if µ contains a message from every correct process,
//     null is not returned.
package flv

import (
	"fmt"
	"sort"

	"genconsensus/internal/model"
)

// Outcome classifies the result of an FLV evaluation.
type Outcome int

const (
	// Locked means a specific value was returned (it may be the locked
	// value; FLV-agreement guarantees no other value is ever returned
	// when some value is locked).
	Locked Outcome = iota + 1
	// Any is the "?" outcome: any value may be selected.
	Any
	// None is the "null" outcome: not enough information.
	None
)

// String returns "v"/"?"/"null".
func (o Outcome) String() string {
	switch o {
	case Locked:
		return "v"
	case Any:
		return "?"
	case None:
		return "null"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result is the value returned by an FLV function. Val is meaningful only
// when Out == Locked.
type Result struct {
	Out Outcome
	Val model.Value
}

// String renders the result for traces and test failures.
func (r Result) String() string {
	if r.Out == Locked {
		return string(r.Val)
	}
	return r.Out.String()
}

// Func is the FLV parameter of the generic algorithm. Eval inspects the
// selection-round vector µ of the given phase. Implementations must be
// deterministic: two processes with identical µ obtain identical results
// (this is what makes Pcons rounds converge).
type Func interface {
	// Eval applies the function to the received vector.
	Eval(mu model.Received, phase model.Phase) Result
	// Name identifies the instantiation in traces and experiment tables.
	Name() string
}

// support returns |{m' ∈ µ : m.Vote = m'.Vote ∨ m.TS > m'.TS}|, the count
// used at line 1 of Algorithms 3 and 4: the number of received messages
// consistent with m's vote having been validated at m's timestamp.
func support(mu model.Received, m model.Message) int {
	count := 0
	for _, other := range mu {
		if other.Vote == m.Vote || m.TS > other.TS {
			count++
		}
	}
	return count
}

// sortedValues returns the distinct keys of a value set in ascending order,
// for deterministic iteration.
func sortedValues(set map[model.Value]bool) []model.Value {
	out := make([]model.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Class1 implements Algorithm 2, the FLV function for class-1 algorithms
// (FLAG = *, TD > (n+3b+f)/2). Only the vote field of µ is inspected.
//
//	correctVotes ← {v : |{(v,-,-,-) ∈ µ}| > n-TD+b}
//	if |correctVotes| = 1         → that value
//	else if |µ| > 2(n-TD+b)       → ?
//	else                          → null
type Class1 struct {
	n, td, b int
}

// NewClass1 returns Algorithm 2 configured for n processes, threshold td and
// at most b Byzantine processes.
func NewClass1(n, td, b int) *Class1 { return &Class1{n: n, td: td, b: b} }

// NewFaB returns Algorithm 6: Algorithm 2 with TD = ⌈(n+3b+1)/2⌉, the FLV
// function of FaB Paxos. With that TD the thresholds reduce to the paper's
// (n-b-1)/2 and n-b-1 forms.
func NewFaB(n, b int) *Class1 {
	return &Class1{n: n, td: (n + 3*b + 1 + 1) / 2, b: b}
}

// Name implements Func.
func (c *Class1) Name() string { return "flv/class1" }

// Eval implements Func.
func (c *Class1) Eval(mu model.Received, _ model.Phase) Result {
	threshold := c.n - c.td + c.b
	correct := make(map[model.Value]bool)
	for v, count := range mu.VoteCounts() {
		if count > threshold {
			correct[v] = true
		}
	}
	if len(correct) == 1 {
		return Result{Out: Locked, Val: sortedValues(correct)[0]}
	}
	if len(mu) > 2*threshold {
		return Result{Out: Any}
	}
	return Result{Out: None}
}

// Class2 implements Algorithm 3, the FLV function for class-2 algorithms
// (FLAG = φ, TD > 3b+f). Votes and timestamps are inspected.
//
//	possibleVotes ← {# m ∈ µ : support(m) > n-TD+b #}      (multiset)
//	correctVotes  ← {v : multiplicity of v in possibleVotes > b}
//	if |correctVotes| = 1        → that value
//	else if |µ| > n-TD+2b        → ?
//	else                         → null
type Class2 struct {
	n, td, b int
}

// NewClass2 returns Algorithm 3 configured for n processes, threshold td and
// at most b Byzantine processes.
func NewClass2(n, td, b int) *Class2 { return &Class2{n: n, td: td, b: b} }

// Name implements Func.
func (c *Class2) Name() string { return "flv/class2" }

// Eval implements Func.
func (c *Class2) Eval(mu model.Received, _ model.Phase) Result {
	threshold := c.n - c.td + c.b
	// Multiplicity of each vote value among messages in possibleVotes.
	possibleByValue := make(map[model.Value]int)
	for _, m := range mu {
		if m.Vote == model.NoValue {
			continue
		}
		if support(mu, m) > threshold {
			possibleByValue[m.Vote]++
		}
	}
	correct := make(map[model.Value]bool)
	for v, mult := range possibleByValue {
		if mult > c.b {
			correct[v] = true
		}
	}
	if len(correct) == 1 {
		return Result{Out: Locked, Val: sortedValues(correct)[0]}
	}
	if len(mu) > c.n-c.td+2*c.b {
		return Result{Out: Any}
	}
	return Result{Out: None}
}

// Class3 implements Algorithm 4, the FLV function for class-3 algorithms
// (FLAG = φ, TD > 2b+f). Votes, timestamps and histories are inspected; a
// (vote, ts) pair counts as correct only when more than b received histories
// contain it, proving at least one honest process logged the selection.
//
//	possibleVotes ← {m ∈ µ : support(m) > n-TD+b}
//	correctVotes  ← {v : (v,ts) ∈ possibleVotes ∧
//	                     |{m' ∈ µ : (v,ts) ∈ m'.history}| > b}
//	if |correctVotes| = 1                       → that value
//	else if |correctVotes| > 1                  → ?
//	else if |{m ∈ µ : m.ts = 0}| > n-TD+b       → unanimity check / ?
//	else                                        → null
//
// The unanimity check (lines 8-9, applied only when the Unanimity option is
// set) returns v when a strict majority of µ votes v.
type Class3 struct {
	n, td, b  int
	unanimity bool
}

// NewClass3 returns Algorithm 4 configured for n processes, threshold td, at
// most b Byzantine processes. When unanimity is true, lines 8-9 of
// Algorithm 4 are active (needed to satisfy the Unanimity property).
func NewClass3(n, td, b int, unanimity bool) *Class3 {
	return &Class3{n: n, td: td, b: b, unanimity: unanimity}
}

// NewPBFT returns Algorithm 8: the class-3 FLV with the unanimity lines
// removed and the two "?" conditions merged, as used by the PBFT
// instantiation (TD = 2b+1). It is behaviourally identical to
// NewClass3(n, td, b, false).
func NewPBFT(n, b int) *Class3 {
	return &Class3{n: n, td: 2*b + 1, b: b, unanimity: false}
}

// Name implements Func.
func (c *Class3) Name() string { return "flv/class3" }

// Eval implements Func.
func (c *Class3) Eval(mu model.Received, _ model.Phase) Result {
	threshold := c.n - c.td + c.b
	type pair struct {
		v  model.Value
		ts model.Phase
	}
	possible := make(map[pair]bool)
	for _, m := range mu {
		if m.Vote == model.NoValue {
			continue
		}
		if support(mu, m) > threshold {
			possible[pair{m.Vote, m.TS}] = true
		}
	}
	correct := make(map[model.Value]bool)
	for p := range possible {
		backers := 0
		for _, m := range mu {
			if m.History.Contains(p.v, p.ts) {
				backers++
			}
		}
		if backers > c.b {
			correct[p.v] = true
		}
	}
	switch {
	case len(correct) == 1:
		return Result{Out: Locked, Val: sortedValues(correct)[0]}
	case len(correct) > 1:
		return Result{Out: Any}
	}
	tsZero := 0
	for _, m := range mu {
		if m.TS == 0 {
			tsZero++
		}
	}
	if tsZero > threshold {
		if c.unanimity {
			for v, count := range mu.VoteCounts() {
				if 2*count > len(mu) {
					return Result{Out: Locked, Val: v}
				}
			}
		}
		return Result{Out: Any}
	}
	return Result{Out: None}
}

// Paxos implements Algorithm 7: the benign-fault (b = 0) simplification of
// the class-3 FLV used by the Paxos instantiation, with TD = ⌈(n+1)/2⌉.
// Histories are unnecessary because with honest processes every message
// satisfies (vote, ts) ∈ history, so possibleVotes = correctVotes.
//
//	possibleVotes ← {v : ∃ m ∈ µ with m.Vote=v, support(m) > n/2}
//	if |possibleVotes| = 1  → that value
//	else if |µ| > n/2       → ?
//	else                    → null
type Paxos struct {
	n int
}

// NewPaxos returns Algorithm 7 for n processes.
func NewPaxos(n int) *Paxos { return &Paxos{n: n} }

// Name implements Func.
func (c *Paxos) Name() string { return "flv/paxos" }

// Eval implements Func.
func (c *Paxos) Eval(mu model.Received, _ model.Phase) Result {
	possible := make(map[model.Value]bool)
	for _, m := range mu {
		if m.Vote == model.NoValue {
			continue
		}
		if 2*support(mu, m) > c.n {
			possible[m.Vote] = true
		}
	}
	if len(possible) == 1 {
		return Result{Out: Locked, Val: sortedValues(possible)[0]}
	}
	if 2*len(mu) > c.n {
		return Result{Out: Any}
	}
	return Result{Out: None}
}

// BenOr implements Algorithm 9: the FLV variant of the Ben-Or randomized
// binary consensus algorithms (§6). It is a degenerate class-2 function that
// relies on the Prel communication predicate holding in every round:
//
//	if b+1 messages ⟨v, φ-1, -⟩ received  → v
//	else                                  → ?
//
// It never returns null, which is exactly the stronger FLV-liveness property
// randomized algorithms require.
type BenOr struct {
	b int
}

// NewBenOr returns Algorithm 9 tolerating b Byzantine processes (use b = 0
// for the benign variant).
func NewBenOr(b int) *BenOr { return &BenOr{b: b} }

// Name implements Func.
func (c *BenOr) Name() string { return "flv/ben-or" }

// Eval implements Func.
func (c *BenOr) Eval(mu model.Received, phase model.Phase) Result {
	counts := make(map[model.Value]int)
	for _, m := range mu {
		if m.Vote != model.NoValue && m.TS == phase-1 {
			counts[m.Vote]++
		}
	}
	matched := make(map[model.Value]bool)
	for v, count := range counts {
		if count >= c.b+1 {
			matched[v] = true
		}
	}
	if len(matched) >= 1 {
		// With Prel and honest majorities at most one value can reach
		// b+1 validated copies; pick deterministically regardless.
		return Result{Out: Locked, Val: sortedValues(matched)[0]}
	}
	return Result{Out: Any}
}
