package flv

import (
	"testing"

	"genconsensus/internal/model"
)

// Exhaustive small-model checking of FLV-agreement: rather than sampling
// adversarial vectors, enumerate *every* protocol-reachable honest
// configuration and *every* Byzantine message over a small domain, plus
// every receive subset, and assert that when v1 is locked, nothing but v1
// or null ever comes back.

// enumByzMessages enumerates Byzantine selection messages over a small
// domain: votes {v1,v2}, timestamps 0..maxTS, histories built from up to
// two forged entries.
func enumByzMessages(maxTS model.Phase) []model.Message {
	var out []model.Message
	votes := []model.Value{v1, v2}
	for _, vote := range votes {
		for ts := model.Phase(0); ts <= maxTS; ts++ {
			base := model.NewHistory(vote)
			hists := []model.History{
				nil,
				base,
				base.Clone().Add(vote, ts),
				base.Clone().Add(vote, ts).Add(v2, maxTS),
				model.NewHistory(v2).Add(v2, maxTS).Add(v2, maxTS-1),
			}
			for _, h := range hists {
				out = append(out, sel(vote, ts, h))
			}
		}
	}
	return out
}

// TestClass2ExhaustiveAgreement: n=5, b=1, TD=4; v1 decided at phase 2, so
// 3 honest processes hold (v1, 2). The fourth honest process ranges over
// every state compatible with Lemma 4 (vote=v1 or ts<2); the Byzantine
// message ranges over the full enumeration; the receive subset ranges over
// all 2^5. Every evaluation must return v1 or null.
func TestClass2ExhaustiveAgreement(t *testing.T) {
	f := NewClass2(5, 4, 1)
	const phi = model.Phase(3) // evaluating in phase 3, lock from phase 2
	honestLocked := []model.Message{
		sel(v1, 2, nil), sel(v1, 2, nil), sel(v1, 2, nil),
	}
	// Fourth honest process: Lemma 4-compatible states.
	var laggards []model.Message
	for _, vote := range []model.Value{v1, v2} {
		for ts := model.Phase(0); ts <= 2; ts++ {
			if vote != v1 && ts >= 2 {
				continue // only v1 was validated at phase 2
			}
			laggards = append(laggards, sel(vote, ts, nil))
		}
	}
	byzMsgs := enumByzMessages(5)
	evals := 0
	for _, laggard := range laggards {
		for _, byz := range byzMsgs {
			msgs := append(append([]model.Message{}, honestLocked...), laggard, byz)
			for mask := 0; mask < 1<<5; mask++ {
				mu := model.Received{}
				for i := 0; i < 5; i++ {
					if mask&(1<<i) != 0 {
						mu[model.PID(i)] = msgs[i]
					}
				}
				res := f.Eval(mu, phi)
				evals++
				if res.Out == Any {
					t.Fatalf("laggard=%v byz=%v mask=%05b: returned ?, v1 is locked", laggard, byz, mask)
				}
				if res.Out == Locked && res.Val != v1 {
					t.Fatalf("laggard=%v byz=%v mask=%05b: returned %v, v1 is locked", laggard, byz, mask, res)
				}
			}
		}
	}
	t.Logf("class-2 exhaustive agreement: %d evaluations, zero violations", evals)
}

// TestClass3ExhaustiveAgreement: n=4, b=1, TD=3; v1 decided at phase 2, so
// 2 honest processes hold (v1, 2) with matching histories. The third honest
// process ranges over Lemma-4/(***)-compatible states; the Byzantine message
// ranges over the full enumeration including forged histories.
func TestClass3ExhaustiveAgreement(t *testing.T) {
	f := NewClass3(4, 3, 1, false)
	const phi = model.Phase(3)
	h1 := model.NewHistory(v1).Add(v1, 2)
	h2 := model.NewHistory(v2).Add(v1, 2)
	honestLocked := []model.Message{sel(v1, 2, h1), sel(v1, 2, h2)}
	var laggards []model.Message
	for _, vote := range []model.Value{v1, v2} {
		for ts := model.Phase(0); ts <= 2; ts++ {
			if vote != v1 && ts >= 2 {
				continue
			}
			// History: entries with phase ≤ 2; any entry at phase 2
			// must be v1 (***). Enumerate a few shapes.
			base := model.NewHistory(vote)
			hists := []model.History{
				base,
				base.Clone().Add(vote, ts),
				base.Clone().Add(vote, ts).Add(v1, 2),
			}
			for _, h := range hists {
				laggards = append(laggards, sel(vote, ts, h))
			}
		}
	}
	byzMsgs := enumByzMessages(5)
	evals := 0
	for _, laggard := range laggards {
		for _, byz := range byzMsgs {
			msgs := append(append([]model.Message{}, honestLocked...), laggard, byz)
			for mask := 0; mask < 1<<4; mask++ {
				mu := model.Received{}
				for i := 0; i < 4; i++ {
					if mask&(1<<i) != 0 {
						mu[model.PID(i)] = msgs[i]
					}
				}
				res := f.Eval(mu, phi)
				evals++
				if res.Out == Any {
					t.Fatalf("laggard=%v byz=%v mask=%04b: returned ?, v1 is locked", laggard, byz, mask)
				}
				if res.Out == Locked && res.Val != v1 {
					t.Fatalf("laggard=%v byz=%v mask=%04b: returned %v, v1 is locked", laggard, byz, mask, res)
				}
			}
		}
	}
	t.Logf("class-3 exhaustive agreement: %d evaluations, zero violations", evals)
}

// TestClass1ExhaustiveAgreement: n=6, b=1, TD=5; v1 decided, so (FLAG=*)
// every honest process votes v1 once v1 is locked; the Byzantine message
// ranges over the enumeration and every receive subset is checked.
func TestClass1ExhaustiveAgreement(t *testing.T) {
	f := NewClass1(6, 5, 1)
	honest := []model.Message{
		sel(v1, 0, nil), sel(v1, 0, nil), sel(v1, 0, nil), sel(v1, 0, nil), sel(v1, 0, nil),
	}
	byzMsgs := enumByzMessages(3)
	evals := 0
	for _, byz := range byzMsgs {
		msgs := append(append([]model.Message{}, honest...), byz)
		for mask := 0; mask < 1<<6; mask++ {
			mu := model.Received{}
			for i := 0; i < 6; i++ {
				if mask&(1<<i) != 0 {
					mu[model.PID(i)] = msgs[i]
				}
			}
			res := f.Eval(mu, 2)
			evals++
			if res.Out == Any {
				t.Fatalf("byz=%v mask=%06b: returned ?, v1 is locked", byz, mask)
			}
			if res.Out == Locked && res.Val != v1 {
				t.Fatalf("byz=%v mask=%06b: returned %v, v1 is locked", byz, mask, res)
			}
		}
	}
	t.Logf("class-1 exhaustive agreement: %d evaluations, zero violations", evals)
}

// The Paxos FLV (Algorithm 7, b=0): exhaustive over honest benign states.
// v1 decided at phase 2 with majority TD=2 of n=3: both deciders hold
// (v1, 2); the third process holds any Lemma-4-compatible state. No
// Byzantine messages (b=0); message loss is modelled by subsets.
func TestPaxosExhaustiveAgreement(t *testing.T) {
	f := NewPaxos(3)
	deciders := []model.Message{sel(v1, 2, nil), sel(v1, 2, nil)}
	var thirds []model.Message
	for _, vote := range []model.Value{v1, v2} {
		for ts := model.Phase(0); ts <= 2; ts++ {
			if vote != v1 && ts >= 2 {
				continue
			}
			thirds = append(thirds, sel(vote, ts, nil))
		}
	}
	for _, third := range thirds {
		msgs := append(append([]model.Message{}, deciders...), third)
		for mask := 0; mask < 1<<3; mask++ {
			mu := model.Received{}
			for i := 0; i < 3; i++ {
				if mask&(1<<i) != 0 {
					mu[model.PID(i)] = msgs[i]
				}
			}
			res := f.Eval(mu, 3)
			if res.Out == Any && len(mu) >= 2 &&
				(mask&1 != 0 || mask&2 != 0) {
				// A majority vector containing a decider must not
				// return "?" — the decider's (v1, 2) dominates.
				t.Fatalf("third=%v mask=%03b: returned ? with a decider present", third, mask)
			}
			if res.Out == Locked && res.Val != v1 {
				t.Fatalf("third=%v mask=%03b: returned %v, v1 is locked", third, mask, res)
			}
		}
	}
}
