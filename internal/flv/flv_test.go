package flv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"genconsensus/internal/model"
)

const (
	v1 = model.Value("v1")
	v2 = model.Value("v2")
	v3 = model.Value("v3")
)

func sel(vote model.Value, ts model.Phase, hist model.History) model.Message {
	return model.Message{Kind: model.SelectionRound, Vote: vote, TS: ts, History: hist}
}

func TestOutcomeString(t *testing.T) {
	if Locked.String() != "v" || Any.String() != "?" || None.String() != "null" {
		t.Errorf("outcome strings: %s %s %s", Locked, Any, None)
	}
	if Outcome(7).String() != "Outcome(7)" {
		t.Errorf("unknown outcome: %s", Outcome(7))
	}
	if (Result{Out: Locked, Val: "x"}).String() != "x" {
		t.Error("locked result must render its value")
	}
	if (Result{Out: Any}).String() != "?" {
		t.Error("any result must render ?")
	}
}

// --- Figure 1: class-1 FLV, n=6, b=1, f=0, TD=5 ---------------------------
//
// v1 is locked: TD-b = 4 honest processes vote v1; at most n-TD+b = 2
// processes vote v2. Any received vector with more than 2(n-TD+b) = 4
// messages must contain more than 2 copies of v1, so FLV returns v1.

func figure1Messages() []model.Message {
	return []model.Message{
		sel(v1, 0, nil), sel(v1, 0, nil), sel(v1, 0, nil), sel(v1, 0, nil),
		sel(v2, 0, nil), sel(v2, 0, nil),
	}
}

func TestFigure1FullVector(t *testing.T) {
	f := NewClass1(6, 5, 1)
	mu := model.Received{}
	for i, m := range figure1Messages() {
		mu[model.PID(i)] = m
	}
	got := f.Eval(mu, 1)
	if got.Out != Locked || got.Val != v1 {
		t.Fatalf("Eval(full Figure 1 vector) = %v, want locked v1", got)
	}
}

// Every subset of size 5 (> 2(n-TD+b) = 4) returns v1; every subset of
// size ≤ 4 returns v1 or null, never v2 or "?": FLV-agreement on the
// Figure 1 configuration, exhaustively.
func TestFigure1AllSubsets(t *testing.T) {
	f := NewClass1(6, 5, 1)
	msgs := figure1Messages()
	for mask := 0; mask < 1<<6; mask++ {
		mu := model.Received{}
		for i := 0; i < 6; i++ {
			if mask&(1<<i) != 0 {
				mu[model.PID(i)] = msgs[i]
			}
		}
		got := f.Eval(mu, 1)
		switch {
		case got.Out == Locked && got.Val != v1:
			t.Fatalf("subset %06b: returned %v, violating FLV-agreement", mask, got)
		case got.Out == Any:
			t.Fatalf("subset %06b: returned ?, violating FLV-agreement", mask)
		case len(mu) > 4 && got.Out != Locked:
			t.Fatalf("subset %06b (size %d > 4): returned %v, want locked v1", mask, len(mu), got)
		}
	}
}

// --- Figure 2: class-2 FLV, n=5, b=1, f=0, TD=4 ---------------------------
//
// v1 locked at phase φ1 = 2: TD-b = 3 honest processes hold (v1, φ1); one
// honest process holds (v2, φ2' < φ1); the Byzantine process forges
// (v2, φ2 > φ1). Timestamps + the >b multiplicity rule expose the forgery.

func figure2Messages() []model.Message {
	const phi1 = 2
	return []model.Message{
		sel(v1, phi1, nil), sel(v1, phi1, nil), sel(v1, phi1, nil),
		sel(v2, phi1-1, nil), // honest, older validation
		sel(v2, phi1+3, nil), // Byzantine, forged future timestamp
	}
}

func TestFigure2FullVector(t *testing.T) {
	f := NewClass2(5, 4, 1)
	mu := model.Received{}
	for i, m := range figure2Messages() {
		mu[model.PID(i)] = m
	}
	got := f.Eval(mu, 3)
	if got.Out != Locked || got.Val != v1 {
		t.Fatalf("Eval(full Figure 2 vector) = %v, want locked v1", got)
	}
}

func TestFigure2AllSubsets(t *testing.T) {
	f := NewClass2(5, 4, 1)
	msgs := figure2Messages()
	for mask := 0; mask < 1<<5; mask++ {
		mu := model.Received{}
		for i := 0; i < 5; i++ {
			if mask&(1<<i) != 0 {
				mu[model.PID(i)] = msgs[i]
			}
		}
		got := f.Eval(mu, 3)
		switch {
		case got.Out == Locked && got.Val != v1:
			t.Fatalf("subset %05b: returned %v, violating FLV-agreement", mask, got)
		case got.Out == Any:
			t.Fatalf("subset %05b: returned ?, violating FLV-agreement", mask)
		// |µ| > n-TD+2b = 3 must produce the locked value.
		case len(mu) > 3 && got.Out != Locked:
			t.Fatalf("subset %05b (size %d > 3): returned %v, want locked v1", mask, len(mu), got)
		}
	}
}

// The forged high timestamp alone (without >b backing) must never win even
// when the Byzantine message has the highest support count.
func TestClass2ForgedTimestampNeedsMultiplicity(t *testing.T) {
	f := NewClass2(5, 4, 1)
	mu := model.Received{
		0: sel(v1, 2, nil),
		1: sel(v1, 2, nil),
		2: sel(v2, 9, nil), // Byzantine: support = |µ| by ts domination
		3: sel(v1, 2, nil),
	}
	got := f.Eval(mu, 3)
	if got.Out != Locked || got.Val != v1 {
		t.Fatalf("Eval = %v, want locked v1 despite forged ts", got)
	}
}

// --- Figure 3: class-3 FLV, n=4, b=1, f=0, TD=3 ---------------------------
//
// v1 locked at phase φ1 = 2: TD-b = 2 honest processes hold (v1, φ1) with
// histories containing (v1, φ1); one honest process holds (v2, φ2' < φ1);
// the Byzantine process forges (v2, φ2 > φ1) with a fabricated history.
// Histories prove validation: only (v1, φ1) is backed by > b = 1 histories.

func figure3Messages() []model.Message {
	const phi1 = 2
	h1 := model.NewHistory(v1).Add(v1, phi1)
	h2 := model.NewHistory(v2).Add(v1, phi1)
	h3 := model.NewHistory(v2).Add(v2, phi1-1)
	h4 := model.NewHistory(v2).Add(v2, phi1+3) // forged
	return []model.Message{
		sel(v1, phi1, h1),
		sel(v1, phi1, h2),
		sel(v2, phi1-1, h3),
		sel(v2, phi1+3, h4),
	}
}

func TestFigure3FullVector(t *testing.T) {
	f := NewClass3(4, 3, 1, false)
	mu := model.Received{}
	for i, m := range figure3Messages() {
		mu[model.PID(i)] = m
	}
	got := f.Eval(mu, 3)
	if got.Out != Locked || got.Val != v1 {
		t.Fatalf("Eval(full Figure 3 vector) = %v, want locked v1", got)
	}
}

func TestFigure3AllSubsets(t *testing.T) {
	f := NewClass3(4, 3, 1, false)
	msgs := figure3Messages()
	for mask := 0; mask < 1<<4; mask++ {
		mu := model.Received{}
		for i := 0; i < 4; i++ {
			if mask&(1<<i) != 0 {
				mu[model.PID(i)] = msgs[i]
			}
		}
		got := f.Eval(mu, 3)
		if got.Out == Locked && got.Val != v1 {
			t.Fatalf("subset %04b: returned %v, violating FLV-agreement", mask, got)
		}
		if got.Out == Any {
			t.Fatalf("subset %04b: returned ?, violating FLV-agreement", mask)
		}
	}
}

// A forged history entry backed by only the forger is not enough: the >b
// backing rule rejects it even when its (vote, ts) pair has top support.
// On this 3-message vector the Byzantine message dominates by timestamp so
// (v2, 7) is in possibleVotes, but with a single backer the safe answer is
// null — never v2 and never "?".
func TestClass3ForgedHistoryRejected(t *testing.T) {
	f := NewClass3(4, 3, 1, false)
	forged := model.NewHistory(v2).Add(v2, 7)
	mu := model.Received{
		0: sel(v1, 2, model.NewHistory(v1).Add(v1, 2)),
		1: sel(v1, 2, model.NewHistory(v1).Add(v1, 2)),
		2: sel(v2, 7, forged),
	}
	got := f.Eval(mu, 3)
	if got.Out != None {
		t.Fatalf("Eval = %v, want null (forged entry has 1 backer ≤ b)", got)
	}
	// Adding the fourth (honest, old-timestamp) message restores enough
	// information to identify v1 (this is the Figure 3 vector).
	mu[3] = sel(v2, 1, model.NewHistory(v2).Add(v2, 1))
	got = f.Eval(mu, 3)
	if got.Out != Locked || got.Val != v1 {
		t.Fatalf("Eval(4 msgs) = %v, want locked v1", got)
	}
}

// Unanimity (lines 8-9 of Algorithm 4): when all timestamps are 0 and a
// strict majority votes v, v is returned — only when unanimity is enabled.
func TestClass3Unanimity(t *testing.T) {
	// n=5, b=1, TD=3 (valid class 3): four correct messages, three voting
	// v1. No (v, 0) pair reaches support > n-TD+b = 3, so correctVotes is
	// empty and the ts=0 branch is taken; v1 holds a strict majority of µ.
	mu := model.Received{
		0: sel(v1, 0, model.NewHistory(v1)),
		1: sel(v1, 0, model.NewHistory(v1)),
		2: sel(v1, 0, model.NewHistory(v1)),
		3: sel(v2, 0, model.NewHistory(v2)),
	}
	withU := NewClass3(5, 3, 1, true)
	got := withU.Eval(mu, 1)
	if got.Out != Locked || got.Val != v1 {
		t.Fatalf("unanimity variant: Eval = %v, want locked v1", got)
	}
	withoutU := NewClass3(5, 3, 1, false)
	got = withoutU.Eval(mu, 1)
	if got.Out != Any {
		t.Fatalf("non-unanimity variant: Eval = %v, want ?", got)
	}
}

// Without a majority the unanimity branch returns "?" even when enabled.
func TestClass3UnanimityNoMajority(t *testing.T) {
	mu := model.Received{
		0: sel(v1, 0, model.NewHistory(v1)),
		1: sel(v1, 0, model.NewHistory(v1)),
		2: sel(v2, 0, model.NewHistory(v2)),
		3: sel(v2, 0, model.NewHistory(v2)),
	}
	f := NewClass3(4, 3, 1, true)
	if got := f.Eval(mu, 1); got.Out != Any {
		t.Fatalf("Eval = %v, want ?", got)
	}
}

// --- Algorithm 8 (PBFT) ≡ class 3 without unanimity ------------------------

func TestPBFTMatchesClass3(t *testing.T) {
	n, b := 4, 1
	pbft := NewPBFT(n, b)
	generic := NewClass3(n, 2*b+1, b, false)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		mu := randomVector(rng, n, 4)
		g1 := pbft.Eval(mu, model.Phase(1+rng.Intn(4)))
		g2 := generic.Eval(mu, model.Phase(1+rng.Intn(4)))
		if g1 != g2 {
			t.Fatalf("trial %d: PBFT FLV %v != class-3 FLV %v on %v", trial, g1, g2, mu)
		}
	}
}

// --- Algorithm 7 (Paxos) ---------------------------------------------------

func TestPaxosFLVPicksHighestTimestamp(t *testing.T) {
	f := NewPaxos(3)
	mu := model.Received{
		0: sel(v1, 2, nil),
		1: sel(v1, 1, nil),
		2: sel(v2, 0, nil),
	}
	got := f.Eval(mu, 3)
	if got.Out != Locked || got.Val != v1 {
		t.Fatalf("Eval = %v, want locked v1 (highest ts)", got)
	}
}

func TestPaxosFLVFreshSystem(t *testing.T) {
	f := NewPaxos(3)
	mu := model.Received{
		0: sel(v1, 0, nil),
		1: sel(v2, 0, nil),
	}
	got := f.Eval(mu, 1)
	if got.Out != Any {
		t.Fatalf("Eval = %v, want ? (nothing locked, majority heard)", got)
	}
}

func TestPaxosFLVInsufficientInfo(t *testing.T) {
	f := NewPaxos(5)
	mu := model.Received{0: sel(v1, 0, nil), 1: sel(v2, 0, nil)}
	got := f.Eval(mu, 1)
	if got.Out != None {
		t.Fatalf("Eval = %v, want null (|µ| ≤ n/2)", got)
	}
}

func TestPaxosFLVLockedMajority(t *testing.T) {
	f := NewPaxos(3)
	mu := model.Received{
		0: sel(v1, 1, nil),
		1: sel(v1, 1, nil),
	}
	got := f.Eval(mu, 2)
	if got.Out != Locked || got.Val != v1 {
		t.Fatalf("Eval = %v, want locked v1", got)
	}
}

// --- Algorithm 9 (Ben-Or) --------------------------------------------------

func TestBenOrFLV(t *testing.T) {
	f := NewBenOr(1)
	phase := model.Phase(3)
	tests := []struct {
		name string
		mu   model.Received
		want Result
	}{
		{
			name: "b+1 votes validated last phase",
			mu: model.Received{
				0: sel(v1, phase-1, nil),
				1: sel(v1, phase-1, nil),
				2: sel(v2, 0, nil),
			},
			want: Result{Out: Locked, Val: v1},
		},
		{
			name: "only b votes validated last phase",
			mu: model.Received{
				0: sel(v1, phase-1, nil),
				1: sel(v2, 0, nil),
				2: sel(v2, 0, nil),
			},
			want: Result{Out: Any},
		},
		{
			name: "stale validation ignored",
			mu: model.Received{
				0: sel(v1, phase-2, nil),
				1: sel(v1, phase-2, nil),
			},
			want: Result{Out: Any},
		},
		{name: "empty vector still returns ?", mu: model.Received{}, want: Result{Out: Any}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := f.Eval(tt.mu, phase); got != tt.want {
				t.Fatalf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBenOrNeverNull(t *testing.T) {
	f := NewBenOr(1)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		mu := randomVector(rng, 5, 4)
		if got := f.Eval(mu, model.Phase(1+rng.Intn(5))); got.Out == None {
			t.Fatalf("Ben-Or FLV returned null on %v", mu)
		}
	}
}

// --- FLV-liveness tightness (E-TIGHT at the FLV level) ---------------------

// MQB at n = 4b (one below its bound): even a vector containing a message
// from every correct process can yield null — FLV-liveness fails.
func TestClass2LivenessFailsBelowBound(t *testing.T) {
	// n=4, b=1, f=0; the largest TD compatible with termination is
	// n-b = 3, which violates TD > 3b = 3.
	f := NewClass2(4, 3, 1)
	// Protocol-reachable: three correct processes with distinct validated
	// values at distinct phases (possible across phases in bad periods).
	mu := model.Received{
		0: sel(v1, 2, nil),
		1: sel(v2, 1, nil),
		2: sel(v3, 0, nil),
	}
	if got := f.Eval(mu, 3); got.Out != None {
		t.Fatalf("Eval = %v, want null: FLV-liveness must fail at n=4b", got)
	}
}

// MQB at its bound n = 4b+1: any vector with all n-b = 4 correct messages
// yields non-null.
func TestClass2LivenessHoldsAtBound(t *testing.T) {
	f := NewClass2(5, 4, 1)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		mu := honestReachableVector(rng, 4)
		if got := f.Eval(mu, 5); got.Out == None {
			t.Fatalf("trial %d: null on full correct vector %v", trial, mu)
		}
	}
}

// FaB at n = 5b: with TD = n-b (max for termination), FLV-liveness fails.
func TestClass1LivenessFailsBelowBound(t *testing.T) {
	f := NewClass1(5, 4, 1) // n=5b, TD = n-b = 4 ≤ (n+3b)/2
	mu := model.Received{
		0: sel(v1, 0, nil),
		1: sel(v1, 0, nil),
		2: sel(v2, 0, nil),
		3: sel(v2, 0, nil),
	}
	if got := f.Eval(mu, 1); got.Out != None {
		t.Fatalf("Eval = %v, want null: FLV-liveness must fail at n=5b", got)
	}
}

func TestClass1LivenessHoldsAtBound(t *testing.T) {
	f := NewClass1(6, 5, 1) // n = 5b+1, TD = n-b = 5
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 500; trial++ {
		mu := model.Received{}
		for i := 0; i < 5; i++ { // all n-b correct messages
			mu[model.PID(i)] = sel([]model.Value{v1, v2, v3}[rng.Intn(3)], 0, nil)
		}
		if got := f.Eval(mu, 1); got.Out == None {
			t.Fatalf("trial %d: null on full correct vector %v", trial, mu)
		}
	}
}

// --- Property-based FLV property tests --------------------------------------

// randomVector builds a fully arbitrary µ (for validity-style properties).
func randomVector(rng *rand.Rand, n, maxPhase int) model.Received {
	mu := model.Received{}
	vals := []model.Value{v1, v2, v3}
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			continue // missing message
		}
		v := vals[rng.Intn(len(vals))]
		ts := model.Phase(rng.Intn(maxPhase))
		h := model.NewHistory(vals[rng.Intn(len(vals))])
		for j := 0; j < rng.Intn(3); j++ {
			h = h.Add(vals[rng.Intn(len(vals))], model.Phase(rng.Intn(maxPhase)))
		}
		mu[model.PID(i)] = sel(v, ts, h)
	}
	return mu
}

// honestReachableVector builds a µ of exactly k honest messages consistent
// with the protocol: per-process (vote, ts) with ts-consistent histories and
// at most one validated value per phase across the vector (Lemma 4).
func honestReachableVector(rng *rand.Rand, k int) model.Received {
	vals := []model.Value{v1, v2, v3}
	// One validated value per phase.
	phaseVal := map[model.Phase]model.Value{}
	mu := model.Received{}
	for i := 0; i < k; i++ {
		ts := model.Phase(rng.Intn(3))
		var v model.Value
		if ts == 0 {
			v = vals[rng.Intn(len(vals))]
		} else {
			if existing, ok := phaseVal[ts]; ok {
				v = existing
			} else {
				v = vals[rng.Intn(len(vals))]
				phaseVal[ts] = v
			}
		}
		h := model.NewHistory(v)
		if ts > 0 {
			h = h.Add(v, ts)
		}
		mu[model.PID(i)] = sel(v, ts, h)
	}
	return mu
}

// FLV-validity for all instantiations: a Locked result's value appears as a
// vote in µ.
func TestFLVValidityProperty(t *testing.T) {
	funcs := []Func{
		NewClass1(6, 5, 1),
		NewClass2(5, 4, 1),
		NewClass3(4, 3, 1, false),
		NewClass3(4, 3, 1, true),
		NewPaxos(5),
		NewPBFT(4, 1),
		NewBenOr(1),
	}
	prop := func(seed int64, phaseRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		phase := model.Phase(1 + phaseRaw%5)
		mu := randomVector(rng, 6, 5)
		for _, f := range funcs {
			res := f.Eval(mu, phase)
			if res.Out != Locked {
				continue
			}
			found := false
			for _, v := range mu.Votes() {
				if v == res.Val {
					found = true
					break
				}
			}
			if !found {
				t.Logf("%s returned %v not present in %v", f.Name(), res, mu)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// FLV-agreement property for class 1: plant a decided value (TD-b honest
// v-votes), add adversarial fill, evaluate arbitrary subsets: only v or null
// may be returned.
func TestClass1AgreementProperty(t *testing.T) {
	n, td, b := 6, 5, 1
	f := NewClass1(n, td, b)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		locked := v1
		msgs := make([]model.Message, 0, n)
		for i := 0; i < td-b; i++ { // honest processes that decided v1
			msgs = append(msgs, sel(locked, 0, nil))
		}
		for i := td - b; i < n-b; i++ { // other honest: must also hold v1
			// With FLAG=*, once v1 is decided every honest vote is v1
			// (agreement proof, case φ' > φ). Model the worst case
			// where the adversary controls everything else:
			msgs = append(msgs, sel(locked, 0, nil))
		}
		for i := n - b; i < n; i++ { // Byzantine: arbitrary
			msgs = append(msgs, sel([]model.Value{v2, v3}[rng.Intn(2)], model.Phase(rng.Intn(9)), nil))
		}
		// Arbitrary subset.
		mu := model.Received{}
		for i, m := range msgs {
			if rng.Intn(2) == 0 {
				mu[model.PID(i)] = m
			}
		}
		res := f.Eval(mu, model.Phase(1+rng.Intn(4)))
		return res.Out == None || (res.Out == Locked && res.Val == locked)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// FLV-agreement property for class 2: v1 validated at phase φ1 by TD-b
// honest processes; remaining honest have older timestamps (Lemma 4 (**));
// Byzantine fill is arbitrary. Only v1 or null may come back.
func TestClass2AgreementProperty(t *testing.T) {
	n, td, b := 5, 4, 1
	f := NewClass2(n, td, b)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const phi1 = model.Phase(3)
		locked := v1
		msgs := make([]model.Message, 0, n)
		for i := 0; i < td-b; i++ {
			msgs = append(msgs, sel(locked, phi1, nil))
		}
		for i := td - b; i < n-b; i++ {
			// Honest process that missed the validation: either votes
			// v1 too, or holds an older timestamp with any value.
			if rng.Intn(2) == 0 {
				msgs = append(msgs, sel(locked, model.Phase(rng.Intn(int(phi1)+1)), nil))
			} else {
				msgs = append(msgs, sel([]model.Value{v2, v3}[rng.Intn(2)], model.Phase(rng.Intn(int(phi1))), nil))
			}
		}
		for i := n - b; i < n; i++ { // Byzantine: arbitrary, incl. forged future ts
			msgs = append(msgs, sel([]model.Value{v1, v2, v3}[rng.Intn(3)], model.Phase(rng.Intn(12)), nil))
		}
		mu := model.Received{}
		for i, m := range msgs {
			if rng.Intn(2) == 0 {
				mu[model.PID(i)] = m
			}
		}
		res := f.Eval(mu, phi1+1)
		return res.Out == None || (res.Out == Locked && res.Val == locked)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// FLV-agreement property for class 3, with forged Byzantine histories.
func TestClass3AgreementProperty(t *testing.T) {
	n, td, b := 4, 3, 1
	f := NewClass3(n, td, b, false)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const phi1 = model.Phase(3)
		locked := v1
		msgs := make([]model.Message, 0, n)
		for i := 0; i < td-b; i++ {
			h := model.NewHistory(locked).Add(locked, phi1)
			msgs = append(msgs, sel(locked, phi1, h))
		}
		for i := td - b; i < n-b; i++ {
			// Honest laggard: older ts; history entries all ≤ phi1,
			// and any entry at phi1 must be for v1 (Lemma 4).
			w := []model.Value{v2, v3}[rng.Intn(2)]
			ts := model.Phase(rng.Intn(int(phi1)))
			h := model.NewHistory(w).Add(w, ts)
			if rng.Intn(2) == 0 {
				h = h.Add(locked, phi1) // selected v1 but missed validation
			}
			msgs = append(msgs, sel(w, ts, h))
		}
		for i := n - b; i < n; i++ { // Byzantine: forged everything
			w := []model.Value{v1, v2, v3}[rng.Intn(3)]
			ts := model.Phase(rng.Intn(12))
			h := model.NewHistory(w).Add(w, ts).Add(w, ts+1)
			msgs = append(msgs, sel(w, ts, h))
		}
		mu := model.Received{}
		for i, m := range msgs {
			if rng.Intn(2) == 0 {
				mu[model.PID(i)] = m
			}
		}
		res := f.Eval(mu, phi1+1)
		return res.Out == None || (res.Out == Locked && res.Val == locked)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// FLV-liveness property: a vector containing messages from all n-b-f correct
// processes (protocol-reachable states) never yields null, for valid configs
// of each class.
func TestFLVLivenessProperty(t *testing.T) {
	type tc struct {
		name    string
		f       Func
		correct int
	}
	cases := []tc{
		{"class1 n=6 td=5 b=1", NewClass1(6, 5, 1), 5},
		{"class2 n=5 td=4 b=1", NewClass2(5, 4, 1), 4},
		{"paxos n=3", NewPaxos(3), 2},
		{"ben-or b=1", NewBenOr(1), 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			prop := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				mu := honestReachableVector(rng, c.correct)
				return c.f.Eval(mu, 5).Out != None
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Class-3 FLV-liveness needs the b+1 history backing that
// Selector-strongValidity guarantees; build vectors accordingly.
func TestClass3LivenessProperty(t *testing.T) {
	n, td, b := 4, 3, 1
	f := NewClass3(n, td, b, false)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		correct := n - b
		mu := model.Received{}
		if rng.Intn(2) == 0 {
			// Case 1: all timestamps zero.
			for i := 0; i < correct; i++ {
				v := []model.Value{v1, v2, v3}[rng.Intn(3)]
				mu[model.PID(i)] = sel(v, 0, model.NewHistory(v))
			}
		} else {
			// Case 2: highest timestamp value backed by ≥ b+1
			// histories (Selector-strongValidity consequence).
			tsMax := model.Phase(1 + rng.Intn(3))
			vMax := v1
			for i := 0; i < correct; i++ {
				if i <= b { // b+1 processes logged (vMax, tsMax)
					h := model.NewHistory(vMax).Add(vMax, tsMax)
					ts := tsMax
					if i > 0 && rng.Intn(2) == 0 {
						ts = model.Phase(rng.Intn(int(tsMax)))
					}
					v := vMax
					if ts != tsMax {
						v = []model.Value{v1, v2}[rng.Intn(2)]
						h = model.NewHistory(v).Add(v, ts).Add(vMax, tsMax)
					}
					mu[model.PID(i)] = sel(v, ts, h)
				} else {
					v := []model.Value{v2, v3}[rng.Intn(2)]
					ts := model.Phase(rng.Intn(int(tsMax)))
					h := model.NewHistory(v).Add(v, ts)
					mu[model.PID(i)] = sel(v, ts, h)
				}
			}
		}
		return f.Eval(mu, 5).Out != None
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Determinism: identical vectors yield identical results (prerequisite for
// Pcons-based convergence).
func TestFLVDeterminismProperty(t *testing.T) {
	funcs := []Func{
		NewClass1(6, 5, 1), NewClass2(5, 4, 1), NewClass3(4, 3, 1, true),
		NewPaxos(5), NewPBFT(4, 1), NewBenOr(1),
	}
	prop := func(seed int64, phaseRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := randomVector(rng, 6, 5)
		phase := model.Phase(1 + phaseRaw%5)
		for _, f := range funcs {
			if f.Eval(mu, phase) != f.Eval(mu.Clone(), phase) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFLVNames(t *testing.T) {
	names := map[string]Func{
		"flv/class1": NewClass1(6, 5, 1),
		"flv/class2": NewClass2(5, 4, 1),
		"flv/class3": NewClass3(4, 3, 1, false),
		"flv/paxos":  NewPaxos(3),
		"flv/ben-or": NewBenOr(1),
	}
	for want, f := range names {
		if got := f.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
	if NewPBFT(4, 1).Name() != "flv/class3" {
		t.Error("PBFT FLV must report the class-3 name")
	}
	if NewFaB(6, 1).Name() != "flv/class1" {
		t.Error("FaB FLV must report the class-1 name")
	}
}

// NewFaB must equal NewClass1 with TD = ⌈(n+3b+1)/2⌉.
func TestFaBEqualsClass1(t *testing.T) {
	n, b := 7, 1
	fab := NewFaB(n, b)
	cls := NewClass1(n, 6, b)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		mu := randomVector(rng, n, 3)
		if fab.Eval(mu, 1) != cls.Eval(mu, 1) {
			t.Fatalf("FaB and class-1(TD=6) disagree on %v", mu)
		}
	}
}
