package wire

import (
	"bytes"
	"strings"
	"testing"
)

func testMAC(b byte) []byte {
	mac := make([]byte, CommandMACSize)
	for i := range mac {
		mac[i] = b
	}
	return mac
}

func TestCommandRoundTrip(t *testing.T) {
	cases := []CommandEnvelope{
		{Client: 0, Seq: 1, Payload: "r|SET|k|v", MAC: testMAC(1)},
		{Client: 7, Seq: 1 << 40, Payload: "x", MAC: testMAC(0xff)},
		{Client: 1<<32 - 1, Seq: 1<<64 - 1, Payload: strings.Repeat("p", 512), MAC: testMAC(0)},
		{Client: 3, Seq: 9, Payload: "binary\x00\x01\x02;:\npayload", MAC: testMAC(9)},
	}
	for _, env := range cases {
		enc, err := EncodeCommand(env)
		if err != nil {
			t.Fatalf("encode %+v: %v", env, err)
		}
		if !IsCommand(enc) {
			t.Fatalf("IsCommand(%q) = false", enc)
		}
		if got := EncodedCommandSize(env.Client, env.Seq, len(env.Payload)); got != len(enc) {
			t.Fatalf("EncodedCommandSize = %d, encoded %d bytes", got, len(enc))
		}
		dec, err := DecodeCommand(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if dec.Client != env.Client || dec.Seq != env.Seq || dec.Payload != env.Payload ||
			!bytes.Equal(dec.MAC, env.MAC) {
			t.Fatalf("round trip: got %+v, want %+v", dec, env)
		}
	}
}

func TestCommandEncodeRejects(t *testing.T) {
	cases := []struct {
		name string
		env  CommandEnvelope
	}{
		{"empty payload", CommandEnvelope{Payload: "", MAC: testMAC(1)}},
		{"oversized payload", CommandEnvelope{Payload: strings.Repeat("x", MaxCommandPayloadBytes+1), MAC: testMAC(1)}},
		{"short MAC", CommandEnvelope{Payload: "p", MAC: testMAC(1)[:31]}},
		{"long MAC", CommandEnvelope{Payload: "p", MAC: append(testMAC(1), 0)}},
		{"no MAC", CommandEnvelope{Payload: "p"}},
	}
	for _, tc := range cases {
		if _, err := EncodeCommand(tc.env); err == nil {
			t.Errorf("%s: encode succeeded", tc.name)
		}
	}
}

// TestCommandDecodeRejects is the wire half of the forgery corpus: every
// mutation a Byzantine proposer might put on the wire must fail strict
// decoding.
func TestCommandDecodeRejects(t *testing.T) {
	good, err := EncodeCommand(CommandEnvelope{Client: 4, Seq: 17, Payload: "r|SET|k|v", MAC: testMAC(5)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no magic", "4;17;9:r|SET|k|vAAAA"},
		{"raw payload", "r|SET|k|v"},
		{"truncated header", good[:len(cmdMagic)+2]},
		{"truncated payload", good[:len(good)-CommandMACSize-3]},
		{"truncated MAC", good[:len(good)-1]},
		{"trailing bytes", good + "x"},
		{"leading zero client", cmdMagic + "04;17;1:p" + string(testMAC(5))},
		{"bad digit", cmdMagic + "4a;17;1:p" + string(testMAC(5))},
		{"zero payload length", cmdMagic + "4;17;0:" + string(testMAC(5))},
		{"missing separators", cmdMagic + "417"},
		{"overflow seq", cmdMagic + "4;99999999999999999999999;1:p" + string(testMAC(5))},
		{"client out of range", cmdMagic + "4294967296;17;1:p" + string(testMAC(5))},
	}
	for _, tc := range cases {
		if _, err := DecodeCommand(tc.in); err == nil {
			t.Errorf("%s: decode accepted %q", tc.name, tc.in)
		}
	}
	// Sanity: the unmutated encoding still decodes.
	if _, err := DecodeCommand(good); err != nil {
		t.Fatalf("good envelope rejected: %v", err)
	}
}
