package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file defines the two frame families added by wire protocol v3: the
// HELLO handshake (version byte 3) that authenticates a connection once at
// establishment, and the session frame (version byte 4) that wraps an
// inner payload with a cheap truncated MAC plus a strictly monotonic
// sequence once the handshake completed.
//
// Handshake state machine (one per connection, dialer on the left):
//
//	dialer                                acceptor
//	  | -- HELLO(sender, nonceD, mac) ------> |   verify mac under link key
//	  | <-- HELLO-ACK(sender, nonceA, mac) -- |   mac covers both nonces
//	  |  both derive sessionKey(link, dialer, nonceD, nonceA)
//	  | == session frames (seq, mac16, inner) ==> |
//
// After the ACK, every frame on the connection MUST be a session frame
// with a strictly increasing sequence; bare sealed envelopes (version 1)
// arriving on a handshaken connection are a downgrade attempt and drop the
// connection. Connections that never handshake (legacy dialers, the
// synchronous state-transfer exchanges) keep speaking the sealed v1/v2
// frames.

// Session frame family version bytes. Version 1 (consensus envelope) and
// 2 (state transfer) are defined in wire.go/snap.go.
const (
	// HelloVersion is the first byte of handshake frames.
	HelloVersion = 3
	// SessionVersion is the first byte of session-wrapped frames.
	SessionVersion = 4
)

// Hello frame kinds.
const (
	// HelloKindInit opens a handshake (dialer -> acceptor).
	HelloKindInit = 1
	// HelloKindAck completes it (acceptor -> dialer).
	HelloKindAck = 2
)

// Handshake frame geometry. HELLO frames are fixed-size: any other length
// is malformed by construction, which makes truncation and padding attacks
// detectable before any crypto runs.
const (
	// HelloNonceSize is the per-connection nonce length.
	HelloNonceSize = 16
	// HelloMACSize is the handshake authenticator length (full HMAC).
	HelloMACSize = 32
	// HelloFrameSize is the exact payload length of a HELLO or HELLO-ACK:
	// version(u8) kind(u8) sender(u32) nonce(16) mac(32).
	HelloFrameSize = 1 + 1 + 4 + HelloNonceSize + HelloMACSize
)

// SessionTagSize is the truncated per-frame session MAC length.
const SessionTagSize = 16

// sessionHeaderSize = version(u8) seq(u64) tag(16).
const sessionHeaderSize = 1 + 8 + SessionTagSize

// Session codec errors.
var (
	ErrBadHello     = errors.New("wire: malformed hello frame")
	ErrBadSession   = errors.New("wire: malformed session frame")
	ErrNotSession   = errors.New("wire: not a session frame")
	ErrSessionReuse = errors.New("wire: session sequence not increasing")
)

// Hello is a decoded handshake frame.
type Hello struct {
	// Kind is HelloKindInit or HelloKindAck.
	Kind uint8
	// Sender identifies the party that built the frame. For peer links it
	// is the replica PID; for client links it is the client id.
	Sender uint32
	// Nonce is this party's fresh connection nonce.
	Nonce [HelloNonceSize]byte
	// MAC authenticates the frame under the link's long-lived key; ACKs
	// additionally cover the dialer's nonce (see auth.HelloAckMAC).
	MAC [HelloMACSize]byte
}

// AppendHello serializes a handshake frame onto dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, HelloVersion, h.Kind)
	dst = binary.BigEndian.AppendUint32(dst, h.Sender)
	dst = append(dst, h.Nonce[:]...)
	return append(dst, h.MAC[:]...)
}

// IsHelloPayload reports whether a received payload is a handshake frame.
func IsHelloPayload(payload []byte) bool {
	return len(payload) > 0 && payload[0] == HelloVersion
}

// DecodeHello parses a handshake frame. The payload must be exactly
// HelloFrameSize bytes: truncated or padded HELLOs are rejected outright.
func DecodeHello(payload []byte) (Hello, error) {
	if len(payload) != HelloFrameSize {
		return Hello{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadHello, len(payload), HelloFrameSize)
	}
	if payload[0] != HelloVersion {
		return Hello{}, fmt.Errorf("%w: version %d", ErrBadHello, payload[0])
	}
	var h Hello
	h.Kind = payload[1]
	if h.Kind != HelloKindInit && h.Kind != HelloKindAck {
		return Hello{}, fmt.Errorf("%w: kind %d", ErrBadHello, h.Kind)
	}
	h.Sender = binary.BigEndian.Uint32(payload[2:6])
	copy(h.Nonce[:], payload[6:6+HelloNonceSize])
	copy(h.MAC[:], payload[6+HelloNonceSize:])
	return h, nil
}

// AppendSessionFrame wraps inner in a session frame onto dst:
//
//	payload := SessionVersion(u8) seq(u64) tag(16) inner
//
// tag = mac(seq, inner) is computed by the caller-supplied function so
// this package stays free of key material; use auth.SessionMAC. The inner
// payload is appended as-is — for consensus envelopes it is a bare
// AppendEnvelope encoding with empty Auth, since the session tag already
// authenticates every byte of it.
func AppendSessionFrame(dst []byte, seq uint64, inner []byte, mac func(seq uint64, inner []byte) [SessionTagSize]byte) []byte {
	dst = append(dst, SessionVersion)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	tag := mac(seq, inner)
	dst = append(dst, tag[:]...)
	return append(dst, inner...)
}

// IsSessionPayload reports whether a received payload is session-wrapped.
func IsSessionPayload(payload []byte) bool {
	return len(payload) > 0 && payload[0] == SessionVersion
}

// SplitSessionFrame splits a session frame into its sequence, tag and
// inner payload without copying; inner aliases payload. The tag is NOT
// verified here — callers check it under the connection's session key
// (auth.CheckSessionMAC) before trusting a single byte of inner.
func SplitSessionFrame(payload []byte) (seq uint64, tag, inner []byte, err error) {
	if len(payload) < sessionHeaderSize {
		return 0, nil, nil, ErrBadSession
	}
	if payload[0] != SessionVersion {
		return 0, nil, nil, ErrNotSession
	}
	seq = binary.BigEndian.Uint64(payload[1:9])
	return seq, payload[9 : 9+SessionTagSize], payload[sessionHeaderSize:], nil
}

// FrameFamily returns the frame family discriminator (first payload
// byte), or 0 for an empty payload.
func FrameFamily(payload []byte) uint8 {
	if len(payload) == 0 {
		return 0
	}
	return payload[0]
}
