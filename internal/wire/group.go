package wire

import "hash/fnv"

// GroupID names one consensus group in a sharded deployment. Group 0 is
// the default group: a packed (group 0, instance) id is numerically equal
// to the bare instance id, so unsharded deployments and pre-shard peers
// produce byte-identical frames.
type GroupID uint16

// InstanceMask covers the group-local instance bits of a packed id.
// Instance ids occupy the low 48 bits; the group rides in the top 16.
// At one decided instance per microsecond a group would take ~8.9 years
// to exhaust 48 bits, so the split costs nothing in practice.
const InstanceMask = uint64(1)<<48 - 1

// PackGID packs a (group, group-local instance) pair into the single u64
// instance field every envelope, decision ring, and WAL record already
// carries. Sharding therefore needs no new wire format: frames for group
// g simply live in a disjoint instance-id range.
func PackGID(g GroupID, instance uint64) uint64 {
	return uint64(g)<<48 | (instance & InstanceMask)
}

// SplitGID recovers the group and group-local instance from a packed id.
func SplitGID(packed uint64) (GroupID, uint64) {
	return GroupID(packed >> 48), packed & InstanceMask
}

// GroupForKey maps a key to its owning group: FNV-1a over the key bytes,
// reduced mod shards. The hash is fixed by the algorithm (no per-process
// seed), so the mapping is identical across replicas, across restarts,
// and across client binaries — kvctl and kvload route with this same
// function and never need to ask the server where a key lives.
func GroupForKey(key string, shards int) GroupID {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return GroupID(h.Sum64() % uint64(shards))
}
