package wire

import (
	"fmt"
	"testing"
)

func TestPackGIDGroupZeroIdentity(t *testing.T) {
	// Group 0 packed ids must equal the bare instance id so unsharded
	// frames are byte-identical to the pre-shard wire format.
	for _, inst := range []uint64{0, 1, 7, 1 << 20, InstanceMask} {
		if got := PackGID(0, inst); got != inst {
			t.Fatalf("PackGID(0, %d) = %d, want identity", inst, got)
		}
	}
}

func TestPackSplitGIDRoundTrip(t *testing.T) {
	cases := []struct {
		g    GroupID
		inst uint64
	}{
		{0, 0}, {0, 42}, {1, 0}, {1, 99}, {3, 1 << 30}, {65535, InstanceMask},
	}
	for _, c := range cases {
		packed := PackGID(c.g, c.inst)
		g, inst := SplitGID(packed)
		if g != c.g || inst != c.inst {
			t.Fatalf("SplitGID(PackGID(%d, %d)) = (%d, %d)", c.g, c.inst, g, inst)
		}
	}
}

func TestPackGIDDisjointRanges(t *testing.T) {
	// The same group-local instance id on different groups must map to
	// different packed ids (groups share nothing, including id space).
	if PackGID(0, 5) == PackGID(1, 5) {
		t.Fatal("groups 0 and 1 collide on instance 5")
	}
}

func TestGroupForKeyDeterministic(t *testing.T) {
	keys := []string{"", "a", "user:12345", "lk-0", "lk-1", "lk-511"}
	for _, k := range keys {
		for _, s := range []int{1, 2, 4, 8} {
			g1 := GroupForKey(k, s)
			g2 := GroupForKey(k, s)
			if g1 != g2 {
				t.Fatalf("GroupForKey(%q, %d) unstable: %d vs %d", k, s, g1, g2)
			}
			if int(g1) >= s {
				t.Fatalf("GroupForKey(%q, %d) = %d out of range", k, s, g1)
			}
		}
		if GroupForKey(k, 1) != 0 {
			t.Fatalf("GroupForKey(%q, 1) != 0", k)
		}
	}
}

func TestGroupForKeySpreads(t *testing.T) {
	// Sanity: a synthetic keyspace should not all land on one group.
	const shards = 4
	var hit [shards]int
	for i := 0; i < 256; i++ {
		hit[GroupForKey(fmt.Sprintf("lk-%d", i), shards)]++
	}
	for g, n := range hit {
		if n == 0 {
			t.Fatalf("group %d received no keys out of 256", g)
		}
	}
}
