package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"genconsensus/internal/model"
)

// PayloadVersion is the first byte of every payload-plane frame: the
// content-addressed dissemination family that carries encoded command
// batches *once*, so consensus rounds can vote on 32-byte digests instead
// of repeating the batch in every message. It shares the TCP stream with
// the other families (consensus envelopes = 1, state transfer = 2,
// handshakes = 3, session frames = 4) and is dispatched by the transport's
// RegisterHandler registry like the rest.
const PayloadVersion = 5

// PayloadKind discriminates the payload-plane exchange's frames.
type PayloadKind uint8

const (
	// PayloadAnnounce pushes one content-addressed payload to a peer over
	// the established session link (proposer → peers, once per batch).
	// Announces carry no MAC: the digest is the authenticator — a receiver
	// stores the data only if sha256(data) equals Digest, so a forged body
	// is detected for the price of one hash.
	PayloadAnnounce PayloadKind = 1
	// PayloadFetch pulls one payload by digest on a dedicated dialed
	// connection (the state-transfer shape). Requests are sealed with the
	// pairwise MAC so only cluster members can read payload data back out.
	PayloadFetch PayloadKind = 2
	// PayloadFetchReply answers a fetch with the data (content-verified by
	// the requester against the digest it asked for, so it needs no MAC).
	PayloadFetchReply PayloadKind = 3
	// PayloadFetchNone answers a fetch whose digest is not in the store —
	// evicted, never announced, or hostile.
	PayloadFetchNone PayloadKind = 4
)

// PayloadDigestSize is the content-address width (SHA-256).
const PayloadDigestSize = sha256.Size

// MaxPayloadDataBytes bounds one announced or fetched payload. It is
// comfortably above smr.MaxBatchBytes (the only payloads honest nodes
// produce) and far below MaxFrameSize, so an oversized frame is proof of
// hostility, not of a large batch.
const MaxPayloadDataBytes = 64 << 10

// ErrPayloadMalformed rejects unparsable payload-plane frames.
var ErrPayloadMalformed = errors.New("wire: malformed payload frame")

// Payload is one payload-plane frame.
type Payload struct {
	// Kind is the frame discriminator.
	Kind PayloadKind
	// Group tags the consensus group the payload was proposed for, like
	// every post-sharding frame family; receivers bounds-check it.
	Group GroupID
	// Sender is the claimed requester identity (fetch requests only; the
	// pairwise MAC proves it).
	Sender model.PID
	// Digest is the SHA-256 content address.
	Digest [PayloadDigestSize]byte
	// Data is the payload body (announce and fetch-reply frames).
	Data []byte
	// Auth carries the pairwise MAC over the preceding bytes (fetch
	// requests only; empty elsewhere).
	Auth []byte
}

// IsPayloadFrame reports whether a received payload belongs to the
// payload-plane family (first byte PayloadVersion).
func IsPayloadFrame(payload []byte) bool {
	return len(payload) > 0 && payload[0] == PayloadVersion
}

// AppendPayload serializes a payload-plane frame onto dst:
//
//	payload := PayloadVersion(u8) kind(u8) group(u16) sender(u32)
//	           digest(32) dataLen(u32) data authLen(u16) auth
func AppendPayload(dst []byte, p Payload) []byte {
	w := &writer{buf: dst}
	w.u8(PayloadVersion)
	w.u8(uint8(p.Kind))
	w.u16(uint16(p.Group))
	w.u32(uint32(p.Sender))
	w.buf = append(w.buf, p.Digest[:]...)
	w.u32(uint32(len(p.Data)))
	w.buf = append(w.buf, p.Data...)
	w.u16(uint16(len(p.Auth)))
	w.buf = append(w.buf, p.Auth...)
	return w.buf
}

// AppendSignedPayload serializes the frame in a single pass, calling sign
// on exactly the covered byte range and appending the authenticator,
// mirroring AppendSignedSnap. Fetch requests use it; announce and reply
// frames are content-addressed and travel unsigned.
func AppendSignedPayload(dst []byte, p Payload, sign func(payload []byte) []byte) []byte {
	p.Auth = nil
	start := len(dst)
	dst = AppendPayload(dst, p)
	dst = dst[:len(dst)-2] // drop the empty authLen
	mac := sign(dst[start:])
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(mac)))
	return append(dst, mac...)
}

// DecodePayload parses an AppendPayload frame. Data aliases payload — the
// caller copies before retaining it past the read buffer's lifetime.
func DecodePayload(payload []byte) (Payload, error) {
	r := &reader{buf: payload}
	if v := r.u8(); v != PayloadVersion {
		if r.err != nil {
			return Payload{}, r.err
		}
		return Payload{}, fmt.Errorf("%w: version %d", ErrPayloadMalformed, v)
	}
	var p Payload
	p.Kind = PayloadKind(r.u8())
	p.Group = GroupID(r.u16())
	p.Sender = model.PID(r.u32())
	if len(r.buf)-r.off < PayloadDigestSize {
		return Payload{}, ErrPayloadMalformed
	}
	copy(p.Digest[:], r.buf[r.off:r.off+PayloadDigestSize])
	r.off += PayloadDigestSize
	p.Data = r.bytes32()
	p.Auth = r.bytes()
	if r.err != nil {
		return Payload{}, r.err
	}
	if r.off != len(payload) {
		return Payload{}, fmt.Errorf("%w: %d trailing bytes", ErrPayloadMalformed, len(payload)-r.off)
	}
	if len(p.Data) > MaxPayloadDataBytes {
		return Payload{}, fmt.Errorf("%w: %d data bytes > %d", ErrPayloadMalformed, len(p.Data), MaxPayloadDataBytes)
	}
	return p, nil
}
