// Package wire is the binary codec for consensus messages: a
// length-prefixed frame carrying an envelope (instance, round, sender) and
// the round message tuple, with an optional trailing authenticator. The TCP
// runtime (internal/transport) and the WIC relay protocols use it.
//
// # Frame families (wire protocol v3)
//
// Every payload's first byte discriminates its family:
//
//	1  consensus envelope (this file)
//	2  state transfer (snap.go)
//	3  HELLO handshake (session.go)
//	4  session-wrapped frame (session.go)
//
// Envelope layout (big endian):
//
//	frame   := len(u32) payload
//	payload := version(u8) instance(u64) round(u64) sender(u32) kind(u8)
//	           vote(str) ts(u64)
//	           histLen(u16) {val(str) phase(u64)}*
//	           selLen(u16) {pid(u32)}*
//	           authLen(u16) auth-bytes
//	str     := len(u16) bytes
//
// # Append-style API and buffer ownership
//
// All encoders follow the Append*(dst []byte, ...) []byte convention: they
// append onto a caller-owned buffer and return the extended slice, so the
// hot path encodes straight into pooled frame buffers with zero
// intermediate allocation. The legacy Encode*/EncodeSigned entry points
// remain as thin allocating wrappers.
//
// Pooled-buffer ownership rules:
//
//   - GetFrame hands out an empty buffer; whoever eventually calls
//     PutFrame owns it. Ownership transfers exactly once — typically from
//     the encoder to the transport's per-peer write queue, which recycles
//     the buffer after the vectored write completes.
//   - A buffer handed to PutFrame must never be touched again.
//   - Decoded envelopes copy every field they keep (strings, MACs), so a
//     read loop may reuse one receive buffer across frames
//     (ReadFrameInto) — nothing decoded aliases it after Decode returns.
//   - SplitSealed and SplitSessionFrame return subslices ALIASING the
//     input payload; callers verify and decode before the next frame
//     overwrites the buffer.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"genconsensus/internal/model"
)

// Version is the codec version byte.
const Version = 1

// MaxFrameSize bounds accepted frames (1 MiB), protecting receivers from
// hostile length prefixes.
const MaxFrameSize = 1 << 20

// FrameHeaderSize is the length prefix preceding every payload on a stream.
const FrameHeaderSize = 4

// framePool recycles frame assembly buffers across the send hot path:
// encode-into-pooled-buffer, hand the buffer to the transport writer,
// return it after the vectored write completes. Buffers start at 512 bytes
// and grow to their high-water mark; oversized one-off buffers (snapshot
// chunks) are dropped rather than pinned.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// GetFrame returns an empty pooled buffer for frame assembly.
func GetFrame() []byte {
	return (*framePool.Get().(*[]byte))[:0]
}

// PutFrame recycles a frame buffer obtained from GetFrame. The caller must
// not touch the slice afterwards (buffer ownership transfers back to the
// pool).
func PutFrame(buf []byte) {
	if cap(buf) > MaxFrameSize/4 {
		return // one-off giant (snapshot chunk): let the GC have it
	}
	buf = buf[:0]
	framePool.Put(&buf)
}

// BeginFrame reserves the length prefix at the start of a frame buffer.
// Append the payload after it, then seal with FinishFrame; the completed
// buffer is written to the stream as a single contiguous chunk (no separate
// header write, no payload copy).
func BeginFrame(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0)
}

// FinishFrame fills in the length prefix reserved by BeginFrame.
func FinishFrame(buf []byte) ([]byte, error) {
	if len(buf) < FrameHeaderSize {
		return nil, ErrTruncated
	}
	n := len(buf) - FrameHeaderSize
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(buf[:FrameHeaderSize], uint32(n))
	return buf, nil
}

// Envelope wraps a round message with its routing metadata.
type Envelope struct {
	// Instance numbers the consensus instance (for SMR logs).
	Instance uint64
	// Round is the closed-round number the message belongs to.
	Round model.Round
	// Sender is the authenticated sender identity.
	Sender model.PID
	// Msg is the round message tuple.
	Msg model.Message
	// Auth carries an optional signature or MAC over the payload.
	Auth []byte
}

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	ErrBadVersion    = errors.New("wire: unsupported version")
	ErrTruncated     = errors.New("wire: truncated payload")
)

type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) str(s string) {
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := int(r.u16())
	if !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) bytes() []byte {
	n := int(r.u16())
	if !r.need(n) {
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return b
}

// bytes32 reads a u32-length-prefixed byte string (snapshot chunks exceed
// the u16 range).
func (r *reader) bytes32() []byte {
	n := int(r.u32())
	if n > MaxFrameSize {
		r.err = ErrTruncated
		return nil
	}
	if !r.need(n) {
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return b
}

// maxRelayDepth bounds nested relay batches (a relay of relays is the
// deepest shape the WIC protocols produce).
const maxRelayDepth = 2

func encodeMessage(w *writer, m model.Message, depth int) {
	w.u8(uint8(m.Kind))
	w.str(string(m.Vote))
	w.u64(uint64(m.TS))
	w.u16(uint16(len(m.History)))
	for _, e := range m.History {
		w.str(string(e.Val))
		w.u64(uint64(e.Phase))
	}
	w.u16(uint16(len(m.Sel)))
	for _, p := range m.Sel {
		w.u32(uint32(p))
	}
	if depth >= maxRelayDepth {
		w.u16(0)
		return
	}
	w.u16(uint16(len(m.Relay)))
	for _, s := range m.Relay {
		w.u32(uint32(s.Sender))
		encodeMessage(w, s.Msg, depth+1)
		w.u16(uint16(len(s.Sig)))
		w.buf = append(w.buf, s.Sig...)
	}
}

func decodeMessage(r *reader, depth int) model.Message {
	var m model.Message
	m.Kind = model.RoundKind(r.u8())
	m.Vote = model.Value(r.str())
	m.TS = model.Phase(r.u64())
	histLen := int(r.u16())
	if histLen > 0 && histLen <= MaxFrameSize/10 {
		m.History = make(model.History, 0, histLen)
		for i := 0; i < histLen; i++ {
			val := model.Value(r.str())
			phase := model.Phase(r.u64())
			m.History = append(m.History, model.HistEntry{Val: val, Phase: phase})
		}
	} else if histLen > MaxFrameSize/10 {
		r.err = ErrTruncated
		return m
	}
	selLen := int(r.u16())
	if selLen > 0 && selLen <= MaxFrameSize/4 {
		m.Sel = make([]model.PID, 0, selLen)
		for i := 0; i < selLen; i++ {
			m.Sel = append(m.Sel, model.PID(r.u32()))
		}
	} else if selLen > MaxFrameSize/4 {
		r.err = ErrTruncated
		return m
	}
	relayLen := int(r.u16())
	if relayLen > MaxFrameSize/8 {
		r.err = ErrTruncated
		return m
	}
	if relayLen > 0 {
		if depth >= maxRelayDepth {
			r.err = ErrTruncated
			return m
		}
		m.Relay = make([]model.Signed, 0, relayLen)
		for i := 0; i < relayLen; i++ {
			sender := model.PID(r.u32())
			inner := decodeMessage(r, depth+1)
			sig := r.bytes()
			m.Relay = append(m.Relay, model.Signed{Sender: sender, Msg: inner, Sig: sig})
		}
	}
	return m
}

// AppendEnvelope serializes the envelope payload (without the frame length
// prefix) onto dst and returns the extended slice. This is the primary
// codec entry point; Encode is a thin allocation wrapper around it.
func AppendEnvelope(dst []byte, env Envelope) []byte {
	w := &writer{buf: dst}
	w.u8(Version)
	w.u64(env.Instance)
	w.u64(uint64(env.Round))
	w.u32(uint32(env.Sender))
	encodeMessage(w, env.Msg, 0)
	w.u16(uint16(len(env.Auth)))
	w.buf = append(w.buf, env.Auth...)
	return w.buf
}

// AppendSignedEnvelope serializes the envelope in a single pass: the
// unauthenticated encoding is appended onto dst, sign is called on exactly
// the bytes an authenticator must cover (everything before the trailing
// authLen field), and the authenticator is appended. Unlike the legacy
// EncodeSigned this never encodes twice and never allocates an
// intermediate payload.
func AppendSignedEnvelope(dst []byte, env Envelope, sign func(payload []byte) []byte) []byte {
	env.Auth = nil
	start := len(dst)
	dst = AppendEnvelope(dst, env)
	dst = dst[:len(dst)-2] // drop the empty authLen; covered = dst[start:]
	mac := sign(dst[start:])
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(mac)))
	return append(dst, mac...)
}

// Encode serializes the envelope payload (without the frame length prefix).
//
// Deprecated: use AppendEnvelope with a caller-owned (ideally pooled)
// buffer; Encode allocates per call.
func Encode(env Envelope) []byte {
	return AppendEnvelope(make([]byte, 0, 64), env)
}

// EncodeSigned serializes the envelope, calling sign on the unauthenticated
// payload to produce the trailing authenticator.
//
// Deprecated: use AppendSignedEnvelope; EncodeSigned allocates per call.
func EncodeSigned(env Envelope, sign func(payload []byte) []byte) []byte {
	return AppendSignedEnvelope(make([]byte, 0, 96), env, sign)
}

// PeekInstance reads the instance number of an encoded envelope payload
// without decoding it. Transports use it as a pre-decode drop filter:
// helper-round traffic for an instance the local commit already released
// is the common case under pipelined load, and discarding it by peeking
// nine bytes skips the full Decode (and its message-map allocations).
// It is safe on hostile input — a short or foreign payload reports false.
func PeekInstance(payload []byte) (uint64, bool) {
	if len(payload) < 9 || payload[0] != Version {
		return 0, false
	}
	return binary.BigEndian.Uint64(payload[1:9]), true
}

// Decode parses a payload produced by Encode.
func Decode(payload []byte) (Envelope, error) {
	r := &reader{buf: payload}
	if v := r.u8(); v != Version {
		if r.err != nil {
			return Envelope{}, r.err
		}
		return Envelope{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	var env Envelope
	env.Instance = r.u64()
	env.Round = model.Round(r.u64())
	env.Sender = model.PID(r.u32())
	env.Msg = decodeMessage(r, 0)
	env.Auth = r.bytes()
	if r.err != nil {
		return Envelope{}, r.err
	}
	if r.off != len(payload) {
		return Envelope{}, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(payload)-r.off)
	}
	return env, nil
}

// VerifyPayload returns the byte range an authenticator must cover for a
// decoded envelope: re-encode without Auth and strip the empty length.
//
// Deprecated: when the raw received payload is still at hand, use
// SplitSealed — it locates the covered range in place without
// re-encoding.
func VerifyPayload(env Envelope) []byte {
	env.Auth = nil
	unauth := Encode(env)
	return unauth[:len(unauth)-2]
}

// SealedMACSize is the length of the trailing HMAC-SHA256 authenticator on
// a sealed frame (consensus envelope or state-transfer frame alike).
const SealedMACSize = 32

// SplitSealed splits a raw received payload that ends in a full-size
// 32-byte authenticator into the covered range and the MAC, without
// decoding or re-encoding anything. The authenticator is the trailing
// field of both the envelope and the snap layouts (authLen u16, then auth
// bytes), so for any legitimately sealed frame the u16 at len-34 reads 32.
// Returns ok=false for frames without a full-size trailing MAC; callers
// must treat that as an authentication failure on links that require
// seals.
func SplitSealed(payload []byte) (covered, mac []byte, ok bool) {
	n := len(payload)
	if n < SealedMACSize+2 {
		return nil, nil, false
	}
	if binary.BigEndian.Uint16(payload[n-SealedMACSize-2:]) != SealedMACSize {
		return nil, nil, false
	}
	return payload[:n-SealedMACSize-2], payload[n-SealedMACSize:], true
}

// WriteFrame writes a length-prefixed payload to w.
//
// Deprecated: WriteFrame issues two Write calls (header, then payload);
// assemble frames with BeginFrame/FinishFrame into one buffer instead and
// write (or writev) the buffer whole.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed payload from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return payload, nil
}

// ReadFrameInto reads one length-prefixed payload from r into buf,
// growing it if needed, and returns the payload slice aliasing buf. The
// returned slice is only valid until the next call with the same buffer;
// read loops reuse one buffer across frames instead of allocating per
// frame, and copy out only the fields that outlive the frame.
func ReadFrameInto(r io.Reader, buf []byte) (payload, newBuf []byte, err error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrameSize {
		return nil, buf, ErrFrameTooLarge
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:n]); err != nil {
		return nil, buf, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return buf[:n], buf, nil
}
