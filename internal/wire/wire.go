// Package wire is the binary codec for consensus messages: a
// length-prefixed frame carrying an envelope (instance, round, sender) and
// the round message tuple, with an optional trailing authenticator. The TCP
// runtime (internal/transport) and the WIC relay protocols use it.
//
// Layout (big endian):
//
//	frame   := len(u32) payload
//	payload := version(u8) instance(u64) round(u64) sender(u32) kind(u8)
//	           vote(str) ts(u64)
//	           histLen(u16) {val(str) phase(u64)}*
//	           selLen(u16) {pid(u32)}*
//	           authLen(u16) auth-bytes
//	str     := len(u16) bytes
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"genconsensus/internal/model"
)

// Version is the codec version byte.
const Version = 1

// MaxFrameSize bounds accepted frames (1 MiB), protecting receivers from
// hostile length prefixes.
const MaxFrameSize = 1 << 20

// Envelope wraps a round message with its routing metadata.
type Envelope struct {
	// Instance numbers the consensus instance (for SMR logs).
	Instance uint64
	// Round is the closed-round number the message belongs to.
	Round model.Round
	// Sender is the authenticated sender identity.
	Sender model.PID
	// Msg is the round message tuple.
	Msg model.Message
	// Auth carries an optional signature or MAC over the payload.
	Auth []byte
}

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	ErrBadVersion    = errors.New("wire: unsupported version")
	ErrTruncated     = errors.New("wire: truncated payload")
)

type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) str(s string) {
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := int(r.u16())
	if !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) bytes() []byte {
	n := int(r.u16())
	if !r.need(n) {
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return b
}

// bytes32 reads a u32-length-prefixed byte string (snapshot chunks exceed
// the u16 range).
func (r *reader) bytes32() []byte {
	n := int(r.u32())
	if n > MaxFrameSize {
		r.err = ErrTruncated
		return nil
	}
	if !r.need(n) {
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return b
}

// maxRelayDepth bounds nested relay batches (a relay of relays is the
// deepest shape the WIC protocols produce).
const maxRelayDepth = 2

func encodeMessage(w *writer, m model.Message, depth int) {
	w.u8(uint8(m.Kind))
	w.str(string(m.Vote))
	w.u64(uint64(m.TS))
	w.u16(uint16(len(m.History)))
	for _, e := range m.History {
		w.str(string(e.Val))
		w.u64(uint64(e.Phase))
	}
	w.u16(uint16(len(m.Sel)))
	for _, p := range m.Sel {
		w.u32(uint32(p))
	}
	if depth >= maxRelayDepth {
		w.u16(0)
		return
	}
	w.u16(uint16(len(m.Relay)))
	for _, s := range m.Relay {
		w.u32(uint32(s.Sender))
		encodeMessage(w, s.Msg, depth+1)
		w.u16(uint16(len(s.Sig)))
		w.buf = append(w.buf, s.Sig...)
	}
}

func decodeMessage(r *reader, depth int) model.Message {
	var m model.Message
	m.Kind = model.RoundKind(r.u8())
	m.Vote = model.Value(r.str())
	m.TS = model.Phase(r.u64())
	histLen := int(r.u16())
	if histLen > 0 && histLen <= MaxFrameSize/10 {
		m.History = make(model.History, 0, histLen)
		for i := 0; i < histLen; i++ {
			val := model.Value(r.str())
			phase := model.Phase(r.u64())
			m.History = append(m.History, model.HistEntry{Val: val, Phase: phase})
		}
	} else if histLen > MaxFrameSize/10 {
		r.err = ErrTruncated
		return m
	}
	selLen := int(r.u16())
	if selLen > 0 && selLen <= MaxFrameSize/4 {
		m.Sel = make([]model.PID, 0, selLen)
		for i := 0; i < selLen; i++ {
			m.Sel = append(m.Sel, model.PID(r.u32()))
		}
	} else if selLen > MaxFrameSize/4 {
		r.err = ErrTruncated
		return m
	}
	relayLen := int(r.u16())
	if relayLen > MaxFrameSize/8 {
		r.err = ErrTruncated
		return m
	}
	if relayLen > 0 {
		if depth >= maxRelayDepth {
			r.err = ErrTruncated
			return m
		}
		m.Relay = make([]model.Signed, 0, relayLen)
		for i := 0; i < relayLen; i++ {
			sender := model.PID(r.u32())
			inner := decodeMessage(r, depth+1)
			sig := r.bytes()
			m.Relay = append(m.Relay, model.Signed{Sender: sender, Msg: inner, Sig: sig})
		}
	}
	return m
}

// Encode serializes the envelope payload (without the frame length prefix).
func Encode(env Envelope) []byte {
	w := &writer{buf: make([]byte, 0, 64)}
	w.u8(Version)
	w.u64(env.Instance)
	w.u64(uint64(env.Round))
	w.u32(uint32(env.Sender))
	encodeMessage(w, env.Msg, 0)
	w.u16(uint16(len(env.Auth)))
	w.buf = append(w.buf, env.Auth...)
	return w.buf
}

// EncodeSigned serializes the envelope, calling sign on the unauthenticated
// payload to produce the trailing authenticator.
func EncodeSigned(env Envelope, sign func(payload []byte) []byte) []byte {
	env.Auth = nil
	unauth := Encode(env)
	env.Auth = sign(unauth[:len(unauth)-2]) // strip the empty authLen
	return Encode(env)
}

// Decode parses a payload produced by Encode.
func Decode(payload []byte) (Envelope, error) {
	r := &reader{buf: payload}
	if v := r.u8(); v != Version {
		if r.err != nil {
			return Envelope{}, r.err
		}
		return Envelope{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	var env Envelope
	env.Instance = r.u64()
	env.Round = model.Round(r.u64())
	env.Sender = model.PID(r.u32())
	env.Msg = decodeMessage(r, 0)
	env.Auth = r.bytes()
	if r.err != nil {
		return Envelope{}, r.err
	}
	if r.off != len(payload) {
		return Envelope{}, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(payload)-r.off)
	}
	return env, nil
}

// VerifyPayload returns the byte range an authenticator must cover for a
// decoded envelope: re-encode without Auth and strip the empty length.
func VerifyPayload(env Envelope) []byte {
	env.Auth = nil
	unauth := Encode(env)
	return unauth[:len(unauth)-2]
}

// WriteFrame writes a length-prefixed payload to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed payload from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return payload, nil
}
