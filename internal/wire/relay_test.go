package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"genconsensus/internal/model"
)

// Relay batches (the WIC carrier messages) round-trip with one nesting
// level, including per-entry signatures.
func TestRelayRoundTrip(t *testing.T) {
	inner1 := model.Message{Kind: model.SelectionRound, Vote: "a", TS: 1,
		History: model.NewHistory("a")}
	inner2 := model.Message{Kind: model.SelectionRound, Vote: "b", TS: 2,
		Sel: model.AllPIDs(3)}
	env := Envelope{
		Instance: 1, Round: 4, Sender: 2,
		Msg: model.Message{
			Kind: model.SelectionRound,
			Relay: []model.Signed{
				{Sender: 0, Msg: inner1, Sig: []byte{1, 2, 3}},
				{Sender: 1, Msg: inner2},
			},
		},
	}
	got, err := Decode(Encode(env))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env, got) {
		t.Fatalf("relay round trip mismatch:\n in: %+v\nout: %+v", env, got)
	}
}

// Nested relays beyond the depth cap are truncated on encode and rejected on
// hostile decode.
func TestRelayDepthCap(t *testing.T) {
	leaf := model.Message{Kind: model.DecisionRound, Vote: "v"}
	depth1 := model.Message{Relay: []model.Signed{{Sender: 0, Msg: leaf}}}
	depth2 := model.Message{Relay: []model.Signed{{Sender: 1, Msg: depth1}}}
	depth3 := model.Message{Relay: []model.Signed{{Sender: 2, Msg: depth2}}}
	env := Envelope{Round: 1, Sender: 0, Msg: depth3}
	got, err := Decode(Encode(env))
	if err != nil {
		t.Fatalf("depth-3 encode/decode: %v", err)
	}
	// The innermost relay (depth 3) must have been dropped by the encoder.
	d1 := got.Msg.Relay[0].Msg
	d2 := d1.Relay[0].Msg
	if len(d2.Relay) != 0 {
		t.Fatalf("depth cap not applied: %+v", d2)
	}
}

// Hostile relay/history/sel length prefixes are rejected without allocation.
func TestHostileLengthPrefixes(t *testing.T) {
	base := Encode(Envelope{Round: 1, Sender: 0,
		Msg: model.Message{Kind: model.DecisionRound, Vote: "v"}})
	// The layout places histLen at a fixed offset for this message:
	// version(1) instance(8) round(8) sender(4) kind(1) voteLen(2)+1 ts(8).
	histOff := 1 + 8 + 8 + 4 + 1 + 2 + 1 + 8
	hostile := append([]byte(nil), base...)
	hostile[histOff] = 0xff
	hostile[histOff+1] = 0xff
	if _, err := Decode(hostile); err == nil {
		t.Fatal("hostile history length accepted")
	}
	selOff := histOff + 2
	hostile = append([]byte(nil), base...)
	hostile[selOff] = 0xff
	hostile[selOff+1] = 0xff
	if _, err := Decode(hostile); err == nil {
		t.Fatal("hostile selector length accepted")
	}
	relayOff := selOff + 2
	hostile = append([]byte(nil), base...)
	hostile[relayOff] = 0xff
	hostile[relayOff+1] = 0xff
	if _, err := Decode(hostile); err == nil {
		t.Fatal("hostile relay length accepted")
	}
}

// Short writers and readers surface wrapped I/O errors.
type failingWriter struct{ after int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("sink full")
	}
	w.after--
	return len(p), nil
}

func TestFrameIOErrors(t *testing.T) {
	if err := WriteFrame(&failingWriter{after: 0}, []byte("x")); err == nil {
		t.Fatal("header write error swallowed")
	}
	if err := WriteFrame(&failingWriter{after: 1}, []byte("x")); err == nil {
		t.Fatal("payload write error swallowed")
	}
	// Truncated frame body.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:6] // header + 2 bytes of 5-byte payload
	if _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Truncated header.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Fatal("truncated header accepted")
	}
}
