package wire

import (
	"bytes"
	"testing"
)

func TestSnapEncodeDecodeRoundTrip(t *testing.T) {
	cases := []SnapEnvelope{
		{Kind: SnapRequest, Sender: 3, Auth: []byte("mac")},
		{Kind: SnapNone, Sender: 1},
		{
			Kind: SnapChunk, Sender: 2,
			LastInstance: 40, LogIndex: 123,
			Digest:     bytes.Repeat([]byte{7}, 32),
			ChunkIndex: 2, ChunkCount: 5,
			Data: bytes.Repeat([]byte{0xCD}, 70_000), // > u16 range
			Auth: []byte("tag"),
		},
	}
	for i, want := range cases {
		got, err := DecodeSnap(EncodeSnap(want))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Sender != want.Sender ||
			got.LastInstance != want.LastInstance || got.LogIndex != want.LogIndex ||
			got.ChunkIndex != want.ChunkIndex || got.ChunkCount != want.ChunkCount {
			t.Fatalf("case %d: metadata mismatch: %+v", i, got)
		}
		if !bytes.Equal(got.Digest, want.Digest) || !bytes.Equal(got.Data, want.Data) ||
			!bytes.Equal(got.Auth, want.Auth) {
			t.Fatalf("case %d: payload mismatch", i)
		}
	}
}

func TestSnapPayloadDiscrimination(t *testing.T) {
	snap := EncodeSnap(SnapEnvelope{Kind: SnapRequest, Sender: 1})
	if !IsSnapPayload(snap) {
		t.Error("snapshot payload not recognized")
	}
	env := Encode(Envelope{Instance: 1, Round: 1, Sender: 0})
	if IsSnapPayload(env) {
		t.Error("consensus payload misrouted to snapshot family")
	}
	// The consensus decoder rejects snapshot payloads (version byte) and
	// vice versa, so the families cannot be confused after routing.
	if _, err := Decode(snap); err == nil {
		t.Error("consensus decoder accepted a snapshot payload")
	}
	if _, err := DecodeSnap(env); err == nil {
		t.Error("snapshot decoder accepted a consensus payload")
	}
}

func TestSnapDecodeRejectsMalformed(t *testing.T) {
	good := EncodeSnap(SnapEnvelope{
		Kind: SnapChunk, Sender: 1, Digest: []byte{1, 2}, ChunkCount: 1,
		Data: []byte("data"), Auth: []byte("mac"),
	})
	bad := [][]byte{
		nil,
		good[:5],
		good[:len(good)-1],
		append(append([]byte{}, good...), 9),
	}
	for i, b := range bad {
		if _, err := DecodeSnap(b); err == nil {
			t.Errorf("case %d: decoded malformed payload", i)
		}
	}
	// Unknown kind.
	evil := EncodeSnap(SnapEnvelope{Kind: SnapKind(99), Sender: 1})
	if _, err := DecodeSnap(evil); err == nil {
		t.Error("decoded unknown kind")
	}
}

func TestSnapVerifyPayloadExcludesAuth(t *testing.T) {
	env := SnapEnvelope{Kind: SnapChunk, Sender: 1, Data: []byte("x")}
	with := env
	with.Auth = []byte("tag")
	if !bytes.Equal(SnapVerifyPayload(env), SnapVerifyPayload(with)) {
		t.Error("verify payload depends on Auth")
	}
}
