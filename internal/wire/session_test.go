package wire

import (
	"bytes"
	"errors"
	"testing"

	"genconsensus/internal/model"
)

func testEnvelope() Envelope {
	return Envelope{
		Instance: 7,
		Round:    3,
		Sender:   2,
		Msg: model.Message{
			Kind: model.SelectionRound,
			Vote: "v",
			TS:   1,
			Sel:  []model.PID{0, 1, 2},
		},
	}
}

func TestAppendEnvelopeMatchesEncode(t *testing.T) {
	env := testEnvelope()
	env.Auth = []byte("0123456789abcdef0123456789abcdef")
	want := Encode(env)
	got := AppendEnvelope(nil, env)
	if !bytes.Equal(got, want) {
		t.Fatal("AppendEnvelope and Encode disagree")
	}
	// Appending onto a prefix leaves the prefix intact.
	pre := AppendEnvelope([]byte("xx"), env)
	if string(pre[:2]) != "xx" || !bytes.Equal(pre[2:], want) {
		t.Fatal("AppendEnvelope clobbered the prefix")
	}
}

func TestAppendSignedEnvelopeMatchesEncodeSigned(t *testing.T) {
	env := testEnvelope()
	sign := func(payload []byte) []byte {
		mac := make([]byte, 32)
		for i, b := range payload {
			mac[i%32] ^= b
		}
		return mac
	}
	want := EncodeSigned(env, sign)
	got := AppendSignedEnvelope(nil, env, sign)
	if !bytes.Equal(got, want) {
		t.Fatal("AppendSignedEnvelope and EncodeSigned disagree")
	}
	// Round trip and SplitSealed agree with VerifyPayload.
	dec, err := Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	covered, mac, ok := SplitSealed(got)
	if !ok {
		t.Fatal("SplitSealed rejected a sealed frame")
	}
	if !bytes.Equal(covered, VerifyPayload(dec)) {
		t.Fatal("SplitSealed covered range differs from VerifyPayload re-encoding")
	}
	if !bytes.Equal(mac, dec.Auth) {
		t.Fatal("SplitSealed MAC differs from decoded Auth")
	}
}

func TestSplitSealedRejectsUnsealed(t *testing.T) {
	if _, _, ok := SplitSealed(Encode(testEnvelope())); ok {
		t.Error("SplitSealed accepted an unsealed envelope")
	}
	if _, _, ok := SplitSealed(nil); ok {
		t.Error("SplitSealed accepted an empty payload")
	}
	if _, _, ok := SplitSealed(make([]byte, 33)); ok {
		t.Error("SplitSealed accepted a too-short payload")
	}
}

func TestFramePoolRoundTrip(t *testing.T) {
	buf := GetFrame()
	if len(buf) != 0 {
		t.Fatalf("GetFrame returned %d bytes", len(buf))
	}
	buf = BeginFrame(buf)
	buf = AppendEnvelope(buf, testEnvelope())
	buf, err := FinishFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(payload); err != nil {
		t.Fatal(err)
	}
	PutFrame(buf)
}

func TestReadFrameInto(t *testing.T) {
	var stream bytes.Buffer
	env := testEnvelope()
	for i := 0; i < 3; i++ {
		env.Instance = uint64(i)
		frame, err := FinishFrame(AppendEnvelope(BeginFrame(nil), env))
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(frame)
	}
	var buf []byte
	for i := 0; i < 3; i++ {
		var payload []byte
		var err error
		payload, buf, err = ReadFrameInto(&stream, buf)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Instance != uint64(i) {
			t.Fatalf("frame %d decoded instance %d", i, dec.Instance)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Kind: HelloKindInit, Sender: 3}
	copy(h.Nonce[:], "dialer-nonce-16b")
	copy(h.MAC[:], bytes.Repeat([]byte{0xab}, HelloMACSize))
	payload := AppendHello(nil, h)
	if len(payload) != HelloFrameSize {
		t.Fatalf("hello frame is %d bytes, want %d", len(payload), HelloFrameSize)
	}
	if !IsHelloPayload(payload) {
		t.Fatal("IsHelloPayload false for a hello frame")
	}
	dec, err := DecodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if dec != h {
		t.Fatalf("round trip mismatch: %+v != %+v", dec, h)
	}
}

func TestDecodeHelloRejectsMalformed(t *testing.T) {
	h := Hello{Kind: HelloKindAck, Sender: 1}
	good := AppendHello(nil, h)
	// Truncated.
	if _, err := DecodeHello(good[:len(good)-1]); !errors.Is(err, ErrBadHello) {
		t.Errorf("truncated hello: %v", err)
	}
	// Oversized (padded).
	if _, err := DecodeHello(append(append([]byte(nil), good...), 0)); !errors.Is(err, ErrBadHello) {
		t.Errorf("oversized hello: %v", err)
	}
	// Wrong kind.
	bad := append([]byte(nil), good...)
	bad[1] = 9
	if _, err := DecodeHello(bad); !errors.Is(err, ErrBadHello) {
		t.Errorf("bad kind: %v", err)
	}
	// Empty.
	if _, err := DecodeHello(nil); !errors.Is(err, ErrBadHello) {
		t.Errorf("empty hello: %v", err)
	}
}

func TestSessionFrameRoundTrip(t *testing.T) {
	inner := AppendEnvelope(nil, testEnvelope())
	var fixed [SessionTagSize]byte
	copy(fixed[:], "sixteen-byte-tag")
	payload := AppendSessionFrame(nil, 42, inner, func(seq uint64, p []byte) [SessionTagSize]byte {
		if seq != 42 || !bytes.Equal(p, inner) {
			t.Fatal("mac callback saw wrong inputs")
		}
		return fixed
	})
	if !IsSessionPayload(payload) {
		t.Fatal("IsSessionPayload false for a session frame")
	}
	if FrameFamily(payload) != SessionVersion {
		t.Fatal("PayloadVersion mismatch")
	}
	seq, tag, gotInner, err := SplitSessionFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || !bytes.Equal(tag, fixed[:]) || !bytes.Equal(gotInner, inner) {
		t.Fatal("session frame fields did not round trip")
	}
	if _, err := Decode(gotInner); err != nil {
		t.Fatalf("inner envelope decode: %v", err)
	}
}

func TestSplitSessionFrameRejectsMalformed(t *testing.T) {
	if _, _, _, err := SplitSessionFrame([]byte{SessionVersion, 0, 0}); !errors.Is(err, ErrBadSession) {
		t.Errorf("short session frame: %v", err)
	}
	if _, _, _, err := SplitSessionFrame(make([]byte, 64)); !errors.Is(err, ErrNotSession) {
		t.Errorf("wrong version byte: %v", err)
	}
}

func TestAppendCommandMatchesEncodeCommand(t *testing.T) {
	env := CommandEnvelope{
		Client:  12,
		Seq:     3456,
		Payload: "SET|k|v",
		MAC:     bytes.Repeat([]byte{0x5a}, CommandMACSize),
	}
	want, err := EncodeCommand(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AppendCommand(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("AppendCommand and EncodeCommand disagree")
	}
	if len(want) != EncodedCommandSize(env.Client, env.Seq, len(env.Payload)) {
		t.Fatalf("EncodedCommandSize %d != actual %d",
			EncodedCommandSize(env.Client, env.Seq, len(env.Payload)), len(want))
	}
	dec, err := DecodeCommand(want)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Client != env.Client || dec.Seq != env.Seq || dec.Payload != env.Payload {
		t.Fatal("command round trip mismatch")
	}
}
