package wire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Command envelopes: the wire representation of an authenticated client
// command. A client wraps its application payload in a CommandEnvelope —
// client id, per-client sequence number and a MAC over all three — and the
// envelope travels the whole SMR path as an opaque value: queued, batched,
// voted on, decided, logged and applied without re-encoding. Every layer
// that must judge provenance (ingress, the batch chooser, the state
// machine) decodes and verifies the same bytes, so there is exactly one
// encoding to get right and it lives here, next to the rest of the wire
// codec.
//
// Layout (a value string, binary-safe):
//
//	envelope := cmdMagic client ';' seq ';' plen ':' payload mac
//
// with client, seq and plen in canonical ASCII decimal (no leading zeros)
// and mac exactly CommandMACSize raw bytes. The encoding is deterministic:
// identical (client, seq, payload, mac) tuples encode byte-identically on
// every process, so envelopes can be compared, deduplicated and batched as
// plain strings.

const (
	// cmdMagic prefixes every encoded command envelope. Like the batch
	// magic it contains control bytes no application payload starts with,
	// so envelopes, batches and raw commands can never be confused.
	cmdMagic = "\x02cmd\x02"
	// CommandMACSize is the exact authenticator length (HMAC-SHA256).
	CommandMACSize = 32
	// MaxCommandPayloadBytes bounds the application payload of one
	// envelope. It keeps the whole encoding comfortably inside the SMR
	// batch budget (32 KiB) and the codec's u16 string bound.
	MaxCommandPayloadBytes = 30 << 10
	// maxCommandSeqDigits bounds the ASCII width of client and seq fields
	// (u64 needs at most 20 digits).
	maxCommandSeqDigits = 20
	// DefaultSeqWindow is the standard per-client sequence horizon shared
	// by every layer that tracks (client, seq) pairs — the SMR replay
	// filter and the state machine's dedup window alias it, so the two
	// horizons cannot drift apart. A client must not have more than this
	// many commands in flight.
	DefaultSeqWindow = 1024
)

// CommandEnvelope is one authenticated client command.
type CommandEnvelope struct {
	// Client identifies the issuing client (its key slot in the client
	// keyring).
	Client uint32
	// Seq is the client's command sequence number: (Client, Seq) identify
	// a command for at-most-once execution, replacing raw-bytes dedup.
	Seq uint64
	// Payload is the application command (e.g. a kv command string).
	Payload string
	// MAC authenticates (Client, Seq, Payload) under the client's key.
	MAC []byte
}

// Errors returned by the command codec.
var (
	ErrCommandMalformed = errors.New("wire: malformed command envelope")
	ErrCommandTooLarge  = errors.New("wire: command payload exceeds MaxCommandPayloadBytes")
)

// EncodedCommandSize accounts the exact encoded size of an envelope with a
// payload of the given length — the envelope's footprint in everything
// sized by value bytes (batch byte budgets charge this plus their own
// per-entry framing overhead). Callers with payloads near a size budget
// can pre-check without encoding.
func EncodedCommandSize(client uint32, seq uint64, payloadLen int) int {
	return len(cmdMagic) +
		decimalWidth(uint64(client)) + 1 + decimalWidth(seq) + 1 +
		decimalWidth(uint64(payloadLen)) + 1 +
		payloadLen + CommandMACSize
}

// decimalWidth is the ASCII width of v in canonical decimal.
func decimalWidth(v uint64) int {
	n := 1
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}

// IsCommand reports whether v carries the command-envelope magic prefix. A
// true result does not imply validity; DecodeCommand performs full
// validation.
func IsCommand(v string) bool {
	return strings.HasPrefix(v, cmdMagic)
}

// AppendCommand serializes an envelope onto dst (same validation as
// EncodeCommand) without the intermediate string allocation.
func AppendCommand(dst []byte, env CommandEnvelope) ([]byte, error) {
	return AppendCommandBytes(dst, env.Client, env.Seq, env.Payload, env.MAC)
}

// AppendCommandBytes is AppendCommand over loose fields; payload may be a
// string or byte slice, so builders that assemble the payload in a byte
// buffer skip the string conversion.
func AppendCommandBytes[P ~string | ~[]byte](dst []byte, client uint32, seq uint64, payload P, mac []byte) ([]byte, error) {
	if len(payload) == 0 {
		return dst, fmt.Errorf("%w: empty payload", ErrCommandMalformed)
	}
	if len(payload) > MaxCommandPayloadBytes {
		return dst, fmt.Errorf("%w: %d bytes", ErrCommandTooLarge, len(payload))
	}
	if len(mac) != CommandMACSize {
		return dst, fmt.Errorf("%w: MAC is %d bytes, want %d", ErrCommandMalformed, len(mac), CommandMACSize)
	}
	dst = append(dst, cmdMagic...)
	dst = strconv.AppendUint(dst, uint64(client), 10)
	dst = append(dst, ';')
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, ';')
	dst = strconv.AppendUint(dst, uint64(len(payload)), 10)
	dst = append(dst, ':')
	dst = append(dst, payload...)
	return append(dst, mac...), nil
}

// EncodeCommand serializes an envelope. The payload must be non-empty and
// within MaxCommandPayloadBytes; the MAC must be exactly CommandMACSize
// bytes (the codec carries authenticators, it does not compute them).
func EncodeCommand(env CommandEnvelope) (string, error) {
	buf := make([]byte, 0, EncodedCommandSize(env.Client, env.Seq, len(env.Payload)))
	buf, err := AppendCommand(buf, env)
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

// DecodeCommand strictly parses an encoded envelope: canonical decimal
// fields, exact payload length, exactly CommandMACSize trailing MAC bytes,
// no slack anywhere. Byzantine proposers can put arbitrary bytes on the
// wire, so a decode error marks the value as not interpretable as an
// authenticated command — verification layers treat it as fabricated.
func DecodeCommand(v string) (CommandEnvelope, error) {
	var env CommandEnvelope
	client, seq, payload, mac, err := DecodeCommandParts(v)
	if err != nil {
		return env, err
	}
	env.Client = client
	env.Seq = seq
	env.Payload = payload
	env.MAC = []byte(mac)
	return env, nil
}

// DecodeCommandParts is the zero-copy variant of DecodeCommand: identical
// validation, but payload and mac are returned as substrings of v, so
// nothing is allocated. Hot paths that hold the value string anyway
// (verdict-cache lookups, the apply path) use it to avoid the per-call MAC
// copy.
func DecodeCommandParts(v string) (client uint32, seq uint64, payload, mac string, err error) {
	if !strings.HasPrefix(v, cmdMagic) {
		return 0, 0, "", "", fmt.Errorf("%w: missing magic", ErrCommandMalformed)
	}
	rest := v[len(cmdMagic):]
	c, rest, err := parseUint(rest, ';')
	if err != nil {
		return 0, 0, "", "", err
	}
	if c > 1<<32-1 {
		return 0, 0, "", "", fmt.Errorf("%w: client id overflow", ErrCommandMalformed)
	}
	seq, rest, err = parseUint(rest, ';')
	if err != nil {
		return 0, 0, "", "", err
	}
	plen, rest, err := parseUint(rest, ':')
	if err != nil {
		return 0, 0, "", "", err
	}
	if plen == 0 || plen > MaxCommandPayloadBytes {
		return 0, 0, "", "", fmt.Errorf("%w: payload length %d", ErrCommandTooLarge, plen)
	}
	if uint64(len(rest)) != plen+CommandMACSize {
		return 0, 0, "", "", fmt.Errorf("%w: %d bytes after header, want %d", ErrCommandMalformed, len(rest), plen+CommandMACSize)
	}
	return uint32(c), seq, rest[:plen], rest[plen:], nil
}

// SeqTracker is one client's sliding sequence horizon: the highest
// recorded seq plus exact entries for the window below it. It is the one
// implementation of the horizon mechanics shared by every (client, seq)
// tracker — the SMR replay filter (V = struct{}) and the state machine's
// dedup window (V = cached response) must keep identical semantics (both
// also alias DefaultSeqWindow), so the arithmetic lives here with the
// envelope contract. The zero horizon rules: anything at or below
// Max-window is assumed recorded; entries above it are tracked exactly.
// SeqTracker is not synchronized; callers wrap it in their own locking.
type SeqTracker[V any] struct {
	// Max is the highest recorded sequence number.
	Max uint64
	// Entries holds the exact values for in-window sequences.
	Entries map[uint64]V
}

// NewSeqTracker returns an empty tracker.
func NewSeqTracker[V any]() *SeqTracker[V] {
	return &SeqTracker[V]{Entries: make(map[uint64]V)}
}

// BelowHorizon reports whether seq fell below the exact-tracking horizon
// (assumed recorded; its value is gone).
func (t *SeqTracker[V]) BelowHorizon(seq, window uint64) bool {
	return t.Max >= window && seq <= t.Max-window
}

// Record stores v at seq and advances the horizon, evicting entries that
// fall below it. Recording below the horizon is a no-op.
func (t *SeqTracker[V]) Record(seq uint64, v V, window uint64) {
	if t.BelowHorizon(seq, window) {
		return
	}
	t.Entries[seq] = v
	if seq > t.Max {
		oldMax := t.Max
		t.Max = seq
		EvictBelowFloor(t.Entries, oldMax, t.Max, window)
	}
}

// EvictBelowFloor drops entries of a per-client sequence window that fell
// below the advancing horizon (max - window). The common advance is by 1,
// so it walks the (oldFloor, newFloor] numeric range — O(advance) — and
// falls back to a full map scan only when the horizon jumped farther than
// the map is large.
func EvictBelowFloor[V any](m map[uint64]V, oldMax, newMax, window uint64) {
	if newMax < window {
		return
	}
	newFloor := newMax - window
	oldFloor := uint64(0)
	if oldMax >= window {
		oldFloor = oldMax - window
	}
	if span := newFloor - oldFloor; span <= uint64(len(m)) {
		for seq := oldFloor + 1; seq <= newFloor; seq++ {
			delete(m, seq)
		}
		// oldFloor itself is only populated before the horizon existed.
		delete(m, oldFloor)
		return
	}
	for seq := range m {
		if seq <= newFloor {
			delete(m, seq)
		}
	}
}

// parseUint reads a canonical ASCII decimal prefix terminated by sep: no
// empty digits, no leading zeros, bounded width (u64 range).
func parseUint(s string, sep byte) (uint64, string, error) {
	i := 0
	var n uint64
	for ; i < len(s); i++ {
		c := s[i]
		if c == sep {
			break
		}
		if c < '0' || c > '9' {
			return 0, "", fmt.Errorf("%w: bad digit %q", ErrCommandMalformed, c)
		}
		if i >= maxCommandSeqDigits {
			return 0, "", fmt.Errorf("%w: number too wide", ErrCommandMalformed)
		}
		d := uint64(c - '0')
		if n > (1<<64-1-d)/10 {
			return 0, "", fmt.Errorf("%w: number overflow", ErrCommandMalformed)
		}
		n = n*10 + d
	}
	if i == 0 || i >= len(s) {
		return 0, "", fmt.Errorf("%w: missing number or separator", ErrCommandMalformed)
	}
	if s[0] == '0' && i > 1 {
		return 0, "", fmt.Errorf("%w: non-canonical leading zero", ErrCommandMalformed)
	}
	return n, s[i+1:], nil
}
