package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"genconsensus/internal/auth"
	"genconsensus/internal/model"
)

func sampleEnvelope() Envelope {
	return Envelope{
		Instance: 7,
		Round:    12,
		Sender:   3,
		Msg: model.Message{
			Kind:    model.SelectionRound,
			Vote:    "value-a",
			TS:      4,
			History: model.NewHistory("value-a").Add("value-b", 2),
			Sel:     []model.PID{0, 1, 2, 3},
		},
		Auth: []byte{0xde, 0xad},
	}
}

func TestRoundTrip(t *testing.T) {
	env := sampleEnvelope()
	got, err := Decode(Encode(env))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(env, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", env, got)
	}
}

func TestRoundTripMinimal(t *testing.T) {
	env := Envelope{Round: 1, Sender: 0, Msg: model.Message{Kind: model.DecisionRound, Vote: "v"}}
	got, err := Decode(Encode(env))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(env, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", env, got)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	payload := Encode(sampleEnvelope())
	payload[0] = 99
	if _, err := Decode(payload); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	payload := Encode(sampleEnvelope())
	for cut := 0; cut < len(payload); cut++ {
		if _, err := Decode(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	payload := append(Encode(sampleEnvelope()), 0x00)
	if _, err := Decode(payload); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated for trailing bytes", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := Encode(sampleEnvelope())
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("first frame mismatch")
	}
	got, err = ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("second frame = %q", got)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
	// A hostile length prefix must be rejected before allocation.
	hostile := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hostile)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile prefix: %v", err)
	}
}

func TestEncodeSignedVerifies(t *testing.T) {
	kr, err := auth.NewKeyring(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	signer, _ := kr.Signer(3)
	env := sampleEnvelope()
	env.Auth = nil
	payload := EncodeSigned(env, signer.Sign)
	got, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := kr.Verifier().Verify(got.Sender, VerifyPayload(got), got.Auth); err != nil {
		t.Fatalf("signature did not verify: %v", err)
	}
	// Tampering with the vote must break verification.
	got.Msg.Vote = "tampered"
	if err := kr.Verifier().Verify(got.Sender, VerifyPayload(got), got.Auth); err == nil {
		t.Fatal("tampered envelope verified")
	}
}

// Property: encode/decode is the identity on well-formed envelopes.
func TestRoundTripProperty(t *testing.T) {
	vals := []model.Value{"", "a", "bb", "value-with-name"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := Envelope{
			Instance: rng.Uint64() % 1000,
			Round:    model.Round(rng.Intn(300)),
			Sender:   model.PID(rng.Intn(16)),
			Msg: model.Message{
				Kind: model.RoundKind(1 + rng.Intn(3)),
				Vote: vals[rng.Intn(len(vals))],
				TS:   model.Phase(rng.Intn(40)),
			},
		}
		for i := 0; i < rng.Intn(5); i++ {
			env.Msg.History = append(env.Msg.History, model.HistEntry{
				Val:   vals[1+rng.Intn(len(vals)-1)],
				Phase: model.Phase(rng.Intn(9)),
			})
		}
		for i := 0; i < rng.Intn(5); i++ {
			env.Msg.Sel = append(env.Msg.Sel, model.PID(rng.Intn(16)))
		}
		if n := 1 + rng.Intn(63); rng.Intn(2) == 0 {
			env.Auth = make([]byte, n)
			rng.Read(env.Auth)
		}
		got, err := Decode(Encode(env))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(env, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Decode never panics on random bytes.
func TestDecodeFuzzProperty(t *testing.T) {
	prop := func(data []byte) bool {
		_, _ = Decode(data) // must not panic
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
