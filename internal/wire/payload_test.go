package wire

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

func TestPayloadRoundTrip(t *testing.T) {
	data := []byte("some encoded batch body")
	p := Payload{
		Kind:   PayloadAnnounce,
		Group:  7,
		Sender: 3,
		Digest: sha256.Sum256(data),
		Data:   data,
	}
	enc := AppendPayload(nil, p)
	if !IsPayloadFrame(enc) {
		t.Fatal("IsPayloadFrame = false")
	}
	if FrameFamily(enc) != PayloadVersion {
		t.Fatalf("FrameFamily = %d, want %d", FrameFamily(enc), PayloadVersion)
	}
	got, err := DecodePayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != p.Kind || got.Group != p.Group || got.Sender != p.Sender ||
		got.Digest != p.Digest || !bytes.Equal(got.Data, p.Data) || len(got.Auth) != 0 {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestPayloadSigned(t *testing.T) {
	p := Payload{Kind: PayloadFetch, Group: 1, Sender: 2, Digest: sha256.Sum256([]byte("x"))}
	mac := []byte("0123456789abcdef0123456789abcdef")
	var covered []byte
	enc := AppendSignedPayload(nil, p, func(payload []byte) []byte {
		covered = append([]byte(nil), payload...)
		return mac
	})
	gotCovered, gotMAC, ok := SplitSealed(enc)
	if !ok {
		t.Fatal("SplitSealed failed")
	}
	if !bytes.Equal(gotCovered, covered) || !bytes.Equal(gotMAC, mac) {
		t.Fatal("sealed layout mismatch")
	}
	got, err := DecodePayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Auth, mac) || got.Kind != PayloadFetch || got.Sender != 2 {
		t.Fatalf("signed round trip mismatch: %+v", got)
	}
}

func TestPayloadRejectsMalformed(t *testing.T) {
	data := make([]byte, MaxPayloadDataBytes+1)
	oversized := AppendPayload(nil, Payload{Kind: PayloadAnnounce, Digest: sha256.Sum256(data), Data: data})
	if _, err := DecodePayload(oversized); err == nil {
		t.Fatal("oversized data accepted")
	}
	good := AppendPayload(nil, Payload{Kind: PayloadAnnounce, Digest: sha256.Sum256(nil)})
	if _, err := DecodePayload(append(good, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodePayload(good[:len(good)-3]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := DecodePayload([]byte{Version}); err == nil {
		t.Fatal("wrong family accepted")
	}
}
