package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"genconsensus/internal/model"
)

// SnapVersion is the first byte of every state-transfer payload. It is
// distinct from the consensus codec's Version, so the two frame families
// share one TCP stream without ambiguity: receivers peek the first byte
// (IsSnapPayload) and route accordingly.
const SnapVersion = 2

// SnapKind discriminates the state-transfer exchange's frames.
type SnapKind uint8

const (
	// SnapRequest asks a peer for its latest checkpoint.
	SnapRequest SnapKind = 1
	// SnapChunk carries one slice of an encoded snapshot. Every chunk of
	// one transfer repeats the snapshot metadata and the digest of the
	// complete encoding, so the receiver can detect a torn or mixed
	// response before reassembly finishes.
	SnapChunk SnapKind = 2
	// SnapNone answers a request when no checkpoint exists yet (and a
	// DecisionRequest when the instance is not in the decision cache).
	SnapNone SnapKind = 3
	// DecisionRequest asks a peer for the decided value of one released
	// instance (LastInstance carries the instance id). It closes the
	// catch-up gap between a transferred checkpoint and the cluster head:
	// those instances are finished business the peers will never re-run.
	DecisionRequest SnapKind = 4
	// DecisionReply answers with the decided value in Data.
	DecisionReply SnapKind = 5
)

// MaxSnapDataBytes bounds one chunk's payload so the whole frame stays
// under MaxFrameSize with headroom for metadata and the MAC.
const MaxSnapDataBytes = MaxFrameSize - 1024

// ErrSnapMalformed rejects unparsable state-transfer payloads.
var ErrSnapMalformed = errors.New("wire: malformed snapshot frame")

// SnapEnvelope is one state-transfer frame.
type SnapEnvelope struct {
	// Kind is the frame discriminator.
	Kind SnapKind
	// Sender is the authenticated sender identity.
	Sender model.PID
	// LastInstance/LogIndex mirror the transferred snapshot's watermark
	// (zero in requests).
	LastInstance uint64
	LogIndex     uint64
	// Digest is the SHA-256 of the complete snapshot encoding this chunk
	// belongs to.
	Digest []byte
	// ChunkIndex/ChunkCount place this chunk in the transfer.
	ChunkIndex uint32
	ChunkCount uint32
	// Data is the chunk payload.
	Data []byte
	// Auth carries the pairwise MAC over the payload.
	Auth []byte
}

// IsSnapPayload reports whether a received payload belongs to the
// state-transfer family (first byte SnapVersion).
func IsSnapPayload(payload []byte) bool {
	return len(payload) > 0 && payload[0] == SnapVersion
}

// AppendSnap serializes a state-transfer envelope onto dst:
//
//	payload := SnapVersion(u8) kind(u8) sender(u32) lastInstance(u64)
//	           logIndex(u64) digestLen(u16) digest chunkIndex(u32)
//	           chunkCount(u32) dataLen(u32) data authLen(u16) auth
func AppendSnap(dst []byte, env SnapEnvelope) []byte {
	w := &writer{buf: dst}
	w.u8(SnapVersion)
	w.u8(uint8(env.Kind))
	w.u32(uint32(env.Sender))
	w.u64(env.LastInstance)
	w.u64(env.LogIndex)
	w.u16(uint16(len(env.Digest)))
	w.buf = append(w.buf, env.Digest...)
	w.u32(env.ChunkIndex)
	w.u32(env.ChunkCount)
	w.u32(uint32(len(env.Data)))
	w.buf = append(w.buf, env.Data...)
	w.u16(uint16(len(env.Auth)))
	w.buf = append(w.buf, env.Auth...)
	return w.buf
}

// AppendSignedSnap serializes the envelope in a single pass, calling sign
// on exactly the covered byte range and appending the authenticator,
// mirroring AppendSignedEnvelope.
func AppendSignedSnap(dst []byte, env SnapEnvelope, sign func(payload []byte) []byte) []byte {
	env.Auth = nil
	start := len(dst)
	dst = AppendSnap(dst, env)
	dst = dst[:len(dst)-2] // drop the empty authLen
	mac := sign(dst[start:])
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(mac)))
	return append(dst, mac...)
}

// EncodeSnap serializes a state-transfer envelope.
//
// Deprecated: use AppendSnap with a caller-owned (ideally pooled) buffer.
func EncodeSnap(env SnapEnvelope) []byte {
	return AppendSnap(make([]byte, 0, 64+len(env.Data)), env)
}

// DecodeSnap parses an EncodeSnap payload.
func DecodeSnap(payload []byte) (SnapEnvelope, error) {
	r := &reader{buf: payload}
	if v := r.u8(); v != SnapVersion {
		if r.err != nil {
			return SnapEnvelope{}, r.err
		}
		return SnapEnvelope{}, fmt.Errorf("%w: version %d", ErrSnapMalformed, v)
	}
	var env SnapEnvelope
	env.Kind = SnapKind(r.u8())
	env.Sender = model.PID(r.u32())
	env.LastInstance = r.u64()
	env.LogIndex = r.u64()
	env.Digest = r.bytes()
	env.ChunkIndex = r.u32()
	env.ChunkCount = r.u32()
	env.Data = r.bytes32()
	env.Auth = r.bytes()
	if r.err != nil {
		return SnapEnvelope{}, r.err
	}
	if r.off != len(payload) {
		return SnapEnvelope{}, fmt.Errorf("%w: %d trailing bytes", ErrSnapMalformed, len(payload)-r.off)
	}
	switch env.Kind {
	case SnapRequest, SnapChunk, SnapNone, DecisionRequest, DecisionReply:
	default:
		return SnapEnvelope{}, fmt.Errorf("%w: kind %d", ErrSnapMalformed, env.Kind)
	}
	return env, nil
}

// SnapVerifyPayload returns the byte range a MAC must cover: the encoding
// without the trailing authenticator.
func SnapVerifyPayload(env SnapEnvelope) []byte {
	env.Auth = nil
	unauth := EncodeSnap(env)
	return unauth[:len(unauth)-2] // strip the empty authLen
}
