package round

import (
	"testing"

	"genconsensus/internal/model"
)

func TestBroadcast(t *testing.T) {
	msg := model.Message{Kind: model.DecisionRound, Vote: "v"}
	out := Broadcast(msg, []model.PID{0, 2, 5})
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
	for _, p := range []model.PID{0, 2, 5} {
		if out[p].Vote != "v" {
			t.Errorf("dest %d missing message", p)
		}
	}
	if _, ok := out[1]; ok {
		t.Error("unexpected destination 1")
	}
	if got := Broadcast(msg, nil); len(got) != 0 {
		t.Errorf("empty destination list: %v", got)
	}
}
