// Package round defines the closed-round computation model of §2.1: in each
// round r a process sends messages according to a sending function S_p^r and,
// at the end of the round, computes a new state with a transition function
// T_p^r applied to the vector of messages received in that same round.
//
// The package only fixes the contract between processes and runtimes; the
// in-memory simulator (internal/sim) and the TCP runtime
// (internal/transport) both drive implementations of Proc.
package round

import "genconsensus/internal/model"

// Proc is a process in the round model. Implementations must be pure state
// machines: no goroutines, no clocks; all nondeterminism (coin flips) is
// injected via seeded sources at construction.
type Proc interface {
	// ID returns the process identifier.
	ID() model.PID
	// Send returns the messages to send in round r, keyed by destination.
	// A nil or empty map means the process sends nothing. Honest
	// processes send the same content to every destination; Byzantine
	// implementations may equivocate.
	Send(r model.Round) map[model.PID]model.Message
	// Transition consumes the vector of messages received in round r
	// (closed rounds: only round-r messages appear) and updates state.
	Transition(r model.Round, mu model.Received)
	// Decided reports the decision value once the process has decided.
	Decided() (model.Value, bool)
}

// Broadcast builds a Send result carrying the same message to every
// destination in dests.
func Broadcast(msg model.Message, dests []model.PID) map[model.PID]model.Message {
	out := make(map[model.PID]model.Message, len(dests))
	for _, d := range dests {
		out[d] = msg
	}
	return out
}
