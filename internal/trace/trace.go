// Package trace collects execution metrics from consensus runs: rounds,
// message and byte counts per round kind, and decision latencies. The
// experiment harness (cmd/experiments) uses these to regenerate the paper's
// complexity comparisons.
package trace

import (
	"fmt"
	"strings"

	"genconsensus/internal/model"
)

// EstimateSize returns the serialized size of a message in bytes, matching
// the framing of internal/wire byte for byte (TestEstimateMatchesWire pins
// the equivalence): fixed header plus variable vote, history, selector-set
// and relay payloads. It lets the in-memory simulator report byte costs
// comparable to the TCP runtime.
func EstimateSize(m model.Message) int {
	// kind u8 + vote length u16 + ts u64 + the three section counts (u16
	// each for history, selector set and relay batch).
	const header = 1 + 2 + 8 + 2 + 2 + 2
	size := header + len(m.Vote)
	size += len(m.History) * 10 // 2-byte value length + 8-byte phase
	for _, e := range m.History {
		size += len(e.Val)
	}
	size += len(m.Sel) * 4
	for _, s := range m.Relay {
		// 4-byte sender + nested message + 2-byte signature length.
		size += 6 + EstimateSize(s.Msg) + len(s.Sig)
	}
	return size
}

// RoundRecord captures one round of an execution.
type RoundRecord struct {
	Round     model.Round
	Phase     model.Phase
	Kind      model.RoundKind
	Sent      int
	Delivered int
	Bytes     int64
	Mode      string // predicate mode claimed by the network this round
}

// Stats aggregates an execution.
type Stats struct {
	Rounds            int
	MessagesSent      int
	MessagesDelivered int
	BytesSent         int64
	SentByKind        map[model.RoundKind]int
	BytesByKind       map[model.RoundKind]int64
}

// Collector accumulates per-round records. The zero value is ready to use.
// Collectors are not safe for concurrent use; the lock-step simulator and
// per-node transport loops each own one.
type Collector struct {
	stats   Stats
	records []RoundRecord
}

// Record appends one round's accounting.
func (c *Collector) Record(rec RoundRecord) {
	if c.stats.SentByKind == nil {
		c.stats.SentByKind = make(map[model.RoundKind]int)
		c.stats.BytesByKind = make(map[model.RoundKind]int64)
	}
	c.records = append(c.records, rec)
	c.stats.Rounds++
	c.stats.MessagesSent += rec.Sent
	c.stats.MessagesDelivered += rec.Delivered
	c.stats.BytesSent += rec.Bytes
	c.stats.SentByKind[rec.Kind] += rec.Sent
	c.stats.BytesByKind[rec.Kind] += rec.Bytes
}

// Stats returns the aggregate view.
func (c *Collector) Stats() Stats { return c.stats }

// Records returns the per-round log (not a copy; callers must not mutate).
func (c *Collector) Records() []RoundRecord { return c.records }

// String renders a compact multi-line summary.
func (c *Collector) String() string {
	var b strings.Builder
	s := c.stats
	fmt.Fprintf(&b, "rounds=%d sent=%d delivered=%d bytes=%d",
		s.Rounds, s.MessagesSent, s.MessagesDelivered, s.BytesSent)
	for _, kind := range []model.RoundKind{model.SelectionRound, model.ValidationRound, model.DecisionRound} {
		if n, ok := s.SentByKind[kind]; ok {
			fmt.Fprintf(&b, " %s=%d", kind, n)
		}
	}
	return b.String()
}
