package trace

import (
	"strings"
	"testing"

	"genconsensus/internal/model"
)

func TestEstimateSize(t *testing.T) {
	small := model.Message{Kind: model.DecisionRound, Vote: "v"}
	large := model.Message{
		Kind:    model.SelectionRound,
		Vote:    "value-with-longer-name",
		TS:      3,
		History: model.NewHistory("a").Add("b", 1).Add("c", 2),
		Sel:     model.AllPIDs(7),
	}
	if EstimateSize(small) <= 0 {
		t.Error("size must be positive")
	}
	if EstimateSize(large) <= EstimateSize(small) {
		t.Error("larger message must estimate larger")
	}
	// History growth must be visible in the size (class-3 cost).
	withHist := model.Message{Vote: "v", History: model.NewHistory("v").Add("v", 1)}
	withoutHist := model.Message{Vote: "v"}
	if EstimateSize(withHist) <= EstimateSize(withoutHist) {
		t.Error("history must add to message size")
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	c.Record(RoundRecord{Round: 1, Phase: 1, Kind: model.SelectionRound, Sent: 16, Delivered: 12, Bytes: 400, Mode: "cons"})
	c.Record(RoundRecord{Round: 2, Phase: 1, Kind: model.ValidationRound, Sent: 4, Delivered: 4, Bytes: 80, Mode: "good"})
	c.Record(RoundRecord{Round: 3, Phase: 1, Kind: model.DecisionRound, Sent: 16, Delivered: 16, Bytes: 320, Mode: "good"})

	s := c.Stats()
	if s.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", s.Rounds)
	}
	if s.MessagesSent != 36 {
		t.Errorf("MessagesSent = %d, want 36", s.MessagesSent)
	}
	if s.MessagesDelivered != 32 {
		t.Errorf("MessagesDelivered = %d, want 32", s.MessagesDelivered)
	}
	if s.BytesSent != 800 {
		t.Errorf("BytesSent = %d, want 800", s.BytesSent)
	}
	if s.SentByKind[model.SelectionRound] != 16 {
		t.Errorf("selection sends = %d", s.SentByKind[model.SelectionRound])
	}
	if s.BytesByKind[model.ValidationRound] != 80 {
		t.Errorf("validation bytes = %d", s.BytesByKind[model.ValidationRound])
	}
	if len(c.Records()) != 3 {
		t.Errorf("records = %d", len(c.Records()))
	}
	out := c.String()
	for _, want := range []string{"rounds=3", "sent=36", "selection=16"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func TestCollectorZeroValue(t *testing.T) {
	var c Collector
	if c.Stats().Rounds != 0 {
		t.Error("zero collector must report zero rounds")
	}
	if c.String() == "" {
		t.Error("zero collector String must render")
	}
}
