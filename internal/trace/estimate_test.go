package trace

import (
	"testing"

	"genconsensus/internal/model"
	"genconsensus/internal/wire"
)

// envelopeOverhead is the fixed framing AppendEnvelope adds around the
// message encoding when Auth is empty: version u8 + instance u64 +
// round u64 + sender u32 before the message, authLen u16 after it.
const envelopeOverhead = 1 + 8 + 8 + 4 + 2

// encodedMessageSize returns the number of bytes the real wire codec
// spends on just the message portion of an envelope.
func encodedMessageSize(t *testing.T, m model.Message) int {
	t.Helper()
	enc := wire.AppendEnvelope(nil, wire.Envelope{
		Instance: 7,
		Round:    3,
		Sender:   2,
		Msg:      m,
	})
	return len(enc) - envelopeOverhead
}

// TestEstimateMatchesWire pins EstimateSize to the internal/wire encoder
// byte for byte across representative message shapes, so the simulator's
// byte accounting cannot drift from what the TCP runtime actually sends.
func TestEstimateMatchesWire(t *testing.T) {
	cases := []struct {
		name string
		msg  model.Message
	}{
		{"empty", model.Message{}},
		{"vote only", model.Message{Kind: model.SelectionRound, Vote: "v1", TS: 4}},
		{"history", model.Message{
			Vote:    "value-seven",
			History: model.History{{Val: "a", Phase: 1}, {Val: "longer-value", Phase: 2}, {Val: "", Phase: 3}},
		}},
		{"selector set", model.Message{
			Kind: model.ValidationRound,
			Sel:  []model.PID{0, 1, 2, 5},
		}},
		{"relay batch", model.Message{
			Kind: model.DecisionRound,
			Relay: []model.Signed{
				{Sender: 1, Msg: model.Message{Vote: "inner", TS: 2}, Sig: []byte("sig-bytes")},
				{Sender: 4, Msg: model.Message{History: model.History{{Val: "h", Phase: 9}}}},
			},
		}},
		{"kitchen sink", model.Message{
			Kind:    model.DecisionRound,
			Vote:    "winning-value",
			TS:      12,
			History: model.History{{Val: "winning-value", Phase: 11}},
			Sel:     []model.PID{0, 3},
			Relay: []model.Signed{
				{Sender: 2, Msg: model.Message{Vote: "echo", Sel: []model.PID{1}}, Sig: make([]byte, 32)},
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := EstimateSize(tc.msg)
			want := encodedMessageSize(t, tc.msg)
			if got != want {
				t.Errorf("EstimateSize = %d, wire encoding = %d bytes", got, want)
			}
		})
	}
}

// TestEstimateMatchesWireSigned checks the estimate against the signed
// encoding path too: the authenticator rides outside the message, so the
// message portion must still match exactly.
func TestEstimateMatchesWireSigned(t *testing.T) {
	m := model.Message{Vote: "signed-vote", History: model.History{{Val: "signed-vote", Phase: 1}}}
	mac := make([]byte, 16)
	enc := wire.AppendSignedEnvelope(nil, wire.Envelope{Instance: 1, Round: 1, Sender: 0, Msg: m},
		func(payload []byte) []byte { return mac })
	want := len(enc) - envelopeOverhead - len(mac)
	if got := EstimateSize(m); got != want {
		t.Errorf("EstimateSize = %d, signed wire encoding message portion = %d bytes", got, want)
	}
}
