// Package quorum implements the threshold arithmetic of the generic consensus
// algorithm: the three classes of Table 1, their decision thresholds TD,
// their resilience bounds on n, and the strict-fraction comparisons the
// algorithm performs (e.g. "more than (n+b)/2 messages" at line 15).
//
// All comparisons against real-valued fractions x/2 are done in integers:
// count > x/2 over the reals iff 2*count > x over the integers.
package quorum

import (
	"errors"
	"fmt"
)

// Class identifies one of the three classes of consensus algorithms of the
// paper (Table 1). The classes differ in the FLAG and TD parameters, hence
// in the required n, the process state and the number of rounds per phase.
type Class int

const (
	// Class1 (FLAG = *, TD > (n+3b+f)/2): no validation round, state is
	// just vote_p, 2 rounds per phase, requires n > 5b+3f.
	// Examples: OneThirdRule (b=0), FaB Paxos (f=0).
	Class1 Class = 1
	// Class2 (FLAG = φ, TD > 3b+f): state (vote_p, ts_p), 3 rounds per
	// phase, requires n > 4b+2f. Examples: Paxos/CT (b=0), MQB (f=0).
	Class2 Class = 2
	// Class3 (FLAG = φ, TD > 2b+f): state (vote_p, ts_p, history_p),
	// 3 rounds per phase, requires n > 3b+2f.
	// Examples: Paxos/CT (b=0), PBFT (f=0).
	Class3 Class = 3
)

// String returns "class 1|2|3".
func (c Class) String() string { return fmt.Sprintf("class %d", int(c)) }

// RoundsPerPhase returns the number of communication rounds per phase for
// the class: 2 when the validation round is suppressed (class 1), else 3.
func (c Class) RoundsPerPhase() int {
	if c == Class1 {
		return 2
	}
	return 3
}

// StateVars returns the process state variables used by the class, as listed
// in Table 1.
func (c Class) StateVars() []string {
	switch c {
	case Class1:
		return []string{"vote"}
	case Class2:
		return []string{"vote", "ts"}
	default:
		return []string{"vote", "ts", "history"}
	}
}

// MinN returns the smallest n tolerating b Byzantine and f benign-faulty
// processes for the class: the "n" column of Table 1 is a strict bound, so
// MinN = bound + 1.
func MinN(c Class, b, f int) int {
	switch c {
	case Class1:
		return 5*b + 3*f + 1
	case Class2:
		return 4*b + 2*f + 1
	default:
		return 3*b + 2*f + 1
	}
}

// MinTD returns the smallest decision threshold satisfying the class's lower
// bound for the given n, b, f.
//
//	class 1: TD > (n+3b+f)/2  ⇒  MinTD = floor((n+3b+f)/2) + 1
//	class 2: TD > 3b+f        ⇒  MinTD = 3b+f+1
//	class 3: TD > 2b+f        ⇒  MinTD = 2b+f+1
func MinTD(c Class, n, b, f int) int {
	switch c {
	case Class1:
		return (n+3*b+f)/2 + 1
	case Class2:
		return 3*b + f + 1
	default:
		return 2*b + f + 1
	}
}

// MaxTD returns the largest threshold compatible with termination:
// TD ≤ n − b − f (votes of faulty and Byzantine processes must not be needed
// to decide).
func MaxTD(n, b, f int) int { return n - b - f }

// Errors returned by Validate.
var (
	ErrNonPositiveN = errors.New("quorum: n must be positive")
	ErrNegativeB    = errors.New("quorum: b must be non-negative")
	ErrNegativeF    = errors.New("quorum: f must be non-negative")
	ErrNTooSmall    = errors.New("quorum: n below class resilience bound")
	ErrTDTooSmall   = errors.New("quorum: TD below class lower bound (agreement at risk)")
	ErrTDTooLarge   = errors.New("quorum: TD > n-b-f (termination at risk)")
)

// Config is a validated (class, n, b, f, TD) tuple.
type Config struct {
	Class Class
	N     int // total number of processes
	B     int // maximum number of Byzantine processes
	F     int // maximum number of benign-faulty (crash) processes
	TD    int // decision threshold
}

// Validate checks the Table 1 constraints: positivity, n above the class
// bound, and MinTD ≤ TD ≤ MaxTD. It returns nil iff the configuration is
// one for which Theorem 1 guarantees agreement and termination.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("%w: n=%d", ErrNonPositiveN, c.N)
	}
	if c.B < 0 {
		return fmt.Errorf("%w: b=%d", ErrNegativeB, c.B)
	}
	if c.F < 0 {
		return fmt.Errorf("%w: f=%d", ErrNegativeF, c.F)
	}
	if c.N < MinN(c.Class, c.B, c.F) {
		return fmt.Errorf("%w: %s requires n ≥ %d for b=%d f=%d, got n=%d",
			ErrNTooSmall, c.Class, MinN(c.Class, c.B, c.F), c.B, c.F, c.N)
	}
	if c.TD < MinTD(c.Class, c.N, c.B, c.F) {
		return fmt.Errorf("%w: %s requires TD ≥ %d, got TD=%d",
			ErrTDTooSmall, c.Class, MinTD(c.Class, c.N, c.B, c.F), c.TD)
	}
	if c.TD > MaxTD(c.N, c.B, c.F) {
		return fmt.Errorf("%w: TD=%d > %d (n=%d b=%d f=%d)",
			ErrTDTooLarge, c.TD, MaxTD(c.N, c.B, c.F), c.N, c.B, c.F)
	}
	return nil
}

// MoreThanHalf reports count > total/2 over the reals: the strict-majority
// comparisons at lines 15 (total = n+b) and 22 (total = |validators|+b) of
// Algorithm 1.
func MoreThanHalf(count, total int) bool { return 2*count > total }

// CeilHalf returns ⌈(x+1)/2⌉-style named thresholds used by §5:
// the smallest integer strictly greater than x/2.
func CeilHalf(x int) int { return x/2 + 1 }

// Named thresholds of the instantiations in §5 and §6 of the paper.

// OneThirdRuleTD returns TD = ⌈(2n+1)/3⌉ (§5.1, OneThirdRule, b=0).
func OneThirdRuleTD(n int) int { return ceilDiv(2*n+1, 3) }

// FaBPaxosTD returns TD = ⌈(n+3b+1)/2⌉ (§5.1, FaB Paxos, f=0).
func FaBPaxosTD(n, b int) int { return ceilDiv(n+3*b+1, 2) }

// MQBTD returns TD = ⌈(n+2b+1)/2⌉ (§5.2, MQB, f=0).
func MQBTD(n, b int) int { return ceilDiv(n+2*b+1, 2) }

// PaxosTD returns TD = ⌈(n+1)/2⌉, a strict majority (§5.3, Paxos, b=0).
func PaxosTD(n int) int { return ceilDiv(n+1, 2) }

// PBFTTD returns TD = 2b+1 (§5.3, PBFT, f=0).
func PBFTTD(b int) int { return 2*b + 1 }

// ChandraTouegTD returns TD = f+1 (class 2 with b=0; CT with ◇S).
func ChandraTouegTD(f int) int { return f + 1 }

// BenOrBenignTD returns TD = f+1 (§6, Ben-Or with benign faults, n > 2f).
func BenOrBenignTD(f int) int { return f + 1 }

// BenOrByzantineTD returns TD = 3b+1 (§6, Ben-Or with Byzantine faults,
// n > 4b).
func BenOrByzantineTD(b int) int { return 3*b + 1 }

func ceilDiv(a, b int) int { return (a + b - 1) / b }
