package quorum

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestClassMeta(t *testing.T) {
	tests := []struct {
		class  Class
		rounds int
		state  int
		str    string
	}{
		{Class1, 2, 1, "class 1"},
		{Class2, 3, 2, "class 2"},
		{Class3, 3, 3, "class 3"},
	}
	for _, tt := range tests {
		if got := tt.class.RoundsPerPhase(); got != tt.rounds {
			t.Errorf("%v RoundsPerPhase = %d, want %d", tt.class, got, tt.rounds)
		}
		if got := len(tt.class.StateVars()); got != tt.state {
			t.Errorf("%v StateVars count = %d, want %d", tt.class, got, tt.state)
		}
		if got := tt.class.String(); got != tt.str {
			t.Errorf("String = %q, want %q", got, tt.str)
		}
	}
}

// Table 1, "n" column: MinN must be bound+1 with the bounds 5b+3f, 4b+2f,
// 3b+2f.
func TestMinN(t *testing.T) {
	tests := []struct {
		class Class
		b, f  int
		want  int
	}{
		{Class1, 0, 1, 4},  // OneThirdRule: n > 3f
		{Class1, 1, 0, 6},  // FaB Paxos: n > 5b
		{Class1, 2, 1, 14}, // mixed
		{Class2, 0, 1, 3},  // Paxos/CT: n > 2f
		{Class2, 1, 0, 5},  // MQB: n > 4b
		{Class2, 2, 3, 15},
		{Class3, 0, 2, 5}, // Paxos: n > 2f
		{Class3, 1, 0, 4}, // PBFT: n > 3b
		{Class3, 3, 1, 12},
	}
	for _, tt := range tests {
		if got := MinN(tt.class, tt.b, tt.f); got != tt.want {
			t.Errorf("MinN(%v, b=%d, f=%d) = %d, want %d", tt.class, tt.b, tt.f, got, tt.want)
		}
	}
}

// At n = MinN the class is feasible (MinTD ≤ MaxTD) and at n = MinN-1 it is
// not: Table 1's bounds are exactly the feasibility frontier of
// MinTD ≤ TD ≤ n-b-f.
func TestBoundsAreTight(t *testing.T) {
	for _, class := range []Class{Class1, Class2, Class3} {
		for b := 0; b <= 4; b++ {
			for f := 0; f <= 4; f++ {
				nMin := MinN(class, b, f)
				if MinTD(class, nMin, b, f) > MaxTD(nMin, b, f) {
					t.Errorf("%v b=%d f=%d: infeasible at its own MinN=%d", class, b, f, nMin)
				}
				if nMin <= 1 {
					continue
				}
				nBelow := nMin - 1
				if MinTD(class, nBelow, b, f) <= MaxTD(nBelow, b, f) {
					t.Errorf("%v b=%d f=%d: feasible below the bound at n=%d", class, b, f, nBelow)
				}
			}
		}
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr error
	}{
		{"valid PBFT", Config{Class3, 4, 1, 0, 3}, nil},
		{"valid Paxos", Config{Class2, 3, 0, 1, 2}, nil},
		{"valid MQB", Config{Class2, 5, 1, 0, 4}, nil},
		{"valid FaB", Config{Class1, 6, 1, 0, 5}, nil},
		{"valid OTR", Config{Class1, 4, 0, 1, 3}, nil},
		{"zero n", Config{Class1, 0, 0, 0, 1}, ErrNonPositiveN},
		{"negative b", Config{Class1, 4, -1, 0, 3}, ErrNegativeB},
		{"negative f", Config{Class1, 4, 0, -1, 3}, ErrNegativeF},
		{"n below bound PBFT", Config{Class3, 3, 1, 0, 3}, ErrNTooSmall},
		{"n below bound MQB", Config{Class2, 4, 1, 0, 4}, ErrNTooSmall},
		{"TD too small", Config{Class3, 4, 1, 0, 2}, ErrTDTooSmall},
		{"TD too large", Config{Class3, 4, 1, 0, 4}, ErrTDTooLarge},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestMoreThanHalf(t *testing.T) {
	tests := []struct {
		count, total int
		want         bool
	}{
		{3, 5, true},  // 3 > 2.5
		{3, 6, false}, // 3 > 3 is false
		{4, 6, true},
		{0, 0, false},
		{1, 1, true}, // 1 > 0.5
	}
	for _, tt := range tests {
		if got := MoreThanHalf(tt.count, tt.total); got != tt.want {
			t.Errorf("MoreThanHalf(%d, %d) = %v, want %v", tt.count, tt.total, got, tt.want)
		}
	}
}

func TestCeilHalf(t *testing.T) {
	if CeilHalf(4) != 3 || CeilHalf(5) != 3 || CeilHalf(0) != 1 {
		t.Errorf("CeilHalf: got %d %d %d", CeilHalf(4), CeilHalf(5), CeilHalf(0))
	}
}

// The named thresholds of §5/§6 must satisfy their class constraints at the
// algorithm's own minimal n, and sit exactly at the feasibility point there.
func TestNamedThresholds(t *testing.T) {
	tests := []struct {
		name  string
		class Class
		n     int
		b, f  int
		td    int
	}{
		{"OneThirdRule n=4 f=1", Class1, 4, 0, 1, OneThirdRuleTD(4)},
		{"OneThirdRule n=7 f=2", Class1, 7, 0, 2, OneThirdRuleTD(7)},
		{"FaB n=6 b=1", Class1, 6, 1, 0, FaBPaxosTD(6, 1)},
		{"FaB n=11 b=2", Class1, 11, 2, 0, FaBPaxosTD(11, 2)},
		{"MQB n=5 b=1", Class2, 5, 1, 0, MQBTD(5, 1)},
		{"MQB n=9 b=2", Class2, 9, 2, 0, MQBTD(9, 2)},
		{"Paxos n=3 f=1", Class2, 3, 0, 1, PaxosTD(3)},
		{"Paxos n=5 f=2", Class3, 5, 0, 2, PaxosTD(5)},
		{"CT n=3 f=1", Class2, 3, 0, 1, ChandraTouegTD(1)},
		{"PBFT n=4 b=1", Class3, 4, 1, 0, PBFTTD(1)},
		{"PBFT n=7 b=2", Class3, 7, 2, 0, PBFTTD(2)},
		{"BenOr benign n=3 f=1", Class2, 3, 0, 1, BenOrBenignTD(1)},
		{"BenOr byz n=5 b=1", Class2, 5, 1, 0, BenOrByzantineTD(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Config{Class: tt.class, N: tt.n, B: tt.b, F: tt.f, TD: tt.td}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("named threshold invalid: %v", err)
			}
		})
	}
}

// Specific named-threshold values quoted in the paper.
func TestNamedThresholdValues(t *testing.T) {
	if got := OneThirdRuleTD(3); got != 3 {
		t.Errorf("OneThirdRuleTD(3) = %d, want 3", got)
	}
	if got := OneThirdRuleTD(9); got != 7 {
		t.Errorf("OneThirdRuleTD(9) = %d, want 7 (> 2n/3)", got)
	}
	// Footnote 13: n=7, b=1 ⇒ FaB needs ⌈(n-b+1)/2⌉ = 4 equal messages in
	// the original; TD here is ⌈(7+3+1)/2⌉ = 6.
	if got := FaBPaxosTD(7, 1); got != 6 {
		t.Errorf("FaBPaxosTD(7,1) = %d, want 6", got)
	}
	if got := MQBTD(5, 1); got != 4 {
		t.Errorf("MQBTD(5,1) = %d, want 4", got)
	}
	if got := PaxosTD(4); got != 3 {
		t.Errorf("PaxosTD(4) = %d, want 3", got)
	}
	if got := PBFTTD(2); got != 5 {
		t.Errorf("PBFTTD(2) = %d, want 5", got)
	}
}

// Property (used throughout the FLV proofs): for any valid class-1 config,
// liveness arithmetic n-b-f > 2(n-TD+b) holds, and the agreement overlap
// 2(TD-b) > n-b holds.
func TestClass1ArithmeticProperty(t *testing.T) {
	f := func(bRaw, fRaw, extraN, extraTD uint8) bool {
		b, fl := int(bRaw%3), int(fRaw%3)
		n := MinN(Class1, b, fl) + int(extraN%5)
		td := MinTD(Class1, n, b, fl) + int(extraTD%3)
		if td > MaxTD(n, b, fl) {
			td = MaxTD(n, b, fl)
		}
		cfg := Config{Class1, n, b, fl, td}
		if err := cfg.Validate(); err != nil {
			return false
		}
		liveness := n-b-fl > 2*(n-td+b)
		agreement := 2*(td-b) > n-b
		return liveness && agreement
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: class-2 liveness arithmetic n-b-f > n-TD+2b for valid configs.
func TestClass2ArithmeticProperty(t *testing.T) {
	f := func(bRaw, fRaw, extraN, extraTD uint8) bool {
		b, fl := int(bRaw%3), int(fRaw%3)
		n := MinN(Class2, b, fl) + int(extraN%5)
		td := MinTD(Class2, n, b, fl) + int(extraTD%3)
		if td > MaxTD(n, b, fl) {
			td = MaxTD(n, b, fl)
		}
		cfg := Config{Class2, n, b, fl, td}
		if err := cfg.Validate(); err != nil {
			return false
		}
		return n-b-fl > n-td+2*b && td > b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: class-3 liveness arithmetic n-b-f > n-TD+b for valid configs.
func TestClass3ArithmeticProperty(t *testing.T) {
	f := func(bRaw, fRaw, extraN, extraTD uint8) bool {
		b, fl := int(bRaw%3), int(fRaw%3)
		n := MinN(Class3, b, fl) + int(extraN%5)
		td := MinTD(Class3, n, b, fl) + int(extraTD%3)
		if td > MaxTD(n, b, fl) {
			td = MaxTD(n, b, fl)
		}
		cfg := Config{Class3, n, b, fl, td}
		if err := cfg.Validate(); err != nil {
			return false
		}
		return n-b-fl > n-td+b && td > b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// MinN ordering across classes: class 1 never needs fewer processes than
// class 2, which never needs fewer than class 3.
func TestClassOrderingProperty(t *testing.T) {
	f := func(bRaw, fRaw uint8) bool {
		b, fl := int(bRaw%8), int(fRaw%8)
		return MinN(Class1, b, fl) >= MinN(Class2, b, fl) &&
			MinN(Class2, b, fl) >= MinN(Class3, b, fl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// With b = 0 classes 2 and 3 coincide on every bound (the paper: "if b = 0,
// classes 2 and 3 are identical").
func TestBenignClassesCoincide(t *testing.T) {
	for f := 0; f <= 6; f++ {
		if MinN(Class2, 0, f) != MinN(Class3, 0, f) {
			t.Errorf("f=%d: MinN differs between class 2 and 3 with b=0", f)
		}
		for n := MinN(Class2, 0, f); n < MinN(Class2, 0, f)+4; n++ {
			if MinTD(Class2, n, 0, f) != MinTD(Class3, n, 0, f) {
				t.Errorf("n=%d f=%d: MinTD differs between class 2 and 3 with b=0", n, f)
			}
		}
	}
}
