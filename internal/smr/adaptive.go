package smr

import (
	"math"
	"sync"
)

// AdaptiveConfig parameterizes an AdaptiveBatch controller.
type AdaptiveConfig struct {
	// MaxBatch caps the batch size (default MaxBatchSize).
	MaxBatch int
	// MaxDepth is the pipeline depth budget W the controller sizes
	// against (default 4).
	MaxDepth int
	// Alpha is the EWMA smoothing factor in (0, 1]; higher reacts faster
	// (default 0.25).
	Alpha float64
	// BaseLatency is the expected per-instance latency under light load,
	// in whatever unit Observe is fed (simulated rounds for the in-memory
	// cluster, milliseconds for the TCP runtime). Latencies above it push
	// batch sizes up to amortize the slower instances (default 3, the
	// good-case round count of a 3-round phase).
	BaseLatency float64
}

// AdaptiveBatch sizes proposals from the current queue depth and an EWMA of
// observed instance latency, replacing the static SetMaxBatch policy:
//
//   - Light load (queue ≤ depth) yields singleton batches and a shallow
//     pipeline, so a lone command pays one instance of latency and nothing
//     waits for a batch window to fill.
//   - Bursts yield batches sized to drain the backlog within the pipeline
//     depth budget, saturating at MaxBatch.
//   - Rising observed latency (contention, bad periods, slow peers)
//     multiplies batch sizes further: when instances are expensive, each
//     one should carry more commands.
//
// The controller implements BatchSizer and is safe for concurrent use —
// proposal sizing on the scheduler goroutine races with latency
// observations from committers.
type AdaptiveBatch struct {
	cfg AdaptiveConfig

	mu   sync.Mutex
	ewma float64
}

// NewAdaptiveBatch builds a controller, applying config defaults.
func NewAdaptiveBatch(cfg AdaptiveConfig) *AdaptiveBatch {
	if cfg.MaxBatch <= 0 || cfg.MaxBatch > MaxBatchSize {
		cfg.MaxBatch = MaxBatchSize
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.25
	}
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = 3
	}
	return &AdaptiveBatch{cfg: cfg}
}

// Observe feeds one completed instance's latency into the EWMA.
func (a *AdaptiveBatch) Observe(latency float64) {
	if latency <= 0 || math.IsNaN(latency) || math.IsInf(latency, 0) {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ewma == 0 {
		a.ewma = latency
		return
	}
	a.ewma += a.cfg.Alpha * (latency - a.ewma)
}

// Latency returns the current EWMA of instance latency (0 before the first
// observation).
func (a *AdaptiveBatch) Latency() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ewma
}

// latencyFactor scales batches by observed slowness, clamped to [1, 4]: a
// network running at base latency gets no inflation; one 4x slower gets
// 4x-larger batches (and therefore 4x fewer instances per command).
func (a *AdaptiveBatch) latencyFactor() float64 {
	a.mu.Lock()
	ewma := a.ewma
	a.mu.Unlock()
	if ewma <= a.cfg.BaseLatency {
		return 1
	}
	f := ewma / a.cfg.BaseLatency
	if f > 4 {
		f = 4
	}
	return f
}

// BatchSize implements BatchSizer: the batch that drains queueDepth within
// the pipeline depth budget, inflated by the latency factor and clamped to
// [1, MaxBatch].
func (a *AdaptiveBatch) BatchSize(queueDepth int) int {
	if queueDepth <= 0 {
		return 1
	}
	perInstance := (queueDepth + a.cfg.MaxDepth - 1) / a.cfg.MaxDepth
	size := int(math.Ceil(float64(perInstance) * a.latencyFactor()))
	if size < 1 {
		size = 1
	}
	if size > a.cfg.MaxBatch {
		size = a.cfg.MaxBatch
	}
	return size
}

// Depth returns the effective pipeline depth for the given backlog: enough
// in-flight instances to cover the queue at the current batch size, at
// most MaxDepth, and at least 1. A single queued command therefore runs
// unpipelined (no speculative NoOp instances), while a burst fills the
// window.
func (a *AdaptiveBatch) Depth(queueDepth int) int {
	if queueDepth <= 0 {
		return 1
	}
	size := a.BatchSize(queueDepth)
	depth := (queueDepth + size - 1) / size
	if depth > a.cfg.MaxDepth {
		depth = a.cfg.MaxDepth
	}
	if depth < 1 {
		depth = 1
	}
	return depth
}
