package smr

import (
	"fmt"
	"testing"

	"genconsensus/internal/adversary"
	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
)

func newPipelinedKVCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c, err := NewCluster(pbftParams(4, 1), func(model.PID) StateMachine {
		return kv.NewStore()
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func submitN(c *Cluster, n int, tag string) {
	for i := 0; i < n; i++ {
		c.Submit(0, kv.Command(fmt.Sprintf("%s-req-%d", tag, i),
			"SET", fmt.Sprintf("%s-k%d", tag, i), fmt.Sprintf("v%d", i)))
	}
}

// A pipelined drain produces exactly the state a serial drain would: every
// command applied, logs identical, queues empty.
func TestPipelineDrainBasic(t *testing.T) {
	c := newPipelinedKVCluster(t, 21)
	c.SetBatchSize(4)
	const k = 32
	submitN(c, k, "basic")
	p := NewPipeline(c, 4)
	if err := p.Drain(40); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if c.PendingTotal() != 0 {
		t.Errorf("pending = %d after drain", c.PendingTotal())
	}
	store := c.Replica(2).SM.(*kv.Store)
	for i := 0; i < k; i++ {
		if v, ok := store.Get(fmt.Sprintf("basic-k%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("basic-k%d = %q, %v", i, v, ok)
		}
	}
	stats := p.Stats()
	if stats.MaxInFlight < 2 {
		t.Errorf("MaxInFlight = %d, window never overlapped", stats.MaxInFlight)
	}
	if stats.Committed != k {
		t.Errorf("Committed = %d, want %d", stats.Committed, k)
	}
}

// Disjoint proposal slices: a window of W instances drains W distinct
// batches, so k commands at batch b need ~k/b instances, not W*k/b.
func TestPipelineDisjointSlices(t *testing.T) {
	c := newPipelinedKVCluster(t, 22)
	c.SetBatchSize(8)
	const k = 64
	submitN(c, k, "slices")
	p := NewPipeline(c, 4)
	if err := p.Drain(k); err != nil {
		t.Fatal(err)
	}
	stats := p.Stats()
	if stats.Instances > k/8+2 {
		t.Errorf("%d commands at batch 8 took %d instances; slices overlap", k, stats.Instances)
	}
	if got := c.Replica(0).Log.Len(); got != k {
		t.Errorf("log length = %d, want %d (no duplicate decisions expected here)", got, k)
	}
}

// The in-order commit queue: instance k+1 decides first, its decision is
// buffered (logs untouched, claim still held), and only once instance k
// decides do both commit — in instance order.
func TestPipelineOutOfOrderCommit(t *testing.T) {
	c := newPipelinedKVCluster(t, 23)
	c.SetBatchSize(2)
	submitN(c, 4, "ooo")
	p := NewPipeline(c, 2)

	// Start the window by hand: instance 1 claims pending[0:2], instance 2
	// claims pending[2:4].
	if err := p.start(); err != nil {
		t.Fatal(err)
	}
	if err := p.start(); err != nil {
		t.Fatal(err)
	}
	if len(p.order) != 2 {
		t.Fatalf("order = %v", p.order)
	}
	first, second := p.order[0], p.order[1]
	claimedBefore := p.claimed

	// Drive ONLY the later instance to its decision.
	laterEngine := p.inflight[second].engine
	for !laterEngine.Done() {
		laterEngine.Step()
	}
	if err := p.harvest(); err != nil {
		t.Fatal(err)
	}
	if _, buffered := p.decided[second]; !buffered {
		t.Fatal("later decision not buffered")
	}
	p.commitReady()
	if got := c.Replica(0).Log.Len(); got != 0 {
		t.Fatalf("later instance committed before earlier one: log length %d", got)
	}
	if p.claimed != claimedBefore {
		t.Fatalf("claim released before commit: %d -> %d", claimedBefore, p.claimed)
	}

	// Now let the earlier instance finish: both must apply, in order.
	earlierEngine := p.inflight[first].engine
	for !earlierEngine.Done() {
		earlierEngine.Step()
	}
	if err := p.harvest(); err != nil {
		t.Fatal(err)
	}
	if p.stats.OutOfOrder == 0 {
		t.Error("OutOfOrder stat did not record the buffered decision")
	}
	p.commitReady()
	if got := c.Replica(0).Log.Len(); got != 4 {
		t.Fatalf("log length = %d, want 4 after in-order flush", got)
	}
	if p.claimed != 0 {
		t.Errorf("claimed = %d after all commits", p.claimed)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// In-order means the earlier instance's slice occupies the log prefix.
	log := c.Replica(1).Log.Entries()
	wantPrefix := kv.Command("ooo-req-0", "SET", "ooo-k0", "v0")
	if log[0] != wantPrefix {
		t.Errorf("log[0] = %q, want the first submitted command", log[0])
	}
}

// A Byzantine member is active in two overlapping instances at once;
// consistency and liveness must survive.
func TestPipelineByzantineOverlap(t *testing.T) {
	for _, strat := range []adversary.Strategy{
		adversary.Equivocate{A: "evil-a", B: "evil-b"},
		adversary.Silent{},
	} {
		t.Run(strat.Name(), func(t *testing.T) {
			c := newPipelinedKVCluster(t, 24)
			c.SetBatchSize(2)
			if err := c.SetByzantine(3, strat); err != nil {
				t.Fatal(err)
			}
			submitN(c, 12, "byz")
			p := NewPipeline(c, 3)
			if err := p.Drain(60); err != nil {
				t.Fatal(err)
			}
			if p.Stats().MaxInFlight < 2 {
				t.Errorf("adversary never faced overlapping instances (MaxInFlight=%d)",
					p.Stats().MaxInFlight)
			}
			if err := c.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			store := c.Replica(0).SM.(*kv.Store)
			for i := 0; i < 12; i++ {
				if _, ok := store.Get(fmt.Sprintf("byz-k%d", i)); !ok {
					t.Fatalf("byz-k%d missing", i)
				}
			}
		})
	}
}

// Crash + Byzantine faults injected mid-pipeline (between drains) leave a
// consistent prefix, exactly as in the serial path.
func TestPipelineFaultsMidDrain(t *testing.T) {
	params := core.Params{
		N: 6, B: 1, F: 1, TD: 4,
		Flag:       model.FlagPhase,
		FLV:        flv.NewClass3(6, 4, 1, false),
		Selector:   selector.NewAll(6),
		UseHistory: true,
	}
	c, err := NewCluster(params, func(model.PID) StateMachine { return kv.NewStore() }, 25)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBatchSize(4)
	p := NewPipeline(c, 4)
	submitN(c, 16, "pre")
	if err := p.Drain(40); err != nil {
		t.Fatal(err)
	}
	if err := c.SetByzantine(5, adversary.Equivocate{A: "x", B: "y"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	submitN(c, 16, "post")
	if err := p.Drain(60); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// The acceptance criterion: at the same batch size, W=4 decides the same
// workload in at most half the simulated rounds of W=1 (i.e. ≥ 2x
// decided-commands/sec with rounds as the time axis).
func TestPipelineTickSpeedup(t *testing.T) {
	ticks := func(w int) int {
		t.Helper()
		c := newPipelinedKVCluster(t, 26)
		c.SetBatchSize(1)
		const k = 24
		submitN(c, k, "speed")
		p := NewPipeline(c, w)
		if err := p.Drain(2 * k); err != nil {
			t.Fatal(err)
		}
		if err := c.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
		if got := p.Stats().Committed; got != k {
			t.Fatalf("W=%d committed %d, want %d", w, got, k)
		}
		return p.Stats().Ticks
	}
	serial := ticks(1)
	pipelined := ticks(4)
	if pipelined*2 > serial {
		t.Errorf("W=4 took %d ticks vs %d at W=1; want ≥ 2x overlap", pipelined, serial)
	}
}
