package smr

import (
	"fmt"
	"sync"

	"genconsensus/internal/adversary"
	"genconsensus/internal/model"
	"genconsensus/internal/wire"
)

// Authenticated command envelopes. In authenticated mode every client
// command is a wire.CommandEnvelope — (client, seq, payload) under a
// client MAC — and provenance is enforced at three layers:
//
//   - Ingress: Replica.Submit admits only envelopes that verify and whose
//     (client, seq) has not already committed (replay at the door).
//   - Choice: CommandChooser weighs only verified, non-replayed commands,
//     so a Byzantine proposer's fabricated or replayed batches weigh zero
//     and can never dominate honest proposals.
//   - Apply: the state machine re-verifies and deduplicates on
//     (client, seq) — the last line of defence should a forged value ever
//     be locked past the chooser.
//
// AuthContext is the shared machinery: a verifier (typically an
// auth.ClientKeyring), a bounded cache of verification results (the same
// envelope bytes are judged at ingress, in every chooser evaluation and at
// apply, and MACs are bit-stable — caching turns repeat verification into
// a map hit), and the committed-(client, seq) replay window.

// CommandAuth verifies client command MACs. auth.ClientKeyring implements
// it; the indirection keeps smr free of a crypto dependency and lets tests
// substitute pathological verifiers.
type CommandAuth interface {
	VerifyCommand(client uint32, seq uint64, payload, mac []byte) bool
}

// commandAuthStr is an optional CommandAuth extension verifying string
// payload/MAC without copies (auth.ClientKeyring implements it). identify
// prefers it: on a cache miss the payload and MAC are substrings of the
// envelope value and need not be materialized as byte slices.
type commandAuthStr interface {
	VerifyCommandStr(client uint32, seq uint64, payload, mac string) bool
}

// verifyCacheLimit and verifyCacheBytes bound the AuthContext verification
// cache by entries AND by key bytes: keys are attacker-supplied envelope
// values (up to ~30 KiB each, and failed verdicts are cached too — the
// chooser re-judges Byzantine votes every evaluation), so an entry bound
// alone would let hostile distinct values pin entries × max-payload of
// memory. Eviction is arbitrary (map order): the cache is a pure
// accelerator and correctness never depends on a hit.
const (
	verifyCacheLimit = 8192
	verifyCacheBytes = 4 << 20
)

// cmdIdent is a cached verification verdict for one envelope value.
type cmdIdent struct {
	client uint32
	seq    uint64
	ok     bool
}

// batchIdents is a cached judgement of one batch value: the per-command
// identities if every entry verified and identities are pairwise distinct
// (ok), or a permanently-zero verdict otherwise. Replay status is NOT
// cached — it changes as commits advance the window — so weighing a cached
// batch re-checks only window.Seen per identity.
type batchIdents struct {
	ids []cmdIdent
	ok  bool
}

// AuthContext is one deployment's command-authentication state. It is safe
// for concurrent use: client handlers, pipelined chooser evaluations and
// the commit path all consult it.
type AuthContext struct {
	auth CommandAuth

	mu         sync.Mutex
	cache      map[model.Value]cmdIdent
	cacheBytes int // sum of cached key lengths
	batches    map[model.Value]batchIdents
	batchBytes int
	window     *ClientWindow
}

// NewAuthContext builds a context over the verifier. window bounds the
// per-client replay horizon (see NewClientWindow); windowSize <= 0 picks
// DefaultSeqWindow.
func NewAuthContext(auth CommandAuth, windowSize int) *AuthContext {
	return &AuthContext{
		auth:    auth,
		cache:   make(map[model.Value]cmdIdent),
		batches: make(map[model.Value]batchIdents),
		window:  NewClientWindow(windowSize),
	}
}

// Window exposes the replay window (tests, metrics).
func (a *AuthContext) Window() *ClientWindow { return a.window }

// identify decodes and verifies one value as a command envelope, caching
// the verdict by the full value bytes (a MAC verdict is a pure function of
// them).
func (a *AuthContext) identify(v model.Value) cmdIdent {
	a.mu.Lock()
	id, ok := a.cache[v]
	a.mu.Unlock()
	if ok {
		return id
	}
	client, seq, payload, mac, err := wire.DecodeCommandParts(string(v))
	if err == nil {
		verified := false
		if sa, ok := a.auth.(commandAuthStr); ok {
			verified = sa.VerifyCommandStr(client, seq, payload, mac)
		} else {
			verified = a.auth.VerifyCommand(client, seq, []byte(payload), []byte(mac))
		}
		if verified {
			id = cmdIdent{client: client, seq: seq, ok: true}
		}
	}
	a.mu.Lock()
	// A racing miss may have inserted v already; re-adding its bytes would
	// inflate the accounting forever (eviction subtracts once per delete).
	if _, raced := a.cache[v]; !raced {
		for len(a.cache) > 0 &&
			(len(a.cache) >= verifyCacheLimit || a.cacheBytes+len(v) > verifyCacheBytes) {
			for k := range a.cache {
				delete(a.cache, k)
				a.cacheBytes -= len(k)
				break
			}
		}
		a.cache[v] = id
		a.cacheBytes += len(v)
	}
	a.mu.Unlock()
	return id
}

// Preverify records a verification verdict obtained out of band: the
// caller certifies that v is the canonical encoding of a valid envelope
// for (client, seq). The session ingress path uses it — after checking a
// client's cheap session MAC and minting the envelope itself, re-verifying
// the full command HMAC it just computed would be pure waste. Preverify
// must never be fed unverified bytes.
func (a *AuthContext) Preverify(v model.Value, client uint32, seq uint64) {
	id := cmdIdent{client: client, seq: seq, ok: true}
	a.mu.Lock()
	if _, raced := a.cache[v]; !raced {
		for len(a.cache) > 0 &&
			(len(a.cache) >= verifyCacheLimit || a.cacheBytes+len(v) > verifyCacheBytes) {
			for k := range a.cache {
				delete(a.cache, k)
				a.cacheBytes -= len(k)
				break
			}
		}
		a.cache[v] = id
		a.cacheBytes += len(v)
	}
	a.mu.Unlock()
}

// identifyBatch judges a batch value once — decode, verify every entry,
// reject duplicate (client, seq) identities — and caches the result by the
// batch bytes. The chooser weighs the same batch value in every pipelined
// evaluation; without this cache each evaluation re-decodes the batch and
// re-hits the per-command cache N times.
func (a *AuthContext) identifyBatch(v model.Value) batchIdents {
	a.mu.Lock()
	bi, ok := a.batches[v]
	a.mu.Unlock()
	if ok {
		return bi
	}
	bi = a.judgeBatch(v)
	a.mu.Lock()
	if _, raced := a.batches[v]; !raced {
		for len(a.batches) > 0 &&
			(len(a.batches) >= verifyCacheLimit || a.batchBytes+len(v) > verifyCacheBytes) {
			for k := range a.batches {
				delete(a.batches, k)
				a.batchBytes -= len(k)
				break
			}
		}
		a.batches[v] = bi
		a.batchBytes += len(v)
	}
	a.mu.Unlock()
	return bi
}

func (a *AuthContext) judgeBatch(v model.Value) batchIdents {
	cmds, err := DecodeBatch(v)
	if err != nil {
		return batchIdents{}
	}
	ids := make([]cmdIdent, 0, len(cmds))
	for _, cmd := range cmds {
		id := a.identify(cmd)
		if !id.ok {
			return batchIdents{}
		}
		// Pairwise identity check without a per-evaluation map: batches hold
		// at most MaxBatchSize entries, so the quadratic scan stays tiny and
		// allocation-free.
		for _, prev := range ids {
			if prev.client == id.client && prev.seq == id.seq {
				return batchIdents{}
			}
		}
		ids = append(ids, id)
	}
	return batchIdents{ids: ids, ok: true}
}

// VerifyValue reports whether v is a well-formed envelope with a valid MAC.
func (a *AuthContext) VerifyValue(v model.Value) bool {
	return a.identify(v).ok
}

// VerifyCommand delegates to the underlying verifier, so an AuthContext
// can stand in wherever a bare CommandAuth (or kv.CommandVerifier) is
// expected — e.g. kv.Store.EnableClientAuth, where passing the context
// instead of the keyring lets the apply path share the verdict cache
// through kv.ValueVerifier.
func (a *AuthContext) VerifyCommand(client uint32, seq uint64, payload, mac []byte) bool {
	return a.auth.VerifyCommand(client, seq, payload, mac)
}

// Replayed reports whether v's (client, seq) has already committed. Values
// that fail verification report false — they are rejected as fabricated,
// not as replays.
func (a *AuthContext) Replayed(v model.Value) bool {
	id := a.identify(v)
	return id.ok && a.window.Seen(id.client, id.seq)
}

// RecordCommitted marks a committed command's (client, seq) in the replay
// window. Non-envelope values (NoOp, legacy commands) are ignored.
func (a *AuthContext) RecordCommitted(v model.Value) {
	if id := a.identify(v); id.ok {
		a.window.Record(id.client, id.seq)
	}
}

// authWeight is the authenticated counterpart of BatchWeight: the number of
// verified, non-replayed commands v would commit. One fabricated entry
// (bad MAC, truncated envelope, unknown client, stripped signature) zeroes
// the whole batch, as does one (client, seq) identity appearing twice under
// different payload bytes (an equivocating client's double-signed seq) —
// an honest proposer can never build either, since Submit verifies at
// ingress and admits each identity once, so such a batch is Byzantine by
// construction. Replayed entries merely don't count: honest replicas do
// transiently re-propose committed commands when queues diverge (see
// CommitQueue), and zeroing their batches for it would starve the queue.
func authWeight(v model.Value, ax *AuthContext) int {
	if v == model.NoValue || v == NoOp {
		return 0
	}
	if IsBatch(v) {
		bi := ax.identifyBatch(v)
		if !bi.ok {
			return 0
		}
		w := 0
		for _, id := range bi.ids {
			if !ax.window.Seen(id.client, id.seq) {
				w++
			}
		}
		return w
	}
	id := ax.identify(v)
	if !id.ok || ax.window.Seen(id.client, id.seq) {
		return 0
	}
	return 1
}

// DefaultSeqWindow is the per-client replay horizon: how many sequence
// numbers below a client's highest committed seq are tracked exactly.
// Anything at or below max-window is assumed committed (replay). Aliased
// from wire so the replay filter and the state machine's dedup window
// (kv.DefaultSeqWindow) share one source of truth.
const DefaultSeqWindow = wire.DefaultSeqWindow

// ClientWindow tracks committed (client, seq) pairs with bounded memory:
// per client, a wire.SeqTracker of the committed seqs within the window
// below the highest one. Out-of-order commits inside the window are
// handled exactly; seqs that fall off the bottom are assumed committed.
// Memory is O(clients × window), and the client space is bounded by the
// keyring (unknown clients never verify, so never reach Record).
type ClientWindow struct {
	mu      sync.Mutex
	window  uint64
	clients map[uint32]*wire.SeqTracker[struct{}]
}

// NewClientWindow builds a window with the given horizon (<= 0 picks
// DefaultSeqWindow).
func NewClientWindow(window int) *ClientWindow {
	if window <= 0 {
		window = DefaultSeqWindow
	}
	return &ClientWindow{
		window:  uint64(window),
		clients: make(map[uint32]*wire.SeqTracker[struct{}]),
	}
}

// Seen reports whether (client, seq) has committed (exactly, within the
// window; assumed, below it).
func (w *ClientWindow) Seen(client uint32, seq uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.clients[client]
	if !ok {
		return false
	}
	if st.BelowHorizon(seq, w.window) {
		return true
	}
	_, committed := st.Entries[seq]
	return committed
}

// Record marks (client, seq) committed, advancing the client's horizon and
// evicting seqs that fall below it.
func (w *ClientWindow) Record(client uint32, seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.clients[client]
	if !ok {
		st = wire.NewSeqTracker[struct{}]()
		w.clients[client] = st
	}
	st.Record(seq, struct{}{}, w.window)
}

// TrackedSeqs reports how many seqs are tracked exactly for the client
// (bounded-memory tests).
func (w *ClientWindow) TrackedSeqs(client uint32) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.clients[client]
	if !ok {
		return 0
	}
	return len(st.Entries)
}

// --- Byzantine command-injection strategies ---------------------------------
//
// These live in smr rather than internal/adversary because forging
// convincing batches needs the batch codec (adversary cannot import smr —
// smr imports it). Each wraps the generic adversary.Fabricate shell, which
// supplies honest-looking round metadata around an attacker-chosen vote.

// FabricateCommands is a Byzantine proposer pushing batches of commands no
// client ever issued: well-formed envelopes under invented clients with
// garbage MACs. Structure-only validation accepts them; provenance
// verification must not.
func FabricateCommands(start uint64) adversary.Strategy {
	counter := start
	return adversary.Fabricate{
		Label: "fabricate-commands",
		Next: func(ctx *adversary.Ctx, r model.Round) model.Value {
			cmds := make([]model.Value, 0, 4)
			for i := 0; i < 4; i++ {
				counter++
				mac := make([]byte, wire.CommandMACSize)
				ctx.Rng.Read(mac)
				enc, err := wire.EncodeCommand(wire.CommandEnvelope{
					Client:  uint32(ctx.Rng.Intn(1 << 16)),
					Seq:     counter,
					Payload: fmt.Sprintf("fab-%d|SET|forged-key-%d|forged-%d", counter, counter, counter),
					MAC:     mac,
				})
				if err != nil {
					continue
				}
				cmds = append(cmds, model.Value(enc))
			}
			batch, err := EncodeBatch(cmds)
			if err != nil {
				return cmds[0]
			}
			return batch
		},
	}
}

// ReplayCommands is a Byzantine proposer re-proposing genuinely signed
// commands it captured earlier (the pool — e.g. the previously committed
// log). The MACs verify; only the replay window can reject them.
func ReplayCommands(pool []model.Value) adversary.Strategy {
	captured := append([]model.Value(nil), pool...)
	return adversary.Fabricate{
		Label: "replay-commands",
		Next: func(ctx *adversary.Ctx, r model.Round) model.Value {
			if len(captured) == 0 {
				return model.Value("replay-empty")
			}
			k := ctx.Rng.Intn(len(captured)) + 1
			if k > MaxBatchSize {
				k = MaxBatchSize
			}
			start := ctx.Rng.Intn(len(captured))
			cmds := make([]model.Value, 0, k)
			seen := make(map[model.Value]bool, k)
			for i := 0; i < k; i++ {
				cmd := captured[(start+i)%len(captured)]
				if seen[cmd] {
					continue
				}
				seen[cmd] = true
				cmds = append(cmds, cmd)
			}
			batch, err := EncodeBatch(cmds)
			if err != nil {
				return cmds[0]
			}
			return batch
		},
	}
}

// StripSignatures is a Byzantine proposer submitting the raw application
// payloads of real commands with their envelopes removed — the
// legacy-downgrade attack. In authenticated mode a bare payload has no
// provenance and must weigh zero.
func StripSignatures(payloads []model.Value) adversary.Strategy {
	stripped := make([]model.Value, 0, len(payloads))
	for _, p := range payloads {
		if env, err := wire.DecodeCommand(string(p)); err == nil {
			stripped = append(stripped, model.Value(env.Payload))
		} else {
			stripped = append(stripped, p)
		}
	}
	return adversary.Fabricate{
		Label: "strip-signatures",
		Next: func(ctx *adversary.Ctx, r model.Round) model.Value {
			if len(stripped) == 0 {
				return model.Value("stripped-empty")
			}
			k := ctx.Rng.Intn(8) + 1
			start := ctx.Rng.Intn(len(stripped))
			cmds := make([]model.Value, 0, k)
			seen := make(map[model.Value]bool, k)
			for i := 0; i < k; i++ {
				cmd := stripped[(start+i)%len(stripped)]
				if seen[cmd] || cmd == model.NoValue || cmd == NoOp || IsBatch(cmd) {
					continue
				}
				seen[cmd] = true
				cmds = append(cmds, cmd)
			}
			if len(cmds) == 0 {
				return model.Value("stripped-empty")
			}
			batch, err := EncodeBatch(cmds)
			if err != nil {
				return cmds[0]
			}
			return batch
		},
	}
}
