package smr

import (
	"fmt"
	"testing"

	"genconsensus/internal/kv"
	"genconsensus/internal/model"
)

func TestAdaptiveBatchSizing(t *testing.T) {
	ctrl := NewAdaptiveBatch(AdaptiveConfig{MaxBatch: 64, MaxDepth: 4, BaseLatency: 3})
	// Light load: singleton batches, no pipelining.
	if got := ctrl.BatchSize(1); got != 1 {
		t.Errorf("BatchSize(1) = %d, want 1", got)
	}
	if got := ctrl.Depth(1); got != 1 {
		t.Errorf("Depth(1) = %d, want 1", got)
	}
	if got := ctrl.Depth(0); got != 1 {
		t.Errorf("Depth(0) = %d, want 1", got)
	}
	// Moderate backlog: sized to drain within the depth budget.
	if got := ctrl.BatchSize(40); got != 10 {
		t.Errorf("BatchSize(40) = %d, want 10 (40/depth 4)", got)
	}
	if got := ctrl.Depth(40); got != 4 {
		t.Errorf("Depth(40) = %d, want the full window", got)
	}
	// Burst: saturates at MaxBatch.
	if got := ctrl.BatchSize(10000); got != 64 {
		t.Errorf("BatchSize(10000) = %d, want the 64 cap", got)
	}
}

func TestAdaptiveLatencyInflation(t *testing.T) {
	ctrl := NewAdaptiveBatch(AdaptiveConfig{MaxBatch: 128, MaxDepth: 4, Alpha: 1, BaseLatency: 3})
	base := ctrl.BatchSize(40)
	// Observed latency at baseline: no inflation.
	ctrl.Observe(3)
	if got := ctrl.BatchSize(40); got != base {
		t.Errorf("baseline latency inflated batches: %d -> %d", base, got)
	}
	// 3x slower instances: batches grow ~3x to amortize.
	ctrl.Observe(9)
	if got := ctrl.BatchSize(40); got != 3*base {
		t.Errorf("BatchSize(40) at 3x latency = %d, want %d", got, 3*base)
	}
	// Inflation is clamped (4x) and capped at MaxBatch.
	ctrl.Observe(3000)
	if got := ctrl.BatchSize(40); got != 4*base {
		t.Errorf("BatchSize(40) clamped = %d, want %d", got, 4*base)
	}
	if got := ctrl.BatchSize(1000); got != 128 {
		t.Errorf("BatchSize(1000) = %d, want the MaxBatch cap", got)
	}
}

func TestAdaptiveEWMA(t *testing.T) {
	ctrl := NewAdaptiveBatch(AdaptiveConfig{Alpha: 0.5})
	if got := ctrl.Latency(); got != 0 {
		t.Errorf("fresh EWMA = %v", got)
	}
	ctrl.Observe(10)
	if got := ctrl.Latency(); got != 10 {
		t.Errorf("first observation = %v, want 10", got)
	}
	ctrl.Observe(20)
	if got := ctrl.Latency(); got != 15 {
		t.Errorf("EWMA = %v, want 15", got)
	}
	// Garbage observations are ignored.
	ctrl.Observe(-1)
	ctrl.Observe(0)
	if got := ctrl.Latency(); got != 15 {
		t.Errorf("EWMA after garbage = %v, want 15", got)
	}
}

func TestAdaptiveConfigDefaults(t *testing.T) {
	ctrl := NewAdaptiveBatch(AdaptiveConfig{})
	if ctrl.cfg.MaxBatch != MaxBatchSize || ctrl.cfg.MaxDepth != 4 ||
		ctrl.cfg.Alpha != 0.25 || ctrl.cfg.BaseLatency != 3 {
		t.Errorf("defaults not applied: %+v", ctrl.cfg)
	}
	if ctrl := NewAdaptiveBatch(AdaptiveConfig{MaxBatch: MaxBatchSize + 1}); ctrl.cfg.MaxBatch != MaxBatchSize {
		t.Errorf("MaxBatch not clamped: %d", ctrl.cfg.MaxBatch)
	}
}

// An adaptive cluster stays shallow and singleton under light load, and
// widens to the full window under a burst — while remaining consistent.
func TestPipelineAdaptive(t *testing.T) {
	c, err := NewCluster(pbftParams(4, 1), func(model.PID) StateMachine {
		return kv.NewStore()
	}, 31)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewAdaptiveBatch(AdaptiveConfig{MaxBatch: 16, MaxDepth: 4})
	c.SetAdaptive(ctrl)

	// A lone command: one unpipelined instance carrying one command.
	c.Submit(0, kv.Command("light-req", "SET", "light", "v"))
	p := NewPipeline(c, 4)
	if err := p.Drain(10); err != nil {
		t.Fatal(err)
	}
	light := p.Stats()
	if light.MaxInFlight != 1 {
		t.Errorf("light load MaxInFlight = %d, want 1", light.MaxInFlight)
	}
	if light.Instances != 1 || light.Committed != 1 {
		t.Errorf("light load ran %d instances / %d commands, want 1/1",
			light.Instances, light.Committed)
	}

	// A burst: the window fills and batches grow.
	for i := 0; i < 64; i++ {
		c.Submit(0, kv.Command(fmt.Sprintf("burst-%d", i), "SET", fmt.Sprintf("bk%d", i), "v"))
	}
	if err := p.Drain(80); err != nil {
		t.Fatal(err)
	}
	burst := p.Stats()
	if burst.MaxInFlight != 4 {
		t.Errorf("burst MaxInFlight = %d, want the full window", burst.MaxInFlight)
	}
	if ctrl.Latency() <= 0 {
		t.Error("controller observed no instance latencies")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if c.PendingTotal() != 0 {
		t.Errorf("pending = %d", c.PendingTotal())
	}
	// SetAdaptive(nil) restores static sizing.
	c.SetAdaptive(nil)
	if c.controller() != nil {
		t.Error("controller not cleared")
	}
}
