package smr

import (
	"fmt"
	"sort"

	"genconsensus/internal/model"
	"genconsensus/internal/sim"
)

// Pipeline runs up to W consensus instances of a Cluster concurrently,
// PBFT-style: instance k+1 executes its selection rounds while instance k
// is still deciding, so the per-instance round latency is paid once per
// window instead of once per instance. Each tick steps every in-flight
// engine one simulated round (true overlap in simulated time — W instances
// finish in roughly the rounds of one, not W times that).
//
// Scheduling invariants:
//
//   - Disjoint proposals: in-flight instance number i proposes the queue
//     slice starting after everything claimed by instances started before
//     it (Replica.ProposalAt), so a window of W instances drains W batches
//     instead of deciding the same head batch W times.
//   - In-order commit: decisions may arrive out of instance order (a later
//     instance may finish first); they are buffered and applied to the
//     replicas strictly in instance order, so every log is the same
//     sequence a serial execution would produce.
//   - Adaptive window: with an AdaptiveBatch controller installed on the
//     cluster, the effective depth shrinks to what the backlog justifies —
//     a single queued command runs one unpipelined instance.
//
// A Pipeline is driven by one scheduler goroutine (Drain); Submit and the
// fault injectors may race with it freely. Faults injected mid-drain take
// effect for instances started afterwards, exactly as with RunInstance.
type Pipeline struct {
	c     *Cluster
	depth int

	inflight map[uint64]*inflightInstance
	order    []uint64 // started, not yet committed, ascending
	decided  map[uint64]pendingDecision
	claims   map[uint64]int // per-instance queue claims, held start → commit
	claimed  int            // sum of claims: queue positions owned by uncommitted instances

	stats PipelineStats
}

type inflightInstance struct {
	engine    *sim.Engine
	claim     int
	startTick int
}

type pendingDecision struct {
	value  model.Value
	rounds int
}

// PipelineStats aggregates one pipeline's execution for benchmarks and
// tests. Ticks is the simulated-time axis: one tick is one network round
// for every in-flight instance, so commands/tick is the throughput a real
// deployment would see with round latency dominating.
type PipelineStats struct {
	// Ticks counts simulated rounds during which at least one instance
	// was in flight.
	Ticks int
	// Instances counts decided instances.
	Instances int
	// Committed counts commands applied to the log (NoOp decisions add 0).
	Committed int
	// MaxInFlight is the largest window actually reached.
	MaxInFlight int
	// OutOfOrder counts decisions that arrived before an earlier
	// instance's decision and had to be buffered.
	OutOfOrder int
}

// NewPipeline builds a scheduler of the given depth over the cluster.
// Depth 1 reproduces the serial RunInstance loop. The pipeline and the
// cluster's own RunInstance/Drain must not run concurrently.
func NewPipeline(c *Cluster, depth int) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	return &Pipeline{
		c:        c,
		depth:    depth,
		inflight: make(map[uint64]*inflightInstance),
		decided:  make(map[uint64]pendingDecision),
		claims:   make(map[uint64]int),
	}
}

// Stats returns a copy of the accumulated statistics.
func (p *Pipeline) Stats() PipelineStats { return p.stats }

// windowCap is the depth the given backlog justifies: the configured
// depth, shrunk by the adaptive controller under light load.
func (p *Pipeline) windowCap(backlog int) int {
	if ctrl := p.c.controller(); ctrl != nil {
		if d := ctrl.Depth(backlog); d < p.depth {
			return d
		}
	}
	return p.depth
}

// start launches one instance over the queue slice after every current
// claim.
func (p *Pipeline) start() error {
	engine, instance, claim, err := p.c.startEngine(p.claimed, 0)
	if err != nil {
		return err
	}
	p.inflight[instance] = &inflightInstance{engine: engine, claim: claim, startTick: p.stats.Ticks}
	p.order = append(p.order, instance)
	p.claims[instance] = claim
	p.claimed += claim
	if len(p.inflight) > p.stats.MaxInFlight {
		p.stats.MaxInFlight = len(p.inflight)
	}
	return nil
}

// inflightIDs returns the in-flight instance numbers in ascending order,
// for deterministic round-robin stepping.
func (p *Pipeline) inflightIDs() []uint64 {
	ids := make([]uint64, 0, len(p.inflight))
	for id := range p.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// tick advances every in-flight engine one simulated round.
func (p *Pipeline) tick() {
	for _, id := range p.inflightIDs() {
		p.inflight[id].engine.Step()
	}
	p.stats.Ticks++
}

// harvest collects finished engines into the out-of-order decision buffer.
func (p *Pipeline) harvest() error {
	for _, id := range p.inflightIDs() {
		inst := p.inflight[id]
		if !inst.engine.Done() {
			continue
		}
		res := inst.engine.Result()
		decided, err := decisionOf(id, res)
		if err != nil {
			return err
		}
		delete(p.inflight, id)
		p.decided[id] = pendingDecision{value: decided, rounds: p.stats.Ticks - inst.startTick}
		p.stats.Instances++
		// Out of order means an earlier-started instance is still running:
		// this decision must wait in the buffer for it.
		for _, earlier := range p.order {
			if earlier >= id {
				break
			}
			if _, running := p.inflight[earlier]; running {
				p.stats.OutOfOrder++
				break
			}
		}
	}
	return nil
}

// commitReady applies buffered decisions strictly in instance order: the
// head of the started order commits only once its decision is in, holding
// back any later instances that finished earlier.
func (p *Pipeline) commitReady() {
	for len(p.order) > 0 {
		head := p.order[0]
		d, ok := p.decided[head]
		if !ok {
			return
		}
		delete(p.decided, head)
		p.order = p.order[1:]
		p.c.commitDecision(head, d.value, d.rounds)
		p.stats.Committed += BatchWeight(d.value)
		// The claim is released only now: until the commit removed its
		// commands from the pending queues, the slice was still owned.
		// Releasing the claim as taken (not "as many commands as the
		// decided batch actually removed") is the liveness-first policy
		// documented on CommitQueue: the offset provably returns to zero
		// when the window drains, at the price of transient duplicate
		// proposals when a decided batch differs from the local slice —
		// duplicates are safe (state machines dedup by request id).
		p.claimed -= p.claims[head]
		delete(p.claims, head)
		if p.claimed < 0 {
			p.claimed = 0
		}
	}
}

// Drain starts, overlaps and commits instances until every queued command
// is decided, bounded by maxInstances started. It is the pipelined
// counterpart of Cluster.Drain.
func (p *Pipeline) Drain(maxInstances int) error {
	started := 0
	for {
		// One backlog snapshot per scheduling pass: starting an instance
		// claims queue positions but consumes nothing, so the snapshot
		// stays valid across the inner loop (concurrent Submits only add).
		backlog := p.c.maxPendingLive()
		window := p.windowCap(backlog)
		for len(p.inflight) < window && started < maxInstances {
			if backlog-p.claimed <= 0 {
				break
			}
			if err := p.start(); err != nil {
				return err
			}
			started++
		}
		if len(p.inflight) == 0 {
			if p.c.PendingTotal() == 0 {
				return nil
			}
			if started >= maxInstances {
				return fmt.Errorf("smr: %d commands still pending after %d pipelined instances",
					p.c.PendingTotal(), started)
			}
			continue
		}
		p.tick()
		if err := p.harvest(); err != nil {
			return err
		}
		p.commitReady()
	}
}
