package smr

import "genconsensus/internal/obs"

// Metrics is a replica's instrument set. The zero value (all-nil
// instruments) is the disabled state — every update is a no-op branch —
// so the sim and legacy callers pay nothing for the instrumentation.
// Install with SetMetrics before instances run.
type Metrics struct {
	// Proposals counts non-NoOp proposals built; BatchSize observes the
	// commands each one carried.
	Proposals *obs.Counter
	BatchSize *obs.Histogram
	// Decisions counts committed instances; Commits counts unique non-NoOp
	// commands applied (a command a pipelined peer legitimately re-decided
	// is counted once, matching the state machine's at-most-once apply).
	Decisions *obs.Counter
	Commits   *obs.Counter
	// ReplayRejects counts ingress rejections of already-committed
	// (client, seq) identities; EquivEvictions counts submissions dropped
	// because a different payload already holds the queued identity (an
	// equivocating client double-signing one sequence number).
	ReplayRejects  *obs.Counter
	EquivEvictions *obs.Counter
}

// MetricsFor resolves the replica instrument set from a registry under the
// given name prefix (e.g. "g0."). A nil registry yields the disabled set.
func MetricsFor(reg *obs.Registry, prefix string) Metrics {
	return Metrics{
		Proposals:      reg.Counter(prefix + "smr.proposals"),
		BatchSize:      reg.Histogram(prefix + "smr.batch_size"),
		Decisions:      reg.Counter(prefix + "smr.decisions"),
		Commits:        reg.Counter(prefix + "smr.commits"),
		ReplayRejects:  reg.Counter(prefix + "smr.replay_rejects"),
		EquivEvictions: reg.Counter(prefix + "smr.equivocation_evictions"),
	}
}

// SetMetrics installs the replica's instrument set. Call before instances
// run; the zero value disables instrumentation.
func (r *Replica) SetMetrics(m Metrics) {
	r.mu.Lock()
	r.metrics = m
	r.mu.Unlock()
}

// SetMetrics wires every replica in the simulated cluster to the registry
// (one shared instrument set: the sim commits serially, and the aggregate
// is what the obs benchmark compares on/off).
func (c *Cluster) SetMetrics(reg *obs.Registry) {
	m := MetricsFor(reg, "")
	for _, r := range c.replicas {
		r.SetMetrics(m)
	}
}
