package smr

import (
	"fmt"
	"testing"

	"genconsensus/internal/kv"
	"genconsensus/internal/model"
)

func TestDigestVoteCodec(t *testing.T) {
	batch, err := EncodeBatch([]model.Value{"SET a 1", "SET b 2"})
	if err != nil {
		t.Fatal(err)
	}
	sum := DigestOf(batch)
	vote := DigestVote(sum)
	if !IsDigestVote(vote) {
		t.Fatal("IsDigestVote = false")
	}
	if IsBatch(vote) || IsDigestVote(batch) {
		t.Fatal("value kinds are ambiguous")
	}
	got, ok := DigestKey(vote)
	if !ok || got != sum {
		t.Fatal("DigestKey round trip failed")
	}
	// Strictness: magic-prefixed junk of the wrong length is not a vote.
	if _, ok := DigestKey(vote + "x"); ok {
		t.Fatal("oversized digest vote accepted")
	}
	if _, ok := DigestKey(vote[:len(vote)-1]); ok {
		t.Fatal("truncated digest vote accepted")
	}
	if Admissible(vote) {
		t.Fatal("digest vote admissible as a client command")
	}
}

func TestChooserResolveBeforeWeigh(t *testing.T) {
	table := NewDigestTable()
	big, err := EncodeBatch([]model.Value{"SET a 1", "SET b 2", "SET c 3"})
	if err != nil {
		t.Fatal(err)
	}
	small, err := EncodeBatch([]model.Value{"SET d 4"})
	if err != nil {
		t.Fatal(err)
	}
	resolvable := table.Put(big)
	hostile := DigestVote(DigestOf("never published"))

	chooser := CommandChooser{Resolve: table}
	// A resolvable digest weighs its payload: the 3-command batch behind
	// the digest beats the 1-command batch voted in the clear.
	mu := model.Received{
		0: {Vote: resolvable},
		1: {Vote: small},
	}
	if v, ok := chooser.Choose(mu); !ok || v != resolvable {
		t.Fatalf("Choose = %q, want the resolvable digest vote", v)
	}
	// An unresolvable digest weighs zero: it loses to any real command.
	mu = model.Received{
		0: {Vote: hostile},
		1: {Vote: small},
	}
	if v, ok := chooser.Choose(mu); !ok || v != small {
		t.Fatalf("Choose = %q, want the small batch", v)
	}
	// Without a resolver every digest weighs zero.
	bare := CommandChooser{}
	if v, _ := bare.Choose(model.Received{0: {Vote: resolvable}, 1: {Vote: NoOp}}); v != NoOp {
		t.Fatalf("resolver-less chooser picked %q, want NoOp", v)
	}
	// A payload that is itself a digest vote never weighs (no recursion).
	nested := table.Put(model.Value(hostile))
	if v, _ := chooser.Choose(model.Received{0: {Vote: nested}, 1: {Vote: NoOp}}); v != NoOp {
		t.Fatalf("nested digest weighed: chose %q", v)
	}
}

// TestClusterDigestVotes runs a sim cluster in digest mode: decisions
// travel as digests, logs only ever store resolved batches, and the state
// converges to the submitted writes.
func TestClusterDigestVotes(t *testing.T) {
	cluster, err := NewCluster(class3Params(6, 4, 1), func(model.PID) StateMachine { return kv.NewStore() }, 42)
	if err != nil {
		t.Fatal(err)
	}
	cluster.SetBatchSize(8)
	table := cluster.EnableDigestVotes()
	for i := 0; i < 40; i++ {
		cluster.Submit(0, model.Value(fmt.Sprintf("dg-cmd-%d", i)))
	}
	if err := cluster.Drain(60); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if table.Len() == 0 {
		t.Fatal("no payloads published: digest mode did not engage")
	}
	for _, entry := range cluster.Replica(0).Log.Entries() {
		if IsDigestVote(entry) {
			t.Fatalf("unresolved digest reached the log: %q", entry)
		}
	}
}

// TestClusterHostileDigests keeps a Byzantine member voting unresolvable
// digests: no junk may commit and the pipeline must keep deciding.
func TestClusterHostileDigests(t *testing.T) {
	cluster, err := NewCluster(class3Params(6, 4, 1), func(model.PID) StateMachine { return kv.NewStore() }, 7)
	if err != nil {
		t.Fatal(err)
	}
	cluster.SetBatchSize(4)
	cluster.EnableDigestVotes()
	if err := cluster.SetByzantine(5, HostileDigests()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		cluster.Submit(0, model.Value(fmt.Sprintf("hd-cmd-%d", i)))
	}
	if err := cluster.Drain(80); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for _, entry := range cluster.Replica(0).Log.Entries() {
		if IsDigestVote(entry) {
			t.Fatalf("hostile digest committed: %q", entry)
		}
	}
}
