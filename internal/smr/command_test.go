package smr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"genconsensus/internal/adversary"
	"genconsensus/internal/auth"
	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
	"genconsensus/internal/wire"
)

const testClientSeed = 77

func testAuthContext(t *testing.T) (*AuthContext, *auth.ClientSigner) {
	t.Helper()
	kr := auth.NewClientKeyring(testClientSeed, 8)
	return NewAuthContext(kr, 16), auth.NewClientSigner(testClientSeed, 1)
}

func signedKV(t *testing.T, signer *auth.ClientSigner, seq uint64, key, value string) model.Value {
	t.Helper()
	cmd, err := kv.SignedCommand(signer, seq, "SET", key, value)
	if err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestForgeryCorpus is the table-driven forgery corpus of the issue: every
// way a Byzantine proposer can damage an envelope — bad MAC, truncated
// encoding, replayed sequence number, wrong client id, stripped signature —
// must be rejected by verification, weigh zero with the chooser, and bounce
// off Submit; the genuine envelope must pass all three.
func TestForgeryCorpus(t *testing.T) {
	ax, signer := testAuthContext(t)
	genuine := signedKV(t, signer, 5, "color", "green")
	env, err := wire.DecodeCommand(string(genuine))
	if err != nil {
		t.Fatal(err)
	}

	badMAC := env
	badMAC.MAC = append([]byte(nil), env.MAC...)
	badMAC.MAC[0] ^= 0x40
	badMACCmd, err := wire.EncodeCommand(badMAC)
	if err != nil {
		t.Fatal(err)
	}

	// Same fields signed by the wrong client's key: claiming client 2's id
	// with client 1's MAC (or vice versa) must not verify.
	wrongClient := env
	wrongClient.Client = 2
	wrongClientCmd, err := wire.EncodeCommand(wrongClient)
	if err != nil {
		t.Fatal(err)
	}

	replayed := signedKV(t, signer, 3, "shape", "circle")
	ax.RecordCommitted(replayed) // committed once already

	cases := []struct {
		name       string
		cmd        model.Value
		wantVerify bool
		wantWeight int
	}{
		{"genuine", genuine, true, 1},
		{"bad MAC", model.Value(badMACCmd), false, 0},
		{"truncated envelope", genuine[:len(genuine)-7], false, 0},
		{"replayed seq", replayed, true, 0},
		{"wrong client id", model.Value(wrongClientCmd), false, 0},
		{"stripped signature", model.Value(env.Payload), false, 0},
		{"legacy raw command", kv.Command("req-1", "SET", "k", "v"), false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ax.VerifyValue(tc.cmd); got != tc.wantVerify {
				t.Errorf("VerifyValue = %v, want %v", got, tc.wantVerify)
			}
			if got := authWeight(tc.cmd, ax); got != tc.wantWeight {
				t.Errorf("authWeight = %d, want %d", got, tc.wantWeight)
			}
			// Ingress: an authenticated replica queues only the genuine,
			// fresh command.
			r := NewReplica(0, kv.NewStore())
			r.SetCommandAuth(ax)
			r.Submit(tc.cmd)
			wantQueued := 0
			if tc.wantWeight > 0 {
				wantQueued = 1
			}
			if got := r.PendingLen(); got != wantQueued {
				t.Errorf("Submit queued %d, want %d", got, wantQueued)
			}
			// A batch carrying the corpus entry: fabricated entries poison
			// the whole batch; a replayed entry merely doesn't count.
			filler := signedKV(t, signer, 100, "filler", "x")
			batch, err := EncodeBatch([]model.Value{filler, tc.cmd})
			if err != nil {
				t.Fatal(err)
			}
			wantBatch := 1 + tc.wantWeight
			if !tc.wantVerify {
				wantBatch = 0
			}
			if got := authWeight(batch, ax); got != wantBatch {
				t.Errorf("batch authWeight = %d, want %d", got, wantBatch)
			}
		})
	}
}

// TestAuthChooserExcludesForged: with provenance checking installed, a
// Byzantine vote carrying a big fabricated batch loses to a small honest
// one, and an all-replayed batch cannot outweigh NoOp-free honest work.
func TestAuthChooserExcludesForged(t *testing.T) {
	ax, signer := testAuthContext(t)
	honest := signedKV(t, signer, 1, "a", "1")
	honestBatch, err := EncodeBatch([]model.Value{honest})
	if err != nil {
		t.Fatal(err)
	}

	forged := make([]model.Value, 0, 8)
	for i := 0; i < 8; i++ {
		mac := make([]byte, wire.CommandMACSize)
		enc, err := wire.EncodeCommand(wire.CommandEnvelope{
			Client: 3, Seq: uint64(100 + i),
			Payload: fmt.Sprintf("f-%d|SET|fk-%d|fv", i, i),
			MAC:     mac,
		})
		if err != nil {
			t.Fatal(err)
		}
		forged = append(forged, model.Value(enc))
	}
	forgedBatch, err := EncodeBatch(forged)
	if err != nil {
		t.Fatal(err)
	}

	chooser := CommandChooser{Auth: ax}
	mu := model.Received{
		0: {Kind: model.SelectionRound, Vote: honestBatch},
		1: {Kind: model.SelectionRound, Vote: forgedBatch},
		2: {Kind: model.SelectionRound, Vote: NoOp},
	}
	v, ok := chooser.Choose(mu)
	if !ok || v != honestBatch {
		t.Fatalf("chose %q, want the honest batch", v)
	}

	// Legacy chooser (no Auth) would have preferred the bigger batch —
	// the regression the authenticated rule fixes.
	if v, _ := (CommandChooser{}).Choose(mu); v != forgedBatch {
		t.Fatalf("legacy chooser chose %q, want the forged batch (structure-only)", v)
	}

	// Once every honest command is committed, a replayed batch weighs zero
	// and the chooser falls back to an explicit NoOp.
	ax.RecordCommitted(honest)
	replayMu := model.Received{
		0: {Kind: model.SelectionRound, Vote: NoOp},
		1: {Kind: model.SelectionRound, Vote: honestBatch}, // now a pure replay
	}
	v, ok = chooser.Choose(replayMu)
	if !ok || v != NoOp {
		t.Fatalf("chose %q, want NoOp over a replayed batch", v)
	}

	// With no NoOp vote in the vector at all — every vote zero-weight and
	// a Byzantine value crafted to be the lexicographic minimum — the
	// authenticated chooser must synthesize NoOp rather than fall back to
	// the minimum rule and decide a fabricated value.
	minimal := model.Value("\x00forged-minimal")
	noNoOpMu := model.Received{
		0: {Kind: model.SelectionRound, Vote: honestBatch}, // pure replay, weight 0
		1: {Kind: model.SelectionRound, Vote: minimal},
	}
	v, ok = chooser.Choose(noNoOpMu)
	if !ok || v != NoOp {
		t.Fatalf("chose %q, want synthesized NoOp (never an unverified minimum)", v)
	}
	// The legacy chooser keeps the paper's minimum rule even when every
	// vote is zero-weight (an invalid batch weighs 0 but is still the
	// minimum of the vector).
	junkBatch := model.Value(batchMagic + "junk")
	if v, _ := (CommandChooser{}).Choose(model.Received{1: {Kind: model.SelectionRound, Vote: junkBatch}}); v != junkBatch {
		t.Fatalf("legacy fallback chose %q, want the minimum vote", v)
	}
}

// TestClientWindowEviction: the per-client window tracks exactly the
// horizon's worth of sequence numbers, treats everything below it as
// committed, and handles out-of-order records inside it.
func TestClientWindowEviction(t *testing.T) {
	w := NewClientWindow(8)
	for seq := uint64(1); seq <= 100; seq++ {
		w.Record(7, seq)
	}
	if n := w.TrackedSeqs(7); n > 8+1 {
		t.Fatalf("window tracks %d seqs, want <= 9", n)
	}
	if !w.Seen(7, 100) || !w.Seen(7, 93) {
		t.Error("in-window committed seqs must report seen")
	}
	if !w.Seen(7, 1) || !w.Seen(7, 50) {
		t.Error("below-horizon seqs must be assumed committed")
	}
	if w.Seen(7, 101) {
		t.Error("future seq reported seen")
	}
	if w.Seen(8, 5) {
		t.Error("foreign client reported seen")
	}
	// Out-of-order inside the window.
	w2 := NewClientWindow(8)
	w2.Record(1, 10)
	if w2.Seen(1, 7) {
		t.Error("unrecorded in-window seq reported seen")
	}
	w2.Record(1, 7)
	if !w2.Seen(1, 7) || !w2.Seen(1, 10) {
		t.Error("out-of-order records lost")
	}
}

// TestEquivocatingClient: a provisioned but hostile client signs the same
// sequence number over two different payloads. Both MACs verify, but the
// identity (client, seq) must be admitted at most once: ingress queues only
// the first arrival, a Byzantine batch carrying both weighs zero, and a
// replica left holding the losing payload evicts it at commit instead of
// re-proposing a zero-weight zombie forever.
func TestEquivocatingClient(t *testing.T) {
	ax, signer := testAuthContext(t)
	p1 := signedKV(t, signer, 9, "eq-key", "first")
	p2 := signedKV(t, signer, 9, "eq-key", "second")
	if p1 == p2 {
		t.Fatal("test needs distinct payload bytes for one seq")
	}

	// Ingress: one identity, one slot — and the drop is reported, not
	// silent (re-submitting the identical bytes stays idempotent).
	r := NewReplica(0, kv.NewStore())
	r.SetCommandAuth(ax)
	if !r.Submit(p1) {
		t.Fatal("first payload refused")
	}
	if r.Submit(p2) {
		t.Fatal("conflicting payload for a claimed identity reported as admitted")
	}
	if !r.Submit(p1) {
		t.Fatal("idempotent re-submit of the queued payload reported as dropped")
	}
	if got := r.PendingLen(); got != 1 {
		t.Fatalf("queued %d commands for one identity, want 1", got)
	}

	// A batch carrying both equivocations is Byzantine by construction and
	// weighs zero.
	both, err := EncodeBatch([]model.Value{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if w := authWeight(both, ax); w != 0 {
		t.Fatalf("equivocating batch weighs %d, want 0", w)
	}

	// Zombie eviction: a replica holding p2 sees p1 decided elsewhere; the
	// commit must clear p2 from its queue (it can never carry weight again).
	other := NewReplica(1, kv.NewStore())
	other.SetCommandAuth(ax)
	other.Submit(p2)
	decided, err := EncodeBatch([]model.Value{p1})
	if err != nil {
		t.Fatal(err)
	}
	other.Commit(decided)
	if got := other.PendingLen(); got != 0 {
		t.Fatalf("losing equivocation still queued (%d pending), want eviction", got)
	}
	// And the identity slot is free again only for committed-replay-safe
	// reuse: a fresh submit of p2 is refused as replayed.
	other.Submit(p2)
	if got := other.PendingLen(); got != 0 {
		t.Fatalf("replayed equivocation re-queued (%d pending)", got)
	}
}

// TestAuthClusterFabrication is the sim half of the acceptance criterion: a
// class-3 cluster under a fabricating Byzantine proposer decides only
// authenticated commands — the forged keys never reach any store, and
// CheckProvenance passes over every honest log.
func TestAuthClusterFabrication(t *testing.T) {
	params := core.Params{
		N: 6, B: 1, F: 1, TD: 4,
		Flag:       model.FlagPhase,
		FLV:        flv.NewClass3(6, 4, 1, false),
		Selector:   selector.NewAll(6),
		UseHistory: true,
	}
	cluster, err := NewCluster(params, func(model.PID) StateMachine {
		return kv.NewStore()
	}, 321)
	if err != nil {
		t.Fatal(err)
	}
	kr := auth.NewClientKeyring(testClientSeed, 8)
	ax := NewAuthContext(kr, 64)
	cluster.EnableCommandAuth(ax)
	for _, p := range model.AllPIDs(6) {
		cluster.Replica(p).SM.(*kv.Store).EnableClientAuth(kr, 64)
	}
	if err := cluster.SetByzantine(5, FabricateCommands(1000)); err != nil {
		t.Fatal(err)
	}

	signer := auth.NewClientSigner(testClientSeed, 2)
	for seq := uint64(1); seq <= 20; seq++ {
		cmd, err := kv.SignedCommand(signer, seq, "SET", fmt.Sprintf("ak-%d", seq), fmt.Sprintf("av-%d", seq))
		if err != nil {
			t.Fatal(err)
		}
		cluster.Submit(0, cmd)
	}
	if err := cluster.Drain(60); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CheckProvenance(); err != nil {
		t.Fatal(err)
	}
	store := cluster.Replica(0).SM.(*kv.Store)
	for seq := 1; seq <= 20; seq++ {
		if v, ok := store.Get(fmt.Sprintf("ak-%d", seq)); !ok || v != fmt.Sprintf("av-%d", seq) {
			t.Fatalf("ak-%d = %q (%v)", seq, v, ok)
		}
	}
	// Nothing forged ever applied.
	snapshot := store.Snapshot()
	for k := range snapshot {
		if strings.HasPrefix(k, "forged-") {
			t.Fatalf("fabricated key %q reached the store", k)
		}
	}
}

// TestInjectionStrategiesWeighZero: every injection strategy's output is
// worthless under the authenticated weight rule, while ReplayCommands'
// batches verify (the MACs are genuine) but carry no fresh weight.
func TestInjectionStrategiesWeighZero(t *testing.T) {
	ax, signer := testAuthContext(t)
	committed := make([]model.Value, 0, 5)
	for seq := uint64(1); seq <= 5; seq++ {
		cmd := signedKV(t, signer, seq, fmt.Sprintf("k%d", seq), "v")
		ax.RecordCommitted(cmd)
		committed = append(committed, cmd)
	}
	sched := core.Params{Flag: model.FlagPhase}.Schedule()
	ctx := &adversary.Ctx{Self: 5, N: 6, Rng: rand.New(rand.NewSource(4)), Sched: sched}
	strategies := []adversary.Strategy{
		FabricateCommands(500),
		ReplayCommands(committed),
		StripSignatures(committed),
	}
	for _, s := range strategies {
		for r := model.Round(1); r <= 12; r++ {
			for _, msg := range s.Messages(ctx, r) {
				if w := authWeight(msg.Vote, ax); w != 0 {
					t.Errorf("%s round %d: vote weighs %d, want 0", s.Name(), r, w)
				}
				break // one destination suffices: Fabricate broadcasts one value
			}
		}
	}
}
