package smr

import (
	"fmt"
	"path/filepath"
	"testing"

	"genconsensus/internal/adversary"
	"genconsensus/internal/auth"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/storage"
)

// powerCycleCluster stands up a class-3 n=6, b=1, f=1 cluster with
// snapshots and storage over the given backend factory.
func powerCycleCluster(t *testing.T, factory func(model.PID) storage.Backend) *Cluster {
	t.Helper()
	c, err := NewCluster(class3Params(6, 4, 1), func(model.PID) StateMachine { return kv.NewStore() }, 23)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBatchSize(4)
	if err := c.EnableSnapshots(SnapshotConfig{Interval: 3, KeepApplied: 64}); err != nil {
		t.Fatal(err)
	}
	c.EnableStorage(factory)
	return c
}

// runWave submits cmds commands and runs instances instances, checking
// consistency after each.
func runWave(t *testing.T, c *Cluster, next *int, cmds, instances int) {
	t.Helper()
	for i := 0; i < cmds; i++ {
		c.Submit(0, kv.Command(fmt.Sprintf("pc-req-%d", *next), "SET",
			fmt.Sprintf("pc-k-%d", *next%17), fmt.Sprintf("pc-v-%d", *next)))
		*next++
	}
	for i := 0; i < instances; i++ {
		if _, err := c.RunInstance(); err != nil {
			t.Fatal(err)
		}
		if err := c.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterPowerCycle is the simulated whole-cluster outage: every
// replica's memory is wiped at once and the cluster must converge again
// from the durable backends alone — checkpoint plus WAL replay, with the
// lagging members (a crashed one included) pulled up by the same recovery
// machinery Recover uses. Runs over both backend kinds: Memory (the sim's
// disk image) and Disk (real files under t.TempDir).
func TestClusterPowerCycle(t *testing.T) {
	backends := map[string]func(t *testing.T) func(model.PID) storage.Backend{
		"memory": func(t *testing.T) func(model.PID) storage.Backend {
			return func(model.PID) storage.Backend { return storage.NewMemory() }
		},
		"disk": func(t *testing.T) func(model.PID) storage.Backend {
			dir := t.TempDir()
			return func(p model.PID) storage.Backend {
				d, err := storage.OpenDisk(storage.DiskConfig{
					Dir: filepath.Join(dir, fmt.Sprintf("member-%d", p)),
				})
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
		},
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			c := powerCycleCluster(t, mk(t))
			next := 0
			runWave(t, c, &next, 10, 5)

			// One member crashes and misses history — after the power
			// cycle its disk is behind and must be converged from the
			// others' durable state.
			if err := c.Crash(5); err != nil {
				t.Fatal(err)
			}
			runWave(t, c, &next, 16, 8)
			preLen := c.Replica(0).Log.Len()
			preState := c.Replica(0).SM.(*kv.Store).SnapshotState()
			if preLen == 0 {
				t.Fatal("setup: nothing decided")
			}
			oldReps := make([]*Replica, 6)
			for p := 0; p < 6; p++ {
				oldReps[p] = c.Replica(model.PID(p))
			}

			if err := c.PowerCycle(); err != nil {
				t.Fatal(err)
			}

			// Zero surviving memory: every replica object (log, state
			// machine, queue) is new.
			for p := 0; p < 6; p++ {
				rep := c.Replica(model.PID(p))
				if rep == oldReps[p] {
					t.Fatalf("member %d survived the power cycle", p)
				}
				if rep.PendingLen() != 0 {
					t.Fatalf("member %d restored pending commands from nowhere", p)
				}
			}
			if err := c.CheckConsistency(); err != nil {
				t.Fatalf("after power cycle: %v", err)
			}
			for p := 0; p < 6; p++ {
				rep := c.Replica(model.PID(p))
				if got := rep.Log.Len(); got != preLen {
					t.Fatalf("member %d restored %d log entries, cluster had %d", p, got, preLen)
				}
				if got := rep.SM.(*kv.Store).SnapshotState(); string(got) != string(preState) {
					t.Fatalf("member %d restored state diverges", p)
				}
			}

			// The restored cluster keeps deciding, checkpointing and
			// compacting from where it left off.
			runWave(t, c, &next, 12, 6)
			if got := c.Replica(0).Log.Len(); got <= preLen {
				t.Fatalf("log did not grow after the power cycle: %d ≤ %d", got, preLen)
			}
			if err := c.CheckConsistency(); err != nil {
				t.Fatal(err)
			}

			// And survives a second outage.
			if err := c.PowerCycle(); err != nil {
				t.Fatal(err)
			}
			if err := c.CheckConsistency(); err != nil {
				t.Fatalf("after second power cycle: %v", err)
			}
			runWave(t, c, &next, 4, 4)
		})
	}
}

// TestClusterPowerCycleAuthenticated: the authenticated lifecycle survives
// the outage — restored logs still carry only provenance-checked entries,
// no (client, seq) commits twice across the cycle, and replays of
// pre-outage commands stay rejected.
func TestClusterPowerCycleAuthenticated(t *testing.T) {
	c := powerCycleCluster(t, func(model.PID) storage.Backend { return storage.NewMemory() })
	keyring := auth.NewClientKeyring(77, 4)
	ax := NewAuthContext(keyring, 128)
	c.EnableCommandAuth(ax)
	signer := auth.NewClientSigner(77, 1)

	seq := uint64(0)
	signedWave := func(cmds, instances int) {
		t.Helper()
		for i := 0; i < cmds; i++ {
			seq++
			cmd, err := kv.SignedCommand(signer, seq, "SET",
				fmt.Sprintf("apc-k-%d", seq%11), fmt.Sprintf("apc-v-%d", seq))
			if err != nil {
				t.Fatal(err)
			}
			c.Submit(0, cmd)
		}
		for i := 0; i < instances; i++ {
			if _, err := c.RunInstance(); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
		if err := c.CheckProvenance(); err != nil {
			t.Fatal(err)
		}
	}

	signedWave(12, 8)
	if err := c.PowerCycle(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckProvenance(); err != nil {
		t.Fatalf("provenance after power cycle: %v", err)
	}
	// A replay of a pre-outage committed command must still bounce at
	// ingress on the restored replicas.
	replay, err := kv.SignedCommand(signer, 1, "SET", "apc-k-1", "apc-v-1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Replica(0).Submit(replay) {
		t.Fatal("restored replica accepted a replay of a pre-outage command")
	}
	signedWave(6, 6)
}

func TestPowerCycleGuards(t *testing.T) {
	c, err := NewCluster(pbftParams(4, 1), func(model.PID) StateMachine { return kv.NewStore() }, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PowerCycle(); err != ErrNoStorage {
		t.Fatalf("power cycle without storage: %v", err)
	}
	c.EnableStorage(func(model.PID) storage.Backend { return storage.NewMemory() })
	if err := c.SetByzantine(1, adversary.Silent{}); err != nil {
		t.Fatal(err)
	}
	if err := c.PowerCycle(); err != ErrByzantinePowerCycle {
		t.Fatalf("power cycle with a Byzantine member: %v", err)
	}
}
