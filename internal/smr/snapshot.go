package smr

import (
	"errors"
	"fmt"
	"sync"

	"genconsensus/internal/model"
	"genconsensus/internal/snapshot"
)

// SnapshotConfig parameterizes a replica's checkpoint policy.
type SnapshotConfig struct {
	// Interval checkpoints every Interval committed instances: instance
	// numbers are cluster-global, so every honest replica snapshots at the
	// same boundaries with identical state and identical digests.
	Interval uint64
	// KeepApplied bounds the state machine's duplicate-suppression table at
	// each boundary (snapshot.Pruner), so dedup memory stops growing with
	// history. 0 disables pruning.
	KeepApplied int
}

// ErrTailUnavailable reports that recovery needs log entries every live
// donor has already compacted away.
var ErrTailUnavailable = errors.New("smr: log tail compacted away at every donor")

// SnapshotManager maintains one replica's durable checkpoints: every
// Interval committed instances it prunes the dedup table, encodes the
// state machine, records the snapshot with its digest, and truncates the
// replica's log below the checkpoint — the compaction that keeps a
// long-running deployment's memory bounded. Install is the inverse,
// applied on a recovering replica with a snapshot verified against b+1
// peers.
//
// Checkpoint/MaybeSnapshot must be serialized with commits (they read the
// log length and state together); the commit paths — Cluster.commitDecision
// and CommitQueue.Deliver — already guarantee that. Latest may be called
// concurrently (it is the transport's snapshot provider).
type SnapshotManager struct {
	r       *Replica
	snapper snapshot.Snapshotter
	cfg     SnapshotConfig

	mu     sync.Mutex
	latest *snapshot.Snapshot
	digest [32]byte
	taken  int
}

// NewSnapshotManager builds a manager over the replica. The replica's
// state machine must implement snapshot.Snapshotter and the interval must
// be positive.
func NewSnapshotManager(r *Replica, cfg SnapshotConfig) (*SnapshotManager, error) {
	snapper, ok := r.SM.(snapshot.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("smr: state machine %T cannot snapshot", r.SM)
	}
	if cfg.Interval == 0 {
		return nil, errors.New("smr: snapshot interval must be positive")
	}
	return &SnapshotManager{r: r, snapper: snapper, cfg: cfg}, nil
}

// MaybeSnapshot checkpoints when the just-committed instance lands on an
// interval boundary. It reports whether a snapshot was taken.
func (m *SnapshotManager) MaybeSnapshot(instance uint64) bool {
	if instance == 0 || instance%m.cfg.Interval != 0 {
		return false
	}
	m.Checkpoint(instance)
	return true
}

// Checkpoint unconditionally snapshots the replica at the given instance
// watermark: prune the dedup table, encode the state, record the snapshot
// and compact the log below it. Every step is deterministic, so replicas
// checkpointing the same instance produce identical digests.
func (m *SnapshotManager) Checkpoint(instance uint64) *snapshot.Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latest != nil && instance <= m.latest.LastInstance {
		return m.latest
	}
	if m.cfg.KeepApplied > 0 {
		if p, ok := m.snapper.(snapshot.Pruner); ok {
			p.PruneApplied(m.cfg.KeepApplied)
		}
	}
	snap := &snapshot.Snapshot{
		LastInstance: instance,
		LogIndex:     uint64(m.r.Log.Len()),
		State:        m.snapper.SnapshotState(),
	}
	m.latest = snap
	m.digest = snapshot.Digest(snap)
	m.taken++
	m.r.Log.TruncatePrefix(snap.LogIndex)
	m.persistLocked(snap)
	return snap
}

// persistLocked pushes a checkpoint to the replica's durable backend (if
// any) and truncates the WAL beneath it — the decided instances it covers
// are now replayable from the snapshot instead. Storage failures degrade
// to in-memory checkpoints (reported, not fatal): a broken disk must not
// stop the compaction that keeps memory bounded. Callers hold m.mu.
func (m *SnapshotManager) persistLocked(snap *snapshot.Snapshot) {
	b := m.r.Backend()
	if b == nil {
		return
	}
	if err := b.SaveSnapshot(snap); err != nil {
		m.r.reportStorageErr(fmt.Errorf("smr: persisting checkpoint %d: %w", snap.LastInstance, err))
		return
	}
	if err := b.TruncateWAL(snap.LastInstance); err != nil {
		m.r.reportStorageErr(fmt.Errorf("smr: truncating wal at %d: %w", snap.LastInstance, err))
	}
}

// Latest returns the most recent checkpoint and its digest.
func (m *SnapshotManager) Latest() (*snapshot.Snapshot, [32]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latest == nil {
		return nil, [32]byte{}, false
	}
	return m.latest, m.digest, true
}

// Taken reports how many checkpoints this manager has produced (tests and
// metrics).
func (m *SnapshotManager) Taken() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.taken
}

// Install replaces the replica's state with a (verified) snapshot: the
// state machine is restored, the log restarts at the snapshot index, and
// the snapshot becomes this manager's latest. Verification — b+1 matching
// digests — is the caller's duty (transport.FetchVerifiedSnapshot or
// Cluster.Recover); Install trusts its argument.
func (m *SnapshotManager) Install(snap *snapshot.Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.snapper.RestoreState(snap.State); err != nil {
		return fmt.Errorf("smr: installing snapshot: %w", err)
	}
	m.r.Log.Reset(snap.LogIndex)
	m.latest = snap
	m.digest = snapshot.Digest(snap)
	m.persistLocked(snap)
	return nil
}

// EnableSnapshots installs a snapshot manager on every replica. Every
// state machine must implement snapshot.Snapshotter. Must be called before
// instances run.
func (c *Cluster) EnableSnapshots(cfg SnapshotConfig) error {
	managers := make([]*SnapshotManager, len(c.replicas))
	for i, r := range c.replicas {
		m, err := NewSnapshotManager(r, cfg)
		if err != nil {
			return err
		}
		managers[i] = m
	}
	c.mu.Lock()
	c.managers = managers
	c.snapCfg = cfg
	c.mu.Unlock()
	return nil
}

// Manager returns replica p's snapshot manager (nil before
// EnableSnapshots).
func (c *Cluster) Manager(p model.PID) *SnapshotManager {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.managers == nil {
		return nil
	}
	return c.managers[p]
}

// Recover rejoins a crashed member: the simulated counterpart of the
// transport's crash-recovery state transfer. The recovering replica
// installs the newest snapshot whose digest at least b+1 live honest
// replicas agree on (a Byzantine minority cannot feed it forged state),
// replays the log tail above it from a live donor, and is then live again
// — from the next instance on it proposes and commits normally, and
// CheckConsistency holds it to the same standard as every other live
// member.
//
// Without snapshots enabled the replica catches up by full tail replay,
// which works only while donors retain their whole logs. Like
// RunInstance/Drain, Recover must be called from the scheduler goroutine,
// not concurrently with running instances.
func (c *Cluster) Recover(p model.PID) error {
	c.mu.Lock()
	if int(p) < 0 || int(p) >= c.params.N {
		c.mu.Unlock()
		return fmt.Errorf("smr: no member %d", p)
	}
	if _, byz := c.byzantine[p]; byz {
		c.mu.Unlock()
		return fmt.Errorf("smr: member %d is Byzantine, not crashed", p)
	}
	if !c.crashed[p] {
		c.mu.Unlock()
		return fmt.Errorf("smr: member %d is not crashed", p)
	}
	managers := c.managers
	need := c.params.B + 1
	c.mu.Unlock()

	rep := c.replicas[p]
	live := c.liveSet()

	// Verified snapshot: the newest checkpoint backed by b+1 matching
	// digests among live honest replicas.
	var chosen *snapshot.Snapshot
	if managers != nil {
		votes := make(map[[32]byte]int)
		snaps := make(map[[32]byte]*snapshot.Snapshot)
		for _, r := range c.replicas {
			if !live[r.ID] {
				continue
			}
			if s, d, ok := managers[r.ID].Latest(); ok {
				votes[d]++
				snaps[d] = s
			}
		}
		for d, n := range votes {
			if n < need {
				continue
			}
			if chosen == nil || snaps[d].LastInstance > chosen.LastInstance {
				chosen = snaps[d]
			}
		}
	}
	if chosen != nil && chosen.LogIndex > uint64(rep.Log.Len()) {
		if err := managers[p].Install(chosen); err != nil {
			return err
		}
	}

	// Log tail: replay everything the snapshot does not cover from any
	// live donor that still retains it.
	from := uint64(rep.Log.Len())
	var tail []model.Value
	found := false
	for _, donor := range c.replicas {
		if !live[donor.ID] || donor.ID == p {
			continue
		}
		if t, ok := donor.Log.Tail(from); ok {
			tail = t
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: member %d needs entries from %d", ErrTailUnavailable, p, from)
	}
	for _, entry := range tail {
		rep.Commit(entry)
	}

	c.mu.Lock()
	delete(c.crashed, p)
	c.mu.Unlock()
	return nil
}
