package smr

import (
	"errors"
	"fmt"
	"sort"

	"genconsensus/internal/model"
	"genconsensus/internal/snapshot"
	"genconsensus/internal/storage"
)

// Errors returned by the power-cycle scenario.
var (
	ErrNoStorage = errors.New("smr: storage not enabled")
	// ErrByzantinePowerCycle: a Byzantine member has no honest durable
	// state to restore; clear the fault injection before power cycling.
	ErrByzantinePowerCycle = errors.New("smr: cannot power-cycle a cluster with Byzantine members")
)

// EnableStorage gives every replica a durable backend: decided instances
// are WAL-appended write-ahead of the apply, and checkpoints (with
// EnableSnapshots) persist to the backend and truncate the WAL. The factory
// supplies one backend per member — storage.NewMemory for pure simulation
// (the Memory object is the member's disk image), or storage.OpenDisk over
// per-member directories to put real files under the sim. Must be called
// before instances run.
func (c *Cluster) EnableStorage(factory func(model.PID) storage.Backend) {
	backends := make([]storage.Backend, len(c.replicas))
	for i, r := range c.replicas {
		backends[i] = factory(model.PID(i))
		r.SetBackend(backends[i], nil)
	}
	c.mu.Lock()
	c.backends = backends
	c.mu.Unlock()
}

// Backend returns member p's storage backend (nil before EnableStorage).
func (c *Cluster) Backend(p model.PID) storage.Backend {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.backends == nil {
		return nil
	}
	return c.backends[p]
}

// PowerCycle restarts the whole cluster with zero surviving memory: every
// replica — state machine, log, pending queue, snapshot manager — is
// rebuilt from scratch and recovered from its durable backend alone
// (newest verified checkpoint, then in-order WAL replay), the way a real
// deployment comes back after the machine room loses power. Unlike Crash/
// Recover there is no live donor holding the protocol's in-memory state:
// what the backends hold is all there is.
//
// Members whose durability lagged (a checkpoint behind, or WAL records
// lost to an unsynced batch) restore behind the frontier; PowerCycle then
// converges them exactly as Recover would — install the newest checkpoint
// backed by b+1 matching restored digests when their gap is compacted,
// replay the donor log tail otherwise. The cluster resumes at the highest
// restored instance. Pending (undecided) client commands do not survive:
// durability begins at the decision, and clients re-submit exactly as they
// would after a real outage.
//
// The shared AuthContext (EnableCommandAuth) is retained and is equivalent
// to the reseed-from-restored-state recovery the node runtime performs:
// honest replicas' dedup windows travel inside the checkpoints, so a
// rebuilt context would converge to the same horizon.
//
// Like RunInstance and Drain, PowerCycle must be called from the scheduler
// goroutine, not concurrently with running instances. Crashed members are
// revived (a restart restarts everyone); Byzantine members are refused.
func (c *Cluster) PowerCycle() error {
	c.mu.Lock()
	if c.backends == nil {
		c.mu.Unlock()
		return ErrNoStorage
	}
	if len(c.byzantine) > 0 {
		c.mu.Unlock()
		return ErrByzantinePowerCycle
	}
	backends := c.backends
	snapsEnabled := c.managers != nil
	snapCfg := c.snapCfg
	ax := c.authCtx
	need := c.params.B + 1
	c.mu.Unlock()

	n := len(c.replicas)
	reps := make([]*Replica, n)
	var mgrs []*SnapshotManager
	if snapsEnabled {
		mgrs = make([]*SnapshotManager, n)
	}
	var maxInstance uint64
	for i, old := range c.replicas {
		p := old.ID
		rep := NewReplica(p, c.smFactory(p))
		// Configuration survives a reboot (it is code/flags, not state).
		old.mu.Lock()
		rep.maxBatch = old.maxBatch
		rep.sizer = old.sizer
		old.mu.Unlock()
		if ax != nil {
			rep.SetCommandAuth(ax)
		}
		rep.SetBackend(backends[i], nil)
		var mgr *SnapshotManager
		if snapsEnabled {
			m, err := NewSnapshotManager(rep, snapCfg)
			if err != nil {
				return err
			}
			mgrs[i] = m
			mgr = m
		}
		restored, err := restoreFromBackend(rep, mgr, backends[i])
		if err != nil {
			return fmt.Errorf("smr: power-cycling member %d: %w", p, err)
		}
		if restored > maxInstance {
			maxInstance = restored
		}
		reps[i] = rep
	}

	// Convergence: the members whose disks lagged rejoin through the same
	// two mechanisms as Recover, with the restored members as donors.
	var donor *Replica
	for _, r := range reps {
		if donor == nil || r.Log.Len() > donor.Log.Len() {
			donor = r
		}
	}
	for i, rep := range reps {
		if rep.Log.Len() >= donor.Log.Len() {
			continue
		}
		from := uint64(rep.Log.Len())
		if snapsEnabled && donor.Log.FirstIndex() > from {
			// The gap is compacted at the donor: install the newest
			// checkpoint b+1 restored members agree on.
			votes := make(map[[32]byte]int)
			snaps := make(map[[32]byte]*snapshot.Snapshot)
			for _, m := range mgrs {
				if s, d, ok := m.Latest(); ok {
					votes[d]++
					snaps[d] = s
				}
			}
			var chosen *snapshot.Snapshot
			for d, v := range votes {
				if v < need {
					continue
				}
				if chosen == nil || snaps[d].LastInstance > chosen.LastInstance {
					chosen = snaps[d]
				}
			}
			if chosen != nil && chosen.LogIndex > from {
				if err := mgrs[i].Install(chosen); err != nil {
					return fmt.Errorf("smr: power-cycle convergence of member %d: %w", rep.ID, err)
				}
				from = uint64(rep.Log.Len())
			}
		}
		tail, ok := donor.Log.Tail(from)
		if !ok {
			return fmt.Errorf("%w: member %d needs entries from %d after power cycle",
				ErrTailUnavailable, rep.ID, from)
		}
		for _, entry := range tail {
			rep.Commit(entry)
		}
	}

	c.mu.Lock()
	c.replicas = reps
	if snapsEnabled {
		c.managers = mgrs
	}
	c.instance = maxInstance
	c.crashed = make(map[model.PID]bool)
	c.mu.Unlock()
	return nil
}

// restoreFromBackend rebuilds one replica from its durable state: newest
// verified checkpoint first, then the WAL's in-order prefix above it. WAL
// records are replayed through Replica.Commit (not LogDecision — they are
// already durable); records beyond a gap cannot commit in order and wait
// for the cluster-level convergence pass. It returns the highest instance
// the replica's restored state covers.
func restoreFromBackend(rep *Replica, mgr *SnapshotManager, b storage.Backend) (uint64, error) {
	last := uint64(0)
	if mgr != nil {
		snap, ok, err := b.LoadSnapshot()
		if err != nil {
			return 0, err
		}
		if ok {
			if err := mgr.Install(snap); err != nil {
				return 0, err
			}
			last = snap.LastInstance
		}
	}
	type record struct {
		instance uint64
		value    model.Value
	}
	var recs []record
	if err := b.ReplayWAL(func(instance uint64, value model.Value) error {
		recs = append(recs, record{instance, value})
		return nil
	}); err != nil {
		return 0, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].instance < recs[j].instance })
	for _, r := range recs {
		if r.instance <= last {
			continue // covered by the checkpoint (or a duplicate)
		}
		if r.instance != last+1 {
			break // gap: the decisions beyond it cannot commit in order
		}
		rep.Commit(r.value)
		last = r.instance
	}
	return last, nil
}
