package smr

import (
	"fmt"
	"testing"

	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
	"genconsensus/internal/snapshot"
)

func TestLogOffsets(t *testing.T) {
	var l Log
	for i := 0; i < 10; i++ {
		l.Append(model.Value(fmt.Sprintf("c%d", i)))
	}
	l.TruncatePrefix(4)
	if l.Len() != 10 {
		t.Errorf("Len after compaction = %d, want 10 (positions are global)", l.Len())
	}
	if l.FirstIndex() != 4 {
		t.Errorf("FirstIndex = %d, want 4", l.FirstIndex())
	}
	if _, ok := l.Get(3); ok {
		t.Error("Get(3) returned a compacted entry")
	}
	if v, ok := l.Get(4); !ok || v != "c4" {
		t.Errorf("Get(4) = %q, %v", v, ok)
	}
	if v, ok := l.Get(9); !ok || v != "c9" {
		t.Errorf("Get(9) = %q, %v", v, ok)
	}
	if got := l.Entries(); len(got) != 6 || got[0] != "c4" {
		t.Errorf("Entries = %v", got)
	}
	// Appends continue at global positions.
	l.Append("c10")
	if v, ok := l.Get(10); !ok || v != "c10" {
		t.Errorf("Get(10) = %q, %v", v, ok)
	}
	// Tail honors the offset and rejects compacted starts.
	if tail, ok := l.Tail(8); !ok || len(tail) != 3 || tail[0] != "c8" {
		t.Errorf("Tail(8) = %v, %v", tail, ok)
	}
	if _, ok := l.Tail(2); ok {
		t.Error("Tail below FirstIndex reported ok")
	}
	// Truncation is idempotent and clamped.
	l.TruncatePrefix(2) // below base: no-op
	if l.FirstIndex() != 4 {
		t.Errorf("FirstIndex after stale truncate = %d", l.FirstIndex())
	}
	l.TruncatePrefix(100) // beyond end: clamp to Len
	if l.FirstIndex() != 11 || l.Len() != 11 {
		t.Errorf("clamped truncate: first %d len %d", l.FirstIndex(), l.Len())
	}
	l.Reset(42)
	if l.Len() != 42 || l.FirstIndex() != 42 || len(l.Entries()) != 0 {
		t.Errorf("Reset: len %d first %d", l.Len(), l.FirstIndex())
	}
}

func TestSnapshotManagerCheckpointAndInstall(t *testing.T) {
	store := kv.NewStore()
	r := NewReplica(0, store)
	mgr, err := NewSnapshotManager(r, SnapshotConfig{Interval: 2, KeepApplied: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := mgr.Latest(); ok {
		t.Fatal("fresh manager has a snapshot")
	}
	for i := 1; i <= 6; i++ {
		r.Commit(testCmd(i))
		mgr.MaybeSnapshot(uint64(i))
	}
	snap, digest, ok := mgr.Latest()
	if !ok || snap.LastInstance != 6 || snap.LogIndex != 6 {
		t.Fatalf("latest = %+v, %v", snap, ok)
	}
	if mgr.Taken() != 3 {
		t.Errorf("Taken = %d, want 3 (instances 2, 4, 6)", mgr.Taken())
	}
	if r.Log.FirstIndex() != 6 {
		t.Errorf("log not compacted: FirstIndex = %d", r.Log.FirstIndex())
	}
	if store.AppliedLen() != 4 {
		t.Errorf("dedup table not pruned at boundary: %d entries", store.AppliedLen())
	}
	if digest != snapshot.Digest(snap) {
		t.Error("digest mismatch")
	}

	// Install the snapshot on a fresh replica: state and watermark carry
	// over, the log restarts at the snapshot index.
	store2 := kv.NewStore()
	r2 := NewReplica(1, store2)
	mgr2, err := NewSnapshotManager(r2, SnapshotConfig{Interval: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr2.Install(snap); err != nil {
		t.Fatal(err)
	}
	if r2.Log.Len() != 6 || r2.Log.FirstIndex() != 6 {
		t.Errorf("installed log: len %d first %d", r2.Log.Len(), r2.Log.FirstIndex())
	}
	if string(store2.SnapshotState()) != string(store.SnapshotState()) {
		t.Error("installed state differs from source state")
	}
	if s2, d2, ok := mgr2.Latest(); !ok || d2 != digest || s2.LastInstance != 6 {
		t.Error("install did not adopt the snapshot as latest")
	}
}

// opaqueSM is a state machine without snapshot support.
type opaqueSM struct{}

func (opaqueSM) Apply(model.Value) string { return "" }

func TestSnapshotManagerRequiresSnapshotter(t *testing.T) {
	r := NewReplica(0, opaqueSM{})
	if _, err := NewSnapshotManager(r, SnapshotConfig{Interval: 2}); err == nil {
		t.Fatal("manager accepted a non-Snapshotter state machine")
	}
	r2 := NewReplica(0, kv.NewStore())
	if _, err := NewSnapshotManager(r2, SnapshotConfig{}); err == nil {
		t.Fatal("manager accepted interval 0")
	}
}

// class3Params is the class-3 (n, td, b, f) parameterization the recovery
// tests run on.
func class3Params(n, td, b int) core.Params {
	return core.Params{
		N: n, B: b, F: 1, TD: td,
		Flag:       model.FlagPhase,
		FLV:        flv.NewClass3(n, td, b, false),
		Selector:   selector.NewAll(n),
		UseHistory: true,
	}
}

// TestClusterCompactionBounded is the long-haul compaction proof: across
// ≥ 50 snapshot cycles the retained log entries and the dedup table stay
// bounded while global positions keep growing, and consistency holds
// throughout.
func TestClusterCompactionBounded(t *testing.T) {
	const (
		interval  = 2
		cycles    = 55
		instances = interval * cycles
	)
	c, err := NewCluster(pbftParams(4, 1), func(model.PID) StateMachine { return kv.NewStore() }, 7)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBatchSize(2)
	if err := c.EnableSnapshots(SnapshotConfig{Interval: interval, KeepApplied: 8}); err != nil {
		t.Fatal(err)
	}
	maxRetained := 0
	for i := 0; i < instances; i++ {
		c.Submit(0, testCmd(1000+i))
		if _, err := c.RunInstance(); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if err := c.CheckConsistency(); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		for p := 0; p < 4; p++ {
			if n := len(c.Replica(model.PID(p)).Log.Entries()); n > maxRetained {
				maxRetained = n
			}
		}
	}
	// Retained entries never exceed one snapshot window's worth of
	// commands (interval instances × batch ≤ 2 commands, + slack for the
	// boundary itself).
	const bound = interval*2 + 2
	if maxRetained > bound {
		t.Errorf("retained entries peaked at %d, want ≤ %d", maxRetained, bound)
	}
	r0 := c.Replica(0)
	if got := c.Manager(0).Taken(); got < 50 {
		t.Errorf("only %d snapshot cycles, want ≥ 50", got)
	}
	if r0.Log.Len() < instances {
		t.Errorf("global log length %d, want ≥ %d", r0.Log.Len(), instances)
	}
	if r0.Log.FirstIndex() == 0 {
		t.Error("log never compacted")
	}
	if got := r0.SM.(*kv.Store).AppliedLen(); got > 8+interval*2 {
		t.Errorf("dedup table %d entries, not bounded", got)
	}
}

// TestClusterRecover is the simulated crash-recovery e2e on a class-3
// n=6, b=1, f=1 cluster: a member crashes mid-load, the cluster keeps
// deciding and compacting past its log, and Recover brings it back via a
// b+1-verified snapshot plus a donor log tail. The recovered member must
// immediately satisfy CheckConsistency as a live replica and participate
// in subsequent instances.
func TestClusterRecover(t *testing.T) {
	params := class3Params(6, 4, 1)
	c, err := NewCluster(params, func(model.PID) StateMachine { return kv.NewStore() }, 11)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBatchSize(4)
	if err := c.EnableSnapshots(SnapshotConfig{Interval: 3, KeepApplied: 64}); err != nil {
		t.Fatal(err)
	}
	submit := func(i int) {
		c.Submit(0, kv.Command(fmt.Sprintf("rec-req-%d", i), "SET",
			fmt.Sprintf("rec-k-%d", i%13), fmt.Sprintf("rec-v-%d", i)))
	}
	next := 0
	runWave := func(cmds, instances int) {
		t.Helper()
		for i := 0; i < cmds; i++ {
			submit(next)
			next++
		}
		for i := 0; i < instances; i++ {
			if _, err := c.RunInstance(); err != nil {
				t.Fatal(err)
			}
			if err := c.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		}
	}

	runWave(8, 4)
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	crashLen := c.Replica(0).Log.Len()
	// The cluster keeps going long enough that live members compact their
	// logs well past the crashed member's position: recovery then MUST use
	// a snapshot, a plain tail replay cannot work.
	runWave(24, 12)
	if first := c.Replica(1).Log.FirstIndex(); first <= uint64(crashLen) {
		t.Fatalf("setup failed: live FirstIndex %d has not passed crash point %d", first, crashLen)
	}

	if err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if got, want := c.Replica(0).Log.Len(), c.Replica(1).Log.Len(); got != want {
		t.Fatalf("recovered log length %d, live logs %d", got, want)
	}

	// The recovered member participates in new instances (including as a
	// fresh crash budget: f=1 is free again).
	runWave(6, 6)
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	ref := c.Replica(1).SM.(*kv.Store).Snapshot()
	got := c.Replica(0).SM.(*kv.Store).Snapshot()
	if len(got) != len(ref) {
		t.Fatalf("recovered store has %d keys, live stores %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("recovered store: %s = %q, want %q", k, got[k], v)
		}
	}
}

// Recover must refuse nonsense: live members, Byzantine members, unknown
// ids.
func TestRecoverGuards(t *testing.T) {
	params := class3Params(6, 4, 1)
	c, err := NewCluster(params, func(model.PID) StateMachine { return kv.NewStore() }, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(1); err == nil {
		t.Error("recovered a live member")
	}
	if err := c.Recover(99); err == nil {
		t.Error("recovered an unknown member")
	}
	if err := c.SetByzantine(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(5); err == nil {
		t.Error("recovered a Byzantine member")
	}
}
