package smr

import (
	"crypto/sha256"
	"strings"
	"sync"

	"genconsensus/internal/adversary"
	"genconsensus/internal/model"
)

// Digest voting decouples value dissemination from agreement (Liang &
// Vaidya's multi-valued construction): a proposer publishes its encoded
// batch once on the content-addressed payload plane and votes with a
// constant-size digest value, so consensus rounds carry 32 bytes instead
// of repeating the batch in every message. A digest vote is just a
// model.Value with a magic prefix — it flows through the round machinery,
// the wire codec and the decision plumbing unchanged.
//
// The safety rule is resolve-before-weigh: the chooser treats a digest it
// cannot resolve to a locally-held payload exactly like a malformed batch
// (weight zero), so a Byzantine proposer gains nothing by voting digests
// of payloads it never published — the PR-4 invariant "fabricated load
// never outweighs honest load" extends to fabricated *references*. The
// decided digest is resolved back to the batch before it reaches the WAL,
// the log and the state machine; the replicated log never stores digests.

// digestMagic prefixes every digest vote. Like batchMagic it contains a
// control byte no client command and no batch encoding starts with, so the
// three value kinds are mutually unambiguous.
const digestMagic = "\x01dgst\x01"

// DigestVoteSize is the exact encoded size of a digest vote.
const DigestVoteSize = len(digestMagic) + sha256.Size

// DigestVote encodes a content address as a consensus value.
func DigestVote(sum [sha256.Size]byte) model.Value {
	b := make([]byte, 0, DigestVoteSize)
	b = append(b, digestMagic...)
	b = append(b, sum[:]...)
	return model.Value(b)
}

// IsDigestVote reports whether v carries the digest-vote magic.
func IsDigestVote(v model.Value) bool {
	return strings.HasPrefix(string(v), digestMagic)
}

// DigestKey extracts the content address from a digest vote. It is strict:
// a magic-prefixed value of any other length is Byzantine junk, not a
// vote, and resolves to nothing.
func DigestKey(v model.Value) ([sha256.Size]byte, bool) {
	var sum [sha256.Size]byte
	if len(v) != DigestVoteSize || !IsDigestVote(v) {
		return sum, false
	}
	copy(sum[:], v[len(digestMagic):])
	return sum, true
}

// DigestOf computes the content address of an encoded value.
func DigestOf(v model.Value) [sha256.Size]byte {
	return sha256.Sum256([]byte(v))
}

// DigestResolver maps content addresses back to the values they name. The
// transport's PayloadStore implements it for the TCP path; DigestTable
// models it for the simulator.
type DigestResolver interface {
	// ResolveDigest returns the value whose digest is sum, if the resolver
	// holds it locally. It must not block — the chooser calls it on the
	// round hot path; fetching missing payloads happens asynchronously.
	ResolveDigest(sum [sha256.Size]byte) (model.Value, bool)
}

// DigestTable is the simulator's payload plane: a shared content-addressed
// map standing in for the transport's announce/fetch dissemination, so sim
// soaks exercise digest voting (resolve-before-weigh, unresolvable
// Byzantine digests, digest decisions resolving before commit) without a
// network. Honest proposers Put before voting, mirroring the TCP rule that
// a proposer announces its payload before round 1.
type DigestTable struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]model.Value
}

// NewDigestTable returns an empty table.
func NewDigestTable() *DigestTable {
	return &DigestTable{m: make(map[[sha256.Size]byte]model.Value)}
}

// Put stores v and returns the digest vote that names it.
func (t *DigestTable) Put(v model.Value) model.Value {
	sum := DigestOf(v)
	t.mu.Lock()
	t.m[sum] = v
	t.mu.Unlock()
	return DigestVote(sum)
}

// ResolveDigest implements DigestResolver.
func (t *DigestTable) ResolveDigest(sum [sha256.Size]byte) (model.Value, bool) {
	t.mu.Lock()
	v, ok := t.m[sum]
	t.mu.Unlock()
	return v, ok
}

// Len returns the number of stored payloads.
func (t *DigestTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// HostileDigests is a Byzantine proposer voting well-formed digests of
// payloads it never published. Resolve-before-weigh must price them at
// zero — an unresolvable reference can cost the cluster an instance at
// worst (NoOp), never a commit of unknown bytes and never a wedged
// pipeline.
func HostileDigests() adversary.Strategy {
	return adversary.Fabricate{
		Label: "hostile-digests",
		Next: func(ctx *adversary.Ctx, r model.Round) model.Value {
			var sum [sha256.Size]byte
			ctx.Rng.Read(sum[:])
			return DigestVote(sum)
		},
	}
}
