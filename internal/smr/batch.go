package smr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"genconsensus/internal/model"
)

// Batch limits. MaxBatchBytes stays well under the wire codec's 64 KiB
// string bound (wire encodes votes with a u16 length prefix), so an honest
// batch always survives TCP framing.
const (
	// MaxBatchSize is the maximum number of commands in one batch.
	MaxBatchSize = 128
	// MaxBatchBytes is the maximum encoded size of one batch.
	MaxBatchBytes = 32 << 10
	// maxCommandBytes is the largest single command Submit admits: it must
	// fit a singleton batch (magic + count + length prefix ≤ 32 bytes).
	maxCommandBytes = MaxBatchBytes - 32
)

// batchMagic prefixes every encoded batch. It contains a control byte, which
// no client command may contain, so plain commands and NoOp can never be
// mistaken for batches.
const batchMagic = "\x01batch\x01"

// Errors returned by the batch codec.
var (
	ErrBatchEmpty     = errors.New("smr: empty batch")
	ErrBatchTooLarge  = errors.New("smr: batch exceeds size limits")
	ErrBatchMalformed = errors.New("smr: malformed batch encoding")
)

// EncodeBatch deterministically encodes a command sequence into a single
// proposable value:
//
//	batch := magic count ';' {len ':' cmd}*
//
// with count and len in ASCII decimal. Identical command sequences encode
// identically on every replica, so replicas with identical pending queues
// propose identical batches. Commands must be non-empty, must not be NoOp,
// must not themselves be batches, and must not repeat within the batch; the
// whole encoding must fit MaxBatchSize/MaxBatchBytes.
func EncodeBatch(cmds []model.Value) (model.Value, error) {
	if len(cmds) == 0 {
		return model.NoValue, ErrBatchEmpty
	}
	if len(cmds) > MaxBatchSize {
		return model.NoValue, fmt.Errorf("%w: %d commands > %d", ErrBatchTooLarge, len(cmds), MaxBatchSize)
	}
	size := len(batchMagic) + 8
	for _, cmd := range cmds {
		size += len(cmd) + 8
	}
	b := make([]byte, 0, size)
	b = append(b, batchMagic...)
	b = strconv.AppendInt(b, int64(len(cmds)), 10)
	b = append(b, ';')
	seen := make(map[model.Value]bool, len(cmds))
	for _, cmd := range cmds {
		if cmd == model.NoValue || cmd == NoOp || IsBatch(cmd) {
			return model.NoValue, fmt.Errorf("%w: inadmissible entry %q", ErrBatchMalformed, cmd)
		}
		if seen[cmd] {
			return model.NoValue, fmt.Errorf("%w: duplicate entry %q", ErrBatchMalformed, cmd)
		}
		seen[cmd] = true
		b = strconv.AppendInt(b, int64(len(cmd)), 10)
		b = append(b, ':')
		b = append(b, cmd...)
	}
	if len(b) > MaxBatchBytes {
		return model.NoValue, fmt.Errorf("%w: %d bytes > %d", ErrBatchTooLarge, len(b), MaxBatchBytes)
	}
	return model.Value(b), nil
}

// IsBatch reports whether v carries the batch magic prefix. A true result
// does not imply validity; DecodeBatch performs full validation.
func IsBatch(v model.Value) bool {
	return strings.HasPrefix(string(v), batchMagic)
}

// Admissible reports whether Replica.Submit would accept the command:
// non-empty, not NoOp, not batch-prefixed and small enough to fit a
// singleton batch. Runtimes can reject inadmissible commands at their
// client boundary instead of silently dropping them.
func Admissible(cmd model.Value) bool {
	return cmd != model.NoValue && cmd != NoOp && !IsBatch(cmd) && !IsDigestVote(cmd) &&
		len(cmd) <= maxCommandBytes
}

// DecodeBatch strictly parses and validates an encoded batch: exact count,
// exact lengths, no trailing bytes, size limits respected, and every entry
// admissible under the EncodeBatch rules. Byzantine proposers can forge
// arbitrary values, so every replica must validate before trusting a batch;
// a decode error marks the value as not safely interpretable as a batch.
func DecodeBatch(v model.Value) ([]model.Value, error) {
	s := string(v)
	if !strings.HasPrefix(s, batchMagic) {
		return nil, fmt.Errorf("%w: missing magic", ErrBatchMalformed)
	}
	if len(s) > MaxBatchBytes {
		return nil, fmt.Errorf("%w: %d bytes > %d", ErrBatchTooLarge, len(s), MaxBatchBytes)
	}
	rest := s[len(batchMagic):]
	count, rest, err := parseInt(rest, ';')
	if err != nil {
		return nil, err
	}
	if count <= 0 || count > MaxBatchSize {
		return nil, fmt.Errorf("%w: count %d", ErrBatchTooLarge, count)
	}
	cmds := make([]model.Value, 0, count)
	seen := make(map[model.Value]bool, count)
	for i := 0; i < count; i++ {
		var n int
		n, rest, err = parseInt(rest, ':')
		if err != nil {
			return nil, err
		}
		if n <= 0 || n > len(rest) {
			return nil, fmt.Errorf("%w: entry %d length %d", ErrBatchMalformed, i, n)
		}
		cmd := model.Value(rest[:n])
		rest = rest[n:]
		if cmd == NoOp || IsBatch(cmd) || seen[cmd] {
			return nil, fmt.Errorf("%w: inadmissible entry %q", ErrBatchMalformed, cmd)
		}
		seen[cmd] = true
		cmds = append(cmds, cmd)
	}
	if rest != "" {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBatchMalformed, len(rest))
	}
	return cmds, nil
}

// Commands returns the command sequence a decided value stands for: the
// decoded commands of a valid batch, or the value itself as a singleton.
// An invalid batch-prefixed value (a Byzantine proposal that slipped past
// the chooser because FLV locked it) degrades to a singleton too: every
// replica makes the same deterministic call, and the application layer
// rejects the opaque command (e.g. kv.Apply answers ERR), so consistency
// is preserved.
func Commands(v model.Value) []model.Value {
	if IsBatch(v) {
		if cmds, err := DecodeBatch(v); err == nil {
			return cmds
		}
	}
	return []model.Value{v}
}

// BatchWeight ranks a vote for the batch-aware chooser: the number of
// commands the value would commit. Valid batches weigh their length, plain
// commands weigh 1, and NoOp, null votes and invalid batches weigh 0.
func BatchWeight(v model.Value) int {
	if v == model.NoValue || v == NoOp {
		return 0
	}
	if IsBatch(v) {
		cmds, err := DecodeBatch(v)
		if err != nil {
			return 0
		}
		return len(cmds)
	}
	return 1
}

// parseInt reads an ASCII decimal prefix terminated by sep. It rejects
// empty digits, leading zeros (non-canonical encodings must not survive)
// and overflow-sized numbers.
func parseInt(s string, sep byte) (int, string, error) {
	i := 0
	n := 0
	for ; i < len(s); i++ {
		c := s[i]
		if c == sep {
			break
		}
		if c < '0' || c > '9' {
			return 0, "", fmt.Errorf("%w: bad digit %q", ErrBatchMalformed, c)
		}
		n = n*10 + int(c-'0')
		if n > MaxBatchBytes {
			return 0, "", fmt.Errorf("%w: number too large", ErrBatchTooLarge)
		}
	}
	if i == 0 || i >= len(s) {
		return 0, "", fmt.Errorf("%w: missing number or separator", ErrBatchMalformed)
	}
	if s[0] == '0' && i > 1 {
		return 0, "", fmt.Errorf("%w: non-canonical leading zero", ErrBatchMalformed)
	}
	return n, s[i+1:], nil
}
