package smr

import (
	"sync"

	"genconsensus/internal/model"
)

// CommitQueue is the in-order commit discipline for one replica driven by a
// real (transport-backed) pipelined dispatcher: proposals claim disjoint
// slices of the pending queue, decisions may be delivered out of instance
// order, and commits are applied strictly in instance order. It is the
// runtime counterpart of the bookkeeping Pipeline does for the simulator
// (Pipeline's version stays separate: it commits at every replica of a
// Cluster and is entangled with engine stepping and tick stats), shared by
// cmd/kvnode and the transport tests.
//
// Claim accounting is a liveness-first heuristic: a committed instance
// releases exactly the claim it took, even when the decided batch (possibly
// a peer's, or a Byzantine winner) removed a different number of commands
// from the local queue. Releasing the original claim guarantees the offset
// returns to zero once the window drains, so no pending command can starve
// behind a stale claim; the price is transient duplicate proposals when
// queues diverge across replicas, which is safe — duplicate log entries are
// deduplicated by the state machine's request ids (see
// TestClusterDeduplication).
type CommitQueue struct {
	replica *Replica
	// onCommit observes each applied instance (logging, transport buffer
	// release). Called in instance order, under the queue lock.
	onCommit func(instance uint64, decided model.Value, resps []string)

	mu         sync.Mutex
	nextCommit uint64
	claimed    int
	claims     map[uint64]int
	decisions  map[uint64]model.Value
}

// NewCommitQueue builds the queue; firstInstance is the next instance
// number expected to commit. onCommit may be nil.
func NewCommitQueue(r *Replica, firstInstance uint64, onCommit func(uint64, model.Value, []string)) *CommitQueue {
	return &CommitQueue{
		replica:    r,
		onCommit:   onCommit,
		nextCommit: firstInstance,
		claims:     make(map[uint64]int),
		decisions:  make(map[uint64]model.Value),
	}
}

// Claim builds instance's proposal from the first unclaimed queue slice
// (Replica.ProposalAt with the current claim offset) and records its claim.
// limit ≤ 0 uses the replica's own sizing.
func (q *CommitQueue) Claim(instance uint64, limit int) model.Value {
	q.mu.Lock()
	defer q.mu.Unlock()
	proposal, claim := q.replica.ProposalAt(q.claimed, limit)
	q.claimed += claim
	q.claims[instance] = claim
	return proposal
}

// Unclaimed reports how much of the pending queue no in-flight instance
// has claimed — the dispatcher's "is there work for one more instance"
// signal.
func (q *CommitQueue) Unclaimed() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.replica.PendingLen() - q.claimed
	if n < 0 {
		return 0
	}
	return n
}

// Deliver hands in one instance's decision and flushes the in-order
// prefix: each consecutive instance from nextCommit on whose decision has
// arrived is committed to the replica, reported to onCommit and has its
// claim released. Later decisions stay buffered until the gap fills. It
// returns the number of instances committed by this call.
func (q *CommitQueue) Deliver(instance uint64, decided model.Value) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.decisions[instance] = decided
	committed := 0
	for {
		v, ok := q.decisions[q.nextCommit]
		if !ok {
			return committed
		}
		delete(q.decisions, q.nextCommit)
		resps := q.replica.Commit(v)
		if q.onCommit != nil {
			q.onCommit(q.nextCommit, v, resps)
		}
		q.claimed -= q.claims[q.nextCommit]
		if q.claimed < 0 {
			q.claimed = 0
		}
		delete(q.claims, q.nextCommit)
		q.nextCommit++
		committed++
	}
}
