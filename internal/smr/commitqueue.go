package smr

import (
	"sync"
	"time"

	"genconsensus/internal/model"
)

// CommitQueue is the in-order commit discipline for one replica driven by a
// real (transport-backed) pipelined dispatcher: proposals claim disjoint
// slices of the pending queue, decisions may be delivered out of instance
// order, and commits are applied strictly in instance order. It is the
// runtime counterpart of the bookkeeping Pipeline does for the simulator
// (Pipeline's version stays separate: it commits at every replica of a
// Cluster and is entangled with engine stepping and tick stats), shared by
// cmd/kvnode and the transport tests.
//
// Claim accounting is a liveness-first heuristic: a committed instance
// releases exactly the claim it took, even when the decided batch (possibly
// a peer's, or a Byzantine winner) removed a different number of commands
// from the local queue. Releasing the original claim guarantees the offset
// returns to zero once the window drains, so no pending command can starve
// behind a stale claim; the price is transient duplicate proposals when
// queues diverge across replicas, which is safe — duplicate log entries are
// deduplicated by the state machine's request ids (see
// TestClusterDeduplication).
type CommitQueue struct {
	replica *Replica
	// onCommit observes each applied instance (logging, transport buffer
	// release). Called in instance order, under the queue lock.
	onCommit func(instance uint64, decided model.Value, resps []string)

	mu         sync.Mutex
	nextCommit uint64
	claimed    int
	claims     map[uint64]int
	decisions  map[uint64]model.Value
	// appliedCh is closed and replaced whenever the commit watermark
	// advances — a broadcast that WaitApplied parks on. Go's sync.Cond has
	// no deadline-bounded wait, so the close-a-channel idiom stands in.
	appliedCh chan struct{}
}

// NewCommitQueue builds the queue; firstInstance is the next instance
// number expected to commit. onCommit may be nil.
func NewCommitQueue(r *Replica, firstInstance uint64, onCommit func(uint64, model.Value, []string)) *CommitQueue {
	return &CommitQueue{
		replica:    r,
		onCommit:   onCommit,
		nextCommit: firstInstance,
		claims:     make(map[uint64]int),
		decisions:  make(map[uint64]model.Value),
		appliedCh:  make(chan struct{}),
	}
}

// Claim builds instance's proposal from the first unclaimed queue slice
// (Replica.ProposalAt with the current claim offset) and records its claim.
// limit ≤ 0 uses the replica's own sizing. Claiming an instance at or below
// the commit watermark (possible after a snapshot fast-forward raced the
// dispatcher) yields NoOp and records nothing: the instance is finished
// business and must not own queue positions that could never be released.
func (q *CommitQueue) Claim(instance uint64, limit int) model.Value {
	q.mu.Lock()
	defer q.mu.Unlock()
	if instance < q.nextCommit {
		return NoOp
	}
	proposal, claim := q.replica.ProposalAt(q.claimed, limit)
	q.claimed += claim
	q.claims[instance] = claim
	return proposal
}

// NextCommit reports the next instance number expected to commit (the
// commit watermark).
func (q *CommitQueue) NextCommit() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.nextCommit
}

// Unclaimed reports how much of the pending queue no in-flight instance
// has claimed — the dispatcher's "is there work for one more instance"
// signal.
func (q *CommitQueue) Unclaimed() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.replica.PendingLen() - q.claimed
	if n < 0 {
		return 0
	}
	return n
}

// Deliver hands in one instance's decision and flushes the in-order
// prefix: each consecutive instance from nextCommit on whose decision has
// arrived is committed to the replica, reported to onCommit and has its
// claim released. Later decisions stay buffered until the gap fills. It
// returns the number of instances committed by this call.
//
// A decision at or below the watermark — a duplicate delivery, or a
// straggler for an instance a snapshot install already covered — is
// dropped: committing it again would double-apply, and releasing its claim
// again would corrupt the offset.
//
// Durability happens here, not at apply time: with a storage backend
// installed the decision is appended to the write-ahead log the moment it
// is delivered — even when it must buffer behind a gap — so a replica that
// finished an instance has it durably whether or not the in-order commit
// reached it yet. That is what lets a whole-cluster power cycle recover
// the pipeline's out-of-order frontier instead of only the committed
// prefix.
func (q *CommitQueue) Deliver(instance uint64, decided model.Value) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if instance < q.nextCommit {
		return 0
	}
	q.replica.LogDecision(instance, decided)
	q.decisions[instance] = decided
	return q.flushLocked()
}

// flushLocked commits every consecutive buffered decision from the
// watermark on. Callers hold q.mu.
func (q *CommitQueue) flushLocked() int {
	committed := 0
	for {
		v, ok := q.decisions[q.nextCommit]
		if !ok {
			if committed > 0 {
				q.broadcastLocked()
			}
			return committed
		}
		delete(q.decisions, q.nextCommit)
		resps := q.replica.Commit(v)
		if q.onCommit != nil {
			q.onCommit(q.nextCommit, v, resps)
		}
		q.claimed -= q.claims[q.nextCommit]
		if q.claimed < 0 {
			q.claimed = 0
		}
		delete(q.claims, q.nextCommit)
		q.nextCommit++
		committed++
	}
}

// InstallSnapshot fast-forwards the queue past instances a verified
// snapshot covers: install (which must replace the replica's state —
// typically SnapshotManager.Install) runs under the queue lock so no
// commit can interleave with the state swap, then buffered decisions and
// claims below nextInstance are dropped, the claim offset is rebuilt from
// the surviving claims, and the watermark jumps to nextInstance. Decisions
// already buffered at or above nextInstance flush if now consecutive.
//
// It returns false — without calling install — when the watermark is
// already at or past nextInstance (a racing resync beat us to it).
func (q *CommitQueue) InstallSnapshot(nextInstance uint64, install func() error) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if nextInstance <= q.nextCommit {
		return false, nil
	}
	if install != nil {
		if err := install(); err != nil {
			return false, err
		}
	}
	for inst := range q.decisions {
		if inst < nextInstance {
			delete(q.decisions, inst)
		}
	}
	q.claimed = 0
	for inst, claim := range q.claims {
		if inst < nextInstance {
			delete(q.claims, inst)
			continue
		}
		q.claimed += claim
	}
	q.nextCommit = nextInstance
	if q.flushLocked() == 0 {
		// flushLocked only broadcasts when it commits; the snapshot jump
		// itself moved the watermark, so wake waiters regardless.
		q.broadcastLocked()
	}
	return true, nil
}

// broadcastLocked wakes every WaitApplied waiter. Callers hold q.mu.
func (q *CommitQueue) broadcastLocked() {
	close(q.appliedCh)
	q.appliedCh = make(chan struct{})
}

// ReadIndex reports the highest instance this replica knows has decided:
// the last committed instance, or the highest decision still buffered
// behind a gap (out-of-order deliveries, WAL replay frontier). It is the
// commit-queue half of a read-index capture — the node layer additionally
// folds in the transport's observed instance high, which covers decisions
// announced by peers that have not been delivered here yet. Zero means
// nothing is known decided.
func (q *CommitQueue) ReadIndex() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	var ri uint64
	if q.nextCommit > 0 {
		ri = q.nextCommit - 1
	}
	for inst := range q.decisions {
		if inst > ri {
			ri = inst
		}
	}
	return ri
}

// WaitApplied blocks until instance has been committed and applied (the
// watermark has passed it) or the deadline expires, reporting which. It is
// the read-index wait: capture an index, WaitApplied(index), then serve
// from local state. Instances below the watermark return true immediately
// without blocking, so waiting on an already-applied index is free.
func (q *CommitQueue) WaitApplied(instance uint64, deadline time.Time) bool {
	q.mu.Lock()
	if q.nextCommit > instance {
		q.mu.Unlock()
		return true
	}
	var timer *time.Timer
	for q.nextCommit <= instance {
		ch := q.appliedCh
		q.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			if timer != nil {
				timer.Stop()
			}
			return false
		}
		if timer == nil {
			timer = time.NewTimer(wait)
		} else {
			timer.Reset(wait)
		}
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return false
		}
		q.mu.Lock()
	}
	q.mu.Unlock()
	timer.Stop()
	return true
}
