package smr

import (
	"testing"

	"genconsensus/internal/model"
)

func mustBatch(t *testing.T, cmds ...model.Value) model.Value {
	t.Helper()
	b, err := EncodeBatch(cmds)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCommandChooser(t *testing.T) {
	c := CommandChooser{}
	if c.Name() != "choose/smr-batch" {
		t.Errorf("Name = %q", c.Name())
	}
	tests := []struct {
		name   string
		mu     model.Received
		want   model.Value
		wantOK bool
	}{
		{
			name: "prefers command over noop",
			mu: model.Received{
				0: {Vote: NoOp}, 1: {Vote: NoOp}, 2: {Vote: "z-cmd"},
			},
			want: "z-cmd", wantOK: true,
		},
		{
			name: "smallest command wins",
			mu: model.Received{
				0: {Vote: "b-cmd"}, 1: {Vote: "a-cmd"}, 2: {Vote: NoOp},
			},
			want: "a-cmd", wantOK: true,
		},
		{
			name: "all noop falls back to noop",
			mu: model.Received{
				0: {Vote: NoOp}, 1: {Vote: NoOp},
			},
			want: NoOp, wantOK: true,
		},
		{
			name:   "empty vector chooses nothing",
			mu:     model.Received{},
			wantOK: false,
		},
		{
			name: "null votes ignored",
			mu: model.Received{
				0: {Vote: model.NoValue}, 1: {Vote: "cmd"},
			},
			want: "cmd", wantOK: true,
		},
		{
			name: "largest valid batch beats smaller batch and plain command",
			mu: model.Received{
				0: {Vote: mustBatch(t, "cmd-a", "cmd-b", "cmd-c")},
				1: {Vote: mustBatch(t, "cmd-a")},
				2: {Vote: "a-plain-command"},
				3: {Vote: NoOp},
			},
			want: mustBatch(t, "cmd-a", "cmd-b", "cmd-c"), wantOK: true,
		},
		{
			name: "equal-weight batches tie-break on smallest encoding",
			mu: model.Received{
				0: {Vote: mustBatch(t, "cmd-b", "cmd-c")},
				1: {Vote: mustBatch(t, "cmd-a", "cmd-b")},
			},
			want: mustBatch(t, "cmd-a", "cmd-b"), wantOK: true,
		},
		{
			name: "malformed batch is rejected in favour of a real command",
			mu: model.Received{
				0: {Vote: model.Value(batchMagic + "9999;3:abc")},
				1: {Vote: "real-command"},
			},
			want: "real-command", wantOK: true,
		},
		{
			name: "only junk batches and noops falls back to noop",
			mu: model.Received{
				0: {Vote: model.Value(batchMagic + "junk")},
				1: {Vote: NoOp},
			},
			want: NoOp, wantOK: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := c.Choose(tt.mu)
			if ok != tt.wantOK || (ok && got != tt.want) {
				t.Fatalf("Choose = (%q, %v), want (%q, %v)", got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

// CheckConsistency detects both divergence shapes: different lengths and
// different entries.
func TestCheckConsistencyDetectsDivergence(t *testing.T) {
	c := newKVClusterForDivergence(t)
	c.Submit(0, "r|SET|k|v")
	if _, err := c.RunInstance(); err != nil {
		t.Fatal(err)
	}
	// Corrupt replica 2's log length.
	c.Replica(2).Log.Append("extra")
	if err := c.CheckConsistency(); err == nil {
		t.Fatal("length divergence not detected")
	}
	// Repair lengths but corrupt an entry on replica 1.
	c.Replica(0).Log.Append("extra")
	c.Replica(1).Log.Append("DIFFERENT")
	c.Replica(3).Log.Append("extra")
	if err := c.CheckConsistency(); err == nil {
		t.Fatal("entry divergence not detected")
	}
}

func newKVClusterForDivergence(t *testing.T) *Cluster {
	t.Helper()
	return newKVCluster(t)
}

// Drain with no pending work is a no-op success.
func TestDrainIdle(t *testing.T) {
	c := newKVCluster(t)
	if err := c.Drain(5); err != nil {
		t.Fatalf("idle Drain: %v", err)
	}
	if c.Replica(0).Log.Len() != 0 {
		t.Error("idle Drain ran instances")
	}
}

// RunInstance propagates engine construction failures (e.g. a params
// mutation making the config invalid).
func TestRunInstanceBadParams(t *testing.T) {
	c := newKVCluster(t)
	c.params.FLV = nil
	if _, err := c.RunInstance(); err == nil {
		t.Fatal("invalid params accepted")
	}
}
