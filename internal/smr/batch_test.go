package smr

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"genconsensus/internal/model"
)

func TestBatchRoundTrip(t *testing.T) {
	cmds := []model.Value{"r1|SET|k|v", "r2|DEL|k", "r3|SET|x|hello world"}
	batch, err := EncodeBatch(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBatch(batch) {
		t.Fatal("encoded batch not recognized")
	}
	got, err := DecodeBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cmds) {
		t.Fatalf("decoded %d commands, want %d", len(got), len(cmds))
	}
	for i := range cmds {
		if got[i] != cmds[i] {
			t.Fatalf("entry %d = %q, want %q", i, got[i], cmds[i])
		}
	}
}

// Property test: any sequence of admissible random commands round-trips
// through the codec, and the encoding is deterministic.
func TestBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20100628))
	alphabet := "abcdefghij KLMNOP|:;0123456789é世"
	randCmd := func() model.Value {
		n := 1 + rng.Intn(40)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return model.Value(b.String())
	}
	for run := 0; run < 200; run++ {
		count := 1 + rng.Intn(MaxBatchSize)
		seen := make(map[model.Value]bool, count)
		cmds := make([]model.Value, 0, count)
		for len(cmds) < count {
			c := randCmd()
			if c == NoOp || seen[c] {
				continue
			}
			seen[c] = true
			cmds = append(cmds, c)
		}
		batch, err := EncodeBatch(cmds)
		if err != nil {
			t.Fatalf("run %d: encode: %v", run, err)
		}
		again, err := EncodeBatch(cmds)
		if err != nil || again != batch {
			t.Fatalf("run %d: encoding not deterministic", run)
		}
		got, err := DecodeBatch(batch)
		if err != nil {
			t.Fatalf("run %d: decode: %v", run, err)
		}
		if len(got) != len(cmds) {
			t.Fatalf("run %d: %d commands decoded, want %d", run, len(got), len(cmds))
		}
		for i := range cmds {
			if got[i] != cmds[i] {
				t.Fatalf("run %d: entry %d = %q, want %q", run, i, got[i], cmds[i])
			}
		}
	}
}

// An empty batch cannot be encoded; the idle proposal is NoOp, never an
// empty batch, and the two are distinct values.
func TestBatchEmptyVsNoOp(t *testing.T) {
	if _, err := EncodeBatch(nil); !errors.Is(err, ErrBatchEmpty) {
		t.Errorf("EncodeBatch(nil) err = %v, want ErrBatchEmpty", err)
	}
	if _, err := EncodeBatch([]model.Value{}); !errors.Is(err, ErrBatchEmpty) {
		t.Errorf("EncodeBatch(empty) err = %v, want ErrBatchEmpty", err)
	}
	r := NewReplica(0, nil)
	if p := r.Proposal(); p != NoOp || IsBatch(p) {
		t.Errorf("idle proposal = %q, want plain NoOp", p)
	}
	if IsBatch(NoOp) {
		t.Error("NoOp must not look like a batch")
	}
	// A forged "batch of zero commands" is rejected on decode.
	if _, err := DecodeBatch(model.Value(batchMagic + "0;")); err == nil {
		t.Error("zero-count batch accepted")
	}
}

func TestBatchRejectsInadmissibleEntries(t *testing.T) {
	nested, err := EncodeBatch([]model.Value{"inner"})
	if err != nil {
		t.Fatal(err)
	}
	for name, cmds := range map[string][]model.Value{
		"noop entry":      {"a", NoOp},
		"empty entry":     {"a", model.NoValue},
		"nested batch":    {"a", nested},
		"duplicate entry": {"a", "b", "a"},
	} {
		if _, err := EncodeBatch(cmds); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBatchSizeLimits(t *testing.T) {
	tooMany := make([]model.Value, MaxBatchSize+1)
	for i := range tooMany {
		tooMany[i] = model.Value(fmt.Sprintf("cmd-%d", i))
	}
	if _, err := EncodeBatch(tooMany); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized count err = %v, want ErrBatchTooLarge", err)
	}
	huge := []model.Value{model.Value(strings.Repeat("x", MaxBatchBytes))}
	if _, err := EncodeBatch(huge); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized bytes err = %v, want ErrBatchTooLarge", err)
	}
}

// Byzantine-forged encodings must all be rejected by the strict decoder.
func TestBatchDecodeRejectsForgeries(t *testing.T) {
	good, err := EncodeBatch([]model.Value{"abc", "defg"})
	if err != nil {
		t.Fatal(err)
	}
	forgeries := map[string]model.Value{
		"no magic":          "3:abc",
		"count mismatch":    model.Value(batchMagic + "3;3:abc4:defg"),
		"trailing bytes":    good + "junk",
		"truncated entry":   good[:len(good)-1],
		"bad length digit":  model.Value(batchMagic + "1;x:abc"),
		"zero length":       model.Value(batchMagic + "1;0:"),
		"leading zero":      model.Value(batchMagic + "01;3:abc"),
		"huge count":        model.Value(batchMagic + "999999;3:abc"),
		"missing separator": model.Value(batchMagic + "1"),
		"noop inside":       model.Value(batchMagic + "1;8:__noop__"),
	}
	for name, v := range forgeries {
		if _, err := DecodeBatch(v); err == nil {
			t.Errorf("%s: forged batch %q accepted", name, v)
		}
		if w := BatchWeight(v); name != "no magic" && w != 0 {
			t.Errorf("%s: weight = %d, want 0", name, w)
		}
	}
	if _, err := DecodeBatch(good); err != nil {
		t.Fatalf("control: valid batch rejected: %v", err)
	}
}

func TestCommandsDegradesGracefully(t *testing.T) {
	// Plain command → singleton.
	if cmds := Commands("plain"); len(cmds) != 1 || cmds[0] != "plain" {
		t.Errorf("Commands(plain) = %v", cmds)
	}
	// Valid batch → decoded sequence.
	batch, _ := EncodeBatch([]model.Value{"a", "b"})
	if cmds := Commands(batch); len(cmds) != 2 {
		t.Errorf("Commands(batch) = %v", cmds)
	}
	// Invalid batch-prefixed value → opaque singleton (deterministic
	// everywhere, rejected by the application).
	junk := model.Value(batchMagic + "junk")
	if cmds := Commands(junk); len(cmds) != 1 || cmds[0] != junk {
		t.Errorf("Commands(junk) = %v", cmds)
	}
}

func TestBatchWeight(t *testing.T) {
	batch, _ := EncodeBatch([]model.Value{"a", "b", "c"})
	for _, tt := range []struct {
		v    model.Value
		want int
	}{
		{model.NoValue, 0},
		{NoOp, 0},
		{"plain", 1},
		{batch, 3},
		{model.Value(batchMagic + "junk"), 0},
	} {
		if got := BatchWeight(tt.v); got != tt.want {
			t.Errorf("BatchWeight(%q) = %d, want %d", tt.v, got, tt.want)
		}
	}
}
