package smr

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"genconsensus/internal/adversary"
	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
)

func pbftParams(n, b int) core.Params {
	return core.Params{
		N: n, B: b, F: 0, TD: 2*b + 1,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(n, b),
		Selector:   selector.NewAll(n),
		UseHistory: true,
	}
}

func newKVCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(pbftParams(4, 1), func(model.PID) StateMachine {
		return kv.NewStore()
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLogBasics(t *testing.T) {
	var l Log
	if l.Len() != 0 {
		t.Error("fresh log not empty")
	}
	l.Append("a")
	l.Append("b")
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
	if v, ok := l.Get(1); !ok || v != "b" {
		t.Errorf("Get(1) = %q, %v", v, ok)
	}
	if _, ok := l.Get(5); ok {
		t.Error("Get out of range reported ok")
	}
	if _, ok := l.Get(-1); ok {
		t.Error("Get(-1) reported ok")
	}
	snap := l.Entries()
	snap[0] = "mutated"
	if v, _ := l.Get(0); v != "a" {
		t.Error("Entries aliases the log")
	}
}

func TestReplicaQueue(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	if r.Proposal() != NoOp {
		t.Error("empty queue must propose NoOp")
	}
	cmd := kv.Command("r1", "SET", "k", "v")
	r.Submit(cmd)
	if cmds := Commands(r.Proposal()); len(cmds) != 1 || cmds[0] != cmd {
		t.Errorf("queued command must be proposed, got %v", cmds)
	}
	// Deciding another replica's command must not pop our queue.
	other := kv.Command("r2", "SET", "x", "y")
	r.Commit(other)
	if r.PendingLen() != 1 {
		t.Errorf("pending = %d, want 1", r.PendingLen())
	}
	// Deciding our head pops it.
	resp := r.Commit(cmd)
	if len(resp) != 1 || resp[0] != "OK" {
		t.Errorf("Apply responses = %v", resp)
	}
	if r.PendingLen() != 0 {
		t.Errorf("pending = %d, want 0", r.PendingLen())
	}
	if r.Log.Len() != 2 {
		t.Errorf("log length = %d, want 2", r.Log.Len())
	}
	// NoOp commits append but do not touch the state machine.
	if resp := r.Commit(NoOp); len(resp) != 1 || resp[0] != "" {
		t.Errorf("NoOp responses = %v", resp)
	}
}

// Proposal batches the whole queue (up to the bound) and Commit applies a
// decided batch command-by-command, in order.
func TestReplicaBatchedProposal(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	var cmds []model.Value
	for i := 0; i < 5; i++ {
		c := kv.Command(fmt.Sprintf("r%d", i), "SET", "k", fmt.Sprintf("v%d", i))
		cmds = append(cmds, c)
		r.Submit(c)
	}
	got, err := DecodeBatch(r.Proposal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("batch carries %d commands, want 5", len(got))
	}
	for i := range cmds {
		if got[i] != cmds[i] {
			t.Fatalf("batch[%d] = %q, want %q (queue order must be preserved)", i, got[i], cmds[i])
		}
	}
	// A batch bound of 2 proposes only the head of the queue.
	r.SetMaxBatch(2)
	if got, err = DecodeBatch(r.Proposal()); err != nil || len(got) != 2 {
		t.Fatalf("bounded batch = %v (err %v), want the first 2 commands", got, err)
	}
	// Committing the full batch drains the queue and applies in order.
	batch, err := EncodeBatch(cmds)
	if err != nil {
		t.Fatal(err)
	}
	resps := r.Commit(batch)
	if len(resps) != 5 {
		t.Fatalf("%d responses, want 5", len(resps))
	}
	if r.PendingLen() != 0 {
		t.Errorf("pending = %d after batch commit", r.PendingLen())
	}
	if r.Log.Len() != 5 {
		t.Errorf("log length = %d, want 5 individual entries", r.Log.Len())
	}
	if v, _ := r.SM.(*kv.Store).Get("k"); v != "v4" {
		t.Errorf("k = %q, want the last command's value", v)
	}
}

// Submitting an already-queued command is a no-op: honest batches never
// contain duplicates.
func TestReplicaSubmitDeduplicates(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	cmd := kv.Command("r1", "SET", "k", "v")
	r.Submit(cmd)
	r.Submit(cmd)
	if r.PendingLen() != 1 {
		t.Fatalf("pending = %d, want 1", r.PendingLen())
	}
	// A command decided and removed may be legitimately re-queued later (a
	// client retry after commit); the state machine dedups by request id.
	r.Commit(cmd)
	r.Submit(cmd)
	if r.PendingLen() != 1 {
		t.Fatalf("pending after re-submit = %d, want 1", r.PendingLen())
	}
}

// Inadmissible client commands are dropped at Submit: a value that parses
// as a batch (or NoOp, or an oversized blob) must never reach the queue,
// where it would wedge the proposal path forever.
func TestReplicaSubmitRejectsInadmissible(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	poisoned, err := EncodeBatch([]model.Value{"inner"})
	if err != nil {
		t.Fatal(err)
	}
	for name, cmd := range map[string]model.Value{
		"batch-prefixed": poisoned,
		"forged magic":   model.Value(batchMagic + "junk"),
		"noop":           NoOp,
		"empty":          model.NoValue,
		"oversized":      model.Value(strings.Repeat("x", MaxBatchBytes)),
	} {
		r.Submit(cmd)
		if r.PendingLen() != 0 {
			t.Fatalf("%s: command admitted to the queue", name)
		}
	}
	// The cluster path stays live even when a client injects poison before
	// real traffic.
	c := newKVCluster(t)
	c.Submit(0, model.Value(batchMagic+"wedge"))
	good := kv.Command("r1", "SET", "k", "v")
	c.Submit(0, good)
	if err := c.Drain(10); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Replica(0).SM.(*kv.Store).Get("k"); v != "v" {
		t.Fatalf("k = %q, want %q", v, "v")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(core.Params{}, func(model.PID) StateMachine {
		return kv.NewStore()
	}, 0); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestClusterSingleCommand(t *testing.T) {
	c := newKVCluster(t)
	cmd := kv.Command("req-1", "SET", "color", "green")
	c.Submit(0, cmd)
	decided, err := c.RunInstance()
	if err != nil {
		t.Fatal(err)
	}
	if cmds := Commands(decided); len(cmds) != 1 || cmds[0] != cmd {
		t.Fatalf("decided %v, want the submitted command", cmds)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		store := c.Replica(model.PID(i)).SM.(*kv.Store)
		if v, ok := store.Get("color"); !ok || v != "green" {
			t.Fatalf("replica %d: color = %q, %v", i, v, ok)
		}
	}
}

func TestClusterDrain(t *testing.T) {
	c := newKVCluster(t)
	for i := 0; i < 5; i++ {
		cmd := kv.Command(fmt.Sprintf("req-%d", i), "SET", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		c.Submit(model.PID(i%4), cmd)
	}
	if err := c.Drain(40); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	store := c.Replica(2).SM.(*kv.Store)
	for i := 0; i < 5; i++ {
		if v, ok := store.Get(fmt.Sprintf("k%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q, %v", i, v, ok)
		}
	}
	if c.PendingTotal() != 0 {
		t.Errorf("pending = %d", c.PendingTotal())
	}
}

// Competing proposals: one instance decides exactly one of them; drain gets
// both in eventually, in the same order everywhere.
func TestClusterCompetingProposals(t *testing.T) {
	c := newKVCluster(t)
	cmdA := kv.Command("req-a", "SET", "k", "fromA")
	cmdB := kv.Command("req-b", "SET", "k", "fromB")
	c.Submit(0, cmdA)
	c.Submit(3, cmdB)
	if err := c.Drain(40); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The later log entry wins the key.
	log := c.Replica(0).Log.Entries()
	var last model.Value
	for _, e := range log {
		if e == cmdA || e == cmdB {
			last = e
		}
	}
	_, _, _, wantVal, err := kv.Parse(last)
	if err != nil {
		t.Fatal(err)
	}
	store := c.Replica(1).SM.(*kv.Store)
	if v, _ := store.Get("k"); v != wantVal {
		t.Fatalf("k = %q, want %q (last decided)", v, wantVal)
	}
}

// Duplicate submissions (client retries) are applied once.
func TestClusterDeduplication(t *testing.T) {
	c := newKVCluster(t)
	cmd := kv.Command("dup-req", "SET", "count", "1")
	c.Submit(0, cmd)
	c.Submit(1, cmd)
	if err := c.Drain(40); err != nil {
		t.Fatal(err)
	}
	store := c.Replica(0).SM.(*kv.Store)
	if v, _ := store.Get("count"); v != "1" {
		t.Fatalf("count = %q", v)
	}
	// The log may contain the command twice; the state machine dedups.
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainGivesUp(t *testing.T) {
	c := newKVCluster(t)
	c.Submit(0, kv.Command("r", "SET", "k", "v"))
	// Zero instances allowed: must report pending work.
	if err := c.Drain(0); err == nil {
		t.Fatal("Drain(0) with pending work must fail")
	}
}

func TestErrorsExported(t *testing.T) {
	if !errors.Is(fmt.Errorf("wrap: %w", ErrDiverged), ErrDiverged) {
		t.Error("ErrDiverged must support errors.Is")
	}
}

// A batched cluster drains k commands in ~k/batch instances, not k.
func TestClusterBatchedDrain(t *testing.T) {
	c := newKVCluster(t)
	c.SetBatchSize(8)
	const k = 40
	for i := 0; i < k; i++ {
		c.Submit(0, kv.Command(fmt.Sprintf("req-%d", i), "SET", fmt.Sprintf("k%d", i), "v"))
	}
	instances := 0
	for c.PendingTotal() > 0 {
		if _, err := c.RunInstance(); err != nil {
			t.Fatal(err)
		}
		if instances++; instances > k {
			t.Fatal("runaway instance loop")
		}
	}
	if instances > k/8+1 {
		t.Errorf("%d commands took %d instances at batch size 8", k, instances)
	}
	if got := c.Replica(0).Log.Len(); got != k {
		t.Errorf("log length = %d, want %d individual entries", got, k)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	store := c.Replica(3).SM.(*kv.Store)
	if store.Len() != k {
		t.Errorf("store has %d keys, want %d", store.Len(), k)
	}
}

// A Byzantine member cannot break log consistency or starve the batched
// pipeline: live replicas drain and agree.
func TestClusterByzantineMember(t *testing.T) {
	c := newKVCluster(t)
	c.SetBatchSize(4)
	if err := c.SetByzantine(3, adversary.Equivocate{A: "evil-a", B: "evil-b"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		c.Submit(0, kv.Command(fmt.Sprintf("req-%d", i), "SET", fmt.Sprintf("k%d", i), "v"))
	}
	if err := c.Drain(40); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	ref := c.Replica(0).SM.(*kv.Store).Snapshot()
	for i := 1; i < 3; i++ {
		got := c.Replica(model.PID(i)).SM.(*kv.Store).Snapshot()
		if len(got) != len(ref) {
			t.Fatalf("replica %d store size %d != %d", i, len(got), len(ref))
		}
	}
}

// A crashed member freezes as a prefix while the rest of the cluster keeps
// deciding (class-3 parameterization with f = 1).
func TestClusterCrashedMember(t *testing.T) {
	params := core.Params{
		N: 6, B: 1, F: 1, TD: 4,
		Flag:       model.FlagPhase,
		FLV:        flv.NewClass3(6, 4, 1, false),
		Selector:   selector.NewAll(6),
		UseHistory: true,
	}
	c, err := NewCluster(params, func(model.PID) StateMachine { return kv.NewStore() }, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBatchSize(4)
	c.Submit(0, kv.Command("before", "SET", "a", "1"))
	if _, err := c.RunInstance(); err != nil {
		t.Fatal(err)
	}
	frozen := c.Replica(2).Log.Len()
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		c.Submit(0, kv.Command(fmt.Sprintf("after-%d", i), "SET", "b", fmt.Sprintf("%d", i)))
	}
	if err := c.Drain(40); err != nil {
		t.Fatal(err)
	}
	if got := c.Replica(2).Log.Len(); got != frozen {
		t.Errorf("crashed member's log grew: %d → %d", frozen, got)
	}
	if c.Replica(0).Log.Len() <= frozen {
		t.Error("live members did not keep deciding")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Fault injection respects the parameterization's budgets.
func TestClusterFaultBudget(t *testing.T) {
	c := newKVCluster(t) // n=4, b=1, f=0
	if err := c.SetByzantine(3, adversary.Silent{}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetByzantine(2, adversary.Silent{}); !errors.Is(err, ErrFaultBudget) {
		t.Errorf("second Byzantine member err = %v, want ErrFaultBudget", err)
	}
	if err := c.Crash(0); !errors.Is(err, ErrFaultBudget) {
		t.Errorf("crash with f=0 err = %v, want ErrFaultBudget", err)
	}
	if err := c.Crash(3); err == nil {
		t.Error("crashing a Byzantine member accepted")
	}
	if err := c.SetByzantine(7, adversary.Silent{}); err == nil {
		t.Error("out-of-range member accepted")
	}
}

// AppendBatch appends a whole decided batch under one lock acquisition and
// preserves order against Append.
func TestLogAppendBatch(t *testing.T) {
	var l Log
	l.AppendBatch(nil) // no-op
	if l.Len() != 0 {
		t.Error("empty AppendBatch grew the log")
	}
	l.Append("a")
	l.AppendBatch([]model.Value{"b", "c", "d"})
	l.Append("e")
	want := []model.Value{"a", "b", "c", "d", "e"}
	got := l.Entries()
	if len(got) != len(want) {
		t.Fatalf("log = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// ProposalAt slices the queue at an offset: the pipeline's disjoint
// assignment of pending commands to in-flight instances.
func TestReplicaProposalAt(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	var cmds []model.Value
	for i := 0; i < 6; i++ {
		c := kv.Command(fmt.Sprintf("r%d", i), "SET", "k", fmt.Sprintf("v%d", i))
		cmds = append(cmds, c)
		r.Submit(c)
	}
	// Slice [2, 2+2): the second window slot at batch 2.
	v, claim := r.ProposalAt(2, 2)
	if claim != 2 {
		t.Fatalf("claim = %d, want 2", claim)
	}
	got, err := DecodeBatch(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != cmds[2] || got[1] != cmds[3] {
		t.Fatalf("slice = %v, want commands 2..3", got)
	}
	// Beyond the queue: NoOp, no claim.
	if v, claim := r.ProposalAt(6, 2); v != NoOp || claim != 0 {
		t.Errorf("past-end proposal = %q claim %d, want NoOp/0", v, claim)
	}
	// Negative skip clamps to the head; limit 0 means replica sizing.
	r.SetMaxBatch(3)
	v, claim = r.ProposalAt(-1, 0)
	if claim != 3 {
		t.Fatalf("claim with maxBatch 3 = %d", claim)
	}
	if got, _ := DecodeBatch(v); got[0] != cmds[0] {
		t.Errorf("negative skip did not clamp to the head")
	}
	// An installed sizer overrides the static bound (still capped by it).
	r.SetBatchSizer(NewAdaptiveBatch(AdaptiveConfig{MaxBatch: 2, MaxDepth: 1}))
	if _, claim := r.ProposalAt(0, 0); claim != 2 {
		t.Errorf("sizer-driven claim = %d, want 2", claim)
	}
	r.SetBatchSizer(nil)
	if _, claim := r.ProposalAt(0, 0); claim != 3 {
		t.Errorf("claim after sizer removal = %d, want 3", claim)
	}
	// Proposal() is the skip-0 shorthand.
	if v2 := r.Proposal(); v2 != v {
		t.Errorf("Proposal() != ProposalAt(0, ...)")
	}
}

// CommitQueue serializes out-of-order decision delivery into in-order
// commits with claim accounting — the transport-side counterpart of the
// Pipeline's commit discipline.
func TestCommitQueueInOrder(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	var cmds []model.Value
	for i := 0; i < 4; i++ {
		c := kv.Command(fmt.Sprintf("q%d", i), "SET", fmt.Sprintf("qk%d", i), "v")
		cmds = append(cmds, c)
		r.Submit(c)
	}
	var committed []uint64
	q := NewCommitQueue(r, 1, func(instance uint64, _ model.Value, _ []string) {
		committed = append(committed, instance)
	})
	p1 := q.Claim(1, 2)
	p2 := q.Claim(2, 2)
	if q.Unclaimed() != 0 {
		t.Fatalf("Unclaimed = %d with the whole queue claimed", q.Unclaimed())
	}
	// The slices are disjoint.
	b1, err1 := DecodeBatch(p1)
	b2, err2 := DecodeBatch(p2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b1[0] != cmds[0] || b2[0] != cmds[2] {
		t.Fatalf("claims overlap: %v / %v", b1, b2)
	}
	// Instance 2's decision arrives first: buffered, nothing committed.
	if got := q.Deliver(2, p2); got != 0 {
		t.Fatalf("Deliver(2) committed %d instances early", got)
	}
	if r.Log.Len() != 0 {
		t.Fatal("out-of-order decision reached the log")
	}
	// Instance 1 arrives: both flush, in order, claims released.
	if got := q.Deliver(1, p1); got != 2 {
		t.Fatalf("Deliver(1) committed %d instances, want 2", got)
	}
	if len(committed) != 2 || committed[0] != 1 || committed[1] != 2 {
		t.Fatalf("commit order = %v", committed)
	}
	if r.Log.Len() != 4 {
		t.Fatalf("log length = %d, want 4", r.Log.Len())
	}
	if head, _ := r.Log.Get(0); head != cmds[0] {
		t.Fatalf("log[0] = %q, want instance 1's slice first", head)
	}
	if q.Unclaimed() != 0 || r.PendingLen() != 0 {
		t.Errorf("queue not drained: unclaimed %d, pending %d", q.Unclaimed(), r.PendingLen())
	}
	// A NoOp decision for a claimed-empty instance releases its (zero)
	// claim without touching the state machine.
	q.Claim(3, 2)
	if got := q.Deliver(3, NoOp); got != 1 {
		t.Fatalf("NoOp delivery committed %d", got)
	}
	if r.Log.Len() != 5 {
		t.Errorf("NoOp not appended: log length %d", r.Log.Len())
	}
}
