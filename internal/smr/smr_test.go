package smr

import (
	"errors"
	"fmt"
	"testing"

	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/kv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
)

func pbftParams(n, b int) core.Params {
	return core.Params{
		N: n, B: b, F: 0, TD: 2*b + 1,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(n, b),
		Selector:   selector.NewAll(n),
		UseHistory: true,
	}
}

func newKVCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(pbftParams(4, 1), func(model.PID) StateMachine {
		return kv.NewStore()
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLogBasics(t *testing.T) {
	var l Log
	if l.Len() != 0 {
		t.Error("fresh log not empty")
	}
	l.Append("a")
	l.Append("b")
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
	if v, ok := l.Get(1); !ok || v != "b" {
		t.Errorf("Get(1) = %q, %v", v, ok)
	}
	if _, ok := l.Get(5); ok {
		t.Error("Get out of range reported ok")
	}
	if _, ok := l.Get(-1); ok {
		t.Error("Get(-1) reported ok")
	}
	snap := l.Snapshot()
	snap[0] = "mutated"
	if v, _ := l.Get(0); v != "a" {
		t.Error("Snapshot aliases the log")
	}
}

func TestReplicaQueue(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	if r.Proposal() != NoOp {
		t.Error("empty queue must propose NoOp")
	}
	cmd := kv.Command("r1", "SET", "k", "v")
	r.Submit(cmd)
	if r.Proposal() != cmd {
		t.Error("head of queue must be proposed")
	}
	// Deciding another replica's command must not pop our queue.
	other := kv.Command("r2", "SET", "x", "y")
	r.Commit(other)
	if r.PendingLen() != 1 {
		t.Errorf("pending = %d, want 1", r.PendingLen())
	}
	// Deciding our head pops it.
	resp := r.Commit(cmd)
	if resp != "OK" {
		t.Errorf("Apply response = %q", resp)
	}
	if r.PendingLen() != 0 {
		t.Errorf("pending = %d, want 0", r.PendingLen())
	}
	if r.Log.Len() != 2 {
		t.Errorf("log length = %d, want 2", r.Log.Len())
	}
	// NoOp commits append but do not touch the state machine.
	if resp := r.Commit(NoOp); resp != "" {
		t.Errorf("NoOp response = %q", resp)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(core.Params{}, func(model.PID) StateMachine {
		return kv.NewStore()
	}, 0); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestClusterSingleCommand(t *testing.T) {
	c := newKVCluster(t)
	cmd := kv.Command("req-1", "SET", "color", "green")
	c.Submit(0, cmd)
	decided, err := c.RunInstance()
	if err != nil {
		t.Fatal(err)
	}
	if decided != cmd {
		t.Fatalf("decided %q, want the submitted command", decided)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		store := c.Replica(model.PID(i)).SM.(*kv.Store)
		if v, ok := store.Get("color"); !ok || v != "green" {
			t.Fatalf("replica %d: color = %q, %v", i, v, ok)
		}
	}
}

func TestClusterDrain(t *testing.T) {
	c := newKVCluster(t)
	for i := 0; i < 5; i++ {
		cmd := kv.Command(fmt.Sprintf("req-%d", i), "SET", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		c.Submit(model.PID(i%4), cmd)
	}
	if err := c.Drain(40); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	store := c.Replica(2).SM.(*kv.Store)
	for i := 0; i < 5; i++ {
		if v, ok := store.Get(fmt.Sprintf("k%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q, %v", i, v, ok)
		}
	}
	if c.PendingTotal() != 0 {
		t.Errorf("pending = %d", c.PendingTotal())
	}
}

// Competing proposals: one instance decides exactly one of them; drain gets
// both in eventually, in the same order everywhere.
func TestClusterCompetingProposals(t *testing.T) {
	c := newKVCluster(t)
	cmdA := kv.Command("req-a", "SET", "k", "fromA")
	cmdB := kv.Command("req-b", "SET", "k", "fromB")
	c.Submit(0, cmdA)
	c.Submit(3, cmdB)
	if err := c.Drain(40); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The later log entry wins the key.
	log := c.Replica(0).Log.Snapshot()
	var last model.Value
	for _, e := range log {
		if e == cmdA || e == cmdB {
			last = e
		}
	}
	_, _, _, wantVal, err := kv.Parse(last)
	if err != nil {
		t.Fatal(err)
	}
	store := c.Replica(1).SM.(*kv.Store)
	if v, _ := store.Get("k"); v != wantVal {
		t.Fatalf("k = %q, want %q (last decided)", v, wantVal)
	}
}

// Duplicate submissions (client retries) are applied once.
func TestClusterDeduplication(t *testing.T) {
	c := newKVCluster(t)
	cmd := kv.Command("dup-req", "SET", "count", "1")
	c.Submit(0, cmd)
	c.Submit(1, cmd)
	if err := c.Drain(40); err != nil {
		t.Fatal(err)
	}
	store := c.Replica(0).SM.(*kv.Store)
	if v, _ := store.Get("count"); v != "1" {
		t.Fatalf("count = %q", v)
	}
	// The log may contain the command twice; the state machine dedups.
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainGivesUp(t *testing.T) {
	c := newKVCluster(t)
	c.Submit(0, kv.Command("r", "SET", "k", "v"))
	// Zero instances allowed: must report pending work.
	if err := c.Drain(0); err == nil {
		t.Fatal("Drain(0) with pending work must fail")
	}
}

func TestErrorsExported(t *testing.T) {
	if !errors.Is(fmt.Errorf("wrap: %w", ErrDiverged), ErrDiverged) {
		t.Error("ErrDiverged must support errors.Is")
	}
}
