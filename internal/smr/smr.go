// Package smr layers state-machine replication on top of the generic
// consensus algorithm: a sequence of consensus instances, each deciding the
// next command of a replicated log (§5.3: Paxos and PBFT "solve a sequence
// of instances of consensus"; §7: the framework the authors list as future
// work).
//
// The package is runtime-agnostic: Cluster drives instances through the
// in-memory simulator (one engine per instance), while the cmd/kvnode
// binary reuses Replica bookkeeping over the TCP transport.
package smr

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"genconsensus/internal/core"
	"genconsensus/internal/model"
	"genconsensus/internal/sim"
)

// NoOp is the command proposed by replicas with empty queues.
const NoOp = model.Value("__noop__")

// StateMachine is the deterministic application under replication.
// Implementations must be deterministic: identical command sequences yield
// identical states.
type StateMachine interface {
	// Apply executes a decided command and returns its response.
	Apply(cmd model.Value) string
}

// Log is a replica's decided-command sequence.
type Log struct {
	mu      sync.RWMutex
	entries []model.Value
}

// Append adds a decided command.
func (l *Log) Append(cmd model.Value) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, cmd)
}

// Len returns the number of decided commands.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Get returns the i-th decided command.
func (l *Log) Get(i int) (model.Value, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 || i >= len(l.entries) {
		return model.NoValue, false
	}
	return l.entries[i], true
}

// Snapshot copies the whole log.
func (l *Log) Snapshot() []model.Value {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]model.Value(nil), l.entries...)
}

// Replica is one member's SMR bookkeeping: a pending-command queue, the
// decided log and the application state machine.
type Replica struct {
	ID  model.PID
	SM  StateMachine
	Log *Log

	mu      sync.Mutex
	pending []model.Value
}

// NewReplica builds a replica around the given state machine.
func NewReplica(id model.PID, sm StateMachine) *Replica {
	return &Replica{ID: id, SM: sm, Log: &Log{}}
}

// Submit queues a client command for proposal.
func (r *Replica) Submit(cmd model.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pending = append(r.pending, cmd)
}

// Proposal returns the command the replica proposes for the next instance.
func (r *Replica) Proposal() model.Value {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pending) == 0 {
		return NoOp
	}
	return r.pending[0]
}

// Commit records a decided command: appends to the log, applies to the
// state machine (NoOp is skipped) and removes the first matching occurrence
// from the pending queue.
func (r *Replica) Commit(cmd model.Value) string {
	r.mu.Lock()
	for i, pending := range r.pending {
		if pending == cmd {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	r.Log.Append(cmd)
	if cmd == NoOp {
		return ""
	}
	return r.SM.Apply(cmd)
}

// PendingLen reports the queue length.
func (r *Replica) PendingLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Cluster is a simulation-backed SMR deployment: n replicas deciding a
// shared log through successive consensus instances.
type Cluster struct {
	params   core.Params
	replicas []*Replica
	instance uint64
	seed     int64
}

// Errors returned by the cluster.
var (
	ErrInstanceFailed = errors.New("smr: consensus instance did not decide")
	ErrDiverged       = errors.New("smr: replica logs diverged")
)

// CommandChooser is the line-11 choice rule for SMR instances: among the
// votes it prefers the smallest real command over NoOp, so that queued
// commands cannot be starved by NoOp proposals (NoOp sorts before most
// commands under the default minimum rule). Safety is unaffected: the
// chooser runs only when FLV returns "?" (any value may be selected).
type CommandChooser struct{}

// Choose implements core.Chooser.
func (CommandChooser) Choose(mu model.Received) (model.Value, bool) {
	best := model.NoValue
	for _, m := range mu {
		if m.Vote == model.NoValue || m.Vote == NoOp {
			continue
		}
		if best == model.NoValue || m.Vote < best {
			best = m.Vote
		}
	}
	if best != model.NoValue {
		return best, true
	}
	return mu.MinValue()
}

// Name implements core.Chooser.
func (CommandChooser) Name() string { return "choose/smr-command" }

// NewCluster builds n replicas over the given consensus parameterization.
// smFactory supplies each replica's state machine instance. The line-11
// chooser is replaced with CommandChooser (see its doc comment).
func NewCluster(params core.Params, smFactory func(model.PID) StateMachine, seed int64) (*Cluster, error) {
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("smr: %w", err)
	}
	params.Chooser = CommandChooser{}
	c := &Cluster{params: params, seed: seed}
	for _, p := range model.AllPIDs(params.N) {
		c.replicas = append(c.replicas, NewReplica(p, smFactory(p)))
	}
	return c, nil
}

// Replica returns replica p.
func (c *Cluster) Replica(p model.PID) *Replica { return c.replicas[p] }

// Submit delivers a client command following the PBFT client model: the
// client contacts every replica, so each one queues (and eventually
// proposes) the command. With a single proposer the command could starve:
// once TD-b replicas propose NoOp, the FLV function rightfully treats NoOp
// as potentially locked and the chooser is never consulted.
func (c *Cluster) Submit(_ model.PID, cmd model.Value) {
	for _, r := range c.replicas {
		r.Submit(cmd)
	}
}

// PendingTotal counts queued commands across replicas.
func (c *Cluster) PendingTotal() int {
	total := 0
	for _, r := range c.replicas {
		total += r.PendingLen()
	}
	return total
}

// RunInstance executes one consensus instance over the replicas' current
// proposals and commits the decision everywhere. It returns the decided
// command.
func (c *Cluster) RunInstance() (model.Value, error) {
	inits := make(map[model.PID]model.Value, len(c.replicas))
	for _, r := range c.replicas {
		inits[r.ID] = r.Proposal()
	}
	c.instance++
	engine, err := sim.New(sim.Config{
		Params: c.params,
		Inits:  inits,
		Seed:   c.seed + int64(c.instance),
	})
	if err != nil {
		return model.NoValue, fmt.Errorf("smr: instance %d: %w", c.instance, err)
	}
	res := engine.Run()
	if !res.AllDecided {
		return model.NoValue, fmt.Errorf("%w: instance %d after %d rounds",
			ErrInstanceFailed, c.instance, res.Rounds)
	}
	if len(res.Violations) > 0 {
		return model.NoValue, fmt.Errorf("smr: instance %d violations: %s",
			c.instance, strings.Join(res.Violations, "; "))
	}
	var decided model.Value
	for _, v := range res.Decisions {
		decided = v
		break
	}
	for _, r := range c.replicas {
		r.Commit(decided)
	}
	return decided, nil
}

// Drain runs instances until every queued command is decided (bounded by
// maxInstances).
func (c *Cluster) Drain(maxInstances int) error {
	for i := 0; i < maxInstances; i++ {
		if c.PendingTotal() == 0 {
			return nil
		}
		if _, err := c.RunInstance(); err != nil {
			return err
		}
	}
	if c.PendingTotal() > 0 {
		return fmt.Errorf("smr: %d commands still pending after %d instances",
			c.PendingTotal(), maxInstances)
	}
	return nil
}

// CheckConsistency verifies that all replica logs are prefixes of the
// longest log (they are equal in this lock-step cluster).
func (c *Cluster) CheckConsistency() error {
	ref := c.replicas[0].Log.Snapshot()
	for _, r := range c.replicas[1:] {
		log := r.Log.Snapshot()
		if len(log) != len(ref) {
			return fmt.Errorf("%w: lengths %d vs %d", ErrDiverged, len(ref), len(log))
		}
		for i := range ref {
			if ref[i] != log[i] {
				return fmt.Errorf("%w: entry %d: %q vs %q", ErrDiverged, i, ref[i], log[i])
			}
		}
	}
	return nil
}
