// Package smr layers state-machine replication on top of the generic
// consensus algorithm: a sequence of consensus instances, each deciding the
// next commands of a replicated log (§5.3: Paxos and PBFT "solve a sequence
// of instances of consensus"; §7: the framework the authors list as future
// work).
//
// Throughput comes from batching and pipelining, the two classic SMR
// amortizations:
//
//   - Batching: one consensus instance decides a whole Batch of client
//     commands, amortizing the 3-round agreement cost over up to
//     MaxBatchSize commands. Replicas encode their pending queues with
//     EncodeBatch (a deterministic, length-prefixed codec bounded by
//     MaxBatchSize/MaxBatchBytes), the batch-aware CommandChooser prefers
//     the largest valid non-NoOp batch among the received votes (rejecting
//     malformed or oversized Byzantine batches), and Commit applies every
//     command of a decided batch in order. The replicated log stores
//     individual commands, so log positions and consistency checks are
//     batch-transparent.
//
//   - Pipelining: a Pipeline runs up to W consensus instances concurrently
//     (PBFT-style), so instance k+1's selection rounds overlap instance k's
//     decision round instead of waiting for it. In-flight instances drain
//     disjoint slices of the pending queue (Replica.ProposalAt), decisions
//     may arrive out of instance order, and an in-order commit queue holds
//     decided-but-not-yet-applicable batches so that every replica applies
//     instance k strictly before instance k+1. Safety therefore never
//     depends on the pipeline: reordered decisions change only when a batch
//     commits, not what the log contains.
//
// On top of both sits adaptive batch sizing: an AdaptiveBatch controller
// replaces the static SetMaxBatch bound, sizing each proposal from the
// current queue depth and an EWMA of observed instance latency. Light load
// yields singleton batches and a shallow pipeline (minimum latency); bursts
// yield full batches and the full pipeline depth (maximum throughput).
//
// # Snapshots, log compaction and crash recovery
//
// A long-running deployment cannot keep every decided command: the log and
// the state machine's dedup tables would grow without bound, and a replica
// that crashed and lost its in-memory state could never rejoin once its
// peers discard the history it missed. The snapshot lifecycle closes both
// gaps:
//
//   - Checkpoint: a SnapshotManager observes every committed instance and,
//     at each Interval boundary, prunes the state machine's dedup table
//     (snapshot.Pruner), encodes the application state deterministically
//     (snapshot.Snapshotter) and records a snapshot.Snapshot carrying the
//     instance watermark and the global log index it covers. Instance
//     numbers are cluster-global, so honest replicas checkpoint the same
//     boundaries with byte-identical snapshots — digests are comparable
//     across the cluster.
//
//   - Compaction: the checkpoint truncates the log below its index
//     (Log.TruncatePrefix). Log positions are global and survive
//     compaction — Len counts compacted entries, Get addresses global
//     positions, and CheckConsistency compares retained-window overlaps —
//     so batching, pipelining and compaction all stay position-transparent.
//     Retained memory is bounded by one snapshot window.
//
//   - Recovery: a crashed replica re-enters through InstallSnapshot
//     (SnapshotManager.Install): it restores the state machine from a
//     snapshot verified by b+1 matching digests (so a Byzantine minority
//     cannot feed it forged state), resets its log to the snapshot index,
//     replays the log tail above it, and rejoins the pipeline at the
//     watermark. Cluster.Recover realizes this in the simulator; the
//     transport layer's chunked, MAC-protected state-transfer exchange
//     (transport.FetchVerifiedSnapshot) and internal/node's catch-up path
//     realize it over TCP, where a CommitQueue.InstallSnapshot
//     fast-forwards past instances the snapshot covers. The gap between
//     the newest checkpoint and the cluster head — instances peers have
//     committed, released and will never run again — is bridged by
//     b+1-verified cached decisions (transport.FetchVerifiedDecision), so
//     a laggard converges even when no new checkpoint is coming.
//
// # Durability and recovery ordering
//
// Snapshots and decision caches solve crash recovery only while someone
// stays up: a whole-cluster power cycle used to erase every checkpoint,
// every log and every replay window at once. The storage layer
// (internal/storage) closes that gap with two durable structures per
// replica, and one rule about the order recovery consults them:
//
//   - Write-ahead decision log: the moment an instance's decision is known
//     — CommitQueue.Deliver on the transport path, Cluster.commitDecision
//     in the sim — Replica.LogDecision appends (instance, value) to the
//     backend's CRC-framed WAL, before the batch is applied. Appends are
//     idempotent per instance and may arrive out of order (pipelining);
//     fsync is batched. A torn final record (power loss mid-append) is
//     truncated at open and costs exactly the records that had not reached
//     the disk, never the prefix.
//
//   - Durable checkpoints: every SnapshotManager checkpoint (and every
//     verified snapshot Install) is persisted to the backend's snapshot
//     store — written to a temp file and renamed, digest-verified on load,
//     encoded incrementally (deltas against the previous checkpoint with a
//     periodic full snapshot and a chain digest, snapshot.Incremental*) —
//     and then the WAL is truncated at the checkpoint boundary, so the WAL
//     only ever spans checkpoint-to-head.
//
//   - Recovery ordering — disk first, then peers: a restarting replica
//     loads its newest verified local checkpoint, replays its WAL above it
//     (reseeding the decision ring so it can serve laggard peers), and
//     only then probes peers for anything newer (the b+1-verified snapshot
//     and decision transfer of PR 3). After a whole-cluster outage there
//     are no live peers to ask — disk-first is what makes the full power
//     cycle (Cluster.PowerCycle in the sim, TestKVNodePowerCycle over TCP)
//     converge from local state alone. Auth replay windows reseed from the
//     restored state exactly as in peer recovery.
//
// Availability wins over durability on storage failure: a broken disk
// degrades the replica to in-memory operation (reported through the
// backend error observer) instead of wedging the commit pipeline.
//
// # Authenticated command lifecycle
//
// Structure-only validation leaves one Byzantine lever: a proposer can fill
// syntactically perfect batches with commands no client ever issued, and
// the cluster will happily burn agreement rounds, log space, snapshot bytes
// and state-transfer bandwidth on them. Authenticated mode closes it by
// making provenance part of the command representation. A command becomes a
// wire.CommandEnvelope — client id, per-client sequence number, application
// payload, and a MAC over all three under the client's key
// (auth.ClientKeyring) — and the envelope's encoded bytes ARE the value the
// whole stack carries: queued, batched, voted, decided, logged and applied
// without re-encoding.
//
// The lifecycle, layer by layer:
//
//   - Sign: the client (cmd/kvctl, or any holder of an auth.ClientSigner)
//     MACs (client, seq, payload) and submits the encoded envelope.
//   - Ingress: Replica.Submit (and the node's client protocol) verifies
//     the MAC and rejects replayed sequence numbers before anything is
//     queued — fabricated load never reaches a proposal.
//   - Choice: CommandChooser weighs a vote by its verified, non-replayed
//     commands (authWeight). A batch containing even one fabricated entry
//     weighs zero — an honest proposer cannot produce one — while replayed
//     entries simply don't count, since honest replicas do transiently
//     re-propose committed commands when queues diverge. A Byzantine
//     proposer therefore cannot make forged or replayed load dominate a
//     decided batch: any honest proposal outweighs it.
//   - Apply: the state machine (kv.Store in authenticated mode) re-verifies
//     the envelope and deduplicates on (client, seq) instead of raw bytes,
//     giving at-most-once semantics with a bounded per-client window that
//     survives snapshot and restore.
//   - Audit: Cluster.CheckProvenance sweeps honest logs after a run and
//     fails if any decided entry is unauthenticated or any (client, seq)
//     committed twice — the invariant the fabrication soaks assert.
//
// Legacy (unauthenticated) mode remains the default: raw commands keep
// flowing byte-for-byte as before, so existing deployments and benchmarks
// stay comparable, and BenchmarkSMRAuthenticated measures the signed path
// against that baseline.
//
// The package is runtime-agnostic: Cluster and Pipeline drive instances
// through the in-memory simulator (one engine per instance, stepped
// round-robin so concurrent instances truly overlap in simulated time, with
// optional crash and Byzantine members), while the cmd/kvnode binary reuses
// Replica bookkeeping and the same controller over the TCP transport.
package smr

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"genconsensus/internal/adversary"
	"genconsensus/internal/core"
	"genconsensus/internal/model"
	"genconsensus/internal/sim"
	"genconsensus/internal/storage"
)

// NoOp is the command proposed by replicas with empty queues.
const NoOp = model.Value("__noop__")

// StateMachine is the deterministic application under replication.
// Implementations must be deterministic: identical command sequences yield
// identical states.
type StateMachine interface {
	// Apply executes a decided command and returns its response.
	Apply(cmd model.Value) string
}

// Log is a replica's decided-command sequence. Entries are individual
// commands: a decided batch appends one entry per command.
//
// Positions are global and stable across compaction: a snapshot manager
// may truncate the prefix below its checkpoint (TruncatePrefix), after
// which Len still reports the total number of decided commands ever
// appended and Get(i) still addresses command i — returning false for
// compacted positions, whose effects live on in the snapshot instead.
type Log struct {
	mu      sync.RWMutex
	base    uint64 // number of compacted entries; global index of entries[0]
	entries []model.Value
}

// Append adds a decided command.
func (l *Log) Append(cmd model.Value) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, cmd)
}

// AppendBatch adds a decided command sequence under one lock acquisition:
// committing a 128-command batch locks once, not 128 times.
func (l *Log) AppendBatch(cmds []model.Value) {
	if len(cmds) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, cmds...)
}

// Len returns the number of decided commands, including compacted ones:
// positions are batch-, pipeline- and compaction-transparent.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return int(l.base) + len(l.entries)
}

// FirstIndex returns the global index of the oldest retained entry: 0
// before any compaction, the snapshot index after.
func (l *Log) FirstIndex() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base
}

// Get returns the i-th decided command, or false when i is out of range or
// compacted away.
func (l *Log) Get(i int) (model.Value, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 || uint64(i) < l.base || i >= int(l.base)+len(l.entries) {
		return model.NoValue, false
	}
	return l.entries[uint64(i)-l.base], true
}

// Entries copies the retained entries (those at or above FirstIndex).
// Before PR 3 this method was named Snapshot; it was renamed to free the
// term for durable checkpoints (see SnapshotManager).
func (l *Log) Entries() []model.Value {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]model.Value(nil), l.entries...)
}

// Retained returns the first retained global index together with a copy of
// the retained entries, atomically — consistency checks need both from the
// same instant.
func (l *Log) Retained() (uint64, []model.Value) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base, append([]model.Value(nil), l.entries...)
}

// Tail copies the retained entries from global index `from` on. It returns
// false when `from` addresses a compacted position (the caller needs a
// snapshot, not a log suffix).
func (l *Log) Tail(from uint64) ([]model.Value, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if from < l.base {
		return nil, false
	}
	if from > l.base+uint64(len(l.entries)) {
		return nil, false
	}
	return append([]model.Value(nil), l.entries[from-l.base:]...), true
}

// TruncatePrefix drops every entry below global index `index` (log
// compaction at a snapshot boundary). Truncating at or below FirstIndex is
// a no-op; truncating beyond Len is clamped.
func (l *Log) TruncatePrefix(index uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index <= l.base {
		return
	}
	if end := l.base + uint64(len(l.entries)); index > end {
		index = end
	}
	drop := index - l.base
	// Copy the keepers to a fresh backing array so the dropped prefix is
	// actually released.
	kept := make([]model.Value, uint64(len(l.entries))-drop)
	copy(kept, l.entries[drop:])
	l.entries = kept
	l.base = index
}

// Reset discards the whole log and restarts it at global index `base`: the
// state below is covered by an installed snapshot.
func (l *Log) Reset(base uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base = base
	l.entries = nil
}

// Replica is one member's SMR bookkeeping: a pending-command queue, the
// decided log and the application state machine.
type Replica struct {
	ID  model.PID
	SM  StateMachine
	Log *Log

	mu           sync.Mutex
	pending      []pendingCmd
	queued       map[model.Value]struct{}
	queuedIdents map[[2]uint64]struct{} // (client, seq) of queued envelopes (auth mode)
	maxBatch     int
	sizer        BatchSizer
	auth         *AuthContext
	store        storage.Backend
	storeErr     func(error)
	scratch      []model.Value // proposal staging, reused under mu
	metrics      Metrics       // zero value = disabled (see metrics.go)
}

// pendingCmd is one queued command plus the identity Submit verified for it.
// Caching the identity beside the bytes keeps Commit's queue pruning free of
// per-entry verification-cache lookups (each of which hashes the full
// envelope bytes).
type pendingCmd struct {
	v     model.Value
	ident [2]uint64 // (client, seq), valid only when hasID
	hasID bool
}

// BatchSizer sizes one proposal from the current queue depth. The
// AdaptiveBatch controller implements it; a nil sizer falls back to the
// static SetMaxBatch bound.
type BatchSizer interface {
	BatchSize(queueDepth int) int
}

// NewReplica builds a replica around the given state machine, proposing
// batches of up to MaxBatchSize commands.
func NewReplica(id model.PID, sm StateMachine) *Replica {
	return &Replica{
		ID: id, SM: sm, Log: &Log{},
		queued:       make(map[model.Value]struct{}),
		queuedIdents: make(map[[2]uint64]struct{}),
		maxBatch:     MaxBatchSize,
	}
}

// SetMaxBatch bounds the number of commands per proposed batch, clamped to
// [1, MaxBatchSize]. A bound of 1 reproduces the unbatched protocol.
func (r *Replica) SetMaxBatch(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case n < 1:
		r.maxBatch = 1
	case n > MaxBatchSize:
		r.maxBatch = MaxBatchSize
	default:
		r.maxBatch = n
	}
}

// SetBatchSizer installs a dynamic batch controller consulted on every
// proposal (still capped by SetMaxBatch). A nil sizer restores the static
// bound.
func (r *Replica) SetBatchSizer(s BatchSizer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sizer = s
}

// SetCommandAuth switches the replica to authenticated mode: Submit admits
// only verified command envelopes with fresh sequence numbers, and Commit
// records committed (client, seq) pairs in the context's replay window. A
// nil context restores legacy raw-bytes mode. Call before commands flow.
func (r *Replica) SetCommandAuth(ax *AuthContext) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.auth = ax
}

// commandAuth returns the installed authentication context, if any.
func (r *Replica) commandAuth() *AuthContext {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.auth
}

// SetBackend gives the replica durable storage: LogDecision appends every
// decided instance to the backend's WAL before it is applied, and the
// snapshot manager (if any) persists each checkpoint to the backend and
// truncates the WAL beneath it. onErr observes storage failures (nil
// ignores them): the commit paths deliberately prefer availability — a
// failing disk degrades the replica to in-memory operation rather than
// wedging the cluster's commit pipeline. Call before instances run.
func (r *Replica) SetBackend(b storage.Backend, onErr func(error)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = b
	r.storeErr = onErr
}

// Backend returns the replica's durable storage (nil when memory-only).
func (r *Replica) Backend() storage.Backend {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store
}

// reportStorageErr forwards a storage failure to the installed observer.
func (r *Replica) reportStorageErr(err error) {
	r.mu.Lock()
	fn := r.storeErr
	r.mu.Unlock()
	if fn != nil && err != nil {
		fn(err)
	}
}

// LogDecision makes instance's decided value durable, write-ahead of the
// apply: the commit paths (CommitQueue.Deliver, Cluster.commitDecision)
// call it the moment a decision is known, so a power loss between decide
// and apply replays the decision instead of forgetting it. Idempotent per
// instance and tolerant of out-of-order calls (pipelined instances decide
// out of order); a nil backend makes it a no-op.
func (r *Replica) LogDecision(instance uint64, decided model.Value) {
	if b := r.Backend(); b != nil {
		if err := b.AppendWAL(instance, decided); err != nil {
			r.reportStorageErr(fmt.Errorf("smr: wal append instance %d: %w", instance, err))
		}
	}
}

// Submit queues a client command for proposal. Inadmissible commands are
// dropped at the door: duplicates already queued (an honest replica never
// builds a batch with repeated entries; the state machine additionally
// deduplicates across instances), empty values, NoOp, batch-prefixed values
// (a command that parses as a batch could never be proposed and would wedge
// the queue head forever) and commands too large to ever fit a batch. In
// authenticated mode the door also demands provenance: the command must be
// an envelope with a valid client MAC, a sequence number that has not
// already committed, and an identity no queued command already claims — an
// equivocating client signing the same seq over two payloads gets exactly
// one of them queued, so an honest batch can never carry both. The
// queued-set index keeps Submit O(1) under pipelined client load.
//
// It reports whether the command entered (or already occupied) the queue:
// false means the command was dropped and will never be proposed — ingress
// protocols use the report to tell the client instead of silently eating
// the write.
func (r *Replica) Submit(cmd model.Value) bool {
	if !Admissible(cmd) {
		return false
	}
	r.mu.Lock()
	ax, m := r.auth, r.metrics
	r.mu.Unlock()
	var ident [2]uint64
	if ax != nil {
		id := ax.identify(cmd)
		if !id.ok {
			return false
		}
		if ax.window.Seen(id.client, id.seq) {
			m.ReplayRejects.Inc()
			return false
		}
		ident = [2]uint64{uint64(id.client), id.seq}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.queued[cmd]; ok {
		return true // identical bytes already queued: idempotent
	}
	if ax != nil {
		if _, claimed := r.queuedIdents[ident]; claimed {
			r.metrics.EquivEvictions.Inc()
			return false // another payload holds this (client, seq)
		}
		r.queuedIdents[ident] = struct{}{}
	}
	r.queued[cmd] = struct{}{}
	r.pending = append(r.pending, pendingCmd{v: cmd, ident: ident, hasID: ax != nil})
	return true
}

// Proposal returns the value the replica proposes for the next instance: a
// batch of the first k pending commands (k ≤ the SetMaxBatch bound or the
// installed BatchSizer's answer, encoded size ≤ MaxBatchBytes), or NoOp
// when the queue is empty. The queue is not consumed — commands leave it
// only when committed.
func (r *Replica) Proposal() model.Value {
	v, _ := r.ProposalAt(0, 0)
	return v
}

// ProposalAt builds a proposal from the disjoint queue slice starting at
// offset skip: up to limit commands of pending[skip:]. The pipeline assigns
// each in-flight instance a distinct offset so that W concurrent instances
// drain W disjoint slices instead of all proposing the queue head. A limit
// ≤ 0 means "replica's own sizing" (BatchSizer if installed, else the
// SetMaxBatch bound); either way the SetMaxBatch cap applies. It returns
// the proposal (NoOp when the slice is empty) and the number of commands
// claimed by it.
//
// Submit admits only commands that fit a batch, so the encoding cannot
// fail; the raw-head fallback is pure defence (a plain command still weighs
// 1 with the chooser, so the queue can never wedge).
func (r *Replica) ProposalAt(skip, limit int) (model.Value, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if skip < 0 {
		skip = 0
	}
	if skip >= len(r.pending) {
		return NoOp, 0
	}
	slice := r.pending[skip:]
	k := r.maxBatch
	if r.sizer != nil {
		if s := r.sizer.BatchSize(len(slice)); s < k {
			k = s
		}
	}
	if limit > 0 && limit < k {
		k = limit
	}
	if k < 1 {
		k = 1
	}
	if k > len(slice) {
		k = len(slice)
	}
	// Shrink until the encoding fits MaxBatchBytes. Encoding overhead per
	// command is small (len + 2 separators), so budget on raw bytes first.
	for ; k > 1; k-- {
		total := len(batchMagic) + 8
		for _, p := range slice[:k] {
			total += len(p.v) + 8
		}
		if total <= MaxBatchBytes {
			break
		}
	}
	r.scratch = r.scratch[:0]
	for _, p := range slice[:k] {
		r.scratch = append(r.scratch, p.v)
	}
	r.metrics.Proposals.Inc()
	r.metrics.BatchSize.Observe(uint64(k))
	batch, err := EncodeBatch(r.scratch)
	if err != nil {
		return slice[0].v, 1
	}
	return batch, k
}

// Commit records a decided value: each command it stands for (every command
// of a batch, in order) is appended to the log, removed from the pending
// queue and applied to the state machine (NoOp is appended but not
// applied). It returns one response per applied command.
//
// In authenticated mode the queue is additionally pruned by identity, not
// just by exact bytes: a pending command whose (client, seq) just committed
// under different payload bytes — an equivocating but provisioned client
// signed the same seq twice — or whose seq is already below the replay
// horizon will never carry weight again, and leaving such zombies queued
// would waste a batch slot every proposal and let the duplicate identity
// ride honest batches into the decided log.
func (r *Replica) Commit(decided model.Value) []string {
	cmds := Commands(decided)
	r.mu.Lock()
	ax, m := r.auth, r.metrics
	// Identify the decided commands once; the identities drive both the
	// queue pruning and the replay-window update below, so no later step
	// pays another verification-cache lookup per command.
	var decidedSet map[model.Value]struct{}
	var decidedIDs []cmdIdent
	var decidedIdents map[[2]uint64]struct{}
	if ax != nil {
		decidedIDs = make([]cmdIdent, len(cmds))
		decidedIdents = make(map[[2]uint64]struct{}, len(cmds))
		for i, cmd := range cmds {
			if cmd == NoOp {
				continue
			}
			if id := ax.identify(cmd); id.ok {
				decidedIDs[i] = id
				decidedIdents[[2]uint64{uint64(id.client), id.seq}] = struct{}{}
			}
		}
	} else {
		decidedSet = make(map[model.Value]struct{}, len(cmds))
		for _, cmd := range cmds {
			decidedSet[cmd] = struct{}{}
		}
	}
	// One filter pass keeps the commit O(queue) regardless of batch size.
	// In auth mode pruning is by identity alone, which subsumes pruning by
	// bytes: byte-identical values share an identity, Submit admits only
	// verified entries, and a decided value that fails verification can
	// never share bytes with a verified pending one. Identity pruning also
	// drops zombies — pending payloads whose (client, seq) just committed
	// under different bytes, or whose seq fell below the replay horizon.
	kept := r.pending[:0]
	for _, p := range r.pending {
		drop := false
		if ax != nil {
			ident := p.ident
			if !p.hasID {
				// Queued before authentication was enabled (outside the
				// documented contract); identify lazily rather than misjudge.
				if id := ax.identify(p.v); id.ok {
					ident = [2]uint64{uint64(id.client), id.seq}
				} else {
					kept = append(kept, p)
					continue
				}
			}
			_, dup := decidedIdents[ident]
			drop = dup || ax.window.Seen(uint32(ident[0]), ident[1])
			if drop {
				delete(r.queuedIdents, ident)
			}
		} else {
			_, drop = decidedSet[p.v]
		}
		if drop {
			delete(r.queued, p.v)
			continue
		}
		kept = append(kept, p)
	}
	r.pending = kept
	r.mu.Unlock()
	r.Log.AppendBatch(cmds)
	m.Decisions.Inc()
	applied := uint64(0)
	responses := make([]string, 0, len(cmds))
	for i, cmd := range cmds {
		if cmd == NoOp {
			responses = append(responses, "")
			continue
		}
		// Count unique applies: a command a pipelined peer legitimately
		// re-decided (queue-divergence duplicate) is already in the replay
		// window and does not mutate state a second time. The extra window
		// lookup is paid only with metrics installed.
		if m.Commits != nil &&
			(ax == nil || (decidedIDs[i].ok && !ax.window.Seen(decidedIDs[i].client, decidedIDs[i].seq))) {
			applied++
		}
		responses = append(responses, r.SM.Apply(cmd))
		if ax != nil && decidedIDs[i].ok {
			// Commit order defines the replay horizon: from here on the
			// chooser refuses to weigh this (client, seq) again and Submit
			// bounces client retries of it.
			ax.window.Record(decidedIDs[i].client, decidedIDs[i].seq)
		}
	}
	m.Commits.Add(applied)
	return responses
}

// PendingLen reports the queue length.
func (r *Replica) PendingLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Cluster is a simulation-backed SMR deployment: n replicas deciding a
// shared log through successive consensus instances. Members can be marked
// crashed (silent from the next instance on) or Byzantine (driven by an
// adversary.Strategy instead of the honest algorithm), within the f and b
// budgets of the parameterization.
//
// Cluster is safe for concurrent use: Submit, PendingTotal and the fault
// injectors may race with a running Pipeline (concurrent client load is the
// whole point of pipelining). Instance execution itself is driven by one
// scheduler goroutine — RunInstance and Pipeline.Drain must not be invoked
// concurrently with each other.
type Cluster struct {
	params    core.Params
	replicas  []*Replica
	seed      int64
	smFactory func(model.PID) StateMachine

	mu        sync.Mutex
	instance  uint64
	byzantine map[model.PID]adversary.Strategy
	crashed   map[model.PID]bool
	ctrl      *AdaptiveBatch
	managers  []*SnapshotManager // nil until EnableSnapshots
	snapCfg   SnapshotConfig     // valid while managers != nil
	authCtx   *AuthContext       // nil until EnableCommandAuth
	backends  []storage.Backend  // nil until EnableStorage
	digests   *DigestTable       // nil until EnableDigestVotes
}

// Errors returned by the cluster.
var (
	ErrInstanceFailed = errors.New("smr: consensus instance did not decide")
	ErrDiverged       = errors.New("smr: replica logs diverged")
	ErrFaultBudget    = errors.New("smr: fault budget exceeded")
)

// CommandChooser is the line-11 choice rule for SMR instances: among the
// votes it prefers the value committing the most commands — the largest
// valid batch, with plain commands weighing one — breaking weight ties by
// smallest value, so identical vectors choose identically everywhere.
// Malformed or oversized batches (Byzantine proposals) and NoOp weigh zero
// and are never preferred over real commands, so queued commands cannot be
// starved by NoOp proposals or syntactically invalid batches.
//
// With a nil Auth the chooser validates batch structure, not command
// provenance — a Byzantine proposer can still submit a well-formed batch of
// fabricated commands and win the choice, as in any SMR without
// authenticated client commands. With an AuthContext installed (the
// authenticated command lifecycle, see the package doc) the choice rule
// re-verifies provenance: only commands with valid client MACs that have
// not already committed carry weight, a batch containing any fabricated
// entry weighs zero, and forged or replayed load can therefore never
// dominate an honest proposal. Safety is unaffected either way: the chooser
// runs only when FLV returns "?" (any value may be selected).
type CommandChooser struct {
	// Auth enables provenance-checked weighing; nil keeps the legacy
	// structure-only rule.
	Auth *AuthContext
	// Resolve enables digest voting: votes carrying a content address are
	// resolved to the locally-held payload before weighing
	// (resolve-before-weigh). An unresolvable digest weighs zero — exactly
	// like a malformed batch — so a Byzantine proposer cannot win the
	// choice with a reference to bytes it never disseminated, and the
	// Byzantine-weight invariants above survive the digest indirection
	// unchanged. Nil prices every digest vote at zero.
	Resolve DigestResolver
}

// weight ranks one vote under the configured rule.
func (c CommandChooser) weight(v model.Value) int {
	if IsDigestVote(v) {
		if c.Resolve == nil {
			return 0
		}
		sum, ok := DigestKey(v)
		if !ok {
			return 0 // magic-prefixed junk, not a vote
		}
		resolved, ok := c.Resolve.ResolveDigest(sum)
		if !ok || IsDigestVote(resolved) {
			return 0 // unresolved here and now: worth nothing, fetched async
		}
		v = resolved
	}
	if c.Auth != nil {
		return authWeight(v, c.Auth)
	}
	return BatchWeight(v)
}

// Choose implements core.Chooser.
func (c CommandChooser) Choose(mu model.Received) (model.Value, bool) {
	best := model.NoValue
	bestWeight := 0
	for _, m := range mu {
		w := c.weight(m.Vote)
		if w == 0 {
			continue
		}
		if w > bestWeight || (w == bestWeight && m.Vote < best) {
			best, bestWeight = m.Vote, w
		}
	}
	if best != model.NoValue {
		return best, true
	}
	// No committable command among the votes: prefer an explicit NoOp over
	// opaque junk (a zero-weight Byzantine value would only waste the
	// instance).
	for _, m := range mu {
		if m.Vote == NoOp {
			return NoOp, true
		}
	}
	// Authenticated mode never falls back to an unverified vote: if every
	// vote is zero-weight and none is NoOp (e.g. honest replicas proposed
	// fully-replayed batches while a Byzantine vote is the lexicographic
	// minimum), selecting the minimum could decide a fabricated value.
	// NoOp is always safe here — the chooser runs only when FLV returned
	// "?" — and merely costs the instance, like a zero-weight decision
	// would have.
	if c.Auth != nil {
		return NoOp, true
	}
	return mu.MinValue()
}

// Name implements core.Chooser.
func (c CommandChooser) Name() string {
	if c.Auth != nil {
		return "choose/smr-batch-auth"
	}
	return "choose/smr-batch"
}

// NewCluster builds n replicas over the given consensus parameterization.
// smFactory supplies each replica's state machine instance. The line-11
// chooser is replaced with CommandChooser (see its doc comment).
func NewCluster(params core.Params, smFactory func(model.PID) StateMachine, seed int64) (*Cluster, error) {
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("smr: %w", err)
	}
	params.Chooser = CommandChooser{}
	c := &Cluster{
		params:    params,
		seed:      seed,
		smFactory: smFactory,
		byzantine: make(map[model.PID]adversary.Strategy),
		crashed:   make(map[model.PID]bool),
	}
	for _, p := range model.AllPIDs(params.N) {
		c.replicas = append(c.replicas, NewReplica(p, smFactory(p)))
	}
	return c, nil
}

// Replica returns replica p.
func (c *Cluster) Replica(p model.PID) *Replica { return c.replicas[p] }

// EnableCommandAuth switches the cluster to the authenticated command
// lifecycle: the chooser becomes provenance-checked, and every replica
// verifies envelopes at ingress and records committed (client, seq) pairs.
// The context is shared — honest replicas commit the same sequence, so one
// replay window serves ingress, choice and audit alike. Must be called
// before instances run.
func (c *Cluster) EnableCommandAuth(ax *AuthContext) {
	c.mu.Lock()
	c.authCtx = ax
	c.params.Chooser = c.chooserLocked()
	c.mu.Unlock()
	for _, r := range c.replicas {
		r.SetCommandAuth(ax)
	}
}

// chooserLocked rebuilds the cluster chooser from the enabled modes.
// Callers hold c.mu.
func (c *Cluster) chooserLocked() CommandChooser {
	ch := CommandChooser{Auth: c.authCtx}
	if c.digests != nil {
		ch.Resolve = c.digests
	}
	return ch
}

// EnableDigestVotes switches the cluster to digest voting over a shared
// DigestTable (the simulator's payload plane): every batch proposal is
// published to the table and replaced by its 32-byte digest vote, the
// chooser resolves digests before weighing, and decided digests resolve
// back to their batches before commit. Composes with EnableCommandAuth in
// either order. Must be called before instances run. Returns the table so
// tests can inspect or poison it.
func (c *Cluster) EnableDigestVotes() *DigestTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.digests == nil {
		c.digests = NewDigestTable()
	}
	c.params.Chooser = c.chooserLocked()
	return c.digests
}

// AuthContext returns the cluster's command-authentication context (nil in
// legacy mode).
func (c *Cluster) AuthContext() *AuthContext {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.authCtx
}

// SetBatchSize bounds every replica's proposals to n commands per batch.
func (c *Cluster) SetBatchSize(n int) {
	for _, r := range c.replicas {
		r.SetMaxBatch(n)
	}
}

// SetAdaptive installs an adaptive batch controller on every replica and
// feeds it observed instance latencies (in rounds), replacing the static
// SetMaxBatch policy. A nil controller restores static sizing.
func (c *Cluster) SetAdaptive(ctrl *AdaptiveBatch) {
	c.mu.Lock()
	c.ctrl = ctrl
	c.mu.Unlock()
	for _, r := range c.replicas {
		if ctrl == nil {
			r.SetBatchSizer(nil)
		} else {
			r.SetBatchSizer(ctrl)
		}
	}
}

// controller returns the installed adaptive controller, if any.
func (c *Cluster) controller() *AdaptiveBatch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrl
}

// SetByzantine replaces member p's honest process with the given adversary
// strategy from the next instance on. The b budget of the parameterization
// is enforced.
func (c *Cluster) SetByzantine(p model.PID, s adversary.Strategy) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(p) < 0 || int(p) >= c.params.N {
		return fmt.Errorf("smr: no member %d", p)
	}
	if c.crashed[p] {
		return fmt.Errorf("%w: member %d already crashed", ErrFaultBudget, p)
	}
	if _, ok := c.byzantine[p]; !ok && len(c.byzantine) >= c.params.B {
		return fmt.Errorf("%w: %d Byzantine members, b=%d", ErrFaultBudget, len(c.byzantine)+1, c.params.B)
	}
	c.byzantine[p] = s
	return nil
}

// Crash silences member p from the next instance on (a benign fault: the
// member stops proposing, sending and committing). The f budget of the
// parameterization is enforced.
func (c *Cluster) Crash(p model.PID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(p) < 0 || int(p) >= c.params.N {
		return fmt.Errorf("smr: no member %d", p)
	}
	if _, ok := c.byzantine[p]; ok {
		return fmt.Errorf("%w: member %d already Byzantine", ErrFaultBudget, p)
	}
	if !c.crashed[p] && len(c.crashed) >= c.params.F {
		return fmt.Errorf("%w: %d crashed members, f=%d", ErrFaultBudget, len(c.crashed)+1, c.params.F)
	}
	c.crashed[p] = true
	return nil
}

// liveLocked reports whether member p participates in commits: honest and
// not crashed. Callers hold c.mu.
func (c *Cluster) liveLocked(p model.PID) bool {
	_, byz := c.byzantine[p]
	return !byz && !c.crashed[p]
}

// liveSet snapshots the current live membership, so iteration over replicas
// does not hold the cluster lock across replica operations.
func (c *Cluster) liveSet() map[model.PID]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := make(map[model.PID]bool, len(c.replicas))
	for _, r := range c.replicas {
		if c.liveLocked(r.ID) {
			set[r.ID] = true
		}
	}
	return set
}

// Submit delivers a client command following the PBFT client model: the
// client contacts every live replica, so each one queues (and eventually
// proposes) the command. With a single proposer the command could starve:
// once TD-b replicas propose NoOp, the FLV function rightfully treats NoOp
// as potentially locked and the chooser is never consulted.
func (c *Cluster) Submit(_ model.PID, cmd model.Value) {
	live := c.liveSet()
	for _, r := range c.replicas {
		if live[r.ID] {
			r.Submit(cmd)
		}
	}
}

// PendingTotal counts queued commands across live replicas.
func (c *Cluster) PendingTotal() int {
	live := c.liveSet()
	total := 0
	for _, r := range c.replicas {
		if live[r.ID] {
			total += r.PendingLen()
		}
	}
	return total
}

// maxPendingLive returns the deepest live queue: the backlog the pipeline
// sizes its batches and depth against.
func (c *Cluster) maxPendingLive() int {
	live := c.liveSet()
	maxQ := 0
	for _, r := range c.replicas {
		if live[r.ID] {
			if n := r.PendingLen(); n > maxQ {
				maxQ = n
			}
		}
	}
	return maxQ
}

// startEngine snapshots the current membership and proposals into a fresh
// simulation engine for the next instance. Each honest live replica
// proposes the queue slice [skip, skip+limit) (see Replica.ProposalAt);
// skip 0 / limit 0 reproduces the serial head-of-queue proposal. It returns
// the engine, the instance number it was assigned and the largest claim any
// replica made on its queue.
func (c *Cluster) startEngine(skip, limit int) (*sim.Engine, uint64, int, error) {
	c.mu.Lock()
	c.instance++
	instance := c.instance
	byz := make(map[model.PID]adversary.Strategy, len(c.byzantine))
	for p, s := range c.byzantine {
		byz[p] = s
	}
	crashed := make(map[model.PID]bool, len(c.crashed))
	for p := range c.crashed {
		crashed[p] = true
	}
	digests := c.digests
	c.mu.Unlock()

	inits := make(map[model.PID]model.Value, len(c.replicas))
	crashes := make(map[model.PID]sim.CrashPlan, len(crashed))
	claim := 0
	for _, r := range c.replicas {
		if _, ok := byz[r.ID]; ok {
			continue
		}
		proposal, took := r.ProposalAt(skip, limit)
		if digests != nil && IsBatch(proposal) {
			// Publish-then-vote: the batch reaches the payload plane before
			// any round carries its digest, mirroring the transport's
			// announce-before-round-1 ordering.
			proposal = digests.Put(proposal)
		}
		inits[r.ID] = proposal
		if took > claim {
			claim = took
		}
		if crashed[r.ID] {
			crashes[r.ID] = sim.CrashPlan{Round: 1}
		}
	}
	engine, err := sim.New(sim.Config{
		Params:    c.params,
		Inits:     inits,
		Byzantine: byz,
		Crashes:   crashes,
		Seed:      c.seed + int64(instance),
	})
	if err != nil {
		return nil, instance, 0, fmt.Errorf("smr: instance %d: %w", instance, err)
	}
	return engine, instance, claim, nil
}

// decisionOf audits a finished engine and extracts its decision.
func decisionOf(instance uint64, res sim.Result) (model.Value, error) {
	if !res.AllDecided {
		return model.NoValue, fmt.Errorf("%w: instance %d after %d rounds",
			ErrInstanceFailed, instance, res.Rounds)
	}
	if len(res.Violations) > 0 {
		return model.NoValue, fmt.Errorf("smr: instance %d violations: %s",
			instance, strings.Join(res.Violations, "; "))
	}
	for _, v := range res.Decisions {
		return v, nil
	}
	return model.NoValue, fmt.Errorf("%w: instance %d produced no decision", ErrInstanceFailed, instance)
}

// commitDecision applies a decided value at every live replica, gives each
// replica's snapshot manager (if snapshots are enabled) the chance to
// checkpoint at the committed instance, and feeds the observed instance
// latency to the adaptive controller, if one is installed.
func (c *Cluster) commitDecision(instance uint64, decided model.Value, latencyRounds int) {
	live := c.liveSet()
	c.mu.Lock()
	managers := c.managers
	digests := c.digests
	c.mu.Unlock()
	if digests != nil && IsDigestVote(decided) {
		// Resolve the decided digest before anything durable sees it: the
		// WAL, the log and the state machine only ever store real batches.
		// An unresolvable decided digest cannot name honest bytes (honest
		// proposers publish before voting, and resolve-before-weigh prices
		// unpublished references at zero), so it degrades to NoOp —
		// uniformly at every replica, since the table is shared — and
		// costs the instance, never safety.
		if sum, ok := DigestKey(decided); ok {
			if resolved, found := digests.ResolveDigest(sum); found {
				decided = resolved
			} else {
				decided = NoOp
			}
		} else {
			decided = NoOp
		}
	}
	for _, r := range c.replicas {
		if live[r.ID] {
			// Write-ahead: the decision reaches the WAL before the apply,
			// so a power cycle between the two replays it.
			r.LogDecision(instance, decided)
			r.Commit(decided)
			if managers != nil {
				managers[r.ID].MaybeSnapshot(instance)
			}
		}
	}
	if ctrl := c.controller(); ctrl != nil && latencyRounds > 0 {
		ctrl.Observe(float64(latencyRounds))
	}
}

// RunInstance executes one consensus instance over the replicas' current
// proposals and commits the decision at every live replica. Crashed members
// fall silent in round 1; Byzantine members run their strategies. It
// returns the decided value (a batch, a plain command or NoOp).
func (c *Cluster) RunInstance() (model.Value, error) {
	engine, instance, _, err := c.startEngine(0, 0)
	if err != nil {
		return model.NoValue, err
	}
	res := engine.Run()
	decided, err := decisionOf(instance, res)
	if err != nil {
		return model.NoValue, err
	}
	c.commitDecision(instance, decided, res.Rounds)
	return decided, nil
}

// Drain runs instances until every queued command is decided (bounded by
// maxInstances).
func (c *Cluster) Drain(maxInstances int) error {
	for i := 0; i < maxInstances; i++ {
		if c.PendingTotal() == 0 {
			return nil
		}
		if _, err := c.RunInstance(); err != nil {
			return err
		}
	}
	if c.PendingTotal() > 0 {
		return fmt.Errorf("smr: %d commands still pending after %d instances",
			c.PendingTotal(), maxInstances)
	}
	return nil
}

// CheckConsistency verifies the SMR safety invariant over honest members:
// all live replica logs are identical, and every crashed replica's log is a
// prefix of them. Byzantine members are unconstrained and skipped.
//
// Compaction-awareness: positions are global (Log.Len counts compacted
// entries too), so the check compares the overlap of each pair's retained
// windows. Entries below a replica's snapshot index are covered by its
// checkpoint digest instead — identical digests are enforced at transfer
// time (b+1 matching peers), not here.
func (c *Cluster) CheckConsistency() error {
	live := c.liveSet()
	c.mu.Lock()
	byzSet := make(map[model.PID]bool, len(c.byzantine))
	for p := range c.byzantine {
		byzSet[p] = true
	}
	crashedSet := make(map[model.PID]bool, len(c.crashed))
	for p := range c.crashed {
		crashedSet[p] = true
	}
	c.mu.Unlock()
	var refFirst uint64
	var ref []model.Value
	refLen := 0
	haveRef := false
	for _, r := range c.replicas {
		if live[r.ID] {
			refFirst, ref = r.Log.Retained()
			refLen = int(refFirst) + len(ref)
			haveRef = true
			break
		}
	}
	if !haveRef {
		return nil
	}
	for _, r := range c.replicas {
		if byzSet[r.ID] {
			continue
		}
		first, entries := r.Log.Retained()
		total := int(first) + len(entries)
		if crashedSet[r.ID] {
			if total > refLen {
				return fmt.Errorf("%w: crashed member %d has %d entries, live logs have %d",
					ErrDiverged, r.ID, total, refLen)
			}
		} else if total != refLen {
			return fmt.Errorf("%w: lengths %d vs %d", ErrDiverged, refLen, total)
		}
		lo := refFirst
		if first > lo {
			lo = first
		}
		hi := uint64(refLen)
		if uint64(total) < hi {
			hi = uint64(total)
		}
		for i := lo; i < hi; i++ {
			want := ref[i-refFirst]
			got := entries[i-first]
			if want != got {
				return fmt.Errorf("%w: entry %d: %q vs %q", ErrDiverged, i, want, got)
			}
		}
	}
	return nil
}

// Errors returned by the provenance audit.
var (
	ErrUnauthenticated = errors.New("smr: unauthenticated command in decided log")
	ErrReplayCommitted = errors.New("smr: (client, seq) committed more than once")
	ErrNoAuth          = errors.New("smr: command authentication not enabled")
)

// CheckProvenance verifies the authenticated-mode integrity invariant over
// honest members' retained logs: every decided non-NoOp entry is a command
// envelope with a valid client MAC (a Byzantine proposer got nothing
// fabricated, stripped or malformed past the choice rule), and no
// (client, seq) pair occupies two log positions (nothing replayed into the
// decided sequence). Byzantine members are unconstrained and skipped, like
// in CheckConsistency.
//
// The no-duplicate half is exact under serial instance execution
// (RunInstance/Drain), where every honest queue is pruned at each commit
// before the next proposal is built. Under pipelined execution honest
// replicas whose queues transiently diverge may legitimately re-propose a
// committed command (the claim policy documented on CommitQueue and
// Pipeline), so a duplicate there is not necessarily Byzantine — rely on
// the state machine's (client, seq) dedup for at-most-once instead of this
// audit.
func (c *Cluster) CheckProvenance() error {
	c.mu.Lock()
	ax := c.authCtx
	byzSet := make(map[model.PID]bool, len(c.byzantine))
	for p := range c.byzantine {
		byzSet[p] = true
	}
	c.mu.Unlock()
	if ax == nil {
		return ErrNoAuth
	}
	for _, r := range c.replicas {
		if byzSet[r.ID] {
			continue
		}
		first, entries := r.Log.Retained()
		seen := make(map[[2]uint64]uint64, len(entries))
		for i, v := range entries {
			pos := first + uint64(i)
			if v == NoOp {
				continue
			}
			id := ax.identify(v)
			if !id.ok {
				return fmt.Errorf("%w: member %d position %d: %q",
					ErrUnauthenticated, r.ID, pos, v)
			}
			key := [2]uint64{uint64(id.client), id.seq}
			if prev, dup := seen[key]; dup {
				return fmt.Errorf("%w: member %d client %d seq %d at positions %d and %d",
					ErrReplayCommitted, r.ID, id.client, id.seq, prev, pos)
			}
			seen[key] = pos
		}
	}
	return nil
}
