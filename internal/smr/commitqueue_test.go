package smr

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"genconsensus/internal/kv"
	"genconsensus/internal/model"
)

func testCmd(i int) model.Value {
	return kv.Command(fmt.Sprintf("cq-req-%d", i), "SET", fmt.Sprintf("cq-k-%d", i), "v")
}

// Double delivery of the same instance must commit once and release its
// claim once: the second delivery is finished business.
func TestCommitQueueDoubleRelease(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	var commits []uint64
	q := NewCommitQueue(r, 1, func(instance uint64, _ model.Value, _ []string) {
		commits = append(commits, instance)
	})
	r.Submit(testCmd(1))
	r.Submit(testCmd(2))
	p1 := q.Claim(1, 1)
	p2 := q.Claim(2, 1)
	if q.Unclaimed() != 0 {
		t.Fatalf("Unclaimed = %d after claiming everything", q.Unclaimed())
	}
	if n := q.Deliver(1, p1); n != 1 {
		t.Fatalf("first delivery committed %d", n)
	}
	// Duplicate delivery of the committed instance: dropped entirely.
	if n := q.Deliver(1, p1); n != 0 {
		t.Fatalf("duplicate delivery committed %d", n)
	}
	if got := r.Log.Len(); got != 1 {
		t.Fatalf("log length %d after duplicate delivery, want 1", got)
	}
	if n := q.Deliver(2, p2); n != 1 {
		t.Fatalf("second instance committed %d", n)
	}
	if q.Unclaimed() != 0 {
		t.Fatalf("Unclaimed = %d after draining, want 0 (claims released exactly once)", q.Unclaimed())
	}
	if len(commits) != 2 || commits[0] != 1 || commits[1] != 2 {
		t.Fatalf("commit order %v", commits)
	}
}

// Commits at the watermark proceed; below it they are dropped without
// touching the log or the claim accounting.
func TestCommitQueueWatermark(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	q := NewCommitQueue(r, 5, nil)
	if n := q.Deliver(3, testCmd(3)); n != 0 {
		t.Fatalf("below-watermark delivery committed %d", n)
	}
	if n := q.Deliver(4, testCmd(4)); n != 0 {
		t.Fatalf("below-watermark delivery committed %d", n)
	}
	if r.Log.Len() != 0 {
		t.Fatal("below-watermark deliveries reached the log")
	}
	// At the watermark: commits, and flushes any buffered successor.
	if n := q.Deliver(6, testCmd(6)); n != 0 {
		t.Fatalf("gapped delivery committed %d", n)
	}
	if n := q.Deliver(5, testCmd(5)); n != 2 {
		t.Fatalf("watermark delivery flushed %d, want 2", n)
	}
	if got := q.NextCommit(); got != 7 {
		t.Fatalf("NextCommit = %d, want 7", got)
	}
	// Claiming an already-committed instance yields NoOp and no claim.
	r.Submit(testCmd(100))
	if p := q.Claim(4, 1); p != NoOp {
		t.Fatalf("stale claim proposed %q", p)
	}
	if q.Unclaimed() != 1 {
		t.Fatalf("stale claim consumed queue positions: Unclaimed = %d", q.Unclaimed())
	}
}

// Out-of-order release under concurrent claimers: W workers claim disjoint
// slices and deliver in scrambled order; every command must commit exactly
// once, in instance order, and the claim offset must return to zero. Run
// with -race: Claim/Deliver/Unclaimed race on purpose.
func TestCommitQueueConcurrentOutOfOrder(t *testing.T) {
	const instances = 40
	r := NewReplica(0, kv.NewStore())
	var mu sync.Mutex
	var order []uint64
	q := NewCommitQueue(r, 1, func(instance uint64, _ model.Value, _ []string) {
		mu.Lock()
		order = append(order, instance)
		mu.Unlock()
	})
	for i := 0; i < instances; i++ {
		r.Submit(testCmd(i))
	}
	// Four claimers race for disjoint instance sets (q.mu serializes the
	// slice assignment; the race detector audits the locking).
	proposals := make([]model.Value, instances+1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for inst := uint64(w + 1); inst <= instances; inst += 4 {
				proposals[inst] = q.Claim(inst, 1)
			}
		}(w)
	}
	wg.Wait()
	// Deliver from 4 workers, each a different stride, so later instances
	// routinely arrive before earlier ones.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for inst := uint64(w + 1); inst <= instances; inst += 4 {
				q.Deliver(instances+1-inst, proposals[instances+1-inst])
			}
		}(w)
	}
	wg.Wait()
	if got := r.Log.Len(); got != instances {
		t.Fatalf("log length %d, want %d", got, instances)
	}
	if got := q.Unclaimed(); got != 0 {
		t.Fatalf("Unclaimed = %d after drain, want 0", got)
	}
	if len(order) != instances {
		t.Fatalf("committed %d instances, want %d", len(order), instances)
	}
	for i, inst := range order {
		if inst != uint64(i+1) {
			t.Fatalf("commit order %v: position %d is %d", order, i, inst)
		}
	}
}

// InstallSnapshot fast-forwards past covered instances: older buffered
// decisions and claims are dropped, newer buffered decisions flush, and a
// racing install loses cleanly.
func TestCommitQueueInstallSnapshot(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	var commits []uint64
	q := NewCommitQueue(r, 1, func(instance uint64, _ model.Value, _ []string) {
		commits = append(commits, instance)
	})
	for i := 0; i < 6; i++ {
		r.Submit(testCmd(i))
	}
	for inst := uint64(1); inst <= 6; inst++ {
		q.Claim(inst, 1)
	}
	// Decisions for 3 and 5..6 arrive; 1, 2 and 4 never will (their peers
	// compacted them away).
	q.Deliver(3, testCmd(3))
	q.Deliver(5, testCmd(5))
	q.Deliver(6, testCmd(6))
	installed := false
	ok, err := q.InstallSnapshot(5, func() error { installed = true; return nil })
	if err != nil || !ok {
		t.Fatalf("InstallSnapshot = %v, %v", ok, err)
	}
	if !installed {
		t.Fatal("install callback not run")
	}
	// 5 and 6 were buffered and are now consecutive: both flush.
	if len(commits) != 2 || commits[0] != 5 || commits[1] != 6 {
		t.Fatalf("commits after install: %v", commits)
	}
	if got := q.NextCommit(); got != 7 {
		t.Fatalf("NextCommit = %d, want 7", got)
	}
	// Claims 1..4 dropped, 5..6 released by their commits.
	if got := q.Unclaimed(); got != r.PendingLen() {
		t.Fatalf("Unclaimed = %d, want full queue %d", got, r.PendingLen())
	}
	// A second install at or below the watermark refuses without calling
	// install.
	called := false
	ok, err = q.InstallSnapshot(7, func() error { called = true; return nil })
	if err != nil || ok || called {
		t.Fatalf("stale install: ok=%v err=%v called=%v", ok, err, called)
	}
}

// ReadIndex tracks the highest known-decided instance: the committed
// watermark when the queue is caught up, and the out-of-order frontier
// when decisions are buffered behind a gap.
func TestCommitQueueReadIndex(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	q := NewCommitQueue(r, 1, nil)
	if got := q.ReadIndex(); got != 0 {
		t.Fatalf("fresh queue ReadIndex = %d, want 0", got)
	}
	if q.Deliver(1, testCmd(1)) != 1 {
		t.Fatal("in-order delivery did not commit")
	}
	if got := q.ReadIndex(); got != 1 {
		t.Fatalf("ReadIndex = %d after committing 1, want 1", got)
	}
	// Instance 3 buffers behind the missing 2: the read index must report
	// 3 — this replica knows a newer decision exists, so a read-index read
	// has to wait for it rather than serve the instance-1 state.
	if q.Deliver(3, testCmd(3)) != 0 {
		t.Fatal("gapped delivery committed")
	}
	if got := q.ReadIndex(); got != 3 {
		t.Fatalf("ReadIndex = %d with buffered instance 3, want 3", got)
	}
	if q.Deliver(2, testCmd(2)) != 2 {
		t.Fatal("gap fill did not flush both")
	}
	if got := q.ReadIndex(); got != 3 {
		t.Fatalf("ReadIndex = %d after flush, want 3", got)
	}
}

// WaitApplied returns immediately for applied instances, blocks across a
// decision gap until the flush passes the target, and respects deadlines.
func TestCommitQueueWaitApplied(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	q := NewCommitQueue(r, 1, nil)
	q.Deliver(1, testCmd(1))
	if !q.WaitApplied(1, time.Now()) {
		t.Fatal("WaitApplied(applied instance) blocked")
	}
	// Deadline already expired and the instance is not applied: false.
	if q.WaitApplied(2, time.Now().Add(-time.Second)) {
		t.Fatal("WaitApplied reported an unapplied instance as applied")
	}
	// Buffer 3 behind the missing 2, then fill the gap from another
	// goroutine: the waiter must wake once the flush passes instance 3.
	q.Deliver(3, testCmd(3))
	done := make(chan bool, 1)
	go func() {
		done <- q.WaitApplied(3, time.Now().Add(10*time.Second))
	}()
	select {
	case <-done:
		t.Fatal("WaitApplied returned before the gap filled")
	case <-time.After(20 * time.Millisecond):
	}
	q.Deliver(2, testCmd(2))
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitApplied timed out despite the flush")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitApplied never woke after the gap filled")
	}
	if q.WaitApplied(99, time.Now().Add(30*time.Millisecond)) {
		t.Fatal("WaitApplied(future instance) did not time out")
	}
}

// A snapshot install advances the watermark without committing anything
// through the queue; WaitApplied waiters parked on covered instances must
// wake.
func TestCommitQueueWaitAppliedSnapshot(t *testing.T) {
	r := NewReplica(0, kv.NewStore())
	q := NewCommitQueue(r, 1, nil)
	done := make(chan bool, 1)
	go func() {
		done <- q.WaitApplied(7, time.Now().Add(10*time.Second))
	}()
	select {
	case <-done:
		t.Fatal("WaitApplied returned before the snapshot install")
	case <-time.After(20 * time.Millisecond):
	}
	if ok, err := q.InstallSnapshot(9, nil); !ok || err != nil {
		t.Fatalf("InstallSnapshot = %v, %v", ok, err)
	}
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitApplied timed out despite the snapshot fast-forward")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitApplied never woke after the snapshot install")
	}
	if got := q.ReadIndex(); got != 8 {
		t.Fatalf("ReadIndex = %d after snapshot to 9, want 8", got)
	}
}
