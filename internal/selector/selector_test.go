package selector

import (
	"reflect"
	"testing"
	"testing/quick"

	"genconsensus/internal/model"
)

func TestAll(t *testing.T) {
	s := NewAll(4)
	want := []model.PID{0, 1, 2, 3}
	for p := 0; p < 4; p++ {
		for phase := 1; phase <= 5; phase++ {
			got := s.Select(model.PID(p), model.Phase(phase))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Select(%d, %d) = %v, want %v", p, phase, got, want)
			}
		}
	}
	if !s.Fixed() {
		t.Error("All must be Fixed")
	}
	if s.Name() != "selector/all" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestRotatingCoordinator(t *testing.T) {
	s := NewRotatingCoordinator(3)
	tests := []struct {
		phase model.Phase
		want  model.PID
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 0}, {7, 0},
	}
	for _, tt := range tests {
		got := s.Select(0, tt.phase)
		if len(got) != 1 || got[0] != tt.want {
			t.Errorf("Select(_, %d) = %v, want [%d]", tt.phase, got, tt.want)
		}
	}
	if !s.Fixed() {
		t.Error("RotatingCoordinator must be Fixed")
	}
	// Every process proposes the same coordinator (SL1 holds in every
	// phase, not just eventually).
	for p := 0; p < 3; p++ {
		if got := s.Select(model.PID(p), 2); got[0] != 1 {
			t.Errorf("process %d proposes %v in phase 2", p, got)
		}
	}
}

// Rotation guarantees Selector-liveness: within n consecutive phases every
// process coordinates at least once, so a correct one is eventually chosen.
func TestRotatingCoordinatorCoversAll(t *testing.T) {
	n := 5
	s := NewRotatingCoordinator(n)
	seen := map[model.PID]bool{}
	for phase := 1; phase <= n; phase++ {
		seen[s.Select(0, model.Phase(phase))[0]] = true
	}
	if len(seen) != n {
		t.Errorf("rotation covered %d of %d processes", len(seen), n)
	}
}

func TestRotatingSubset(t *testing.T) {
	s, err := NewRotatingSubset(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Select(0, 1)
	if !reflect.DeepEqual(got, []model.PID{0, 1}) {
		t.Errorf("Select(_, 1) = %v, want [0 1]", got)
	}
	got = s.Select(0, 5)
	if !reflect.DeepEqual(got, []model.PID{4, 0}) {
		t.Errorf("Select(_, 5) = %v, want [4 0] (wraps)", got)
	}
	if !s.Fixed() {
		t.Error("RotatingSubset must be Fixed")
	}
	if s.Name() != "selector/rotating-subset" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestRotatingSubsetValidation(t *testing.T) {
	if _, err := NewRotatingSubset(5, 0); err == nil {
		t.Error("size 0 must be rejected")
	}
	if _, err := NewRotatingSubset(5, 6); err == nil {
		t.Error("size > n must be rejected")
	}
}

func TestStableLeader(t *testing.T) {
	s := NewStableLeader(2)
	for phase := 1; phase <= 4; phase++ {
		got := s.Select(0, model.Phase(phase))
		if len(got) != 1 || got[0] != 2 {
			t.Errorf("Select(_, %d) = %v, want [2]", phase, got)
		}
	}
	if !s.Fixed() {
		t.Error("Leader must be Fixed")
	}
}

func TestLeaderOracle(t *testing.T) {
	s := NewLeader(func(phase model.Phase) model.PID {
		if phase < 3 {
			return 0 // suspected later
		}
		return 1
	})
	if got := s.Select(0, 1)[0]; got != 0 {
		t.Errorf("phase 1 leader = %d, want 0", got)
	}
	if got := s.Select(0, 3)[0]; got != 1 {
		t.Errorf("phase 3 leader = %d, want 1", got)
	}
	if s.Name() != "selector/leader" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestCheckValidity(t *testing.T) {
	// Π with n=4 satisfies validity for b=1 and strong validity for
	// b=1, f=0 (|S| = 4 > 3b+2f = 3).
	if err := CheckValidity(NewAll(4), 4, 1, 0, 6, false); err != nil {
		t.Errorf("All n=4 b=1: %v", err)
	}
	if err := CheckValidity(NewAll(4), 4, 1, 0, 6, true); err != nil {
		t.Errorf("All n=4 b=1 strong: %v", err)
	}
	// Singleton coordinator fails validity as soon as b ≥ 1.
	if err := CheckValidity(NewRotatingCoordinator(4), 4, 1, 0, 6, false); err == nil {
		t.Error("singleton selector must fail validity with b=1")
	}
	// ... but is fine with b = 0.
	if err := CheckValidity(NewRotatingCoordinator(4), 4, 0, 1, 6, false); err != nil {
		t.Errorf("singleton selector b=0: %v", err)
	}
	// b+1-sized rotating subset passes plain validity but not strong.
	sub, err := NewRotatingSubset(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckValidity(sub, 5, 1, 0, 6, false); err != nil {
		t.Errorf("subset size b+1: %v", err)
	}
	if err := CheckValidity(sub, 5, 1, 0, 6, true); err == nil {
		t.Error("subset size b+1 must fail strong validity for b=1")
	}
}

// Property: all built-in selectors satisfy SL1 in every phase (they are
// process-independent): Select(p, φ) = Select(q, φ).
func TestSL1Property(t *testing.T) {
	n := 7
	sub, err := NewRotatingSubset(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	sels := []Selector{NewAll(n), NewRotatingCoordinator(n), sub, NewStableLeader(3)}
	prop := func(pRaw, qRaw, phaseRaw uint8) bool {
		p := model.PID(pRaw % uint8(n))
		q := model.PID(qRaw % uint8(n))
		phase := model.Phase(1 + phaseRaw%50)
		for _, s := range sels {
			if !reflect.DeepEqual(s.Select(p, phase), s.Select(q, phase)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: rotating subset always returns exactly k distinct members in Π.
func TestRotatingSubsetWellFormedProperty(t *testing.T) {
	prop := func(nRaw, kRaw, phaseRaw uint8) bool {
		n := 2 + int(nRaw%9)
		k := 1 + int(kRaw)%n
		s, err := NewRotatingSubset(n, k)
		if err != nil {
			return false
		}
		set := s.Select(0, model.Phase(1+phaseRaw%30))
		if len(set) != k {
			return false
		}
		seen := map[model.PID]bool{}
		for _, p := range set {
			if p < 0 || int(p) >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
