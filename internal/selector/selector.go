// Package selector implements the Selector(p, φ) parameter of the generic
// consensus algorithm: the function each process uses to propose the set of
// validators for a phase.
//
// A Selector must satisfy (§3.2):
//
//   - Selector-validity: a non-empty Selector(p, φ) has more than b members
//     (strongValidity: more than 3b+2f members, required by class-3
//     FLV-liveness).
//   - Selector-liveness: in some good phase φ0 all correct processes propose
//     the same set (SL1), containing ≥ TD correct processes when FLAG = *
//     (SL2), or > (|S|+b)/2 correct processes when FLAG = φ (SL3).
package selector

import (
	"fmt"

	"genconsensus/internal/model"
)

// Selector is the Selector(p, φ) parameter. Implementations must be
// deterministic functions of (p, φ).
type Selector interface {
	// Select returns p's proposal for the validator set of phase φ.
	Select(p model.PID, phase model.Phase) []model.PID
	// Fixed reports whether the same set is returned for every process
	// and phase, enabling the §3.1 optimization that omits the set from
	// selection/validation messages and skips line 21.
	Fixed() bool
	// Name identifies the instantiation in traces.
	Name() string
}

// All returns the trivial instantiation Selector(p, φ) = Π used by all the
// Byzantine algorithms of §5 (FaB Paxos, MQB, PBFT) and by OneThirdRule.
type All struct {
	n int
}

// NewAll returns the whole-Π selector for n processes.
func NewAll(n int) *All { return &All{n: n} }

// Select implements Selector.
func (s *All) Select(model.PID, model.Phase) []model.PID { return model.AllPIDs(s.n) }

// Fixed implements Selector.
func (s *All) Fixed() bool { return true }

// Name implements Selector.
func (s *All) Name() string { return "selector/all" }

// RotatingCoordinator returns the single process {φ mod n}: the rotating
// coordinator of Chandra-Toueg, usable only with benign faults (b = 0),
// where a singleton set satisfies Selector-validity (|S| > b = 0).
type RotatingCoordinator struct {
	n int
}

// NewRotatingCoordinator returns the rotating single-coordinator selector.
func NewRotatingCoordinator(n int) *RotatingCoordinator {
	return &RotatingCoordinator{n: n}
}

// Select implements Selector. Phase 1 maps to process 0.
func (s *RotatingCoordinator) Select(_ model.PID, phase model.Phase) []model.PID {
	return []model.PID{model.PID(int(phase-1) % s.n)}
}

// Fixed implements Selector: the set varies per phase, but not per process,
// and is computable locally from φ alone — the optimization still applies.
func (s *RotatingCoordinator) Fixed() bool { return true }

// Name implements Selector.
func (s *RotatingCoordinator) Name() string { return "selector/rotating-coordinator" }

// RotatingSubset returns a deterministic window of size k starting at
// (φ-1) mod n: the alternative Byzantine instantiation mentioned in §4.2
// ("the same set S of b+1 processes at every process, with S being different
// in every phase"). k must exceed b (Selector-validity); use k > 3b+2f for
// class-3 algorithms (Selector-strongValidity).
type RotatingSubset struct {
	n, k int
}

// NewRotatingSubset returns the rotating k-subset selector.
func NewRotatingSubset(n, k int) (*RotatingSubset, error) {
	if k <= 0 || k > n {
		return nil, fmt.Errorf("selector: subset size %d out of range (0, %d]", k, n)
	}
	return &RotatingSubset{n: n, k: k}, nil
}

// Select implements Selector.
func (s *RotatingSubset) Select(_ model.PID, phase model.Phase) []model.PID {
	out := make([]model.PID, s.k)
	start := int(phase-1) % s.n
	for i := 0; i < s.k; i++ {
		out[i] = model.PID((start + i) % s.n)
	}
	return out
}

// Fixed implements Selector (same reasoning as RotatingCoordinator).
func (s *RotatingSubset) Fixed() bool { return true }

// Name implements Selector.
func (s *RotatingSubset) Name() string { return "selector/rotating-subset" }

// Leader wraps an external leader-election oracle (Ω) as used by Paxos: all
// processes follow the oracle's current leader for the phase. The oracle is
// a function so tests and runtimes can steer it; it must converge for
// liveness (all correct processes eventually agree on a correct leader).
type Leader struct {
	oracle func(phase model.Phase) model.PID
}

// NewLeader returns a leader-election selector driven by oracle.
func NewLeader(oracle func(phase model.Phase) model.PID) *Leader {
	return &Leader{oracle: oracle}
}

// NewStableLeader returns a Leader that always elects the given process,
// modelling a stable Ω oracle.
func NewStableLeader(leader model.PID) *Leader {
	return &Leader{oracle: func(model.Phase) model.PID { return leader }}
}

// Select implements Selector.
func (s *Leader) Select(_ model.PID, phase model.Phase) []model.PID {
	return []model.PID{s.oracle(phase)}
}

// Fixed implements Selector: the oracle is shared by construction in this
// implementation, so the set does not vary per process.
func (s *Leader) Fixed() bool { return true }

// Name implements Selector.
func (s *Leader) Name() string { return "selector/leader" }

// CheckValidity reports whether sel satisfies Selector-validity for b (and,
// when strong is set, Selector-strongValidity for b, f) over the first
// maxPhase phases for every process in 0..n-1.
func CheckValidity(sel Selector, n, b, f, maxPhase int, strong bool) error {
	min := b
	if strong {
		min = 3*b + 2*f
	}
	for p := 0; p < n; p++ {
		for phase := 1; phase <= maxPhase; phase++ {
			s := sel.Select(model.PID(p), model.Phase(phase))
			if len(s) == 0 {
				continue
			}
			if len(s) <= min {
				return fmt.Errorf("selector %s: |S|=%d ≤ %d at p=%d φ=%d",
					sel.Name(), len(s), min, p, phase)
			}
		}
	}
	return nil
}
