package omega

import (
	"testing"

	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/model"
	"genconsensus/internal/round"
	"genconsensus/internal/sim"
)

func TestDetectorBasics(t *testing.T) {
	d := NewDetector(3, 2)
	// Initially everyone is trusted and 0 leads.
	if !d.Trusts(0) || !d.Trusts(2) {
		t.Fatal("fresh detector must trust everyone")
	}
	if d.Leader() != 0 {
		t.Fatalf("initial leader = %d", d.Leader())
	}
	// Rounds pass without hearing from 0: suspicion after the window.
	d.Observe(1, model.Received{1: {}, 2: {}})
	d.Observe(2, model.Received{1: {}, 2: {}})
	d.Observe(3, model.Received{1: {}, 2: {}})
	if d.Trusts(0) {
		t.Fatal("process 0 still trusted after window expiry")
	}
	if d.Leader() != 1 {
		t.Fatalf("leader = %d, want 1", d.Leader())
	}
	// Hearing from 0 again restores trust.
	d.Observe(4, model.Received{0: {}})
	if !d.Trusts(0) || d.Leader() != 0 {
		t.Fatal("process 0 not rehabilitated")
	}
}

func TestDetectorTotalFallback(t *testing.T) {
	d := NewDetector(2, 1)
	d.Observe(5, model.Received{})
	if d.Leader() != 0 {
		t.Fatalf("fallback leader = %d, want 0", d.Leader())
	}
}

func TestSelectorShape(t *testing.T) {
	d := NewDetector(3, 2)
	s := NewSelector(d)
	if s.Fixed() {
		t.Fatal("omega selector must not be Fixed")
	}
	if s.Name() != "selector/omega" {
		t.Fatalf("Name = %q", s.Name())
	}
	set := s.Select(1, 4)
	if len(set) != 1 || set[0] != 0 {
		t.Fatalf("Select = %v", set)
	}
}

// buildOmegaPaxos wires n Paxos processes with per-process detectors; the
// selector is non-fixed, so the full line-15/21 set-agreement machinery of
// Algorithm 1 runs.
func buildOmegaPaxos(t *testing.T, n, f int) (map[model.PID]round.Proc, map[model.PID]model.Value, []*Detector) {
	t.Helper()
	procs := map[model.PID]round.Proc{}
	inits := map[model.PID]model.Value{}
	dets := make([]*Detector, n)
	vals := []model.Value{"c", "a", "b"}
	for i := 0; i < n; i++ {
		p := model.PID(i)
		det := NewDetector(n, 4) // window > rounds per phase
		dets[i] = det
		params := core.Params{
			N: n, B: 0, F: f, TD: n/2 + 1,
			Flag:     model.FlagPhase,
			FLV:      flv.NewPaxos(n),
			Selector: NewSelector(det),
		}
		inner, err := core.NewProcess(p, vals[i%len(vals)], params)
		if err != nil {
			t.Fatal(err)
		}
		inits[p] = vals[i%len(vals)]
		procs[p] = NewProc(inner, det)
	}
	return procs, inits, dets
}

func runOmega(t *testing.T, n, f int, procs map[model.PID]round.Proc, inits map[model.PID]model.Value,
	crashes map[model.PID]sim.CrashPlan, maxRounds int) sim.Result {
	t.Helper()
	sched := core.Schedule{Flag: model.FlagPhase}
	e, err := sim.New(sim.Config{
		Params:    core.Params{N: n, B: 0, F: f},
		Inits:     inits,
		Procs:     procs,
		Sched:     &sched,
		Crashes:   crashes,
		Seed:      2,
		MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e.Run()
}

// Fault-free: everyone trusts process 0, which coordinates phase 1 to a
// decision in one 3-round phase — through the non-fixed selector path.
func TestOmegaPaxosFaultFree(t *testing.T) {
	n, f := 3, 1
	procs, inits, _ := buildOmegaPaxos(t, n, f)
	res := runOmega(t, n, f, procs, inits, nil, 0)
	if !res.AllDecided {
		t.Fatalf("no decision in %d rounds", res.Rounds)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", res.Rounds)
	}
}

// A dead initial leader: detectors time it out, elect process 1, and the
// survivors decide — Ω convergence end to end.
func TestOmegaPaxosLeaderCrash(t *testing.T) {
	n, f := 3, 1
	procs, inits, dets := buildOmegaPaxos(t, n, f)
	crashes := map[model.PID]sim.CrashPlan{0: {Round: 1}}
	res := runOmega(t, n, f, procs, inits, crashes, 120)
	if !res.AllDecided {
		t.Fatalf("survivors did not decide in %d rounds", res.Rounds)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Survivors' detectors must have converged away from process 0.
	for i := 1; i < n; i++ {
		if dets[i].Trusts(0) {
			t.Errorf("detector %d still trusts the crashed leader", i)
		}
		if got := dets[i].Leader(); got != 1 {
			t.Errorf("detector %d leader = %d, want 1", i, got)
		}
	}
	if res.Rounds <= 3 {
		t.Errorf("rounds = %d: suspiciously fast with a dead leader", res.Rounds)
	}
}

// Non-leader crash: the leader stays, the system decides normally.
func TestOmegaPaxosFollowerCrash(t *testing.T) {
	n, f := 3, 1
	procs, inits, _ := buildOmegaPaxos(t, n, f)
	crashes := map[model.PID]sim.CrashPlan{2: {Round: 2}}
	res := runOmega(t, n, f, procs, inits, crashes, 120)
	if !res.AllDecided {
		t.Fatalf("no decision in %d rounds", res.Rounds)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

// Five processes, two crashes (n > 2f), late good phase: Ω still converges
// under message loss once the network stabilizes.
func TestOmegaPaxosLossyNetwork(t *testing.T) {
	n, f := 5, 2
	procs, inits, _ := buildOmegaPaxos(t, n, f)
	crashes := map[model.PID]sim.CrashPlan{0: {Round: 1}, 3: {Round: 4}}
	sched := core.Schedule{Flag: model.FlagPhase}
	e, err := sim.New(sim.Config{
		Params:    core.Params{N: n, B: 0, F: f},
		Inits:     inits,
		Procs:     procs,
		Sched:     &sched,
		Crashes:   crashes,
		Modes:     sim.GoodFromPhase(sched, 3),
		Drop:      sim.RandomDrop{P: 0.5},
		Seed:      11,
		MaxRounds: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.AllDecided {
		t.Fatalf("no decision in %d rounds", res.Rounds)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}
