// Package omega implements an Ω leader-election oracle from message
// observations: the "leader election function used in [11]" that the paper
// names as a Selector instantiation for Paxos (§4.2).
//
// Each process owns a Detector fed with the sender sets of the vectors it
// receives. A process is trusted while it has been heard from within the
// suspicion window; the elected leader is the smallest trusted process.
// During good periods all correct processes hear the same senders, so their
// detectors converge on the same correct leader — exactly the
// Selector-liveness property (SL1 + SL3 for singleton selectors with b=0).
//
// Because each process consults its own detector, the resulting Selector is
// NOT fixed: the generic algorithm transmits proposed validator sets and
// reconstructs them with the thresholds of lines 15 and 21 of Algorithm 1 —
// this package is what exercises that path end to end.
package omega

import (
	"genconsensus/internal/core"
	"genconsensus/internal/model"
	"genconsensus/internal/round"
)

// Detector is a per-process eventual leader detector. It is not safe for
// concurrent use; in the lock-step simulator each process owns one.
type Detector struct {
	n        int
	window   model.Round
	lastSeen map[model.PID]model.Round
	now      model.Round
}

// NewDetector returns a detector for n processes that suspects processes
// not heard from within window rounds. Every process starts trusted.
func NewDetector(n int, window model.Round) *Detector {
	d := &Detector{
		n:        n,
		window:   window,
		lastSeen: make(map[model.PID]model.Round, n),
	}
	for _, p := range model.AllPIDs(n) {
		d.lastSeen[p] = 0
	}
	return d
}

// Observe feeds the senders of a received vector at the given round.
func (d *Detector) Observe(r model.Round, mu model.Received) {
	if r > d.now {
		d.now = r
	}
	for q := range mu {
		if r > d.lastSeen[q] {
			d.lastSeen[q] = r
		}
	}
}

// Trusts reports whether q is currently trusted.
func (d *Detector) Trusts(q model.PID) bool {
	return d.now-d.lastSeen[q] <= d.window
}

// Leader returns the smallest trusted process (falling back to process 0 if
// everything is suspected, which keeps the oracle total).
func (d *Detector) Leader() model.PID {
	for _, p := range model.AllPIDs(d.n) {
		if d.Trusts(p) {
			return p
		}
	}
	return 0
}

// Selector adapts a Detector to the Selector interface. It is not Fixed:
// different processes may (transiently) elect different leaders, so the
// generic algorithm's set-agreement machinery (lines 15/21) is in play.
type Selector struct {
	det *Detector
}

// NewSelector wraps a detector.
func NewSelector(det *Detector) *Selector { return &Selector{det: det} }

// Select implements selector.Selector: the current leader, as a singleton.
func (s *Selector) Select(model.PID, model.Phase) []model.PID {
	return []model.PID{s.det.Leader()}
}

// Fixed implements selector.Selector.
func (s *Selector) Fixed() bool { return false }

// Name implements selector.Selector.
func (s *Selector) Name() string { return "selector/omega" }

// Proc wraps a core.Process so that every received vector also feeds the
// process's failure detector.
type Proc struct {
	inner *core.Process
	det   *Detector
}

var _ round.Proc = (*Proc)(nil)

// NewProc pairs a consensus process with its detector.
func NewProc(inner *core.Process, det *Detector) *Proc {
	return &Proc{inner: inner, det: det}
}

// ID implements round.Proc.
func (p *Proc) ID() model.PID { return p.inner.ID() }

// Send implements round.Proc.
func (p *Proc) Send(r model.Round) map[model.PID]model.Message { return p.inner.Send(r) }

// Transition implements round.Proc: observe, then run the algorithm.
func (p *Proc) Transition(r model.Round, mu model.Received) {
	p.det.Observe(r, mu)
	p.inner.Transition(r, mu)
}

// Decided implements round.Proc.
func (p *Proc) Decided() (model.Value, bool) { return p.inner.Decided() }

// DecidedAt forwards the decision round.
func (p *Proc) DecidedAt() model.Round { return p.inner.DecidedAt() }

// Inner exposes the wrapped process for white-box assertions.
func (p *Proc) Inner() *core.Process { return p.inner }
