package transport

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"genconsensus/internal/auth"
	"genconsensus/internal/model"
	"genconsensus/internal/wire"
)

// The payload plane: content-addressed dissemination of proposal bodies
// under the voting plane. A proposer announces its encoded batch once
// (PAYLOAD frames on the established session links — full mesh, or k
// random peers in gossip-fanout mode) and votes with the 32-byte digest;
// receivers resolve digests against the local PayloadStore and pull
// misses by digest over dedicated connections (FETCH/FETCH-REPLY, the
// state-transfer shape). Everything a hostile peer can send here is
// bounded: the store has a byte budget with FIFO eviction, announce and
// reply bodies are verified against their digest before a byte is kept
// (a mismatch is a strike), fetch requests must carry a pairwise MAC, and
// unresolvable digests are retried a fixed number of times and then
// banned, so they can neither pin memory nor stall the fetch worker.

// Payload-plane limits.
const (
	// payloadWantTries is how many fetch rounds (each trying several
	// peers) a missing digest gets before it is written off as hostile.
	payloadWantTries = 2
	// payloadFetchPeers bounds the peers tried per fetch round.
	payloadFetchPeers = 3
	// payloadPerPeerInflight caps concurrent fetches against one peer, so
	// a burst of misses cannot dogpile a single member.
	payloadPerPeerInflight = 2
	// payloadMaxWants bounds the missing-digest queue; beyond it new
	// misses are dropped (the chooser re-registers on real demand).
	payloadMaxWants = 512
	// payloadMaxStrikes bounds the abandoned-digest ban list.
	payloadMaxStrikes = 4096
)

// Errors returned by the payload plane.
var (
	ErrPayloadNotCached = errors.New("transport: payload not cached at peer")
	ErrPayloadForged    = errors.New("transport: payload digest mismatch")
)

type payloadEntry struct {
	group wire.GroupID
	data  []byte
}

// payloadStore is the bounded, byte-budgeted, sha256-keyed store behind
// the payload plane, plus the want/strike bookkeeping of the fetch path.
// One store serves every group; bytes and entries are accounted per group
// for the observability surface.
type payloadStore struct {
	mu       sync.Mutex
	entries  map[[sha256.Size]byte]payloadEntry
	order    [][sha256.Size]byte // FIFO eviction order
	bytes    int
	maxBytes int

	groupBytes   []int64 // per-group store bytes (gauge source)
	groupEntries []int64

	// wants are digests the voting plane missed and the fetch worker
	// should pull; inflight marks those a fetch round is working on.
	wants    map[[sha256.Size]byte]wire.GroupID
	inflight map[[sha256.Size]byte]bool
	tries    map[[sha256.Size]byte]int
	// strikes bans digests that exhausted their fetch budget: almost
	// certainly Byzantine references to bytes nobody ever published.
	strikes map[[sha256.Size]byte]bool
}

func newPayloadStore(maxBytes, groups int) *payloadStore {
	return &payloadStore{
		entries:      make(map[[sha256.Size]byte]payloadEntry),
		maxBytes:     maxBytes,
		groupBytes:   make([]int64, groups),
		groupEntries: make([]int64, groups),
		wants:        make(map[[sha256.Size]byte]wire.GroupID),
		inflight:     make(map[[sha256.Size]byte]bool),
		tries:        make(map[[sha256.Size]byte]int),
		strikes:      make(map[[sha256.Size]byte]bool),
	}
}

// put stores data (which the caller owns and has digest-verified) and
// evicts oldest-first past the byte budget. The newest entry always
// stays, so a single oversized-but-legal payload cannot starve itself.
// Returns the number of evictions.
func (s *payloadStore) put(g wire.GroupID, sum [sha256.Size]byte, data []byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[sum]; dup {
		return 0
	}
	s.entries[sum] = payloadEntry{group: g, data: data}
	s.order = append(s.order, sum)
	s.bytes += len(data)
	s.groupBytes[g] += int64(len(data))
	s.groupEntries[g]++
	delete(s.wants, sum) // arrived by push while we were about to pull
	evicted := 0
	for s.bytes > s.maxBytes && len(s.order) > 1 {
		victim := s.order[0]
		s.order = s.order[1:]
		e, ok := s.entries[victim]
		if !ok {
			continue
		}
		delete(s.entries, victim)
		s.bytes -= len(e.data)
		s.groupBytes[e.group] -= int64(len(e.data))
		s.groupEntries[e.group]--
		evicted++
	}
	return evicted
}

// get returns the stored payload for sum.
func (s *payloadStore) get(sum [sha256.Size]byte) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.entries[sum]
	s.mu.Unlock()
	return e.data, ok
}

// want registers a miss for the fetch worker unless the digest is banned,
// already wanted, or the want queue is full. Reports whether the worker
// should be woken.
func (s *payloadStore) want(g wire.GroupID, sum [sha256.Size]byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.strikes[sum] {
		return false
	}
	if _, ok := s.wants[sum]; ok {
		return false
	}
	if len(s.wants) >= payloadMaxWants {
		return false
	}
	s.wants[sum] = g
	return true
}

// nextWant hands the fetch worker one want not already in flight.
func (s *payloadStore) nextWant() (wire.GroupID, [sha256.Size]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for sum, g := range s.wants {
		if s.inflight[sum] {
			continue
		}
		s.inflight[sum] = true
		return g, sum, true
	}
	return 0, [sha256.Size]byte{}, false
}

// fetchDone records a fetch round's outcome for sum. A failed round
// beyond the try budget bans the digest (strike accounting); reports
// whether the digest was abandoned.
func (s *payloadStore) fetchDone(sum [sha256.Size]byte, ok bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, sum)
	if ok {
		delete(s.wants, sum)
		delete(s.tries, sum)
		return false
	}
	s.tries[sum]++
	if s.tries[sum] < payloadWantTries {
		return false
	}
	delete(s.wants, sum)
	delete(s.tries, sum)
	if len(s.strikes) >= payloadMaxStrikes {
		// Crude but bounded: forget old bans rather than grow without
		// limit. A re-offending digest just earns its strikes again.
		s.strikes = make(map[[sha256.Size]byte]bool)
	}
	s.strikes[sum] = true
	return true
}

func (s *payloadStore) stats() (bytes int, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, len(s.entries)
}

func (s *payloadStore) groupStats(g wire.GroupID) (bytes, entries int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(g) >= len(s.groupBytes) {
		return 0, 0
	}
	return s.groupBytes[g], s.groupEntries[g]
}

// PayloadStoreStats reports the store's current footprint.
func (n *Node) PayloadStoreStats() (bytes, entries int) {
	return n.store.stats()
}

// AnnouncePayload publishes one content-addressed proposal body: it lands
// in the local store (so this node can serve fetches and resolve its own
// vote) and is pushed once to the configured peers — every peer, or
// GossipFanout random ones. data is copied; the caller keeps ownership.
func (n *Node) AnnouncePayload(g wire.GroupID, sum [sha256.Size]byte, data []byte) {
	if int(g) >= n.cfg.Groups || len(data) == 0 || len(data) > wire.MaxPayloadDataBytes {
		return
	}
	if ev := n.store.put(g, sum, append([]byte(nil), data...)); ev > 0 {
		n.m.payloadEvictions[g].Add(uint64(ev))
	}
	for _, p := range n.pushTargets() {
		pc := n.connTo(p)
		if pc == nil {
			continue
		}
		frame := wire.BeginFrame(wire.GetFrame())
		frame = wire.AppendPayload(frame, wire.Payload{
			Kind:   wire.PayloadAnnounce,
			Group:  g,
			Sender: n.cfg.ID,
			Digest: sum,
			Data:   data,
		})
		frame, err := wire.FinishFrame(frame)
		if err != nil {
			wire.PutFrame(frame)
			continue
		}
		if !pc.enqueueFrame(frame) {
			n.forgetConn(pc)
		}
	}
}

// pushTargets returns the peers an announce goes to: all of them in mesh
// mode, GossipFanout random ones in gossip mode.
func (n *Node) pushTargets() []model.PID {
	n.mu.Lock()
	peers := make([]model.PID, 0, len(n.cfg.Peers))
	for p, addr := range n.cfg.Peers {
		if p != n.cfg.ID && addr != "" {
			peers = append(peers, p)
		}
	}
	n.mu.Unlock()
	k := n.cfg.GossipFanout
	if k <= 0 || k >= len(peers) {
		return peers
	}
	rand.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	return peers[:k]
}

// ResolvePayload answers the voting plane's resolve-before-weigh lookup:
// the stored body on a hit; on a miss it registers the digest with the
// asynchronous fetch worker and reports failure now (an unresolved digest
// weighs zero this round and resolves by push or pull before a later
// one). Never blocks.
func (n *Node) ResolvePayload(g wire.GroupID, sum [sha256.Size]byte) ([]byte, bool) {
	if int(g) >= n.cfg.Groups {
		return nil, false
	}
	if data, ok := n.store.get(sum); ok {
		n.m.payloadHits[g].Inc()
		if saved := len(data) - (len(sum) + 8); saved > 0 {
			n.m.payloadBytesSaved[g].Add(uint64(saved))
		}
		return data, true
	}
	n.m.payloadMisses[g].Inc()
	if n.store.want(g, sum) {
		select {
		case n.payloadWant <- struct{}{}:
		default:
		}
	}
	return nil, false
}

// payloadFetchLoop is the pull half of the dissemination protocol: it
// drains the want queue, fetching each missing digest from a few peers in
// random order with a small global concurrency budget and a per-peer
// inflight cap.
func (n *Node) payloadFetchLoop() {
	defer n.wg.Done()
	sem := make(chan struct{}, n.cfg.PayloadFetchInflight)
	var inflightMu sync.Mutex
	perPeer := make(map[model.PID]int)
	for {
		select {
		case <-n.stop:
			return
		case <-n.payloadWant:
		}
		for {
			g, sum, ok := n.store.nextWant()
			if !ok {
				break
			}
			select {
			case sem <- struct{}{}:
			case <-n.stop:
				return
			}
			n.wg.Add(1)
			go func(g wire.GroupID, sum [sha256.Size]byte) {
				defer n.wg.Done()
				defer func() { <-sem }()
				fetched := false
				for _, p := range n.fetchOrder() {
					inflightMu.Lock()
					busy := perPeer[p] >= payloadPerPeerInflight
					if !busy {
						perPeer[p]++
					}
					inflightMu.Unlock()
					if busy {
						continue
					}
					data, err := n.FetchPayload(p, g, sum, n.cfg.BaseTimeout*4)
					inflightMu.Lock()
					perPeer[p]--
					inflightMu.Unlock()
					if err == nil {
						if ev := n.store.put(g, sum, data); ev > 0 {
							n.m.payloadEvictions[g].Add(uint64(ev))
						}
						fetched = true
						break
					}
				}
				if !fetched {
					n.m.payloadFetchFails[g].Inc()
				}
				if n.store.fetchDone(sum, fetched) {
					n.m.payloadAbandoned[g].Inc()
					n.events.Emit(int(g), "payload.abandoned", "digest", fmt.Sprintf("%x", sum[:8]))
				}
				// Self-pump: a failed round leaves the want queued for its
				// next try; re-wake the drain loop so retries don't have to
				// wait for an unrelated miss. The try budget guarantees this
				// terminates.
				select {
				case n.payloadWant <- struct{}{}:
				default:
				}
			}(g, sum)
		}
	}
}

// fetchOrder returns up to payloadFetchPeers live-configured peers in
// random order.
func (n *Node) fetchOrder() []model.PID {
	peers := n.pushTargetsAll()
	rand.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > payloadFetchPeers {
		peers = peers[:payloadFetchPeers]
	}
	return peers
}

// pushTargetsAll lists every configured peer regardless of fanout.
func (n *Node) pushTargetsAll() []model.PID {
	n.mu.Lock()
	defer n.mu.Unlock()
	peers := make([]model.PID, 0, len(n.cfg.Peers))
	for p, addr := range n.cfg.Peers {
		if p != n.cfg.ID && addr != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// FetchPayload pulls one payload by digest from a peer over a dedicated
// connection (the FetchDecision shape: sealed request, synchronous
// reply). The reply authenticates itself: sha256(data) must equal the
// requested digest, so a forged body is rejected — and counted — for the
// price of one hash.
func (n *Node) FetchPayload(from model.PID, g wire.GroupID, sum [sha256.Size]byte, timeout time.Duration) ([]byte, error) {
	n.mu.Lock()
	addr, ok := n.cfg.Peers[from]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok || addr == "" || from == n.cfg.ID {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, from)
	}
	if int(g) < len(n.m.payloadFetches) {
		n.m.payloadFetches[g].Inc()
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %d: %w", from, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))

	key := auth.PairKey(n.cfg.AuthSeed, n.cfg.ID, from)
	req := wire.Payload{Kind: wire.PayloadFetch, Group: g, Sender: n.cfg.ID, Digest: sum}
	frame := wire.AppendSignedPayload(make([]byte, 0, 128), req, func(covered []byte) []byte {
		return auth.MAC(key, covered)
	})
	if err := wire.WriteFrame(conn, frame); err != nil {
		return nil, fmt.Errorf("transport: requesting payload from %d: %w", from, err)
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("transport: reading payload from %d: %w", from, err)
	}
	reply, err := wire.DecodePayload(payload)
	if err != nil {
		return nil, fmt.Errorf("transport: peer %d: %w", from, err)
	}
	switch reply.Kind {
	case wire.PayloadFetchNone:
		return nil, fmt.Errorf("%w: peer %d digest %x", ErrPayloadNotCached, from, sum[:8])
	case wire.PayloadFetchReply:
		if reply.Digest != sum || sha256.Sum256(reply.Data) != sum {
			if int(g) < len(n.m.payloadForged) {
				n.m.payloadForged[g].Inc()
			}
			return nil, fmt.Errorf("%w: peer %d", ErrPayloadForged, from)
		}
		return append([]byte(nil), reply.Data...), nil
	default:
		return nil, fmt.Errorf("transport: peer %d: unexpected payload kind %d", from, reply.Kind)
	}
}

// handlePayloadFrame dispatches the payload-plane family: announces on
// handshaken peer links, fetch requests on dedicated dialed connections.
func (n *Node) handlePayloadFrame(c *Conn, payload []byte) error {
	p, err := wire.DecodePayload(payload)
	if err != nil {
		return c.strike()
	}
	switch p.Kind {
	case wire.PayloadAnnounce:
		// Announces ride the session link only: the handshake pins the
		// pusher's identity, so an unauthenticated dialer cannot fill the
		// store (its contents steer the chooser's weights).
		if !c.sessioned {
			return c.strike()
		}
		if int(p.Group) >= n.cfg.Groups || len(p.Data) == 0 {
			return c.strike()
		}
		if sha256.Sum256(p.Data) != p.Digest {
			// Forged body under a true digest or vice versa; either way
			// the frame lies about its content address.
			n.m.payloadForged[p.Group].Inc()
			return c.strike()
		}
		if ev := n.store.put(p.Group, p.Digest, append([]byte(nil), p.Data...)); ev > 0 {
			n.m.payloadEvictions[p.Group].Add(uint64(ev))
		}
		return nil
	case wire.PayloadFetch:
		// Fetches use the state-transfer shape: dedicated never-handshaken
		// connections, pairwise-sealed requests. On a session link a
		// sealed frame is a downgrade attempt.
		if c.sessioned {
			return errDowngrade
		}
		return n.servePayloadFetch(c, payload, p)
	default:
		return c.strike()
	}
}

// servePayloadFetch answers one pull. Misses are not strikes — an honest
// laggard may ask for digests this node already evicted — but malformed
// or forged requests are.
func (n *Node) servePayloadFetch(c *Conn, payload []byte, p wire.Payload) error {
	if int(p.Sender) >= n.cfg.N || p.Sender == n.cfg.ID || int(p.Group) >= n.cfg.Groups {
		return c.strike()
	}
	covered, mac, ok := wire.SplitSealed(payload)
	if !ok || !auth.CheckMAC(n.pairKey(p.Sender), covered, mac) {
		return c.strike()
	}
	reply := wire.Payload{Kind: wire.PayloadFetchNone, Group: p.Group, Sender: n.cfg.ID, Digest: p.Digest}
	if data, found := n.store.get(p.Digest); found {
		reply.Kind = wire.PayloadFetchReply
		reply.Data = data
		n.m.payloadFetchServed[p.Group].Inc()
	} else {
		n.m.payloadFetchUnknown[p.Group].Inc()
	}
	if err := wire.WriteFrame(c.conn, wire.AppendPayload(make([]byte, 0, 64+len(reply.Data)), reply)); err != nil {
		return err
	}
	return nil
}

// enqueueFrame queues one completed (length-prefixed) frame on the peer
// link, taking ownership of the buffer — the raw-frame sibling of
// enqueue, used by payload announces, which authenticate by content
// rather than by session tag. Same backpressure rule: a full queue drops
// the frame rather than blocking the caller.
func (pc *peerConn) enqueueFrame(frame []byte) bool {
	pc.mu.Lock()
	if pc.failed {
		pc.mu.Unlock()
		wire.PutFrame(frame)
		return false
	}
	if len(pc.pending) >= pc.node.cfg.MaxPendingFrames {
		pc.mu.Unlock()
		wire.PutFrame(frame)
		pc.node.m.framesDropped.Inc()
		return true
	}
	pc.pending = append(pc.pending, frame)
	pc.mu.Unlock()
	pc.node.m.framesOut.Inc()
	pc.node.m.bytesOut.Add(uint64(len(frame)))
	select {
	case pc.signal <- struct{}{}:
	default:
	}
	return true
}
