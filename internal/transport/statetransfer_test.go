package transport

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"genconsensus/internal/core"
	"genconsensus/internal/model"
	"genconsensus/internal/snapshot"
)

func provide(snap *snapshot.Snapshot) SnapshotProvider {
	return func() (*snapshot.Snapshot, bool) { return snap, snap != nil }
}

func peerIDs(ids ...model.PID) []model.PID { return ids }

func TestFetchSnapshotSingleChunk(t *testing.T) {
	nodes := startCluster(t, 2)
	want := &snapshot.Snapshot{LastInstance: 12, LogIndex: 40, State: []byte("kv state")}
	nodes[1].SetSnapshotProvider(provide(want))

	got, digest, err := nodes[0].FetchSnapshot(1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastInstance != want.LastInstance || got.LogIndex != want.LogIndex ||
		!bytes.Equal(got.State, want.State) {
		t.Fatalf("fetched %+v, want %+v", got, want)
	}
	if digest != snapshot.Digest(want) {
		t.Error("digest mismatch")
	}
}

func TestFetchSnapshotMultiChunk(t *testing.T) {
	nodes := startCluster(t, 2)
	// Force many chunks: 1 KiB chunk size against a 10 KiB state.
	nodes[0].cfg.SnapChunkBytes = 1024
	nodes[1].cfg.SnapChunkBytes = 1024
	want := &snapshot.Snapshot{LastInstance: 3, LogIndex: 9, State: bytes.Repeat([]byte{0x5A}, 10*1024)}
	nodes[1].SetSnapshotProvider(provide(want))

	got, _, err := nodes[0].FetchSnapshot(1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.State, want.State) {
		t.Fatal("multi-chunk state corrupted")
	}
}

func TestFetchSnapshotNone(t *testing.T) {
	nodes := startCluster(t, 2)
	// Node 1 has a provider with nothing yet; node 0's request must get an
	// explicit SnapNone, not a timeout.
	nodes[1].SetSnapshotProvider(provide(nil))
	start := time.Now()
	_, _, err := nodes[0].FetchSnapshot(1, 5*time.Second)
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	if time.Since(start) > time.Second {
		t.Error("SnapNone waited for the timeout")
	}
}

// FetchVerifiedSnapshot requires b+1 matching digests: a single lying peer
// can neither impose its forged snapshot nor block the honest quorum.
func TestFetchVerifiedSnapshotOutvotesForgery(t *testing.T) {
	nodes := startCluster(t, 4)
	honest := &snapshot.Snapshot{LastInstance: 20, LogIndex: 60, State: []byte("honest state")}
	forged := &snapshot.Snapshot{LastInstance: 99, LogIndex: 999, State: []byte("forged state")}
	nodes[1].SetSnapshotProvider(provide(honest))
	nodes[2].SetSnapshotProvider(provide(honest))
	nodes[3].SetSnapshotProvider(provide(forged)) // Byzantine: b=1

	if got, err := nodes[0].FetchVerifiedSnapshot(nil, 2, time.Second); err == nil {
		t.Fatalf("empty peer set produced %+v", got)
	}

	got, err := nodes[0].FetchVerifiedSnapshot(peerIDs(1, 2, 3), 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.State, honest.State) || got.LastInstance != honest.LastInstance {
		t.Fatalf("verified snapshot is not the honest one: %+v", got)
	}
}

// A forged snapshot backed by fewer than quorum peers fails entirely
// rather than installing junk.
func TestFetchVerifiedSnapshotQuorumFailure(t *testing.T) {
	nodes := startCluster(t, 4)
	nodes[1].SetSnapshotProvider(provide(&snapshot.Snapshot{LastInstance: 1, State: []byte("a")}))
	nodes[2].SetSnapshotProvider(provide(&snapshot.Snapshot{LastInstance: 2, State: []byte("b")}))
	nodes[3].SetSnapshotProvider(provide(&snapshot.Snapshot{LastInstance: 3, State: []byte("c")}))
	_, err := nodes[0].FetchVerifiedSnapshot(peerIDs(1, 2, 3), 2, 2*time.Second)
	if !errors.Is(err, ErrSnapshotQuorum) {
		t.Fatalf("err = %v, want ErrSnapshotQuorum", err)
	}
}

// Among multiple quorum-backed digests the newest watermark wins.
func TestFetchVerifiedSnapshotPrefersNewest(t *testing.T) {
	nodes := startCluster(t, 5)
	old := &snapshot.Snapshot{LastInstance: 4, LogIndex: 10, State: []byte("old")}
	newer := &snapshot.Snapshot{LastInstance: 8, LogIndex: 22, State: []byte("new")}
	nodes[1].SetSnapshotProvider(provide(old))
	nodes[2].SetSnapshotProvider(provide(old))
	nodes[3].SetSnapshotProvider(provide(newer))
	nodes[4].SetSnapshotProvider(provide(newer))
	got, err := nodes[0].FetchVerifiedSnapshot(peerIDs(1, 2, 3, 4), 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastInstance != newer.LastInstance {
		t.Fatalf("picked watermark %d, want %d", got.LastInstance, newer.LastInstance)
	}
}

func TestFetchDecision(t *testing.T) {
	nodes := startCluster(t, 2)
	nodes[1].RecordDecision(7, "decided-value")
	got, err := nodes[0].FetchDecision(1, 7, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != "decided-value" {
		t.Fatalf("decision = %q", got)
	}
	if _, err := nodes[0].FetchDecision(1, 8, time.Second); !errors.Is(err, ErrNotCached) {
		t.Fatalf("uncached instance: err = %v, want ErrNotCached", err)
	}
}

func TestDecisionCacheEviction(t *testing.T) {
	nodes := startCluster(t, 2)
	nodes[1].cfg.DecisionCache = 4
	for i := uint64(1); i <= 10; i++ {
		nodes[1].RecordDecision(i, model.Value(fmt.Sprintf("v%d", i)))
	}
	if _, err := nodes[0].FetchDecision(1, 2, time.Second); !errors.Is(err, ErrNotCached) {
		t.Fatalf("evicted instance still served: %v", err)
	}
	if got, err := nodes[0].FetchDecision(1, 10, time.Second); err != nil || got != "v10" {
		t.Fatalf("recent instance: %q, %v", got, err)
	}
}

// A lying peer cannot feed a laggard a forged decision: b+1 matching
// values are required, and the honest majority outvotes it.
func TestFetchVerifiedDecisionOutvotesForgery(t *testing.T) {
	nodes := startCluster(t, 4)
	nodes[1].RecordDecision(3, "honest")
	nodes[2].RecordDecision(3, "honest")
	nodes[3].RecordDecision(3, "forged")
	got, err := nodes[0].FetchVerifiedDecision(peerIDs(1, 2, 3), 3, 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != "honest" {
		t.Fatalf("verified decision = %q", got)
	}
	// Without an honest quorum the fetch fails outright.
	nodes[1].RecordDecision(9, "a")
	nodes[2].RecordDecision(9, "b")
	nodes[3].RecordDecision(9, "c")
	if _, err := nodes[0].FetchVerifiedDecision(peerIDs(1, 2, 3), 9, 2, 2*time.Second); !errors.Is(err, ErrDecisionQuorum) {
		t.Fatalf("split votes: err = %v, want ErrDecisionQuorum", err)
	}
}

// RunProc aborts promptly once its instance is released locally (a
// catch-up committed it another way) instead of burning its round budget.
func TestRunProcAbortsOnRelease(t *testing.T) {
	nodes := startCluster(t, 2)
	params := pbftParams(2, 0)
	params.TD = 2
	proc, err := core.NewProcess(0, "x", params)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 never participates, so instance 5 cannot decide; release it
	// mid-run and the proc must abort with ErrInstanceReleased well before
	// the 1000-round budget.
	done := make(chan error, 1)
	go func() {
		_, err := nodes[0].RunProc(5, proc, 1000, 2)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	nodes[0].ReleaseInstance(5)
	select {
	case err := <-done:
		if !errors.Is(err, ErrInstanceReleased) {
			t.Fatalf("err = %v, want ErrInstanceReleased", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunProc did not abort after release")
	}
}

// A peer that is down just doesn't vote; the survivors still reach quorum.
func TestFetchVerifiedSnapshotSurvivesDownPeer(t *testing.T) {
	nodes := startCluster(t, 4)
	honest := &snapshot.Snapshot{LastInstance: 5, LogIndex: 17, State: []byte("state")}
	nodes[1].SetSnapshotProvider(provide(honest))
	nodes[2].SetSnapshotProvider(provide(honest))
	if err := nodes[3].Close(); err != nil {
		t.Fatal(err)
	}
	got, err := nodes[0].FetchVerifiedSnapshot(peerIDs(1, 2, 3), 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastInstance != honest.LastInstance {
		t.Fatalf("got watermark %d", got.LastInstance)
	}
}

// TestDecisionCacheByteBudget is the ROADMAP-flagged worst case: a burst of
// maximum-size decided batches must stay under the configured byte budget —
// the entry bound alone would admit ring × batch-bytes of memory — with the
// effective ring depth adapting to the decided values' size, and the newest
// decisions always fetchable.
func TestDecisionCacheByteBudget(t *testing.T) {
	nodes := startCluster(t, 2)
	const budget = 256 << 10 // 256 KiB, far below 1024 entries × 32 KiB
	nodes[1].cfg.DecisionCache = 1024
	nodes[1].cfg.DecisionCacheBytes = budget

	maxBatch := model.Value(bytes.Repeat([]byte{'x'}, 32<<10)) // MaxBatchBytes-sized value
	for i := uint64(1); i <= 1024; i++ {
		nodes[1].RecordDecision(i, maxBatch)
	}
	entries, used := nodes[1].DecisionCacheStats()
	if used > budget {
		t.Fatalf("ring holds %d bytes, budget %d", used, budget)
	}
	wantEntries := budget / (32 << 10)
	if entries > wantEntries {
		t.Fatalf("ring holds %d entries, want <= %d under the byte budget", entries, wantEntries)
	}
	// The newest decision survived the burst and is still served.
	if got, err := nodes[0].FetchDecision(1, 1024, time.Second); err != nil || got != maxBatch {
		t.Fatalf("newest decision: %q, %v", got[:8], err)
	}
	// The oldest was evicted by bytes long before the entry bound.
	if _, err := nodes[0].FetchDecision(1, 1, time.Second); !errors.Is(err, ErrNotCached) {
		t.Fatalf("oldest decision: err = %v, want ErrNotCached", err)
	}

	// Small decisions fill the ring to its entry bound instead: the depth
	// adapts to value size.
	nodes[1].cfg.DecisionCache = 64
	for i := uint64(2000); i < 2200; i++ {
		nodes[1].RecordDecision(i, "tiny")
	}
	if entries, used := nodes[1].DecisionCacheStats(); entries != 64 || used > budget {
		t.Fatalf("small-value ring: %d entries, %d bytes", entries, used)
	}
}

// TestDecisionCacheOversizedSingle: one decided value larger than the whole
// budget is still cached (the newest decision must always be available to
// laggards) but alone.
func TestDecisionCacheOversizedSingle(t *testing.T) {
	nodes := startCluster(t, 2)
	nodes[1].cfg.DecisionCacheBytes = 1024
	nodes[1].RecordDecision(1, "small")
	nodes[1].RecordDecision(2, model.Value(bytes.Repeat([]byte{'y'}, 4096)))
	entries, used := nodes[1].DecisionCacheStats()
	if entries != 1 || used != 4096 {
		t.Fatalf("ring: %d entries, %d bytes; want the oversized newcomer alone", entries, used)
	}
}
