package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"genconsensus/internal/auth"
	"genconsensus/internal/core"
	"genconsensus/internal/flv"
	"genconsensus/internal/model"
	"genconsensus/internal/selector"
	"genconsensus/internal/wire"
)

// startCluster binds n loopback nodes that know each other's addresses.
func startCluster(t *testing.T, n int) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	peers := make(map[model.PID]string, n)
	for i := 0; i < n; i++ {
		node, err := Listen(Config{
			ID: model.PID(i), N: n,
			Peers:         map[model.PID]string{},
			ListenAddr:    "127.0.0.1:0",
			AuthSeed:      42,
			BaseTimeout:   60 * time.Millisecond,
			TimeoutGrowth: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = node
		peers[model.PID(i)] = node.Addr()
	}
	for _, node := range nodes {
		node.cfg.Peers = peers
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			_ = node.Close()
		}
	})
	return nodes
}

func pbftParams(n, b int) core.Params {
	return core.Params{
		N: n, B: b, F: 0, TD: 2*b + 1,
		Flag:       model.FlagPhase,
		FLV:        flv.NewPBFT(n, b),
		Selector:   selector.NewAll(n),
		UseHistory: true,
	}
}

// Full consensus over loopback TCP: four PBFT processes decide and agree.
func TestPBFTOverTCP(t *testing.T) {
	n := 4
	nodes := startCluster(t, n)
	params := pbftParams(n, 1)
	vals := []model.Value{"b", "a", "b", "a"}

	var wg sync.WaitGroup
	decisions := make([]model.Value, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		proc, err := core.NewProcess(model.PID(i), vals[i], params)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decisions[i], errs[i] = nodes[i].RunProc(1, proc, 60, 3)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
	}
	for i := 1; i < n; i++ {
		if decisions[i] != decisions[0] {
			t.Fatalf("agreement violated over TCP: %v", decisions)
		}
	}
	if decisions[0] != "a" && decisions[0] != "b" {
		t.Fatalf("validity violated: decided %q", decisions[0])
	}
}

// Paxos over TCP with a crashed node: growing timeouts carry the survivors.
func TestPaxosOverTCPWithCrash(t *testing.T) {
	n := 3
	nodes := startCluster(t, n)
	params := core.Params{
		N: n, B: 0, F: 1, TD: 2,
		Flag:     model.FlagPhase,
		FLV:      flv.NewPaxos(n),
		Selector: selector.NewRotatingCoordinator(n),
	}
	// Node 2 never runs (crashed from the start).
	vals := []model.Value{"x", "y"}
	var wg sync.WaitGroup
	decisions := make([]model.Value, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		proc, err := core.NewProcess(model.PID(i), vals[i], params)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decisions[i], errs[i] = nodes[i].RunProc(1, proc, 80, 3)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
	}
	if decisions[0] != decisions[1] {
		t.Fatalf("agreement violated: %v", decisions)
	}
}

// Two concurrent instances multiplex over the same connections.
func TestMultipleInstances(t *testing.T) {
	n := 4
	nodes := startCluster(t, n)
	params := pbftParams(n, 1)
	var wg sync.WaitGroup
	results := make([][2]model.Value, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for inst := uint64(1); inst <= 2; inst++ {
				init := model.Value(fmt.Sprintf("v%d-%d", inst, i%2))
				proc, err := core.NewProcess(model.PID(i), init, params)
				if err != nil {
					t.Error(err)
					return
				}
				v, err := nodes[i].RunProc(inst, proc, 60, 3)
				if err != nil {
					t.Errorf("node %d instance %d: %v", i, inst, err)
					return
				}
				results[i][inst-1] = v
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for inst := 0; inst < 2; inst++ {
		for i := 1; i < n; i++ {
			if results[i][inst] != results[0][inst] {
				t.Fatalf("instance %d disagreement: %v", inst+1, results)
			}
		}
	}
}

// Tampered and unauthenticated frames are dropped before reaching buffers.
func TestRejectsBadMAC(t *testing.T) {
	nodes := startCluster(t, 2)
	env := wire.Envelope{
		Instance: 1, Round: 1, Sender: 1,
		Msg: model.Message{Kind: model.DecisionRound, Vote: "v"},
	}
	// Wrong key (seed 99 instead of 42).
	key := auth.PairKey(99, 1, 0)
	env.Auth = auth.MAC(key, wire.VerifyPayload(env))
	if nodes[0].authentic(env) {
		t.Fatal("bad MAC accepted")
	}
	// Correct key passes.
	good := auth.PairKey(42, 1, 0)
	env.Auth = auth.MAC(good, wire.VerifyPayload(env))
	if !nodes[0].authentic(env) {
		t.Fatal("good MAC rejected")
	}
	// Out-of-range sender.
	env.Sender = 7
	if nodes[0].authentic(env) {
		t.Fatal("out-of-range sender accepted")
	}
}

// Buffer hygiene: late and far-future rounds are discarded; duplicates keep
// the first copy.
func TestBufferWindow(t *testing.T) {
	nodes := startCluster(t, 2)
	node := nodes[0]
	mk := func(r model.Round, vote model.Value) wire.Envelope {
		env := wire.Envelope{
			Instance: 5, Round: r, Sender: 1,
			Msg: model.Message{Kind: model.DecisionRound, Vote: vote},
		}
		return env
	}
	node.deliverLocal(mk(1, "a"))
	node.deliverLocal(mk(1, "dup")) // duplicate sender: dropped
	node.deliverLocal(mk(model.Round(node.cfg.WindowRounds+10), "far"))
	node.mu.Lock()
	buf := node.instances[5]
	if got := buf.rounds[1][1].Vote; got != "a" {
		t.Errorf("round 1 vote = %q, want first copy", got)
	}
	if len(buf.rounds) != 1 {
		t.Errorf("far-future round buffered: %v", buf.rounds)
	}
	node.mu.Unlock()
	// Collect closes the round: later deliveries for it vanish.
	mu := node.collect(5, 1, time.Now().Add(10*time.Millisecond))
	if len(mu) != 1 {
		t.Fatalf("collected %d messages, want 1", len(mu))
	}
	node.deliverLocal(mk(1, "late"))
	node.mu.Lock()
	if _, ok := node.instances[5].rounds[1]; ok {
		t.Error("late delivery reopened a closed round")
	}
	node.mu.Unlock()
	if !node.HasInstance(5) {
		t.Error("HasInstance must report the buffered instance")
	}
	if node.HasInstance(9) {
		t.Error("HasInstance reported an unknown instance")
	}
}

// Close is idempotent and joins all goroutines; RunProc observes ErrClosed.
func TestCloseLifecycle(t *testing.T) {
	nodes := startCluster(t, 2)
	node := nodes[0]
	params := pbftParams(2, 0)
	params.TD = 2
	proc, err := core.NewProcess(0, "v", params)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := node.RunProc(3, proc, 1000, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := node.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("RunProc after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunProc did not observe Close")
	}
	if err := node.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// A node alone times out every round and reports no decision.
func TestNoDecisionBudget(t *testing.T) {
	node, err := Listen(Config{
		ID: 0, N: 3,
		Peers:         map[model.PID]string{0: "", 1: "127.0.0.1:1", 2: "127.0.0.1:1"},
		ListenAddr:    "127.0.0.1:0",
		AuthSeed:      1,
		BaseTimeout:   time.Millisecond,
		TimeoutGrowth: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	params := pbftParams(3, 0)
	params.TD = 3
	proc, err := core.NewProcess(0, "v", params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.RunProc(1, proc, 6, 1); !errors.Is(err, ErrNoDecision) {
		t.Fatalf("err = %v, want ErrNoDecision", err)
	}
}

// ReleaseInstance reclaims committed instances' receive buffers: without it
// the instance map grows one entry per instance forever. The watermark also
// refuses stragglers for released instances (a late peer's extra rounds
// must not resurrect the entry).
func TestReleaseInstanceShrinksMap(t *testing.T) {
	nodes := startCluster(t, 2)
	env := func(instance uint64) wire.Envelope {
		e := wire.Envelope{Instance: instance, Round: 1, Sender: 1, Msg: model.Message{Vote: "v"}}
		return e
	}
	// Buffer messages for instances 1..8 on node 0.
	for id := uint64(1); id <= 8; id++ {
		nodes[1].send(0, nodes[1].seal(env(id), 0))
	}
	deadline := time.Now().Add(2 * time.Second)
	for nodes[0].InstanceCount() < 8 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := nodes[0].InstanceCount(); got != 8 {
		t.Fatalf("InstanceCount = %d, want 8", got)
	}
	// Committing in order releases prefixes: the map shrinks.
	nodes[0].ReleaseInstance(5)
	if got := nodes[0].InstanceCount(); got != 3 {
		t.Fatalf("InstanceCount after ReleaseInstance(5) = %d, want 3", got)
	}
	if nodes[0].HasInstance(5) || !nodes[0].HasInstance(6) {
		t.Error("watermark released the wrong instances")
	}
	// A straggler for a released instance is dropped, not re-buffered.
	nodes[1].send(0, nodes[1].seal(env(3), 0))
	time.Sleep(50 * time.Millisecond)
	if nodes[0].HasInstance(3) {
		t.Error("released instance resurrected by a straggler")
	}
	if got := nodes[0].InstanceCount(); got != 3 {
		t.Errorf("InstanceCount after straggler = %d, want 3", got)
	}
	// Releasing everything empties the map; out-of-order (lower) releases
	// cannot move the watermark backwards.
	nodes[0].ReleaseInstance(8)
	nodes[0].ReleaseInstance(2)
	if got := nodes[0].InstanceCount(); got != 0 {
		t.Errorf("InstanceCount after full release = %d, want 0", got)
	}
	nodes[1].send(0, nodes[1].seal(env(7), 0))
	time.Sleep(50 * time.Millisecond)
	if nodes[0].HasInstance(7) {
		t.Error("watermark moved backwards")
	}
	// Instance 0 is releasable too (the generic transport does not assume
	// SMR's 1-based numbering).
	nodes[1].send(0, nodes[1].seal(env(9), 0))
	deadline = time.Now().Add(2 * time.Second)
	for !nodes[0].HasInstance(9) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	nodes[0].ReleaseInstance(9)
	if nodes[0].InstanceCount() != 0 {
		t.Error("release of the newest instance left buffers behind")
	}
}

// Far-future instance ids must not allocate receive buffers: an
// authenticated Byzantine member could otherwise grow the instance map one
// entry per fabricated id. Only (watermark, watermark+WindowInstances]
// gets buffers.
func TestInstanceWindowBoundsFloods(t *testing.T) {
	nodes := startCluster(t, 2)
	send := func(instance uint64) {
		env := wire.Envelope{Instance: instance, Round: 1, Sender: 1, Msg: model.Message{Vote: "v"}}
		nodes[1].send(0, nodes[1].seal(env, 0))
	}
	// In-window (default 4096) buffers; beyond it is dropped.
	send(4096)
	deadline := time.Now().Add(2 * time.Second)
	for !nodes[0].HasInstance(4096) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !nodes[0].HasInstance(4096) {
		t.Fatal("in-window instance not buffered")
	}
	send(4097)
	send(1 << 40)
	time.Sleep(50 * time.Millisecond)
	if nodes[0].HasInstance(4097) || nodes[0].HasInstance(1<<40) {
		t.Error("beyond-window instance allocated a buffer")
	}
	// The window slides with the release watermark.
	nodes[0].ReleaseInstance(10)
	send(4100)
	deadline = time.Now().Add(2 * time.Second)
	for !nodes[0].HasInstance(4100) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !nodes[0].HasInstance(4100) {
		t.Error("window did not slide with the watermark")
	}
}

// GroupInstanceHigh is the transport half of a read-index capture: buffered
// peer frames, releases and recorded decisions all lift it, the instance
// window bounds it (a fabricated far-future id must not park reads), and
// groups track it independently.
func TestGroupInstanceHigh(t *testing.T) {
	nodes := startCluster(t, 2)
	send := func(instance uint64) {
		env := wire.Envelope{Instance: instance, Round: 1, Sender: 1, Msg: model.Message{Vote: "v"}}
		nodes[1].send(0, nodes[1].seal(env, 0))
	}
	if got := nodes[0].GroupInstanceHigh(0); got != 0 {
		t.Fatalf("fresh GroupInstanceHigh = %d, want 0", got)
	}
	// A buffered peer frame is evidence of the instance: the high moves
	// even though nothing committed locally.
	send(7)
	deadline := time.Now().Add(2 * time.Second)
	for nodes[0].GroupInstanceHigh(0) < 7 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := nodes[0].GroupInstanceHigh(0); got != 7 {
		t.Fatalf("GroupInstanceHigh after peer frame = %d, want 7", got)
	}
	// Beyond the instance window the frame is dropped and must not lift
	// the high either — otherwise one hostile id parks every read until
	// its deadline.
	send(1 << 40)
	time.Sleep(50 * time.Millisecond)
	if got := nodes[0].GroupInstanceHigh(0); got != 7 {
		t.Fatalf("GroupInstanceHigh after flood frame = %d, want 7", got)
	}
	// Releases and recorded decisions lift it; lower ones never move it
	// backwards.
	nodes[0].ReleaseInstance(9)
	if got := nodes[0].GroupInstanceHigh(0); got != 9 {
		t.Fatalf("GroupInstanceHigh after release = %d, want 9", got)
	}
	nodes[0].RecordDecision(12, model.Value("v"))
	nodes[0].RecordDecision(3, model.Value("old"))
	if got := nodes[0].GroupInstanceHigh(0); got != 12 {
		t.Fatalf("GroupInstanceHigh after decisions = %d, want 12", got)
	}
}
