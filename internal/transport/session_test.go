package transport

// Security tests for the connection-session protocol: every frame a
// correctly implemented peer never produces must drop the connection, and
// a hostile dialer must be rate-limited before it can burn unbounded MAC
// work. The tests act as a raw dialer against a real node, driving the
// handshake and session framing by hand.

import (
	"crypto/rand"
	"net"
	"testing"
	"time"

	"genconsensus/internal/auth"
	"genconsensus/internal/model"
	"genconsensus/internal/wire"
)

// sessionEnv is the canonical test envelope from hostile-peer 1.
func sessionEnv(instance uint64) wire.Envelope {
	return wire.Envelope{
		Instance: instance, Round: 1, Sender: 1,
		Msg: model.Message{Kind: model.DecisionRound, Vote: "v"},
	}
}

// dialNode opens a raw TCP connection to the node's listener.
func dialNode(t *testing.T, n *Node) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// handshakeAs completes a dialer-side HELLO exchange with the node,
// claiming the given peer id, and returns the derived session key.
func handshakeAs(t *testing.T, conn net.Conn, n *Node, dialer model.PID) auth.MACKey {
	t.Helper()
	pair := auth.PairKey(n.cfg.AuthSeed, dialer, n.cfg.ID)
	h := wire.Hello{Kind: wire.HelloKindInit, Sender: uint32(dialer)}
	if _, err := rand.Read(h.Nonce[:]); err != nil {
		t.Fatal(err)
	}
	copy(h.MAC[:], auth.HelloMAC(pair, dialer, h.Nonce[:]))
	if err := wire.WriteFrame(conn, wire.AppendHello(nil, h)); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("reading HELLO-ACK: %v", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	ack, err := wire.DecodeHello(payload)
	if err != nil {
		t.Fatalf("decoding HELLO-ACK: %v", err)
	}
	if ack.Kind != wire.HelloKindAck || model.PID(ack.Sender) != n.cfg.ID {
		t.Fatalf("bad ACK: kind=%d sender=%d", ack.Kind, ack.Sender)
	}
	if !auth.CheckHelloAckMAC(pair, dialer, h.Nonce[:], ack.Nonce[:], ack.MAC[:]) {
		t.Fatal("HELLO-ACK MAC does not verify")
	}
	return auth.SessionKey(pair, dialer, h.Nonce[:], ack.Nonce[:])
}

// sessionFrame builds one session-wrapped envelope payload under key.
func sessionFrame(key auth.MACKey, seq uint64, env wire.Envelope) []byte {
	inner := wire.AppendEnvelope(nil, env)
	return wire.AppendSessionFrame(nil, seq, inner, func(seq uint64, inner []byte) [wire.SessionTagSize]byte {
		var tag [wire.SessionTagSize]byte
		copy(tag[:], auth.SessionMAC(nil, key, seq, inner))
		return tag
	})
}

// waitDelivered polls until the node has buffered the instance.
func waitDelivered(t *testing.T, n *Node, instance uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n.HasInstance(instance) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("instance %d never delivered", instance)
}

// waitClosed asserts the node drops the connection: the next read must
// return EOF (or a reset) rather than time out.
func waitClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var b [1]byte
	_, err := conn.Read(b[:])
	if err == nil || errors_IsTimeout(err) {
		t.Fatalf("connection still open, read err = %v", err)
	}
}

func errors_IsTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// A correct handshake establishes a session that delivers envelopes, with
// sequence gaps allowed (only regressions are fatal).
func TestSessionHandshakeDelivers(t *testing.T) {
	nodes := startCluster(t, 2)
	conn := dialNode(t, nodes[0])
	key := handshakeAs(t, conn, nodes[0], 1)
	if err := wire.WriteFrame(conn, sessionFrame(key, 1, sessionEnv(1))); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, nodes[0], 1)
	// A gap (1 -> 5) is fine: frames may be dropped, never reordered.
	if err := wire.WriteFrame(conn, sessionFrame(key, 5, sessionEnv(2))); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, nodes[0], 2)
}

// A session frame MAC'd under the wrong key drops the connection before
// anything is delivered.
func TestSessionWrongKeyDropsConn(t *testing.T) {
	nodes := startCluster(t, 2)
	conn := dialNode(t, nodes[0])
	handshakeAs(t, conn, nodes[0], 1)
	var wrong auth.MACKey
	wrong[0] = 0xff
	if err := wire.WriteFrame(conn, sessionFrame(wrong, 1, sessionEnv(3))); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, conn)
	if nodes[0].HasInstance(3) {
		t.Fatal("forged session frame delivered")
	}
}

// A replayed (non-increasing) session sequence drops the connection even
// though the tag itself verifies.
func TestSessionReplayDropsConn(t *testing.T) {
	nodes := startCluster(t, 2)
	conn := dialNode(t, nodes[0])
	key := handshakeAs(t, conn, nodes[0], 1)
	frame := sessionFrame(key, 7, sessionEnv(4))
	if err := wire.WriteFrame(conn, frame); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, nodes[0], 4)
	if err := wire.WriteFrame(conn, frame); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, conn)
}

// A sealed legacy frame arriving after the handshake is a downgrade
// attempt: dropped with the connection, even though its seal verifies.
func TestSessionDowngradeDropsConn(t *testing.T) {
	nodes := startCluster(t, 2)
	conn := dialNode(t, nodes[0])
	handshakeAs(t, conn, nodes[0], 1)
	sealed := nodes[1].seal(sessionEnv(5), 0)
	if err := wire.WriteFrame(conn, wire.Encode(sealed)); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, conn)
	if nodes[0].HasInstance(5) {
		t.Fatal("downgraded sealed frame delivered on handshaken connection")
	}
}

// Truncated, oversized and forged HELLOs all drop the connection outright.
func TestHelloMalformedDropsConn(t *testing.T) {
	nodes := startCluster(t, 2)

	truncated := make([]byte, wire.HelloFrameSize-5)
	truncated[0] = wire.HelloVersion
	oversized := make([]byte, wire.HelloFrameSize+5)
	oversized[0] = wire.HelloVersion
	forged := wire.AppendHello(nil, wire.Hello{Kind: wire.HelloKindInit, Sender: 1}) // zero MAC

	for name, payload := range map[string][]byte{
		"truncated": truncated, "oversized": oversized, "forged": forged,
	} {
		conn := dialNode(t, nodes[0])
		if err := wire.WriteFrame(conn, payload); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		waitClosed(t, conn)
	}
}

// An unauthenticated dialer spamming bad frames is cut off once the strike
// budget is spent — the rate limit bounds the MAC work a hostile client
// can extract per connection. Below the budget the connection survives and
// still accepts valid sealed frames.
func TestHostileDialerRateLimited(t *testing.T) {
	node, err := Listen(Config{
		ID: 0, N: 2,
		Peers:           map[model.PID]string{},
		ListenAddr:      "127.0.0.1:0",
		AuthSeed:        42,
		MaxAuthFailures: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	badSeal := sessionEnv(6)
	badSeal.Auth = auth.MAC(auth.PairKey(99, 1, 0), wire.VerifyPayload(badSeal))
	bad := wire.Encode(badSeal)

	// Two strikes: still under budget, a valid frame then gets through.
	conn := dialNode(t, node)
	for i := 0; i < 2; i++ {
		if err := wire.WriteFrame(conn, bad); err != nil {
			t.Fatal(err)
		}
	}
	good := sessionEnv(6)
	good.Auth = auth.MAC(auth.PairKey(42, 1, 0), wire.VerifyPayload(good))
	if err := wire.WriteFrame(conn, wire.Encode(good)); err != nil {
		t.Fatal(err)
	}
	waitDelivered(t, node, 6)

	// A fresh connection spending the whole budget is dropped.
	conn2 := dialNode(t, node)
	for i := 0; i < 4; i++ {
		if err := wire.WriteFrame(conn2, bad); err != nil {
			t.Fatal(err)
		}
	}
	waitClosed(t, conn2)
}

// The outbound path survives a peer restart: the first send after the old
// link dies redials and re-handshakes transparently.
func TestSendRedialsAfterPeerRestart(t *testing.T) {
	nodes := startCluster(t, 2)
	nodes[1].send(0, sessionEnv(1))
	waitDelivered(t, nodes[0], 1)

	// Restart node 0 on the same address.
	addr := nodes[0].Addr()
	_ = nodes[0].Close()
	restarted, err := Listen(Config{
		ID: 0, N: 2,
		Peers:      map[model.PID]string{1: nodes[1].Addr()},
		ListenAddr: addr,
		AuthSeed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()

	// The stale link errors out on some send; a later send must land over a
	// fresh handshaken connection.
	deadline := time.Now().Add(5 * time.Second)
	for !restarted.HasInstance(2) && time.Now().Before(deadline) {
		nodes[1].send(0, sessionEnv(2))
		time.Sleep(10 * time.Millisecond)
	}
	if !restarted.HasInstance(2) {
		t.Fatal("send never recovered after peer restart")
	}
}

// Sequence order equals wire order even when many goroutines enqueue
// concurrently on the shared link — nothing is dropped by the monotonic
// sequence check on the receiver.
func TestConcurrentSendsKeepSequenceOrder(t *testing.T) {
	nodes := startCluster(t, 2)
	const total = 64
	done := make(chan struct{}, total)
	for i := 0; i < total; i++ {
		go func(i int) {
			nodes[1].send(0, sessionEnv(uint64(100+i)))
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < total; i++ {
		<-done
	}
	deadline := time.Now().Add(2 * time.Second)
	for nodes[0].InstanceCount() < total && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := nodes[0].InstanceCount(); got != total {
		t.Fatalf("delivered %d of %d concurrent sends", got, total)
	}
}

// RegisterHandler extends the read loop with a new frame family, and
// removing the handler makes the family count against the strike budget.
func TestRegisterHandlerDispatch(t *testing.T) {
	nodes := startCluster(t, 2)
	const customVersion = 0x7f
	got := make(chan []byte, 1)
	nodes[0].RegisterHandler(customVersion, func(c *Conn, payload []byte) error {
		cp := append([]byte(nil), payload...)
		select {
		case got <- cp:
		default:
		}
		return nil
	})
	conn := dialNode(t, nodes[0])
	if err := wire.WriteFrame(conn, []byte{customVersion, 'h', 'i'}); err != nil {
		t.Fatal(err)
	}
	select {
	case payload := <-got:
		if string(payload[1:]) != "hi" {
			t.Fatalf("handler got %q", payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("custom handler never invoked")
	}
	nodes[0].RegisterHandler(customVersion, nil)
	if err := wire.WriteFrame(conn, []byte{customVersion}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("removed handler still invoked")
	case <-time.After(50 * time.Millisecond):
	}
}
