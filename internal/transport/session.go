package transport

// Connection sessions, the frame-handler registry and the coalescing write
// path: the hot half of the transport.
//
// # Handler registry
//
// Every inbound frame is dispatched on its first payload byte (the wire
// frame-family version) through a registry installed with RegisterHandler.
// Listen registers the four built-in families: sealed consensus envelopes
// (wire.Version), state transfer (wire.SnapVersion), handshakes
// (wire.HelloVersion) and session frames (wire.SessionVersion). New frame
// families plug in without touching the read loop.
//
// # Session lifecycle
//
// Outbound peer connections handshake at dial time: the dialer sends a
// HELLO binding a fresh nonce under the pairwise key, the acceptor replies
// with a HELLO-ACK covering both nonces, and both ends derive the
// connection's session key (auth.SessionKey). From then on every consensus
// envelope travels as a session frame — a truncated MAC over (seq, inner)
// plus a strictly monotonic sequence — instead of carrying a full
// per-frame, per-destination seal. A sealed v1/v2 frame arriving on a
// handshaken connection is a downgrade attempt and drops the connection,
// as does a bad tag, a replayed sequence or a malformed HELLO. Connections
// that never handshake (the synchronous state-transfer exchanges, legacy
// dialers) keep speaking sealed frames, throttled by a per-connection
// strike budget (Config.MaxAuthFailures).
//
// # Write coalescing and buffer ownership
//
// send encodes each envelope into a pooled frame buffer and appends it to
// the peer's pending queue; a per-connection flusher drains the queue with
// one vectored write (net.Buffers) per wakeup, so frames produced by
// concurrent pipelined instances in the same tick share a syscall instead
// of serializing one write each under a mutex. Ownership of a frame buffer
// transfers exactly once — producer → pending queue → flusher — and the
// flusher returns it to the pool after the write; nothing touches a buffer
// after wire.PutFrame.

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"

	"genconsensus/internal/auth"
	"genconsensus/internal/model"
	"genconsensus/internal/wire"
)

// Session protocol violations. Any of them drops the connection: a
// correctly implemented peer never produces one, so they signal an attack,
// corruption or a broken build on the other end.
var (
	errDowngrade       = errors.New("transport: sealed frame on handshaken connection (downgrade attempt)")
	errBadHandshake    = errors.New("transport: handshake rejected")
	errRehandshake     = errors.New("transport: second HELLO on handshaken connection")
	errNoSession       = errors.New("transport: session frame before handshake")
	errBadSessionTag   = errors.New("transport: session tag verification failed")
	errSessionSender   = errors.New("transport: session envelope sender does not match handshaken peer")
	errTooManyFailures = errors.New("transport: auth-failure budget exhausted")
)

// FrameHandler consumes one inbound frame. payload aliases the
// connection's reusable read buffer and is only valid for the duration of
// the call — handlers must copy whatever outlives it (wire.Decode already
// copies every field it returns). A non-nil error drops the connection.
type FrameHandler func(c *Conn, payload []byte) error

// Conn is the receive state of one accepted connection. It is owned by the
// connection's read loop: handlers run on that goroutine and may use the
// fields without locking.
type Conn struct {
	node *Node
	conn net.Conn

	// sessioned is set once a HELLO exchange completed; from then on the
	// connection speaks session frames exclusively.
	sessioned bool
	// peer is the handshaken sender (valid only when sessioned).
	peer model.PID
	// key is the derived per-connection session key.
	key auth.MACKey
	// macer caches the session key's HMAC midstates; only the read loop
	// touches it.
	macer *auth.SessionMACer
	// recvSeq is the highest session sequence accepted so far.
	recvSeq uint64
	// authFails counts recoverable verification failures (see strike).
	authFails int
}

// RemoteAddr exposes the underlying connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// Peer returns the handshaken peer id, or false before any handshake.
func (c *Conn) Peer() (model.PID, bool) { return c.peer, c.sessioned }

// strike counts one recoverable protocol failure — a malformed or badly
// sealed legacy frame — and converts it into a fatal error once the budget
// is spent. It is the rate-limit hook for hostile or broken dialers: an
// unauthenticated client can make a node burn at most MaxAuthFailures
// MAC verifications per connection before the connection is dropped.
func (c *Conn) strike() error {
	c.authFails++
	c.node.m.strikes.Inc()
	if c.authFails > c.node.cfg.MaxAuthFailures {
		c.node.m.strikeTrips.Inc()
		c.node.events.Emit(-1, "auth.reject",
			"layer", "transport", "remote", c.conn.RemoteAddr().String(),
			"strikes", c.authFails)
		return errTooManyFailures
	}
	return nil
}

// RegisterHandler installs fn for inbound frames whose first payload byte
// is version, replacing any previous handler for that family. Passing nil
// removes the handler; frames with no handler count against the
// connection's strike budget and are otherwise dropped.
func (n *Node) RegisterHandler(version uint8, fn FrameHandler) {
	n.hmu.Lock()
	n.handlers[version] = fn
	n.hmu.Unlock()
}

func (n *Node) handler(version uint8) FrameHandler {
	n.hmu.RLock()
	fn := n.handlers[version]
	n.hmu.RUnlock()
	return fn
}

// registerBuiltins wires the five built-in frame families.
func (n *Node) registerBuiltins() {
	n.RegisterHandler(wire.Version, n.handleEnvelopeFrame)
	n.RegisterHandler(wire.SnapVersion, n.handleSnapRequest)
	n.RegisterHandler(wire.HelloVersion, n.handleHelloCounted)
	n.RegisterHandler(wire.SessionVersion, n.handleSessionFrame)
	n.RegisterHandler(wire.PayloadVersion, n.handlePayloadFrame)
}

// handleHelloCounted is handleHello plus outcome accounting: a rejected
// handshake is a security-relevant event, so it is both counted and
// logged. Success accounting lives in handleHello where the peer id is in
// scope.
func (n *Node) handleHelloCounted(c *Conn, payload []byte) error {
	err := n.handleHello(c, payload)
	if err != nil {
		n.m.handshakeReject.Inc()
		n.events.Emit(-1, "peer.handshake",
			"dir", "accept", "ok", false,
			"remote", c.conn.RemoteAddr().String(), "err", err)
	}
	return err
}

// handleEnvelopeFrame accepts a legacy sealed consensus envelope on a
// never-handshaken connection. The seal is located in place (SplitSealed)
// and verified before the envelope is decoded, so a forged frame costs one
// HMAC, not a decode.
func (n *Node) handleEnvelopeFrame(c *Conn, payload []byte) error {
	if c.sessioned {
		return errDowngrade
	}
	covered, mac, ok := wire.SplitSealed(payload)
	if !ok {
		return c.strike()
	}
	// Same pre-verify drop as the session path: released-instance frames
	// change no state and need no authentication.
	if inst, okInst := wire.PeekInstance(payload); okInst && n.instanceReleased(inst) {
		return nil
	}
	env, err := wire.Decode(payload)
	if err != nil {
		return c.strike()
	}
	if int(env.Sender) < 0 || int(env.Sender) >= n.cfg.N {
		return c.strike()
	}
	if !auth.CheckMAC(n.pairKey(env.Sender), covered, mac) {
		return c.strike()
	}
	n.deliverLocal(env)
	return nil
}

// handleSnapRequest serves a state-transfer request. The exchanges are
// synchronous request/response on dedicated dialed connections that never
// handshake; on a handshaken peer link a sealed snap frame is a downgrade.
func (n *Node) handleSnapRequest(c *Conn, payload []byte) error {
	if c.sessioned {
		return errDowngrade
	}
	n.handleSnapFrame(c.conn, payload)
	return nil
}

// handleHello runs the acceptor side of the session handshake.
func (n *Node) handleHello(c *Conn, payload []byte) error {
	h, err := wire.DecodeHello(payload)
	if err != nil {
		return err // truncated, padded or malformed HELLO: drop outright
	}
	if h.Kind != wire.HelloKindInit {
		return errBadHandshake // an ACK never arrives on an accepted conn
	}
	if c.sessioned {
		return errRehandshake
	}
	peer := model.PID(h.Sender)
	if int(peer) < 0 || int(peer) >= n.cfg.N || peer == n.cfg.ID {
		return errBadHandshake
	}
	pair := n.pairKey(peer)
	if !auth.CheckHelloMAC(pair, peer, h.Nonce[:], h.MAC[:]) {
		return errBadHandshake
	}
	ack := wire.Hello{Kind: wire.HelloKindAck, Sender: uint32(n.cfg.ID)}
	if _, err := rand.Read(ack.Nonce[:]); err != nil {
		return err
	}
	copy(ack.MAC[:], auth.HelloAckMAC(pair, peer, h.Nonce[:], ack.Nonce[:]))
	frame, err := wire.FinishFrame(wire.AppendHello(wire.BeginFrame(wire.GetFrame()), ack))
	if err != nil {
		return err
	}
	_, err = c.conn.Write(frame)
	wire.PutFrame(frame)
	if err != nil {
		return err
	}
	c.sessioned = true
	c.peer = peer
	c.key = auth.SessionKey(pair, peer, h.Nonce[:], ack.Nonce[:])
	c.macer = auth.NewSessionMACer(c.key)
	c.recvSeq = 0
	n.m.handshakeAccept.Inc()
	n.events.Emit(-1, "peer.handshake", "dir", "accept", "ok", true, "peer", int(peer))
	return nil
}

// handleSessionFrame verifies and delivers one session-wrapped envelope:
// monotonic sequence first (replay is cheap to reject), then the truncated
// session tag over every inner byte, then the decode. The inner envelope
// carries no seal — the session tag is its authenticity — but its Sender
// must still match the handshaken peer, or a Byzantine member could inject
// messages under another's id.
func (n *Node) handleSessionFrame(c *Conn, payload []byte) error {
	if !c.sessioned {
		return errNoSession
	}
	seq, tag, inner, err := wire.SplitSessionFrame(payload)
	if err != nil {
		return err
	}
	if seq <= c.recvSeq {
		return wire.ErrSessionReuse
	}
	// Pre-MAC drop: frames for instances the local commit already released
	// (mostly peers' helper-round blasts arriving late) cause no state
	// change, so they need no authentication — discarding them here skips
	// the session MAC and the decode. recvSeq does not advance: only
	// authenticated frames may move it, else a forged sequence could wedge
	// the link. An attacker gains nothing — naming an unreleased instance
	// just routes the frame into the MAC check below.
	if inst, ok := wire.PeekInstance(inner); ok && n.instanceReleased(inst) {
		return nil
	}
	if !c.macer.Check(seq, inner, tag) {
		return errBadSessionTag
	}
	c.recvSeq = seq
	env, err := wire.Decode(inner)
	if err != nil {
		return err
	}
	if env.Sender != c.peer {
		return errSessionSender
	}
	n.deliverLocal(env)
	return nil
}

// --- Outbound: dial-time handshake and the coalescing writer ----------------

// peerConn is one lazily-dialed, handshaken outbound peer link. Producers
// append encoded frames to pending under mu; the flusher goroutine drains
// the queue with vectored writes. The session sequence is allocated under
// the same mutex as the append, so wire order always equals sequence order.
type peerConn struct {
	node  *Node
	dst   model.PID
	conn  net.Conn
	key   auth.MACKey
	macer *auth.SessionMACer // guarded by mu, like the sequence it signs

	mu      sync.Mutex
	pending [][]byte // completed frames (owned until handed to the flusher)
	sendSeq uint64
	failed  bool

	signal chan struct{} // wakes the flusher, capacity 1
	vec    net.Buffers   // flusher scratch; WriteTo consumes it in place
}

// connTo returns the established peer link, dialing and handshaking if
// necessary. Dial and handshake run outside the node lock; a racing dial
// keeps the first registered connection. Returns nil when the peer is
// unreachable or rejects the handshake — in a partially synchronous system
// that is indistinguishable from slowness, so callers just drop the send.
func (n *Node) connTo(dst model.PID) *peerConn {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	pc, ok := n.conns[dst]
	addr := n.cfg.Peers[dst]
	n.mu.Unlock()
	if ok {
		return pc
	}
	c, err := net.DialTimeout("tcp", addr, n.cfg.BaseTimeout)
	if err != nil {
		n.m.dialFail.Inc()
		return nil
	}
	key, err := n.dialHandshake(c, dst)
	if err != nil {
		_ = c.Close()
		n.m.dialFail.Inc()
		n.events.Emit(-1, "peer.handshake", "dir", "dial", "ok", false, "peer", int(dst), "err", err)
		return nil
	}
	n.m.dialOK.Inc()
	n.events.Emit(-1, "peer.handshake", "dir", "dial", "ok", true, "peer", int(dst))
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = c.Close()
		return nil
	}
	if existing, raced := n.conns[dst]; raced {
		n.mu.Unlock()
		_ = c.Close()
		return existing
	}
	pc = &peerConn{
		node:   n,
		dst:    dst,
		conn:   c,
		key:    key,
		macer:  auth.NewSessionMACer(key),
		signal: make(chan struct{}, 1),
	}
	n.conns[dst] = pc
	n.wg.Add(1)
	go pc.flushLoop()
	n.mu.Unlock()
	return pc
}

// dialHandshake runs the dialer side of the HELLO exchange on a fresh
// connection and returns the derived session key. The whole exchange is
// bounded by HandshakeTimeout; the deadline is cleared on success.
func (n *Node) dialHandshake(c net.Conn, dst model.PID) (auth.MACKey, error) {
	pair := n.pairKey(dst)
	h := wire.Hello{Kind: wire.HelloKindInit, Sender: uint32(n.cfg.ID)}
	if _, err := rand.Read(h.Nonce[:]); err != nil {
		return auth.MACKey{}, err
	}
	copy(h.MAC[:], auth.HelloMAC(pair, n.cfg.ID, h.Nonce[:]))
	frame, err := wire.FinishFrame(wire.AppendHello(wire.BeginFrame(wire.GetFrame()), h))
	if err != nil {
		return auth.MACKey{}, err
	}
	if err := c.SetDeadline(time.Now().Add(n.cfg.HandshakeTimeout)); err != nil {
		wire.PutFrame(frame)
		return auth.MACKey{}, err
	}
	_, err = c.Write(frame)
	wire.PutFrame(frame)
	if err != nil {
		return auth.MACKey{}, err
	}
	payload, err := wire.ReadFrame(c)
	if err != nil {
		return auth.MACKey{}, err
	}
	ack, err := wire.DecodeHello(payload)
	if err != nil {
		return auth.MACKey{}, err
	}
	if ack.Kind != wire.HelloKindAck || model.PID(ack.Sender) != dst {
		return auth.MACKey{}, errBadHandshake
	}
	if !auth.CheckHelloAckMAC(pair, n.cfg.ID, h.Nonce[:], ack.Nonce[:], ack.MAC[:]) {
		return auth.MACKey{}, errBadHandshake
	}
	if err := c.SetDeadline(time.Time{}); err != nil {
		return auth.MACKey{}, err
	}
	return auth.SessionKey(pair, n.cfg.ID, h.Nonce[:], ack.Nonce[:]), nil
}

// enqueue session-wraps one envelope into a pooled frame buffer and queues
// it. The envelope needs no seal: the session tag authenticates every
// inner byte (a caller-supplied Auth is carried but ignored on receive).
// Returns false when the connection has failed and should be forgotten. A
// full queue drops the frame instead of blocking — consensus tolerates
// message loss, and a peer that slow is effectively partitioned.
func (pc *peerConn) enqueue(env wire.Envelope) bool {
	inner := wire.AppendEnvelope(wire.GetFrame(), env)
	pc.mu.Lock()
	if pc.failed {
		pc.mu.Unlock()
		wire.PutFrame(inner)
		return false
	}
	if len(pc.pending) >= pc.node.cfg.MaxPendingFrames {
		pc.mu.Unlock()
		wire.PutFrame(inner)
		pc.node.m.framesDropped.Inc()
		return true
	}
	pc.sendSeq++
	seq := pc.sendSeq
	buf := wire.BeginFrame(wire.GetFrame())
	buf = append(buf, wire.SessionVersion)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = pc.macer.Append(buf, seq, inner)
	buf = append(buf, inner...)
	buf, err := wire.FinishFrame(buf)
	if err != nil {
		pc.mu.Unlock()
		wire.PutFrame(inner)
		wire.PutFrame(buf)
		return true // oversized envelope: drop the frame, keep the link
	}
	pc.pending = append(pc.pending, buf)
	pc.mu.Unlock()
	wire.PutFrame(inner)
	pc.node.m.framesOut.Inc()
	pc.node.m.bytesOut.Add(uint64(len(buf)))
	select {
	case pc.signal <- struct{}{}:
	default:
	}
	return true
}

// flushLoop drains the pending queue: each wakeup swaps the queue out
// under the lock and writes the whole batch with one vectored write, then
// recycles the frame buffers. It exits when the node stops or the
// connection errors.
func (pc *peerConn) flushLoop() {
	defer pc.node.wg.Done()
	for {
		select {
		case <-pc.signal:
		case <-pc.node.stop:
			pc.fail()
			return
		}
		for {
			pc.mu.Lock()
			batch := pc.pending
			pc.pending = nil
			pc.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			pc.node.m.writeBatch.Observe(uint64(len(batch)))
			// WriteTo consumes its receiver (reslicing elements on short
			// writes), so it runs on a scratch copy and batch stays intact
			// for recycling.
			pc.vec = append(pc.vec[:0], batch...)
			_, err := pc.vec.WriteTo(pc.conn)
			for _, b := range batch {
				wire.PutFrame(b)
			}
			if err != nil {
				pc.fail()
				pc.node.forgetConn(pc)
				return
			}
		}
	}
}

// fail marks the link dead, closes it and recycles any queued frames.
func (pc *peerConn) fail() {
	pc.mu.Lock()
	pc.failed = true
	rest := pc.pending
	pc.pending = nil
	pc.mu.Unlock()
	_ = pc.conn.Close()
	for _, b := range rest {
		wire.PutFrame(b)
	}
}

// forgetConn unregisters a failed link so the next send redials.
func (n *Node) forgetConn(pc *peerConn) {
	n.mu.Lock()
	if n.conns[pc.dst] == pc {
		delete(n.conns, pc.dst)
	}
	n.mu.Unlock()
}
