package transport

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"genconsensus/internal/auth"
	"genconsensus/internal/model"
	"genconsensus/internal/snapshot"
	"genconsensus/internal/wire"
)

// State transfer: the crash-recovery exchange. A recovering node dials a
// peer on its consensus address and sends a snapshot request; the peer's
// read loop answers on the same connection with the latest checkpoint,
// chunked into MAC-protected frames. Pairwise MACs rule out third-party
// tampering, but the serving peer itself may be Byzantine — so a joiner
// calls FetchVerifiedSnapshot, which accepts a snapshot only when b+1
// peers present the same digest: under the Byzantine budget at least one
// of them is honest, and honest replicas checkpoint deterministically, so
// a matching digest pins the true state.

// SnapshotProvider serves the node's latest checkpoint. Implementations
// must be safe for concurrent use (the read loops call it).
type SnapshotProvider func() (*snapshot.Snapshot, bool)

// Errors returned by state transfer.
var (
	ErrNoSnapshot     = errors.New("transport: peer has no snapshot")
	ErrSnapshotQuorum = errors.New("transport: no snapshot digest matched by the required quorum")
	ErrBadSnapshot    = errors.New("transport: snapshot transfer failed verification")
	ErrUnknownPeer    = errors.New("transport: no address for peer")
	ErrNotCached      = errors.New("transport: decision not in the peer's cache")
	ErrDecisionQuorum = errors.New("transport: no decided value matched by the required quorum")
)

// SetSnapshotProvider installs group 0's checkpoint source — the whole
// node's source in an unsharded deployment.
func (n *Node) SetSnapshotProvider(p SnapshotProvider) {
	n.SetGroupSnapshotProvider(0, p)
}

// SetGroupSnapshotProvider installs the checkpoint source served to peers
// recovering group g. Each group checkpoints its own state machine, so a
// sharded node registers one provider per group.
func (n *Node) SetGroupSnapshotProvider(g wire.GroupID, p SnapshotProvider) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group(g).provider = p
}

// SetPeers replaces the peer address map — used when addresses are known
// only after every node has bound (":0" clusters). Call before consensus
// traffic starts.
func (n *Node) SetPeers(peers map[model.PID]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Peers = peers
}

// RecordDecision caches one committed instance's decided value so that
// catching-up peers can fetch it (DecisionRequest) after the instance's
// consensus buffers are released. The ring is bounded two ways, oldest
// evicted first: by entry count (Config.DecisionCache) and by decided-value
// bytes (Config.DecisionCacheBytes). The byte budget is the binding one
// under batched load — ring × max-batch-bytes dwarfs any sensible memory
// target — so the effective ring depth adapts to the decided values: deep
// for small decisions, shallow for bursts of maximum-size batches. The
// newest decision is always retained, even if it alone exceeds the budget.
// Rings are per group: the instance id is a packed (group, instance) pair,
// and each group gets the full entry and byte budget, so one group's burst
// of maximum-size batches cannot evict another group's catch-up window.
func (n *Node) RecordDecision(instance uint64, decided model.Value) {
	g, local := wire.SplitGID(instance)
	n.mu.Lock()
	defer n.mu.Unlock()
	gs := n.group(g)
	gs.observe(local)
	if _, ok := gs.decisions[local]; ok {
		return
	}
	gs.decisions[local] = decided
	gs.decisionLog = append(gs.decisionLog, local)
	gs.decisionBytes += len(decided)
	for len(gs.decisionLog) > 1 &&
		(len(gs.decisionLog) > n.cfg.DecisionCache || gs.decisionBytes > n.cfg.DecisionCacheBytes) {
		oldest := gs.decisionLog[0]
		gs.decisionBytes -= len(gs.decisions[oldest])
		delete(gs.decisions, oldest)
		gs.decisionLog = gs.decisionLog[1:]
	}
}

// DecisionCacheStats reports the rings' current entry count and decided-
// value bytes, summed across groups (budget tests and metrics).
func (n *Node) DecisionCacheStats() (entries, bytes int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, gs := range n.groups {
		entries += len(gs.decisionLog)
		bytes += gs.decisionBytes
	}
	return entries, bytes
}

// handleSnapFrame serves one authenticated state-transfer request
// (snapshot or cached decision) on the inbound connection it arrived on.
// Responses are written directly to that connection: the requester reads
// them synchronously, so the exchange never touches the consensus
// instance buffers.
func (n *Node) handleSnapFrame(conn net.Conn, payload []byte) {
	env, err := wire.DecodeSnap(payload)
	if err != nil {
		return
	}
	if int(env.Sender) < 0 || int(env.Sender) >= n.cfg.N || env.Sender == n.cfg.ID {
		return
	}
	key := auth.PairKey(n.cfg.AuthSeed, env.Sender, n.cfg.ID)
	if !auth.CheckMAC(key, wire.SnapVerifyPayload(env), env.Auth) {
		return
	}
	if env.Kind == wire.DecisionRequest {
		n.serveDecision(conn, key, env.LastInstance)
		return
	}
	if env.Kind != wire.SnapRequest {
		return // chunks flow request→response only; anything else is noise
	}
	// A snapshot request names its group in the otherwise-unused
	// LastInstance field (packed, instance part zero): group-0 requests
	// stay byte-identical to the pre-shard format.
	g, _ := wire.SplitGID(env.LastInstance)
	if int(g) >= n.cfg.Groups {
		return
	}
	n.mu.Lock()
	provider := n.group(g).provider
	n.mu.Unlock()
	var snap *snapshot.Snapshot
	ok := false
	if provider != nil {
		snap, ok = provider()
	}
	if !ok || snap == nil {
		none := wire.SnapEnvelope{Kind: wire.SnapNone, Sender: n.cfg.ID}
		none.Auth = auth.MAC(key, wire.SnapVerifyPayload(none))
		_ = wire.WriteFrame(conn, wire.EncodeSnap(none))
		return
	}
	data := snapshot.Encode(snap)
	digest := sha256.Sum256(data)
	chunkBytes := n.cfg.SnapChunkBytes
	count := (len(data) + chunkBytes - 1) / chunkBytes
	if count == 0 {
		count = 1 // an empty state still travels as one empty chunk
	}
	for i := 0; i < count; i++ {
		lo := i * chunkBytes
		hi := lo + chunkBytes
		if hi > len(data) {
			hi = len(data)
		}
		chunk := wire.SnapEnvelope{
			Kind:         wire.SnapChunk,
			Sender:       n.cfg.ID,
			LastInstance: snap.LastInstance,
			LogIndex:     snap.LogIndex,
			Digest:       digest[:],
			ChunkIndex:   uint32(i),
			ChunkCount:   uint32(count),
			Data:         data[lo:hi],
		}
		chunk.Auth = auth.MAC(key, wire.SnapVerifyPayload(chunk))
		if err := wire.WriteFrame(conn, wire.EncodeSnap(chunk)); err != nil {
			return
		}
	}
}

// serveDecision answers one DecisionRequest from the requested group's
// cache (SnapNone when evicted or never seen). The reply echoes the packed
// (group, instance) id the requester asked for.
func (n *Node) serveDecision(conn net.Conn, key auth.MACKey, instance uint64) {
	g, local := wire.SplitGID(instance)
	n.mu.Lock()
	var decided model.Value
	ok := false
	if gs, have := n.groups[g]; have {
		decided, ok = gs.decisions[local]
	}
	n.mu.Unlock()
	reply := wire.SnapEnvelope{Kind: wire.SnapNone, Sender: n.cfg.ID, LastInstance: instance}
	if ok {
		n.m.ringHits.Inc()
		reply.Kind = wire.DecisionReply
		reply.Data = []byte(decided)
	} else {
		n.m.ringMisses.Inc()
	}
	reply.Auth = auth.MAC(key, wire.SnapVerifyPayload(reply))
	_ = wire.WriteFrame(conn, wire.EncodeSnap(reply))
}

// FetchDecision retrieves one peer's cached decided value for an instance
// over a dedicated connection.
func (n *Node) FetchDecision(from model.PID, instance uint64, timeout time.Duration) (model.Value, error) {
	n.mu.Lock()
	addr, ok := n.cfg.Peers[from]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return model.NoValue, ErrClosed
	}
	if !ok || addr == "" || from == n.cfg.ID {
		return model.NoValue, fmt.Errorf("%w: %d", ErrUnknownPeer, from)
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return model.NoValue, fmt.Errorf("transport: dialing %d: %w", from, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))

	key := auth.PairKey(n.cfg.AuthSeed, n.cfg.ID, from)
	req := wire.SnapEnvelope{Kind: wire.DecisionRequest, Sender: n.cfg.ID, LastInstance: instance}
	req.Auth = auth.MAC(key, wire.SnapVerifyPayload(req))
	if err := wire.WriteFrame(conn, wire.EncodeSnap(req)); err != nil {
		return model.NoValue, fmt.Errorf("transport: requesting decision from %d: %w", from, err)
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		return model.NoValue, fmt.Errorf("transport: reading decision from %d: %w", from, err)
	}
	env, err := wire.DecodeSnap(payload)
	if err != nil {
		return model.NoValue, fmt.Errorf("%w: peer %d: %v", ErrBadSnapshot, from, err)
	}
	if env.Sender != from || !auth.CheckMAC(key, wire.SnapVerifyPayload(env), env.Auth) ||
		env.LastInstance != instance {
		return model.NoValue, fmt.Errorf("%w: peer %d: bad decision reply", ErrBadSnapshot, from)
	}
	switch env.Kind {
	case wire.SnapNone:
		return model.NoValue, fmt.Errorf("%w: peer %d instance %d", ErrNotCached, from, instance)
	case wire.DecisionReply:
		return model.Value(env.Data), nil
	default:
		return model.NoValue, fmt.Errorf("%w: peer %d: kind %d", ErrBadSnapshot, from, env.Kind)
	}
}

// FetchVerifiedDecision fetches an instance's decided value from the given
// peers and returns it once at least `quorum` of them report the identical
// value. With quorum b+1 at least one attester is honest, and honest nodes
// cache only genuinely decided values, so agreement pins the answer — a
// Byzantine minority cannot feed a laggard a forged decision. It is the
// catch-up path for instances between a transferred checkpoint and the
// cluster head, which the peers have committed, released and will never
// run again.
func (n *Node) FetchVerifiedDecision(peers []model.PID, instance uint64, quorum int, timeout time.Duration) (model.Value, error) {
	if quorum < 1 {
		quorum = 1
	}
	values := make([]model.Value, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		if p == n.cfg.ID {
			errs[i] = ErrUnknownPeer
			continue
		}
		wg.Add(1)
		go func(i int, p model.PID) {
			defer wg.Done()
			values[i], errs[i] = n.FetchDecision(p, instance, timeout)
		}(i, p)
	}
	wg.Wait()
	counts := make(map[model.Value]int)
	var fetchErrs []error
	for i := range values {
		if errs[i] != nil {
			fetchErrs = append(fetchErrs, errs[i])
			continue
		}
		counts[values[i]]++
		if counts[values[i]] >= quorum {
			return values[i], nil
		}
	}
	return model.NoValue, fmt.Errorf("%w: instance %d (quorum %d, %d peers, errors: %v)",
		ErrDecisionQuorum, instance, quorum, len(peers), errors.Join(fetchErrs...))
}

// FetchSnapshot retrieves one peer's latest group-0 checkpoint.
func (n *Node) FetchSnapshot(from model.PID, timeout time.Duration) (*snapshot.Snapshot, [32]byte, error) {
	return n.FetchGroupSnapshot(from, 0, timeout)
}

// FetchGroupSnapshot retrieves one peer's latest checkpoint for group g
// over a dedicated connection: request, chunked response, MAC check per
// frame, digest check over the reassembled encoding. The returned digest
// is what FetchVerifiedGroupSnapshot compares across peers.
func (n *Node) FetchGroupSnapshot(from model.PID, g wire.GroupID, timeout time.Duration) (*snapshot.Snapshot, [32]byte, error) {
	var zero [32]byte
	n.mu.Lock()
	addr, ok := n.cfg.Peers[from]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, zero, ErrClosed
	}
	if !ok || addr == "" || from == n.cfg.ID {
		return nil, zero, fmt.Errorf("%w: %d", ErrUnknownPeer, from)
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, zero, fmt.Errorf("transport: dialing %d: %w", from, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))

	key := auth.PairKey(n.cfg.AuthSeed, n.cfg.ID, from)
	req := wire.SnapEnvelope{Kind: wire.SnapRequest, Sender: n.cfg.ID, LastInstance: wire.PackGID(g, 0)}
	req.Auth = auth.MAC(key, wire.SnapVerifyPayload(req))
	if err := wire.WriteFrame(conn, wire.EncodeSnap(req)); err != nil {
		return nil, zero, fmt.Errorf("transport: requesting snapshot from %d: %w", from, err)
	}

	var assembled []byte
	var digest []byte
	var lastInstance, logIndex uint64
	seen := uint32(0)
	total := uint32(0)
	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return nil, zero, fmt.Errorf("transport: reading snapshot from %d: %w", from, err)
		}
		env, err := wire.DecodeSnap(payload)
		if err != nil {
			return nil, zero, fmt.Errorf("%w: peer %d: %v", ErrBadSnapshot, from, err)
		}
		if env.Sender != from ||
			!auth.CheckMAC(key, wire.SnapVerifyPayload(env), env.Auth) {
			return nil, zero, fmt.Errorf("%w: peer %d: bad authenticator", ErrBadSnapshot, from)
		}
		if env.Kind == wire.SnapNone {
			return nil, zero, fmt.Errorf("%w: %d", ErrNoSnapshot, from)
		}
		if env.Kind != wire.SnapChunk {
			return nil, zero, fmt.Errorf("%w: peer %d: kind %d", ErrBadSnapshot, from, env.Kind)
		}
		if seen == 0 {
			total = env.ChunkCount
			digest = env.Digest
			lastInstance, logIndex = env.LastInstance, env.LogIndex
			if total == 0 || total > 1<<20 || len(digest) != sha256.Size {
				return nil, zero, fmt.Errorf("%w: peer %d: bad transfer header", ErrBadSnapshot, from)
			}
		} else if env.ChunkCount != total || !bytes.Equal(env.Digest, digest) ||
			env.LastInstance != lastInstance || env.LogIndex != logIndex {
			return nil, zero, fmt.Errorf("%w: peer %d: mixed transfer", ErrBadSnapshot, from)
		}
		if env.ChunkIndex != seen {
			return nil, zero, fmt.Errorf("%w: peer %d: chunk %d, want %d", ErrBadSnapshot, from, env.ChunkIndex, seen)
		}
		// Bound what a (possibly Byzantine) peer can make us buffer: the
		// accumulated payload, not the claimed chunk count, is what costs
		// memory.
		if len(assembled)+len(env.Data) > snapshot.MaxStateBytes+1024 {
			return nil, zero, fmt.Errorf("%w: peer %d: oversized transfer", ErrBadSnapshot, from)
		}
		assembled = append(assembled, env.Data...)
		seen++
		if seen == total {
			break
		}
	}
	sum := sha256.Sum256(assembled)
	if !bytes.Equal(sum[:], digest) {
		return nil, zero, fmt.Errorf("%w: peer %d: digest mismatch", ErrBadSnapshot, from)
	}
	snap, err := snapshot.Decode(assembled)
	if err != nil {
		return nil, zero, fmt.Errorf("%w: peer %d: %v", ErrBadSnapshot, from, err)
	}
	if snap.LastInstance != lastInstance || snap.LogIndex != logIndex {
		return nil, zero, fmt.Errorf("%w: peer %d: metadata mismatch", ErrBadSnapshot, from)
	}
	return snap, sum, nil
}

// FetchVerifiedSnapshot fetches group-0 checkpoints with quorum
// verification — the whole recovery path in an unsharded deployment.
func (n *Node) FetchVerifiedSnapshot(peers []model.PID, quorum int, timeout time.Duration) (*snapshot.Snapshot, error) {
	return n.FetchVerifiedGroupSnapshot(peers, 0, quorum, timeout)
}

// FetchVerifiedGroupSnapshot fetches group g's checkpoints from the given
// peers in parallel and returns the newest snapshot whose digest at least
// `quorum` of them agree on. With quorum b+1 a Byzantine minority can
// neither forge a snapshot (an honest peer must match it) nor poison the
// fetch (honest majorities still reach quorum among themselves). Peers
// that are down, have no checkpoint yet or fail verification simply don't
// vote.
func (n *Node) FetchVerifiedGroupSnapshot(peers []model.PID, g wire.GroupID, quorum int, timeout time.Duration) (*snapshot.Snapshot, error) {
	if quorum < 1 {
		quorum = 1
	}
	type vote struct {
		snap   *snapshot.Snapshot
		digest [32]byte
		err    error
	}
	votes := make([]vote, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		if p == n.cfg.ID {
			votes[i].err = ErrUnknownPeer
			continue
		}
		wg.Add(1)
		go func(i int, p model.PID) {
			defer wg.Done()
			votes[i].snap, votes[i].digest, votes[i].err = n.FetchGroupSnapshot(p, g, timeout)
		}(i, p)
	}
	wg.Wait()
	counts := make(map[[32]byte]int)
	bySum := make(map[[32]byte]*snapshot.Snapshot)
	var errs []error
	for i := range votes {
		if votes[i].err != nil {
			errs = append(errs, votes[i].err)
			continue
		}
		counts[votes[i].digest]++
		bySum[votes[i].digest] = votes[i].snap
	}
	var best *snapshot.Snapshot
	for d, c := range counts {
		if c < quorum {
			continue
		}
		if best == nil || bySum[d].LastInstance > best.LastInstance {
			best = bySum[d]
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w (quorum %d, %d peers, errors: %v)",
			ErrSnapshotQuorum, quorum, len(peers), errors.Join(errs...))
	}
	return best, nil
}
