// Package transport runs round-based consensus over real TCP connections:
// the production counterpart of the in-memory simulator. It realizes the
// partially synchronous system model the way [7] (Dwork, Lynch, Stockmeyer)
// prescribes: closed rounds driven by growing timeouts, so that once the
// network stabilizes every round satisfies Pgood.
//
// A Node owns a listener, lazily-dialed peer connections and per-(instance,
// round) receive buffers. RunProc drives a round.Proc over one consensus
// instance: each round it broadcasts the process's messages, collects the
// round's vector until complete or until the round deadline, and applies
// the transition. Message integrity and sender authenticity are protected
// with pairwise HMACs (internal/auth).
//
// A node supports pipelined SMR: several RunProc calls for distinct
// instances may run concurrently (receive buffers are per-instance and
// peer-connection writes are serialized), and ReleaseInstance reclaims the
// buffers of committed instances so the instance map stays bounded.
//
// Lifecycle follows the style guide: Listen spawns the accept and read
// goroutines; Close signals them and waits for them to exit.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"genconsensus/internal/auth"
	"genconsensus/internal/model"
	"genconsensus/internal/round"
	"genconsensus/internal/wire"
)

// Config assembles a node.
type Config struct {
	// ID is this node's process identifier.
	ID model.PID
	// N is the cluster size.
	N int
	// Peers maps every process (including self) to its address. The self
	// entry may be empty when ListenAddr is given.
	Peers map[model.PID]string
	// ListenAddr overrides the self entry ("127.0.0.1:0" for tests).
	ListenAddr string
	// AuthSeed derives the pairwise HMAC keys; all nodes must agree.
	AuthSeed int64
	// BaseTimeout is the round-1 collection deadline (default 20ms).
	BaseTimeout time.Duration
	// TimeoutGrowth is added per round (default 5ms), implementing the
	// growing timeouts of the partially synchronous model.
	TimeoutGrowth time.Duration
	// WindowRounds bounds how far ahead of the current round buffered
	// messages may be (default 4096); protects against hostile floods.
	WindowRounds int
	// WindowInstances bounds how far ahead of the release watermark an
	// instance id may be and still get a receive buffer (default 4096).
	// Without it an authenticated Byzantine member could allocate one
	// instanceBuf per fabricated future instance id and run the node out
	// of memory.
	WindowInstances int
	// SnapChunkBytes sizes state-transfer chunks (default 64 KiB, clamped
	// to wire.MaxSnapDataBytes). Tests shrink it to exercise multi-chunk
	// reassembly.
	SnapChunkBytes int
	// DecisionCache bounds the recent-decision ring served to catching-up
	// peers (default 256 instances). It should exceed the snapshot
	// interval so a recovering replica can always bridge the gap between
	// the newest checkpoint and the cluster head.
	DecisionCache int
	// DecisionCacheBytes bounds the ring by decided-value bytes (default
	// 4 MiB). The entry count alone admits a ring × max-batch-bytes worst
	// case, so the byte budget is what actually caps memory: a burst of
	// maximum-size batches evicts proportionally more (older) entries,
	// adapting the effective ring depth to the decided values' size.
	DecisionCacheBytes int
}

// Errors returned by the transport.
var (
	ErrClosed     = errors.New("transport: node closed")
	ErrNoDecision = errors.New("transport: no decision within round budget")
	// ErrInstanceReleased aborts a RunProc whose instance this node has
	// already released: the instance is finished business cluster-wide
	// (committed locally, or covered by an installed snapshot), so running
	// rounds for it only burns a pipeline slot.
	ErrInstanceReleased = errors.New("transport: instance already released")
)

// Node is one cluster member's transport endpoint.
type Node struct {
	cfg Config
	ln  net.Listener

	mu            sync.Mutex
	conns         map[model.PID]*peerConn
	inbound       map[net.Conn]struct{}
	instances     map[uint64]*instanceBuf
	released      uint64 // high-watermark of released instance ids
	hasReleased   bool   // distinguishes "nothing released" from watermark 0
	closed        bool
	provider      SnapshotProvider
	decisions     map[uint64]model.Value // recent decided values, served to laggards
	decisionLog   []uint64               // ring order for eviction
	decisionBytes int                    // decided-value bytes held by the ring

	stop chan struct{}
	wg   sync.WaitGroup
}

// peerConn pairs an outbound connection with a write lock: concurrent
// RunProc calls (pipelined instances) share the peer connection, and
// interleaved WriteFrame calls would corrupt the frame stream.
type peerConn struct {
	conn net.Conn
	wmu  sync.Mutex
}

type instanceBuf struct {
	rounds  map[model.Round]model.Received
	current model.Round
	signal  chan struct{}
}

func newInstanceBuf() *instanceBuf {
	return &instanceBuf{
		rounds:  make(map[model.Round]model.Received),
		current: 1,
		signal:  make(chan struct{}, 1),
	}
}

// Listen binds the node and starts its accept loop.
func Listen(cfg Config) (*Node, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("transport: bad cluster size %d", cfg.N)
	}
	if cfg.BaseTimeout == 0 {
		cfg.BaseTimeout = 20 * time.Millisecond
	}
	if cfg.TimeoutGrowth == 0 {
		cfg.TimeoutGrowth = 5 * time.Millisecond
	}
	if cfg.WindowRounds == 0 {
		cfg.WindowRounds = 4096
	}
	// <= 0 takes the default rather than wrapping negative values through
	// the uint64 window arithmetic (which would silently disable the bound).
	if cfg.WindowInstances <= 0 {
		cfg.WindowInstances = 4096
	}
	if cfg.SnapChunkBytes <= 0 {
		cfg.SnapChunkBytes = 64 << 10
	}
	if cfg.SnapChunkBytes > wire.MaxSnapDataBytes {
		cfg.SnapChunkBytes = wire.MaxSnapDataBytes
	}
	if cfg.DecisionCache <= 0 {
		cfg.DecisionCache = 256
	}
	if cfg.DecisionCacheBytes <= 0 {
		cfg.DecisionCacheBytes = 4 << 20
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = cfg.Peers[cfg.ID]
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &Node{
		cfg:       cfg,
		ln:        ln,
		conns:     make(map[model.PID]*peerConn),
		inbound:   make(map[net.Conn]struct{}),
		instances: make(map[uint64]*instanceBuf),
		decisions: make(map[uint64]model.Value),
		stop:      make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's process id.
func (n *Node) ID() model.PID { return n.cfg.ID }

// Close stops the node: the listener and all connections are closed and all
// background goroutines are joined.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	err := n.ln.Close()
	for _, c := range n.conns {
		_ = c.conn.Close()
	}
	for c := range n.inbound {
		_ = c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.stop:
				return
			default:
			}
			// Transient accept errors: keep serving until closed.
			select {
			case <-n.stop:
				return
			case <-time.After(time.Millisecond):
				continue
			}
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		if wire.IsSnapPayload(payload) {
			n.handleSnapFrame(conn, payload)
			continue
		}
		env, err := wire.Decode(payload)
		if err != nil {
			continue // malformed frame: drop, keep the connection
		}
		if !n.authentic(env) {
			continue
		}
		n.deliverLocal(env)
	}
}

// authentic verifies the pairwise HMAC, enforcing that the claimed sender
// holds the key it shares with us (no impersonation, §2.1).
func (n *Node) authentic(env wire.Envelope) bool {
	if int(env.Sender) < 0 || int(env.Sender) >= n.cfg.N {
		return false
	}
	key := auth.PairKey(n.cfg.AuthSeed, env.Sender, n.cfg.ID)
	return auth.CheckMAC(key, wire.VerifyPayload(env), env.Auth)
}

// deliverLocal buffers a verified envelope.
func (n *Node) deliverLocal(env wire.Envelope) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	// Released instances are finished business: buffering a straggler would
	// resurrect the map entry and leak it. Far-future instances are hostile
	// or confused — without the upper bound, each fabricated id would
	// allocate a buffer the release watermark never reaches.
	base := uint64(0)
	if n.hasReleased {
		if env.Instance <= n.released {
			return
		}
		base = n.released
	}
	if env.Instance > base+uint64(n.cfg.WindowInstances) {
		return
	}
	buf, ok := n.instances[env.Instance]
	if !ok {
		buf = newInstanceBuf()
		n.instances[env.Instance] = buf
	}
	// Closed rounds: late messages are useless; far-future rounds are
	// hostile or confused.
	if env.Round < buf.current || env.Round > buf.current+model.Round(n.cfg.WindowRounds) {
		return
	}
	mu, ok := buf.rounds[env.Round]
	if !ok {
		mu = model.Received{}
		buf.rounds[env.Round] = mu
	}
	if _, dup := mu[env.Sender]; dup {
		return // first message per (round, sender) wins
	}
	mu[env.Sender] = env.Msg
	select {
	case buf.signal <- struct{}{}:
	default:
	}
}

// send transmits one envelope to dst, dialing lazily. Failures are
// swallowed: an unreachable peer is indistinguishable from a slow one in a
// partially synchronous system.
func (n *Node) send(dst model.PID, env wire.Envelope) {
	if dst == n.cfg.ID {
		n.deliverLocal(env)
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	pc, ok := n.conns[dst]
	addr := n.cfg.Peers[dst]
	n.mu.Unlock()
	if !ok {
		c, err := net.DialTimeout("tcp", addr, n.cfg.BaseTimeout)
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = c.Close()
			return
		}
		if existing, raced := n.conns[dst]; raced {
			_ = c.Close()
			pc = existing
		} else {
			pc = &peerConn{conn: c}
			n.conns[dst] = pc
		}
		n.mu.Unlock()
	}
	payload := wire.Encode(env)
	// One frame at a time per peer: concurrent instances share the
	// connection, and a torn frame would desynchronize the whole stream.
	pc.wmu.Lock()
	err := wire.WriteFrame(pc.conn, payload)
	pc.wmu.Unlock()
	if err != nil {
		n.mu.Lock()
		if n.conns[dst] == pc {
			delete(n.conns, dst)
		}
		n.mu.Unlock()
		_ = pc.conn.Close()
	}
}

// seal attaches the pairwise HMAC for dst.
func (n *Node) seal(env wire.Envelope, dst model.PID) wire.Envelope {
	key := auth.PairKey(n.cfg.AuthSeed, n.cfg.ID, dst)
	env.Auth = auth.MAC(key, wire.VerifyPayload(env))
	return env
}

// collect waits for round r of the instance to be complete (n messages) or
// for the deadline, and returns the vector collected so far. The round is
// then closed: later arrivals are discarded.
func (n *Node) collect(instance uint64, r model.Round, deadline time.Time) model.Received {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for {
		n.mu.Lock()
		buf := n.instances[instance]
		var have int
		var signal chan struct{}
		if buf != nil {
			have = len(buf.rounds[r])
			signal = buf.signal
		}
		n.mu.Unlock()
		if have >= n.cfg.N {
			break
		}
		if signal == nil {
			// No buffer yet: wait for the first arrival or timeout.
			select {
			case <-timer.C:
				return model.Received{}
			case <-n.stop:
				return model.Received{}
			case <-time.After(time.Millisecond):
				continue
			}
		}
		select {
		case <-signal:
		case <-timer.C:
			goto done
		case <-n.stop:
			goto done
		}
	}
done:
	n.mu.Lock()
	defer n.mu.Unlock()
	buf := n.instances[instance]
	if buf == nil {
		return model.Received{}
	}
	mu := buf.rounds[r]
	delete(buf.rounds, r)
	buf.current = r + 1
	if mu == nil {
		return model.Received{}
	}
	return mu.Clone()
}

// RunProc drives proc over the given instance until it decides, then keeps
// participating for extraRounds (so that slower peers can decide too), and
// returns the decision. It returns ErrNoDecision after maxRounds.
func (n *Node) RunProc(instance uint64, proc round.Proc, maxRounds, extraRounds int) (model.Value, error) {
	decided := model.NoValue
	remaining := -1
	for r := model.Round(1); int(r) <= maxRounds; r++ {
		select {
		case <-n.stop:
			return model.NoValue, ErrClosed
		default:
		}
		if n.instanceReleased(instance) {
			if decided != model.NoValue {
				return decided, nil
			}
			return model.NoValue, ErrInstanceReleased
		}
		out := proc.Send(r)
		for dst, msg := range out {
			env := wire.Envelope{Instance: instance, Round: r, Sender: n.cfg.ID, Msg: msg}
			n.send(dst, n.seal(env, dst))
		}
		deadline := time.Now().Add(n.cfg.BaseTimeout + time.Duration(r)*n.cfg.TimeoutGrowth)
		mu := n.collect(instance, r, deadline)
		proc.Transition(r, mu)
		if v, ok := proc.Decided(); ok && decided == model.NoValue {
			decided = v
			remaining = extraRounds
		}
		if remaining > 0 {
			remaining--
		}
		if remaining == 0 {
			return decided, nil
		}
	}
	if decided != model.NoValue {
		return decided, nil
	}
	return model.NoValue, ErrNoDecision
}

// instanceReleased reports whether the instance is at or below the release
// watermark.
func (n *Node) instanceReleased(instance uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hasReleased && instance <= n.released
}

// HasInstance reports whether any message for the instance has been
// buffered — used by SMR dispatchers to join instances started by peers.
// Released instances report false.
func (n *Node) HasInstance(instance uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.instances[instance]
	return ok
}

// ReleaseInstance frees the receive buffers of the given instance and every
// earlier one, and refuses future messages for them — without it the
// instance map grows one entry per consensus instance forever. SMR
// dispatchers call it after committing an instance; since commits are
// strictly in instance order, the high-watermark semantics match exactly
// and bound the map by the pipeline depth.
func (n *Node) ReleaseInstance(instance uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.hasReleased || instance > n.released {
		n.released = instance
	}
	n.hasReleased = true
	for id := range n.instances {
		if id <= n.released {
			delete(n.instances, id)
		}
	}
}

// InstanceCount reports how many instances currently hold receive buffers
// (monitoring and leak tests).
func (n *Node) InstanceCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.instances)
}
